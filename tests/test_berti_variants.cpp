/** @file Tests for the Berti context variants: per-IP (the paper)
 *  versus per-page (the DPC-3 precursor). */

#include <gtest/gtest.h>

#include "core/berti.hh"
#include "test_util.hh"

namespace berti
{

using test::RecordingPort;

namespace
{

void
missEvent(BertiPrefetcher &b, RecordingPort &port, Addr ip, Addr line,
          Cycle access_time, Cycle latency)
{
    port.time = access_time;
    Prefetcher::AccessInfo a;
    a.ip = ip;
    a.vLine = line;
    a.pLine = line;
    a.hit = false;
    b.onAccess(a);

    port.time = access_time + latency;
    Prefetcher::FillInfo f;
    f.ip = ip;
    f.vLine = line;
    f.pLine = line;
    f.hadDemandWaiter = true;
    f.latency = latency;
    b.onFill(f);
    port.time = access_time;
}

} // namespace

TEST(BertiPerPage, TwoIpsOnePageShareOneContext)
{
    // Two IPs alternately walk the same page with a combined +1 line
    // stride: per-IP sees two +2 streams, per-page sees one +1 stream.
    BertiConfig cfg;
    cfg.perPage = true;
    BertiPrefetcher per_page(cfg);
    RecordingPort port;
    per_page.bind(&port);

    Addr base = 500ull << (kPageBits - kLineBits);
    Cycle t = 1000;
    // Span several pages so the page context re-learns quickly.
    for (unsigned i = 0; i < 400; ++i) {
        Addr ip = (i % 2 == 0) ? 0x400100 : 0x400200;
        missEvent(per_page, port, ip, base + i, t, 100);
        t += 30;
    }
    EXPECT_GT(per_page.timelyDeltasFound, 0u);
    EXPECT_GT(port.issues.size(), 0u);
}

TEST(BertiPerPage, PageCrossingResetsContext)
{
    // Per-page context changes at every page boundary, so a pattern
    // spanning pages retrains per page (the weakness that motivated
    // the per-IP redesign in the MICRO paper).
    BertiConfig cfg;
    cfg.perPage = true;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);

    // One IP streaming across pages: per-page deltas never accumulate
    // more coverage than one page's worth of misses allows.
    Cycle t = 1000;
    for (unsigned i = 0; i < 300; ++i)
        missEvent(b, port, 0x400300, 64ull * 1000 + i * 8, t += 40, 100);

    BertiPrefetcher per_ip;  // default
    RecordingPort port2;
    per_ip.bind(&port2);
    t = 1000;
    for (unsigned i = 0; i < 300; ++i)
        missEvent(per_ip, port2, 0x400300, 64ull * 1000 + i * 8, t += 40,
                  100);

    // The per-IP context sustains at least as much issuing.
    EXPECT_GE(port2.issues.size(), port.issues.size());
}

TEST(BertiPerPage, DefaultIsPerIp)
{
    BertiConfig cfg;
    EXPECT_FALSE(cfg.perPage);
    EXPECT_TRUE(cfg.requireTimely);
    EXPECT_FALSE(cfg.issueAllDeltas);
}

TEST(BertiPerPage, PerIpSeparatesInterleavedPages)
{
    // One IP per page, interleaved: identical behaviour either way,
    // but the per-IP variant keys on different IPs while the per-page
    // variant keys on different pages — both must learn.
    for (bool per_page : {false, true}) {
        BertiConfig cfg;
        cfg.perPage = per_page;
        BertiPrefetcher b(cfg);
        RecordingPort port;
        b.bind(&port);
        Cycle t = 1000;
        for (unsigned i = 0; i < 200; ++i) {
            missEvent(b, port, 0x400400,
                      (100ull << (kPageBits - kLineBits)) + i % 60,
                      t += 35, 100);
            missEvent(b, port, 0x400500,
                      (200ull << (kPageBits - kLineBits)) + i % 60,
                      t += 35, 100);
        }
        EXPECT_GT(b.historySearches, 0u) << per_page;
    }
}

} // namespace berti
