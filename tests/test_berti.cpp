/** @file Berti prefetcher unit tests: timely-delta learning (the paper's
 *  Figure 4 scenario), coverage phases, watermark statuses, warm-up,
 *  MSHR-occupancy routing, eviction policy, ablations, storage. */

#include <gtest/gtest.h>

#include "core/berti.hh"
#include "test_util.hh"

namespace berti
{

using test::RecordingPort;

namespace
{

constexpr Addr kIp = 0x400190;

/** Drive one "baseline miss" event: demand access at time t, fill at
 *  t + latency (paper: insert at access, search at fill). */
void
missEvent(BertiPrefetcher &b, RecordingPort &port, Addr ip, Addr line,
          Cycle access_time, Cycle latency)
{
    port.time = access_time;
    Prefetcher::AccessInfo a;
    a.ip = ip;
    a.vLine = line;
    a.pLine = line;
    a.hit = false;
    b.onAccess(a);

    port.time = access_time + latency;
    Prefetcher::FillInfo f;
    f.ip = ip;
    f.vLine = line;
    f.pLine = line;
    f.hadDemandWaiter = true;
    f.latency = latency;
    b.onFill(f);
    port.time = access_time;
}

/** Run a steady single-IP stream: line i at time i*interval. */
void
runStream(BertiPrefetcher &b, RecordingPort &port, unsigned count,
          Cycle interval, Cycle latency, Addr base = 1000, int stride = 1,
          Addr ip = kIp, Cycle t0 = 1000)
{
    for (unsigned i = 0; i < count; ++i) {
        missEvent(b, port, ip,
                  static_cast<Addr>(static_cast<std::int64_t>(base) +
                                    static_cast<std::int64_t>(i) * stride),
                  t0 + static_cast<Cycle>(i) * interval, latency);
    }
}

bool
hasStatus(const std::vector<BertiPrefetcher::DeltaInfo> &deltas, int delta,
          BertiPrefetcher::DeltaStatus status)
{
    for (const auto &d : deltas) {
        if (d.delta == delta && d.status == status)
            return true;
    }
    return false;
}

} // namespace

TEST(Berti, Figure4TimelyDeltaScenario)
{
    // The paper's Figure 4: one IP accesses lines 2, 5, 7, 10, 12, 15.
    // When line 12's latency is known, +10 (from line 2) is timely;
    // when 15 completes, +10 (from 5) and +13 (from 2) are timely.
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    const Cycle lat = 60;
    missEvent(b, port, kIp, 2, 100, lat);
    missEvent(b, port, kIp, 5, 130, lat);
    missEvent(b, port, kIp, 7, 150, lat);
    EXPECT_EQ(b.timelyDeltasFound, 0u);  // nothing old enough yet

    missEvent(b, port, kIp, 10, 165, lat);  // fill at 225: line 2 (age
                                            // 65 >= 60) qualifies: +8
    EXPECT_EQ(b.timelyDeltasFound, 1u);

    missEvent(b, port, kIp, 12, 175, lat);  // lines 2 (75), 5 (... 45) ->
                                            // only +10 timely
    EXPECT_EQ(b.timelyDeltasFound, 2u);

    missEvent(b, port, kIp, 15, 200, lat);  // 2 (100) and 5 (70): +13,+10
    EXPECT_EQ(b.timelyDeltasFound, 4u);

    auto deltas = b.deltasFor(kIp);
    bool saw10 = false, saw13 = false;
    for (const auto &d : deltas) {
        saw10 |= d.delta == 10;
        saw13 |= d.delta == 13;
    }
    EXPECT_TRUE(saw10);
    EXPECT_TRUE(saw13);
}

TEST(Berti, SearchOnlyOnBaselineMisses)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // A prefetch fill with no demand waiter must not trigger a search.
    Prefetcher::FillInfo f;
    f.ip = kIp;
    f.vLine = 100;
    f.pLine = 100;
    f.byPrefetch = true;
    f.hadDemandWaiter = false;
    f.latency = 60;
    b.onFill(f);
    EXPECT_EQ(b.historySearches, 0u);

    f.hadDemandWaiter = true;  // late prefetch: baseline miss
    b.onFill(f);
    EXPECT_EQ(b.historySearches, 1u);
}

TEST(Berti, ZeroLatencySkipsTraining)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);
    Prefetcher::FillInfo f;
    f.ip = kIp;
    f.vLine = 100;
    f.pLine = 100;
    f.hadDemandWaiter = true;
    f.latency = 0;  // overflow marker
    b.onFill(f);
    EXPECT_EQ(b.historySearches, 0u);
}

TEST(Berti, LatencyCounterOverflowIgnored)
{
    BertiConfig cfg;
    cfg.latencyBits = 12;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);
    Prefetcher::FillInfo f;
    f.ip = kIp;
    f.vLine = 100;
    f.pLine = 100;
    f.hadDemandWaiter = true;
    f.latency = 5000;  // > 4095: stored as zero, skipped
    b.onFill(f);
    EXPECT_EQ(b.historySearches, 0u);
}

TEST(Berti, WiderLatencyCounterAcceptsLongLatencies)
{
    BertiConfig cfg;
    cfg.latencyBits = 32;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);
    Prefetcher::FillInfo f;
    f.ip = kIp;
    f.vLine = 100;
    f.pLine = 100;
    f.hadDemandWaiter = true;
    f.latency = 5000;
    port.time = 6000;
    b.onFill(f);
    EXPECT_EQ(b.historySearches, 1u);
}

TEST(Berti, SteadyStreamSelectsTimelyDeltasAsL1)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Interval 40, latency 100: deltas >= ceil(100/40) = 3 are timely.
    runStream(b, port, 200, 40, 100);
    auto deltas = b.deltasFor(kIp);
    ASSERT_FALSE(deltas.empty());
    bool has_l1 = false;
    for (const auto &d : deltas) {
        if (d.status == BertiPrefetcher::DeltaStatus::L1Pref) {
            has_l1 = true;
            EXPECT_GE(d.delta, 3);  // only timely deltas get L1 status
        }
    }
    EXPECT_TRUE(has_l1);
}

TEST(Berti, PredictionIssuesSelectedDeltas)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);
    runStream(b, port, 200, 40, 100);

    port.issues.clear();
    Prefetcher::AccessInfo a;
    a.ip = kIp;
    a.vLine = 5000;
    a.pLine = 5000;
    a.hit = true;  // prediction runs on every access, hits included
    b.onAccess(a);
    ASSERT_FALSE(port.issues.empty());
    for (const auto &i : port.issues)
        EXPECT_GT(i.line, 5000u);  // positive deltas from current line
}

TEST(Berti, MshrWatermarkDemotesToL2)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);
    runStream(b, port, 200, 40, 100);

    Prefetcher::AccessInfo a;
    a.ip = kIp;
    a.vLine = 5000;
    a.pLine = 5000;
    a.hit = true;

    port.occupancy = 0.2;  // below the 70% watermark
    port.issues.clear();
    b.onAccess(a);
    bool any_l1 = false;
    for (const auto &i : port.issues)
        any_l1 |= i.level == FillLevel::L1;
    EXPECT_TRUE(any_l1);

    port.occupancy = 0.9;  // above the watermark: everything to L2
    port.issues.clear();
    a.vLine = 6000;
    b.onAccess(a);
    ASSERT_FALSE(port.issues.empty());
    for (const auto &i : port.issues)
        EXPECT_EQ(i.level, FillLevel::L2);
}

TEST(Berti, MediumCoverageGoesToL2)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Alternate two streams under one IP so each delta covers ~50% of
    // the searches: below the 65% L1 watermark, above the 35% L2 one.
    Cycle t = 1000;
    for (unsigned i = 0; i < 300; ++i) {
        Addr line = (i % 2 == 0) ? 1000 + i : 500000 + 3 * i;
        missEvent(b, port, kIp, line, t, 100);
        t += 40;
    }
    auto deltas = b.deltasFor(kIp);
    bool any_l2 = false;
    for (const auto &d : deltas) {
        any_l2 |= d.status == BertiPrefetcher::DeltaStatus::L2Pref ||
                  d.status == BertiPrefetcher::DeltaStatus::L2PrefRepl;
        EXPECT_NE(d.status, BertiPrefetcher::DeltaStatus::L1Pref);
    }
    EXPECT_TRUE(any_l2);
}

TEST(Berti, WarmupRequiresMinimumSearches)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Fewer than eight gathered deltas: no prefetches yet even though
    // the pattern is perfect.
    runStream(b, port, 6, 40, 100);
    std::size_t early = port.issues.size();
    EXPECT_EQ(early, 0u);

    // A dozen more searches gather >= 8 deltas (and close the first
    // phase), so issuing starts.
    runStream(b, port, 12, 40, 100, 1006, 1, kIp, 1240);
    EXPECT_GT(port.issues.size(), 0u);
}

TEST(Berti, CrossPageTogglable)
{
    BertiConfig cfg;
    cfg.crossPage = false;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);
    runStream(b, port, 200, 40, 100);

    port.issues.clear();
    Addr near_page_end = (100 << (kPageBits - kLineBits)) + 62;
    Prefetcher::AccessInfo a;
    a.ip = kIp;
    a.vLine = near_page_end;
    a.pLine = near_page_end;
    a.hit = true;
    b.onAccess(a);
    for (const auto &i : port.issues) {
        EXPECT_EQ(i.line >> (kPageBits - kLineBits),
                  near_page_end >> (kPageBits - kLineBits));
    }

    BertiPrefetcher b2;  // default: cross-page allowed
    RecordingPort port2;
    b2.bind(&port2);
    runStream(b2, port2, 200, 40, 100);
    port2.issues.clear();
    b2.onAccess(a);
    bool crossed = false;
    for (const auto &i : port2.issues) {
        crossed |= (i.line >> (kPageBits - kLineBits)) !=
                   (near_page_end >> (kPageBits - kLineBits));
    }
    EXPECT_TRUE(crossed);
}

TEST(Berti, TrainsOnFirstHitOfPrefetchedLine)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Build history via misses, then deliver a prefetched-line hit: it
    // must insert + search like a baseline miss.
    runStream(b, port, 20, 40, 100);
    std::uint64_t searches = b.historySearches;

    port.time = 10000;
    Prefetcher::AccessInfo a;
    a.ip = kIp;
    a.vLine = 1020;
    a.pLine = 1020;
    a.hit = true;
    a.firstHitOnPrefetch = true;
    a.prefetchLatency = 100;
    b.onAccess(a);
    EXPECT_EQ(b.historySearches, searches + 1);
}

TEST(Berti, MaxEightTimelyPerSearch)
{
    BertiConfig cfg;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);

    // 15 old entries, then one access whose latency makes all of them
    // timely: only 8 (the youngest) may be collected.
    for (unsigned i = 0; i < 15; ++i)
        missEvent(b, port, kIp, 100 + i, 1000 + i * 10, 5);
    std::uint64_t before = b.timelyDeltasFound;
    missEvent(b, port, kIp, 200, 2000, 20);
    EXPECT_LE(b.timelyDeltasFound - before, 8u);
}

TEST(Berti, DistinctDeltasPerIp)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Two IPs with different strides: per-IP (local) deltas must differ
    // (the core claim motivating Berti vs global-delta prefetchers).
    Cycle t = 1000;
    for (unsigned i = 0; i < 200; ++i) {
        missEvent(b, port, 0x400190, 1000 + i, t, 100);
        t += 20;
        missEvent(b, port, 0x500754, 900000 - 7 * i, t, 100);
        t += 20;
    }
    auto d1 = b.deltasFor(0x400190);
    auto d2 = b.deltasFor(0x500754);
    ASSERT_FALSE(d1.empty());
    ASSERT_FALSE(d2.empty());
    for (const auto &d : d1) {
        if (d.status != BertiPrefetcher::DeltaStatus::NoPref)
            EXPECT_GT(d.delta, 0);
    }
    for (const auto &d : d2) {
        if (d.status != BertiPrefetcher::DeltaStatus::NoPref)
            EXPECT_LT(d.delta, 0);
    }
}

TEST(Berti, DeltaMagnitudeBounded)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Stride of 5000 lines exceeds the 13-bit signed delta range when
    // accumulated over two steps; singles (5000) fit, doubles do not.
    runStream(b, port, 100, 40, 100, 1000000, 5000);
    for (const auto &d : b.deltasFor(kIp)) {
        EXPECT_LE(d.delta, (1 << 12) - 1);
        EXPECT_GE(d.delta, -((1 << 12) - 1));
    }
}

TEST(Berti, StorageMatchesTableOne)
{
    BertiPrefetcher b;
    // Paper Table I: 2.55 KB total.
    double kb = static_cast<double>(b.storageBits()) / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 2.55, 0.06);
}

TEST(Berti, StorageScalesWithConfig)
{
    BertiConfig big;
    big.historySets *= 2;
    big.deltaTableEntries *= 2;
    BertiPrefetcher base, doubled(big);
    EXPECT_GT(doubled.storageBits(), base.storageBits());
}

TEST(Berti, TimestampWraparound)
{
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    // Events straddling the 16-bit timestamp boundary must still match.
    Cycle base = (1ull << 16) - 200;
    for (unsigned i = 0; i < 20; ++i)
        missEvent(b, port, kIp, 1000 + i, base + i * 40, 100);
    EXPECT_GT(b.timelyDeltasFound, 0u);
}

TEST(Berti, HistoryCapacityLimitsIpTracking)
{
    // Hundreds of interleaved IPs (the CactuBSSN regime): per-IP history
    // is evicted before a timely window builds, so nothing is selected.
    BertiPrefetcher b;
    RecordingPort port;
    b.bind(&port);

    Cycle t = 1000;
    for (unsigned round = 0; round < 40; ++round) {
        for (unsigned ipi = 0; ipi < 320; ++ipi) {
            missEvent(b, port, 0x400000 + 4 * ipi,
                      100000ull * ipi + round, t, 100);
            t += 5;
        }
    }
    port.issues.clear();
    Prefetcher::AccessInfo a;
    a.ip = 0x400000;
    a.vLine = 50;
    a.pLine = 50;
    a.hit = true;
    b.onAccess(a);
    EXPECT_TRUE(port.issues.empty());
}

class BertiWatermarkSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(BertiWatermarkSweep, StatusesRespectWatermarks)
{
    auto [l1_wm, l2_wm] = GetParam();
    BertiConfig cfg;
    cfg.l1Watermark = l1_wm;
    cfg.l2Watermark = l2_wm;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);

    Cycle t = 1000;
    for (unsigned i = 0; i < 400; ++i) {
        Addr line = (i % 2 == 0) ? 1000 + i : 800000 + 3 * i;
        missEvent(b, port, kIp, line, t, 100);
        t += 40;
    }
    // ~50% coverage deltas: L1 only if the watermark admits them.
    auto deltas = b.deltasFor(kIp);
    for (const auto &d : deltas) {
        if (d.status == BertiPrefetcher::DeltaStatus::L1Pref)
            EXPECT_LT(l1_wm, 0.55);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Watermarks, BertiWatermarkSweep,
    ::testing::Values(std::make_pair(0.65, 0.35),
                      std::make_pair(0.80, 0.50),
                      std::make_pair(0.35, 0.20),
                      std::make_pair(0.95, 0.65)));

class BertiSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BertiSizeSweep, WorksAtEveryTableScale)
{
    unsigned scale = GetParam();
    BertiConfig cfg;
    cfg.historySets = std::max(1u, 8 * scale / 4);
    cfg.historyWays = 16;
    cfg.deltaTableEntries = std::max(1u, 16 * scale / 4);
    cfg.deltasPerEntry = std::max(1u, 16 * scale / 4);
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);
    runStream(b, port, 300, 40, 100);
    EXPECT_GT(b.historySearches, 0u);
    if (scale >= 4)  // at 1x and above the stream pattern is learned
        EXPECT_FALSE(b.deltasFor(kIp).empty());
}

INSTANTIATE_TEST_SUITE_P(Scales, BertiSizeSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(Berti, NoTimelinessAblationGathersShortDeltas)
{
    // With requireTimely off, even the freshest history entries yield
    // deltas, so short (untimely) deltas like +1 get selected.
    BertiConfig cfg;
    cfg.requireTimely = false;
    BertiPrefetcher b(cfg);
    RecordingPort port;
    b.bind(&port);
    runStream(b, port, 200, 40, 3000);  // latency >> any history age
    EXPECT_GT(b.timelyDeltasFound, 0u);

    BertiPrefetcher strict;  // default: nothing is timely here
    RecordingPort port2;
    strict.bind(&port2);
    runStream(strict, port2, 200, 40, 3000);
    EXPECT_EQ(strict.timelyDeltasFound, 0u);
}

TEST(Berti, NoSelectivityAblationFiresEverything)
{
    BertiConfig cfg;
    cfg.issueAllDeltas = true;
    BertiPrefetcher loose(cfg);
    RecordingPort pl;
    loose.bind(&pl);
    BertiPrefetcher strict;
    RecordingPort ps;
    strict.bind(&ps);

    // Noisy pattern: two interleaved streams -> ~50% coverage deltas.
    for (BertiPrefetcher *b : {&loose, &strict}) {
        RecordingPort &port = b == &loose ? pl : ps;
        Cycle t = 1000;
        for (unsigned i = 0; i < 300; ++i) {
            Addr line = (i % 2 == 0) ? 1000 + i : 700000 + 3 * i;
            missEvent(*b, port, kIp, line, t, 100);
            t += 40;
        }
    }
    // The unselective variant issues strictly more requests.
    EXPECT_GT(pl.issues.size(), ps.issues.size());
}

} // namespace berti
