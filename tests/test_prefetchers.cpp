/** @file Unit tests for the competitor prefetchers (IP-stride,
 *  next-line, BOP, MLOP, IPCP, VLDP, SPP, SPP-PPF, Bingo, MISB). */

#include <gtest/gtest.h>

#include "prefetch/bingo.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/misb.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/ppf.hh"
#include "prefetch/spp.hh"
#include "prefetch/vldp.hh"
#include "test_util.hh"

namespace berti
{

using test::RecordingPort;

namespace
{

Prefetcher::AccessInfo
access(Addr line, Addr ip = 0x400000, bool hit = false)
{
    Prefetcher::AccessInfo a;
    a.vLine = line;
    a.pLine = line;
    a.ip = ip;
    a.hit = hit;
    return a;
}

} // namespace

// ------------------------------------------------------------ IP-stride

TEST(IpStride, LearnsConstantStride)
{
    IpStridePrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 64 * 100;  // page-aligned region, room for prefetches
    for (unsigned i = 0; i < 5; ++i)
        pf.onAccess(access(base + 2 * i));
    EXPECT_TRUE(port.hasIssue(base + 8 + 2));
    EXPECT_TRUE(port.hasIssue(base + 8 + 4));
    EXPECT_TRUE(port.hasIssue(base + 8 + 6));
}

TEST(IpStride, NoConfidenceOnAlternatingStride)
{
    // The paper's lbm example: +1, +2, +1, +2 never gains confidence.
    IpStridePrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr line = 64 * 100;
    for (unsigned i = 0; i < 40; ++i) {
        pf.onAccess(access(line));
        line += (i % 2 == 0) ? 1 : 2;
    }
    EXPECT_TRUE(port.issues.empty());
}

TEST(IpStride, StopsAtPageBoundary)
{
    IpStridePrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr page_end = 64 * 100 + 61;
    for (unsigned i = 0; i < 6; ++i)
        pf.onAccess(access(page_end - 5 + i));
    for (const auto &i : port.issues)
        EXPECT_LT(i.line, 64u * 101);
}

TEST(IpStride, TracksIpsIndependently)
{
    IpStridePrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 6; ++i) {
        pf.onAccess(access(64 * 100 + i, 0x400000));       // stride +1
        pf.onAccess(access(64 * 300 + 60 - 3 * i, 0x500000));  // -3
    }
    EXPECT_TRUE(port.hasIssue(64 * 100 + 5 + 1));
    EXPECT_TRUE(port.hasIssue(64 * 300 + 60 - 15 - 3));
}

TEST(IpStride, SameLineAccessesAreNeutral)
{
    IpStridePrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 4; ++i) {
        pf.onAccess(access(6400 + i));
        pf.onAccess(access(6400 + i));  // duplicate (same line)
    }
    EXPECT_TRUE(port.hasIssue(6400 + 3 + 1));  // stride +1 still learned
}

// ------------------------------------------------------------ Next-line

TEST(NextLine, PrefetchesFollowingLines)
{
    NextLinePrefetcher pf(2);
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(500));
    EXPECT_TRUE(port.hasIssue(501));
    EXPECT_TRUE(port.hasIssue(502));
    EXPECT_EQ(pf.storageBits(), 0u);
}

// ------------------------------------------------------------------ BOP

TEST(Bop, LearnsPlantedOffset)
{
    BopPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Feed accesses with a constant global stride of 8 lines; fills
    // arrive (simulated immediately) so the RR table sees bases.
    Addr line = 1000;
    for (unsigned i = 0; i < 4000; ++i) {
        pf.onAccess(access(line));
        Prefetcher::FillInfo f;
        f.vLine = line;
        f.pLine = line;
        pf.onFill(f);
        line += 8;
    }
    EXPECT_EQ(pf.bestOffset() % 8, 0);  // a multiple of the true stride
}

TEST(Bop, SingleGlobalOffsetForMixedIps)
{
    // BOP is IP-agnostic by construction: the learned offset is shared.
    BopPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(100, 0x1));
    pf.onAccess(access(5000, 0x2));
    // Both issues use the same current offset.
    ASSERT_EQ(port.issues.size(), 2u);
    EXPECT_EQ(port.issues[0].line - 100, port.issues[1].line - 5000);
}

// ----------------------------------------------------------------- MLOP

TEST(Mlop, SelectsOffsetPerLookahead)
{
    MlopPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr line = 2000;
    for (unsigned i = 0; i < 1200; ++i) {
        pf.onAccess(access(line));
        line += 1;
    }
    // After at least one 500-access round, offset +1 dominates.
    bool any = false;
    for (unsigned la = 0; la < 16; ++la)
        any |= pf.offsetAt(la) == 1;
    EXPECT_TRUE(any);
}

TEST(Mlop, IssueVolumeBoundedByLookaheads)
{
    MlopPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr a = 10000, b = 900000;
    for (unsigned i = 0; i < 600; ++i) {
        pf.onAccess(access(a, 0x1));
        pf.onAccess(access(b, 0x2));
        a += 1;
        b -= 2;
    }
    // At most one issue per lookahead level per access.
    EXPECT_LE(port.issues.size(), 600u * 2 * 16);
}

TEST(Mlop, OffsetsTrackBothInterleavedStreams)
{
    // MLOP's offsets are global: with +1 and -2 streams interleaved the
    // selected offsets are pulled between the two patterns (the
    // mcf_s-782 failure mode of the paper, where Berti's per-IP deltas
    // stay clean).
    MlopPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr a = 10000, b = 900000;
    for (unsigned i = 0; i < 2000; ++i) {
        pf.onAccess(access(a, 0x1));
        pf.onAccess(access(b, 0x2));
        a += 1;
        b -= 2;
    }
    for (unsigned la = 0; la < 16; ++la) {
        int off = pf.offsetAt(la);
        EXPECT_TRUE(off == 0 || off % 1 == 0);
        EXPECT_LE(off, 16);
        EXPECT_GE(off, -16);
    }
}

// ----------------------------------------------------------------- IPCP

TEST(Ipcp, ClassifiesConstantStrideAndPrefetches)
{
    IpcpPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 64 * 1000;
    for (unsigned i = 0; i < 8; ++i)
        pf.onAccess(access(base + 2 * i, 0x400100));
    EXPECT_EQ(pf.classOf(0x400100), "CS");
    EXPECT_TRUE(port.hasIssue(base + 14 + 2));
}

TEST(Ipcp, GlobalStreamClassOnDenseRegion)
{
    IpcpPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 64 * 2000;
    // March through a page densely: region becomes a stream.
    for (unsigned i = 0; i < 40; ++i)
        pf.onAccess(access(base + i, 0x400200));
    EXPECT_EQ(pf.classOf(0x400200), "GS");
    // GS issues multi-line streams ahead.
    EXPECT_TRUE(port.hasIssue(base + 39 + 1));
    EXPECT_TRUE(port.hasIssue(base + 39 + 4));
}

TEST(Ipcp, CplxHandlesRepeatingDeltaPattern)
{
    IpcpPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    // Deltas cycle +1,+2: CS never sticks; CPLX signature table should
    // eventually predict.
    Addr base = 64 * 3000;
    Addr line = base;
    bool phase = false;
    for (unsigned i = 0; i < 200; ++i) {
        pf.onAccess(access(line, 0x400300));
        line += phase ? 2 : 1;
        phase = !phase;
        if (line > base + 48)
            line = base;  // stay within one region
    }
    EXPECT_NE(pf.classOf(0x400300), "CS");
    EXPECT_FALSE(port.issues.empty());
}

// ----------------------------------------------------------------- VLDP

TEST(Vldp, PredictsRepeatingDeltaWithinPage)
{
    VldpPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr page = 77;
    Addr base = page << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 20; ++i)
        pf.onAccess(access(base + 3 * (i % 20)));
    EXPECT_FALSE(port.issues.empty());
    for (const auto &i : port.issues) {
        EXPECT_EQ(i.line >> (kPageBits - kLineBits), page);
        EXPECT_EQ((i.line - base) % 3, 0u);
    }
}

TEST(Vldp, NewPageUsesLearnedTables)
{
    VldpPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    // Train +2 pattern on one page.
    Addr base1 = 100ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 30; ++i)
        pf.onAccess(access(base1 + 2 * (i % 30)));
    port.issues.clear();
    // A second page repeats the pattern: the DPTs predict immediately.
    Addr base2 = 200ull << (kPageBits - kLineBits);
    pf.onAccess(access(base2));
    pf.onAccess(access(base2 + 2));
    EXPECT_TRUE(port.hasIssue(base2 + 4));
}

// ------------------------------------------------------------------ SPP

TEST(Spp, LookaheadWalksSignaturePath)
{
    SppPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 500ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 40; ++i)
        pf.onAccess(access(base + i));
    EXPECT_FALSE(port.issues.empty());
    // Deep lookahead: more than one line ahead gets prefetched.
    Addr max_line = 0;
    for (const auto &i : port.issues)
        max_line = std::max(max_line, i.line);
    EXPECT_GT(max_line, base + 40);
}

TEST(Spp, StopsAtPageBoundary)
{
    SppPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 600ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 64; ++i)
        pf.onAccess(access(base + i));
    for (const auto &i : port.issues)
        EXPECT_EQ(i.line >> (kPageBits - kLineBits), 600u);
}

TEST(Spp, ConfidenceSplitsFillLevel)
{
    SppPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 700ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 60; ++i)
        pf.onAccess(access(base + i));
    bool saw_l2 = false;
    for (const auto &i : port.issues)
        saw_l2 |= i.level == FillLevel::L2;
    EXPECT_TRUE(saw_l2);
}

// -------------------------------------------------------------- SPP-PPF

TEST(SppPpf, NegativeTrainingSuppressesPrefetches)
{
    SppPpfPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 800ull << (kPageBits - kLineBits);

    // Two accesses (offsets 0, 8) per fresh page: SPP learns the +8
    // delta and issues a candidate for offset 16, which is *never*
    // demanded — pure negative feedback for the filter.
    std::size_t early = 0, late = 0;
    for (unsigned round = 0; round < 60; ++round) {
        port.issues.clear();
        pf.onAccess(access(base + 64 * round + 0));
        pf.onAccess(access(base + 64 * round + 8));
        if (round >= 5 && round < 15)
            early += port.issues.size();
        if (round >= 50)
            late += port.issues.size();
        for (const auto &i : port.issues) {
            Prefetcher::FillInfo f;
            f.evictedPLine = i.line;
            f.evictedUnusedPrefetch = true;
            pf.onFill(f);
        }
    }
    // After persistent negative feedback the filter throttles: late
    // rounds issue no more than the early ones, trending to zero.
    EXPECT_LE(late, early);
}

TEST(SppPpf, DemandToRejectedCandidateTrainsUp)
{
    // The oscillation guard: rejecting a candidate that later gets
    // demanded must push the filter back toward issuing.
    SppPpfPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 900ull << (kPageBits - kLineBits);
    std::size_t last_round = 0;
    for (unsigned round = 0; round < 20; ++round) {
        port.issues.clear();
        for (unsigned i = 0; i < 48; ++i)
            pf.onAccess(access(base + 64 * round + i));
        last_round = port.issues.size();
        // Mark useless; but the next round demands the candidates, so
        // reject-then-demand training keeps the filter issuing.
        for (const auto &i : port.issues) {
            Prefetcher::FillInfo f;
            f.evictedPLine = i.line;
            f.evictedUnusedPrefetch = true;
            pf.onFill(f);
        }
    }
    (void)last_round;
    // Across the conflicting feedback, the filter never deadlocks into
    // permanent silence: at least one of the last rounds issued.
    std::size_t issued_recently = last_round;
    port.issues.clear();
    for (unsigned i = 0; i < 48; ++i)
        pf.onAccess(access(base + 64 * 25 + i));
    issued_recently += port.issues.size();
    EXPECT_GT(issued_recently, 0u);
}

TEST(SppPpf, StorageExceedsPlainSpp)
{
    SppPrefetcher spp;
    SppPpfPrefetcher ppf;
    EXPECT_GT(ppf.storageBits(), spp.storageBits());
}

// ---------------------------------------------------------------- Bingo

TEST(Bingo, ReplaysRecordedFootprint)
{
    BingoPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Touch a sparse footprint in many regions with the same trigger IP
    // and offset, forcing retirements into the PHT.
    for (unsigned r = 0; r < 70; ++r) {
        Addr base = (1000 + r) * 32ull;
        pf.onAccess(access(base + 0, 0x400400));
        pf.onAccess(access(base + 3, 0x400400));
        pf.onAccess(access(base + 7, 0x400400));
    }
    port.issues.clear();
    // A brand-new region triggered by the same IP+offset replays 3, 7.
    Addr base = 5000 * 32ull;
    pf.onAccess(access(base + 0, 0x400400));
    EXPECT_TRUE(port.hasIssue(base + 3));
    EXPECT_TRUE(port.hasIssue(base + 7));
}

TEST(Bingo, ShortEventFallback)
{
    BingoPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 70; ++r) {
        Addr base = (2000 + r) * 32ull;
        pf.onAccess(access(base + 1, 0x400500));
        pf.onAccess(access(base + 5, 0x400500));
    }
    port.issues.clear();
    // Different trigger offset: the long event misses, the PC-only
    // event still matches and replays the footprint.
    Addr base = 7000 * 32ull;
    pf.onAccess(access(base + 9, 0x400500));
    EXPECT_FALSE(port.issues.empty());
}

// ----------------------------------------------------------------- MISB

TEST(Misb, ReplaysTemporalStream)
{
    MisbPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // An irregular but repeating address sequence (temporal pattern
    // with no spatial structure).
    const Addr seq[] = {901, 13, 5077, 220, 9999, 42};
    for (unsigned round = 0; round < 3; ++round) {
        for (Addr a : seq)
            pf.onAccess(access(a, 0x400600));
    }
    port.issues.clear();
    pf.onAccess(access(seq[0], 0x400600));
    EXPECT_TRUE(port.hasIssue(seq[1]));  // successor in structural space
}

TEST(Misb, BoundsItsMetadata)
{
    MisbPrefetcher::Config cfg;
    cfg.maxMappings = 64;
    MisbPrefetcher pf(cfg);
    RecordingPort port;
    pf.bind(&port);
    for (Addr a = 0; a < 10000; ++a)
        pf.onAccess(access(a * 17 % 99991, 0x400700));
    SUCCEED();  // bounded structures; the trim path executed
}

// ------------------------------------------------ cross-cutting checks

TEST(AllPrefetchers, ReportNamesAndStorage)
{
    std::vector<std::unique_ptr<Prefetcher>> all;
    all.push_back(std::make_unique<IpStridePrefetcher>());
    all.push_back(std::make_unique<NextLinePrefetcher>());
    all.push_back(std::make_unique<BopPrefetcher>());
    all.push_back(std::make_unique<MlopPrefetcher>());
    all.push_back(std::make_unique<IpcpPrefetcher>());
    all.push_back(std::make_unique<VldpPrefetcher>());
    all.push_back(std::make_unique<SppPrefetcher>());
    all.push_back(std::make_unique<SppPpfPrefetcher>());
    all.push_back(std::make_unique<BingoPrefetcher>());
    all.push_back(std::make_unique<MisbPrefetcher>());
    for (const auto &pf : all) {
        EXPECT_FALSE(pf->name().empty());
        if (pf->name() != "next-line")
            EXPECT_GT(pf->storageBits(), 0u);
    }
}

TEST(AllPrefetchers, SurviveRandomAccessStream)
{
    std::vector<std::unique_ptr<Prefetcher>> all;
    all.push_back(std::make_unique<IpStridePrefetcher>());
    all.push_back(std::make_unique<BopPrefetcher>());
    all.push_back(std::make_unique<MlopPrefetcher>());
    all.push_back(std::make_unique<IpcpPrefetcher>());
    all.push_back(std::make_unique<VldpPrefetcher>());
    all.push_back(std::make_unique<SppPpfPrefetcher>());
    all.push_back(std::make_unique<BingoPrefetcher>());
    all.push_back(std::make_unique<MisbPrefetcher>());

    RecordingPort port;
    std::uint64_t x = 0x12345;
    for (auto &pf : all) {
        pf->bind(&port);
        for (int i = 0; i < 5000; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pf->onAccess(access(x % (1u << 22), 0x400000 + (x % 64) * 4,
                                (x & 1) != 0));
        }
    }
    SUCCEED();
}

} // namespace berti
