/**
 * @file
 * The hybrid composition layer's own battery: spec parsing and
 * canonicalization (including a fuzz pass — malformed input must throw
 * the typed Config error, never crash), selection-policy unit tests
 * with scripted children (per-IP credits, set-dueling, the budget
 * governor), BERTI_HYBRID_* options plumbing, parallel-runner
 * determinism across job counts, and result-store key separation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "prefetch/compose.hh"
#include "prefetch/registry.hh"
#include "obs/metrics.hh"
#include "sim/options.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"
#include "test_util.hh"

namespace berti
{

using prefetch::HybridConfig;
using prefetch::HybridPrefetcher;
using prefetch::HybridSelect;
using test::RecordingPort;

namespace
{

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had = true;
            previous = old;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had)
            setenv(key, previous.c_str(), 1);
        else
            unsetenv(key);
    }

  private:
    const char *key;
    bool had = false;
    std::string previous;
};

std::string
canon(const std::string &spec, const HybridConfig &base = HybridConfig{})
{
    return prefetch::canonicalHybridSpec(spec, base);
}

void
expectMalformed(const std::string &spec, const std::string &needle = {})
{
    try {
        (void)canon(spec);
        FAIL() << "spec \"" << spec << "\" should be malformed";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config) << spec;
        const std::string what = e.what();
        EXPECT_NE(what.find(spec), std::string::npos)
            << "error must name the malformed spec: " << what;
        if (!needle.empty()) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "spec " << spec << ": " << what;
        }
    }
}

/** A scripted child: on every miss access it proposes the trigger line
 *  plus each configured delta. Deterministic and instantaneous, so
 *  arbitration behaviour is exactly predictable. */
class ScriptedChild : public Prefetcher
{
  public:
    explicit ScriptedChild(std::vector<std::int64_t> ds)
        : deltas(std::move(ds))
    {}

    void
    onAccess(const AccessInfo &info) override
    {
        if (info.hit || info.vLine == kNoAddr)
            return;
        for (std::int64_t d : deltas) {
            port->issuePrefetch(static_cast<Addr>(
                                    static_cast<std::int64_t>(info.vLine) +
                                    d),
                                FillLevel::L1);
        }
    }

    std::uint64_t storageBits() const override { return 64; }
    std::string name() const override { return "scripted"; }
    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &) const override {}
    void loadState(sim::ByteReader &) override {}

  private:
    std::vector<std::int64_t> deltas;
};

std::unique_ptr<HybridPrefetcher>
makeScriptedHybrid(const HybridConfig &cfg,
                   std::vector<std::vector<std::int64_t>> child_deltas)
{
    std::vector<std::unique_ptr<Prefetcher>> kids;
    for (auto &d : child_deltas)
        kids.push_back(std::make_unique<ScriptedChild>(std::move(d)));
    return std::make_unique<HybridPrefetcher>("hybrid(test)", cfg,
                                              std::move(kids));
}

Prefetcher::AccessInfo
miss(Addr line, Addr ip = 0x400000)
{
    Prefetcher::AccessInfo a;
    a.vLine = line;
    a.pLine = line;
    a.ip = ip;
    return a;
}

/** Report a prefetched line useful: the fill, then the first hit. */
void
feedbackUseful(HybridPrefetcher &h, Addr line, Addr ip = 0x400000)
{
    Prefetcher::AccessInfo a;
    a.vLine = line;
    a.pLine = line;
    a.ip = ip;
    a.hit = true;
    a.firstHitOnPrefetch = true;
    h.onAccess(a);
}

/** Report a prefetched line useless: fill by prefetch, then eviction
 *  unused (the useless signal is keyed by physical line). */
void
feedbackUseless(HybridPrefetcher &h, Addr line)
{
    Prefetcher::FillInfo fill;
    fill.vLine = line;
    fill.pLine = line;
    fill.byPrefetch = true;
    h.onFill(fill);
    Prefetcher::FillInfo evict;
    evict.evictedPLine = line;
    evict.evictedUnusedPrefetch = true;
    h.onFill(evict);
}

/** The same bucket split the duel policy uses (compose.cc). */
unsigned
duelBucket(Addr line)
{
    return static_cast<unsigned>((line ^ (line >> 10)) %
                                 prefetch::kDuelBuckets);
}

} // namespace

// ===================================================================
// Parsing + canonicalization
// ===================================================================

TEST(HybridSpec, CanonicalFormsRoundTrip)
{
    EXPECT_EQ(canon("hybrid(berti,cmc)"), "hybrid(berti,cmc)");
    EXPECT_EQ(canon("hybrid(berti,cmc;select=ip)"),
              "hybrid(berti,cmc;select=ip)");
    EXPECT_EQ(canon("hybrid(berti,cmc;select=duel)"),
              "hybrid(berti,cmc;select=duel)");
    EXPECT_EQ(canon("hybrid(berti,cmc,markov,stream)"),
              "hybrid(berti,cmc,markov,stream)");
    EXPECT_EQ(canon("hybrid(berti,hybrid(cmc,markov))"),
              "hybrid(berti,hybrid(cmc,markov))");
}

TEST(HybridSpec, DefaultValuedOptionsAreElided)
{
    // select=all and default geometry values are the compiled defaults:
    // the canonical name spells only what differs.
    EXPECT_EQ(canon("hybrid(berti,cmc;select=all)"), "hybrid(berti,cmc)");
    EXPECT_EQ(canon("hybrid(berti,cmc;credits=256;degree=0)"),
              "hybrid(berti,cmc)");
    EXPECT_EQ(canon("hybrid(berti,cmc;degree=4)"),
              "hybrid(berti,cmc;degree=4)");
}

TEST(HybridSpec, OptionOrderIsNormalized)
{
    EXPECT_EQ(canon("hybrid(berti,cmc;degree=2;select=ip)"),
              canon("hybrid(berti,cmc;select=ip;degree=2)"));
    EXPECT_EQ(canon("hybrid(berti,cmc;degree=2;select=ip)"),
              "hybrid(berti,cmc;select=ip;degree=2)");
}

TEST(HybridSpec, ChildOrderIsPreserved)
{
    // hybrid(a,b) and hybrid(b,a) are different machines (round-robin
    // start order, duel leader assignment) and must never canonicalize
    // to one name.
    EXPECT_NE(canon("hybrid(berti,cmc)"), canon("hybrid(cmc,berti)"));
}

TEST(HybridSpec, BaseConfigFoldsIntoCanonicalName)
{
    HybridConfig base;
    base.degree = 2;
    EXPECT_EQ(canon("hybrid(berti,cmc)", base),
              "hybrid(berti,cmc;degree=2)");
    // In-spec options win over the base.
    EXPECT_EQ(canon("hybrid(berti,cmc;degree=3)", base),
              "hybrid(berti,cmc;degree=3)");
    // The canonical name is self-describing: re-canonicalizing it with
    // a default base is the identity.
    EXPECT_EQ(canon(canon("hybrid(berti,cmc)", base)),
              "hybrid(berti,cmc;degree=2)");
}

TEST(HybridSpec, MalformedSpecsThrowTypedConfigErrors)
{
    expectMalformed("hybrid()", "empty child");
    expectMalformed("hybrid(berti)", "at least 2 children");
    expectMalformed("hybrid(berti,nope)", "unknown child");
    expectMalformed("hybrid(berti,cmc", "missing ')'");
    expectMalformed("hybrid(berti,cmc))", "trailing");
    expectMalformed("hybrid(berti,cmc)x", "trailing");
    expectMalformed("hybrid(berti,cmc;select=weird)", "select");
    expectMalformed("hybrid(berti,cmc;degree=)", "degree");
    expectMalformed("hybrid(berti,cmc;degree=abc)", "not a valid number");
    expectMalformed("hybrid(berti,cmc;bogus=1)", "unknown option");
    expectMalformed("hybrid(berti,cmc,markov;select=duel)",
                    "exactly 2 children");
    expectMalformed("hybrid(berti,cmc,markov,stream,spp)", "at most");
    expectMalformed("hybrid(berti,cmc;duel-sets=9999)", "duel-sets");
    expectMalformed("hybrid(berti,cmc;psel-bits=40)", "psel-bits");
    // Depth cap: 5 levels of nesting.
    expectMalformed(
        "hybrid(berti,hybrid(berti,hybrid(berti,hybrid(berti,"
        "hybrid(berti,cmc)))))",
        "nesting");
}

TEST(HybridSpec, RegistryIntegration)
{
    EXPECT_TRUE(prefetch::known("hybrid(berti,cmc)"));
    EXPECT_TRUE(prefetch::known("hybrid(berti,markov;select=duel)"));
    EXPECT_FALSE(prefetch::known("hybrid(berti,nope)"));
    EXPECT_FALSE(prefetch::known("hybrid(berti)"));
    EXPECT_FALSE(prefetch::isHybridSpec("berti"));
    EXPECT_TRUE(prefetch::isHybridSpec("hybrid(berti,cmc)"));

    // The factory builds a live prefetcher whose name is canonical.
    auto pf = prefetch::make("hybrid(berti,cmc;select=all)")();
    ASSERT_NE(pf, nullptr);
    EXPECT_EQ(pf->name(), "hybrid(berti,cmc)");

    // Plain unknown names still get the typed listing error.
    EXPECT_THROW((void)prefetch::make("hybrid-ish"), verify::SimError);
}

TEST(HybridSpec, FuzzNeverCrashes)
{
    // Random mutations of valid specs plus raw random strings over the
    // spec alphabet: every input either parses cleanly or throws the
    // typed Config error. Anything else (crash, other exception type)
    // fails the test. Deterministic LCG so failures reproduce.
    const std::string alphabet = "hybrid(),;=abcmkov-stre0123456789";
    const std::vector<std::string> seeds = {
        "hybrid(berti,cmc)",
        "hybrid(berti,cmc;select=ip)",
        "hybrid(berti,markov;select=duel;duel-sets=32)",
        "hybrid(berti,hybrid(cmc,markov);degree=3)",
    };
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    unsigned parsed = 0, rejected = 0;
    for (unsigned iter = 0; iter < 4000; ++iter) {
        std::string s;
        if (iter % 2 == 0) {
            // Mutate a valid seed: overwrite 1-3 random positions.
            s = seeds[next() % seeds.size()];
            unsigned edits = 1 + next() % 3;
            for (unsigned e = 0; e < edits; ++e)
                s[next() % s.size()] = alphabet[next() % alphabet.size()];
        } else {
            s = "hybrid(";
            unsigned len = next() % 40;
            for (unsigned i = 0; i < len; ++i)
                s.push_back(alphabet[next() % alphabet.size()]);
        }
        try {
            std::string c = canon(s);
            // Canonicalization must be idempotent on its own output.
            EXPECT_EQ(canon(c), c) << "input " << s;
            ++parsed;
        } catch (const verify::SimError &e) {
            EXPECT_EQ(e.kind(), verify::ErrorKind::Config)
                << "input " << s;
            ++rejected;
        }
    }
    // The fuzz must exercise both paths.
    EXPECT_GT(parsed, 0u);
    EXPECT_GT(rejected, 100u);
}

// ===================================================================
// Arbitration with scripted children
// ===================================================================

TEST(HybridArbitration, UnionForwardsDeduplicated)
{
    // Children overlap on +1: the union forwards {+1, +2, +3} once.
    // (degree high enough that the budget governor stays out of the
    // way — it is exercised separately below.)
    HybridConfig cfg;
    cfg.degree = 8;
    auto h = makeScriptedHybrid(cfg, {{1, 2}, {1, 3}});
    RecordingPort port;
    h->bind(&port);
    h->onAccess(miss(1000));
    EXPECT_EQ(port.issues.size(), 3u);
    EXPECT_TRUE(port.hasIssue(1001));
    EXPECT_TRUE(port.hasIssue(1002));
    EXPECT_TRUE(port.hasIssue(1003));
    EXPECT_EQ(h->hybridStats().deduplicated, 1u);
    EXPECT_EQ(h->hybridStats().proposals, 4u);
}

TEST(HybridArbitration, ExplicitDegreeCapsEveryCall)
{
    HybridConfig cfg;
    cfg.degree = 2;
    auto h = makeScriptedHybrid(cfg, {{1, 2, 3}, {10, 11, 12}});
    RecordingPort port;
    h->bind(&port);
    for (unsigned i = 0; i < 50; ++i) {
        port.issues.clear();
        h->onAccess(miss(5000 + 100 * i));
        EXPECT_LE(port.issues.size(), 2u) << "call " << i;
    }
    EXPECT_GT(h->hybridStats().budgetDropped, 0u);
}

TEST(HybridArbitration, GreedyGovernorNeverExceedsGreediestChild)
{
    // degree=0: the cap is the greediest child's own proposal count in
    // that call — here 4 — so a 2-child union never doubles pressure.
    auto h = makeScriptedHybrid(HybridConfig{},
                                {{1, 2, 3, 4}, {10, 11}});
    RecordingPort port;
    h->bind(&port);
    for (unsigned i = 0; i < 20; ++i) {
        port.issues.clear();
        h->onAccess(miss(9000 + 100 * i));
        EXPECT_LE(port.issues.size(), 4u) << "call " << i;
    }
    EXPECT_GT(h->hybridStats().budgetDropped, 0u);
}

TEST(HybridArbitration, RoundRobinInterleavesChildren)
{
    // With a budget of 2 and disjoint proposals, one slot goes to each
    // child (round-robin), not both to child 0.
    HybridConfig cfg;
    cfg.degree = 2;
    auto h = makeScriptedHybrid(cfg, {{1, 2}, {10, 11}});
    RecordingPort port;
    h->bind(&port);
    h->onAccess(miss(3000));
    ASSERT_EQ(port.issues.size(), 2u);
    EXPECT_TRUE(port.hasIssue(3001));   // child 0's first
    EXPECT_TRUE(port.hasIssue(3010));   // child 1's first
}

// ===================================================================
// Per-IP credit selector
// ===================================================================

TEST(HybridIpSelector, LearnsUsefulChildPerIp)
{
    HybridConfig cfg;
    cfg.select = HybridSelect::Ip;
    cfg.degree = 2;  // let both 1-proposal children through in union mode
    auto h = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port;
    h->bind(&port);

    const Addr ip = 0x400abc;
    // Untrained: union forwarding.
    EXPECT_EQ(h->selectedChildFor(ip), 2u);
    h->onAccess(miss(10000, ip));
    EXPECT_EQ(port.issues.size(), 2u);

    // Child 0's prefetches keep getting demanded; child 1's never do.
    for (unsigned i = 1; i <= 8; ++i) {
        Addr trigger = 10000 + 100 * i;
        h->onAccess(miss(trigger, ip));
        feedbackUseful(*h, trigger + 1, ip);
        feedbackUseless(*h, trigger + 33);
    }
    EXPECT_EQ(h->selectedChildFor(ip), 0u);
    EXPECT_GT(h->hybridStats().usefulFeedback, 0u);
    EXPECT_GT(h->hybridStats().uselessFeedback, 0u);

    // Trained: only child 0's proposal is forwarded for this IP.
    port.issues.clear();
    h->onAccess(miss(50000, ip));
    ASSERT_EQ(port.issues.size(), 1u);
    EXPECT_EQ(port.issues[0].line, 50001u);
    EXPECT_GT(h->hybridStats().suppressed, 0u);
}

TEST(HybridIpSelector, ShadowTableRehabilitatesSuppressedChild)
{
    HybridConfig cfg;
    cfg.select = HybridSelect::Ip;
    cfg.degree = 2;
    auto h = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port;
    h->bind(&port);

    const Addr ip = 0x400def;
    // Train child 0 as the winner for this IP.
    for (unsigned i = 1; i <= 6; ++i) {
        Addr trigger = 20000 + 100 * i;
        h->onAccess(miss(trigger, ip));
        feedbackUseful(*h, trigger + 1, ip);
    }
    ASSERT_EQ(h->selectedChildFor(ip), 0u);

    // Now the access pattern shifts: the +33 lines child 1 proposes
    // (suppressed, recorded in the shadow table) start being demanded.
    for (unsigned i = 1; i <= 40; ++i) {
        Addr trigger = 30000 + 100 * i;
        h->onAccess(miss(trigger, ip));
        // Suppressed child 1 proposal for this trigger was +33.
        h->onAccess(miss(trigger + 33, ip));
        // And child 0's issued +1 line turns out useless.
        feedbackUseless(*h, trigger + 1);
    }
    EXPECT_GT(h->hybridStats().shadowHits, 0u);
    // The loser earned credit back: selection is no longer pinned to
    // child 0 for this IP.
    EXPECT_NE(h->selectedChildFor(ip), 0u);
}

// ===================================================================
// Set-dueling
// ===================================================================

TEST(HybridDuel, LeaderBucketsAlwaysIssueTheirOwnChild)
{
    HybridConfig cfg;
    cfg.select = HybridSelect::Duel;
    auto h = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port;
    h->bind(&port);

    // Find a leader-0 and a leader-1 trigger line.
    Addr lead0 = 0, lead1 = 0;
    for (Addr line = 1; line < 1000000 && (!lead0 || !lead1); ++line) {
        unsigned b = duelBucket(line);
        if (!lead0 && b < cfg.duelSets)
            lead0 = line;
        if (!lead1 && b >= prefetch::kDuelBuckets - cfg.duelSets)
            lead1 = line;
    }
    ASSERT_NE(lead0, 0u);
    ASSERT_NE(lead1, 0u);

    port.issues.clear();
    h->onAccess(miss(lead0));
    ASSERT_EQ(port.issues.size(), 1u);
    EXPECT_EQ(port.issues[0].line, lead0 + 1) << "leader-0 issues child 0";

    port.issues.clear();
    h->onAccess(miss(lead1));
    ASSERT_EQ(port.issues.size(), 1u);
    EXPECT_EQ(port.issues[0].line, lead1 + 33)
        << "leader-1 issues child 1";
}

TEST(HybridDuel, PselConvergesToUsefulChildAndFollowersAdoptIt)
{
    HybridConfig cfg;
    cfg.select = HybridSelect::Duel;
    auto h = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port;
    h->bind(&port);

    const unsigned start_psel = h->pselValue();

    // Sweep triggers across the address space. Child 0's prefetches
    // (leader-0 buckets) are demanded; child 1's (leader-1 buckets)
    // are evicted unused. Both signals push PSEL toward child 0.
    for (Addr line = 1; line < 400000; line += 37) {
        unsigned b = duelBucket(line);
        bool l0 = b < cfg.duelSets;
        bool l1 = b >= prefetch::kDuelBuckets - cfg.duelSets;
        if (!l0 && !l1)
            continue;
        h->onAccess(miss(line));
        if (l0)
            feedbackUseful(*h, line + 1);
        else
            feedbackUseless(*h, line + 33);
    }
    EXPECT_LT(h->pselValue(), start_psel);
    EXPECT_EQ(h->duelWinner(), 0u);

    // A follower bucket now issues from the winner only.
    Addr follower = 0;
    for (Addr line = 1; line < 1000000; ++line) {
        unsigned b = duelBucket(line);
        if (b >= cfg.duelSets &&
            b < prefetch::kDuelBuckets - cfg.duelSets) {
            follower = line;
            break;
        }
    }
    ASSERT_NE(follower, 0u);
    port.issues.clear();
    h->onAccess(miss(follower));
    ASSERT_EQ(port.issues.size(), 1u);
    EXPECT_EQ(port.issues[0].line, follower + 1);
}

// ===================================================================
// Metrics, storage, checkpoint plumbing
// ===================================================================

TEST(HybridPlumbing, MetricsExported)
{
    HybridConfig cfg;
    cfg.degree = 2;
    auto h = makeScriptedHybrid(cfg, {{1}, {2}});
    RecordingPort port;
    h->bind(&port);
    obs::MetricsRegistry reg;
    h->registerMetrics(reg, "l1d.pf.");
    h->onAccess(miss(700));
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("l1d.pf.hybrid.proposals"), 2u);
    EXPECT_EQ(snap.counter("l1d.pf.hybrid.forwarded"), 2u);
    EXPECT_TRUE(snap.contains("l1d.pf.hybrid.suppressed"));
    EXPECT_TRUE(snap.contains("l1d.pf.hybrid.budget_dropped"));
    // Children export under a child<i>. prefix (base storage gauge).
    EXPECT_TRUE(snap.contains("l1d.pf.child0.storage_bits"));
    EXPECT_TRUE(snap.contains("l1d.pf.child1.storage_bits"));
}

TEST(HybridPlumbing, StorageSumsChildrenPlusSelector)
{
    auto pf = prefetch::make("hybrid(berti,cmc)")();
    auto berti = prefetch::make("berti")();
    auto cmc = prefetch::make("cmc")();
    EXPECT_GT(pf->storageBits(),
              berti->storageBits() + cmc->storageBits())
        << "selector state must be accounted";
}

TEST(HybridPlumbing, CheckpointStateRoundTripsBitIdentical)
{
    HybridConfig cfg;
    cfg.select = HybridSelect::Ip;
    auto a = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port;
    a->bind(&port);
    for (unsigned i = 1; i <= 30; ++i) {
        Addr t = 40000 + 64 * i;
        a->onAccess(miss(t, 0x400000 + (i % 4)));
        if (i % 2)
            feedbackUseful(*a, t + 1, 0x400000 + (i % 4));
        else
            feedbackUseless(*a, t + 33);
    }
    ASSERT_TRUE(a->checkpointSupported());
    sim::ByteWriter w1;
    a->saveState(w1);

    auto b = makeScriptedHybrid(cfg, {{1}, {33}});
    RecordingPort port_b;
    b->bind(&port_b);
    sim::ByteReader r(w1.data(), "test");
    b->loadState(r);
    EXPECT_TRUE(r.atEnd());

    sim::ByteWriter w2;
    b->saveState(w2);
    EXPECT_EQ(w1.data(), w2.data()) << "restored state must re-serialize"
                                       " byte-identically";

    // And the restored selector behaves identically.
    port.issues.clear();
    port_b.issues.clear();
    a->onAccess(miss(90000, 0x400001));
    b->onAccess(miss(90000, 0x400001));
    ASSERT_EQ(port.issues.size(), port_b.issues.size());
    for (std::size_t i = 0; i < port.issues.size(); ++i)
        EXPECT_EQ(port.issues[i].line, port_b.issues[i].line);
}

// ===================================================================
// Options plumbing (no longer passthrough fiction)
// ===================================================================

TEST(HybridOptions, EnvKnobsParseIntoConfig)
{
    ScopedEnv degree("BERTI_HYBRID_DEGREE", "3");
    ScopedEnv credits("BERTI_HYBRID_CREDITS", "128");
    ScopedEnv cmax("BERTI_HYBRID_CREDIT_MAX", "31");
    ScopedEnv duel("BERTI_HYBRID_DUEL_SETS", "32");
    ScopedEnv psel("BERTI_HYBRID_PSEL_BITS", "8");

    sim::SimOptions opt = sim::SimOptions::fromEnv();
    EXPECT_EQ(opt.hybridDegree, 3u);
    EXPECT_EQ(opt.hybridCreditEntries, 128u);
    EXPECT_EQ(opt.hybridCreditMax, 31u);
    EXPECT_EQ(opt.hybridDuelSets, 32u);
    EXPECT_EQ(opt.hybridPselBits, 8u);

    HybridConfig cfg = HybridConfig::fromOptions(opt);
    EXPECT_EQ(cfg.degree, 3u);
    EXPECT_EQ(cfg.creditEntries, 128u);
    EXPECT_EQ(cfg.creditMax, 31u);
    EXPECT_EQ(cfg.duelSets, 32u);
    EXPECT_EQ(cfg.pselBits, 8u);
}

TEST(HybridOptions, FlagsOverrideAndMalformedValuesThrow)
{
    sim::SimOptions opt;
    EXPECT_TRUE(opt.applyFlag("--hybrid-degree=5"));
    EXPECT_EQ(opt.hybridDegree, 5u);
    EXPECT_TRUE(opt.applyFlag("--hybrid-duel-sets=16"));
    EXPECT_EQ(opt.hybridDuelSets, 16u);
    EXPECT_FALSE(opt.applyFlag("--not-a-hybrid-flag"));
    EXPECT_THROW((void)opt.applyFlag("--hybrid-credits=abc"),
                 verify::SimError);
    EXPECT_THROW((void)opt.applyFlag("--hybrid-credits=0"),
                 verify::SimError);
}

TEST(HybridOptions, GeometryReachesTheBuiltPrefetcher)
{
    // The knob must actually reshape the machine, through the same
    // Registry::make(name, opt) path the harness uses — the regression
    // this satellite pins: options-aware make() is no longer a
    // passthrough.
    sim::SimOptions opt;
    opt.hybridDegree = 1;
    auto pf = prefetch::make("hybrid(berti,cmc)", opt)();
    auto *h = dynamic_cast<HybridPrefetcher *>(pf.get());
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->config().degree, 1u);
    EXPECT_EQ(h->name(), "hybrid(berti,cmc;degree=1)");

    EXPECT_EQ(prefetch::canonicalName("hybrid(berti,cmc)", opt),
              "hybrid(berti,cmc;degree=1)");
    EXPECT_EQ(prefetch::canonicalName("berti", opt), "berti");

    // makeSpec records the canonical name too.
    PrefetcherSpec spec = makeSpec("hybrid(berti,cmc)", opt);
    EXPECT_EQ(spec.name, "hybrid(berti,cmc;degree=1)");
}

// ===================================================================
// Determinism + result-store keys
// ===================================================================

TEST(HybridDeterminism, BitIdenticalAcrossJobCounts)
{
    std::vector<Workload> workloads = {findWorkload("stream-like.1"),
                                       findWorkload("gcc-like.2226"),
                                       findWorkload("mcf-like.1554")};
    SimParams p;
    p.warmupInstructions = 3000;
    p.measureInstructions = 10000;
    std::vector<PrefetcherSpec> specs = {
        makeSpec("hybrid(berti,cmc;select=ip)"),
        makeSpec("hybrid(berti,markov;select=duel)")};

    auto one = runMatrixParallel(workloads, specs, p, 1);
    auto eight = runMatrixParallel(workloads, specs, p, 8);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t s = 0; s < one.size(); ++s) {
        ASSERT_EQ(one[s].size(), eight[s].size());
        for (std::size_t w = 0; w < one[s].size(); ++w) {
            EXPECT_EQ(resultSnapshot(one[s][w]),
                      resultSnapshot(eight[s][w]))
                << specs[s].name << "/" << workloads[w].name;
        }
    }
}

TEST(HybridStoreKeys, ChildOrderAndGeometrySeparateKeys)
{
    SimParams p;
    const std::string w = "mcf-like.472";

    auto key = [&](const std::string &spec_name,
                   const sim::SimOptions &opt) {
        return harness::makeStoreKey(
                   w, prefetch::canonicalName(spec_name, opt), p)
            .hash();
    };

    sim::SimOptions defaults;
    sim::SimOptions degree2;
    degree2.hybridDegree = 2;

    // hybrid(a,b) vs hybrid(b,a): different cells.
    EXPECT_NE(key("hybrid(berti,cmc)", defaults),
              key("hybrid(cmc,berti)", defaults));
    // Same spec under different BERTI_HYBRID_* geometry: different
    // cells — the canonical name folds the knob in.
    EXPECT_NE(key("hybrid(berti,cmc)", defaults),
              key("hybrid(berti,cmc)", degree2));
    // Spelled-out defaults collapse onto the default cell.
    EXPECT_EQ(key("hybrid(berti,cmc;select=all)", defaults),
              key("hybrid(berti,cmc)", defaults));
}

} // namespace berti
