/** @file Hashed-perceptron branch predictor tests. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "sim/rng.hh"

namespace berti
{

namespace
{

double
accuracyOn(BranchPredictor &bp, Addr ip,
           const std::vector<bool> &outcomes)
{
    unsigned correct = 0;
    for (bool taken : outcomes) {
        correct += bp.predict(ip) == taken;
        bp.update(ip, taken);
    }
    return static_cast<double>(correct) / outcomes.size();
}

} // namespace

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    std::vector<bool> outcomes(2000, true);
    EXPECT_GT(accuracyOn(bp, 0x400100, outcomes), 0.98);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    std::vector<bool> outcomes(2000, false);
    EXPECT_GT(accuracyOn(bp, 0x400200, outcomes), 0.95);
}

TEST(BranchPredictor, LearnsAlternationViaHistory)
{
    // T,N,T,N is unpredictable for a bimodal predictor but trivial for
    // history-indexed perceptron tables.
    BranchPredictor bp;
    std::vector<bool> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.push_back(i % 2 == 0);
    EXPECT_GT(accuracyOn(bp, 0x400300, outcomes), 0.9);
}

TEST(BranchPredictor, LearnsLoopExitPattern)
{
    // Taken 15 of 16 (loop back-edge with periodic exit).
    BranchPredictor bp;
    std::vector<bool> outcomes;
    for (int i = 0; i < 8000; ++i)
        outcomes.push_back(i % 16 != 15);
    // Must at least match the always-taken floor of 15/16.
    EXPECT_GE(accuracyOn(bp, 0x400400, outcomes), 0.9370);
}

TEST(BranchPredictor, RandomIsHard)
{
    BranchPredictor bp;
    Rng rng(5);
    std::vector<bool> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.push_back(rng.nextBool(0.5));
    double acc = accuracyOn(bp, 0x400500, outcomes);
    EXPECT_GT(acc, 0.4);
    EXPECT_LT(acc, 0.65);
}

TEST(BranchPredictor, IndependentBranchesDoNotDestroyEachOther)
{
    BranchPredictor bp;
    unsigned correct = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        // Branch A always taken; branch B never taken; interleaved.
        correct += bp.predict(0x400600) == true;
        bp.update(0x400600, true);
        correct += bp.predict(0x400700) == false;
        bp.update(0x400700, false);
    }
    EXPECT_GT(static_cast<double>(correct) / (2 * n), 0.95);
}

} // namespace berti
