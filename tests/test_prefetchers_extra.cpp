/** @file Unit tests for the related-work prefetchers added beyond the
 *  paper's head-to-head set — Pythia-lite (RL), SMS, stream, the CMC
 *  temporal and Pangloss-Markov specs — plus a registry-driven battery
 *  that exercises *every* buildable spec (hybrids included), so a
 *  newly registered prefetcher is covered with zero edits here. */

#include <gtest/gtest.h>

#include "prefetch/cmc.hh"
#include "prefetch/compose.hh"
#include "prefetch/markov.hh"
#include "prefetch/pythia.hh"
#include "prefetch/registry.hh"
#include "prefetch/sms.hh"
#include "prefetch/stream.hh"
#include "test_util.hh"

namespace berti
{

using test::RecordingPort;

namespace
{

Prefetcher::AccessInfo
access(Addr line, Addr ip = 0x400000, bool hit = false)
{
    Prefetcher::AccessInfo a;
    a.vLine = line;
    a.pLine = line;
    a.ip = ip;
    a.hit = hit;
    return a;
}

} // namespace

// --------------------------------------------------------------- Pythia

TEST(Pythia, LearnsToPrefetchCoveredPattern)
{
    PythiaPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Sequential stream with positive usefulness feedback: issuing
    // should persist (Q-values for the matching offset rise).
    Addr base = 1000ull << (kPageBits - kLineBits);
    for (unsigned round = 0; round < 60; ++round) {
        port.issues.clear();
        for (unsigned i = 0; i < 32; ++i) {
            Addr line = base + 64 * round + i;
            Prefetcher::AccessInfo a = access(line);
            // Usefulness feedback for lines it prefetched earlier.
            a.firstHitOnPrefetch = true;
            pf.onAccess(a);
        }
    }
    EXPECT_FALSE(port.issues.empty());
}

TEST(Pythia, NegativeRewardSuppressesAction)
{
    PythiaPrefetcher::Config cfg;
    cfg.epsilon = 0.0;  // deterministic policy for the test
    PythiaPrefetcher pf(cfg);
    RecordingPort port;
    pf.bind(&port);

    // Touch only even offsets; every prefetch is reported useless.
    Addr base = 2000ull << (kPageBits - kLineBits);
    std::size_t early = 0, late = 0;
    for (unsigned round = 0; round < 80; ++round) {
        port.issues.clear();
        for (unsigned i = 0; i < 16; ++i)
            pf.onAccess(access(base + 64 * round + 2 * i));
        if (round < 10)
            early += port.issues.size();
        if (round >= 70)
            late += port.issues.size();
        for (const auto &i : port.issues) {
            Prefetcher::FillInfo f;
            f.evictedPLine = i.line;
            f.evictedUnusedPrefetch = true;
            pf.onFill(f);
        }
    }
    // The agent converges away from the useless actions... or at
    // minimum does not increase its issue rate.
    EXPECT_LE(late, early + 16);
}

TEST(Pythia, StaysWithinPage)
{
    PythiaPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 3000ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 500; ++i) {
        pf.onAccess(access(base + (i % 64)));
        pf.onAccess(access(base + 63));  // page edge
    }
    for (const auto &i : port.issues) {
        EXPECT_EQ(i.line >> (kPageBits - kLineBits), 3000u);
    }
}

TEST(Pythia, ReportsPublishedClassStorage)
{
    PythiaPrefetcher pf;
    // Pythia's on-chip budget is ~25.5 KB; ours must be in that class.
    double kb = static_cast<double>(pf.storageBits()) / 8192.0;
    EXPECT_GT(kb, 5.0);
    EXPECT_LT(kb, 60.0);
}

// ------------------------------------------------------------------ SMS

TEST(Sms, ReplaysFootprintOnTriggerMatch)
{
    SmsPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 40; ++r) {
        Addr base = (100 + r) * 32ull;
        pf.onAccess(access(base + 2, 0x400800));
        pf.onAccess(access(base + 9, 0x400800));
        pf.onAccess(access(base + 30, 0x400800));
    }
    port.issues.clear();
    Addr base = 9000 * 32ull;
    pf.onAccess(access(base + 2, 0x400800));
    EXPECT_TRUE(port.hasIssue(base + 9));
    EXPECT_TRUE(port.hasIssue(base + 30));
    EXPECT_FALSE(port.hasIssue(base + 5));  // never in the footprint
}

TEST(Sms, DifferentTriggerOffsetDifferentPattern)
{
    // SMS keys on (PC, offset): unlike Bingo there is no PC-only
    // fallback, so an unseen trigger offset replays nothing.
    SmsPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 40; ++r) {
        Addr base = (200 + r) * 32ull;
        pf.onAccess(access(base + 1, 0x400900));
        pf.onAccess(access(base + 8, 0x400900));
    }
    port.issues.clear();
    pf.onAccess(access(9500 * 32ull + 7, 0x400900));
    EXPECT_TRUE(port.issues.empty());
}

TEST(Sms, StorageReported)
{
    SmsPrefetcher pf;
    EXPECT_GT(pf.storageBits(), 0u);
}

// --------------------------------------------------------------- Stream

TEST(Stream, ArmsAfterTrainingMisses)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(5000));
    pf.onAccess(access(5001));
    EXPECT_TRUE(port.issues.empty());  // still training
    pf.onAccess(access(5002));
    EXPECT_TRUE(port.hasIssue(5003));
    EXPECT_TRUE(port.hasIssue(5008));  // depth 6 ahead
}

TEST(Stream, DetectsDescendingDirection)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(9000));
    pf.onAccess(access(8999));
    pf.onAccess(access(8998));
    pf.onAccess(access(8997));
    EXPECT_TRUE(port.hasIssue(8996));
}

TEST(Stream, IgnoresHits)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 10; ++i)
        pf.onAccess(access(7000 + i, 0x400000, true));
    EXPECT_TRUE(port.issues.empty());
}

TEST(Stream, TracksMultipleStreams)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 4; ++i) {
        pf.onAccess(access(10000 + i));
        pf.onAccess(access(500000 + 2 * i));
    }
    EXPECT_TRUE(port.hasIssue(10004));
    EXPECT_TRUE(port.hasIssue(500000 + 2 * 3 + 1));
}

// ------------------------------------------------------------------ CMC

TEST(Cmc, ReplaysRecordedMissChain)
{
    CmcPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Train an irregular (non-arithmetic) miss sequence twice, then
    // re-trigger its head: the recorded chain must replay.
    const Addr chain[] = {70001, 91234, 50042, 120777};
    for (unsigned round = 0; round < 3; ++round) {
        for (Addr line : chain)
            pf.onAccess(access(line));
        pf.onAccess(access(999 + round));  // break the sequence
    }
    port.issues.clear();
    pf.onAccess(access(chain[0]));
    EXPECT_TRUE(port.hasIssue(chain[1]));
    EXPECT_TRUE(port.hasIssue(chain[2]));  // chain depth >= 2
}

TEST(Cmc, IgnoresHits)
{
    CmcPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 3; ++r) {
        pf.onAccess(access(41000));
        pf.onAccess(access(47777));
    }
    port.issues.clear();
    // A *hit* on the trigger carries no temporal-correlation signal.
    pf.onAccess(access(41000, 0x400000, /*hit=*/true));
    EXPECT_TRUE(port.issues.empty());
}

TEST(Cmc, AdaptsWhenSuccessorChanges)
{
    CmcPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 4; ++r) {
        pf.onAccess(access(61000));
        pf.onAccess(access(62000));
        pf.onAccess(access(1000 + r));
    }
    // The program changes phase: 61000 now misses into 63000.
    for (unsigned r = 0; r < 12; ++r) {
        pf.onAccess(access(61000));
        pf.onAccess(access(63000));
        pf.onAccess(access(2000 + r));
    }
    port.issues.clear();
    pf.onAccess(access(61000));
    EXPECT_TRUE(port.hasIssue(63000));
}

TEST(Cmc, StorageBoundedAndCheckpointable)
{
    CmcPrefetcher pf;
    EXPECT_GT(pf.storageBits(), 0u);
    EXPECT_LT(pf.storageBits() / 8192.0, 64.0) << "CMC must stay small";
    EXPECT_TRUE(pf.checkpointSupported());
}

// --------------------------------------------------------------- Markov

TEST(Markov, WalksLearnedDeltaChain)
{
    MarkovPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Pattern +2,+3 repeating inside pages: after training, a +2 step
    // should predict +3 (and chain onward).
    for (unsigned page = 0; page < 20; ++page) {
        Addr base = (5000ull + page) << (kPageBits - kLineBits);
        Addr line = base;
        for (unsigned i = 0; i < 10; ++i) {
            pf.onAccess(access(line));
            line += (i % 2 == 0) ? 2 : 3;
        }
    }
    Addr base = 9999ull << (kPageBits - kLineBits);
    pf.onAccess(access(base + 10));
    pf.onAccess(access(base + 12));  // delta +2 observed
    EXPECT_TRUE(port.hasIssue(base + 15)) << "+3 successor of +2";
}

TEST(Markov, StaysWithinPage)
{
    MarkovPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned page = 0; page < 30; ++page) {
        Addr base = (7000ull + page) << (kPageBits - kLineBits);
        for (unsigned off = 50; off < 64; off += 5)
            pf.onAccess(access(base + off));
    }
    for (const auto &i : port.issues) {
        Addr page = i.line >> (kPageBits - kLineBits);
        EXPECT_GE(page, 7000u);
        EXPECT_LT(page, 7030u);
    }
}

TEST(Markov, RareTransitionsNotTrusted)
{
    MarkovPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    // Dominant +1 stream with a single noisy +7: the +7 transition
    // never reaches the minimum share, so predictions off a fresh +1
    // step walk the +1 chain only.
    Addr base = 8000ull << (kPageBits - kLineBits);
    Addr line = base;
    for (unsigned i = 0; i < 40; ++i) {
        pf.onAccess(access(line));
        line += (i == 20) ? 7 : 1;
        if ((line & (kLinesPerPage - 1)) > 56)
            line = (line & ~static_cast<Addr>(kLinesPerPage - 1)) +
                   kLinesPerPage;
    }
    port.issues.clear();
    Addr fresh = 8500ull << (kPageBits - kLineBits);
    pf.onAccess(access(fresh + 10));
    pf.onAccess(access(fresh + 11));  // a +1 step
    ASSERT_FALSE(port.issues.empty());
    Addr expect = fresh + 12;
    for (const auto &i : port.issues) {
        EXPECT_EQ(i.line, expect) << "prediction walk must be all +1";
        ++expect;
    }
}

TEST(Markov, StorageBoundedAndCheckpointable)
{
    MarkovPrefetcher pf;
    EXPECT_GT(pf.storageBits(), 0u);
    EXPECT_LT(pf.storageBits() / 8192.0, 16.0);
    EXPECT_TRUE(pf.checkpointSupported());
}

// ----------------------------------------- registry-driven battery

namespace
{

/** A deterministic mixed access stream: strided runs, page-local
 *  repeats and pseudo-random misses — enough texture that every
 *  registered design trains and most issue something. */
void
driveMixedStream(Prefetcher &pf, unsigned ops = 2000)
{
    std::uint64_t x = 12345;
    Addr stride_line = 100000;
    for (unsigned i = 0; i < ops; ++i) {
        pf.onAccess(access(stride_line, 0x400100));
        stride_line += 1;
        if (i % 3 == 0) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pf.onAccess(access(x % (1ull << 24), 0x400200));
        }
        if (i % 5 == 0)
            pf.onAccess(access(200000 + (i % 64), 0x400300));
        pf.tick();
    }
}

} // namespace

/** Every buildable spec — plain and hybrid — survives a mixed stream,
 *  reports bounded storage, and answers the introspection hooks.
 *  Iterates prefetch::allSpecs(), so future specs are covered with
 *  zero edits here. */
TEST(RegistryBattery, EverySpecTrainsOnMixedStream)
{
    for (const std::string &name : prefetch::allSpecs()) {
        SCOPED_TRACE("spec " + name);
        prefetch::Factory f = prefetch::make(name);
        if (!f) {
            EXPECT_EQ(name, "none");
            continue;
        }
        auto pf = f();
        RecordingPort port;
        pf->bind(&port);
        driveMixedStream(*pf);
        EXPECT_FALSE(pf->name().empty());
        // Stateless designs (next-line) legitimately report 0 bits;
        // everything must stay within a plausible hardware budget.
        EXPECT_LT(pf->storageBits() / 8192.0, 512.0)
            << "storage must stay hardware-plausible";
        (void)pf->debugState();  // must not crash on a trained table
    }
}

/** A hybrid never exerts more PQ pressure than its children combined:
 *  on an identical stream, hybrid issues <= sum of standalone child
 *  issues (dedup and the budget governor only ever remove issues). */
TEST(RegistryBattery, HybridIssuesAtMostSumOfChildren)
{
    const struct
    {
        const char *hybrid;
        const char *childA;
        const char *childB;
    } cases[] = {
        {"hybrid(berti,cmc)", "berti", "cmc"},
        {"hybrid(berti,markov;select=ip)", "berti", "markov"},
        {"hybrid(cmc,markov;select=duel)", "cmc", "markov"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.hybrid);
        auto run = [](const std::string &spec) {
            auto pf = prefetch::make(spec)();
            RecordingPort port;
            pf->bind(&port);
            driveMixedStream(*pf);
            return port.issues.size();
        };
        std::size_t a = run(c.childA);
        std::size_t b = run(c.childB);
        std::size_t h = run(c.hybrid);
        EXPECT_LE(h, a + b);
    }
}

TEST(Stream, RandomMissesStayQuiet)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    std::uint64_t x = 99;
    for (unsigned i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        pf.onAccess(access(x % (1ull << 30)));
    }
    // Spurious matches happen, but the issue rate stays far below one
    // armed stream per miss.
    EXPECT_LT(port.issues.size(), 2000u);
}

} // namespace berti
