/** @file Unit tests for the related-work prefetchers added beyond the
 *  paper's head-to-head set: Pythia-lite (RL), SMS, stream. */

#include <gtest/gtest.h>

#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/stream.hh"
#include "test_util.hh"

namespace berti
{

using test::RecordingPort;

namespace
{

Prefetcher::AccessInfo
access(Addr line, Addr ip = 0x400000, bool hit = false)
{
    Prefetcher::AccessInfo a;
    a.vLine = line;
    a.pLine = line;
    a.ip = ip;
    a.hit = hit;
    return a;
}

} // namespace

// --------------------------------------------------------------- Pythia

TEST(Pythia, LearnsToPrefetchCoveredPattern)
{
    PythiaPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);

    // Sequential stream with positive usefulness feedback: issuing
    // should persist (Q-values for the matching offset rise).
    Addr base = 1000ull << (kPageBits - kLineBits);
    for (unsigned round = 0; round < 60; ++round) {
        port.issues.clear();
        for (unsigned i = 0; i < 32; ++i) {
            Addr line = base + 64 * round + i;
            Prefetcher::AccessInfo a = access(line);
            // Usefulness feedback for lines it prefetched earlier.
            a.firstHitOnPrefetch = true;
            pf.onAccess(a);
        }
    }
    EXPECT_FALSE(port.issues.empty());
}

TEST(Pythia, NegativeRewardSuppressesAction)
{
    PythiaPrefetcher::Config cfg;
    cfg.epsilon = 0.0;  // deterministic policy for the test
    PythiaPrefetcher pf(cfg);
    RecordingPort port;
    pf.bind(&port);

    // Touch only even offsets; every prefetch is reported useless.
    Addr base = 2000ull << (kPageBits - kLineBits);
    std::size_t early = 0, late = 0;
    for (unsigned round = 0; round < 80; ++round) {
        port.issues.clear();
        for (unsigned i = 0; i < 16; ++i)
            pf.onAccess(access(base + 64 * round + 2 * i));
        if (round < 10)
            early += port.issues.size();
        if (round >= 70)
            late += port.issues.size();
        for (const auto &i : port.issues) {
            Prefetcher::FillInfo f;
            f.evictedPLine = i.line;
            f.evictedUnusedPrefetch = true;
            pf.onFill(f);
        }
    }
    // The agent converges away from the useless actions... or at
    // minimum does not increase its issue rate.
    EXPECT_LE(late, early + 16);
}

TEST(Pythia, StaysWithinPage)
{
    PythiaPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    Addr base = 3000ull << (kPageBits - kLineBits);
    for (unsigned i = 0; i < 500; ++i) {
        pf.onAccess(access(base + (i % 64)));
        pf.onAccess(access(base + 63));  // page edge
    }
    for (const auto &i : port.issues) {
        EXPECT_EQ(i.line >> (kPageBits - kLineBits), 3000u);
    }
}

TEST(Pythia, ReportsPublishedClassStorage)
{
    PythiaPrefetcher pf;
    // Pythia's on-chip budget is ~25.5 KB; ours must be in that class.
    double kb = static_cast<double>(pf.storageBits()) / 8192.0;
    EXPECT_GT(kb, 5.0);
    EXPECT_LT(kb, 60.0);
}

// ------------------------------------------------------------------ SMS

TEST(Sms, ReplaysFootprintOnTriggerMatch)
{
    SmsPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 40; ++r) {
        Addr base = (100 + r) * 32ull;
        pf.onAccess(access(base + 2, 0x400800));
        pf.onAccess(access(base + 9, 0x400800));
        pf.onAccess(access(base + 30, 0x400800));
    }
    port.issues.clear();
    Addr base = 9000 * 32ull;
    pf.onAccess(access(base + 2, 0x400800));
    EXPECT_TRUE(port.hasIssue(base + 9));
    EXPECT_TRUE(port.hasIssue(base + 30));
    EXPECT_FALSE(port.hasIssue(base + 5));  // never in the footprint
}

TEST(Sms, DifferentTriggerOffsetDifferentPattern)
{
    // SMS keys on (PC, offset): unlike Bingo there is no PC-only
    // fallback, so an unseen trigger offset replays nothing.
    SmsPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned r = 0; r < 40; ++r) {
        Addr base = (200 + r) * 32ull;
        pf.onAccess(access(base + 1, 0x400900));
        pf.onAccess(access(base + 8, 0x400900));
    }
    port.issues.clear();
    pf.onAccess(access(9500 * 32ull + 7, 0x400900));
    EXPECT_TRUE(port.issues.empty());
}

TEST(Sms, StorageReported)
{
    SmsPrefetcher pf;
    EXPECT_GT(pf.storageBits(), 0u);
}

// --------------------------------------------------------------- Stream

TEST(Stream, ArmsAfterTrainingMisses)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(5000));
    pf.onAccess(access(5001));
    EXPECT_TRUE(port.issues.empty());  // still training
    pf.onAccess(access(5002));
    EXPECT_TRUE(port.hasIssue(5003));
    EXPECT_TRUE(port.hasIssue(5008));  // depth 6 ahead
}

TEST(Stream, DetectsDescendingDirection)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    pf.onAccess(access(9000));
    pf.onAccess(access(8999));
    pf.onAccess(access(8998));
    pf.onAccess(access(8997));
    EXPECT_TRUE(port.hasIssue(8996));
}

TEST(Stream, IgnoresHits)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 10; ++i)
        pf.onAccess(access(7000 + i, 0x400000, true));
    EXPECT_TRUE(port.issues.empty());
}

TEST(Stream, TracksMultipleStreams)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    for (unsigned i = 0; i < 4; ++i) {
        pf.onAccess(access(10000 + i));
        pf.onAccess(access(500000 + 2 * i));
    }
    EXPECT_TRUE(port.hasIssue(10004));
    EXPECT_TRUE(port.hasIssue(500000 + 2 * 3 + 1));
}

TEST(Stream, RandomMissesStayQuiet)
{
    StreamPrefetcher pf;
    RecordingPort port;
    pf.bind(&port);
    std::uint64_t x = 99;
    for (unsigned i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        pf.onAccess(access(x % (1ull << 30)));
    }
    // Spurious matches happen, but the issue rate stays far below one
    // armed stream per miss.
    EXPECT_LT(port.issues.size(), 2000u);
}

} // namespace berti
