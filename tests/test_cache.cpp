/** @file Cache-level unit tests: hits, misses, MSHRs, fills, prefetch
 *  queue semantics, writebacks, statistics. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "test_util.hh"
#include "vm/tlb.hh"

namespace berti
{

using test::RecordingPort;
using test::stepCycles;
using test::TestMemory;

namespace
{

struct CollectingClient : ReadClient
{
    std::vector<MemRequest> done;

    void readDone(const MemRequest &req) override { done.push_back(req); }
};

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "ut";
    cfg.level = 1;
    cfg.sets = 4;
    cfg.ways = 2;
    cfg.latency = 2;
    cfg.mshrs = 4;
    cfg.rqSize = 8;
    cfg.pqSize = 4;
    return cfg;
}

MemRequest
load(Addr p_line, ReadClient *client, Addr ip = 0x400000)
{
    MemRequest r;
    r.pLine = p_line;
    r.vLine = p_line;
    r.ip = ip;
    r.type = AccessType::Load;
    r.instrId = 1;
    r.client = client;
    return r;
}

} // namespace

struct CacheFixture : ::testing::Test
{
    Cycle clock = 0;
    Cache cache{smallConfig(), &clock};
    TestMemory mem{&clock, 50};
    CollectingClient client;

    void SetUp() override { cache.setLower(&mem); }

    void step(unsigned n) { stepCycles(clock, cache, mem, n); }
};

TEST_F(CacheFixture, MissFetchesFromBelowThenHits)
{
    ASSERT_TRUE(cache.submitRead(load(100, &client)));
    step(60);
    ASSERT_EQ(client.done.size(), 1u);
    EXPECT_TRUE(cache.probe(100));
    EXPECT_EQ(cache.stats.demandMisses, 1u);
    EXPECT_EQ(mem.reads, 1u);

    // Second access: hit, no new memory read.
    ASSERT_TRUE(cache.submitRead(load(100, &client)));
    step(5);
    EXPECT_EQ(client.done.size(), 2u);
    EXPECT_EQ(cache.stats.demandHits, 1u);
    EXPECT_EQ(mem.reads, 1u);
}

TEST_F(CacheFixture, HitRespectsLookupLatency)
{
    cache.submitRead(load(100, &client));
    step(60);
    client.done.clear();
    cache.submitRead(load(100, &client));
    step(1);
    EXPECT_TRUE(client.done.empty());  // latency 2 not yet elapsed
    step(3);
    EXPECT_EQ(client.done.size(), 1u);
}

TEST_F(CacheFixture, MshrMergesSameLine)
{
    cache.submitRead(load(200, &client));
    step(3);  // past lookup: MSHR allocated
    cache.submitRead(load(200, &client));
    cache.submitRead(load(200, &client));
    step(60);
    EXPECT_EQ(client.done.size(), 3u);   // all three wake
    EXPECT_EQ(mem.reads, 1u);            // one fetch below
    EXPECT_EQ(cache.stats.demandMshrMerged, 2u);
    EXPECT_EQ(cache.stats.demandMisses, 1u);  // miss counted once
}

TEST_F(CacheFixture, MshrExhaustionBlocksHeadOfLine)
{
    for (Addr a = 0; a < 4; ++a)
        cache.submitRead(load(a * 16, &client));
    step(4);
    EXPECT_EQ(cache.mshrsInUse(), 4u);
    cache.submitRead(load(999, &client));
    step(10);  // all MSHRs busy: request parks in the RQ
    EXPECT_EQ(cache.rqOccupancy(), 1u);
    step(150);  // fills free the MSHRs, the parked request proceeds
    EXPECT_EQ(client.done.size(), 5u);
}

TEST_F(CacheFixture, RqFullRefusesRequests)
{
    mem.refuseReads = true;  // nothing drains
    unsigned accepted = 0;
    for (Addr a = 0; a < 100; ++a)
        accepted += cache.submitRead(load(a * 16, &client)) ? 1 : 0;
    EXPECT_EQ(accepted, smallConfig().rqSize);
}

TEST_F(CacheFixture, RetryAfterLowerRefusal)
{
    mem.refuseReads = true;
    cache.submitRead(load(100, &client));
    step(10);
    EXPECT_EQ(mem.reads, 0u);
    mem.refuseReads = false;
    step(60);
    EXPECT_EQ(client.done.size(), 1u);  // retried and completed
}

TEST_F(CacheFixture, RfoMarksDirtyAndEvictionWritesBack)
{
    MemRequest store = load(300, nullptr);
    store.type = AccessType::Rfo;
    cache.submitRead(store);
    step(60);
    EXPECT_TRUE(cache.probeDirty(300));

    // Fill the same set (set index = line % 4) until 300 is evicted.
    // Lines 300+4k map to the same set; 2 ways.
    cache.submitRead(load(304, &client));
    cache.submitRead(load(308, &client));
    step(120);
    EXPECT_FALSE(cache.probe(300));
    EXPECT_EQ(mem.writebacks, 1u);
    EXPECT_EQ(mem.lastWriteback, 300u);
}

TEST_F(CacheFixture, CleanEvictionDoesNotWriteBack)
{
    cache.submitRead(load(300, &client));
    cache.submitRead(load(304, &client));
    cache.submitRead(load(308, &client));
    step(120);
    EXPECT_EQ(mem.writebacks, 0u);
}

TEST_F(CacheFixture, WritebackMissInstallsLine)
{
    cache.submitWriteback(400);
    step(5);
    EXPECT_TRUE(cache.probe(400));
    EXPECT_TRUE(cache.probeDirty(400));
    EXPECT_EQ(mem.reads, 0u);  // full-line write-allocate, no fetch
}

TEST_F(CacheFixture, WritebackHitSetsDirty)
{
    cache.submitRead(load(500, &client));
    step(60);
    EXPECT_FALSE(cache.probeDirty(500));
    cache.submitWriteback(500);
    step(3);
    EXPECT_TRUE(cache.probeDirty(500));
}

TEST_F(CacheFixture, PrefetchFillsAndUsefulCounting)
{
    ASSERT_TRUE(cache.issuePrefetch(600, FillLevel::L1));
    step(60);
    EXPECT_TRUE(cache.probe(600));
    EXPECT_EQ(cache.stats.prefetchFills, 1u);
    EXPECT_EQ(cache.stats.prefetchUseful, 0u);

    cache.submitRead(load(600, &client));
    step(5);
    EXPECT_EQ(cache.stats.prefetchUseful, 1u);

    // Second hit: useful is counted once.
    cache.submitRead(load(600, &client));
    step(5);
    EXPECT_EQ(cache.stats.prefetchUseful, 1u);
}

TEST_F(CacheFixture, LatePrefetchCountsWhenDemandMerges)
{
    cache.issuePrefetch(700, FillLevel::L1);
    step(4);  // prefetch MSHR allocated, fetch in flight
    cache.submitRead(load(700, &client));
    step(60);
    EXPECT_EQ(cache.stats.prefetchLate, 1u);
    EXPECT_EQ(cache.stats.prefetchUseful, 1u);
    EXPECT_EQ(client.done.size(), 1u);
}

TEST_F(CacheFixture, UselessPrefetchCountedOnEviction)
{
    cache.issuePrefetch(304, FillLevel::L1);  // set 0
    step(60);
    // Two demand fills push it out (2 ways).
    cache.submitRead(load(308, &client));
    cache.submitRead(load(312, &client));
    step(120);
    EXPECT_FALSE(cache.probe(304));
    EXPECT_EQ(cache.stats.prefetchUseless, 1u);
}

TEST_F(CacheFixture, PrefetchDedupInQueue)
{
    EXPECT_TRUE(cache.issuePrefetch(800, FillLevel::L1));
    EXPECT_TRUE(cache.issuePrefetch(800, FillLevel::L1));  // deduped
    EXPECT_EQ(cache.stats.prefetchIssued, 1u);
    EXPECT_EQ(cache.pqOccupancy(), 1u);
}

TEST_F(CacheFixture, PrefetchQueueFullDrops)
{
    mem.refuseReads = true;
    for (Addr a = 0; a < 10; ++a)
        cache.issuePrefetch(900 + a * 16, FillLevel::L1);
    EXPECT_EQ(cache.stats.prefetchDroppedFull,
              10u - smallConfig().pqSize);
}

TEST_F(CacheFixture, PrefetchToPresentLineIsDropped)
{
    cache.submitRead(load(1000, &client));
    step(60);
    cache.issuePrefetch(1000, FillLevel::L1);
    step(5);
    EXPECT_EQ(cache.stats.prefetchFills, 0u);
    EXPECT_EQ(mem.reads, 1u);
}

TEST_F(CacheFixture, DeeperFillLevelPassesThrough)
{
    // An L2-targeted prefetch issued at an L1 cache must not fill here.
    cache.issuePrefetch(1100, FillLevel::L2);
    step(60);
    EXPECT_FALSE(cache.probe(1100));
    EXPECT_EQ(mem.reads, 1u);  // still forwarded below
    EXPECT_EQ(cache.stats.prefetchFills, 0u);
}

TEST_F(CacheFixture, MshrOccupancyReporting)
{
    EXPECT_DOUBLE_EQ(cache.mshrOccupancy(), 0.0);
    cache.submitRead(load(0, &client));
    cache.submitRead(load(16, &client));
    step(3);
    EXPECT_DOUBLE_EQ(cache.mshrOccupancy(), 0.5);
    step(60);
    EXPECT_DOUBLE_EQ(cache.mshrOccupancy(), 0.0);
}

TEST_F(CacheFixture, FastHitCountsAndMisses)
{
    EXPECT_FALSE(cache.fastHit(1200));
    cache.submitRead(load(1200, &client));
    step(60);
    std::uint64_t hits = cache.stats.demandHits;
    EXPECT_TRUE(cache.fastHit(1200));
    EXPECT_EQ(cache.stats.demandHits, hits + 1);
}

TEST_F(CacheFixture, FillLatencyMeasured)
{
    cache.submitRead(load(1300, &client));
    step(80);
    ASSERT_EQ(cache.stats.fillLatencyCount, 1u);
    // Lookup (2) + memory (50) plus queue slack.
    EXPECT_GE(cache.stats.avgFillLatency(), 50.0);
    EXPECT_LE(cache.stats.avgFillLatency(), 60.0);
}

// --------------------------------------------------------------------
// L1D-specific behaviour: virtual prefetching through the STLB.

struct L1dFixture : ::testing::Test
{
    Cycle clock = 0;
    CacheConfig cfg = [] {
        CacheConfig c = smallConfig();
        c.isL1d = true;
        return c;
    }();
    Cache cache{cfg, &clock};
    TestMemory mem{&clock, 50};
    TranslationUnit tu{TranslationUnit::Config{}};
    CollectingClient client;

    void SetUp() override
    {
        cache.setLower(&mem);
        cache.setTranslation(&tu);
    }

    void step(unsigned n) { stepCycles(clock, cache, mem, n); }
};

TEST_F(L1dFixture, PrefetchDroppedOnStlbMiss)
{
    // Page never demanded: the STLB cannot translate it.
    EXPECT_FALSE(cache.issuePrefetch(lineAddr(0x50000), FillLevel::L1));
    EXPECT_EQ(cache.stats.prefetchDroppedTlb, 1u);
}

TEST_F(L1dFixture, PrefetchTranslatesAfterDemandWalk)
{
    tu.translate(0x50000);  // demand walk installs the mapping
    EXPECT_TRUE(cache.issuePrefetch(lineAddr(0x50040), FillLevel::L1));
    step(60);
    EXPECT_TRUE(cache.probe(lineAddr(tu.translate(0x50040).paddr)));
}

TEST_F(L1dFixture, PrefetchedLineCarriesLatencyToFirstHit)
{
    // Observed through the prefetcher hook: use a tiny spy prefetcher.
    struct Spy : Prefetcher
    {
        Cycle seen = 0;
        void
        onAccess(const AccessInfo &info) override
        {
            if (info.firstHitOnPrefetch)
                seen = info.prefetchLatency;
        }
        std::uint64_t storageBits() const override { return 0; }
        std::string name() const override { return "spy"; }
    };
    auto spy = std::make_unique<Spy>();
    Spy *spy_ptr = spy.get();
    cache.setPrefetcher(std::move(spy));

    tu.translate(0x60000);
    cache.issuePrefetch(lineAddr(0x60000), FillLevel::L1);
    step(80);

    MemRequest d = load(lineAddr(tu.translate(0x60000).paddr), &client);
    d.vLine = lineAddr(0x60000);
    cache.submitRead(d);
    step(5);
    EXPECT_GE(spy_ptr->seen, 50u);  // the memory latency was recorded
}

} // namespace berti
