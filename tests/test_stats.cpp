/** @file Unit tests for the statistics structs and derived metrics. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace berti
{

TEST(CacheStats, AccuracyDefinition)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);  // no fills: defined as zero
    s.prefetchFills = 100;
    s.prefetchUseful = 87;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.87);
}

TEST(CacheStats, AccuracyClampedToOne)
{
    CacheStats s;
    s.prefetchFills = 10;
    s.prefetchUseful = 12;  // late counting can exceed fills transiently
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(CacheStats, TimelySplit)
{
    CacheStats s;
    s.prefetchUseful = 50;
    s.prefetchLate = 20;
    EXPECT_EQ(s.prefetchTimely(), 30u);
}

TEST(CacheStats, Mpki)
{
    CacheStats s;
    s.demandMisses = 42;
    EXPECT_DOUBLE_EQ(s.mpki(1000), 42.0);
    EXPECT_DOUBLE_EQ(s.mpki(0), 0.0);
}

TEST(CacheStats, AvgFillLatency)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.avgFillLatency(), 0.0);
    s.fillLatencySum = 600;
    s.fillLatencyCount = 3;
    EXPECT_DOUBLE_EQ(s.avgFillLatency(), 200.0);
}

TEST(CacheStats, AddAccumulatesEveryField)
{
    CacheStats a, b;
    a.demandAccesses = 1;
    a.prefetchIssued = 2;
    b.demandAccesses = 10;
    b.prefetchIssued = 20;
    b.writebacks = 5;
    a.add(b);
    EXPECT_EQ(a.demandAccesses, 11u);
    EXPECT_EQ(a.prefetchIssued, 22u);
    EXPECT_EQ(a.writebacks, 5u);
}

TEST(RunStats, DiffIsComponentWise)
{
    RunStats end, start;
    end.core.instructions = 300;
    start.core.instructions = 100;
    end.core.cycles = 1000;
    start.core.cycles = 400;
    end.l1d.demandMisses = 50;
    start.l1d.demandMisses = 20;
    RunStats roi = end.diff(start);
    EXPECT_EQ(roi.core.instructions, 200u);
    EXPECT_EQ(roi.core.cycles, 600u);
    EXPECT_EQ(roi.l1d.demandMisses, 30u);
    EXPECT_DOUBLE_EQ(roi.core.ipc(), 200.0 / 600.0);
}

TEST(RunStats, DiffSaturatesAtZero)
{
    RunStats end, start;
    start.l1d.demandMisses = 50;
    end.l1d.demandMisses = 20;  // would be negative
    EXPECT_EQ(end.diff(start).l1d.demandMisses, 0u);
}

TEST(RunStats, SummaryMentionsIpc)
{
    RunStats s;
    s.core.instructions = 100;
    s.core.cycles = 100;
    EXPECT_NE(s.summary().find("IPC"), std::string::npos);
}

TEST(Geomean, Basics)
{
    double one[] = {1.0, 1.0, 1.0};
    EXPECT_NEAR(geomean(one, 3), 1.0, 1e-12);
    double two[] = {2.0, 8.0};
    EXPECT_NEAR(geomean(two, 2), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean(nullptr, 0), 0.0);
}

TEST(Geomean, InsensitiveToOrder)
{
    double a[] = {1.1, 0.9, 1.5, 2.0};
    double b[] = {2.0, 1.5, 0.9, 1.1};
    EXPECT_NEAR(geomean(a, 4), geomean(b, 4), 1e-12);
}

} // namespace berti
