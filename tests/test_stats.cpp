/** @file Unit tests for the statistics structs and derived metrics,
 *  asserted through the observability layer: counters are read back via
 *  registry snapshots so the stat structs, their field tables and the
 *  exported names are all exercised by the same expectations. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace berti
{

namespace
{

/** Snapshot one stats struct through a registry, as a Machine would. */
template <typename S>
obs::MetricsSnapshot
snapshotVia(S &stats, const std::string &prefix)
{
    obs::MetricsRegistry reg;
    forEachStatField(stats, [&](const char *name, std::uint64_t &cell) {
        reg.counter(prefix + name, &cell);
    });
    return reg.snapshot();
}

} // namespace

TEST(CacheStats, AccuracyDefinition)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);  // no fills: defined as zero
    s.prefetchFills = 100;
    s.prefetchUseful = 87;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.87);
}

TEST(CacheStats, AccuracyClampedToOne)
{
    CacheStats s;
    s.prefetchFills = 10;
    s.prefetchUseful = 12;  // late counting can exceed fills transiently
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(CacheStats, TimelySplit)
{
    CacheStats s;
    s.prefetchUseful = 50;
    s.prefetchLate = 20;
    EXPECT_EQ(s.prefetchTimely(), 30u);
}

TEST(CacheStats, Mpki)
{
    CacheStats s;
    s.demandMisses = 42;
    EXPECT_DOUBLE_EQ(s.mpki(1000), 42.0);
    EXPECT_DOUBLE_EQ(s.mpki(0), 0.0);
}

TEST(CacheStats, AvgFillLatency)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.avgFillLatency(), 0.0);
    s.fillLatencySum = 600;
    s.fillLatencyCount = 3;
    EXPECT_DOUBLE_EQ(s.avgFillLatency(), 200.0);
}

TEST(CacheStats, AddAccumulatesEveryField)
{
    // Drive every field through the shared table, so a field added to
    // CacheStats but missed by add() cannot slip through.
    CacheStats a, b;
    std::uint64_t seed = 1;
    forEachStatField(b, [&seed](const char *, std::uint64_t &cell) {
        cell = seed++;
    });
    a.demandAccesses = 100;
    a.add(b);
    obs::MetricsSnapshot sum = snapshotVia(a, "l1d.");
    EXPECT_EQ(sum.counter("l1d.demand_accesses"),
              100u + b.demandAccesses);
    std::uint64_t expect = 1;
    forEachStatField(b, [&](const char *name, std::uint64_t &) {
        if (std::string(name) != "demand_accesses") {
            EXPECT_EQ(sum.counter("l1d." + std::string(name)), expect)
                << name;
        }
        ++expect;
    });
}

TEST(CacheStats, FieldTableMatchesRegistryNames)
{
    CacheStats s;
    s.demandMisses = 3;
    s.prefetchCrossPage = 4;
    obs::MetricsSnapshot snap = snapshotVia(s, "l2.");
    EXPECT_EQ(snap.counter("l2.demand_misses"), 3u);
    EXPECT_EQ(snap.counter("l2.prefetch_cross_page"), 4u);
    EXPECT_EQ(snap.size(), CacheStats::fields().size());
}

TEST(RunStats, DiffIsComponentWise)
{
    RunStats end, start;
    end.core.instructions = 300;
    start.core.instructions = 100;
    end.core.cycles = 1000;
    start.core.cycles = 400;
    end.l1d.demandMisses = 50;
    start.l1d.demandMisses = 20;
    RunStats roi = end.diff(start);
    // Assert through the registry view, prefixed like a Machine does.
    obs::MetricsRegistry reg;
    visitRunStatsCounters(
        roi, [&reg](const std::string &name, std::uint64_t &cell) {
            reg.counter(name, &cell);
        });
    reg.gauge("core.ipc", [&roi] { return roi.core.ipc(); });
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("core.instructions"), 200u);
    EXPECT_EQ(snap.counter("core.cycles"), 600u);
    EXPECT_EQ(snap.counter("l1d.demand_misses"), 30u);
    EXPECT_DOUBLE_EQ(snap.gauge("core.ipc"), 200.0 / 600.0);
}

TEST(RunStats, DiffSaturatesAtZero)
{
    RunStats end, start;
    start.l1d.demandMisses = 50;
    end.l1d.demandMisses = 20;  // would be negative
    EXPECT_EQ(end.diff(start).l1d.demandMisses, 0u);
}

TEST(RunStats, SummaryMentionsIpc)
{
    RunStats s;
    s.core.instructions = 100;
    s.core.cycles = 100;
    EXPECT_NE(s.summary().find("IPC"), std::string::npos);
}

TEST(Geomean, Basics)
{
    double one[] = {1.0, 1.0, 1.0};
    EXPECT_NEAR(geomean(one, 3), 1.0, 1e-12);
    double two[] = {2.0, 8.0};
    EXPECT_NEAR(geomean(two, 2), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean(nullptr, 0), 0.0);
}

TEST(Geomean, InsensitiveToOrder)
{
    double a[] = {1.1, 0.9, 1.5, 2.0};
    double b[] = {2.0, 1.5, 0.9, 1.1};
    EXPECT_NEAR(geomean(a, 4), geomean(b, 4), 1e-12);
}

} // namespace berti
