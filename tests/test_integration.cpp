/** @file End-to-end integration tests reproducing the paper's
 *  qualitative claims at small scale (fast enough for CI). */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace berti
{

namespace
{

SimParams
quick()
{
    SimParams p;
    p.warmupInstructions = 20000;
    p.measureInstructions = 100000;
    return p;
}

} // namespace

TEST(Integration, IpStrideGainsNothingOnAlternatingStrides)
{
    // Paper section II-B: the lbm +1/+2 pattern defeats IP-stride.
    const Workload &w = findWorkload("lbm-like.2676");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult ips = simulate(w, makeSpec("ip-stride"), quick());
    EXPECT_LT(ips.roi.l1d.prefetchUseful, 2000u);
    EXPECT_NEAR(ips.ipc / none.ipc, 1.0, 0.1);
}

TEST(Integration, BertiCoversAlternatingStrides)
{
    const Workload &w = findWorkload("lbm-like.2676");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    EXPECT_GT(berti.ipc, 1.2 * none.ipc);
}

TEST(Integration, BertiBestOnMcfLikeLocalDeltas)
{
    // Paper Figure 3 / IV-C: per-IP local deltas beat global deltas.
    const Workload &w = findWorkload("mcf-like.1554");
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    SimResult mlop = simulate(w, makeSpec("mlop"), quick());
    SimResult ipcp = simulate(w, makeSpec("ipcp"), quick());
    EXPECT_GT(berti.ipc, mlop.ipc);
    EXPECT_GT(berti.ipc, ipcp.ipc);
}

TEST(Integration, BertiMoreAccurateThanMlopAndIpcp)
{
    // Paper Figure 10: Berti ~87%, MLOP ~62%, IPCP ~51% on average.
    const Workload &w = findWorkload("mcf-like.1554");
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    SimResult mlop = simulate(w, makeSpec("mlop"), quick());
    EXPECT_GT(berti.roi.l1d.accuracy(), mlop.roi.l1d.accuracy());
}

TEST(Integration, BertiMostlyTimely)
{
    // Paper Figure 10 (dark bars): almost no late Berti prefetches.
    const Workload &w = findWorkload("stream-like.1");
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    ASSERT_GT(berti.roi.l1d.prefetchUseful, 0u);
    double late = static_cast<double>(berti.roi.l1d.prefetchLate) /
                  static_cast<double>(berti.roi.l1d.prefetchUseful);
    EXPECT_LT(late, 0.5);

    SimResult ipcp = simulate(w, makeSpec("ipcp"), quick());
    ASSERT_GT(ipcp.roi.l1d.prefetchUseful, 0u);
    double ipcp_late = static_cast<double>(ipcp.roi.l1d.prefetchLate) /
                       static_cast<double>(ipcp.roi.l1d.prefetchUseful);
    EXPECT_GT(ipcp_late, late);
}

TEST(Integration, PointerChaseResistsEveryPrefetcher)
{
    // mcf_s-1536-like: serial dependent loads, nothing is timely.
    const Workload &w = findWorkload("mcf-like.1536");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    EXPECT_NEAR(berti.ipc / none.ipc, 1.0, 0.1);
}

TEST(Integration, BertiDoesNotPolluteOnRandom)
{
    // Random accesses: an accurate prefetcher issues almost nothing.
    const Workload &w = findWorkload("omnetpp-like.874");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    EXPECT_LT(berti.roi.l1d.prefetchFills,
              berti.roi.l1d.demandMisses / 2);
    EXPECT_GT(berti.ipc, 0.9 * none.ipc);
}

TEST(Integration, MultiLevelComboRuns)
{
    const Workload &w = findWorkload("stream-like.1");
    SimResult combo = simulate(w, makeSpec("berti+spp-ppf"), quick());
    SimResult solo = simulate(w, makeSpec("berti"), quick());
    EXPECT_GT(combo.roi.l2.prefetchIssued, 0u);
    EXPECT_GT(combo.ipc, 0.9 * solo.ipc);
}

TEST(Integration, PrefetchTrafficShowsInLowerLevels)
{
    const Workload &w = findWorkload("stream-like.1");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult mlop = simulate(w, makeSpec("mlop"), quick());
    // Prefetching adds requests below L1D (traffic, Figure 14's axis).
    EXPECT_GE(mlop.roi.l1d.requestsBelow, none.roi.l1d.requestsBelow);
}

TEST(Integration, CloudWorkloadsHaveLowDataMpkiHighInstrMpki)
{
    // Paper section IV-G: CloudSuite is front-end bound.
    SimResult r =
        simulate(findWorkload("cloud9-like"), makeSpec("none"), quick());
    std::uint64_t n = r.roi.core.instructions;
    EXPECT_LT(r.roi.l1d.mpki(n), 25.0);
    EXPECT_GT(r.roi.l1i.mpki(n), 5.0);
}

TEST(Integration, GapSpeedupsAreModest)
{
    // Paper Figure 8: GAP gains are small for every prefetcher.
    const Workload &w = findWorkload("bfs-kron");
    SimResult none = simulate(w, makeSpec("none"), quick());
    SimResult berti = simulate(w, makeSpec("berti"), quick());
    EXPECT_NEAR(berti.ipc / none.ipc, 1.05, 0.25);
}

TEST(Integration, CrossPageAblationLosesPerformance)
{
    // Paper section IV-J: disabling cross-page prefetching hurts SPEC.
    BertiConfig no_cross;
    no_cross.crossPage = false;
    const Workload &w = findWorkload("stream-like.1");
    SimResult full = simulate(w, makeSpec("berti"), quick());
    SimResult cut =
        simulate(w, makeBertiSpec(no_cross, "berti-nocross"), quick());
    EXPECT_GE(full.ipc, 0.98 * cut.ipc);
}

TEST(Integration, TinyLatencyCounterHurts)
{
    // Paper section IV-J: a 4-bit latency counter drops performance.
    BertiConfig tiny;
    tiny.latencyBits = 4;  // max 15 cycles: every DRAM fill overflows
    const Workload &w = findWorkload("stream-like.1");
    SimResult full = simulate(w, makeSpec("berti"), quick());
    SimResult cut =
        simulate(w, makeBertiSpec(tiny, "berti-lat4"), quick());
    EXPECT_GT(full.ipc, cut.ipc);
}

} // namespace berti
