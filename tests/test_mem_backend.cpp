/**
 * @file
 * Memory-backend API battery: the spec grammar and canonical forms,
 * DramConfig validation, the scheduler variants (FCFS, FR-FCFS
 * starvation cap), multi-channel composition, the nextEventCycle()
 * cycle-skip contract under a scripted backend, per-backend checkpoint
 * round-trips, result-store key separation, and jobs-N bit-identity of
 * whole matrices per backend.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "mem/backend_registry.hh"
#include "mem/dram.hh"
#include "mem/multichannel.hh"
#include "obs/export.hh"
#include "sim/spec_parse.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

using mem::parseBackendSpec;
using verify::ErrorKind;
using verify::SimError;

/** EXPECT a Config SimError whose message mentions `needle`. */
template <typename Fn>
void
expectConfigError(Fn fn, const std::string &needle, const std::string &what)
{
    try {
        fn();
        FAIL() << what << ": expected SimError(Config)";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config) << what;
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << what << ": '" << e.what() << "' does not mention '"
            << needle << "'";
    }
}

struct Sink : ReadClient
{
    std::vector<std::pair<Cycle, Addr>> done;
    const Cycle *clock = nullptr;

    void
    readDone(const MemRequest &req) override
    {
        done.push_back({*clock, req.pLine});
    }
};

MemRequest
read(Addr p_line, ReadClient *client)
{
    MemRequest r;
    r.pLine = p_line;
    r.type = AccessType::Load;
    r.client = client;
    return r;
}

constexpr Addr kLinesPerRow = 4096 / kLineSize;

} // namespace

// ===================================================== spec grammar

TEST(BackendSpec, EmptyAndDefaultSpellingsCanonicalizeToDdr4)
{
    for (const char *spec :
         {"", "dram:ddr4", "dram:ddr4;sched=frfcfs", "dram:ddr4;cap=0",
          "dram:ddr4;channels=1", "dram:ddr4;mtps=6400;banks=16"}) {
        mem::ParsedBackend p = parseBackendSpec(spec);
        EXPECT_EQ(p.canonical, mem::kDefaultBackendSpec) << spec;
        EXPECT_EQ(p.sel.model, "ddr4") << spec;
        EXPECT_EQ(p.sel.channels, 1u) << spec;
    }
}

TEST(BackendSpec, DefaultBackendIsTheHistoricalDramConfig)
{
    // The whole bit-identity claim rests on this: the ddr4 preset IS
    // the compiled DramConfig default, field for field.
    mem::ParsedBackend p = parseBackendSpec("");
    DramConfig d;
    EXPECT_EQ(p.channel.banks, d.banks);
    EXPECT_EQ(p.channel.rqSize, d.rqSize);
    EXPECT_EQ(p.channel.wqSize, d.wqSize);
    EXPECT_EQ(p.channel.rowBytes, d.rowBytes);
    EXPECT_EQ(p.channel.tRp, d.tRp);
    EXPECT_EQ(p.channel.tRcd, d.tRcd);
    EXPECT_EQ(p.channel.tCas, d.tCas);
    EXPECT_EQ(p.channel.mtps, d.mtps);
    EXPECT_EQ(p.channel.busBytes, d.busBytes);
    EXPECT_EQ(p.channel.linkLatency, d.linkLatency);
    EXPECT_EQ(p.channel.sched, d.sched);
    EXPECT_EQ(p.channel.starvationCap, d.starvationCap);
}

TEST(BackendSpec, PresetsDifferFromDdr4WhereDocumented)
{
    EXPECT_EQ(parseBackendSpec("dram:ddr5").channel.mtps, 9600u);
    EXPECT_EQ(parseBackendSpec("dram:ddr5").channel.banks, 32u);
    EXPECT_EQ(parseBackendSpec("dram:lpddr5").channel.busBytes, 4u);
    EXPECT_EQ(parseBackendSpec("dram:hbm").sel.channels, 8u);
    EXPECT_EQ(parseBackendSpec("dram:hbm").channel.busBytes, 16u);
}

TEST(BackendSpec, OptionsOverrideAndCanonicalizeInFixedOrder)
{
    mem::ParsedBackend p = parseBackendSpec(
        "dram:ddr4;banks=8;cap=4;sched=fcfs;mtps=3200;channels=2");
    EXPECT_EQ(p.sel.channels, 2u);
    EXPECT_EQ(p.channel.sched, DramSchedKind::Fcfs);
    EXPECT_EQ(p.channel.starvationCap, 4u);
    EXPECT_EQ(p.channel.mtps, 3200u);
    EXPECT_EQ(p.channel.banks, 8u);
    // Canonical order is fixed regardless of input order.
    EXPECT_EQ(p.canonical,
              "dram:ddr4;sched=fcfs;cap=4;channels=2;mtps=3200;banks=8");
    EXPECT_EQ(mem::canonicalBackendSpec(p.canonical), p.canonical);
}

TEST(BackendSpec, MalformedSpecsThrowNamingTheOffendingString)
{
    expectConfigError([] { parseBackendSpec("dram:gddr7"); }, "gddr7",
                      "unknown model");
    expectConfigError([] { parseBackendSpec("hbm:ddr4"); }, "hbm",
                      "unknown family");
    expectConfigError([] { parseBackendSpec("dram:ddr4;turbo=1"); },
                      "turbo", "unknown option");
    expectConfigError([] { parseBackendSpec("dram:ddr4;sched=random"); },
                      "random", "bad sched value");
    expectConfigError([] { parseBackendSpec("dram:ddr4;mtps=fast"); },
                      "fast", "malformed number");
    expectConfigError([] { parseBackendSpec("dram:ddr4;mtps=0"); },
                      "mtps", "zero mtps");
    expectConfigError([] { parseBackendSpec("dram:ddr4;channels=0"); },
                      "channels", "zero channels");
    expectConfigError([] { parseBackendSpec("dram:ddr4;sched"); },
                      "sched", "clause without =");
}

TEST(BackendSpec, KnownModelsAreRegistered)
{
    auto models = mem::knownBackendModels();
    ASSERT_EQ(models.size(), 4u);
    for (const std::string &m : models)
        EXPECT_NO_THROW(parseBackendSpec("dram:" + m)) << m;
}

// ================================================ DramConfig::validate

TEST(DramConfigValidate, EachDegenerateFieldIsNamed)
{
    auto broken = [](auto mutate) {
        DramConfig cfg;
        mutate(cfg);
        return cfg;
    };
    struct Case
    {
        const char *field;
        DramConfig cfg;
    };
    const std::vector<Case> cases = {
        {"banks", broken([](DramConfig &c) { c.banks = 0; })},
        {"rqSize", broken([](DramConfig &c) { c.rqSize = 0; })},
        {"wqSize", broken([](DramConfig &c) { c.wqSize = 0; })},
        {"mtps", broken([](DramConfig &c) { c.mtps = 0; })},
        {"busBytes", broken([](DramConfig &c) { c.busBytes = 0; })},
        {"tRp", broken([](DramConfig &c) { c.tRp = 0; })},
        {"tRcd", broken([](DramConfig &c) { c.tRcd = 0; })},
        {"tCas", broken([](DramConfig &c) { c.tCas = 0; })},
        {"rowBytes", broken([](DramConfig &c) { c.rowBytes = 0; })},
        {"rowBytes", broken([](DramConfig &c) { c.rowBytes = 100; })},
        {"writeDrainWatermark",
         broken([](DramConfig &c) { c.writeDrainWatermark = 0.0; })},
        {"writeDrainWatermark",
         broken([](DramConfig &c) { c.writeDrainWatermark = 1.5; })},
        // 64 B burst rounding to zero cycles: rate too high for width.
        {"mtps/busBytes", broken([](DramConfig &c) {
             c.busBytes = 64;
             c.mtps = 1000000;
         })},
    };
    for (const Case &t : cases) {
        expectConfigError([&] { t.cfg.validate(); }, t.field,
                          std::string("validate names ") + t.field);
        // The Dram constructor must apply the same gate.
        expectConfigError(
            [&] {
                Cycle clock = 0;
                Dram d(t.cfg, &clock);
            },
            t.field, std::string("ctor rejects ") + t.field);
    }
    EXPECT_NO_THROW(DramConfig{}.validate());
}

// ========================================== scheduler variant semantics

TEST(DramSched, FcfsServesOldestFirstEvenOverRowHits)
{
    Cycle clock = 0;
    Sink sink;
    sink.clock = &clock;
    DramConfig cfg;
    cfg.sched = DramSchedKind::Fcfs;
    Dram dram(cfg, &clock);

    // Warm: open row 0 on bank 0.
    dram.submitRead(read(0, &sink));
    while (sink.done.empty()) {
        ++clock;
        dram.tick();
    }
    // Conflict request first, row hit second: FCFS must keep order.
    dram.submitRead(read(cfg.banks * kLinesPerRow, &sink));
    dram.submitRead(read(1, &sink));
    while (sink.done.size() < 3) {
        ++clock;
        dram.tick();
    }
    EXPECT_EQ(sink.done[1].second, cfg.banks * kLinesPerRow);
    EXPECT_EQ(sink.done[2].second, 1u);
}

TEST(DramSched, StarvationCapBoundsRowHitBypasses)
{
    // An old conflict request behind a stream of row hits: unbounded
    // FR-FCFS serves every hit first; cap=2 forces the head after two
    // bypasses.
    auto headServedAfter = [](unsigned cap) {
        Cycle clock = 0;
        Sink sink;
        sink.clock = &clock;
        DramConfig cfg;
        cfg.starvationCap = cap;
        Dram dram(cfg, &clock);
        dram.submitRead(read(0, &sink));
        while (sink.done.empty()) {
            ++clock;
            dram.tick();
        }
        Addr conflict = cfg.banks * kLinesPerRow;
        dram.submitRead(read(conflict, &sink));
        for (Addr i = 1; i <= 8; ++i)
            dram.submitRead(read(i, &sink));
        while (sink.done.size() < 10) {
            ++clock;
            dram.tick();
        }
        for (std::size_t i = 1; i < sink.done.size(); ++i) {
            if (sink.done[i].second == conflict)
                return i - 1; // row hits served before the old head
        }
        return sink.done.size();
    };
    EXPECT_EQ(headServedAfter(0), 8u);  // historical: all hits first
    EXPECT_LE(headServedAfter(2), 2u);  // cap forces the head
}

// ================================================ multi-channel backend

TEST(MultiChannel, InterleavesByLineAndAggregatesStats)
{
    Cycle clock = 0;
    Sink sink;
    sink.clock = &clock;
    DramConfig cfg;
    mem::MultiChannelDram dram(cfg, 4, &clock);
    EXPECT_EQ(dram.channelCount(), 4u);
    EXPECT_EQ(dram.name(), "dram x4");

    for (Addr i = 0; i < 16; ++i)
        ASSERT_TRUE(dram.submitRead(read(i, &sink)));
    EXPECT_EQ(dram.rqOccupancy(), 16u);
    EXPECT_EQ(dram.pendingReads(), 16u);

    while (sink.done.size() < 16) {
        ++clock;
        dram.tick();
    }
    DramStats s = dram.statsSnapshot();
    EXPECT_EQ(s.reads, 16u);
    EXPECT_EQ(dram.pendingReads(), 0u);
    EXPECT_EQ(dram.nextEventCycle(), kNever);
    EXPECT_EQ(dram.auditViolation(), "");

    // Channel parallelism: 4 channels drain a line-strided burst
    // faster than one channel does.
    auto drainCycles = [](unsigned channels) {
        Cycle local = 0;
        Sink s2;
        s2.clock = &local;
        DramConfig c2;
        mem::MultiChannelDram d(c2, channels, &local);
        for (Addr i = 0; i < 32; ++i)
            d.submitRead(read(i, &s2));
        while (s2.done.size() < 32) {
            ++local;
            d.tick();
        }
        return local;
    };
    EXPECT_LT(drainCycles(4), drainCycles(1));
}

TEST(MultiChannel, ZeroChannelsRejected)
{
    Cycle clock = 0;
    DramConfig cfg;
    expectConfigError(
        [&] { mem::MultiChannelDram d(cfg, 0, &clock); }, "channel",
        "zero channels");
    expectConfigError(
        [&] {
            mem::makeMemBackend(mem::BackendSel{"ddr4", 0}, cfg, &clock);
        },
        "channel", "factory zero channels");
}

// ====================================== nextEventCycle() skip contract

namespace
{

/**
 * A MemBackend wrapper that checks the cycle-skip contract from the
 * inside: whenever the machine's clock jumps by more than one cycle
 * between our ticks (a quiescence skip), the landing cycle must not
 * lie beyond the bound we reported after the previous tick — a later
 * landing would mean the skip jumped past a pending event.
 */
class ContractCheckedDram : public mem::MemBackend
{
  public:
    ContractCheckedDram(const DramConfig &cfg, const Cycle *clock_ptr)
        : inner(cfg, clock_ptr), clock(clock_ptr)
    {}

    bool
    submitRead(MemRequest req) override
    {
        return inner.submitRead(req);
    }
    void submitWriteback(Addr p_line) override
    {
        inner.submitWriteback(p_line);
    }

    void
    tick() override
    {
        if (sawTick && *clock > lastTickCycle + 1) {
            ++skipsObserved;
            if (*clock > lastBound)
                ++violations;
        }
        inner.tick();
        sawTick = true;
        lastTickCycle = *clock;
        lastBound = inner.nextEventCycle();
    }

    Cycle nextEventCycle() const override
    {
        return inner.nextEventCycle();
    }
    DramStats statsSnapshot() const override
    {
        return inner.statsSnapshot();
    }
    std::size_t pendingReads() const override
    {
        return inner.pendingReads();
    }
    std::size_t rqOccupancy() const override
    {
        return inner.rqOccupancy();
    }
    std::size_t wqOccupancy() const override
    {
        return inner.wqOccupancy();
    }
    void setFaultInjector(verify::FaultInjector *injector) override
    {
        inner.setFaultInjector(injector);
    }
    void
    registerMetrics(obs::MetricsRegistry &registry,
                    const std::string &prefix) override
    {
        inner.registerMetrics(registry, prefix);
    }
    void saveState(sim::ByteWriter &w,
                   const sim::PtrMap &clients) const override
    {
        inner.saveState(w, clients);
    }
    void loadState(sim::ByteReader &r, const sim::PtrMap &clients) override
    {
        inner.loadState(r, clients);
    }
    /** The wrapper's observation state is not serializable. */
    bool checkpointSupported() const override { return false; }
    std::string auditViolation() const override
    {
        return inner.auditViolation();
    }
    std::string name() const override { return "contract-checked"; }

    std::uint64_t skipsObserved = 0;
    std::uint64_t violations = 0;

  private:
    Dram inner;
    const Cycle *clock;
    bool sawTick = false;
    Cycle lastTickCycle = 0;
    Cycle lastBound = kNever;
};

} // namespace

TEST(BackendContract, CycleSkipNeverJumpsPastAPendingEvent)
{
    Workload w = resolveWorkload("mcf-like.472");
    auto gen = w.make();

    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    cfg.cycleSkip = true;
    ContractCheckedDram *backend = nullptr;
    cfg.memBackendHook = [&backend](const Cycle *clock) {
        auto b = std::make_unique<ContractCheckedDram>(DramConfig{},
                                                       clock);
        backend = b.get();
        return b;
    };
    Machine machine(cfg, {gen.get()});
    machine.run(20000);

    ASSERT_NE(backend, nullptr);
    // Not vacuous: the machine must actually have skipped, and the
    // backend must have observed some of those skips.
    EXPECT_GT(machine.skippedCycles(), 0u);
    EXPECT_GT(backend->skipsObserved, 0u);
    EXPECT_EQ(backend->violations, 0u)
        << "a quiescence skip landed beyond the backend's reported "
           "nextEventCycle() bound";

    // The hook backend declares itself non-checkpointable; the Machine
    // surfaces that as a typed, named reason.
    std::string why;
    EXPECT_FALSE(machine.checkpointSupported(&why));
    EXPECT_NE(why.find("contract-checked"), std::string::npos) << why;
}

TEST(BackendContract, HookResultsMatchRegistryBackend)
{
    // The scripted wrapper is pass-through, so a hooked machine must
    // produce bit-identical metrics to the registry-built default.
    Workload w = resolveWorkload("bwaves-like.2609");

    auto runOnce = [&](bool hook) {
        auto gen = w.make();
        MachineConfig cfg = MachineConfig::sunnyCove(1);
        cfg.l1dPrefetcher = makeSpec("berti").l1d;
        if (hook) {
            cfg.memBackendHook = [](const Cycle *clock) {
                return std::make_unique<ContractCheckedDram>(DramConfig{},
                                                             clock);
            };
        }
        Machine machine(cfg, {gen.get()});
        machine.run(12000);
        return obs::toJson(machine.metricsSnapshot());
    };
    EXPECT_EQ(runOnce(false), runOnce(true));
}

// ================================================ checkpoint round-trip

namespace
{

/** Backend specs the checkpoint matrix crosses (default, a tuned
 *  scheduler variant, and the multi-channel HBM stack). */
const std::vector<std::string> kCheckpointBackends = {
    "dram:ddr4", "dram:ddr5;sched=fcfs", "dram:ddr4;cap=4", "dram:hbm"};

} // namespace

TEST(BackendCheckpoint, ResumeIsBitIdenticalPerBackend)
{
    Workload w = resolveWorkload("mcf-like.472");
    for (const std::string &spec : kCheckpointBackends) {
        mem::ParsedBackend parsed = parseBackendSpec(spec);
        MachineConfig cfg = MachineConfig::sunnyCove(1);
        cfg.l1dPrefetcher = makeSpec("berti").l1d;
        cfg.dram = parsed.channel;
        cfg.memBackend = parsed.sel;

        auto gen_a = w.make();
        Machine uninterrupted(cfg, {gen_a.get()});
        uninterrupted.run(4000);
        std::string mid = uninterrupted.saveCheckpointBlob();
        uninterrupted.run(12000);
        std::string want = uninterrupted.saveCheckpointBlob();

        auto gen_b = w.make();
        Machine resumed(cfg, {gen_b.get()});
        resumed.resumeFromBlob(mid);
        EXPECT_EQ(resumed.saveCheckpointBlob(), mid)
            << spec << ": restore not idempotent";
        resumed.run(12000);
        EXPECT_EQ(resumed.saveCheckpointBlob(), want)
            << spec << ": post-resume state diverged";
        EXPECT_EQ(obs::toJson(resumed.metricsSnapshot()),
                  obs::toJson(uninterrupted.metricsSnapshot()))
            << spec << ": metrics diverged";
    }
}

TEST(BackendCheckpoint, BlobsRejectCrossBackendResume)
{
    // The config fingerprint folds the backend model/scheduler/
    // geometry, so a checkpoint from one backend cannot restore into a
    // machine built with another.
    Workload w = resolveWorkload("mcf-like.472");
    auto configured = [&](const std::string &spec) {
        mem::ParsedBackend parsed = parseBackendSpec(spec);
        MachineConfig cfg = MachineConfig::sunnyCove(1);
        cfg.dram = parsed.channel;
        cfg.memBackend = parsed.sel;
        return cfg;
    };
    auto gen_a = w.make();
    Machine ddr4(configured("dram:ddr4"), {gen_a.get()});
    ddr4.run(2000);
    std::string blob = ddr4.saveCheckpointBlob();

    auto gen_b = w.make();
    Machine ddr5(configured("dram:ddr5"), {gen_b.get()});
    try {
        ddr5.resumeFromBlob(blob);
        FAIL() << "cross-backend resume must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Checkpoint);
    }
}

// ============================================= store keys & bit-identity

TEST(BackendStoreKeys, DistinctBackendsNeverShareACell)
{
    SimParams base;
    auto key = [&](const std::string &backend) {
        SimParams p = base;
        p.memBackend = backend;
        return harness::makeStoreKey("mcf-like.472", "berti", p, "v1")
            .hash();
    };
    // Default spellings collapse to the same (historical) key.
    EXPECT_EQ(key(""), key("dram:ddr4"));
    EXPECT_EQ(key(""), key("dram:ddr4;sched=frfcfs"));
    // Every real backend change gets its own key.
    EXPECT_NE(key(""), key("dram:ddr5"));
    EXPECT_NE(key("dram:ddr5"), key("dram:hbm"));
    EXPECT_NE(key("dram:ddr4;sched=fcfs"), key(""));
    EXPECT_NE(key("dram:ddr4;cap=4"), key(""));
}

TEST(BackendSimulate, EmptyAndDefaultSpecsAreByteIdentical)
{
    Workload w = resolveWorkload("cactu-like.709");
    PrefetcherSpec spec = makeSpec("berti");
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 8000;

    SimParams explicit_params = params;
    explicit_params.memBackend = "dram:ddr4;sched=frfcfs";

    EXPECT_EQ(obs::toJson(resultSnapshot(simulate(w, spec, params))),
              obs::toJson(
                  resultSnapshot(simulate(w, spec, explicit_params))));
}

TEST(BackendSimulate, MatrixIsJobCountInvariantPerBackend)
{
    std::vector<Workload> workloads = {resolveWorkload("mcf-like.472"),
                                       resolveWorkload("cactu-like.709")};
    std::vector<PrefetcherSpec> specs = {makeSpec("none"),
                                         makeSpec("berti")};
    for (const std::string &backend : {"dram:ddr5", "dram:hbm"}) {
        SimParams params;
        params.warmupInstructions = 2000;
        params.measureInstructions = 6000;
        params.memBackend = backend;

        auto grid1 = runMatrixParallel(workloads, specs, params, 1);
        auto grid8 = runMatrixParallel(workloads, specs, params, 8);
        ASSERT_EQ(grid1.size(), grid8.size());
        for (std::size_t s = 0; s < grid1.size(); ++s) {
            for (std::size_t i = 0; i < grid1[s].size(); ++i) {
                EXPECT_EQ(
                    obs::toJson(resultSnapshot(grid1[s][i])),
                    obs::toJson(resultSnapshot(grid8[s][i])))
                    << backend << " cell [" << s << "][" << i << "]";
            }
        }
    }
}

TEST(BackendSimulate, BackendsProduceDivergentTimings)
{
    // The study's premise: different backends must actually time
    // differently. Average read latency separates the latency corners.
    Workload w = resolveWorkload("bwaves-like.2609");
    PrefetcherSpec spec = makeSpec("berti");
    auto avgReadLatency = [&](const std::string &backend) {
        SimParams params;
        params.warmupInstructions = 2000;
        params.measureInstructions = 8000;
        params.memBackend = backend;
        SimResult r = simulate(w, spec, params);
        return r.roi.dram.readLatencyCount > 0
                   ? static_cast<double>(r.roi.dram.readLatencySum) /
                         static_cast<double>(r.roi.dram.readLatencyCount)
                   : 0.0;
    };
    double ddr4 = avgReadLatency("dram:ddr4");
    double lpddr5 = avgReadLatency("dram:lpddr5");
    double hbm = avgReadLatency("dram:hbm");
    EXPECT_GT(ddr4, 0.0);
    EXPECT_GT(lpddr5, ddr4);  // mobile corner: slower
    EXPECT_NE(hbm, ddr4);     // stacked corner: different timing
}

// ===================================================== options plumbing

TEST(BackendOptions, ApplyOptionsResolvesSpecAndRejectsUnknown)
{
    sim::SimOptions opt;
    opt.memBackend = "dram:hbm";
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.applyOptions(opt);
    EXPECT_EQ(cfg.memBackend.model, "hbm");
    EXPECT_EQ(cfg.memBackend.channels, 8u);
    EXPECT_EQ(cfg.dram.busBytes, 16u);

    sim::SimOptions bad;
    bad.memBackend = "dram:nosuch";
    MachineConfig cfg2 = MachineConfig::sunnyCove(1);
    expectConfigError([&] { cfg2.applyOptions(bad); }, "nosuch",
                      "applyOptions unknown backend");
}

TEST(BackendOptions, FlagAndEnvSpellFillMemBackend)
{
    sim::SimOptions opt;
    EXPECT_TRUE(opt.applyFlag("--mem-backend=dram:ddr5"));
    EXPECT_EQ(opt.memBackend, "dram:ddr5");
}

// ================================================== shared spec parser

TEST(SpecParse, SplitTopLevelRespectsParens)
{
    auto parts = sim::splitTopLevel("a,hybrid(b,c),d", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "hybrid(b,c)");
    EXPECT_TRUE(sim::splitTopLevel("", ',').empty());
    EXPECT_EQ(sim::findTopLevel("hybrid(a+b)+c", '+'), 11u);
    EXPECT_EQ(sim::findTopLevel("hybrid(a+b)", '+'), std::string::npos);
}

} // namespace berti
