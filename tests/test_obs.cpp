/**
 * @file
 * Unit tests for the observability layer: histograms, the metrics
 * registry, snapshots, JSON/CSV export and round-trip, the interval
 * time-series, the prefetch event trace, and the Machine-level wiring
 * (registered names, sampler, stat reset/reuse determinism).
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "harness/parallel.hh"
#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

namespace berti
{
namespace
{

using obs::Histogram;
using obs::IntervalSampler;
using obs::IntervalSeries;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::PfEvent;
using obs::PrefetchEventTrace;

/** Scoped environment override; restores the previous value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had = true;
            previous = old;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had)
            setenv(key, previous.c_str(), 1);
        else
            unsetenv(key);
    }

  private:
    const char *key;
    bool had = false;
    std::string previous;
};

// ------------------------------------------------------------- Histogram

TEST(Histogram, Log2BucketEdges)
{
    Histogram h = Histogram::log2();
    EXPECT_EQ(h.bucketLow(0), 0u);
    EXPECT_EQ(h.bucketHigh(0), 0u);   // bucket 0 holds exactly v == 0
    EXPECT_EQ(h.bucketLow(1), 1u);
    EXPECT_EQ(h.bucketHigh(1), 1u);
    EXPECT_EQ(h.bucketLow(4), 8u);    // [2^3, 2^4)
    EXPECT_EQ(h.bucketHigh(4), 15u);
}

TEST(Histogram, RecordAndMoments)
{
    Histogram h = Histogram::log2();
    h.record(0);
    h.record(1);
    h.record(100, 2);  // weight 2
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 201u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 201.0 / 4.0);
}

TEST(Histogram, LinearOverflowGoesToLastBucket)
{
    Histogram h = Histogram::linear(10, 4);  // [0,10) ... [30,inf)
    h.record(5);
    h.record(35);
    h.record(1000000);
    EXPECT_EQ(h.bucketWeight(0), 1u);
    EXPECT_EQ(h.bucketWeight(3), 2u);
    EXPECT_EQ(h.max(), 1000000u);
}

TEST(Histogram, PercentileMonotoneAndClamped)
{
    Histogram h = Histogram::log2();
    EXPECT_EQ(h.percentile(0.5), 0u);  // empty
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    std::uint64_t last = 0;
    for (double p = 0.0; p <= 1.0; p += 0.01) {
        std::uint64_t q = h.percentile(p);
        EXPECT_GE(q, last) << "p=" << p;
        last = q;
    }
    // Clamped to the observed range, not the bucket's nominal edge.
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(Histogram, MergeMatchesInterleavedRecording)
{
    Histogram a = Histogram::log2();
    Histogram b = Histogram::log2();
    Histogram both = Histogram::log2();
    for (std::uint64_t v = 0; v < 64; ++v) {
        (v % 2 ? a : b).record(v * v);
        both.record(v * v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    for (unsigned i = 0; i < a.bucketCount(); ++i)
        EXPECT_EQ(a.bucketWeight(i), both.bucketWeight(i)) << i;
}

TEST(Histogram, MergeShapeMismatchThrows)
{
    Histogram a = Histogram::log2();
    Histogram b = Histogram::linear(10, 33);
    EXPECT_THROW(a.merge(b), verify::SimError);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h = Histogram::log2();
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(Histogram, InvalidShapesThrow)
{
    EXPECT_THROW(Histogram::log2(0), verify::SimError);
    EXPECT_THROW(Histogram::linear(0, 4), verify::SimError);
    EXPECT_THROW(Histogram::linear(10, 0), verify::SimError);
}

TEST(Histogram, LinearBucketEdges)
{
    Histogram h = Histogram::linear(10, 4);
    EXPECT_EQ(h.bucketLow(2), 20u);
    EXPECT_EQ(h.bucketHigh(1), 19u);
    h.record(7);
    // Out-of-range p is clamped to [0, 1].
    EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_EQ(h.percentile(1.5), h.percentile(1.0));
}

TEST(MetricKind, NamesAreStable)
{
    EXPECT_STREQ(obs::metricKindName(obs::MetricKind::Counter),
                 "counter");
    EXPECT_STREQ(obs::metricKindName(obs::MetricKind::Gauge), "gauge");
    EXPECT_STREQ(obs::metricKindName(obs::MetricKind::Histogram),
                 "histogram");
}

// -------------------------------------------------------------- Registry

TEST(MetricsRegistry, CountersTrackLiveCells)
{
    std::uint64_t cell = 0;
    MetricsRegistry reg;
    reg.counter("x", &cell);
    cell = 7;
    EXPECT_EQ(reg.snapshot().counter("x"), 7u);
    cell = 9;
    EXPECT_EQ(reg.snapshot().counter("x"), 9u);
}

TEST(MetricsRegistry, GaugesEvaluateLazily)
{
    double v = 1.5;
    MetricsRegistry reg;
    reg.gauge("g", [&v] { return v; });
    v = 2.5;
    EXPECT_DOUBLE_EQ(reg.snapshot().gauge("g"), 2.5);
}

TEST(MetricsRegistry, DuplicateNameThrows)
{
    std::uint64_t cell = 0;
    MetricsRegistry reg;
    reg.counter("dup", &cell);
    EXPECT_THROW(reg.counter("dup", &cell), verify::SimError);
    EXPECT_THROW(reg.gauge("dup", [] { return 0.0; }),
                 verify::SimError);
}

TEST(MetricsRegistry, HistogramFlattensIntoSnapshot)
{
    MetricsRegistry reg;
    Histogram &h = reg.ownHistogram("lat", Histogram::log2());
    h.record(8);
    h.record(16);
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("lat.count"), 2u);
    EXPECT_EQ(snap.counter("lat.sum"), 24u);
    EXPECT_EQ(snap.counter("lat.min"), 8u);
    EXPECT_EQ(snap.counter("lat.max"), 16u);
    EXPECT_TRUE(snap.contains("lat.p50"));
    EXPECT_TRUE(snap.contains("lat.p99"));
}

TEST(MetricsRegistry, CounterNamesSortedAndSampled)
{
    std::uint64_t a = 1, b = 2;
    MetricsRegistry reg;
    reg.counter("zz", &b);
    reg.counter("aa", &a);
    reg.gauge("mm", [] { return 0.0; });  // not a sampler column
    std::vector<std::string> names = reg.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "aa");
    EXPECT_EQ(names[1], "zz");
    std::vector<std::uint64_t> row;
    reg.sampleCounters(row);
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0], 1u);
    EXPECT_EQ(row[1], 2u);
}

TEST(MetricsRegistry, RejectsDegenerateRegistrations)
{
    std::uint64_t cell = 0;
    MetricsRegistry reg;
    EXPECT_THROW(reg.counter("", &cell), verify::SimError);
    EXPECT_THROW(reg.counter("null", nullptr), verify::SimError);
    EXPECT_THROW(reg.gauge("nullfn", {}), verify::SimError);
    EXPECT_THROW(reg.histogram("nullhist", nullptr), verify::SimError);
}

TEST(MetricsRegistry, NamesListsEveryKindSorted)
{
    std::uint64_t cell = 0;
    MetricsRegistry reg;
    reg.counter("c", &cell);
    reg.gauge("a", [] { return 0.0; });
    reg.ownHistogram("h", Histogram::log2());
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "c");
    EXPECT_EQ(names[2], "h");
}

TEST(MetricsSnapshot, TypedAccessorMismatchThrows)
{
    MetricsSnapshot snap;
    snap.setCounter("c", 1);
    snap.setGauge("g", 1.0);
    EXPECT_THROW(snap.gauge("c"), verify::SimError);
    EXPECT_THROW(snap.counter("g"), verify::SimError);
    EXPECT_THROW(snap.counter("missing"), verify::SimError);
}

// ---------------------------------------------------------------- Export

TEST(Export, JsonIsStableAndSorted)
{
    MetricsSnapshot snap;
    snap.setCounter("b.second", 2);
    snap.setCounter("a.first", 1);
    snap.setGauge("z.gauge", 0.5);
    std::string json = obs::toJson(snap);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_LT(json.find("a.first"), json.find("b.second"));
    // Same content, same bytes.
    EXPECT_EQ(json, obs::toJson(snap));
}

TEST(Export, JsonRoundTripsThroughParser)
{
    MetricsSnapshot snap;
    snap.setCounter("c.count", 123456789);
    snap.setGauge("g.ratio", 1.0 / 3.0);
    snap.setGauge("g.zero", 0.0);
    MetricsSnapshot back =
        obs::snapshotFromJson(obs::toJson(snap), "test");
    EXPECT_TRUE(snap == back);
    EXPECT_EQ(obs::toJson(snap), obs::toJson(back));
}

TEST(Export, ParserRejectsBadDocuments)
{
    EXPECT_THROW(obs::snapshotFromJson("{}", "t"), verify::SimError);
    EXPECT_THROW(obs::snapshotFromJson("{\"schema_version\": 999, "
                                       "\"counters\": {}}",
                                       "t"),
                 verify::SimError);
    EXPECT_THROW(obs::snapshotFromJson(
                     "{\"schema_version\": 1, \"counters\": "
                     "{\"a\": 1, \"a\": 2}}",
                     "t"),
                 verify::SimError);
}

TEST(Export, NamesWithQuotesAndBackslashesAreEscaped)
{
    MetricsSnapshot snap;
    snap.setCounter("weird\"name\\x", 1);
    std::string json = obs::toJson(snap);
    EXPECT_NE(json.find("weird\\\"name\\\\x"), std::string::npos);
    MetricsSnapshot back = obs::snapshotFromJson(json, "t");
    EXPECT_EQ(back.counter("weird\"name\\x"), 1u);
}

TEST(Export, ParserRejectsMalformedSyntax)
{
    // Unterminated string.
    EXPECT_THROW(obs::snapshotFromJson("{\"schema_ver", "t"),
                 verify::SimError);
    // Truncated document.
    EXPECT_THROW(obs::snapshotFromJson("{\"schema_version\": 1,", "t"),
                 verify::SimError);
    // Value is not a number.
    EXPECT_THROW(obs::snapshotFromJson("{\"schema_version\": 1, "
                                       "\"gauges\": {\"g\": oops}}",
                                       "t"),
                 verify::SimError);
    // Empty sections parse fine.
    MetricsSnapshot empty = obs::snapshotFromJson(
        "{\"schema_version\": 1, \"counters\": {}, \"gauges\": {}}",
        "t");
    EXPECT_TRUE(empty.empty());
}

TEST(Export, WriteFileRoundTripsAndCreatesParents)
{
    std::string dir = ::testing::TempDir() + "berti_obs_export_test";
    std::string path = dir + "/nested/snap.json";
    obs::writeFile(path, "payload\n");
    EXPECT_EQ(obs::readFile(path), "payload\n");
    obs::writeFile(path, "payload2\n");  // atomic overwrite
    EXPECT_EQ(obs::readFile(path), "payload2\n");
    EXPECT_THROW(obs::readFile(dir + "/missing.json"),
                 verify::SimError);
    std::filesystem::remove_all(dir);
}

TEST(Export, CsvHasHeaderAndOneRowPerMetric)
{
    MetricsSnapshot snap;
    snap.setCounter("a", 1);
    snap.setGauge("b", 2.0);
    std::string csv = obs::toCsv(snap);
    EXPECT_EQ(csv.find("name,kind,value\n"), 0u);
    EXPECT_NE(csv.find("a,counter,1"), std::string::npos);
    EXPECT_NE(csv.find("b,gauge,2"), std::string::npos);
}

TEST(Export, DiffReportsChangedMissingAndExtra)
{
    MetricsSnapshot expected, actual;
    expected.setCounter("same", 5);
    actual.setCounter("same", 5);
    expected.setCounter("changed", 1);
    actual.setCounter("changed", 2);
    expected.setCounter("only_expected", 3);
    actual.setCounter("only_actual", 4);
    auto diffs = obs::diffSnapshots(expected, actual);
    ASSERT_EQ(diffs.size(), 3u);
    std::string report = obs::formatDiff(diffs);
    EXPECT_NE(report.find("changed"), std::string::npos);
    EXPECT_NE(report.find("only_expected"), std::string::npos);
    EXPECT_NE(report.find("only_actual"), std::string::npos);
    EXPECT_EQ(report.find("same"), std::string::npos);
}

// ------------------------------------------------------------ TimeSeries

TEST(IntervalSeries, AppendAndReadBack)
{
    IntervalSeries s({"a", "b"}, 4);
    s.append(100, 200, {1, 2});
    s.append(200, 400, {3, 4});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.sample(0).instructions, 100u);
    EXPECT_EQ(s.sample(0).values[1], 2u);
    EXPECT_EQ(s.sample(1).cycle, 400u);
    EXPECT_EQ(s.sample(1).values[0], 3u);
}

TEST(IntervalSeries, RingWrapKeepsNewestSamples)
{
    IntervalSeries s({"v"}, 3);
    for (std::uint64_t i = 1; i <= 10; ++i)
        s.append(i, i * 10, {i * 100});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.dropped(), 7u);
    EXPECT_EQ(s.totalAppends(), 10u);
    EXPECT_EQ(s.sample(0).instructions, 8u);   // oldest retained
    EXPECT_EQ(s.sample(2).instructions, 10u);  // newest
    EXPECT_EQ(s.sample(2).values[0], 1000u);
}

TEST(IntervalSeries, WidthMismatchThrows)
{
    IntervalSeries s({"a", "b"}, 2);
    EXPECT_THROW(s.append(1, 1, {1}), verify::SimError);
}

TEST(IntervalSeries, CsvExportHasColumns)
{
    IntervalSeries s({"x"}, 2);
    s.append(5, 6, {7});
    std::string csv = obs::toCsv(s);
    EXPECT_EQ(csv.find("instructions,cycle,x\n"), 0u);
    EXPECT_NE(csv.find("5,6,7"), std::string::npos);
}

TEST(IntervalSampler, SamplesAtBoundaries)
{
    std::uint64_t cell = 0;
    MetricsRegistry reg;
    reg.counter("c", &cell);
    obs::SamplerConfig cfg;
    cfg.interval = 100;
    cfg.capacity = 8;
    IntervalSampler sampler(&reg, cfg);
    cell = 1;
    sampler.maybeSample(50, 10);    // below first boundary: no sample
    EXPECT_EQ(sampler.series().size(), 0u);
    cell = 2;
    sampler.maybeSample(100, 20);   // crosses 100
    cell = 3;
    sampler.maybeSample(150, 30);   // still before 200
    cell = 4;
    sampler.maybeSample(250, 40);   // crosses 200 (and 300 is next)
    ASSERT_EQ(sampler.series().size(), 2u);
    EXPECT_EQ(sampler.series().sample(0).values[0], 2u);
    EXPECT_EQ(sampler.series().sample(1).values[0], 4u);
}

TEST(IntervalSeries, DegenerateConstructionAndIndexThrow)
{
    EXPECT_THROW(IntervalSeries({"a"}, 0), verify::SimError);
    IntervalSeries s({"a"}, 2);
    EXPECT_THROW(s.sample(0), verify::SimError);
    EXPECT_THROW(IntervalSampler(nullptr, obs::SamplerConfig{1, 2}),
                 verify::SimError);
    MetricsRegistry reg;
    EXPECT_THROW(IntervalSampler(&reg, obs::SamplerConfig{0, 2}),
                 verify::SimError);
}

TEST(SamplerConfig, FromEnvParsesAndRejects)
{
    {
        ScopedEnv interval("BERTI_OBS_INTERVAL", "5000");
        ScopedEnv ring("BERTI_OBS_RING", "16");
        obs::SamplerConfig cfg = obs::SamplerConfig::fromEnv();
        EXPECT_EQ(cfg.interval, 5000u);
        EXPECT_EQ(cfg.capacity, 16u);
    }
    {
        ScopedEnv interval("BERTI_OBS_INTERVAL", "banana");
        EXPECT_THROW(obs::SamplerConfig::fromEnv(), verify::SimError);
    }
}

// ------------------------------------------------------------ EventTrace

TEST(PrefetchEventTrace, ExactTotalsWithSampling)
{
    obs::TraceConfig cfg;
    cfg.capacity = 4;
    cfg.samplePeriod = 3;  // keep every 3rd event
    PrefetchEventTrace trace(cfg);
    for (unsigned i = 0; i < 30; ++i)
        trace.record(i, PfEvent::Issue, i, 7);
    EXPECT_EQ(trace.total(PfEvent::Issue), 30u);  // exact despite 1/3
    EXPECT_EQ(trace.totalSeen(), 30u);
    EXPECT_EQ(trace.size(), 4u);                  // capped at capacity
}

TEST(PrefetchEventTrace, RingKeepsNewestEvents)
{
    obs::TraceConfig cfg;
    cfg.capacity = 2;
    PrefetchEventTrace trace(cfg);
    trace.record(1, PfEvent::Issue, 10, 0);
    trace.record(2, PfEvent::Fill, 20, 0);
    trace.record(3, PfEvent::Useful, 30, 0);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.event(0).kind, PfEvent::Fill);
    EXPECT_EQ(trace.event(1).kind, PfEvent::Useful);
    EXPECT_EQ(trace.event(1).line, 30u);
}

TEST(PrefetchEventTrace, JsonNamesEveryKind)
{
    obs::TraceConfig cfg;
    cfg.capacity = 8;
    PrefetchEventTrace trace(cfg);
    trace.record(1, PfEvent::CrossPage, 2, 3);
    std::string json = obs::toJson(trace);
    for (std::size_t k = 0; k < obs::kPfEventKinds; ++k) {
        EXPECT_NE(json.find(obs::pfEventName(static_cast<PfEvent>(k))),
                  std::string::npos);
    }
    EXPECT_NE(json.find("\"cross_page\": 1"), std::string::npos);
}

TEST(PrefetchEventTrace, DegenerateConfigsAndIndexThrow)
{
    obs::TraceConfig zero_cap;
    zero_cap.capacity = 0;
    EXPECT_THROW(PrefetchEventTrace trace(zero_cap), verify::SimError);
    obs::TraceConfig zero_period;
    zero_period.capacity = 4;
    zero_period.samplePeriod = 0;
    EXPECT_THROW(PrefetchEventTrace trace(zero_period),
                 verify::SimError);
    obs::TraceConfig ok;
    ok.capacity = 4;
    PrefetchEventTrace trace(ok);
    EXPECT_THROW(trace.event(0), verify::SimError);
}

TEST(TraceConfig, FromEnvParsesAndRejects)
{
    {
        ScopedEnv cap("BERTI_OBS_PFTRACE", "512");
        ScopedEnv period("BERTI_OBS_PFTRACE_PERIOD", "4");
        obs::TraceConfig cfg = obs::TraceConfig::fromEnv();
        EXPECT_EQ(cfg.capacity, 512u);
        EXPECT_EQ(cfg.samplePeriod, 4u);
    }
    {
        ScopedEnv cap("BERTI_OBS_PFTRACE", "lots");
        EXPECT_THROW(obs::TraceConfig::fromEnv(), verify::SimError);
    }
}

// --------------------------------------------------------- Machine level

SimParams
tinyParams()
{
    SimParams p;
    p.warmupInstructions = 2000;
    p.measureInstructions = 5000;
    return p;
}

TEST(MachineMetrics, EveryComponentRegisters)
{
    auto gen = findWorkload("mcf-like.472").make();
    Machine machine(MachineConfig::sunnyCove(1), {gen.get()});
    const MetricsRegistry &reg = machine.metrics();
    for (const char *name :
         {"machine.cycles", "c0.core.instructions", "c0.core.ipc",
          "c0.core.itlb.accesses", "c0.l1d.demand_misses",
          "c0.l1d.prefetch_cross_page", "c0.l1d.accuracy",
          "c0.l1d.fill_latency", "c0.l1d.pf.storage_bits",
          "c0.l1i.demand_hits", "c0.l2.prefetch_issued",
          "c0.dtlb.misses", "c0.stlb.prefetch_probes", "llc.fills",
          "dram.row_hits", "dram.row_hit_rate", "energy.total"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    // Histograms appear flattened in the snapshot view.
    EXPECT_TRUE(
        machine.metricsSnapshot().contains("c0.l1d.fill_latency.count"));
}

TEST(MachineMetrics, CountersAreZeroAtConstruction)
{
    auto gen = findWorkload("mcf-like.472").make();
    Machine machine(MachineConfig::sunnyCove(1), {gen.get()});
    MetricsSnapshot snap = machine.metricsSnapshot();
    EXPECT_EQ(snap.counter("machine.cycles"), 0u);
    EXPECT_EQ(snap.counter("c0.core.instructions"), 0u);
    EXPECT_EQ(snap.counter("dram.reads"), 0u);
}

TEST(MachineMetrics, SnapshotTracksSimulationProgress)
{
    auto gen = findWorkload("mcf-like.472").make();
    Machine machine(MachineConfig::sunnyCove(1), {gen.get()});
    machine.run(5000);
    MetricsSnapshot snap = machine.metricsSnapshot();
    EXPECT_GE(snap.counter("c0.core.instructions"), 5000u);
    EXPECT_GT(snap.counter("machine.cycles"), 0u);
    EXPECT_GT(snap.counter("c0.l1d.demand_accesses"), 0u);
    EXPECT_GT(snap.gauge("c0.core.ipc"), 0.0);
    EXPECT_GT(snap.gauge("energy.total"), 0.0);
    // The fill-latency histogram observed exactly the MSHR fills the
    // flat counters saw.
    EXPECT_EQ(snap.counter("c0.l1d.fill_latency.count"),
              snap.counter("c0.l1d.fill_latency_count"));
}

TEST(MachineMetrics, AggregateStatsSumsCores)
{
    auto g0 = findWorkload("mcf-like.472").make();
    auto g1 = findWorkload("bwaves-like.2609").make();
    Machine machine(MachineConfig::sunnyCove(2),
                    {g0.get(), g1.get()});
    machine.run(3000);
    RunStats agg = machine.aggregateStats();
    RunStats c0 = machine.liveStats(0);
    RunStats c1 = machine.liveStats(1);
    EXPECT_EQ(agg.core.instructions,
              c0.core.instructions + c1.core.instructions);
    EXPECT_EQ(agg.l1d.demandAccesses,
              c0.l1d.demandAccesses + c1.l1d.demandAccesses);
    EXPECT_EQ(agg.llc.fills, c0.llc.fills);  // shared: counted once
    EXPECT_EQ(agg.core.cycles, machine.cycle());
}

TEST(MachineMetrics, IntervalSamplerWiredThroughEnv)
{
    ScopedEnv interval("BERTI_OBS_INTERVAL", "1000");
    ScopedEnv ring("BERTI_OBS_RING", "64");
    auto gen = findWorkload("mcf-like.472").make();
    Machine machine(MachineConfig::sunnyCove(1), {gen.get()});
    ASSERT_NE(machine.intervalSeries(), nullptr);
    machine.run(5000);
    const IntervalSeries &series = *machine.intervalSeries();
    EXPECT_GE(series.size(), 4u);
    ASSERT_FALSE(series.columns().empty());
    // Counter columns are non-decreasing over time.
    auto cols = machine.metrics().counterNames();
    std::size_t instr_col =
        std::find(cols.begin(), cols.end(), "c0.core.instructions") -
        cols.begin();
    ASSERT_LT(instr_col, cols.size());
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series.sample(i).values[instr_col],
                  series.sample(i - 1).values[instr_col]);
    }
}

TEST(MachineMetrics, SamplerOffByDefault)
{
    auto gen = findWorkload("mcf-like.472").make();
    Machine machine(MachineConfig::sunnyCove(1), {gen.get()});
    EXPECT_EQ(machine.intervalSeries(), nullptr);
    EXPECT_EQ(machine.prefetchTrace(0), nullptr);
}

TEST(MachineMetrics, EventTraceConsistentWithCounters)
{
    ScopedEnv trace_env("BERTI_OBS_PFTRACE", "256");
    auto gen = findWorkload("mcf-like.472").make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    Machine machine(cfg, {gen.get()});
    ASSERT_NE(machine.prefetchTrace(0), nullptr);
    machine.run(20000);
    const PrefetchEventTrace &trace = *machine.prefetchTrace(0);
    RunStats live = machine.liveStats(0);
    std::uint64_t issued =
        live.l1d.prefetchIssued + live.l2.prefetchIssued +
        live.l1i.prefetchIssued;
    EXPECT_EQ(trace.total(PfEvent::Issue), issued);
    EXPECT_EQ(trace.total(PfEvent::Fill),
              live.l1d.prefetchFills + live.l2.prefetchFills +
                  live.l1i.prefetchFills);
    EXPECT_EQ(trace.total(PfEvent::CrossPage),
              live.l1d.prefetchCrossPage + live.l2.prefetchCrossPage +
                  live.l1i.prefetchCrossPage);
    EXPECT_GT(issued, 0u);
}

// ------------------------------------------- determinism / reset-reuse

TEST(Determinism, SameCellTwiceExportsIdenticalJson)
{
    const Workload &w = findWorkload("mcf-like.472");
    PrefetcherSpec spec = makeSpec("berti");
    SimResult a = simulate(w, spec, tinyParams());
    SimResult b = simulate(w, spec, tinyParams());
    EXPECT_EQ(obs::toJson(resultSnapshot(a)),
              obs::toJson(resultSnapshot(b)));
}

TEST(Determinism, ExportBitIdenticalAcrossJobCounts)
{
    std::vector<Workload> workloads = {findWorkload("mcf-like.472"),
                                       findWorkload("bwaves-like.2609")};
    std::vector<PrefetcherSpec> specs = {makeSpec("none"),
                                         makeSpec("berti")};
    auto serial =
        runMatrixParallel(workloads, specs, tinyParams(), /*jobs=*/1);
    auto parallel =
        runMatrixParallel(workloads, specs, tinyParams(), /*jobs=*/8);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            EXPECT_EQ(obs::toJson(resultSnapshot(serial[s][w])),
                      obs::toJson(resultSnapshot(parallel[s][w])))
                << specs[s].name << " on " << workloads[w].name;
        }
    }
}

TEST(Determinism, PerturbedCounterIsDetected)
{
    const Workload &w = findWorkload("mcf-like.472");
    SimResult r = simulate(w, makeSpec("berti"), tinyParams());
    MetricsSnapshot golden = resultSnapshot(r);
    SimResult tampered = r;
    ++tampered.roi.l1d.prefetchUseful;  // deliberate 1-count drift
    auto diffs = obs::diffSnapshots(golden, resultSnapshot(tampered));
    EXPECT_FALSE(diffs.empty());
    bool named = false;
    for (const auto &d : diffs)
        named |= d.name == "l1d.prefetch_useful";
    EXPECT_TRUE(named);
}

} // namespace
} // namespace berti
