/** @file GAP kernel trace-generator tests. */

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "trace/gap_kernels.hh"

namespace berti
{

namespace
{

std::shared_ptr<const Csr>
testGraph()
{
    static auto g = std::make_shared<const Csr>(
        makeUniformGraph(2000, 6, 42));
    return g;
}

std::vector<TraceInstr>
take(TraceGenerator &gen, std::size_t n)
{
    std::vector<TraceInstr> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(gen.next());
    return out;
}

} // namespace

class GapKernelSweep : public ::testing::TestWithParam<GapKernel>
{
};

TEST_P(GapKernelSweep, ProducesMemoryTraffic)
{
    GapGen gen(GetParam(), testGraph());
    auto trace = take(gen, 20000);
    unsigned loads = 0, stores = 0, branches = 0;
    for (const auto &in : trace) {
        loads += in.isLoad() ? 1 : 0;
        stores += in.isStore() ? 1 : 0;
        branches += in.isBranch ? 1 : 0;
    }
    EXPECT_GT(loads, 2000u);
    EXPECT_GT(branches, 100u);
}

TEST_P(GapKernelSweep, Deterministic)
{
    GapGen g1(GetParam(), testGraph(), 5);
    GapGen g2(GetParam(), testGraph(), 5);
    for (int i = 0; i < 2000; ++i) {
        TraceInstr a = g1.next();
        TraceInstr b = g2.next();
        ASSERT_EQ(a.ip, b.ip);
        ASSERT_EQ(a.load0, b.load0);
        ASSERT_EQ(a.store, b.store);
    }
}

TEST_P(GapKernelSweep, UsesMultipleAccessSites)
{
    GapGen gen(GetParam(), testGraph());
    auto trace = take(gen, 20000);
    std::set<Addr> load_ips;
    for (const auto &in : trace) {
        if (in.isLoad())
            load_ips.insert(in.ip);
    }
    // Regular CSR scans plus irregular property gathers = several IPs.
    EXPECT_GE(load_ips.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Kernels, GapKernelSweep,
                         ::testing::Values(GapKernel::Bfs,
                                           GapKernel::PageRank,
                                           GapKernel::Cc, GapKernel::Sssp,
                                           GapKernel::Bc));

TEST(GapGen, PageRankColStreamIsSequential)
{
    GapGen gen(GapKernel::PageRank, testGraph());
    auto trace = take(gen, 30000);
    // The col[] reads (site 23 -> ip 0x500000 + 4*23) walk forward.
    Addr col_ip = 0x500000 + 4 * 23;
    Addr prev = 0;
    unsigned seen = 0, monotone = 0;
    for (const auto &in : trace) {
        if (in.ip != col_ip || !in.isLoad())
            continue;
        if (seen && in.load0 >= prev)
            ++monotone;
        prev = in.load0;
        ++seen;
    }
    ASSERT_GT(seen, 100u);
    EXPECT_GT(static_cast<double>(monotone) / seen, 0.95);
}

TEST(GapGen, RankGatherIsIrregular)
{
    GapGen gen(GapKernel::PageRank, testGraph());
    auto trace = take(gen, 30000);
    Addr gather_ip = 0x500000 + 4 * 24;
    std::set<Addr> lines;
    unsigned seen = 0;
    for (const auto &in : trace) {
        if (in.ip == gather_ip && in.isLoad()) {
            lines.insert(lineAddr(in.load0));
            ++seen;
        }
    }
    ASSERT_GT(seen, 100u);
    // Gathers scatter over most of the 2000-node / 250-line property
    // array (topology-driven, no spatial locality).
    EXPECT_GT(lines.size(), 100u);
}

TEST(GapGen, BfsEventuallyRestarts)
{
    // On a 2000-node graph, 200k instructions exhaust several BFS
    // traversals; the generator must keep producing (restart logic).
    GapGen gen(GapKernel::Bfs, testGraph());
    auto trace = take(gen, 200000);
    EXPECT_EQ(trace.size(), 200000u);
}

TEST(GapGen, BcRunsForwardAndBackwardPhases)
{
    GapGen gen(GapKernel::Bc, testGraph());
    auto trace = take(gen, 300000);
    // Backward-phase access sites (60+) appear once a BFS completes.
    bool backward_seen = false;
    for (const auto &in : trace)
        backward_seen |= in.ip >= 0x500000 + 4 * 60 &&
                         in.ip <= 0x500000 + 4 * 68;
    EXPECT_TRUE(backward_seen);
}

} // namespace berti
