/**
 * @file
 * Result-store unit tests: key discrimination, lossless round-trips,
 * corruption self-healing (corrupt entry = miss + unlink, never
 * propagated data), stale staging cleanup and the quarantine marker
 * lifecycle.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "harness/experiment.hh"
#include "harness/result_store.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "trace/registry.hh"

namespace berti::harness
{

namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "/" + name + "." +
                      std::to_string(::getpid());
    return dir;
}

obs::MetricsSnapshot
sampleSnapshot()
{
    obs::MetricsSnapshot snap;
    snap.setCounter("core.instructions", 250000);
    snap.setCounter("l1d.demandMisses", 1234);
    snap.setGauge("ipc", 1.875);
    return snap;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

} // namespace

TEST(StoreKey, HashDiscriminatesEveryCoordinate)
{
    SimParams params;
    StoreKey base = makeStoreKey("mcf-like.472", "berti", params, "aaa");

    StoreKey other_workload =
        makeStoreKey("bwaves-like.2609", "berti", params, "aaa");
    StoreKey other_spec =
        makeStoreKey("mcf-like.472", "none", params, "aaa");
    SimParams longer = params;
    longer.measureInstructions += 1;
    StoreKey other_params =
        makeStoreKey("mcf-like.472", "berti", longer, "aaa");
    StoreKey other_code =
        makeStoreKey("mcf-like.472", "berti", params, "bbb");

    EXPECT_NE(base.hash(), other_workload.hash());
    EXPECT_NE(base.hash(), other_spec.hash());
    EXPECT_NE(base.hash(), other_params.hash());
    EXPECT_NE(base.hash(), other_code.hash());

    StoreKey same = makeStoreKey("mcf-like.472", "berti", params, "aaa");
    EXPECT_EQ(base.hash(), same.hash());
    EXPECT_EQ(base.stem(), same.stem());
}

TEST(StoreKey, ParamsFingerprintCoversResultAffectingFields)
{
    SimParams base;
    std::uint64_t h = paramsFingerprint(base);

    SimParams warmup = base;
    warmup.warmupInstructions += 1;
    EXPECT_NE(paramsFingerprint(warmup), h);

    SimParams measure = base;
    measure.measureInstructions += 1;
    EXPECT_NE(paramsFingerprint(measure), h);

    SimParams dram = base;
    dram.dramMtps += 1;
    EXPECT_NE(paramsFingerprint(dram), h);
}

TEST(StoreKey, StemIsFilesystemSafe)
{
    StoreKey key = makeStoreKey("a/b c", "x:y", SimParams{}, "dev");
    std::string stem = key.stem();
    for (char c : stem) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        EXPECT_TRUE(ok) << "character '" << c << "' in stem " << stem;
    }
}

TEST(ResultStore, RoundTripIsBitIdentical)
{
    ResultStore store(freshDir("berti_store_rt"));
    StoreKey key = makeStoreKey("mcf-like.472", "berti", SimParams{});

    EXPECT_FALSE(store.contains(key));
    EXPECT_FALSE(store.load(key).has_value());

    obs::MetricsSnapshot snap = sampleSnapshot();
    store.store(key, snap);
    EXPECT_TRUE(store.contains(key));

    auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(obs::toJson(*loaded), obs::toJson(snap));

    store.remove(key);
    EXPECT_FALSE(store.contains(key));
}

TEST(ResultStore, CorruptEntriesAreMissesAndUnlinked)
{
    ResultStore store(freshDir("berti_store_corrupt"));
    StoreKey key = makeStoreKey("mcf-like.472", "berti", SimParams{});
    obs::MetricsSnapshot snap = sampleSnapshot();

    auto corrupt = [&](auto mutate, const std::string &what) {
        store.store(key, snap);
        std::string content = readAll(store.entryPath(key));
        ASSERT_FALSE(content.empty()) << what;
        mutate(content);
        writeAll(store.entryPath(key), content);

        EXPECT_FALSE(store.load(key).has_value()) << what;
        // The damaged entry was unlinked so the slot self-heals.
        EXPECT_FALSE(store.contains(key)) << what;
    };

    corrupt([](std::string &c) { c = c.substr(0, c.size() / 2); },
            "truncated entry");
    corrupt([](std::string &c) { c[c.size() - 2] ^= 0x01; },
            "payload bit flip");
    corrupt([](std::string &c) { c[0] = 'X'; }, "mangled header");
    corrupt([](std::string &c) { c = "not a result file"; },
            "unrelated content");

    // A key-echo mismatch (entry renamed onto another key's path) is
    // also treated as corruption even when the checksum holds.
    StoreKey other = makeStoreKey("bwaves-like.2609", "none", SimParams{});
    store.store(key, snap);
    writeAll(store.entryPath(other), readAll(store.entryPath(key)));
    EXPECT_FALSE(store.load(other).has_value());
    EXPECT_FALSE(store.contains(other));
    EXPECT_TRUE(store.load(key).has_value());
}

TEST(ResultStore, StaleTempFilesSweptAtConstruction)
{
    std::string dir = freshDir("berti_store_tmp");
    {
        ResultStore first(dir);
        EXPECT_EQ(first.staleTempFilesRemoved(), 0u);
    }
    writeAll(dir + "/half-written.result.tmp", "torn write");
    writeAll(dir + "/other.tmp", "torn write");

    ResultStore store(dir);
    EXPECT_EQ(store.staleTempFilesRemoved(), 2u);
    EXPECT_TRUE(readAll(dir + "/half-written.result.tmp").empty());
}

TEST(ResultStore, QuarantineLifecycle)
{
    ResultStore store(freshDir("berti_store_quar"));
    StoreKey key = makeStoreKey("mcf-like.472", "berti", SimParams{});

    EXPECT_FALSE(store.loadQuarantine(key).has_value());
    store.markQuarantined(key, "fault after 3 attempts: injected");
    auto reason = store.loadQuarantine(key);
    ASSERT_TRUE(reason.has_value());
    EXPECT_NE(reason->find("3 attempts"), std::string::npos);

    store.clearQuarantine(key);
    EXPECT_FALSE(store.loadQuarantine(key).has_value());
}

TEST(ResultStore, ResultSnapshotRoundTripsThroughTheStore)
{
    // The full provenance chain for one real cell: simulate ->
    // resultSnapshot -> store -> load -> resultFromSnapshot must hand
    // back a result whose re-export is bit-identical — the property
    // that makes a store hit indistinguishable from recomputation.
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 10000;
    SimResult computed =
        simulate(findWorkload("mcf-like.472"), makeSpec("berti"), params);
    obs::MetricsSnapshot snap = resultSnapshot(computed);

    ResultStore store(freshDir("berti_store_sim"));
    StoreKey key = makeStoreKey("mcf-like.472", "berti", params);
    store.store(key, snap);
    auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());

    SimResult restored = resultFromSnapshot(*loaded);
    EXPECT_EQ(obs::toJson(resultSnapshot(restored)), obs::toJson(snap));
    EXPECT_EQ(restored.ipc, computed.ipc);
}

} // namespace berti::harness
