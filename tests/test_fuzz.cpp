/** @file Randomised property tests: structural invariants of the cache
 *  and the full machine under arbitrary request mixes. */

#include <gtest/gtest.h>

#include "harness/machine.hh"
#include "mem/cache.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace berti
{

using test::stepCycles;
using test::TestMemory;

namespace
{

struct NullClient : ReadClient
{
    std::uint64_t completions = 0;

    void readDone(const MemRequest &) override { ++completions; }
};

struct FuzzParams
{
    std::uint64_t seed;
    unsigned sets;
    unsigned ways;
    unsigned mshrs;
};

} // namespace

class CacheFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

TEST_P(CacheFuzz, InvariantsHoldUnderRandomTraffic)
{
    auto [seed, sets, ways, mshrs] = GetParam();
    Cycle clock = 0;
    CacheConfig cfg;
    cfg.sets = sets;
    cfg.ways = ways;
    cfg.mshrs = mshrs;
    cfg.latency = 3;
    cfg.rqSize = 16;
    cfg.pqSize = 8;
    Cache cache(cfg, &clock);
    TestMemory mem(&clock, 40);
    cache.setLower(&mem);
    NullClient client;
    Rng rng(seed);

    std::uint64_t submitted = 0;
    for (int step = 0; step < 20000; ++step) {
        std::uint64_t roll = rng.nextBounded(100);
        Addr line = rng.nextBounded(4 * sets * ways);  // heavy conflicts
        if (roll < 55) {
            MemRequest req;
            req.pLine = line;
            req.vLine = line;
            req.ip = 0x400000 + (line % 32) * 4;
            req.type = roll < 40 ? AccessType::Load : AccessType::Rfo;
            req.instrId = 1;
            req.client = &client;
            submitted += cache.submitRead(req) ? 1 : 0;
        } else if (roll < 70) {
            cache.submitWriteback(line);
        } else if (roll < 85) {
            cache.issuePrefetch(line, FillLevel::L1);
        } else {
            mem.refuseReads = roll < 90;  // transient backpressure
        }
        ++clock;
        mem.tick();
        cache.tick();
        mem.refuseReads = false;

        // Core invariants, checked continuously.
        ASSERT_LE(cache.mshrsInUse(), mshrs);
        ASSERT_LE(cache.rqOccupancy(), cfg.rqSize);
        ASSERT_LE(cache.pqOccupancy(), cfg.pqSize);
        ASSERT_GE(cache.stats.demandAccesses,
                  cache.stats.demandHits + cache.stats.demandMisses);
    }

    // Drain: every accepted demand read must eventually complete.
    stepCycles(clock, cache, mem, 5000);
    EXPECT_EQ(client.completions, submitted);
    EXPECT_EQ(cache.mshrsInUse(), 0u);
    EXPECT_DOUBLE_EQ(cache.mshrOccupancy(), 0.0);

    // Stats algebra holds at quiescence.
    EXPECT_EQ(cache.stats.demandAccesses,
              cache.stats.demandHits + cache.stats.demandMisses +
                  cache.stats.demandMshrMerged);
    EXPECT_GE(cache.stats.fills, cache.stats.prefetchFills);
    EXPECT_GE(cache.stats.prefetchUseful + cache.stats.prefetchUseless,
              0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheFuzz,
    ::testing::Values(FuzzParams{1, 4, 2, 4}, FuzzParams{2, 16, 4, 8},
                      FuzzParams{3, 64, 12, 16}, FuzzParams{4, 1, 1, 1},
                      FuzzParams{5, 8, 16, 2}, FuzzParams{6, 2, 8, 32}));

class MachineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MachineFuzz, RandomWorkloadMachineStaysConsistent)
{
    // A random instruction mix through the whole machine: the run must
    // terminate, retire the requested count, and keep stats sane.
    class ChaosGen : public TraceGenerator
    {
      public:
        explicit ChaosGen(std::uint64_t seed) : rng(seed) {}

        TraceInstr
        next() override
        {
            TraceInstr in;
            in.ip = 0x400000 + 4 * rng.nextBounded(512);
            std::uint64_t roll = rng.nextBounded(100);
            if (roll < 30) {
                in.load0 =
                    0x10000000ull + 64 * rng.nextBounded(1u << 16);
                in.dependsOnPrevLoad = roll < 5;
            } else if (roll < 40) {
                in.store =
                    0x30000000ull + 64 * rng.nextBounded(1u << 14);
            } else if (roll < 55) {
                in.isBranch = true;
                in.taken = rng.nextBool(0.6);
            }
            return in;
        }

      private:
        Rng rng;
    };

    ChaosGen gen(GetParam());
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    Machine m(cfg, {&gen});
    m.run(30000);
    RunStats s = m.liveStats(0);
    EXPECT_GE(s.core.instructions, 30000u);
    EXPECT_GT(s.core.cycles, 0u);
    EXPECT_EQ(s.l1d.demandAccesses,
              s.l1d.demandHits + s.l1d.demandMisses +
                  s.l1d.demandMshrMerged);
    EXPECT_LE(s.l1d.demandHits, s.l1d.demandAccesses);
    EXPECT_LE(s.dram.rowHits + s.dram.rowMisses + s.dram.rowConflicts,
              s.dram.reads + s.dram.writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

} // namespace berti
