/** @file Randomised property tests: structural invariants of the cache
 *  and the full machine under arbitrary request mixes, a corrupt-trace
 *  corpus (bit flips, truncations, hostile lengths — direct and via the
 *  FaultInjector), and the wedged-MSHR watchdog scenario. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "mem/cache.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "oracle/microtrace.hh"
#include "sim/rng.hh"
#include "trace/generators.hh"
#include "trace/trace_io.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"
#include "test_util.hh"

namespace berti
{

using test::stepCycles;
using test::TestMemory;

namespace
{

struct NullClient : ReadClient
{
    std::uint64_t completions = 0;

    void readDone(const MemRequest &) override { ++completions; }
};

struct FuzzParams
{
    std::uint64_t seed;
    unsigned sets;
    unsigned ways;
    unsigned mshrs;
};

} // namespace

class CacheFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

TEST_P(CacheFuzz, InvariantsHoldUnderRandomTraffic)
{
    auto [seed, sets, ways, mshrs] = GetParam();
    Cycle clock = 0;
    CacheConfig cfg;
    cfg.sets = sets;
    cfg.ways = ways;
    cfg.mshrs = mshrs;
    cfg.latency = 3;
    cfg.rqSize = 16;
    cfg.pqSize = 8;
    Cache cache(cfg, &clock);
    TestMemory mem(&clock, 40);
    cache.setLower(&mem);
    NullClient client;
    Rng rng(seed);

    std::uint64_t submitted = 0;
    for (int step = 0; step < 20000; ++step) {
        std::uint64_t roll = rng.nextBounded(100);
        Addr line = rng.nextBounded(4 * sets * ways);  // heavy conflicts
        if (roll < 55) {
            MemRequest req;
            req.pLine = line;
            req.vLine = line;
            req.ip = 0x400000 + (line % 32) * 4;
            req.type = roll < 40 ? AccessType::Load : AccessType::Rfo;
            req.instrId = 1;
            req.client = &client;
            submitted += cache.submitRead(req) ? 1 : 0;
        } else if (roll < 70) {
            cache.submitWriteback(line);
        } else if (roll < 85) {
            cache.issuePrefetch(line, FillLevel::L1);
        } else {
            mem.refuseReads = roll < 90;  // transient backpressure
        }
        ++clock;
        mem.tick();
        cache.tick();
        mem.refuseReads = false;

        // Core invariants, checked continuously.
        ASSERT_LE(cache.mshrsInUse(), mshrs);
        ASSERT_LE(cache.rqOccupancy(), cfg.rqSize);
        ASSERT_LE(cache.pqOccupancy(), cfg.pqSize);
        ASSERT_GE(cache.stats.demandAccesses,
                  cache.stats.demandHits + cache.stats.demandMisses);
    }

    // Drain: every accepted demand read must eventually complete.
    stepCycles(clock, cache, mem, 5000);
    EXPECT_EQ(client.completions, submitted);
    EXPECT_EQ(cache.mshrsInUse(), 0u);
    EXPECT_DOUBLE_EQ(cache.mshrOccupancy(), 0.0);

    // Stats algebra holds at quiescence.
    EXPECT_EQ(cache.stats.demandAccesses,
              cache.stats.demandHits + cache.stats.demandMisses +
                  cache.stats.demandMshrMerged);
    EXPECT_GE(cache.stats.fills, cache.stats.prefetchFills);
    EXPECT_GE(cache.stats.prefetchUseful + cache.stats.prefetchUseless,
              0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheFuzz,
    ::testing::Values(FuzzParams{1, 4, 2, 4}, FuzzParams{2, 16, 4, 8},
                      FuzzParams{3, 64, 12, 16}, FuzzParams{4, 1, 1, 1},
                      FuzzParams{5, 8, 16, 2}, FuzzParams{6, 2, 8, 32}));

class MachineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MachineFuzz, RandomWorkloadMachineStaysConsistent)
{
    // A random instruction mix through the whole machine: the run must
    // terminate, retire the requested count, and keep stats sane.
    class ChaosGen : public TraceGenerator
    {
      public:
        explicit ChaosGen(std::uint64_t seed) : rng(seed) {}

        TraceInstr
        next() override
        {
            TraceInstr in;
            in.ip = 0x400000 + 4 * rng.nextBounded(512);
            std::uint64_t roll = rng.nextBounded(100);
            if (roll < 30) {
                in.load0 =
                    0x10000000ull + 64 * rng.nextBounded(1u << 16);
                in.dependsOnPrevLoad = roll < 5;
            } else if (roll < 40) {
                in.store =
                    0x30000000ull + 64 * rng.nextBounded(1u << 14);
            } else if (roll < 55) {
                in.isBranch = true;
                in.taken = rng.nextBool(0.6);
            }
            return in;
        }

      private:
        Rng rng;
    };

    ChaosGen gen(GetParam());
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    Machine m(cfg, {&gen});
    m.run(30000);
    RunStats s = m.liveStats(0);
    EXPECT_GE(s.core.instructions, 30000u);
    EXPECT_GT(s.core.cycles, 0u);
    EXPECT_EQ(s.l1d.demandAccesses,
              s.l1d.demandHits + s.l1d.demandMisses +
                  s.l1d.demandMshrMerged);
    EXPECT_LE(s.l1d.demandHits, s.l1d.demandAccesses);
    EXPECT_LE(s.dram.rowHits + s.dram.rowMisses + s.dram.rowConflicts,
              s.dram.reads + s.dram.writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

// --------------------------------------------------------------------
// Corrupt-trace corpus: arbitrary byte-level damage to a valid trace
// file must yield either a successfully parsed trace or a typed
// SimError — never a crash, hang, or silent empty run.
// --------------------------------------------------------------------

namespace
{

std::string
fuzzTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/berti_fuzz_" + tag +
           ".trace";
}

/** Record a short StreamGen trace to a fresh temp file. */
std::string
makeValidTrace(const char *tag, std::uint64_t count = 200)
{
    StreamGen::Params p;
    StreamGen gen(p);
    std::string path = fuzzTracePath(tag);
    EXPECT_TRUE(saveTrace(path, gen, count));
    return path;
}

} // namespace

class TraceCorpusFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceCorpusFuzz, RandomDamageParsesOrFailsTyped)
{
    std::string path = makeValidTrace("corpus");
    Rng rng(GetParam());

    for (int round = 0; round < 40; ++round) {
        // Re-record, then damage: flip bytes anywhere (header included)
        // and sometimes chop the tail to a hostile length.
        StreamGen::Params p;
        StreamGen gen(p);
        ASSERT_TRUE(saveTrace(path, gen, 200));

        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        unsigned flips = 1 + rng.nextBounded(8);
        for (unsigned i = 0; i < flips; ++i) {
            long at = static_cast<long>(rng.nextBounded(size));
            std::fseek(f, at, SEEK_SET);
            int byte = std::fgetc(f);
            ASSERT_NE(byte, EOF);
            std::fseek(f, at, SEEK_SET);
            std::fputc(byte ^ (1 << rng.nextBounded(8)), f);
        }
        std::fclose(f);
        if (rng.nextBool(0.3)) {
            long keep = static_cast<long>(rng.nextBounded(size));
            ASSERT_EQ(0, truncate(path.c_str(), keep));
        }

        auto result = loadTrace(path);
        if (!result.ok()) {
            // Typed error with the file identified — never a crash.
            EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
            EXPECT_EQ(result.error().path(), path);
            EXPECT_FALSE(result.error().reason().empty());
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceCorpusFuzz,
                         ::testing::Values(101ull, 202ull, 303ull));

TEST(TraceCorpusFuzz, InjectedBitFlipsStayParseable)
{
    std::string path = makeValidTrace("bitflip");
    auto clean = loadTrace(path);
    ASSERT_TRUE(clean.ok());

    verify::FaultConfig fc;
    fc.seed = 99;
    fc.traceBitFlipRate = 1.0;
    verify::FaultInjector inj(fc);
    auto result = loadTrace(path, &inj);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(inj.stats().traceBitFlips, clean.value().size());

    // A single-bit flip per record must have changed *something*.
    bool differs = false;
    for (std::size_t i = 0; i < clean.value().size(); ++i) {
        const TraceInstr &a = clean.value()[i];
        const TraceInstr &b = result.value()[i];
        differs |= a.ip != b.ip || a.load0 != b.load0 ||
                   a.load1 != b.load1 || a.store != b.store ||
                   a.isBranch != b.isBranch || a.taken != b.taken ||
                   a.dependsOnPrevLoad != b.dependsOnPrevLoad;
    }
    EXPECT_TRUE(differs);
    std::remove(path.c_str());
}

TEST(TraceCorpusFuzz, InjectedTruncationIsATypedError)
{
    std::string path = makeValidTrace("injtrunc");
    verify::FaultConfig fc;
    fc.seed = 7;
    fc.traceTruncateRate = 0.2;
    verify::FaultInjector inj(fc);
    auto result = loadTrace(path, &inj);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_NE(result.error().reason().find("injected truncation"),
              std::string::npos);
    EXPECT_GE(inj.stats().traceTruncations, 1u);
    std::remove(path.c_str());
}

TEST(TraceCorpusFuzz, HostilePayloadsRunOnTheMachine)
{
    // Corrupted-but-parseable records carry arbitrary 64-bit addresses.
    // The full machine (with Berti learning on the garbage stream) must
    // still make forward progress and keep its stats algebra intact.
    std::string path = makeValidTrace("hostile", 400);
    verify::FaultConfig fc;
    fc.seed = 1234;
    fc.traceBitFlipRate = 1.0;
    verify::FaultInjector inj(fc);
    auto result = loadTrace(path, &inj);
    ASSERT_TRUE(result.ok());
    std::remove(path.c_str());

    ScriptedGen gen(result.value());
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    cfg.audit.enabled = true;
    cfg.audit.interval = 1024;
    Machine m(cfg, {&gen});
    m.run(5000);
    RunStats s = m.liveStats(0);
    EXPECT_GE(s.core.instructions, 5000u);
    EXPECT_EQ(s.l1d.demandAccesses,
              s.l1d.demandHits + s.l1d.demandMisses +
                  s.l1d.demandMshrMerged);
    ASSERT_NE(m.auditor(), nullptr);
    EXPECT_GT(m.auditor()->checksRun(), 0u);
}

// --------------------------------------------------------------------
// Wedged simulation: a swallowed DRAM read response leaks an MSHR and
// parks the ROB head forever. The watchdog must convert the hang into
// a typed error carrying the structured machine diagnostic.
// --------------------------------------------------------------------

TEST(WatchdogFuzz, WedgedMshrFailsWithDiagnosticInsteadOfHanging)
{
    StreamGen::Params p;
    StreamGen gen(p);
    verify::FaultConfig fc;
    fc.seed = 42;
    fc.dramLoseReadRate = 1.0;  // every DRAM read response vanishes
    verify::FaultInjector inj(fc);

    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.faults = &inj;
    cfg.watchdog.stallCycles = 3000;  // keep the test fast

    Machine m(cfg, {&gen});
    try {
        m.run(100000);
        FAIL() << "a fully wedged machine must not complete";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Watchdog);
        EXPECT_NE(e.reason().find("no forward progress"),
                  std::string::npos);
        // The diagnostic names the wedged MSHRs and queue occupancies.
        EXPECT_FALSE(e.diagnostic().empty());
        EXPECT_NE(e.diagnostic().find("mshr"), std::string::npos);
        EXPECT_NE(e.diagnostic().find("DRAM"), std::string::npos);
    }
    EXPECT_GE(inj.stats().dramLostReads, 1u);
}

// --------------------------------------------------------------------
// Observability properties: randomised histograms must merge
// associatively and report monotone percentiles; a randomly driven
// interval ring must retain exactly the newest samples.
// --------------------------------------------------------------------

class ObsFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ObsFuzz, HistogramMergeIsAssociativeAndLossless)
{
    Rng rng(GetParam());
    bool linear = rng.nextBool(0.5);
    auto make = [linear] {
        return linear ? obs::Histogram::linear(17, 21)
                      : obs::Histogram::log2();
    };
    obs::Histogram parts[3] = {make(), make(), make()};
    obs::Histogram whole = make();
    std::uint64_t values = 200 + rng.nextBounded(800);
    for (std::uint64_t i = 0; i < values; ++i) {
        std::uint64_t v = rng.next() >> (rng.nextBounded(64));
        std::uint64_t w = 1 + rng.nextBounded(3);
        parts[rng.nextBounded(3)].record(v, w);
        whole.record(v, w);
    }

    // (a + b) + c  ==  a + (b + c)  ==  everything recorded into one.
    obs::Histogram left = make();
    left.merge(parts[0]);
    left.merge(parts[1]);
    left.merge(parts[2]);
    obs::Histogram bc = make();
    bc.merge(parts[1]);
    bc.merge(parts[2]);
    obs::Histogram right = make();
    right.merge(parts[0]);
    right.merge(bc);
    for (const obs::Histogram *h : {&left, &right}) {
        EXPECT_EQ(h->count(), whole.count());
        EXPECT_EQ(h->sum(), whole.sum());
        EXPECT_EQ(h->min(), whole.min());
        EXPECT_EQ(h->max(), whole.max());
        for (unsigned i = 0; i < whole.bucketCount(); ++i)
            EXPECT_EQ(h->bucketWeight(i), whole.bucketWeight(i)) << i;
    }

    // Percentiles are monotone in p and clamped to the observed range.
    std::uint64_t prev = 0;
    for (double p = 0.0; p <= 1.0; p += 1.0 / 64) {
        std::uint64_t q = whole.percentile(p);
        EXPECT_GE(q, prev);
        EXPECT_GE(q, whole.min());
        EXPECT_LE(q, whole.max());
        prev = q;
    }
}

TEST_P(ObsFuzz, IntervalRingRetainsExactlyTheNewestSamples)
{
    Rng rng(GetParam() ^ 0xABCDEF);
    std::size_t cap = 1 + rng.nextBounded(32);
    std::size_t cols = 1 + rng.nextBounded(5);
    obs::IntervalSeries ring(
        std::vector<std::string>(cols, "c"), cap);

    std::vector<std::vector<std::uint64_t>> history;
    std::uint64_t appends = rng.nextBounded(4 * cap + 1);
    for (std::uint64_t i = 0; i < appends; ++i) {
        std::vector<std::uint64_t> row(cols);
        for (auto &v : row)
            v = rng.next();
        ring.append(i, 2 * i, row);
        history.push_back(std::move(row));
    }

    std::size_t expect_held = std::min<std::size_t>(cap, history.size());
    ASSERT_EQ(ring.size(), expect_held);
    EXPECT_EQ(ring.dropped(), history.size() - expect_held);
    EXPECT_EQ(ring.totalAppends(), history.size());
    for (std::size_t i = 0; i < expect_held; ++i) {
        std::size_t src = history.size() - expect_held + i;
        obs::IntervalSeries::Sample s = ring.sample(i);
        EXPECT_EQ(s.instructions, src);
        for (std::size_t c = 0; c < cols; ++c)
            EXPECT_EQ(s.values[c], history[src][c]) << i << "," << c;
    }
}

TEST_P(ObsFuzz, SnapshotJsonRoundTripsArbitraryValues)
{
    Rng rng(GetParam() ^ 0x5EED);
    obs::MetricsSnapshot snap;
    unsigned metrics = 1 + rng.nextBounded(40);
    for (unsigned i = 0; i < metrics; ++i) {
        std::string name = "m" + std::to_string(rng.nextBounded(1000)) +
                           "." + std::to_string(i);
        if (rng.nextBool(0.5)) {
            snap.setCounter(name, rng.next());
        } else {
            double v = static_cast<double>(rng.next()) /
                       static_cast<double>(1 + rng.nextBounded(1 << 20));
            snap.setGauge(name, rng.nextBool(0.1) ? -v : v);
        }
    }
    std::string json = obs::toJson(snap);
    obs::MetricsSnapshot back = obs::snapshotFromJson(json, "fuzz");
    EXPECT_TRUE(snap == back);
    EXPECT_EQ(json, obs::toJson(back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------------------- checkpoints

class CheckpointFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CheckpointFuzz, SaveRestoreNeverDivergesOnMicroTraces)
{
    // Property: for any adversarial micro-trace and any save point, a
    // machine resumed from the checkpoint re-serializes to the same
    // bytes as one that never stopped.
    std::uint64_t seed = oracle::testSeed(GetParam() ^ 0xC4EC7F00);
    Rng rng(seed);
    const auto &classes = oracle::microTraceClasses();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;

    unsigned iters = oracle::propertyIterations(2);
    for (unsigned i = 0; i < iters; ++i) {
        const auto &cls = classes[rng.nextBounded(classes.size())];
        std::uint64_t trace_seed = rng.next();
        auto instrs = oracle::toInstrs(
            cls.generate(trace_seed, 200 + rng.nextBounded(400)));
        std::uint64_t warmup = 500 + rng.nextBounded(4000);
        std::uint64_t measure = 500 + rng.nextBounded(8000);

        ScriptedGen gen_a(instrs);
        Machine uninterrupted(cfg, {&gen_a});
        uninterrupted.run(warmup);
        std::string mid = uninterrupted.saveCheckpointBlob();
        uninterrupted.run(measure);

        ScriptedGen gen_b(instrs);
        Machine resumed(cfg, {&gen_b});
        resumed.resumeFromBlob(mid);
        ASSERT_TRUE(resumed.saveCheckpointBlob() == mid)
            << "restore not idempotent: " << cls.name << " seed=" << seed;
        resumed.run(measure);
        ASSERT_TRUE(resumed.saveCheckpointBlob() ==
                    uninterrupted.saveCheckpointBlob())
            << "diverged after resume: " << cls.name << " seed=" << seed
            << " trace_seed=" << trace_seed << " warmup=" << warmup
            << " measure=" << measure;
    }
}

TEST_P(CheckpointFuzz, DamagedBlobsAreRejectedAsTypedErrors)
{
    // Property: any single-bit flip or truncation of a checkpoint blob
    // is rejected with a typed Checkpoint error before any state is
    // applied — the victim machine stays pristine and resumable.
    std::uint64_t seed = oracle::testSeed(GetParam() ^ 0xDA3A6ED);
    Rng rng(seed);
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;

    const Workload &w = findWorkload("mcf-like.472");
    auto gen = w.make();
    Machine saver(cfg, {gen.get()});
    saver.run(2000);
    const std::string blob = saver.saveCheckpointBlob();

    verify::FaultConfig fc;
    fc.seed = seed;
    fc.traceBitFlipRate = 1.0;  // the record mutator doubles as a
                                // single-event-upset source for blobs
    verify::FaultInjector inj(fc);

    auto gen_victim = w.make();
    Machine victim(cfg, {gen_victim.get()});
    unsigned iters = oracle::propertyIterations(16);
    for (unsigned i = 0; i < iters; ++i) {
        std::string bad = blob;
        if (rng.nextBool(0.5)) {
            verify::TraceFault f = inj.mutateTraceRecord(
                reinterpret_cast<unsigned char *>(bad.data()), bad.size());
            ASSERT_EQ(f, verify::TraceFault::Corrupted);
        } else {
            bad = bad.substr(0, rng.nextBounded(bad.size()));
        }
        try {
            victim.resumeFromBlob(bad);
            FAIL() << "damaged blob accepted (iter " << i << ", seed "
                   << seed << ")";
        } catch (const verify::SimError &e) {
            EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint)
                << e.what();
        }
    }
    // Every rejection happened before mutation: the machine still
    // accepts the intact blob.
    victim.resumeFromBlob(blob);
    EXPECT_TRUE(victim.saveCheckpointBlob() == blob);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzz,
                         ::testing::Values(11, 22, 33));

} // namespace berti
