/** @file Parallel runner tests: bit-identical results across thread
 *  counts (serial vs BERTI_JOBS = 1/2/8, with and without the
 *  invariant auditor), typed error propagation out of worker threads,
 *  ordering guarantees, and BERTI_JOBS parsing. */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

/** Scoped BERTI_JOBS override, restored on destruction so tests do not
 *  leak environment into each other. */
class ScopedJobsEnv
{
  public:
    explicit ScopedJobsEnv(const char *value)
    {
        if (const char *old = std::getenv("BERTI_JOBS")) {
            hadOld = true;
            oldValue = old;
        }
        if (value)
            setenv("BERTI_JOBS", value, 1);
        else
            unsetenv("BERTI_JOBS");
    }

    ~ScopedJobsEnv()
    {
        if (hadOld)
            setenv("BERTI_JOBS", oldValue.c_str(), 1);
        else
            unsetenv("BERTI_JOBS");
    }

  private:
    bool hadOld = false;
    std::string oldValue;
};

void
expectSameCache(const CacheStats &a, const CacheStats &b,
                const std::string &where)
{
    EXPECT_EQ(a.demandAccesses, b.demandAccesses) << where;
    EXPECT_EQ(a.demandHits, b.demandHits) << where;
    EXPECT_EQ(a.demandMisses, b.demandMisses) << where;
    EXPECT_EQ(a.demandMshrMerged, b.demandMshrMerged) << where;
    EXPECT_EQ(a.prefetchIssued, b.prefetchIssued) << where;
    EXPECT_EQ(a.prefetchFills, b.prefetchFills) << where;
    EXPECT_EQ(a.prefetchUseful, b.prefetchUseful) << where;
    EXPECT_EQ(a.prefetchUseless, b.prefetchUseless) << where;
    EXPECT_EQ(a.prefetchLate, b.prefetchLate) << where;
    EXPECT_EQ(a.prefetchDroppedFull, b.prefetchDroppedFull) << where;
    EXPECT_EQ(a.prefetchDroppedTlb, b.prefetchDroppedTlb) << where;
    EXPECT_EQ(a.prefetchDroppedPage, b.prefetchDroppedPage) << where;
    EXPECT_EQ(a.writebacks, b.writebacks) << where;
    EXPECT_EQ(a.fills, b.fills) << where;
    EXPECT_EQ(a.requestsBelow, b.requestsBelow) << where;
    EXPECT_EQ(a.fillLatencySum, b.fillLatencySum) << where;
    EXPECT_EQ(a.fillLatencyCount, b.fillLatencyCount) << where;
    EXPECT_EQ(a.tagReads, b.tagReads) << where;
    EXPECT_EQ(a.tagWrites, b.tagWrites) << where;
    EXPECT_EQ(a.dataReads, b.dataReads) << where;
    EXPECT_EQ(a.dataWrites, b.dataWrites) << where;
}

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &where)
{
    EXPECT_EQ(a.roi.core.instructions, b.roi.core.instructions) << where;
    EXPECT_EQ(a.roi.core.cycles, b.roi.core.cycles) << where;
    EXPECT_EQ(a.roi.core.loads, b.roi.core.loads) << where;
    EXPECT_EQ(a.roi.core.stores, b.roi.core.stores) << where;
    EXPECT_EQ(a.roi.core.branches, b.roi.core.branches) << where;
    EXPECT_EQ(a.roi.core.mispredicts, b.roi.core.mispredicts) << where;
    expectSameCache(a.roi.l1i, b.roi.l1i, where + "/l1i");
    expectSameCache(a.roi.l1d, b.roi.l1d, where + "/l1d");
    expectSameCache(a.roi.l2, b.roi.l2, where + "/l2");
    expectSameCache(a.roi.llc, b.roi.llc, where + "/llc");
    EXPECT_EQ(a.roi.dtlb.accesses, b.roi.dtlb.accesses) << where;
    EXPECT_EQ(a.roi.dtlb.misses, b.roi.dtlb.misses) << where;
    EXPECT_EQ(a.roi.stlb.accesses, b.roi.stlb.accesses) << where;
    EXPECT_EQ(a.roi.stlb.misses, b.roi.stlb.misses) << where;
    EXPECT_EQ(a.roi.dram.reads, b.roi.dram.reads) << where;
    EXPECT_EQ(a.roi.dram.writes, b.roi.dram.writes) << where;
    EXPECT_EQ(a.roi.dram.rowHits, b.roi.dram.rowHits) << where;
    EXPECT_EQ(a.roi.dram.rowMisses, b.roi.dram.rowMisses) << where;
    EXPECT_EQ(a.ipc, b.ipc) << where;
    EXPECT_EQ(a.energy.total(), b.energy.total()) << where;
}

std::vector<Workload>
smallSuite()
{
    return {findWorkload("stream-like.1"), findWorkload("gcc-like.2226"),
            findWorkload("mcf-like.1554"),
            findWorkload("deepsjeng-like.1378"),
            findWorkload("bwaves-like.1740")};
}

SimParams
smallParams()
{
    SimParams p;
    p.warmupInstructions = 3000;
    p.measureInstructions = 12000;
    return p;
}

} // namespace

TEST(ParallelSuite, BitIdenticalToSerialAcrossJobCounts)
{
    auto workloads = smallSuite();
    SimParams p = smallParams();
    PrefetcherSpec spec = makeSpec("berti");

    auto serial = runSuite(workloads, spec, p);
    for (unsigned jobs : {1u, 2u, 8u}) {
        auto par = runSuiteParallel(workloads, spec, p, jobs);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            expectSameResult(serial[i], par[i],
                             workloads[i].name + "@jobs=" +
                                 std::to_string(jobs));
        }
    }
}

TEST(ParallelSuite, HonoursBertiJobsEnvironment)
{
    auto workloads = smallSuite();
    SimParams p = smallParams();
    PrefetcherSpec spec = makeSpec("ip-stride");

    auto serial = runSuite(workloads, spec, p);
    ScopedJobsEnv env("2");
    auto par = runSuiteParallel(workloads, spec, p);  // jobs = 0 -> env
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], par[i], workloads[i].name + "@env=2");
}

TEST(ParallelSuite, BitIdenticalUnderInvariantAuditor)
{
    std::vector<Workload> workloads = {findWorkload("stream-like.1"),
                                       findWorkload("gcc-like.2226")};
    SimParams p = smallParams();
    p.forceAudit = true;  // same auditing the BERTI_VERIFY=1 CI runs use
    PrefetcherSpec spec = makeSpec("berti");

    auto serial = runSuite(workloads, spec, p);
    auto par = runSuiteParallel(workloads, spec, p, 4);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], par[i], workloads[i].name + "@audit");
}

TEST(ParallelMatrix, BitIdenticalToSerialAndOrdered)
{
    std::vector<Workload> workloads = {findWorkload("stream-like.1"),
                                       findWorkload("mcf-like.1554"),
                                       findWorkload("gcc-like.2226")};
    SimParams p = smallParams();
    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride"),
                                         makeSpec("berti")};

    auto grid = runMatrixParallel(workloads, specs, p, 4);
    ASSERT_EQ(grid.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
        ASSERT_EQ(grid[s].size(), workloads.size());
        auto serial = runSuite(workloads, specs[s], p);
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            expectSameResult(serial[w], grid[s][w],
                             specs[s].name + "/" + workloads[w].name);
        }
    }
}

TEST(ParallelSuite, ConcurrentSharedGraphBuildIsSafeAndIdentical)
{
    // Four GAP kernels over the same graph: the workers race to build
    // the registry's shared "urand" Csr on first use. Parallel runs
    // first so the build itself happens under contention (TSan covers
    // this test in CI).
    std::vector<Workload> workloads = {
        findWorkload("bfs-urand"), findWorkload("pr-urand"),
        findWorkload("cc-urand"), findWorkload("sssp-urand")};
    SimParams p;
    p.warmupInstructions = 2000;
    p.measureInstructions = 8000;
    PrefetcherSpec spec = makeSpec("ip-stride");

    auto par = runSuiteParallel(workloads, spec, p, 4);
    auto serial = runSuite(workloads, spec, p);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], par[i], workloads[i].name + "@graph");
}

TEST(Parallel, WorkerSimErrorPropagatesTyped)
{
    std::vector<Workload> workloads = {findWorkload("stream-like.1"),
                                       findWorkload("gcc-like.2226")};
    SimParams p = smallParams();

    PrefetcherSpec bad;
    bad.name = "boom";
    bad.l1d = []() -> std::unique_ptr<Prefetcher> {
        throw verify::SimError(verify::ErrorKind::Config, "test-factory",
                               "injected worker failure");
    };
    try {
        runSuiteParallel(workloads, bad, p, 2);
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_EQ(e.component(), "test-factory");
        EXPECT_NE(e.reason().find("injected"), std::string::npos);
    }
}

TEST(Parallel, FirstFailureByInputOrderWins)
{
    // Indices 2 and 5 fail; regardless of which worker finishes first,
    // the caller must see index 2's error.
    try {
        forEachIndexParallel(8, [](std::size_t i) {
            if (i == 2 || i == 5) {
                throw verify::SimError(verify::ErrorKind::Config,
                                       "order-test", std::to_string(i));
            }
        }, 4);
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.reason(), "2");
    }
}

TEST(Parallel, AllIndicesRunExactlyOnce)
{
    std::vector<int> hits(64, 0);
    forEachIndexParallel(hits.size(),
                         [&](std::size_t i) { hits[i] += 1; }, 8);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << i;
}

TEST(Parallel, ProgressIsMonotonicAndComplete)
{
    std::size_t calls = 0, last = 0;
    forEachIndexParallel(
        16, [](std::size_t) {}, 4,
        [&](std::size_t done, std::size_t total) {
            EXPECT_EQ(total, 16u);
            EXPECT_EQ(done, last + 1);  // serialized, strictly increasing
            last = done;
            ++calls;
        });
    EXPECT_EQ(calls, 16u);
    EXPECT_EQ(last, 16u);
}

TEST(Parallel, BadBertiJobsIsTypedConfigError)
{
    for (const char *bad : {"", "0", "-3", "lots", "4x"}) {
        ScopedJobsEnv env(bad);
        try {
            parallelJobCount();
            FAIL() << "expected verify::SimError for \"" << bad << "\"";
        } catch (const verify::SimError &e) {
            EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
            EXPECT_EQ(e.component(), "parallel");
        }
    }
}

TEST(Parallel, ValidBertiJobsIsUsed)
{
    ScopedJobsEnv env("3");
    EXPECT_EQ(parallelJobCount(), 3u);
}

TEST(Parallel, DefaultJobCountIsPositive)
{
    ScopedJobsEnv env(nullptr);
    EXPECT_GE(parallelJobCount(), 1u);
}

} // namespace berti
