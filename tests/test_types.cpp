/** @file Address-arithmetic unit tests for sim/types.hh. */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace berti
{

TEST(Types, LineGeometry)
{
    EXPECT_EQ(kLineSize, 64u);
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 1u);
    EXPECT_EQ(lineAddr(0xFFFF), 0xFFFFull >> 6);
}

TEST(Types, LineToByteRoundTrip)
{
    for (Addr line : {Addr{0}, Addr{1}, Addr{12345}, Addr{1} << 40}) {
        EXPECT_EQ(lineAddr(lineToByte(line)), line);
    }
}

TEST(Types, PageGeometry)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kLinesPerPage, 64u);
    EXPECT_EQ(pageAddr(4095), 0u);
    EXPECT_EQ(pageAddr(4096), 1u);
    EXPECT_EQ(pageOffset(4097), 1u);
}

TEST(Types, SameLineSamePage)
{
    EXPECT_TRUE(sameLine(100, 101));
    EXPECT_FALSE(sameLine(63, 64));
    EXPECT_TRUE(samePage(0, 4095));
    EXPECT_FALSE(samePage(4095, 4096));
}

class TypesParam : public ::testing::TestWithParam<Addr>
{
};

TEST_P(TypesParam, PageContainsItsLines)
{
    Addr addr = GetParam();
    EXPECT_EQ(pageAddr(addr), lineAddr(addr) >> (kPageBits - kLineBits));
    EXPECT_LT(pageOffset(addr), kPageSize);
    // The line base never leaves the page of the address.
    EXPECT_EQ(pageAddr(lineToByte(lineAddr(addr))), pageAddr(addr));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TypesParam,
                         ::testing::Values(0ull, 1ull, 63ull, 64ull,
                                           4095ull, 4096ull, 4097ull,
                                           0xDEADBEEFull, 0x123456789ABull,
                                           ~0ull >> 1));

} // namespace berti
