/** @file DRAM controller tests: row-buffer timing, FR-FCFS, write drain,
 *  bandwidth configuration. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace berti
{

namespace
{

struct Sink : ReadClient
{
    std::vector<std::pair<Cycle, Addr>> done;
    const Cycle *clock = nullptr;

    void
    readDone(const MemRequest &req) override
    {
        done.push_back({*clock, req.pLine});
    }
};

MemRequest
read(Addr p_line, ReadClient *client)
{
    MemRequest r;
    r.pLine = p_line;
    r.type = AccessType::Load;
    r.client = client;
    return r;
}

constexpr Addr kLinesPerRow = 4096 / kLineSize;

} // namespace

struct DramFixture : ::testing::Test
{
    Cycle clock = 0;
    DramConfig cfg;
    Sink sink;

    void SetUp() override { sink.clock = &clock; }

    Cycle
    runOne(Dram &dram, Addr p_line)
    {
        dram.submitRead(read(p_line, &sink));
        std::size_t before = sink.done.size();
        while (sink.done.size() == before) {
            ++clock;
            dram.tick();
        }
        return sink.done.back().first;
    }
};

TEST_F(DramFixture, RowHitFasterThanRowConflict)
{
    Dram dram(cfg, &clock);
    Cycle t0 = clock;
    runOne(dram, 0);               // opens row 0 (cold: row miss)
    Cycle cold = clock - t0;

    t0 = clock;
    runOne(dram, 1);               // same row: hit
    Cycle hit = clock - t0;

    // Another row on the SAME bank: conflict (precharge + activate).
    t0 = clock;
    runOne(dram, cfg.banks * kLinesPerRow);
    Cycle conflict = clock - t0;

    EXPECT_LT(hit, cold);
    EXPECT_GT(conflict, hit + cfg.tRp);
    EXPECT_EQ(dram.stats.rowHits, 1u);
    EXPECT_EQ(dram.stats.rowMisses, 1u);
    EXPECT_EQ(dram.stats.rowConflicts, 1u);
}

TEST_F(DramFixture, ConsecutiveRowsHitDifferentBanks)
{
    Dram dram(cfg, &clock);
    runOne(dram, 0);
    runOne(dram, kLinesPerRow);  // next 4 KB row -> next bank
    EXPECT_EQ(dram.stats.rowConflicts, 0u);
}

TEST_F(DramFixture, FrFcfsPrefersOpenRow)
{
    Dram dram(cfg, &clock);
    runOne(dram, 0);  // open row 0 on bank 0

    // Enqueue: conflict request first, row hit second.
    dram.submitRead(read(cfg.banks * kLinesPerRow, &sink));
    dram.submitRead(read(1, &sink));
    while (sink.done.size() < 3) {
        ++clock;
        dram.tick();
    }
    // The row hit (line 1) must complete before the older conflict.
    EXPECT_EQ(sink.done[1].second, 1u);
}

TEST_F(DramFixture, RowHitsStreamAtBurstRate)
{
    Dram dram(cfg, &clock);
    runOne(dram, 0);
    // 16 row hits back to back.
    for (Addr i = 1; i <= 16; ++i)
        dram.submitRead(read(i, &sink));
    std::size_t first = sink.done.size();
    Cycle start = 0;
    while (sink.done.size() < first + 16) {
        ++clock;
        dram.tick();
        if (sink.done.size() == first + 1 && start == 0)
            start = clock;
    }
    double per_line = static_cast<double>(clock - start) / 15.0;
    EXPECT_LT(per_line, 2.0 * cfg.burstCycles());
}

TEST_F(DramFixture, WritesDrainEventually)
{
    Dram dram(cfg, &clock);
    for (Addr i = 0; i < 70; ++i)
        dram.submitWriteback(i);
    for (int i = 0; i < 20000 && dram.stats.writes < 70; ++i) {
        ++clock;
        dram.tick();
    }
    EXPECT_EQ(dram.stats.writes, 70u);
}

TEST_F(DramFixture, ReadsScheduledBeforePendingWrites)
{
    Dram dram(cfg, &clock);
    // A few writes below the watermark plus one read: the read is
    // *scheduled* first (writes may drain later while the bus idles).
    dram.submitWriteback(1000);
    dram.submitWriteback(2000);
    dram.submitRead(read(0, &sink));
    while (dram.stats.reads == 0) {
        ++clock;
        dram.tick();
    }
    EXPECT_EQ(dram.stats.writes, 0u);
}

TEST_F(DramFixture, RqFullRefuses)
{
    Dram dram(cfg, &clock);
    unsigned accepted = 0;
    for (Addr i = 0; i < 200; ++i)
        accepted += dram.submitRead(read(i * 64, &sink)) ? 1 : 0;
    EXPECT_EQ(accepted, cfg.rqSize);
}

TEST_F(DramFixture, LinkLatencyAddsToEveryRead)
{
    DramConfig fast = cfg;
    fast.linkLatency = 0;
    DramConfig slow = cfg;
    slow.linkLatency = 500;

    Cycle c1 = 0, c2 = 0;
    {
        Cycle local = 0;
        Sink s;
        s.clock = &local;
        Dram d(fast, &local);
        d.submitRead(read(0, &s));
        while (s.done.empty()) {
            ++local;
            d.tick();
        }
        c1 = local;
    }
    {
        Cycle local = 0;
        Sink s;
        s.clock = &local;
        Dram d(slow, &local);
        d.submitRead(read(0, &s));
        while (s.done.empty()) {
            ++local;
            d.tick();
        }
        c2 = local;
    }
    EXPECT_EQ(c2, c1 + 500);
}

class MtpsParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MtpsParam, BurstCyclesMatchTransferRate)
{
    DramConfig cfg;
    cfg.mtps = GetParam();
    // 64 B at mtps MT/s on an 8 B bus, 4 GHz core clock.
    EXPECT_EQ(cfg.burstCycles(), 64ull * 4000 / (8ull * GetParam()));
}

INSTANTIATE_TEST_SUITE_P(DdrGenerations, MtpsParam,
                         ::testing::Values(1600u, 3200u, 6400u));

TEST(DramBandwidth, LowerMtpsIsSlowerUnderLoad)
{
    auto drain = [](unsigned mtps) {
        Cycle clock = 0;
        DramConfig cfg;
        cfg.mtps = mtps;
        Sink sink;
        sink.clock = &clock;
        Dram dram(cfg, &clock);
        Addr sent = 0;
        while (sink.done.size() < 500) {
            while (sent < 2000 && dram.submitRead(read(sent, &sink)))
                ++sent;
            ++clock;
            dram.tick();
        }
        return clock;
    };
    EXPECT_GT(drain(1600), drain(6400));
}

} // namespace berti
