/** @file Replacement-policy unit tests. */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

namespace berti
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w, false);
    lru.onHit(0, 0);  // way 1 is now LRU
    EXPECT_EQ(lru.victim(0), 1u);
    lru.onHit(0, 1);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.onFill(0, 0, false);
    lru.onFill(0, 1, false);
    lru.onFill(1, 1, false);
    lru.onFill(1, 0, false);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(Fifo, IgnoresHits)
{
    FifoPolicy fifo(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        fifo.onFill(0, w, false);
    fifo.onHit(0, 0);
    fifo.onHit(0, 0);
    EXPECT_EQ(fifo.victim(0), 0u);  // oldest fill despite hits
}

TEST(Fifo, RefillMovesToBack)
{
    FifoPolicy fifo(1, 3);
    fifo.onFill(0, 0, false);
    fifo.onFill(0, 1, false);
    fifo.onFill(0, 2, false);
    fifo.onFill(0, 0, false);  // way 0 refilled: now youngest
    EXPECT_EQ(fifo.victim(0), 1u);
}

TEST(Srrip, HitPromotesToNearImminent)
{
    SrripPolicy srrip(1, 2);
    srrip.onFill(0, 0, false);
    srrip.onFill(0, 1, false);
    srrip.onHit(0, 0);
    // Way 1 still has RRPV 2, way 0 has 0: way 1 ages out first.
    EXPECT_EQ(srrip.victim(0), 1u);
}

TEST(Srrip, VictimAlwaysFound)
{
    SrripPolicy srrip(1, 4);
    for (unsigned w = 0; w < 4; ++w) {
        srrip.onFill(0, w, false);
        srrip.onHit(0, w);  // everything at RRPV 0
    }
    unsigned v = srrip.victim(0);  // must age and terminate
    EXPECT_LT(v, 4u);
}

TEST(Drrip, BehavesAsValidPolicy)
{
    DrripPolicy drrip(64, 4);
    for (unsigned s = 0; s < 64; ++s) {
        for (unsigned w = 0; w < 4; ++w)
            drrip.onFill(s, w, false);
        EXPECT_LT(drrip.victim(s), 4u);
    }
}

TEST(Factory, CreatesEveryKind)
{
    for (ReplKind k : {ReplKind::Lru, ReplKind::Fifo, ReplKind::Srrip,
                       ReplKind::Drrip}) {
        auto p = makeReplPolicy(k, 8, 4);
        ASSERT_NE(p, nullptr);
        p->onFill(0, 0, false);
        EXPECT_LT(p->victim(0), 4u);
        EXPECT_FALSE(p->name().empty());
    }
}

struct PolicyParam
{
    ReplKind kind;
    unsigned sets;
    unsigned ways;
};

class PolicySweep : public ::testing::TestWithParam<PolicyParam>
{
};

TEST_P(PolicySweep, VictimAlwaysInRange)
{
    auto [kind, sets, ways] = GetParam();
    auto p = makeReplPolicy(kind, sets, ways);
    // Churn: fills and hits in a pseudo-random pattern.
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        unsigned set = static_cast<unsigned>(x % sets);
        unsigned way = static_cast<unsigned>((x >> 20) % ways);
        if (x & 1)
            p->onFill(set, way, (x & 2) != 0);
        else
            p->onHit(set, way);
        ASSERT_LT(p->victim(set), ways);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(PolicyParam{ReplKind::Lru, 64, 12},
                      PolicyParam{ReplKind::Fifo, 8, 16},
                      PolicyParam{ReplKind::Srrip, 1024, 8},
                      PolicyParam{ReplKind::Drrip, 2048, 16},
                      PolicyParam{ReplKind::Drrip, 16, 4},
                      PolicyParam{ReplKind::Lru, 1, 1}));

} // namespace berti
