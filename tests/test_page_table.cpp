/** @file Page-table permutation tests. */

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "vm/page_table.hh"

namespace berti
{

TEST(PageTable, Deterministic)
{
    PageTable a(123), b(123);
    for (Addr v = 0; v < 1000; ++v)
        EXPECT_EQ(a.translatePage(v), b.translatePage(v));
}

TEST(PageTable, SeedChangesMapping)
{
    PageTable a(1), b(2);
    int differ = 0;
    for (Addr v = 0; v < 100; ++v)
        differ += a.translatePage(v) != b.translatePage(v);
    EXPECT_GT(differ, 90);
}

TEST(PageTable, BijectiveOnSample)
{
    // A Feistel network is a permutation: no two vpages may collide.
    PageTable pt(77);
    std::unordered_set<Addr> seen;
    for (Addr v = 0; v < 200000; ++v)
        EXPECT_TRUE(seen.insert(pt.translatePage(v)).second) << v;
}

TEST(PageTable, OffsetPreserved)
{
    PageTable pt(5);
    for (Addr addr : {Addr{0x1234}, Addr{0xABCDE}, Addr{0x7FFF123}}) {
        EXPECT_EQ(pageOffset(pt.translate(addr)), pageOffset(addr));
    }
}

TEST(PageTable, SamePageStaysTogether)
{
    PageTable pt(5);
    Addr base = 0x12345000;
    Addr page = pageAddr(pt.translate(base));
    for (Addr off = 0; off < kPageSize; off += 64)
        EXPECT_EQ(pageAddr(pt.translate(base + off)), page);
}

TEST(PageTable, ScattersConsecutivePages)
{
    // Consecutive virtual pages should not map to consecutive physical
    // pages (that would under-model row-buffer conflicts).
    PageTable pt(5);
    int consecutive = 0;
    for (Addr v = 0; v < 1000; ++v) {
        Addr p0 = pt.translatePage(v);
        Addr p1 = pt.translatePage(v + 1);
        if (p1 == p0 + 1)
            ++consecutive;
    }
    EXPECT_LT(consecutive, 10);
}

} // namespace berti
