/** @file Energy-model tests. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace berti
{

TEST(Energy, ZeroStatsZeroEnergy)
{
    EnergyModel model;
    RunStats s;
    EXPECT_DOUBLE_EQ(model.evaluate(s).total(), 0.0);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyModel model;
    RunStats s;
    s.l1d.dataReads = 1000;
    s.l2.dataReads = 100;
    s.llc.dataReads = 10;
    s.dram.reads = 5;
    EnergyBreakdown e = model.evaluate(s);
    EXPECT_DOUBLE_EQ(e.total(), e.l1 + e.l2 + e.llc + e.dram);
    EXPECT_GT(e.l1, 0.0);
    EXPECT_GT(e.dram, 0.0);
}

TEST(Energy, DramDominatesPerAccess)
{
    EnergyModel model;
    RunStats a, b;
    a.l1d.dataReads = 1;
    b.dram.reads = 1;
    EXPECT_GT(model.evaluate(b).total(), 100 * model.evaluate(a).total());
}

TEST(Energy, MonotoneInAccessCounts)
{
    EnergyModel model;
    RunStats s;
    s.l2.dataWrites = 50;
    double e1 = model.evaluate(s).total();
    s.l2.dataWrites = 100;
    double e2 = model.evaluate(s).total();
    EXPECT_GT(e2, e1);
}

TEST(Energy, CustomParamsRespected)
{
    EnergyParams p;
    p.dramRead = 1.0;
    EnergyModel cheap(p);
    EnergyModel expensive;  // default ~15 nJ per read
    RunStats s;
    s.dram.reads = 100;
    EXPECT_LT(cheap.evaluate(s).total(), expensive.evaluate(s).total());
}

TEST(Energy, LevelsOrderedByCost)
{
    // Per-access cost must grow down the hierarchy (bigger arrays).
    EnergyModel model;
    RunStats l1, l2, llc;
    l1.l1d.dataReads = 1;
    l2.l2.dataReads = 1;
    llc.llc.dataReads = 1;
    EXPECT_LT(model.evaluate(l1).total(), model.evaluate(l2).total());
    EXPECT_LT(model.evaluate(l2).total(), model.evaluate(llc).total());
}

} // namespace berti
