/** @file Hardening-layer tests: SimError/Result semantics, env-driven
 *  audit configuration, always-on config validation, the invariant
 *  auditor (healthy runs pass, a leaked MSHR is caught), the
 *  forward-progress watchdog, fault-injector determinism, and Berti's
 *  counter self-consistency under injected latency variance. */

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "mem/cache.hh"
#include "trace/generators.hh"
#include "verify/auditor.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"
#include "verify/watchdog.hh"
#include "test_util.hh"

namespace berti
{

using test::TestMemory;
using verify::AuditConfig;
using verify::ErrorKind;
using verify::FaultConfig;
using verify::FaultInjector;
using verify::ProgressWatchdog;
using verify::Result;
using verify::SimAuditor;
using verify::SimError;
using verify::WatchdogConfig;

// --------------------------------------------------------------- errors

TEST(SimErrorTest, CarriesStructuredFields)
{
    SimError e(ErrorKind::TraceIo, "loadTrace", "truncated record",
               "/tmp/x.trace", 49, "dump");
    EXPECT_EQ(e.kind(), ErrorKind::TraceIo);
    EXPECT_EQ(e.component(), "loadTrace");
    EXPECT_EQ(e.reason(), "truncated record");
    EXPECT_EQ(e.path(), "/tmp/x.trace");
    EXPECT_EQ(e.offset(), 49u);
    EXPECT_EQ(e.diagnostic(), "dump");

    // what() is self-describing: kind, component, reason, location.
    std::string what = e.what();
    EXPECT_NE(what.find("trace-io"), std::string::npos);
    EXPECT_NE(what.find("loadTrace"), std::string::npos);
    EXPECT_NE(what.find("truncated record"), std::string::npos);
    EXPECT_NE(what.find("/tmp/x.trace"), std::string::npos);
    EXPECT_NE(what.find("49"), std::string::npos);
}

TEST(SimErrorTest, KindNamesAreStable)
{
    EXPECT_STREQ(verify::errorKindName(ErrorKind::Config), "config");
    EXPECT_STREQ(verify::errorKindName(ErrorKind::TraceIo), "trace-io");
    EXPECT_STREQ(verify::errorKindName(ErrorKind::Invariant),
                 "invariant");
    EXPECT_STREQ(verify::errorKindName(ErrorKind::Watchdog), "watchdog");
    EXPECT_STREQ(verify::errorKindName(ErrorKind::Fault), "fault");
}

TEST(ResultTest, ValueAndErrorPaths)
{
    Result<int> good(7);
    EXPECT_TRUE(good.ok());
    EXPECT_TRUE(static_cast<bool>(good));
    EXPECT_EQ(good.value(), 7);
    EXPECT_EQ(good.valueOr(0), 7);

    Result<int> bad(SimError(ErrorKind::Config, "test", "nope"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().kind(), ErrorKind::Config);
    EXPECT_EQ(bad.valueOr(42), 42);

    // value() on an error re-throws the *typed* stored error.
    try {
        (void)bad.value();
        FAIL() << "value() on an error Result must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_EQ(e.reason(), "nope");
    }
}

// ------------------------------------------------- env-driven enabling

class AuditEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saveVerify = getSaved("BERTI_VERIFY", hadVerify);
        saveInterval = getSaved("BERTI_VERIFY_INTERVAL", hadInterval);
    }

    void
    TearDown() override
    {
        restore("BERTI_VERIFY", hadVerify, saveVerify);
        restore("BERTI_VERIFY_INTERVAL", hadInterval, saveInterval);
    }

  private:
    static std::string
    getSaved(const char *name, bool &had)
    {
        const char *v = std::getenv(name);
        had = v != nullptr;
        return had ? v : "";
    }

    static void
    restore(const char *name, bool had, const std::string &value)
    {
        if (had)
            setenv(name, value.c_str(), 1);
        else
            unsetenv(name);
    }

    std::string saveVerify, saveInterval;
    bool hadVerify = false, hadInterval = false;
};

TEST_F(AuditEnvTest, FromEnvHonoursVerifyFlag)
{
    unsetenv("BERTI_VERIFY");
    unsetenv("BERTI_VERIFY_INTERVAL");
    EXPECT_FALSE(AuditConfig::fromEnv().enabled);

    setenv("BERTI_VERIFY", "0", 1);
    EXPECT_FALSE(AuditConfig::fromEnv().enabled);

    setenv("BERTI_VERIFY", "1", 1);
    EXPECT_TRUE(AuditConfig::fromEnv().enabled);

    setenv("BERTI_VERIFY_INTERVAL", "123", 1);
    AuditConfig cfg = AuditConfig::fromEnv();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.interval, 123u);
}

// ------------------------------------------- always-on config checking

TEST(ConfigValidationTest, CacheRejectsDegenerateGeometry)
{
    Cycle clock = 0;
    CacheConfig cfg;
    cfg.ways = 0;
    try {
        Cache cache(cfg, &clock);
        FAIL() << "zero-way cache must be rejected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
    }

    cfg = CacheConfig{};
    cfg.mshrs = 0;
    EXPECT_THROW(Cache(cfg, &clock), SimError);
    cfg = CacheConfig{};
    cfg.sets = 0;
    EXPECT_THROW(Cache(cfg, &clock), SimError);
}

TEST(ConfigValidationTest, MachineRejectsGeneratorMismatch)
{
    StreamGen::Params p;
    StreamGen gen(p);
    MachineConfig cfg = MachineConfig::sunnyCove(2);
    try {
        Machine m(cfg, {&gen});  // 2 cores, 1 generator
        FAIL() << "generator/core mismatch must be rejected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(e.reason().find("generator"), std::string::npos);
    }

    EXPECT_THROW(Machine(cfg, {&gen, nullptr}), SimError);
}

TEST(ConfigValidationTest, L1dPrefetchWithoutTlbIsTypedNotAssert)
{
    // The old code had `assert(translation && ...)` here — invisible in
    // release builds, UB beyond it. Now it is an always-on typed error.
    Cycle clock = 0;
    CacheConfig cfg;
    cfg.isL1d = true;
    Cache cache(cfg, &clock);
    TestMemory mem(&clock, 40);
    cache.setLower(&mem);
    try {
        cache.issuePrefetch(0x1000, FillLevel::L1);
        FAIL() << "L1D prefetch without a TLB must be a typed error";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(e.reason().find("TLB"), std::string::npos);
    }
}

// ------------------------------------------------------------- auditor

TEST(AuditorTest, HealthyMachinePassesAllChecks)
{
    StreamGen::Params p;
    StreamGen gen(p);
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    cfg.audit.enabled = true;
    cfg.audit.interval = 512;
    Machine m(cfg, {&gen});
    m.run(20000);
    ASSERT_NE(m.auditor(), nullptr);
    EXPECT_GT(m.auditor()->checksRun(), 10u);
    m.auditor()->checkNow();  // quiescent state must also pass
}

TEST(AuditorTest, DisabledByDefaultWithoutEnv)
{
    StreamGen::Params p;
    StreamGen gen(p);
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.audit.enabled = false;
    Machine m(cfg, {&gen});
    EXPECT_EQ(m.auditor(), nullptr);
}

TEST(AuditorTest, LeakedMshrIsAnInvariantViolation)
{
    // A demand miss whose response never arrives: the MSHR entry ages
    // past the leak threshold and the auditor must flag it — this is
    // exactly the bookkeeping Berti's latency measurement depends on.
    Cycle clock = 0;
    CacheConfig cfg;
    cfg.name = "l1d-under-test";
    Cache cache(cfg, &clock);
    TestMemory mem(&clock, 40);
    cache.setLower(&mem);

    struct : ReadClient
    {
        void readDone(const MemRequest &) override {}
    } client;

    MemRequest req;
    req.pLine = 0x40;
    req.vLine = 0x40;
    req.ip = 0x400000;
    req.type = AccessType::Load;
    req.client = &client;
    ASSERT_TRUE(cache.submitRead(req));
    for (int i = 0; i < 8; ++i) {
        ++clock;
        cache.tick();  // never ticking mem: the response is swallowed
    }
    ASSERT_EQ(cache.mshrsInUse(), 1u);

    AuditConfig acfg;
    acfg.enabled = true;
    acfg.mshrLeakCycles = 1000;
    SimAuditor auditor(acfg, &clock);
    auditor.attach(&cache);

    auditor.checkNow();  // young entry: fine
    clock += 2000;       // now far beyond the leak threshold
    try {
        auditor.checkNow();
        FAIL() << "a leaked MSHR must fail the audit";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Invariant);
        EXPECT_EQ(e.component(), "l1d-under-test");
        EXPECT_NE(e.reason().find("MSHR"), std::string::npos);
    }
}

// ------------------------------------------------------------ watchdog

TEST(WatchdogTest, RetirementAndHeadChangesCountAsProgress)
{
    Cycle clock = 0;
    WatchdogConfig cfg;
    cfg.stallCycles = 100;
    ProgressWatchdog wd(cfg, &clock);
    wd.reset(1);

    // Steady retirement: never stalled.
    for (std::uint64_t i = 0; i < 500; ++i) {
        ++clock;
        wd.observe(0, i, 1000 + i);
    }
    EXPECT_EQ(wd.stalledCore(), -1);

    // Frozen retired count + frozen ROB head: stalls after threshold.
    for (int i = 0; i < 99; ++i) {
        ++clock;
        wd.observe(0, 500, 77);
    }
    EXPECT_EQ(wd.stalledCore(), -1);  // at the threshold, not beyond
    for (int i = 0; i < 5; ++i) {
        ++clock;
        wd.observe(0, 500, 77);
    }
    EXPECT_EQ(wd.stalledCore(), 0);
    EXPECT_GT(wd.stalledFor(0), cfg.stallCycles);

    // A head-id change alone (no retirement — e.g. a flush) is progress.
    wd.observe(0, 500, 78);
    EXPECT_EQ(wd.stalledCore(), -1);
}

TEST(WatchdogTest, DisabledWatchdogNeverFires)
{
    Cycle clock = 0;
    WatchdogConfig cfg;
    cfg.enabled = false;
    cfg.stallCycles = 10;
    ProgressWatchdog wd(cfg, &clock);
    wd.reset(1);
    for (int i = 0; i < 1000; ++i) {
        ++clock;
        wd.observe(0, 0, 0);
    }
    EXPECT_EQ(wd.stalledCore(), -1);
}

// ------------------------------------------------------ fault injector

TEST(FaultInjectorTest, QuietWhenAllRatesAreZero)
{
    FaultInjector inj;  // default config: every rate 0
    unsigned char rec[33] = {};
    unsigned char before[33] = {};
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(inj.mutateTraceRecord(rec, sizeof(rec)),
                  verify::TraceFault::None);
        EXPECT_FALSE(inj.loseDramRead());
        EXPECT_FALSE(inj.dropPrefetchFill());
    }
    MemRequest req;
    req.type = AccessType::Load;
    EXPECT_EQ(inj.extraDramLatency(req), 0u);
    EXPECT_EQ(std::memcmp(rec, before, sizeof(rec)), 0);
    EXPECT_EQ(inj.stats().traceBitFlips, 0u);
    EXPECT_EQ(inj.stats().dramSpikes, 0u);
}

TEST(FaultInjectorTest, DeterministicFromSeed)
{
    FaultConfig fc;
    fc.seed = 31337;
    fc.traceBitFlipRate = 0.5;
    fc.dramSpikeRate = 0.5;
    fc.dramSpikeCycles = 100;
    FaultInjector a(fc), b(fc);

    MemRequest req;
    req.type = AccessType::Load;
    for (int i = 0; i < 500; ++i) {
        unsigned char ra[33] = {}, rb[33] = {};
        a.mutateTraceRecord(ra, sizeof(ra));
        b.mutateTraceRecord(rb, sizeof(rb));
        EXPECT_EQ(std::memcmp(ra, rb, sizeof(ra)), 0);
        EXPECT_EQ(a.extraDramLatency(req), b.extraDramLatency(req));
    }
    EXPECT_EQ(a.stats().traceBitFlips, b.stats().traceBitFlips);
    EXPECT_EQ(a.stats().dramSpikes, b.stats().dramSpikes);
    EXPECT_GT(a.stats().traceBitFlips, 100u);
    EXPECT_GT(a.stats().dramSpikes, 100u);
}

TEST(FaultInjectorTest, SpikesHitTheConfiguredLatency)
{
    FaultConfig fc;
    fc.dramSpikeRate = 1.0;
    fc.dramSpikeCycles = 321;
    FaultInjector inj(fc);
    MemRequest req;
    req.type = AccessType::Load;
    EXPECT_EQ(inj.extraDramLatency(req), 321u);
    EXPECT_EQ(inj.stats().dramSpikes, 1u);
}

// --------------------------------- Berti under injected fault pressure

namespace
{

RunStats
runBertiUnderFaults(FaultInjector &inj)
{
    StreamGen::Params p;
    StreamGen gen(p);
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    cfg.audit.enabled = true;
    cfg.audit.interval = 2048;
    cfg.faults = &inj;
    Machine m(cfg, {&gen});
    m.run(40000);
    return m.liveStats(0);
}

FaultConfig
noisyDramConfig()
{
    FaultConfig fc;
    fc.seed = 4242;
    fc.dramSpikeRate = 0.25;
    fc.dramSpikeCycles = 150;
    fc.dropPrefetchFillRate = 0.25;
    fc.delayPrefetchFillRate = 0.25;
    fc.prefetchDelayCycles = 60;
    return fc;
}

} // namespace

TEST(BertiUnderFaultsTest, CountersStaySelfConsistent)
{
    // Latency spikes, delayed fills and dropped fills attack exactly
    // the signal Berti learns from (measured fetch latency). The run
    // must complete with the auditor on, and the accuracy/coverage
    // counter algebra must survive the injected variance.
    FaultInjector inj(noisyDramConfig());
    RunStats s = runBertiUnderFaults(inj);

    EXPECT_GE(s.core.instructions, 40000u);
    EXPECT_EQ(s.l1d.demandAccesses,
              s.l1d.demandHits + s.l1d.demandMisses +
                  s.l1d.demandMshrMerged);
    // Every fill is later classified useful or useless (or is still
    // resident); classifications can never exceed fills.
    EXPECT_LE(s.l1d.prefetchUseful + s.l1d.prefetchUseless,
              s.l1d.prefetchFills);
    // Dropped fills mean installs can only trail issues.
    EXPECT_LE(s.l1d.prefetchFills, s.l1d.prefetchIssued);
    EXPECT_GT(s.l1d.prefetchIssued, 0u);

    // The campaign actually fired.
    EXPECT_GT(inj.stats().dramSpikes, 0u);
    EXPECT_GT(inj.stats().droppedPrefetchFills, 0u);
}

TEST(BertiUnderFaultsTest, FaultCampaignsAreReproducible)
{
    FaultInjector a(noisyDramConfig());
    RunStats s1 = runBertiUnderFaults(a);
    FaultInjector b(noisyDramConfig());
    RunStats s2 = runBertiUnderFaults(b);

    EXPECT_EQ(s1.core.cycles, s2.core.cycles);
    EXPECT_EQ(s1.core.instructions, s2.core.instructions);
    EXPECT_EQ(s1.l1d.prefetchIssued, s2.l1d.prefetchIssued);
    EXPECT_EQ(s1.l1d.prefetchFills, s2.l1d.prefetchFills);
    EXPECT_EQ(s1.l1d.demandMisses, s2.l1d.demandMisses);
    EXPECT_EQ(a.stats().dramSpikes, b.stats().dramSpikes);
    EXPECT_EQ(a.stats().droppedPrefetchFills,
              b.stats().droppedPrefetchFills);
}

TEST(BertiUnderFaultsTest, ExperimentHarnessThreadsFaultsAndAudit)
{
    FaultInjector inj(noisyDramConfig());
    SimParams params;
    params.warmupInstructions = 5000;
    params.measureInstructions = 20000;
    params.forceAudit = true;
    params.faults = &inj;
    SimResult r =
        simulate(findWorkload("stream-like.1"), makeSpec("berti"), params);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GE(r.roi.core.instructions, 20000u);
    EXPECT_GT(inj.stats().dramSpikes, 0u);
}

} // namespace berti
