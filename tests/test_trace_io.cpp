/** @file Binary trace file round-trip tests plus the typed-error
 *  contract of loadTrace: every malformed input yields a SimError with
 *  kind/path/offset/reason populated — never a crash and never a silent
 *  empty trace. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "trace/generators.hh"
#include "trace/trace_io.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/berti_" + tag +
           ".trace";
}

long
sizeOf(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
}

} // namespace

TEST(TraceIo, RoundTripPreservesEveryField)
{
    std::vector<TraceInstr> instrs;
    TraceInstr a;
    a.ip = 0x400010;
    a.load0 = 0x10000040;
    a.load1 = 0x10000080;
    instrs.push_back(a);
    TraceInstr b;
    b.ip = 0x400014;
    b.store = 0x20000000;
    b.isBranch = true;
    b.taken = true;
    instrs.push_back(b);
    TraceInstr c;
    c.ip = 0x400018;
    c.load0 = 0x30000000;
    c.dependsOnPrevLoad = true;
    instrs.push_back(c);

    std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveTrace(path, instrs));
    auto result = loadTrace(path);
    ASSERT_TRUE(result.ok());
    const auto &loaded = result.value();
    ASSERT_EQ(loaded.size(), instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        EXPECT_EQ(loaded[i].ip, instrs[i].ip);
        EXPECT_EQ(loaded[i].load0, instrs[i].load0);
        EXPECT_EQ(loaded[i].load1, instrs[i].load1);
        EXPECT_EQ(loaded[i].store, instrs[i].store);
        EXPECT_EQ(loaded[i].isBranch, instrs[i].isBranch);
        EXPECT_EQ(loaded[i].taken, instrs[i].taken);
        EXPECT_EQ(loaded[i].dependsOnPrevLoad,
                  instrs[i].dependsOnPrevLoad);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RecordsGeneratorOutput)
{
    StreamGen::Params p;
    StreamGen gen(p);
    std::string path = tempPath("gen");
    ASSERT_TRUE(saveTrace(path, gen, 5000));

    // Replaying matches a fresh generator instance exactly.
    FileReplayGen replay(path);
    EXPECT_EQ(replay.traceLength(), 5000u);
    StreamGen fresh(p);
    for (int i = 0; i < 5000; ++i) {
        TraceInstr a = replay.next();
        TraceInstr b = fresh.next();
        ASSERT_EQ(a.ip, b.ip);
        ASSERT_EQ(a.load0, b.load0);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayWrapsAround)
{
    std::vector<TraceInstr> instrs(3);
    instrs[0].ip = 1;
    instrs[1].ip = 2;
    instrs[2].ip = 3;
    std::string path = tempPath("wrap");
    ASSERT_TRUE(saveTrace(path, instrs));
    FileReplayGen replay(path);
    EXPECT_EQ(replay.next().ip, 1u);
    EXPECT_EQ(replay.next().ip, 2u);
    EXPECT_EQ(replay.next().ip, 3u);
    EXPECT_EQ(replay.next().ip, 1u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileYieldsTypedError)
{
    auto result = loadTrace("/nonexistent/nowhere.trace");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().path(), "/nonexistent/nowhere.trace");
    EXPECT_EQ(result.error().offset(), 0u);
    EXPECT_NE(result.error().reason().find("cannot open"),
              std::string::npos);

    // FileReplayGen surfaces the same typed error instead of a generic
    // runtime_error.
    EXPECT_THROW(FileReplayGen("/nonexistent/nowhere.trace"),
                 verify::SimError);
}

TEST(TraceIo, ResultValueRethrowsTheStoredError)
{
    auto result = loadTrace("/nonexistent/nowhere.trace");
    ASSERT_FALSE(result.ok());
    try {
        (void)result.value();
        FAIL() << "value() on an error Result must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_EQ(e.path(), "/nonexistent/nowhere.trace");
    }
}

TEST(TraceIo, BadMagicRejected)
{
    std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE___", f);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().offset(), 0u);
    EXPECT_NE(result.error().reason().find("magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedHeaderRejected)
{
    // Shorter than the 8-byte magic.
    std::string path = tempPath("nohdr");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BER", f);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason().find("truncated header"),
              std::string::npos);

    // Valid magic but the record count is missing.
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BERTITR1", f);
    std::fclose(f);
    result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().offset(), 8u);
    EXPECT_NE(result.error().reason().find("record count"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, HostileRecordCountRejectedBeforeAllocation)
{
    // Two real records but a header claiming ~2^60: the loader must
    // reject the count against the file size, not trust it.
    std::vector<TraceInstr> instrs(2);
    std::string path = tempPath("hostilecount");
    ASSERT_TRUE(saveTrace(path, instrs));
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::uint64_t bogus = 1ull << 60;
    std::fseek(f, 8, SEEK_SET);
    ASSERT_EQ(std::fwrite(&bogus, 8, 1, f), 1u);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().offset(), 8u);
    EXPECT_NE(result.error().reason().find("exceeds file capacity"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordReportsItsOffset)
{
    std::vector<TraceInstr> instrs(10);
    std::string path = tempPath("trunc");
    ASSERT_TRUE(saveTrace(path, instrs));
    // Chop the last record in half. The count-vs-size defence fires
    // first (the declared 10 records no longer fit), which is the
    // correct diagnosis for a chopped file.
    ASSERT_EQ(0, truncate(path.c_str(), sizeOf(path) - 10));
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().path(), path);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRejectedByReplay)
{
    // Zero records is a *valid* file for loadTrace but useless for
    // replay: FileReplayGen must refuse it loudly.
    std::vector<TraceInstr> none;
    std::string path = tempPath("empty");
    ASSERT_TRUE(saveTrace(path, none));
    auto result = loadTrace(path);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().empty());
    try {
        FileReplayGen replay(path);
        FAIL() << "empty trace must not replay";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_NE(e.reason().find("no instructions"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

} // namespace berti
