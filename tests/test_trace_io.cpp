/** @file Binary trace file round-trip tests. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "trace/generators.hh"
#include "trace/trace_io.hh"

namespace berti
{

namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/berti_" + tag +
           ".trace";
}

} // namespace

TEST(TraceIo, RoundTripPreservesEveryField)
{
    std::vector<TraceInstr> instrs;
    TraceInstr a;
    a.ip = 0x400010;
    a.load0 = 0x10000040;
    a.load1 = 0x10000080;
    instrs.push_back(a);
    TraceInstr b;
    b.ip = 0x400014;
    b.store = 0x20000000;
    b.isBranch = true;
    b.taken = true;
    instrs.push_back(b);
    TraceInstr c;
    c.ip = 0x400018;
    c.load0 = 0x30000000;
    c.dependsOnPrevLoad = true;
    instrs.push_back(c);

    std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveTrace(path, instrs));
    auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        EXPECT_EQ(loaded[i].ip, instrs[i].ip);
        EXPECT_EQ(loaded[i].load0, instrs[i].load0);
        EXPECT_EQ(loaded[i].load1, instrs[i].load1);
        EXPECT_EQ(loaded[i].store, instrs[i].store);
        EXPECT_EQ(loaded[i].isBranch, instrs[i].isBranch);
        EXPECT_EQ(loaded[i].taken, instrs[i].taken);
        EXPECT_EQ(loaded[i].dependsOnPrevLoad,
                  instrs[i].dependsOnPrevLoad);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RecordsGeneratorOutput)
{
    StreamGen::Params p;
    StreamGen gen(p);
    std::string path = tempPath("gen");
    ASSERT_TRUE(saveTrace(path, gen, 5000));

    // Replaying matches a fresh generator instance exactly.
    FileReplayGen replay(path);
    EXPECT_EQ(replay.traceLength(), 5000u);
    StreamGen fresh(p);
    for (int i = 0; i < 5000; ++i) {
        TraceInstr a = replay.next();
        TraceInstr b = fresh.next();
        ASSERT_EQ(a.ip, b.ip);
        ASSERT_EQ(a.load0, b.load0);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayWrapsAround)
{
    std::vector<TraceInstr> instrs(3);
    instrs[0].ip = 1;
    instrs[1].ip = 2;
    instrs[2].ip = 3;
    std::string path = tempPath("wrap");
    ASSERT_TRUE(saveTrace(path, instrs));
    FileReplayGen replay(path);
    EXPECT_EQ(replay.next().ip, 1u);
    EXPECT_EQ(replay.next().ip, 2u);
    EXPECT_EQ(replay.next().ip, 3u);
    EXPECT_EQ(replay.next().ip, 1u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileHandledGracefully)
{
    EXPECT_TRUE(loadTrace("/nonexistent/nowhere.trace").empty());
    EXPECT_THROW(FileReplayGen("/nonexistent/nowhere.trace"),
                 std::runtime_error);
}

TEST(TraceIo, BadMagicRejected)
{
    std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE___", f);
    std::fclose(f);
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileRejected)
{
    std::vector<TraceInstr> instrs(10);
    std::string path = tempPath("trunc");
    ASSERT_TRUE(saveTrace(path, instrs));
    // Chop the last record in half.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size - 10));
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

} // namespace berti
