/** @file Binary trace file round-trip tests plus the typed-error
 *  contract of loadTrace: every malformed input yields a SimError with
 *  kind/path/offset/reason populated — never a crash and never a silent
 *  empty trace. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "sim/rng.hh"
#include "trace/generators.hh"
#include "trace/trace_io.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/berti_" + tag +
           ".trace";
}

long
sizeOf(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
}

} // namespace

TEST(TraceIo, RoundTripPreservesEveryField)
{
    std::vector<TraceInstr> instrs;
    TraceInstr a;
    a.ip = 0x400010;
    a.load0 = 0x10000040;
    a.load1 = 0x10000080;
    instrs.push_back(a);
    TraceInstr b;
    b.ip = 0x400014;
    b.store = 0x20000000;
    b.isBranch = true;
    b.taken = true;
    instrs.push_back(b);
    TraceInstr c;
    c.ip = 0x400018;
    c.load0 = 0x30000000;
    c.dependsOnPrevLoad = true;
    instrs.push_back(c);

    std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveTrace(path, instrs));
    auto result = loadTrace(path);
    ASSERT_TRUE(result.ok());
    const auto &loaded = result.value();
    ASSERT_EQ(loaded.size(), instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        EXPECT_EQ(loaded[i].ip, instrs[i].ip);
        EXPECT_EQ(loaded[i].load0, instrs[i].load0);
        EXPECT_EQ(loaded[i].load1, instrs[i].load1);
        EXPECT_EQ(loaded[i].store, instrs[i].store);
        EXPECT_EQ(loaded[i].isBranch, instrs[i].isBranch);
        EXPECT_EQ(loaded[i].taken, instrs[i].taken);
        EXPECT_EQ(loaded[i].dependsOnPrevLoad,
                  instrs[i].dependsOnPrevLoad);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RecordsGeneratorOutput)
{
    StreamGen::Params p;
    StreamGen gen(p);
    std::string path = tempPath("gen");
    ASSERT_TRUE(saveTrace(path, gen, 5000));

    // Replaying matches a fresh generator instance exactly.
    FileReplayGen replay(path);
    EXPECT_EQ(replay.traceLength(), 5000u);
    StreamGen fresh(p);
    for (int i = 0; i < 5000; ++i) {
        TraceInstr a = replay.next();
        TraceInstr b = fresh.next();
        ASSERT_EQ(a.ip, b.ip);
        ASSERT_EQ(a.load0, b.load0);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayWrapsAround)
{
    std::vector<TraceInstr> instrs(3);
    instrs[0].ip = 1;
    instrs[1].ip = 2;
    instrs[2].ip = 3;
    std::string path = tempPath("wrap");
    ASSERT_TRUE(saveTrace(path, instrs));
    FileReplayGen replay(path);
    EXPECT_EQ(replay.next().ip, 1u);
    EXPECT_EQ(replay.next().ip, 2u);
    EXPECT_EQ(replay.next().ip, 3u);
    EXPECT_EQ(replay.next().ip, 1u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileYieldsTypedError)
{
    auto result = loadTrace("/nonexistent/nowhere.trace");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().path(), "/nonexistent/nowhere.trace");
    EXPECT_EQ(result.error().offset(), 0u);
    EXPECT_NE(result.error().reason().find("cannot open"),
              std::string::npos);

    // FileReplayGen surfaces the same typed error instead of a generic
    // runtime_error.
    EXPECT_THROW(FileReplayGen("/nonexistent/nowhere.trace"),
                 verify::SimError);
}

TEST(TraceIo, ResultValueRethrowsTheStoredError)
{
    auto result = loadTrace("/nonexistent/nowhere.trace");
    ASSERT_FALSE(result.ok());
    try {
        (void)result.value();
        FAIL() << "value() on an error Result must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_EQ(e.path(), "/nonexistent/nowhere.trace");
    }
}

TEST(TraceIo, BadMagicRejected)
{
    std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE___", f);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().offset(), 0u);
    EXPECT_NE(result.error().reason().find("magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedHeaderRejected)
{
    // Shorter than the 8-byte magic.
    std::string path = tempPath("nohdr");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BER", f);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason().find("truncated header"),
              std::string::npos);

    // Valid magic but the record count is missing.
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BERTITR1", f);
    std::fclose(f);
    result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().offset(), 8u);
    EXPECT_NE(result.error().reason().find("record count"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, HostileRecordCountRejectedBeforeAllocation)
{
    // Two real records but a header claiming ~2^60: the loader must
    // reject the count against the file size, not trust it.
    std::vector<TraceInstr> instrs(2);
    std::string path = tempPath("hostilecount");
    ASSERT_TRUE(saveTrace(path, instrs));
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::uint64_t bogus = 1ull << 60;
    std::fseek(f, 8, SEEK_SET);
    ASSERT_EQ(std::fwrite(&bogus, 8, 1, f), 1u);
    std::fclose(f);
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().offset(), 8u);
    EXPECT_NE(result.error().reason().find("exceeds file capacity"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordReportsItsOffset)
{
    std::vector<TraceInstr> instrs(10);
    std::string path = tempPath("trunc");
    ASSERT_TRUE(saveTrace(path, instrs));
    // Chop the last record in half. The error must pinpoint the byte
    // offset where the mangled record *starts* — record 9 of 10, at
    // header + 9 full records — and say it is a truncation, not a
    // hostile header.
    ASSERT_EQ(0, truncate(path.c_str(), sizeOf(path) - 10));
    auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().path(), path);
    EXPECT_EQ(result.error().offset(),
              kHeaderBytes + 9 * kRecordBytes);
    EXPECT_NE(result.error().reason().find("truncated record"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedMidRecordSweepReportsExactOffsets)
{
    // Satellite regression for the typed-error contract: for *every*
    // cut point inside the record payload, the reported offset is the
    // start of the first incomplete record, and cuts on a record
    // boundary are instead diagnosed as a count/size mismatch.
    std::vector<TraceInstr> instrs(4);
    std::string path = tempPath("truncsweep");
    ASSERT_TRUE(saveTrace(path, instrs));
    const long full = sizeOf(path);
    ASSERT_EQ(full,
              static_cast<long>(kHeaderBytes + 4 * kRecordBytes));
    for (long cut = static_cast<long>(kHeaderBytes) + 1; cut < full;
         ++cut) {
        ASSERT_TRUE(saveTrace(path, instrs));
        ASSERT_EQ(0, truncate(path.c_str(), cut));
        auto result = loadTrace(path);
        ASSERT_FALSE(result.ok()) << "cut=" << cut;
        EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
        std::uint64_t payload =
            static_cast<std::uint64_t>(cut) - kHeaderBytes;
        if (payload % kRecordBytes != 0) {
            std::uint64_t expect =
                kHeaderBytes + (payload / kRecordBytes) * kRecordBytes;
            EXPECT_EQ(result.error().offset(), expect)
                << "cut=" << cut;
            EXPECT_NE(result.error().reason().find("truncated record"),
                      std::string::npos)
                << "cut=" << cut;
        } else {
            // Clean record boundary: the payload is self-consistent,
            // so the header count is the lie.
            EXPECT_EQ(result.error().offset(), 8u) << "cut=" << cut;
            EXPECT_NE(
                result.error().reason().find("exceeds file capacity"),
                std::string::npos)
                << "cut=" << cut;
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, HeaderCountVsFileSizeFuzz)
{
    // Fuzz the header's record count against a fixed 6-record payload:
    // undercounting loads the declared prefix, any overcount is a typed
    // error, and no value crashes or silently truncates.
    std::vector<TraceInstr> instrs(6);
    for (std::size_t i = 0; i < instrs.size(); ++i)
        instrs[i].ip = 0x1000 + i;
    std::string path = tempPath("countfuzz");
    Rng rng(0xc0117u);
    for (int iter = 0; iter < 64; ++iter) {
        ASSERT_TRUE(saveTrace(path, instrs));
        std::uint64_t claimed = rng.nextBounded(16);
        if (iter % 4 == 0)
            claimed = (1ull << 62) + rng.nextBounded(1024);
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 8, SEEK_SET);
        ASSERT_EQ(std::fwrite(&claimed, 8, 1, f), 1u);
        std::fclose(f);
        auto result = loadTrace(path);
        if (claimed <= 6) {
            ASSERT_TRUE(result.ok()) << "claimed=" << claimed;
            EXPECT_EQ(result.value().size(), claimed);
            if (claimed > 0)
                EXPECT_EQ(result.value()[0].ip, 0x1000u);
        } else {
            ASSERT_FALSE(result.ok()) << "claimed=" << claimed;
            EXPECT_EQ(result.error().kind(),
                      verify::ErrorKind::TraceIo);
            EXPECT_EQ(result.error().offset(), 8u);
            EXPECT_NE(
                result.error().reason().find("exceeds file capacity"),
                std::string::npos);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, SaveTraceReportsTypedWriteErrors)
{
    // Satellite: saveTrace now returns verify::Result instead of bool,
    // so an unwritable destination carries path + errno reason.
    std::vector<TraceInstr> instrs(2);
    auto result = saveTrace("/nonexistent-dir/out.trace", instrs);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind(), verify::ErrorKind::TraceIo);
    EXPECT_EQ(result.error().path(), "/nonexistent-dir/out.trace");
    EXPECT_NE(result.error().reason().find("cannot open"),
              std::string::npos);

    // Success reports the exact byte count written.
    std::string path = tempPath("savebytes");
    auto ok = saveTrace(path, instrs);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), kHeaderBytes + 2 * kRecordBytes);
    EXPECT_EQ(static_cast<std::uint64_t>(sizeOf(path)), ok.value());
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRejectedByReplay)
{
    // Zero records is a *valid* file for loadTrace but useless for
    // replay: FileReplayGen must refuse it loudly.
    std::vector<TraceInstr> none;
    std::string path = tempPath("empty");
    ASSERT_TRUE(saveTrace(path, none));
    auto result = loadTrace(path);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().empty());
    try {
        FileReplayGen replay(path);
        FAIL() << "empty trace must not replay";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_NE(e.reason().find("no instructions"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

} // namespace berti
