/** @file CSR graph builder tests. */

#include <gtest/gtest.h>

#include "trace/graph.hh"

namespace berti
{

TEST(Graph, UniformIsValidWithExpectedDegree)
{
    Csr g = makeUniformGraph(1000, 8, 1);
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.numNodes, 1000u);
    EXPECT_EQ(g.numEdges(), 8000u);
    for (std::uint32_t n = 0; n < g.numNodes; ++n)
        EXPECT_EQ(g.degree(n), 8u);
}

TEST(Graph, KronIsValidAndSkewed)
{
    Csr g = makeKronGraph(4096, 8, 2);
    EXPECT_TRUE(g.valid());
    // Power-law in-degree: some hub receives far more than average.
    std::vector<std::uint32_t> indeg(g.numNodes, 0);
    for (std::uint32_t v : g.col)
        ++indeg[v];
    std::uint32_t max_in = 0;
    for (std::uint32_t d : indeg)
        max_in = std::max(max_in, d);
    double avg = static_cast<double>(g.numEdges()) / g.numNodes;
    EXPECT_GT(max_in, 10 * avg);
}

TEST(Graph, RoadIsValidSparseAndSymmetricish)
{
    Csr g = makeRoadGraph(50, 40, 3);
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.numNodes, 2000u);
    double avg = static_cast<double>(g.numEdges()) / g.numNodes;
    EXPECT_GT(avg, 3.0);
    EXPECT_LT(avg, 4.5);  // grid degree ~4 plus rare shortcuts
}

TEST(Graph, BuildersAreDeterministic)
{
    Csr a = makeKronGraph(2048, 8, 7);
    Csr b = makeKronGraph(2048, 8, 7);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.col, b.col);
    Csr c = makeKronGraph(2048, 8, 8);
    EXPECT_NE(a.col, c.col);
}

TEST(Graph, ValidCatchesCorruption)
{
    Csr g = makeUniformGraph(100, 4, 1);
    ASSERT_TRUE(g.valid());
    Csr bad = g;
    bad.col[0] = 100;  // out-of-range target
    EXPECT_FALSE(bad.valid());
    Csr bad2 = g;
    bad2.rowPtr[5] = bad2.rowPtr[6] + 1;  // non-monotone
    EXPECT_FALSE(bad2.valid());
}

struct GraphParam
{
    std::uint32_t nodes;
    std::uint32_t degree;
};

class GraphSweep : public ::testing::TestWithParam<GraphParam>
{
};

TEST_P(GraphSweep, UniformAndKronValidAtEveryScale)
{
    auto [nodes, degree] = GetParam();
    EXPECT_TRUE(makeUniformGraph(nodes, degree, 9).valid());
    EXPECT_TRUE(makeKronGraph(nodes, degree, 9).valid());
}

INSTANTIATE_TEST_SUITE_P(Scales, GraphSweep,
                         ::testing::Values(GraphParam{16, 2},
                                           GraphParam{256, 4},
                                           GraphParam{5000, 8},
                                           GraphParam{1u << 15, 12}));

} // namespace berti
