/** @file TLB and translation-unit tests. */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

namespace berti
{

TEST(Tlb, MissThenHit)
{
    Tlb tlb(4, 2, 1);
    EXPECT_FALSE(tlb.lookup(100));
    tlb.fill(100);
    EXPECT_TRUE(tlb.lookup(100));
    EXPECT_EQ(tlb.stats.accesses, 2u);
    EXPECT_EQ(tlb.stats.misses, 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(1, 2, 1);  // one set, two ways
    tlb.fill(10);
    tlb.fill(20);
    EXPECT_TRUE(tlb.lookup(10));  // refresh 10: 20 is now LRU
    tlb.fill(30);                 // evicts 20
    EXPECT_TRUE(tlb.probe(10));
    EXPECT_FALSE(tlb.probe(20));
    EXPECT_TRUE(tlb.probe(30));
}

TEST(Tlb, ProbeDoesNotTouchLru)
{
    Tlb tlb(1, 2, 1);
    tlb.fill(10);
    tlb.fill(20);
    // Probing 10 must not refresh it.
    EXPECT_TRUE(tlb.probe(10));
    tlb.fill(30);  // LRU is still 10
    EXPECT_FALSE(tlb.probe(10));
    EXPECT_TRUE(tlb.probe(20));
}

TEST(Tlb, DuplicateFillIsIdempotent)
{
    Tlb tlb(1, 2, 1);
    tlb.fill(10);
    tlb.fill(10);
    tlb.fill(20);
    EXPECT_TRUE(tlb.probe(10));
    EXPECT_TRUE(tlb.probe(20));
}

TEST(TranslationUnit, LatencyComposition)
{
    TranslationUnit::Config cfg;
    cfg.dtlbLatency = 1;
    cfg.stlbLatency = 8;
    cfg.walkLatency = 80;
    TranslationUnit tu(cfg);

    Addr vaddr = 0x123456;
    // Cold: dTLB miss + STLB miss + walk.
    EXPECT_EQ(tu.translate(vaddr).latency, 1u + 8u + 80u);
    // Warm: dTLB hit.
    EXPECT_EQ(tu.translate(vaddr).latency, 1u);
}

TEST(TranslationUnit, StlbHitPath)
{
    TranslationUnit::Config cfg;
    cfg.dtlbSets = 1;
    cfg.dtlbWays = 1;  // tiny dTLB to force eviction
    TranslationUnit tu(cfg);

    tu.translate(0x1000);   // walk, fills both
    tu.translate(0x2000);   // evicts 0x1000 from the 1-entry dTLB
    auto r = tu.translate(0x1000);
    EXPECT_EQ(r.latency, cfg.dtlbLatency + cfg.stlbLatency);
}

TEST(TranslationUnit, TranslationIsStable)
{
    TranslationUnit tu({});
    Addr a = tu.translate(0x5000).paddr;
    Addr b = tu.translate(0x5000).paddr;
    EXPECT_EQ(a, b);
    EXPECT_EQ(pageOffset(tu.translate(0x5123).paddr), 0x123u);
}

TEST(TranslationUnit, PrefetchProbeDropsUnknownPages)
{
    TranslationUnit tu({});
    Addr paddr = 0;
    // Never demanded: STLB miss, prefetch must drop.
    EXPECT_FALSE(tu.prefetchTranslate(0x9000, paddr));
    EXPECT_EQ(tu.stlbStats().prefetchProbeMisses, 1u);

    tu.translate(0x9000);
    EXPECT_TRUE(tu.prefetchTranslate(0x9040, paddr));
    EXPECT_EQ(paddr, tu.translate(0x9040).paddr);
}

TEST(TranslationUnit, PrefetchProbeDoesNotWalk)
{
    TranslationUnit tu({});
    Addr paddr = 0;
    tu.prefetchTranslate(0x9000, paddr);
    // Still a miss afterwards: the probe must not install anything.
    EXPECT_FALSE(tu.prefetchTranslate(0x9000, paddr));
}

} // namespace berti
