/** @file Workload-generator tests: determinism, pattern properties,
 *  registry integrity. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/generators.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

std::vector<TraceInstr>
take(TraceGenerator &gen, std::size_t n)
{
    std::vector<TraceInstr> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(gen.next());
    return out;
}

/** Line-address sequence of loads issued by one IP. */
std::vector<Addr>
loadLinesOf(const std::vector<TraceInstr> &trace, Addr ip)
{
    std::vector<Addr> out;
    for (const auto &in : trace) {
        if (in.ip == ip && in.isLoad())
            out.push_back(lineAddr(in.load0));
    }
    return out;
}

} // namespace

TEST(Generators, ScriptedReplaysCyclically)
{
    TraceInstr a, b;
    a.ip = 1;
    b.ip = 2;
    ScriptedGen gen({a, b});
    EXPECT_EQ(gen.next().ip, 1u);
    EXPECT_EQ(gen.next().ip, 2u);
    EXPECT_EQ(gen.next().ip, 1u);
}

TEST(Generators, LbmAlternatesPlusOnePlusTwo)
{
    LbmLikeGen gen({});
    auto trace = take(gen, 30000);
    // Find a load IP and check its per-IP line deltas alternate 1, 2.
    std::map<Addr, std::vector<Addr>> per_ip;
    for (const auto &in : trace) {
        if (in.isLoad())
            per_ip[in.ip].push_back(lineAddr(in.load0));
    }
    ASSERT_GE(per_ip.size(), 8u);  // eight load streams + store site
    bool checked = false;
    for (const auto &[ip, lines] : per_ip) {
        if (lines.size() < 20)
            continue;
        checked = true;
        for (std::size_t i = 1; i + 1 < 20; i += 2) {
            Addr d1 = lines[i] - lines[i - 1];
            Addr d2 = lines[i + 1] - lines[i];
            EXPECT_EQ(d1 + d2, 3u);  // {+1,+2} in some phase
        }
    }
    EXPECT_TRUE(checked);
}

TEST(Generators, StreamAdvancesMonotonically)
{
    StreamGen::Params p;
    p.streams = 2;
    StreamGen gen(p);
    auto trace = take(gen, 5000);
    std::map<Addr, Addr> last;
    for (const auto &in : trace) {
        if (!in.isLoad())
            continue;
        auto it = last.find(in.ip);
        if (it != last.end())
            EXPECT_GE(in.load0, it->second);
        last[in.ip] = in.load0;
    }
}

TEST(Generators, McfContainsDependentChase)
{
    McfLikeGen gen({});
    auto trace = take(gen, 5000);
    unsigned dependent = 0;
    for (const auto &in : trace)
        dependent += in.dependsOnPrevLoad ? 1 : 0;
    EXPECT_GT(dependent, 50u);
}

TEST(Generators, McfIrregularCycleIsPeriodic)
{
    // One IP follows the paper's -1,-5,-2,-1,-4,-1 delta cycle; its
    // deltas must repeat with period 6 (modulo region wrap resets).
    McfLikeGen gen({});
    auto trace = take(gen, 60000);
    // IP of the first cycle: siteIp(70) = 0x400000 + 4*70.
    auto lines = loadLinesOf(trace, 0x400000 + 4 * 70);
    ASSERT_GT(lines.size(), 30u);
    std::vector<std::int64_t> deltas;
    for (std::size_t i = 1; i < 25; ++i)
        deltas.push_back(static_cast<std::int64_t>(lines[i]) -
                         static_cast<std::int64_t>(lines[i - 1]));
    for (std::size_t i = 6; i < deltas.size(); ++i)
        EXPECT_EQ(deltas[i], deltas[i - 6]);
}

TEST(Generators, PointerChaseIsFullyDependent)
{
    PointerChaseGen gen({});
    auto trace = take(gen, 2000);
    for (const auto &in : trace) {
        if (in.isLoad())
            EXPECT_TRUE(in.dependsOnPrevLoad);
    }
}

TEST(Generators, CloudHasLargeCodeFootprint)
{
    CloudLikeGen::Params p;
    CloudLikeGen gen(p);
    auto trace = take(gen, 50000);
    std::set<Addr> code_lines;
    for (const auto &in : trace)
        code_lines.insert(lineAddr(in.ip));
    // Far larger than the 512-line L1I.
    EXPECT_GT(code_lines.size(), 1500u);
}

TEST(Generators, CloudDataMostlyHot)
{
    CloudLikeGen::Params p;
    CloudLikeGen gen(p);
    auto trace = take(gen, 50000);
    unsigned hot = 0, total = 0;
    for (const auto &in : trace) {
        if (!in.isLoad())
            continue;
        ++total;
        hot += lineAddr(in.load0) - lineAddr(0x10000000) < p.hotLines;
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(hot) / total, 0.85);
}

TEST(Generators, RandomCoversRegionUniformly)
{
    RandomGen::Params p;
    p.regionLines = 1u << 10;
    RandomGen gen(p);
    auto trace = take(gen, 40000);
    std::set<Addr> lines;
    for (const auto &in : trace) {
        if (in.isLoad())
            lines.insert(lineAddr(in.load0));
    }
    EXPECT_GT(lines.size(), 900u);  // most of the 1024-line region
}

TEST(Generators, BranchesArePresentAndBiased)
{
    StreamGen gen({});
    auto trace = take(gen, 20000);
    unsigned branches = 0, taken = 0;
    for (const auto &in : trace) {
        if (in.isBranch) {
            ++branches;
            taken += in.taken;
        }
    }
    EXPECT_GT(branches, 50u);
    EXPECT_GT(static_cast<double>(taken) / branches, 0.8);
}

// ------------------------------------------------------------ registry

TEST(Registry, AllWorkloadsConstructAndProduce)
{
    for (const auto &w : allWorkloads()) {
        auto gen = w.make();
        ASSERT_NE(gen, nullptr) << w.name;
        auto trace = take(*gen, 2000);
        unsigned mem = 0;
        for (const auto &in : trace)
            mem += in.isMem() ? 1 : 0;
        EXPECT_GT(mem, 0u) << w.name;
    }
}

TEST(Registry, WorkloadsAreDeterministic)
{
    for (const auto &w : allWorkloads()) {
        auto g1 = w.make();
        auto g2 = w.make();
        for (int i = 0; i < 500; ++i) {
            TraceInstr a = g1->next();
            TraceInstr b = g2->next();
            ASSERT_EQ(a.ip, b.ip) << w.name;
            ASSERT_EQ(a.load0, b.load0) << w.name;
            ASSERT_EQ(a.store, b.store) << w.name;
            ASSERT_EQ(a.taken, b.taken) << w.name;
        }
    }
}

TEST(Registry, SuitesPartitionTheRegistry)
{
    auto spec = suiteWorkloads("spec");
    auto gap = suiteWorkloads("gap");
    auto cloud = suiteWorkloads("cloud");
    EXPECT_GE(spec.size(), 20u);
    EXPECT_EQ(gap.size(), 25u);  // 5 kernels x 5 graphs
    EXPECT_EQ(cloud.size(), 5u);
    EXPECT_EQ(spec.size() + gap.size() + cloud.size(),
              allWorkloads().size());
    EXPECT_EQ(specGapWorkloads().size(), spec.size() + gap.size());
}

TEST(Registry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Registry, FindByNameAndUnknownThrows)
{
    EXPECT_EQ(findWorkload("mcf-like.1554").suite, "spec");
    try {
        findWorkload("no-such-workload");
        FAIL() << "expected SimError(Config)";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("no-such-workload"),
                  std::string::npos);
    }
}

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, AddressesAreCanonical)
{
    auto gen = findWorkload(GetParam()).make();
    for (int i = 0; i < 5000; ++i) {
        TraceInstr in = gen->next();
        EXPECT_NE(in.ip, 0u);
        EXPECT_LT(in.ip, Addr{1} << 40);  // page-table domain
        if (in.isLoad())
            EXPECT_LT(in.load0, Addr{1} << 40);
        if (in.isStore())
            EXPECT_LT(in.store, Addr{1} << 40);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSuites, WorkloadSweep,
                         ::testing::Values("stream-like.1",
                                           "lbm-like.2676",
                                           "mcf-like.1554",
                                           "cactu-like.709",
                                           "gcc-like.2226", "bfs-kron",
                                           "pr-urand", "cc-road",
                                           "sssp-kron", "bc-urand",
                                           "cassandra-like",
                                           "classification-like"));

} // namespace berti
