/** @file Harness tests: spec parsing, table printing, simulation
 *  determinism. */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "verify/sim_error.hh"

namespace berti
{

TEST(Spec, ParsesSingleLevelNames)
{
    for (const char *name : {"none", "ip-stride", "next-line", "bop",
                             "mlop", "ipcp", "berti"}) {
        PrefetcherSpec s = makeSpec(name);
        EXPECT_EQ(s.name, name);
        EXPECT_EQ(s.l2, nullptr);
        if (std::string(name) == "none")
            EXPECT_EQ(s.l1d, nullptr);
        else
            EXPECT_NE(s.l1d, nullptr);
    }
}

TEST(Spec, ParsesMultiLevelCombos)
{
    PrefetcherSpec s = makeSpec("berti+spp-ppf");
    ASSERT_NE(s.l1d, nullptr);
    ASSERT_NE(s.l2, nullptr);
    EXPECT_EQ(s.l1d()->name(), "berti");
    EXPECT_EQ(s.l2()->name(), "spp-ppf");
    EXPECT_GT(s.storageBits, makeSpec("berti").storageBits);
}

TEST(Spec, L2OnlyCombo)
{
    PrefetcherSpec s = makeSpec("none+bingo");
    EXPECT_EQ(s.l1d, nullptr);
    ASSERT_NE(s.l2, nullptr);
    EXPECT_EQ(s.l2()->name(), "bingo");
}

TEST(Spec, UnknownNameThrowsTypedError)
{
    try {
        makeSpec("quantum-oracle");
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_EQ(e.component(), "prefetch");
        EXPECT_NE(e.reason().find("quantum-oracle"), std::string::npos);
    }
}

TEST(Spec, UnknownL2NameThrowsTypedError)
{
    EXPECT_THROW(makeSpec("berti+quantum-oracle"), verify::SimError);
}

TEST(Spec, BertiStorageIsTwoPointFiveFiveKb)
{
    PrefetcherSpec s = makeSpec("berti");
    EXPECT_NEAR(static_cast<double>(s.storageBits) / 8192.0, 2.55, 0.06);
}

TEST(Spec, CustomBertiConfigPropagates)
{
    BertiConfig cfg;
    cfg.crossPage = false;
    PrefetcherSpec s = makeBertiSpec(cfg, "berti-nocross");
    EXPECT_EQ(s.name, "berti-nocross");
    auto pf = s.l1d();
    auto *b = dynamic_cast<BertiPrefetcher *>(pf.get());
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->config().crossPage);
}

TEST(TableTest, AlignedOutputContainsCells)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", TextTable::num(1.5, 1)});
    t.addRow({"b", TextTable::pct(0.5)});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only-one"});
    std::ostringstream os;
    t.print(os);
    SUCCEED();
}

// ------------------------------------------------------- simulations

TEST(Simulate, DeterministicAcrossRuns)
{
    SimParams p;
    p.warmupInstructions = 5000;
    p.measureInstructions = 20000;
    const Workload &w = findWorkload("stream-like.1");
    SimResult a = simulate(w, makeSpec("berti"), p);
    SimResult b = simulate(w, makeSpec("berti"), p);
    EXPECT_EQ(a.roi.core.cycles, b.roi.core.cycles);
    EXPECT_EQ(a.roi.l1d.demandMisses, b.roi.l1d.demandMisses);
    EXPECT_EQ(a.roi.l1d.prefetchIssued, b.roi.l1d.prefetchIssued);
}

TEST(Simulate, BertiBeatsNoPrefetchOnStreams)
{
    SimParams p;
    p.warmupInstructions = 20000;
    p.measureInstructions = 80000;
    const Workload &w = findWorkload("stream-like.1");
    SimResult none = simulate(w, makeSpec("none"), p);
    SimResult berti = simulate(w, makeSpec("berti"), p);
    EXPECT_GT(berti.ipc, 1.15 * none.ipc);
    EXPECT_LT(berti.roi.l1d.demandMisses, none.roi.l1d.demandMisses);
}

TEST(Simulate, BertiIsAccurateOnStreams)
{
    SimParams p;
    p.warmupInstructions = 20000;
    p.measureInstructions = 80000;
    SimResult r =
        simulate(findWorkload("stream-like.1"), makeSpec("berti"), p);
    EXPECT_GT(r.roi.l1d.accuracy(), 0.85);
}

TEST(Simulate, EnergyScalesWithTraffic)
{
    SimParams p;
    p.warmupInstructions = 5000;
    p.measureInstructions = 30000;
    const Workload &w = findWorkload("stream-like.1");
    SimResult none = simulate(w, makeSpec("none"), p);
    EXPECT_GT(none.energy.total(), 0.0);
    EXPECT_GT(none.energy.dram, none.energy.l1);
}

TEST(Simulate, DramBandwidthKnobChangesPerformance)
{
    SimParams fast, slow;
    fast.warmupInstructions = slow.warmupInstructions = 10000;
    fast.measureInstructions = slow.measureInstructions = 50000;
    fast.dramMtps = 6400;
    slow.dramMtps = 1600;
    const Workload &w = findWorkload("stream-like.1");
    SimResult f = simulate(w, makeSpec("none"), fast);
    SimResult s = simulate(w, makeSpec("none"), slow);
    EXPECT_GT(f.ipc, s.ipc);
}

TEST(SimulateMix, ProducesPerCoreResults)
{
    SimParams p;
    p.warmupInstructions = 3000;
    p.measureInstructions = 15000;
    std::vector<Workload> mix = {findWorkload("stream-like.1"),
                                 findWorkload("gcc-like.2226")};
    auto results = simulateMix(mix, makeSpec("berti"), p);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_GE(r.roi.core.instructions, p.measureInstructions);
        EXPECT_GT(r.ipc, 0.0);
    }
}

TEST(SimulateMix, SharedLlcSeesBothCores)
{
    SimParams p;
    p.warmupInstructions = 3000;
    p.measureInstructions = 15000;
    std::vector<Workload> mix = {findWorkload("stream-like.1"),
                                 findWorkload("omnetpp-like.874")};
    auto results = simulateMix(mix, makeSpec("none"), p);
    // Both cores funnel into one LLC: its access count exceeds either
    // core's private L2 miss count.
    EXPECT_GT(results[0].roi.llc.demandAccesses +
                  results[1].roi.llc.demandAccesses,
              results[0].roi.l2.demandMisses);
}

TEST(SpeedupGeomean, MatchesHandComputation)
{
    SimResult a, b, c, d;
    a.ipc = 2.0;
    b.ipc = 1.0;  // 2x
    c.ipc = 1.0;
    d.ipc = 2.0;  // 0.5x
    double g = speedupGeomean({a, c}, {b, d});
    EXPECT_NEAR(g, 1.0, 1e-9);
}

TEST(SpeedupGeomean, NonPositiveBaselineIpcIsHardError)
{
    // A crashed or empty baseline cell used to be silently dropped,
    // quietly shifting the geomean; it must name the offending index.
    SimResult good, bad;
    good.ipc = 1.5;
    bad.ipc = 0.0;
    try {
        speedupGeomean({good, good}, {good, bad});
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(e.reason().find("baseline result 1"), std::string::npos)
            << e.reason();
        EXPECT_NE(e.reason().find("non-positive"), std::string::npos)
            << e.reason();
    }
}

TEST(SpeedupGeomean, SizeMismatchIsHardError)
{
    SimResult a, b;
    a.ipc = b.ipc = 1.0;
    try {
        speedupGeomean({a, a}, {b});
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(e.reason().find("mismatch"), std::string::npos);
    }
}

} // namespace berti
