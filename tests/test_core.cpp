/** @file Core pipeline tests, driven through the Machine harness with
 *  scripted traces. */

#include <gtest/gtest.h>

#include "harness/machine.hh"
#include "sim/rng.hh"

namespace berti
{

namespace
{

TraceInstr
alu(Addr ip)
{
    TraceInstr in;
    in.ip = ip;
    return in;
}

TraceInstr
loadAt(Addr ip, Addr addr, bool dep = false)
{
    TraceInstr in;
    in.ip = ip;
    in.load0 = addr;
    in.dependsOnPrevLoad = dep;
    return in;
}

TraceInstr
branch(Addr ip, bool taken)
{
    TraceInstr in;
    in.ip = ip;
    in.isBranch = true;
    in.taken = taken;
    return in;
}

RunStats
runScript(std::vector<TraceInstr> script, std::uint64_t instructions)
{
    ScriptedGen gen(std::move(script));
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    Machine m(cfg, {&gen});
    m.run(instructions);
    return m.liveStats(0);
}

} // namespace

TEST(Core, RetiresRequestedInstructionCount)
{
    RunStats s = runScript({alu(0x400000)}, 10000);
    EXPECT_GE(s.core.instructions, 10000u);
}

TEST(Core, AluOnlyIpcBoundedByRetireWidth)
{
    RunStats s = runScript({alu(0x400000), alu(0x400004), alu(0x400008),
                            alu(0x40000c)},
                           50000);
    double ipc = s.core.ipc();
    EXPECT_GT(ipc, 3.0);  // approaches the 4-wide retire limit
    EXPECT_LE(ipc, 4.05);
}

TEST(Core, CacheResidentLoadsAreFast)
{
    // Loads that hit one hot line after warm-up.
    RunStats s = runScript({loadAt(0x400000, 0x10000000), alu(0x400004),
                            alu(0x400008)},
                           50000);
    EXPECT_GT(s.core.ipc(), 2.0);
    EXPECT_LE(s.l1d.mpki(s.core.instructions), 1.0);
}

TEST(Core, DependentChaseIsLatencyBound)
{
    // Two scripts over the same two lines: independent vs dependent.
    std::vector<TraceInstr> indep, dep;
    for (int i = 0; i < 8; ++i) {
        indep.push_back(loadAt(0x400000, 0x20000000ull + (i % 2) * 64));
        dep.push_back(
            loadAt(0x400000, 0x20000000ull + (i % 2) * 64, true));
    }
    RunStats si = runScript(indep, 20000);
    RunStats sd = runScript(dep, 20000);
    // Serialized address dependences cannot beat the parallel version.
    EXPECT_LE(sd.core.ipc(), si.core.ipc() + 0.01);
}

TEST(Core, MispredictsSlowTheFrontEnd)
{
    Rng rng(3);
    std::vector<TraceInstr> random_branches, biased_branches;
    for (int i = 0; i < 64; ++i) {
        random_branches.push_back(alu(0x400000 + 8 * i));
        random_branches.push_back(
            branch(0x400004 + 8 * i, rng.nextBool(0.5)));
        biased_branches.push_back(alu(0x400000 + 8 * i));
        biased_branches.push_back(branch(0x400004 + 8 * i, true));
    }
    RunStats sr = runScript(random_branches, 30000);
    RunStats sb = runScript(biased_branches, 30000);
    EXPECT_GT(sr.core.mispredicts, sb.core.mispredicts * 5);
    EXPECT_LT(sr.core.ipc(), sb.core.ipc());
}

TEST(Core, BranchStatsCounted)
{
    RunStats s = runScript({branch(0x400000, true), alu(0x400004)}, 10000);
    EXPECT_NEAR(static_cast<double>(s.core.branches) /
                    s.core.instructions,
                0.5, 0.05);
}

TEST(Core, LoadStoreCountsMatchScript)
{
    TraceInstr st;
    st.ip = 0x400008;
    st.store = 0x30000000;
    RunStats s =
        runScript({loadAt(0x400000, 0x20000000), st, alu(0x400010)},
                  30000);
    EXPECT_NEAR(static_cast<double>(s.core.loads) / s.core.instructions,
                1.0 / 3.0, 0.05);
    EXPECT_NEAR(static_cast<double>(s.core.stores) / s.core.instructions,
                1.0 / 3.0, 0.05);
}

TEST(Core, HugeCodeFootprintMissesInL1i)
{
    std::vector<TraceInstr> script;
    for (int i = 0; i < 4096; ++i)
        script.push_back(alu(0x400000 + 64 * i));  // new line each instr
    RunStats s = runScript(script, 30000);
    EXPECT_GT(s.l1i.demandMisses, 100u);
}

TEST(Core, StoresReachTheCacheAsRfo)
{
    TraceInstr st;
    st.ip = 0x400000;
    st.store = 0x40000000;
    RunStats s = runScript({st, alu(0x400004)}, 20000);
    EXPECT_GT(s.l1d.demandAccesses, 1000u);
}

TEST(Machine, MultiCoreRunsAllCores)
{
    ScriptedGen g0({alu(0x400000)});
    ScriptedGen g1({loadAt(0x400000, 0x20000000)});
    MachineConfig cfg = MachineConfig::sunnyCove(2);
    Machine m(cfg, {&g0, &g1});
    m.run(5000);
    EXPECT_GE(m.coreSnapshot(0).core.instructions, 5000u);
    EXPECT_GE(m.coreSnapshot(1).core.instructions, 5000u);
}

TEST(Machine, SnapshotTakenAtPerCoreTarget)
{
    // A fast ALU core and a slow memory-bound core: the fast core's
    // snapshot must be taken early (fewer cycles than the full run).
    ScriptedGen fast({alu(0x400000)});
    std::vector<TraceInstr> chase;
    for (int i = 0; i < 64; ++i)
        chase.push_back(loadAt(0x400000, 0x20000000ull + 64 * i, true));
    ScriptedGen slow(chase);
    MachineConfig cfg = MachineConfig::sunnyCove(2);
    Machine m(cfg, {&fast, &slow});
    m.run(20000);
    EXPECT_LT(m.coreSnapshot(0).core.cycles,
              m.coreSnapshot(1).core.cycles);
}

TEST(Machine, SunnyCoveMatchesTableTwo)
{
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    EXPECT_EQ(cfg.core.robSize, 352u);
    EXPECT_EQ(cfg.core.dispatchWidth, 6u);
    EXPECT_EQ(cfg.core.retireWidth, 4u);
    EXPECT_EQ(cfg.l1d.sets * cfg.l1d.ways * kLineSize, 48u * 1024);
    EXPECT_EQ(cfg.l1d.latency, 5u);
    EXPECT_EQ(cfg.l1d.mshrs, 16u);
    EXPECT_EQ(cfg.l2.sets * cfg.l2.ways * kLineSize, 512u * 1024);
    EXPECT_EQ(cfg.l2.repl, ReplKind::Srrip);
    EXPECT_EQ(cfg.llc.sets * cfg.llc.ways * kLineSize, 2048u * 1024);
    EXPECT_EQ(cfg.llc.repl, ReplKind::Drrip);
    EXPECT_EQ(cfg.dram.mtps, 6400u);
}

} // namespace berti
