/**
 * @file
 * Checkpoint/resume validation: a resumed machine must be
 * indistinguishable from one that never stopped. The strongest form of
 * that claim is byte equality of the re-serialized state, so most
 * tests compare whole checkpoint blobs rather than individual
 * counters; the rejection tests then pin down the typed-error contract
 * for truncated, corrupted, version-skewed and mis-wired blobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "obs/export.hh"
#include "oracle/microtrace.hh"
#include "sim/serialize.hh"
#include "trace/instr.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

/** The resume matrix the acceptance criteria name: three workloads
 *  crossed with the checkpointable specs, including the temporal /
 *  Markov specs and a hybrid of each selection policy. */
const std::vector<std::string> kWorkloads = {
    "mcf-like.472", "bwaves-like.2609", "cactu-like.709"};
const std::vector<std::string> kSpecs = {
    "none",
    "berti",
    "ip-stride",
    "stream",
    "cmc",
    "markov",
    "hybrid(berti,cmc)",
    "hybrid(berti,markov;select=ip)",
    "hybrid(cmc,markov;select=duel)"};

constexpr std::uint64_t kWarmup = 4000;
constexpr std::uint64_t kMeasure = 12000;

MachineConfig
configFor(const std::string &spec_name, unsigned cores = 1)
{
    PrefetcherSpec spec = makeSpec(spec_name);
    MachineConfig cfg = MachineConfig::sunnyCove(cores);
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    return cfg;
}

/** Byte equality with a readable failure (no multi-KB blob dumps). */
void
expectBlobsEqual(const std::string &a, const std::string &b,
                 const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what << ": blob sizes differ";
    if (a != b) {
        std::size_t at = 0;
        while (at < a.size() && a[at] == b[at])
            ++at;
        FAIL() << what << ": blobs diverge at byte " << at << " of "
               << a.size();
    }
}

/**
 * The core property: save at the warmup boundary, resume into a fresh
 * machine with fresh generators, run the measure region on both, and
 * require the final serialized states to be byte-identical.
 */
void
checkResumeBitIdentical(const MachineConfig &cfg,
                        const std::vector<const Workload *> &workloads,
                        const std::string &what)
{
    std::vector<std::unique_ptr<TraceGenerator>> gens_a;
    std::vector<TraceGenerator *> ptrs_a;
    for (const Workload *w : workloads) {
        gens_a.push_back(w->make());
        ptrs_a.push_back(gens_a.back().get());
    }
    Machine uninterrupted(cfg, ptrs_a);
    uninterrupted.run(kWarmup);
    std::string mid = uninterrupted.saveCheckpointBlob();
    uninterrupted.run(kMeasure);
    std::string want = uninterrupted.saveCheckpointBlob();

    std::vector<std::unique_ptr<TraceGenerator>> gens_b;
    std::vector<TraceGenerator *> ptrs_b;
    for (const Workload *w : workloads) {
        gens_b.push_back(w->make());
        ptrs_b.push_back(gens_b.back().get());
    }
    Machine resumed(cfg, ptrs_b);
    resumed.resumeFromBlob(mid);

    // Restore must be lossless before any further execution: the
    // resumed machine re-serializes to the exact bytes it was fed.
    expectBlobsEqual(resumed.saveCheckpointBlob(), mid,
                     what + " (idempotent restore)");

    resumed.run(kMeasure);
    expectBlobsEqual(resumed.saveCheckpointBlob(), want,
                     what + " (post-resume run)");

    // Blob equality implies stats equality, but check the exported
    // metrics too so a future blob-layout bug cannot mask a stats one.
    EXPECT_EQ(obs::toJson(resumed.metricsSnapshot()),
              obs::toJson(uninterrupted.metricsSnapshot()))
        << what;
}

} // namespace

TEST(Checkpoint, SplitRunMatchesSingleRun)
{
    MachineConfig cfg = configFor("berti");
    const Workload &w = findWorkload("mcf-like.472");

    auto gen_single = w.make();
    Machine single(cfg, {gen_single.get()});
    single.run(kWarmup + kMeasure);

    auto gen_split = w.make();
    Machine split(cfg, {gen_split.get()});
    split.run(kWarmup);
    split.run(kMeasure);

    expectBlobsEqual(split.saveCheckpointBlob(),
                     single.saveCheckpointBlob(), "split vs single run");
}

TEST(Checkpoint, ResumeBitIdenticalAcrossWorkloadAndSpecMatrix)
{
    for (const std::string &spec : kSpecs) {
        for (const std::string &name : kWorkloads) {
            const Workload &w = findWorkload(name);
            checkResumeBitIdentical(configFor(spec), {&w},
                                    spec + "/" + name);
        }
    }
}

TEST(Checkpoint, ResumeBitIdenticalMulticore)
{
    const Workload &a = findWorkload("mcf-like.472");
    const Workload &b = findWorkload("bwaves-like.2609");
    checkResumeBitIdentical(configFor("berti", 2), {&a, &b},
                            "berti multicore");
}

TEST(Checkpoint, ResumeBitIdenticalOnAdversarialMicroTraces)
{
    // The differential oracle's adversarial workload classes
    // (page-crossing strides, aliasing sets, writeback races, ...) make
    // good checkpoint stressors too: they keep MSHRs, writeback queues
    // and TLB walks live at the save point.
    std::uint64_t seed = oracle::testSeed(0xC4EC4001);
    MachineConfig cfg = configFor("berti");
    for (const auto &cls : oracle::microTraceClasses()) {
        oracle::MicroTrace trace = cls.generate(seed, 400);
        std::vector<TraceInstr> instrs = oracle::toInstrs(trace);

        ScriptedGen gen_a(instrs);
        Machine uninterrupted(cfg, {&gen_a});
        uninterrupted.run(kWarmup);
        std::string mid = uninterrupted.saveCheckpointBlob();
        uninterrupted.run(kMeasure);

        ScriptedGen gen_b(instrs);
        Machine resumed(cfg, {&gen_b});
        resumed.resumeFromBlob(mid);
        resumed.run(kMeasure);

        expectBlobsEqual(resumed.saveCheckpointBlob(),
                         uninterrupted.saveCheckpointBlob(),
                         cls.name + " seed=" + std::to_string(seed));
    }
}

TEST(Checkpoint, AuditorPassesAfterRestore)
{
    MachineConfig cfg = configFor("berti");
    cfg.audit.enabled = true;
    const Workload &w = findWorkload("mcf-like.472");

    auto gen_a = w.make();
    Machine saver(cfg, {gen_a.get()});
    saver.run(kWarmup);
    std::string blob = saver.saveCheckpointBlob();

    auto gen_b = w.make();
    Machine resumed(cfg, {gen_b.get()});
    resumed.resumeFromBlob(blob);
    ASSERT_NE(resumed.auditor(), nullptr);
    // resumeFromBlob runs a full invariant pass over the restored state.
    EXPECT_GT(resumed.auditor()->checksRun(), 0u);
    resumed.run(kMeasure);
}

TEST(Checkpoint, FileRoundTripIsAtomicAndLossless)
{
    std::string path = ::testing::TempDir() + "/berti_ckpt_test.bin";
    MachineConfig cfg = configFor("ip-stride");
    const Workload &w = findWorkload("cactu-like.709");

    auto gen_a = w.make();
    Machine saver(cfg, {gen_a.get()});
    saver.run(kWarmup);
    saver.saveCheckpoint(path);
    std::string blob = saver.saveCheckpointBlob();

    auto gen_b = w.make();
    Machine resumed(cfg, {gen_b.get()});
    resumed.resumeFrom(path);
    expectBlobsEqual(resumed.saveCheckpointBlob(), blob, "file round-trip");
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsTypedError)
{
    MachineConfig cfg = configFor("none");
    const Workload &w = findWorkload("mcf-like.472");
    auto gen = w.make();
    Machine m(cfg, {gen.get()});
    std::string path = ::testing::TempDir() + "/berti_no_such_ckpt.bin";
    try {
        m.resumeFrom(path);
        FAIL() << "resume from a missing file must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
        EXPECT_EQ(e.path(), path);
    }
}

TEST(Checkpoint, UnsupportedPrefetcherRefusesWithReason)
{
    // BOP keeps a round-robin offset-scoring engine that has no
    // serialization hooks yet; the machine must say so up front.
    MachineConfig cfg = configFor("bop");
    const Workload &w = findWorkload("mcf-like.472");
    auto gen = w.make();
    Machine m(cfg, {gen.get()});

    std::string why;
    EXPECT_FALSE(m.checkpointSupported(&why));
    EXPECT_NE(why.find("bop"), std::string::npos) << why;

    try {
        (void)m.saveCheckpointBlob();
        FAIL() << "saving an uncheckpointable machine must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
    }
}

TEST(Checkpoint, HybridWithUncheckpointableChildRefusesWithReason)
{
    // A hybrid is only as checkpointable as its children: composing in
    // BOP must propagate the typed refusal instead of silently
    // dropping the child's learned state.
    MachineConfig cfg = configFor("hybrid(berti,bop)");
    const Workload &w = findWorkload("mcf-like.472");
    auto gen = w.make();
    Machine m(cfg, {gen.get()});

    std::string why;
    EXPECT_FALSE(m.checkpointSupported(&why));

    try {
        (void)m.saveCheckpointBlob();
        FAIL() << "saving an uncheckpointable hybrid must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
    }
}

TEST(Checkpoint, ConfigFingerprintMismatchRejected)
{
    const Workload &w = findWorkload("mcf-like.472");
    auto gen_a = w.make();
    Machine saver(configFor("berti"), {gen_a.get()});
    saver.run(kWarmup);
    std::string blob = saver.saveCheckpointBlob();

    auto gen_b = w.make();
    Machine other(configFor("none"), {gen_b.get()});
    EXPECT_NE(other.configFingerprint(), saver.configFingerprint());
    try {
        other.resumeFromBlob(blob);
        FAIL() << "resume on a different topology must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
        EXPECT_NE(e.reason().find("fingerprint"), std::string::npos)
            << e.reason();
    }
}

TEST(Checkpoint, CoreCountMismatchRejected)
{
    const Workload &w = findWorkload("mcf-like.472");
    auto gen_a = w.make();
    Machine saver(configFor("none"), {gen_a.get()});
    saver.run(kWarmup);
    std::string blob = saver.saveCheckpointBlob();

    auto gen_b = w.make();
    auto gen_c = w.make();
    Machine two(configFor("none", 2), {gen_b.get(), gen_c.get()});
    EXPECT_THROW(two.resumeFromBlob(blob), verify::SimError);
}

TEST(Checkpoint, NonPristineMachineRejectsResume)
{
    const Workload &w = findWorkload("mcf-like.472");
    auto gen_a = w.make();
    Machine saver(configFor("none"), {gen_a.get()});
    saver.run(kWarmup);
    std::string blob = saver.saveCheckpointBlob();

    auto gen_b = w.make();
    Machine ran(configFor("none"), {gen_b.get()});
    ran.run(100);
    try {
        ran.resumeFromBlob(blob);
        FAIL() << "resume into an already-run machine must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
        EXPECT_NE(e.reason().find("pristine"), std::string::npos)
            << e.reason();
    }
}

TEST(Checkpoint, CorruptBlobsRejectedBeforeAnyStateIsTouched)
{
    const Workload &w = findWorkload("mcf-like.472");
    auto gen_a = w.make();
    Machine saver(configFor("berti"), {gen_a.get()});
    saver.run(kWarmup);
    const std::string blob = saver.saveCheckpointBlob();

    auto rejects = [&](std::string bad, const std::string &what) {
        auto gen = w.make();
        Machine m(configFor("berti"), {gen.get()});
        try {
            m.resumeFromBlob(bad);
            FAIL() << what << ": corrupt blob accepted";
        } catch (const verify::SimError &e) {
            EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint) << what;
        }
        // Validation failed fast: the machine is still pristine, so a
        // restore from the good blob still succeeds afterwards.
        m.resumeFromBlob(blob);
    };

    rejects(std::string(), "empty blob");
    rejects(blob.substr(0, harness::kCheckpointHeaderBytes - 2),
            "truncated header");
    rejects(blob.substr(0, blob.size() / 2), "truncated payload");
    rejects(blob.substr(0, blob.size() - 1), "missing checksum byte");

    std::string flipped = blob;
    flipped[flipped.size() / 2] ^= 0x40;
    rejects(flipped, "bit flip in payload");

    std::string bad_magic = blob;
    bad_magic[0] ^= 0xFF;
    rejects(bad_magic, "bad magic");

    // Version skew: patch the version field, then re-stamp the trailing
    // checksum so the version check (not the checksum) must catch it.
    std::string bad_version = blob.substr(0, blob.size() - 8);
    bad_version[8] = static_cast<char>(harness::kCheckpointVersion + 1);
    std::uint64_t sum = sim::fnv1a64(bad_version);
    for (unsigned i = 0; i < 8; ++i)
        bad_version.push_back(static_cast<char>((sum >> (8 * i)) & 0xFF));
    auto gen = w.make();
    Machine m(configFor("berti"), {gen.get()});
    try {
        m.resumeFromBlob(bad_version);
        FAIL() << "version skew accepted";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
        EXPECT_NE(e.reason().find("version"), std::string::npos)
            << e.reason();
    }
}

TEST(Checkpoint, WallClockBudgetThrowsTypedTimeout)
{
    // A 1 ms budget cannot cover a 50M-instruction run; the deadline
    // probe must convert that into a typed Timeout instead of a hang.
    MachineConfig cfg = configFor("none");
    cfg.wallClockBudgetMs = 1;
    const Workload &w = findWorkload("mcf-like.472");
    auto gen = w.make();
    Machine m(cfg, {gen.get()});
    try {
        m.run(50'000'000);
        FAIL() << "run past the wall-clock budget must throw";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Timeout);
        EXPECT_FALSE(e.diagnostic().empty());
    }
}

} // namespace berti
