/** @file Cross-level hierarchy integration tests: writeback paths,
 *  fill-level semantics, multi-core sharing and contention. */

#include <gtest/gtest.h>

#include "core/berti.hh"
#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "sim/rng.hh"

namespace berti
{

namespace
{

SimParams
quick()
{
    SimParams p;
    p.warmupInstructions = 10000;
    p.measureInstructions = 60000;
    return p;
}

} // namespace

namespace
{

/** Stores scattered over a region far larger than the LLC. */
class ScatterStoreGen : public TraceGenerator
{
  public:
    TraceInstr
    next() override
    {
        // Read-modify-write so each instruction really waits for its
        // line (stores alone retire immediately and would outrun the
        // memory system before filling the hierarchy).
        TraceInstr in;
        in.ip = 0x400000;
        Addr addr = 0x50000000ull +
                    64ull * rng.nextBounded(3u << 14);  // 3 MB region
        in.load0 = addr;
        in.store = addr;
        return in;
    }

  private:
    Rng rng{77};
};

} // namespace

TEST(Hierarchy, DirtyDataDrainsToDram)
{
    // Scattered stores over an LLC-exceeding region must produce DRAM
    // writes via L1D -> L2 -> LLC writeback chains.
    ScatterStoreGen gen;
    Machine m(MachineConfig::sunnyCove(1), {&gen});
    m.run(60000);
    RunStats s = m.liveStats(0);
    EXPECT_GT(s.l1d.writebacks, 0u);
    EXPECT_GT(s.l2.writebacks, 0u);
    EXPECT_GT(s.llc.writebacks, 0u);
    EXPECT_GT(s.dram.writes, 0u);
}

TEST(Hierarchy, L2FillPrefetchesSkipL1d)
{
    // Force every Berti delta to the L2 class via a zero MSHR
    // watermark: L1D must see no prefetch fills while L2 does.
    BertiConfig cfg;
    cfg.mshrWatermark = 0.0;  // occupancy is never below zero
    SimResult r = simulate(findWorkload("stream-like.1"),
                           makeBertiSpec(cfg, "berti-l2only"), quick());
    EXPECT_EQ(r.roi.l1d.prefetchFills, 0u);
    EXPECT_GT(r.roi.l2.prefetchFills, 0u);
}

TEST(Hierarchy, L2FillsStillHelpPerformance)
{
    BertiConfig l2only;
    l2only.mshrWatermark = 0.0;
    SimResult none =
        simulate(findWorkload("stream-like.1"), makeSpec("none"), quick());
    SimResult l2 = simulate(findWorkload("stream-like.1"),
                            makeBertiSpec(l2only, "berti-l2only"),
                            quick());
    // L2 hits (~15 cycles) instead of DRAM (~250): solid gain even
    // without L1D fills.
    EXPECT_GT(l2.ipc, 1.05 * none.ipc);
}

TEST(Hierarchy, NonInclusive)
{
    // With a non-inclusive hierarchy an L1D-resident line need not be
    // in L2: L2 demand misses < L1D fills over a long LLC-hostile run.
    SimResult r = simulate(findWorkload("omnetpp-like.874"),
                           makeSpec("none"), quick());
    EXPECT_GT(r.roi.l1d.fills, 0u);
}

TEST(Hierarchy, SharedLlcScalesWithCores)
{
    ScriptedGen g0({TraceInstr{}}), g1({TraceInstr{}}),
        g2({TraceInstr{}}), g3({TraceInstr{}});
    // Single core: 2 MB LLC; 4 cores: 8 MB shared.
    {
        ScriptedGen g({TraceInstr{}});
        Machine m1(MachineConfig::sunnyCove(1), {&g});
        EXPECT_EQ(m1.sharedLlc().config().sets, 2048u);
    }
    Machine m4(MachineConfig::sunnyCove(4), {&g0, &g1, &g2, &g3});
    EXPECT_EQ(m4.sharedLlc().config().sets, 4u * 2048u);
    EXPECT_EQ(m4.sharedLlc().config().mshrs, 4u * 64u);
}

TEST(Hierarchy, MultiCoreContentionSlowsMemoryBoundCores)
{
    // The same memory-bound workload on 1 core vs on all 4: per-core
    // IPC must drop under shared DRAM contention (the effect behind
    // the paper's Figure 20 analysis).
    SimParams p = quick();
    const Workload &w = findWorkload("stream-like.1");
    SimResult solo = simulate(w, makeSpec("none"), p);
    auto quad = simulateMix({w, w, w, w}, makeSpec("none"), p);
    double quad_ipc = quad[0].ipc;
    EXPECT_LT(quad_ipc, solo.ipc);
}

TEST(Hierarchy, BertiHelpsUnderContention)
{
    // Paper section IV-I: Berti keeps its edge in 4-core mixes.
    SimParams p = quick();
    const Workload &w = findWorkload("stream-like.1");
    auto base = simulateMix({w, w, w, w}, makeSpec("ip-stride"), p);
    auto berti = simulateMix({w, w, w, w}, makeSpec("berti"), p);
    double base_g = 1.0, berti_g = 1.0;
    for (unsigned c = 0; c < 4; ++c) {
        base_g *= base[c].ipc;
        berti_g *= berti[c].ipc;
    }
    EXPECT_GT(berti_g, base_g);
}

TEST(Hierarchy, TranslationPathIsPerCore)
{
    ScriptedGen g0({TraceInstr{}}), g1({TraceInstr{}});
    Machine m(MachineConfig::sunnyCove(2), {&g0, &g1});
    // Same virtual address maps differently per core (per-core seed).
    Addr v = 0x12345678;
    EXPECT_NE(m.translation(0).pageTable().translate(v),
              m.translation(1).pageTable().translate(v));
}

TEST(Hierarchy, PrefetchRequestsCountedInLowerLevelTraffic)
{
    SimParams p = quick();
    const Workload &w = findWorkload("stream-like.1");
    SimResult none = simulate(w, makeSpec("none"), p);
    SimResult berti = simulate(w, makeSpec("berti"), p);
    // Berti's L2-fill prefetches surface as extra L1D->L2 requests.
    EXPECT_GT(berti.roi.l1d.requestsBelow, none.roi.l1d.requestsBelow);
    // ...but DRAM reads stay in the same ballpark (high accuracy: it
    // fetches what the demand stream would have fetched anyway).
    EXPECT_LT(berti.roi.dram.reads, none.roi.dram.reads * 3 / 2);
}

} // namespace berti
