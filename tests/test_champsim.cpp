/**
 * @file
 * ChampSim decoder battery: proves the real-trace ingestion pipeline
 * correct at every layer. An independent hand-written byte encoder
 * (sharing no code with the decoder) generates the corpus; from it the
 * battery checks byte-level round-trips against the checked-in
 * reference trace, the field mapping onto TraceInstr, exhaustive
 * truncation and garbage fuzzing (every malformed input is a typed
 * SimError(TraceIo) with a byte offset — no crash, no silent short
 * stream), fault-injection hooks, allocation-free steady-state decode,
 * and differential bit-identical SimResults across the mmap / stream /
 * preload source layers and across worker counts.
 *
 * Regenerate the checked-in reference after a deliberate recipe change:
 *   BERTI_UPDATE_CHAMPSIM_REF=1 ./test_champsim \
 *       --gtest_filter='*CheckedInReference*'
 * then recreate the .xz sibling with `xz -9 -k tests/data/mini.champsim`.
 */

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "sim/rng.hh"
#include "trace/champsim.hh"
#include "trace/registry.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"

// ------------------------------------------------------- allocation probe
// Same global operator new/delete override as test_simspeed.cpp: the
// zero-allocation steady-state tests assert the counter stays flat
// across sustained decode; everything else ignores it.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::atomic<std::uint64_t> g_heapAllocs{0};

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace berti
{

namespace
{

// ---------------------------------------------------- independent encoder
// Byte-level input_instr writer sharing no code with the production
// decoder: fields are shifted out by hand against the layout documented
// by ChampSim, so an encode/decode agreement really is two independent
// readings of the format.

void
putLe64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void
encodeRecord(std::vector<unsigned char> &out, const ChampSimRecord &r)
{
    std::size_t start = out.size();
    putLe64(out, r.ip);
    out.push_back(r.isBranch);
    out.push_back(r.branchTaken);
    for (unsigned i = 0; i < kChampSimNumDestinations; ++i)
        out.push_back(r.destRegisters[i]);
    for (unsigned i = 0; i < kChampSimNumSources; ++i)
        out.push_back(r.srcRegisters[i]);
    for (unsigned i = 0; i < kChampSimNumDestinations; ++i)
        putLe64(out, r.destMemory[i]);
    for (unsigned i = 0; i < kChampSimNumSources; ++i)
        putLe64(out, r.srcMemory[i]);
    ASSERT_EQ(out.size() - start, kChampSimRecordBytes);
}

std::vector<unsigned char>
encodeAll(const std::vector<ChampSimRecord> &records)
{
    std::vector<unsigned char> out;
    out.reserve(records.size() * kChampSimRecordBytes);
    for (const auto &r : records)
        encodeRecord(out, r);
    return out;
}

// -------------------------------------------------------- mini-trace recipe
// The deterministic recipe behind tests/data/mini.champsim: 48 records
// exercising plain ALU ops, single- and multi-source loads, stores,
// both branch outcomes, register-carried load dependence (including
// dependence surviving an intervening non-load), operands in late
// slots, and near-top-of-address-space values.

std::vector<ChampSimRecord>
miniTraceRecipe()
{
    std::vector<ChampSimRecord> recs;

    auto alu = [&](std::uint64_t ip) {
        ChampSimRecord r;
        r.ip = ip;
        recs.push_back(r);
    };
    auto load = [&](std::uint64_t ip, std::uint64_t addr,
                    std::uint8_t dest, std::uint8_t src = 0) {
        ChampSimRecord r;
        r.ip = ip;
        r.srcMemory[0] = addr;
        r.destRegisters[0] = dest;
        r.srcRegisters[0] = src;
        recs.push_back(r);
    };
    auto store = [&](std::uint64_t ip, std::uint64_t addr) {
        ChampSimRecord r;
        r.ip = ip;
        r.destMemory[0] = addr;
        recs.push_back(r);
    };
    auto branch = [&](std::uint64_t ip, bool taken) {
        ChampSimRecord r;
        r.ip = ip;
        r.isBranch = 1;
        r.branchTaken = taken ? 1 : 0;
        recs.push_back(r);
    };

    // Prologue: one of everything, hand-placed.
    alu(0x400000);
    load(0x400004, 0x10000040, /*dest=*/3);
    load(0x400008, 0x20000000, /*dest=*/4, /*src=*/3);  // dependent
    store(0x40000c, 0x30000080);
    branch(0x400010, true);
    branch(0x400014, false);

    // Multi-source load: both operands populated.
    {
        ChampSimRecord r;
        r.ip = 0x400018;
        r.srcMemory[0] = 0x11000000;
        r.srcMemory[1] = 0x11000040;
        r.destRegisters[0] = 5;
        recs.push_back(r);
    }
    // Operands only in late slots (0 = no operand must be skipped).
    {
        ChampSimRecord r;
        r.ip = 0x40001c;
        r.srcMemory[2] = 0x12000000;
        r.srcMemory[3] = 0x12000040;
        r.destMemory[1] = 0x13000000;
        r.destRegisters[1] = 6;
        recs.push_back(r);
    }
    // Load+store in one instruction, near the top of the address space.
    {
        ChampSimRecord r;
        r.ip = 0x400020;
        r.srcMemory[0] = 0xfffffffffffff000ull;
        r.destMemory[0] = 0xfffffffffffff040ull;
        r.srcRegisters[0] = 6;  // depends on the slot-1 dest above
        r.destRegisters[0] = 7;
        recs.push_back(r);
    }

    // Body: a deterministic pointer-chase-flavoured loop mixing all
    // kinds, driven by a fixed linear-congruential sequence.
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; recs.size() < 48; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        std::uint64_t ip = 0x401000 + 4 * static_cast<std::uint64_t>(i);
        switch (x % 5) {
          case 0:
            alu(ip);
            break;
          case 1:
            load(ip, 0x40000000 + (x % 4096) * 64,
                 static_cast<std::uint8_t>(1 + (x >> 8) % 31));
            break;
          case 2:
            load(ip, 0x50000000 + (x % 4096) * 64,
                 static_cast<std::uint8_t>(1 + (x >> 8) % 31),
                 static_cast<std::uint8_t>(1 + (x >> 16) % 31));
            break;
          case 3:
            store(ip, 0x60000000 + (x % 4096) * 64);
            break;
          default:
            branch(ip, (x >> 32) & 1);
            break;
        }
    }
    return recs;
}

std::string
dataPath(const char *name)
{
    return std::string(BERTI_CHAMPSIM_DATA) + "/" + name;
}

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/berti_" + tag +
           ".champsim";
}

void
writeBytes(const std::string &path, const std::vector<unsigned char> &b)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    if (!b.empty())
        ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
    ASSERT_EQ(std::fclose(f), 0);
}

std::vector<unsigned char>
readBytes(const std::string &path)
{
    std::vector<unsigned char> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    unsigned char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        out.insert(out.end(), chunk, chunk + n);
    std::fclose(f);
    return out;
}

/** Decode every instruction a source yields. */
std::vector<TraceInstr>
decodeAll(TraceSource &src, verify::FaultInjector *faults = nullptr)
{
    ChampSimDecoder dec(src, faults);
    std::vector<TraceInstr> out;
    TraceInstr instr;
    while (dec.next(instr))
        out.push_back(instr);
    return out;
}

bool
sameInstr(const TraceInstr &a, const TraceInstr &b)
{
    return a.ip == b.ip && a.load0 == b.load0 && a.load1 == b.load1 &&
           a.store == b.store && a.isBranch == b.isBranch &&
           a.taken == b.taken &&
           a.dependsOnPrevLoad == b.dependsOnPrevLoad;
}

/** Scoped environment override; restores the previous value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had = true;
            previous = old;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had)
            setenv(key, previous.c_str(), 1);
        else
            unsetenv(key);
    }

  private:
    const char *key;
    bool had = false;
    std::string previous;
};

} // namespace

// ========================================================== reference trace

TEST(ChampSimReference, CheckedInReferenceMatchesRecipe)
{
    std::vector<unsigned char> expect = encodeAll(miniTraceRecipe());
    std::string path = dataPath("mini.champsim");
    if (const char *u = std::getenv("BERTI_UPDATE_CHAMPSIM_REF");
        u && u[0] == '1') {
        writeBytes(path, expect);
        GTEST_SKIP() << "rewrote " << path << " ("
                     << expect.size() << " bytes); recreate the .xz "
                     << "sibling with: xz -9 -k -f " << path;
    }
    std::vector<unsigned char> actual = readBytes(path);
    ASSERT_FALSE(actual.empty())
        << path << " missing — regenerate with BERTI_UPDATE_CHAMPSIM_REF=1";
    EXPECT_EQ(actual, expect)
        << "checked-in reference drifted from the recipe";
}

TEST(ChampSimReference, XzSiblingDecodesToTheSameStream)
{
    std::string raw = dataPath("mini.champsim");
    std::string xz = dataPath("mini.champsim.xz");
    MmapTraceSource rawSrc(raw);
    std::vector<TraceInstr> expect = decodeAll(rawSrc);
    ASSERT_EQ(expect.size(), 48u);

    std::unique_ptr<StreamTraceSource> xzSrc;
    try {
        xzSrc = std::make_unique<StreamTraceSource>(xz);
    } catch (const verify::SimError &e) {
        // Hosts without an xz tool get the typed fallback; the raw-file
        // battery still covers the decoder.
        if (std::string(e.reason()).find("unavailable") !=
            std::string::npos)
            GTEST_SKIP() << e.what();
        throw;
    }
    std::vector<TraceInstr> got = decodeAll(*xzSrc);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(sameInstr(got[i], expect[i])) << "record " << i;
}

// ============================================================== round trip

TEST(ChampSimDecode, RoundTripIsBitIdentical)
{
    // decode(encode(recipe)) re-encoded by the independent encoder must
    // reproduce the input bytes exactly — every field survives.
    std::vector<ChampSimRecord> recipe = miniTraceRecipe();
    std::vector<unsigned char> bytes = encodeAll(recipe);
    PreloadedTraceSource src(bytes, "recipe");
    ChampSimDecoder dec(src);
    std::vector<ChampSimRecord> decoded;
    ChampSimRecord r;
    while (dec.nextRecord(r))
        decoded.push_back(r);
    ASSERT_EQ(decoded.size(), recipe.size());
    EXPECT_EQ(dec.recordsDecoded(), recipe.size());
    std::vector<unsigned char> reencoded = encodeAll(decoded);
    EXPECT_EQ(reencoded, bytes);
}

TEST(ChampSimDecode, FieldMappingOntoTraceInstr)
{
    std::vector<ChampSimRecord> recs = miniTraceRecipe();
    std::vector<unsigned char> bytes = encodeAll(recs);
    PreloadedTraceSource src(bytes, "recipe");
    std::vector<TraceInstr> got = decodeAll(src);
    ASSERT_EQ(got.size(), 48u);

    // Record 0: pure ALU — no operands at all.
    EXPECT_EQ(got[0].ip, 0x400000u);
    EXPECT_FALSE(got[0].isMem());
    EXPECT_FALSE(got[0].isBranch);

    // Record 1: simple load.
    EXPECT_EQ(got[1].load0, 0x10000040u);
    EXPECT_EQ(got[1].load1, kNoAddr);
    EXPECT_EQ(got[1].store, kNoAddr);
    EXPECT_FALSE(got[1].dependsOnPrevLoad);

    // Record 2 reads register 3, which record 1 wrote: pointer chase.
    EXPECT_TRUE(got[2].dependsOnPrevLoad);

    // Record 3: store only.
    EXPECT_FALSE(got[3].isLoad());
    EXPECT_EQ(got[3].store, 0x30000080u);

    // Records 4/5: branch outcomes.
    EXPECT_TRUE(got[4].isBranch);
    EXPECT_TRUE(got[4].taken);
    EXPECT_TRUE(got[5].isBranch);
    EXPECT_FALSE(got[5].taken);

    // Record 6: two source-memory slots -> load0/load1 in order.
    EXPECT_EQ(got[6].load0, 0x11000000u);
    EXPECT_EQ(got[6].load1, 0x11000040u);

    // Record 7: operands only in late slots; zeros are skipped.
    EXPECT_EQ(got[7].load0, 0x12000000u);
    EXPECT_EQ(got[7].load1, 0x12000040u);
    EXPECT_EQ(got[7].store, 0x13000000u);

    // Record 8: load+store; its source register 6 was written by the
    // most recent earlier *load* (record 7) — dependence holds.
    EXPECT_EQ(got[8].load0, 0xfffffffffffff000ull);
    EXPECT_EQ(got[8].store, 0xfffffffffffff040ull);
    EXPECT_TRUE(got[8].dependsOnPrevLoad);
}

TEST(ChampSimDecode, DependenceSurvivesInterveningNonLoads)
{
    // load r9 ... store ... branch ... load r9-sourced: ChampSim's
    // register encoding carries the dependence across non-loads, which
    // never overwrite the last-load destination set.
    std::vector<ChampSimRecord> recs(4);
    recs[0].ip = 0x1000;
    recs[0].srcMemory[0] = 0xA000;
    recs[0].destRegisters[0] = 9;
    recs[1].ip = 0x1004;
    recs[1].destMemory[0] = 0xB000;
    recs[1].srcRegisters[0] = 9;  // store reading r9: not a load
    recs[2].ip = 0x1008;
    recs[2].isBranch = 1;
    recs[3].ip = 0x100c;
    recs[3].srcMemory[0] = 0xC000;
    recs[3].srcRegisters[1] = 9;  // late source slot
    std::vector<unsigned char> bytes = encodeAll(recs);
    PreloadedTraceSource src(bytes, "chase");
    std::vector<TraceInstr> got = decodeAll(src);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_FALSE(got[1].dependsOnPrevLoad);  // stores never flag it
    EXPECT_TRUE(got[3].dependsOnPrevLoad);
}

// ============================================================ fuzz battery

TEST(ChampSimFuzz, EveryTruncationPointReportsARecordStartOffset)
{
    // Cut the 8-record corpus at *every* byte 1..size-1. Cuts on a
    // record boundary are a clean (shorter) trace; every other cut is a
    // typed SimError whose offset is the start of the incomplete
    // record. Nothing crashes, nothing silently truncates.
    std::vector<ChampSimRecord> recipe = miniTraceRecipe();
    recipe.resize(8);
    std::vector<unsigned char> bytes = encodeAll(recipe);
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        std::vector<unsigned char> chopped(bytes.begin(),
                                           bytes.begin() + cut);
        PreloadedTraceSource src(std::move(chopped), "chopped");
        ChampSimDecoder dec(src);
        TraceInstr instr;
        if (cut % kChampSimRecordBytes == 0) {
            std::size_t n = 0;
            while (dec.next(instr))
                ++n;
            EXPECT_EQ(n, cut / kChampSimRecordBytes) << "cut=" << cut;
        } else {
            try {
                while (dec.next(instr)) {
                }
                FAIL() << "cut=" << cut << " decoded cleanly";
            } catch (const verify::SimError &e) {
                EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
                EXPECT_EQ(e.offset(), (cut / kChampSimRecordBytes) *
                                          kChampSimRecordBytes)
                    << "cut=" << cut;
                EXPECT_NE(std::string(e.reason()).find("truncated"),
                          std::string::npos);
            }
        }
    }
}

TEST(ChampSimFuzz, ArbitraryBytesNeverCrashTheDecoder)
{
    // The format has no header, so *any* whole number of 64-byte
    // records must parse; any remainder must be a typed error. Sizes
    // and payloads are drawn from the deterministic test Rng — on
    // failure the iteration index pins down the reproducer.
    Rng rng(0xcafef00du);
    for (int iter = 0; iter < 200; ++iter) {
        std::size_t size = static_cast<std::size_t>(rng.nextBounded(
            8 * kChampSimRecordBytes + kChampSimRecordBytes - 1));
        std::vector<unsigned char> bytes(size);
        for (auto &b : bytes)
            b = static_cast<unsigned char>(rng.nextBounded(256));
        PreloadedTraceSource src(std::move(bytes), "garbage");
        ChampSimDecoder dec(src);
        TraceInstr instr;
        if (size % kChampSimRecordBytes == 0) {
            std::size_t n = 0;
            while (dec.next(instr))
                ++n;
            EXPECT_EQ(n, size / kChampSimRecordBytes)
                << "iter=" << iter << " size=" << size;
        } else {
            EXPECT_THROW(
                {
                    while (dec.next(instr)) {
                    }
                },
                verify::SimError)
                << "iter=" << iter << " size=" << size;
        }
    }
}

TEST(ChampSimFuzz, InjectedTruncationIsTheSameTypedError)
{
    std::vector<unsigned char> bytes = encodeAll(miniTraceRecipe());
    verify::FaultConfig cfg;
    cfg.traceTruncateRate = 1.0;
    verify::FaultInjector faults(cfg);
    PreloadedTraceSource src(bytes, "inject");
    ChampSimDecoder dec(src, &faults);
    TraceInstr instr;
    try {
        dec.next(instr);
        FAIL() << "expected injected truncation";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_NE(std::string(e.reason()).find("injected truncation"),
                  std::string::npos);
    }
    EXPECT_EQ(faults.stats().traceTruncations, 1u);
}

TEST(ChampSimFuzz, GarbageInjectionRewritesRecordsButAlwaysParses)
{
    std::vector<unsigned char> bytes = encodeAll(miniTraceRecipe());
    verify::FaultConfig cfg;
    cfg.traceGarbageRate = 1.0;
    verify::FaultInjector faults(cfg);
    PreloadedTraceSource src(bytes, "garbage-inject");
    std::vector<TraceInstr> got = decodeAll(src, &faults);
    EXPECT_EQ(got.size(), 48u);  // garbage records still parse
    EXPECT_EQ(faults.stats().traceGarbageRecords, 48u);

    // The injector mutates a scratch copy: the underlying bytes (and a
    // clean re-decode) are untouched.
    PreloadedTraceSource clean(bytes, "clean");
    std::vector<TraceInstr> fresh = decodeAll(clean);
    ASSERT_EQ(fresh.size(), 48u);
    EXPECT_EQ(fresh[1].load0, 0x10000040u);
}

// ===================================================== source-layer parity

TEST(ChampSimSources, AllThreeLayersYieldTheSameStream)
{
    std::vector<unsigned char> bytes = encodeAll(miniTraceRecipe());
    std::string path = tempPath("parity");
    writeBytes(path, bytes);

    MmapTraceSource mmapSrc(path);
    StreamTraceSource streamSrc(path);
    PreloadedTraceSource preSrc(path);
    std::vector<TraceInstr> a = decodeAll(mmapSrc);
    std::vector<TraceInstr> b = decodeAll(streamSrc);
    std::vector<TraceInstr> c = decodeAll(preSrc);
    ASSERT_EQ(a.size(), 48u);
    ASSERT_EQ(b.size(), a.size());
    ASSERT_EQ(c.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(sameInstr(a[i], b[i])) << i;
        EXPECT_TRUE(sameInstr(a[i], c[i])) << i;
    }

    // Rewind restarts every layer identically, including the
    // register-dependence tracking — the stream source above is at EOF
    // and must reopen from byte 0.
    ChampSimDecoder dec(streamSrc);
    dec.rewind();
    TraceInstr first;
    ASSERT_TRUE(dec.next(first));
    dec.rewind();
    TraceInstr again;
    ASSERT_TRUE(dec.next(again));
    EXPECT_TRUE(sameInstr(first, again));
    std::remove(path.c_str());
}

TEST(ChampSimSources, StreamRefillCrossesBufferBoundaries)
{
    // A buffer far smaller than the stream, and not a multiple of the
    // record size, forces mid-record refills + memmove compaction.
    std::vector<ChampSimRecord> recs(257);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].srcMemory[0] = 0x4000 + 64 * i;
    }
    std::vector<unsigned char> bytes = encodeAll(recs);
    std::string path = tempPath("refill");
    writeBytes(path, bytes);
    StreamTraceSource src(path, TraceCompression::None,
                          /*bufferBytes=*/200);
    std::vector<TraceInstr> got = decodeAll(src);
    ASSERT_EQ(got.size(), recs.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i].load0, 0x4000 + 64 * i) << i;
    std::remove(path.c_str());
}

TEST(ChampSimSources, MissingFileAndEmptyFileAreTypedErrors)
{
    EXPECT_THROW(MmapTraceSource("/nonexistent/x.champsim"),
                 verify::SimError);
    EXPECT_THROW(StreamTraceSource("/nonexistent/x.champsim"),
                 verify::SimError);
    EXPECT_THROW(PreloadedTraceSource("/nonexistent/x.champsim"),
                 verify::SimError);

    std::string path = tempPath("emptyfile");
    writeBytes(path, {});
    try {
        ChampSimReplayGen gen(path);
        FAIL() << "empty trace must not replay";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_NE(std::string(e.reason()).find("no instructions"),
                  std::string::npos);
    }

    // A sub-record file fails construction with the truncation error.
    std::vector<unsigned char> stub(30, 0xab);
    writeBytes(path, stub);
    try {
        ChampSimReplayGen gen(path);
        FAIL() << "sub-record trace must not replay";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_NE(std::string(e.reason()).find("truncated"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(ChampSimSources, PathClassification)
{
    EXPECT_TRUE(isChampSimTracePath("/t/a.champsim"));
    EXPECT_TRUE(isChampSimTracePath("/t/a.champsim.xz"));
    EXPECT_TRUE(isChampSimTracePath("/t/a.champsim.gz"));
    EXPECT_FALSE(isChampSimTracePath("/t/a.trace"));
    EXPECT_FALSE(isChampSimTracePath("/t/a.xz"));
    EXPECT_EQ(compressionForPath("a.champsim"), TraceCompression::None);
    EXPECT_EQ(compressionForPath("a.champsim.xz"), TraceCompression::Xz);
    EXPECT_EQ(compressionForPath("a.champsim.gz"),
              TraceCompression::Gzip);
}

// ================================================== zero-allocation decode

TEST(ChampSimAlloc, SteadyStateDecodeIsAllocationFree)
{
    // Large enough that the stream source must refill several times
    // (buffer is 256 KiB): 16384 records = 1 MiB.
    std::vector<ChampSimRecord> recs(16384);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * (i % 512);
        recs[i].srcMemory[0] = 0x4000 + 64 * (i % 1024);
    }
    std::vector<unsigned char> bytes = encodeAll(recs);
    std::string path = tempPath("alloc");
    writeBytes(path, bytes);

    for (auto kind : {ChampSimReplayGen::SourceKind::Mmap,
                      ChampSimReplayGen::SourceKind::Stream,
                      ChampSimReplayGen::SourceKind::Preload}) {
        std::unique_ptr<TraceSource> src;
        switch (kind) {
          case ChampSimReplayGen::SourceKind::Mmap:
            src = std::make_unique<MmapTraceSource>(path);
            break;
          case ChampSimReplayGen::SourceKind::Stream:
            src = std::make_unique<StreamTraceSource>(path);
            break;
          default:
            src = std::make_unique<PreloadedTraceSource>(path);
            break;
        }
        ChampSimDecoder dec(*src);
        TraceInstr instr;
        // Warm: first record may fault pages / prime the buffer.
        ASSERT_TRUE(dec.next(instr));
        std::uint64_t before = g_heapAllocs.load();
        while (dec.next(instr)) {
        }
        std::uint64_t after = g_heapAllocs.load();
        EXPECT_EQ(after, before)
            << "source kind " << static_cast<int>(kind)
            << " allocated during steady-state decode";
        EXPECT_EQ(dec.recordsDecoded(), recs.size());
    }

    // Cyclic replay through the mmap layer stays allocation-free even
    // across the wrap (rewind is a cursor reset, not a reopen).
    ChampSimReplayGen gen(path, ChampSimReplayGen::SourceKind::Mmap);
    for (int i = 0; i < 100; ++i)
        (void)gen.next();
    std::uint64_t before = g_heapAllocs.load();
    for (std::size_t i = 0; i < 2 * recs.size(); ++i)
        (void)gen.next();
    EXPECT_EQ(g_heapAllocs.load(), before);
    EXPECT_EQ(gen.traceLength(), recs.size());
    std::remove(path.c_str());
}

// ===================================================== registry + store key

TEST(ChampSimRegistry, FileUriResolvesAnywhereAWorkloadNameDoes)
{
    std::vector<unsigned char> bytes = encodeAll(miniTraceRecipe());
    std::string path = tempPath("registry");
    writeBytes(path, bytes);
    Workload w = resolveWorkload("file:" + path);
    EXPECT_EQ(w.suite, "file");
    EXPECT_EQ(w.name, "file:" + path);
    EXPECT_NE(w.contentHash, 0u);
    auto gen = w.make();
    TraceInstr first = gen->next();
    EXPECT_EQ(first.ip, 0x400000u);

    // Registry names still resolve through the same entry point, with
    // no content hash.
    Workload synth = resolveWorkload("mcf-like.1554");
    EXPECT_EQ(synth.suite, "spec");
    EXPECT_EQ(synth.contentHash, 0u);
    std::remove(path.c_str());
}

TEST(ChampSimRegistry, MalformedUrisAreTypedConfigErrors)
{
    auto expectConfig = [](const std::string &uri,
                           const std::string &needle) {
        try {
            resolveWorkload(uri);
            FAIL() << uri << " resolved";
        } catch (const verify::SimError &e) {
            EXPECT_EQ(e.kind(), verify::ErrorKind::Config) << uri;
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << uri << " -> " << e.what();
        }
    };
    // The offending string is named in the error.
    expectConfig("file:", "file:");
    expectConfig("file:/t/a.bin", "file:/t/a.bin");
    expectConfig("no-such-workload", "no-such-workload");

    // A well-formed URI to an unreadable file is an I/O error, not a
    // config error.
    try {
        resolveWorkload("file:/nonexistent/x.champsim");
        FAIL() << "resolved a nonexistent trace";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::TraceIo);
        EXPECT_EQ(e.path(), "/nonexistent/x.champsim");
    }
}

TEST(ChampSimRegistry, StoreKeyFoldsTraceContentHash)
{
    std::vector<unsigned char> bytes = encodeAll(miniTraceRecipe());
    std::string path = tempPath("storekey");
    writeBytes(path, bytes);
    SimParams params;
    Workload w1 = resolveWorkload("file:" + path);
    harness::StoreKey k1 = harness::makeStoreKey(w1, "berti", params);
    EXPECT_EQ(k1.contentHash, w1.contentHash);
    EXPECT_NE(k1.describe().find("content="), std::string::npos);

    // Same path, different bytes: the key must change even though
    // every string coordinate is identical.
    bytes[100] ^= 0xff;
    writeBytes(path, bytes);
    Workload w2 = resolveWorkload("file:" + path);
    harness::StoreKey k2 = harness::makeStoreKey(w2, "berti", params);
    EXPECT_NE(w1.contentHash, w2.contentHash);
    EXPECT_NE(k1.hash(), k2.hash());

    // Synthetic workloads keep their historical keys: the Workload
    // overload and the legacy string overload agree bit for bit.
    Workload synth = resolveWorkload("mcf-like.1554");
    harness::StoreKey ks =
        harness::makeStoreKey(synth, "berti", params);
    harness::StoreKey legacy =
        harness::makeStoreKey("mcf-like.1554", "berti", params);
    EXPECT_EQ(ks.hash(), legacy.hash());
    EXPECT_EQ(ks.describe().find("content="), std::string::npos);
    std::remove(path.c_str());
}

TEST(ChampSimRegistry, FileContentHashIsStableAndTyped)
{
    std::string path = tempPath("hash");
    writeBytes(path, {1, 2, 3, 4});
    auto h1 = fileContentHash(path);
    ASSERT_TRUE(h1.ok());
    auto h2 = fileContentHash(path);
    ASSERT_TRUE(h2.ok());
    EXPECT_EQ(h1.value(), h2.value());
    writeBytes(path, {1, 2, 3, 5});
    auto h3 = fileContentHash(path);
    ASSERT_TRUE(h3.ok());
    EXPECT_NE(h1.value(), h3.value());
    auto missing = fileContentHash("/nonexistent/x");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().kind(), verify::ErrorKind::TraceIo);
    std::remove(path.c_str());
}

// ====================================================== differential matrix

TEST(ChampSimDifferential, SimResultsBitIdenticalAcrossSourceLayers)
{
    // The same trace simulated through mmap, stream and preload sources
    // must produce byte-identical exported snapshots — the source layer
    // is invisible to the machine.
    std::string path = dataPath("mini.champsim");
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 10000;
    PrefetcherSpec spec = makeSpec("berti");

    std::vector<std::string> docs;
    for (auto kind : {ChampSimReplayGen::SourceKind::Mmap,
                      ChampSimReplayGen::SourceKind::Stream,
                      ChampSimReplayGen::SourceKind::Preload}) {
        Workload w;
        w.name = "file:" + path;
        w.suite = "file";
        w.make = [path, kind]() -> std::unique_ptr<TraceGenerator> {
            return std::make_unique<ChampSimReplayGen>(path, kind);
        };
        SimResult r = simulate(w, spec, params);
        EXPECT_GT(r.ipc, 0.0);
        docs.push_back(obs::toJson(resultSnapshot(r)));
    }
    EXPECT_EQ(docs[0], docs[1]) << "mmap vs stream diverged";
    EXPECT_EQ(docs[0], docs[2]) << "mmap vs preload diverged";
}

TEST(ChampSimDifferential, WorkerCountDoesNotPerturbFileWorkloads)
{
    std::string path = dataPath("mini.champsim");
    Workload w = resolveWorkload("file:" + path);
    Workload synth = findWorkload("mcf-like.1554");
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 8000;
    std::vector<Workload> workloads = {w, synth};
    std::vector<PrefetcherSpec> specs = {makeSpec("none"),
                                         makeSpec("berti")};
    auto one = runMatrixParallel(workloads, specs, params, /*jobs=*/1);
    auto two = runMatrixParallel(workloads, specs, params, /*jobs=*/2);
    ASSERT_EQ(one.size(), two.size());
    for (std::size_t s = 0; s < one.size(); ++s) {
        for (std::size_t i = 0; i < one[s].size(); ++i) {
            EXPECT_EQ(obs::toJson(resultSnapshot(one[s][i])),
                      obs::toJson(resultSnapshot(two[s][i])))
                << "spec " << s << " workload " << i;
        }
    }
}

TEST(ChampSimDifferential, BenchTraceWorkloadListRidesAlong)
{
    // The BERTI_TRACE_WORKLOADS hook the benches use: bare paths are
    // promoted to file: URIs and resolve to replayable workloads.
    std::string path = dataPath("mini.champsim");
    ScopedEnv env("BERTI_TRACE_WORKLOADS", path.c_str());
    sim::SimOptions opt = sim::SimOptions::fromEnv();
    EXPECT_EQ(opt.traceWorkloads, path);
    Workload w = resolveWorkload("file:" + opt.traceWorkloads);
    EXPECT_EQ(w.suite, "file");
    auto gen = w.make();
    EXPECT_EQ(gen->next().ip, 0x400000u);
}

} // namespace berti
