/**
 * @file
 * Supervised-sweep tests: retry with backoff, quarantine with typed
 * per-cell errors and graceful degradation of the rest of the matrix,
 * store-backed resume serving bit-identical results, the quarantine
 * skip/rerun tiers, and the wall-clock deadline surfacing as a typed
 * Timeout.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_store.hh"
#include "harness/supervisor.hh"
#include "obs/export.hh"
#include "trace/registry.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"

namespace berti::harness
{

namespace
{

SimParams
quick()
{
    SimParams p;
    p.warmupInstructions = 2000;
    p.measureInstructions = 10000;
    return p;
}

std::string
freshDir(const std::string &name)
{
    return ::testing::TempDir() + "/" + name + "." +
           std::to_string(::getpid());
}

std::vector<Workload>
workloadsByName(const std::vector<std::string> &names)
{
    std::vector<Workload> out;
    for (const std::string &n : names)
        out.push_back(findWorkload(n));
    return out;
}

std::vector<PrefetcherSpec>
specsByName(const std::vector<std::string> &names)
{
    std::vector<PrefetcherSpec> out;
    for (const std::string &n : names)
        out.push_back(makeSpec(n));
    return out;
}

const CellResult &
cellOf(const SweepReport &report, const std::string &spec,
       const std::string &workload)
{
    for (std::size_t s = 0; s < report.specs.size(); ++s) {
        for (std::size_t w = 0; w < report.workloads.size(); ++w) {
            if (report.specs[s] == spec && report.workloads[w] == workload)
                return report.cells[s][w];
        }
    }
    throw std::out_of_range(spec + "/" + workload);
}

} // namespace

TEST(Supervisor, ZeroAttemptsIsStructuralMisuse)
{
    SupervisorConfig cfg;
    cfg.maxAttempts = 0;
    EXPECT_THROW(runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                                     specsByName({"none"}), quick(), cfg),
                 verify::SimError);
}

TEST(Supervisor, TransientFailureIsRetriedWithBackoffThenSucceeds)
{
    SupervisorConfig cfg;
    cfg.maxAttempts = 3;
    cfg.backoffBaseMs = 1;
    cfg.preAttempt = [](const std::string &, const std::string &,
                        unsigned attempt) {
        if (attempt < 3) {
            throw verify::SimError(verify::ErrorKind::Fault, "test",
                                   "transient failure " +
                                       std::to_string(attempt));
        }
    };

    SweepReport report =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), quick(), cfg);
    const CellResult &cell = cellOf(report, "none", "mcf-like.472");
    EXPECT_EQ(cell.outcome, CellOutcome::Computed);
    EXPECT_EQ(cell.attempts, 3u);
    // Backoff before retries 2 and 3: 1 ms + 2 ms.
    EXPECT_EQ(cell.backoffMsTotal, 3u);
    EXPECT_TRUE(report.allOk());
}

TEST(Supervisor, BackoffSaturatesAtMaxForHugeBase)
{
    // backoffBaseMs << shift wraps std::uint64_t long before shift 63
    // when the base is large; the cap must be applied before shifting.
    // With this base, the un-capped shift for retry 3 wrapped to 2 ms,
    // collapsing the "capped" backoff to nearly nothing.
    SupervisorConfig cfg;
    cfg.maxAttempts = 3;
    cfg.backoffBaseMs = (1ull << 63) + 1;
    cfg.backoffMaxMs = 7;
    cfg.preAttempt = [](const std::string &, const std::string &,
                        unsigned) {
        throw verify::SimError(verify::ErrorKind::Fault, "test",
                               "always fails");
    };

    SweepReport report =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), quick(), cfg);
    const CellResult &cell = cellOf(report, "none", "mcf-like.472");
    EXPECT_EQ(cell.outcome, CellOutcome::Quarantined);
    EXPECT_EQ(cell.attempts, 3u);
    // Both retries wait the full cap: 7 ms + 7 ms.
    EXPECT_EQ(cell.backoffMsTotal, 14u);
}

TEST(Supervisor, StoreCombinedWithFaultInjectionIsRefused)
{
    // paramsFingerprint cannot see the fault injector, so a perturbed
    // cell would be cached under the clean key and served to later
    // clean sweeps. The supervisor refuses the combination outright.
    ResultStore store(freshDir("berti_sup_faults"));
    verify::FaultInjector faults;  // even an all-zero-rate injector
    SimParams params = quick();
    params.faults = &faults;

    SupervisorConfig cfg;
    cfg.store = &store;
    try {
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), params, cfg);
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(e.reason().find("fault injection"), std::string::npos)
            << e.reason();
    }
    // Nothing was simulated or cached under a poisoned key.
    EXPECT_FALSE(
        store.contains(makeStoreKey("mcf-like.472", "none", params)));

    // The same campaign without a store is allowed (and runs jobs=1).
    cfg.store = nullptr;
    SweepReport report =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), params, cfg);
    EXPECT_TRUE(report.allOk());
}

TEST(Supervisor, PersistentFailureIsQuarantinedWithoutFailingTheRest)
{
    ResultStore store(freshDir("berti_sup_quar"));
    SupervisorConfig cfg;
    cfg.maxAttempts = 2;
    cfg.backoffBaseMs = 1;
    cfg.store = &store;
    cfg.preAttempt = [](const std::string &workload, const std::string &spec,
                        unsigned) {
        if (spec == "berti" && workload == "mcf-like.472") {
            throw verify::SimError(verify::ErrorKind::Fault, "test",
                                   "deterministic crash");
        }
    };

    SweepReport report = runSupervisedMatrix(
        workloadsByName({"mcf-like.472", "cactu-like.709"}),
        specsByName({"none", "berti"}), quick(), cfg);

    // Graceful degradation: the poisoned cell carries its typed error,
    // every other cell completed normally.
    const CellResult &bad = cellOf(report, "berti", "mcf-like.472");
    EXPECT_EQ(bad.outcome, CellOutcome::Quarantined);
    EXPECT_EQ(bad.attempts, 2u);
    ASSERT_TRUE(bad.error.has);
    EXPECT_EQ(bad.error.kind, verify::ErrorKind::Fault);
    EXPECT_NE(bad.error.reason.find("deterministic crash"),
              std::string::npos);

    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.computed, 3u);
    EXPECT_FALSE(report.allOk());

    // The on-disk marker records the failure for the next sweep.
    StoreKey key = makeStoreKey("mcf-like.472", "berti", quick());
    auto marker = store.loadQuarantine(key);
    ASSERT_TRUE(marker.has_value());
    EXPECT_NE(marker->find("deterministic crash"), std::string::npos);
}

TEST(Supervisor, QuarantinedCellsAreSkippedUntilRerunFailed)
{
    ResultStore store(freshDir("berti_sup_rerun"));
    StoreKey key = makeStoreKey("mcf-like.472", "none", quick());
    store.markQuarantined(key, "fault from an earlier sweep");

    SupervisorConfig cfg;
    cfg.store = &store;
    SweepReport skipped =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), quick(), cfg);
    const CellResult &cell = cellOf(skipped, "none", "mcf-like.472");
    EXPECT_EQ(cell.outcome, CellOutcome::SkippedQuarantined);
    EXPECT_EQ(cell.attempts, 0u);
    EXPECT_NE(cell.error.reason.find("earlier sweep"), std::string::npos);

    cfg.rerunFailed = true;
    SweepReport rerun =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), quick(), cfg);
    EXPECT_EQ(cellOf(rerun, "none", "mcf-like.472").outcome,
              CellOutcome::Computed);
    // Success lifted the marker.
    EXPECT_FALSE(store.loadQuarantine(key).has_value());
}

TEST(Supervisor, StoreResumeServesBitIdenticalResults)
{
    ResultStore store(freshDir("berti_sup_resume"));
    SupervisorConfig cfg;
    cfg.store = &store;
    auto workloads = workloadsByName({"mcf-like.472", "cactu-like.709"});
    auto specs = specsByName({"none", "berti"});

    SweepReport first =
        runSupervisedMatrix(workloads, specs, quick(), cfg);
    EXPECT_EQ(first.computed, 4u);
    EXPECT_EQ(first.fromStore, 0u);

    // The "resumed" sweep recomputes nothing and its per-cell exports
    // are byte-identical to the uninterrupted run's.
    std::atomic<unsigned> attempts{0};
    cfg.preAttempt = [&attempts](const std::string &, const std::string &,
                                 unsigned) { ++attempts; };
    SweepReport second =
        runSupervisedMatrix(workloads, specs, quick(), cfg);
    EXPECT_EQ(second.fromStore, 4u);
    EXPECT_EQ(second.computed, 0u);
    EXPECT_EQ(attempts.load(), 0u);

    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            EXPECT_EQ(
                obs::toJson(resultSnapshot(second.cells[s][w].result)),
                obs::toJson(resultSnapshot(first.cells[s][w].result)))
                << specs[s].name << "/" << workloads[w].name;
        }
    }
}

TEST(Supervisor, WallClockDeadlineBecomesTypedTimeout)
{
    SimParams params;
    params.warmupInstructions = 1000;
    params.measureInstructions = 50'000'000;  // cannot finish in 1 ms
    params.wallClockBudgetMs = 1;

    SupervisorConfig cfg;
    cfg.maxAttempts = 1;
    SweepReport report =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), params, cfg);
    const CellResult &cell = cellOf(report, "none", "mcf-like.472");
    EXPECT_EQ(cell.outcome, CellOutcome::Quarantined);
    ASSERT_TRUE(cell.error.has);
    EXPECT_EQ(cell.error.kind, verify::ErrorKind::Timeout);
    EXPECT_NE(cell.error.reason.find("wall-clock"), std::string::npos);
}

TEST(Supervisor, NonSimErrorExceptionsAreTypedAsWorkerFailures)
{
    SupervisorConfig cfg;
    cfg.maxAttempts = 1;
    cfg.preAttempt = [](const std::string &, const std::string &,
                        unsigned) {
        throw std::runtime_error("worker fell over");
    };
    SweepReport report =
        runSupervisedMatrix(workloadsByName({"mcf-like.472"}),
                            specsByName({"none"}), quick(), cfg);
    const CellResult &cell = cellOf(report, "none", "mcf-like.472");
    EXPECT_EQ(cell.outcome, CellOutcome::Quarantined);
    EXPECT_EQ(cell.error.kind, verify::ErrorKind::Worker);
    EXPECT_NE(cell.error.reason.find("fell over"), std::string::npos);
}

} // namespace berti::harness
