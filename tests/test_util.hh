/**
 * @file
 * Shared test helpers: a scripted prefetch port that records issued
 * requests, and a fixed-latency backing memory for driving a Cache in
 * isolation.
 */

#ifndef BERTI_TESTS_TEST_UTIL_HH
#define BERTI_TESTS_TEST_UTIL_HH

#include <deque>
#include <vector>

#include "mem/cache.hh"
#include "prefetch/prefetcher.hh"

namespace berti::test
{

/** Records every prefetch a prefetcher under test issues. */
class RecordingPort : public PrefetchPort
{
  public:
    struct Issue
    {
        Addr line;
        FillLevel level;
    };

    bool
    issuePrefetch(Addr line, FillLevel level) override
    {
        issues.push_back({line, level});
        return accept;
    }

    double mshrOccupancy() const override { return occupancy; }
    Cycle now() const override { return time; }

    /** Count issues targeting one line. */
    std::size_t
    countFor(Addr line) const
    {
        std::size_t n = 0;
        for (const auto &i : issues) {
            if (i.line == line)
                ++n;
        }
        return n;
    }

    bool
    hasIssue(Addr line) const
    {
        return countFor(line) > 0;
    }

    std::vector<Issue> issues;
    double occupancy = 0.0;
    Cycle time = 0;
    bool accept = true;
};

/**
 * Fixed-latency backing store standing in for the rest of the
 * hierarchy below a Cache under test.
 */
class TestMemory : public MemLevel
{
  public:
    explicit TestMemory(const Cycle *clock, Cycle latency = 100)
        : clock(clock), latency(latency)
    {}

    bool
    submitRead(MemRequest req) override
    {
        if (refuseReads)
            return false;
        ++reads;
        pending.push_back({*clock + latency, req});
        return true;
    }

    void
    submitWriteback(Addr p_line) override
    {
        ++writebacks;
        lastWriteback = p_line;
    }

    /** Deliver matured responses. */
    void
    tick()
    {
        while (!pending.empty() && pending.front().first <= *clock) {
            MemRequest req = pending.front().second;
            pending.pop_front();
            if (req.client)
                req.client->readDone(req);
        }
    }

    const Cycle *clock;
    Cycle latency;
    std::deque<std::pair<Cycle, MemRequest>> pending;
    std::uint64_t reads = 0;
    std::uint64_t writebacks = 0;
    Addr lastWriteback = kNoAddr;
    bool refuseReads = false;
};

/** Step helper: tick cache + memory n cycles. */
inline void
stepCycles(Cycle &clock, Cache &cache, TestMemory &mem, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        ++clock;
        mem.tick();
        cache.tick();
    }
}

} // namespace berti::test

#endif // BERTI_TESTS_TEST_UTIL_HH
