/**
 * @file
 * Golden-stats regression harness: replays a small fixed workload x
 * spec matrix, exports each cell through the stable JSON schema and
 * byte-compares against the checked-in goldens under tests/goldens/.
 * Any counter drift — an off-by-one in a prefetcher, a reordered stat,
 * an accidental double count — fails with a readable field-level diff.
 *
 * Regenerate the goldens after an *intentional* behaviour change with
 *     tools/update_goldens.sh
 * (or BERTI_UPDATE_GOLDENS=1 ctest -R test_golden) and commit the
 * resulting JSON files together with the change that justified them.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

#ifndef BERTI_GOLDEN_DIR
#error "BERTI_GOLDEN_DIR must point at the checked-in goldens"
#endif

namespace berti
{
namespace
{

/** The pinned matrix. Small enough to run in seconds, wide enough to
 *  cover the no-prefetch baseline and the paper's prefetcher across
 *  regular streams, interleaved strides (the per-IP-table-thrashing
 *  CactuBSSN regime) and a serial pointer chase (nothing timely). */
const std::vector<std::string> kWorkloads = {
    "mcf-like.472", "bwaves-like.2609", "cactu-like.709",
    "mcf-like.1536"};
const std::vector<std::string> kSpecs = {"none", "berti"};

/** Pinned ROI; never derived from env so goldens cannot drift with
 *  BERTI_BENCH_QUICK or similar knobs. */
SimParams
goldenParams()
{
    SimParams p;
    p.warmupInstructions = 5000;
    p.measureInstructions = 20000;
    return p;
}

std::string
goldenPath(const std::string &workload, const std::string &spec)
{
    return std::string(BERTI_GOLDEN_DIR) + "/" + workload + "__" + spec +
           ".json";
}

bool
updateMode()
{
    return berti::sim::SimOptions::fromEnv().updateGoldens;
}

class GoldenTest : public ::testing::TestWithParam<
                       std::tuple<std::string, std::string>>
{};

TEST_P(GoldenTest, MatchesCheckedInStats)
{
    const auto &[workload, spec] = GetParam();
    SimResult r =
        simulate(findWorkload(workload), makeSpec(spec), goldenParams());
    std::string actual_json = obs::toJson(resultSnapshot(r));
    std::string path = goldenPath(workload, spec);

    if (updateMode()) {
        obs::writeFile(path, actual_json);
        GTEST_SKIP() << "updated golden " << path;
    }

    std::string expected_json;
    try {
        expected_json = obs::readFile(path);
    } catch (const verify::SimError &) {
        FAIL() << "missing golden " << path
               << " — run tools/update_goldens.sh and commit the result";
    }

    if (expected_json == actual_json)
        return;  // bit-identical, the common case

    // Not identical: produce a field-level diff instead of two JSON
    // blobs, so the failing counter is named directly.
    obs::MetricsSnapshot expected =
        obs::snapshotFromJson(expected_json, path);
    obs::MetricsSnapshot actual =
        obs::snapshotFromJson(actual_json, "simulated");
    auto diffs = obs::diffSnapshots(expected, actual);
    ASSERT_FALSE(diffs.empty())
        << "golden " << path
        << " differs only in formatting — regenerate it with "
           "tools/update_goldens.sh";
    FAIL() << workload << " x " << spec << ": " << diffs.size()
           << " field(s) drifted from " << path << "\n"
           << obs::formatDiff(diffs);
}

std::vector<std::tuple<std::string, std::string>>
goldenMatrix()
{
    std::vector<std::tuple<std::string, std::string>> cells;
    for (const auto &w : kWorkloads)
        for (const auto &s : kSpecs)
            cells.emplace_back(w, s);
    return cells;
}

std::string
cellName(const ::testing::TestParamInfo<
         std::tuple<std::string, std::string>> &info)
{
    std::string n = std::get<0>(info.param) + "_" +
                    std::get<1>(info.param);
    for (char &c : n) {
        if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9')))
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(Matrix, GoldenTest,
                         ::testing::ValuesIn(goldenMatrix()), cellName);

/** The golden schema itself is pinned: parsing a golden back must give
 *  the same document, so future schema bumps are deliberate. */
TEST(GoldenSchema, GoldensRoundTripAtCurrentVersion)
{
    if (updateMode())
        GTEST_SKIP() << "goldens being regenerated";
    for (const auto &w : kWorkloads) {
        for (const auto &s : kSpecs) {
            std::string path = goldenPath(w, s);
            std::string text;
            try {
                text = obs::readFile(path);
            } catch (const verify::SimError &) {
                FAIL() << "missing golden " << path;
            }
            obs::MetricsSnapshot snap = obs::snapshotFromJson(text, path);
            EXPECT_EQ(obs::toJson(snap), text) << path;
            EXPECT_GT(snap.size(), 50u) << path;
        }
    }
}

} // namespace
} // namespace berti
