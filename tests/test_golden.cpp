/**
 * @file
 * Golden-stats regression harness: replays a small fixed workload x
 * spec matrix, exports each cell through the stable JSON schema and
 * byte-compares against the checked-in goldens under tests/goldens/.
 * Any counter drift — an off-by-one in a prefetcher, a reordered stat,
 * an accidental double count — fails with a readable field-level diff.
 *
 * Regenerate the goldens after an *intentional* behaviour change with
 *     tools/update_goldens.sh
 * (or BERTI_UPDATE_GOLDENS=1 ctest -R test_golden) and commit the
 * resulting JSON files together with the change that justified them.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

#ifndef BERTI_GOLDEN_DIR
#error "BERTI_GOLDEN_DIR must point at the checked-in goldens"
#endif

namespace berti
{
namespace
{

/** The pinned matrix. Small enough to run in seconds, wide enough to
 *  cover the no-prefetch baseline and the paper's prefetcher across
 *  regular streams, interleaved strides (the per-IP-table-thrashing
 *  CactuBSSN regime) and a serial pointer chase (nothing timely). */
const std::vector<std::string> kWorkloads = {
    "mcf-like.472", "bwaves-like.2609", "cactu-like.709",
    "mcf-like.1536"};
const std::vector<std::string> kSpecs = {"none", "berti"};

/** Two hybrid composition cells ride along without quadrupling the
 *  matrix: the arbitration/selector path is pinned by goldens too. */
const std::vector<std::tuple<std::string, std::string>> kExtraCells = {
    {"mcf-like.472", "hybrid(berti,cmc)"},
    {"bwaves-like.2609", "hybrid(berti,markov;select=duel)"},
};

/** Pinned ROI; never derived from env so goldens cannot drift with
 *  BERTI_BENCH_QUICK or similar knobs. */
SimParams
goldenParams()
{
    SimParams p;
    p.warmupInstructions = 5000;
    p.measureInstructions = 20000;
    return p;
}

std::string
goldenPath(const std::string &workload, const std::string &spec)
{
    // Hybrid specs contain (),;= — flatten to filesystem-safe stems the
    // same way the result store does.
    std::string s = spec;
    for (char &c : s) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '-'))
            c = '-';
    }
    return std::string(BERTI_GOLDEN_DIR) + "/" + workload + "__" + s +
           ".json";
}

bool
updateMode()
{
    return berti::sim::SimOptions::fromEnv().updateGoldens;
}

/**
 * Load and parse one golden, folding every failure mode — directory or
 * file missing, unreadable, truncated or otherwise corrupt JSON — into
 * one readable diagnostic naming the regeneration command, instead of
 * an unhandled SimError unwinding through gtest. Returns nullopt and
 * fills `error` on failure.
 */
std::optional<obs::MetricsSnapshot>
loadGolden(const std::string &path, std::string *error)
{
    std::string text;
    try {
        text = obs::readFile(path);
    } catch (const verify::SimError &e) {
        *error = std::string("missing or unreadable golden ") + path +
                 " [" + verify::errorKindName(e.kind()) + "] " +
                 e.reason() +
                 " — run tools/update_goldens.sh and commit the result";
        return std::nullopt;
    }
    try {
        obs::MetricsSnapshot snap = obs::snapshotFromJson(text, path);
        return snap;
    } catch (const verify::SimError &e) {
        *error = std::string("corrupt or truncated golden ") + path +
                 " [" + verify::errorKindName(e.kind()) + "] " +
                 e.reason() +
                 " — if the file was damaged (e.g. a truncated "
                 "checkout), restore it from git; after an intentional "
                 "schema change run tools/update_goldens.sh";
        return std::nullopt;
    }
}

class GoldenTest : public ::testing::TestWithParam<
                       std::tuple<std::string, std::string>>
{};

TEST_P(GoldenTest, MatchesCheckedInStats)
{
    const auto &[workload, spec] = GetParam();
    SimResult r =
        simulate(findWorkload(workload), makeSpec(spec), goldenParams());
    std::string actual_json = obs::toJson(resultSnapshot(r));
    std::string path = goldenPath(workload, spec);

    if (updateMode()) {
        obs::writeFile(path, actual_json);
        GTEST_SKIP() << "updated golden " << path;
    }

    std::string error;
    std::optional<obs::MetricsSnapshot> expected =
        loadGolden(path, &error);
    if (!expected)
        FAIL() << error;

    // loadGolden proved the file reads and parses; the byte compare is
    // now safe and stays the bit-identical common case.
    if (obs::readFile(path) == actual_json)
        return;

    // Not identical: produce a field-level diff instead of two JSON
    // blobs, so the failing counter is named directly.
    obs::MetricsSnapshot actual =
        obs::snapshotFromJson(actual_json, "simulated");
    auto diffs = obs::diffSnapshots(*expected, actual);
    ASSERT_FALSE(diffs.empty())
        << "golden " << path
        << " differs only in formatting — regenerate it with "
           "tools/update_goldens.sh";
    FAIL() << workload << " x " << spec << ": " << diffs.size()
           << " field(s) drifted from " << path << "\n"
           << obs::formatDiff(diffs);
}

std::vector<std::tuple<std::string, std::string>>
goldenMatrix()
{
    std::vector<std::tuple<std::string, std::string>> cells;
    for (const auto &w : kWorkloads)
        for (const auto &s : kSpecs)
            cells.emplace_back(w, s);
    for (const auto &c : kExtraCells)
        cells.push_back(c);
    return cells;
}

std::string
cellName(const ::testing::TestParamInfo<
         std::tuple<std::string, std::string>> &info)
{
    std::string n = std::get<0>(info.param) + "_" +
                    std::get<1>(info.param);
    for (char &c : n) {
        if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9')))
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(Matrix, GoldenTest,
                         ::testing::ValuesIn(goldenMatrix()), cellName);

/** The golden schema itself is pinned: parsing a golden back must give
 *  the same document, so future schema bumps are deliberate. */
TEST(GoldenSchema, GoldensRoundTripAtCurrentVersion)
{
    if (updateMode())
        GTEST_SKIP() << "goldens being regenerated";
    for (const auto &[w, s] : goldenMatrix()) {
        std::string path = goldenPath(w, s);
        std::string error;
        std::optional<obs::MetricsSnapshot> snap =
            loadGolden(path, &error);
        if (!snap)
            FAIL() << error;
        EXPECT_EQ(obs::toJson(*snap), obs::readFile(path)) << path;
        EXPECT_GT(snap->size(), 50u) << path;
    }
}

/** The failure modes themselves: a missing goldens directory and a
 *  truncated golden must come back as readable guidance naming the
 *  regeneration command, never as an unhandled exception. */
TEST(GoldenHarness, MissingAndTruncatedGoldensProduceReadableErrors)
{
    std::string dir = ::testing::TempDir() + "/berti_goldens_harness";

    // Missing directory / file.
    std::string error;
    EXPECT_FALSE(loadGolden(dir + "/no_such__golden.json", &error));
    EXPECT_NE(error.find("missing or unreadable golden"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("tools/update_goldens.sh"), std::string::npos)
        << error;

    // Truncated golden: take a real export, cut it mid-document.
    obs::MetricsSnapshot snap;
    snap.setCounter("core.instructions", 20000);
    snap.setGauge("ipc", 1.5);
    std::string json = obs::toJson(snap);
    std::string path = dir + "/truncated__golden.json";
    obs::writeFile(path, json.substr(0, json.size() / 2));

    error.clear();
    EXPECT_FALSE(loadGolden(path, &error));
    EXPECT_NE(error.find("corrupt or truncated golden"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find(path), std::string::npos) << error;

    // And the intact document still loads, so the guard adds no false
    // positives.
    obs::writeFile(path, json);
    error.clear();
    std::optional<obs::MetricsSnapshot> back = loadGolden(path, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(*back == snap);
}

} // namespace
} // namespace berti
