/**
 * @file
 * Interval-sampling tests: geometry validation, window accounting and
 * dispersion statistics, determinism of the sampled path (across runs,
 * across BERTI_JOBS, and through the simulate() branch), per-window
 * checkpoint resume, multi-core sampled mixes, result-store key
 * separation of sampled vs full cells, the SimOptions knobs, and the
 * sampled-vs-full error bounds checked against the pinned golden
 * matrix (regenerate sampled goldens with tools/update_goldens.sh).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "trace/registry.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"

#ifndef BERTI_GOLDEN_DIR
#error "BERTI_GOLDEN_DIR must point at the checked-in goldens"
#endif

namespace berti
{
namespace
{

/**
 * Documented sampled-vs-full error bounds (docs/ARCHITECTURE.md,
 * "Sampled simulation intervals"), checked for every cell of the
 * pinned golden matrix. The generators are stationary, so four short
 * windows already land this close to the 20k-instruction full-run
 * reference; CI fails loudly if a change to the simulator or the
 * sampling harness pushes any cell past them.
 */
constexpr double kIpcRelBound = 0.05;
constexpr double kMpkiAbsBound = 2.0;
constexpr double kAccuracyAbsBound = 0.10;

/** The golden-tier sampling geometry: same global warmup as the full
 *  goldens (5000), then 4 back-to-back windows of 500 warm + 2000
 *  measured instructions — 15000 simulated vs the full run's 25000. */
SimParams
sampledGoldenParams()
{
    SimParams p;
    p.warmupInstructions = 5000;
    p.measureInstructions = 20000;  // full-run length, for fingerprints
    p.sampling.windowCount = 4;
    p.sampling.windowWarmup = 500;
    p.sampling.windowMeasure = 2000;
    return p;
}

/** Smaller geometry for the mechanics tests. */
SimParams
quickSampled()
{
    SimParams p;
    p.warmupInstructions = 2000;
    p.measureInstructions = 20000;
    p.sampling.windowCount = 4;
    p.sampling.windowWarmup = 500;
    p.sampling.windowMeasure = 2000;
    return p;
}

std::string
freshDir(const std::string &name)
{
    return ::testing::TempDir() + "/" + name + "." +
           std::to_string(::getpid());
}

std::string
resultJson(const SimResult &r)
{
    return obs::toJson(resultSnapshot(r));
}

void
expectConfigError(const SimParams &params, const std::string &needle)
{
    try {
        simulateSampled(findWorkload("stream-like.1"), makeSpec("none"),
                        params);
        ADD_FAILURE() << "expected verify::SimError for " << needle;
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(e.reason().find(needle), std::string::npos)
            << e.reason();
    }
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had = true;
            previous = old;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had)
            setenv(key, previous.c_str(), 1);
        else
            unsetenv(key);
    }

  private:
    const char *key;
    bool had = false;
    std::string previous;
};

} // namespace

// ------------------------------------------------ geometry validation

TEST(SamplingGeometry, DegenerateGeometriesAreTypedConfigErrors)
{
    SimParams p = quickSampled();
    p.sampling.windowCount = 0;
    expectConfigError(p, "windowCount");

    p = quickSampled();
    p.sampling.windowMeasure = 0;
    expectConfigError(p, "windowMeasure");

    p = quickSampled();
    p.sampling.windowStride = 1000;  // < 500 warm + 2000 measured
    expectConfigError(p, "overlap");
}

TEST(SamplingGeometry, CanonicalStrideIsBackToBackWindows)
{
    SampleGeometry g;
    g.windowCount = 2;
    g.windowWarmup = 300;
    g.windowMeasure = 700;
    EXPECT_EQ(g.stride(), 1000u);
    g.windowStride = 2500;
    EXPECT_EQ(g.stride(), 2500u);
}

// --------------------------------------------- windows and dispersion

TEST(Sampling, WindowAccountingAndDispersion)
{
    SimParams p = quickSampled();
    SampledResult s = simulateSampled(findWorkload("stream-like.1"),
                                      makeSpec("berti"), p);

    ASSERT_EQ(s.windows.size(), 4u);
    ASSERT_EQ(s.windowStartInstruction.size(), 4u);

    std::uint64_t instr_sum = 0;
    for (std::size_t k = 0; k < s.windows.size(); ++k) {
        EXPECT_GE(s.windows[k].roi.core.instructions,
                  p.sampling.windowMeasure);
        EXPECT_GT(s.windows[k].ipc, 0.0);
        instr_sum += s.windows[k].roi.core.instructions;
        if (k > 0) {
            EXPECT_GT(s.windowStartInstruction[k],
                      s.windowStartInstruction[k - 1]);
        }
    }
    // First measured region starts after global + window warmup.
    EXPECT_GE(s.windowStartInstruction[0],
              p.warmupInstructions + p.sampling.windowWarmup);

    // The aggregate is the component-wise sum over the windows.
    EXPECT_EQ(s.aggregate.roi.core.instructions, instr_sum);

    // The cost side: far fewer simulated instructions than a full run,
    // but at least the geometry's nominal footprint.
    EXPECT_GE(s.instructionsSimulated,
              p.warmupInstructions +
                  4 * (p.sampling.windowWarmup + p.sampling.windowMeasure));
    EXPECT_LT(s.instructionsSimulated,
              p.warmupInstructions + p.measureInstructions);

    // Dispersion: mean inside the window range, non-negative spread.
    double lo = s.windows[0].ipc, hi = s.windows[0].ipc;
    for (const SimResult &w : s.windows) {
        lo = std::min(lo, w.ipc);
        hi = std::max(hi, w.ipc);
    }
    EXPECT_GE(s.ipcMean, lo);
    EXPECT_LE(s.ipcMean, hi);
    EXPECT_GE(s.ipcStddev, 0.0);
    EXPECT_GE(s.ipcCiHalfWidth, 0.0);
    EXPECT_LT(s.ipcRelCi(), 1.0);
}

// --------------------------------------------------------- determinism

TEST(Sampling, DeterministicAndEqualThroughSimulateBranch)
{
    SimParams p = quickSampled();
    const Workload &w = findWorkload("mcf-like.472");
    PrefetcherSpec spec = makeSpec("berti");

    SampledResult a = simulateSampled(w, spec, p);
    SampledResult b = simulateSampled(w, spec, p);
    EXPECT_EQ(resultJson(a.aggregate), resultJson(b.aggregate));
    for (std::size_t k = 0; k < a.windows.size(); ++k)
        EXPECT_EQ(resultJson(a.windows[k]), resultJson(b.windows[k]));

    // simulate() with sampling enabled IS the sampled aggregate, so
    // every existing call site gets sampling by flipping the params.
    SimResult via_simulate = simulate(w, spec, p);
    EXPECT_EQ(resultJson(via_simulate), resultJson(a.aggregate));
}

TEST(Sampling, BitIdenticalAcrossJobs)
{
    SimParams p = quickSampled();
    std::vector<Workload> workloads = {findWorkload("mcf-like.472"),
                                       findWorkload("stream-like.1")};
    std::vector<PrefetcherSpec> specs = {makeSpec("none"),
                                         makeSpec("berti")};

    auto serial = runMatrixParallel(workloads, specs, p, /*jobs=*/1);
    auto threaded = runMatrixParallel(workloads, specs, p, /*jobs=*/4);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            EXPECT_EQ(resultJson(threaded[s][w]), resultJson(serial[s][w]))
                << specs[s].name << "/" << workloads[w].name;
        }
    }
}

// --------------------------------------------------- checkpoint resume

TEST(Sampling, CheckpointResumeReproducesEachWindow)
{
    SimParams p = quickSampled();
    p.sampling.checkpointDir = freshDir("berti_sampling_ckpt");
    const Workload &w = findWorkload("stream-like.1");
    PrefetcherSpec spec = makeSpec("berti");

    SampledResult sampled = simulateSampled(w, spec, p);
    ASSERT_EQ(sampled.windows.size(), 4u);

    // Every window re-simulated in isolation from its warm-state
    // checkpoint is bit-identical to the in-stream measurement.
    for (unsigned k = 0; k < 4; ++k) {
        SimResult window = resumeSampledWindow(
            w, spec, p,
            p.sampling.checkpointDir + "/window-" + std::to_string(k) +
                ".ckpt");
        EXPECT_EQ(resultJson(window), resultJson(sampled.windows[k]))
            << "window " << k;
    }
}

TEST(Sampling, CheckpointDirWithFaultInjectionIsTypedCheckpointError)
{
    verify::FaultInjector faults;
    SimParams p = quickSampled();
    p.faults = &faults;
    p.sampling.checkpointDir = freshDir("berti_sampling_faultckpt");
    try {
        simulateSampled(findWorkload("stream-like.1"), makeSpec("berti"),
                        p);
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Checkpoint);
        EXPECT_NE(e.reason().find("cannot checkpoint"), std::string::npos)
            << e.reason();
    }
}

// ----------------------------------------------------- multicore mixes

TEST(SamplingMix, PerCoreWindowsAndAggregates)
{
    SimParams p = quickSampled();
    std::vector<Workload> mix = {findWorkload("stream-like.1"),
                                 findWorkload("gcc-like.2226")};
    PrefetcherSpec spec = makeSpec("berti");

    std::vector<SampledResult> sampled = simulateMixSampled(mix, spec, p);
    ASSERT_EQ(sampled.size(), 2u);
    for (const SampledResult &s : sampled) {
        ASSERT_EQ(s.windows.size(), 4u);
        EXPECT_GE(s.aggregate.roi.core.instructions,
                  4 * p.sampling.windowMeasure);
        EXPECT_GT(s.aggregate.ipc, 0.0);
    }

    // simulateMix with sampling enabled returns the same aggregates.
    std::vector<SimResult> via_mix = simulateMix(mix, spec, p);
    ASSERT_EQ(via_mix.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_EQ(resultJson(via_mix[c]), resultJson(sampled[c].aggregate));
}

TEST(SamplingMix, PerWindowCheckpointsAreSingleCoreOnly)
{
    SimParams p = quickSampled();
    p.sampling.checkpointDir = freshDir("berti_sampling_mixckpt");
    std::vector<Workload> mix = {findWorkload("stream-like.1"),
                                 findWorkload("gcc-like.2226")};
    try {
        simulateMixSampled(mix, makeSpec("none"), p);
        FAIL() << "expected verify::SimError";
    } catch (const verify::SimError &e) {
        EXPECT_EQ(e.kind(), verify::ErrorKind::Config);
        EXPECT_NE(e.reason().find("single-core"), std::string::npos)
            << e.reason();
    }
}

// ------------------------------------------------- result-store keys

TEST(SamplingStoreKeys, SampledAndFullCellsNeverCollide)
{
    SimParams full = sampledGoldenParams();
    full.sampling = SampleGeometry{};  // disabled
    SimParams sampled = sampledGoldenParams();

    EXPECT_NE(harness::paramsFingerprint(full),
              harness::paramsFingerprint(sampled));
    EXPECT_NE(harness::makeStoreKey("mcf-like.472", "berti", full).hash(),
              harness::makeStoreKey("mcf-like.472", "berti", sampled)
                  .hash());

    // Different geometries are different cells too.
    SimParams wider = sampled;
    wider.sampling.windowCount = 8;
    EXPECT_NE(harness::paramsFingerprint(sampled),
              harness::paramsFingerprint(wider));
}

TEST(SamplingStoreKeys, EquivalentGeometriesShareAKey)
{
    SimParams a = sampledGoldenParams();

    // Explicit stride equal to the implied back-to-back stride.
    SimParams b = a;
    b.sampling.windowStride =
        a.sampling.windowWarmup + a.sampling.windowMeasure;
    EXPECT_EQ(harness::paramsFingerprint(a), harness::paramsFingerprint(b));

    // checkpointDir never perturbs results, so it is not part of the key.
    SimParams c = a;
    c.sampling.checkpointDir = "/tmp/anywhere";
    EXPECT_EQ(harness::paramsFingerprint(a), harness::paramsFingerprint(c));

    // Disabled sampling ignores the (meaningless) window fields.
    SimParams off1 = a, off2 = a;
    off1.sampling = SampleGeometry{};
    off2.sampling = SampleGeometry{};
    off2.sampling.windowWarmup = 12345;
    EXPECT_EQ(harness::paramsFingerprint(off1),
              harness::paramsFingerprint(off2));
}

// ------------------------------------------------------ SimOptions

TEST(SamplingOptions, EnvKnobsParseAndReject)
{
    {
        ScopedEnv windows("BERTI_SAMPLE_WINDOWS", "6");
        ScopedEnv warm("BERTI_SAMPLE_WARMUP", "750");
        ScopedEnv measure("BERTI_SAMPLE_MEASURE", "3000");
        ScopedEnv stride("BERTI_SAMPLE_STRIDE", "8000");
        sim::SimOptions opt = sim::SimOptions::fromEnv();
        EXPECT_EQ(opt.sampleWindows, 6u);
        EXPECT_EQ(opt.sampleWarmup, 750u);
        EXPECT_EQ(opt.sampleMeasure, 3000u);
        EXPECT_EQ(opt.sampleStride, 8000u);
    }
    {
        ScopedEnv measure("BERTI_SAMPLE_MEASURE", "0");
        EXPECT_THROW(sim::SimOptions::fromEnv(), verify::SimError);
    }
    {
        ScopedEnv windows("BERTI_SAMPLE_WINDOWS", "banana");
        EXPECT_THROW(sim::SimOptions::fromEnv(), verify::SimError);
    }
}

TEST(SamplingOptions, FlagsLayerOverEnv)
{
    sim::SimOptions opt;
    EXPECT_TRUE(opt.applyFlag("--sample-windows=3"));
    EXPECT_TRUE(opt.applyFlag("--sample-warmup=250"));
    EXPECT_TRUE(opt.applyFlag("--sample-measure=1500"));
    EXPECT_TRUE(opt.applyFlag("--sample-stride=5000"));
    EXPECT_EQ(opt.sampleWindows, 3u);
    EXPECT_EQ(opt.sampleWarmup, 250u);
    EXPECT_EQ(opt.sampleMeasure, 1500u);
    EXPECT_EQ(opt.sampleStride, 5000u);
    EXPECT_THROW(opt.applyFlag("--sample-measure=0"), verify::SimError);
    EXPECT_FALSE(opt.applyFlag("--not-a-sampling-flag=1"));
}

// --------------------------------------- sampled vs full-run goldens

namespace
{

/** The pinned golden matrix (mirrors test_golden.cpp). */
const std::vector<std::string> kWorkloads = {
    "mcf-like.472", "bwaves-like.2609", "cactu-like.709",
    "mcf-like.1536"};
const std::vector<std::string> kSpecs = {"none", "berti"};

std::string
fullGoldenPath(const std::string &workload, const std::string &spec)
{
    return std::string(BERTI_GOLDEN_DIR) + "/" + workload + "__" + spec +
           ".json";
}

std::string
sampledGoldenPath(const std::string &workload, const std::string &spec)
{
    return std::string(BERTI_GOLDEN_DIR) + "/" + workload + "__" + spec +
           ".sampled.json";
}

class SampledGoldenTest : public ::testing::TestWithParam<
                              std::tuple<std::string, std::string>>
{};

std::vector<std::tuple<std::string, std::string>>
goldenMatrix()
{
    std::vector<std::tuple<std::string, std::string>> cells;
    for (const auto &w : kWorkloads)
        for (const auto &s : kSpecs)
            cells.emplace_back(w, s);
    return cells;
}

std::string
cellName(const ::testing::TestParamInfo<
         std::tuple<std::string, std::string>> &info)
{
    std::string n = std::get<0>(info.param) + "_" +
                    std::get<1>(info.param);
    for (char &c : n) {
        if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9')))
            c = '_';
    }
    return n;
}

} // namespace

/**
 * The property the whole subsystem exists for: for every cell of the
 * pinned matrix, the sampled aggregate reproduces the checked-in
 * full-run golden within the documented IPC/MPKI/accuracy bounds — at
 * 15000 simulated instructions against the full run's 25000. The
 * sampled aggregate itself is also golden-pinned (the .sampled.json
 * sidecars), so sampled-path drift fails byte-identically like any
 * other golden.
 */
TEST_P(SampledGoldenTest, ReproducesFullRunWithinDocumentedBounds)
{
    const auto &[workload, spec] = GetParam();
    SimParams params = sampledGoldenParams();
    SampledResult sampled = simulateSampled(findWorkload(workload),
                                            makeSpec(spec), params);
    std::string actual_json = resultJson(sampled.aggregate);

    if (sim::SimOptions::fromEnv().updateGoldens) {
        obs::writeFile(sampledGoldenPath(workload, spec), actual_json);
        GTEST_SKIP() << "updated sampled golden "
                     << sampledGoldenPath(workload, spec);
    }

    // (1) Bit-stability of the sampled path itself.
    std::string golden_path = sampledGoldenPath(workload, spec);
    std::string golden_json;
    try {
        golden_json = obs::readFile(golden_path);
    } catch (const verify::SimError &e) {
        FAIL() << "missing or unreadable sampled golden " << golden_path
               << ": " << e.reason()
               << " — run tools/update_goldens.sh and commit the result";
    }
    EXPECT_EQ(golden_json, actual_json)
        << "sampled-path drift for " << workload << " x " << spec
        << " — after an intentional change run tools/update_goldens.sh";

    // (2) The error bound against the full-run golden.
    std::string full_json;
    try {
        full_json = obs::readFile(fullGoldenPath(workload, spec));
    } catch (const verify::SimError &e) {
        FAIL() << "missing full-run golden for " << workload << " x "
               << spec << ": " << e.reason();
    }
    SimResult full = resultFromSnapshot(
        obs::snapshotFromJson(full_json, fullGoldenPath(workload, spec)));

    SampledError err = sampledVsFull(sampled, full);
    EXPECT_LE(err.ipcRel, kIpcRelBound)
        << workload << " x " << spec << ": sampled ipc "
        << sampled.aggregate.ipc << " vs full " << full.ipc;
    EXPECT_LE(err.l1dMpkiAbs, kMpkiAbsBound) << workload << " x " << spec;
    EXPECT_LE(err.accuracyAbs, kAccuracyAbsBound)
        << workload << " x " << spec;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SampledGoldenTest,
                         ::testing::ValuesIn(goldenMatrix()), cellName);

/**
 * The acceptance property for a figure-8-class cell: a sampled run
 * reproduces the full-run IPC within the documented bound at >= 5x
 * fewer simulated instructions, and lands under a distinct result-store
 * key. This is the cell the CI sampling-smoke job replays.
 */
TEST(Fig08SampledVsFull, FiveFoldCheaperWithinIpcBound)
{
    const Workload &w = findWorkload("mcf-like.472");
    PrefetcherSpec spec = makeSpec("berti");

    SimParams full;  // the fig08 bench geometry
    full.warmupInstructions = 40000;
    full.measureInstructions = 200000;

    SimParams sampled_params = full;  // the bench's sampled geometry
    sampled_params.warmupInstructions = 8000;
    sampled_params.sampling.windowCount = 4;
    sampled_params.sampling.windowWarmup = 1000;
    sampled_params.sampling.windowMeasure = 8000;

    SimResult full_result = simulate(w, spec, full);
    SampledResult sampled = simulateSampled(w, spec, sampled_params);

    // >= 5x fewer simulated instructions (nominal footprint 44000 vs
    // 240000, so the bound holds even with run()'s in-flight overshoot).
    EXPECT_GE(full.warmupInstructions + full.measureInstructions,
              5 * sampled.instructionsSimulated);

    // ...within the documented IPC bound...
    SampledError err = sampledVsFull(sampled, full_result);
    EXPECT_LE(err.ipcRel, kIpcRelBound)
        << "sampled ipc " << sampled.aggregate.ipc << " vs full "
        << full_result.ipc;

    // ...under a store key the full-run cell can never collide with.
    EXPECT_NE(
        harness::makeStoreKey(w.name, spec.name, full).hash(),
        harness::makeStoreKey(w.name, spec.name, sampled_params).hash());
}

} // namespace berti
