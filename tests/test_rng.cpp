/** @file Determinism and distribution sanity tests for the RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace berti
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolRespectsProbability)
{
    Rng r(11);
    int trues = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        trues += r.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

TEST(Rng, ZipfStaysInRangeAndFavoursHead)
{
    Rng r(13);
    const std::uint64_t n = 1000;
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = r.nextZipf(n, 0.9);
        ASSERT_LT(v, n);
        if (v < n / 10)
            ++head;
        if (v >= 9 * n / 10)
            ++tail;
    }
    // Power law: the first decile must be far more popular than the last.
    EXPECT_GT(head, 5 * tail);
}

TEST(Rng, ZipfSingleElement)
{
    Rng r(17);
    EXPECT_EQ(r.nextZipf(1, 1.2), 0u);
}

class ZipfParam : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfParam, InRangeForVariousExponents)
{
    Rng r(19);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(r.nextZipf(512, GetParam()), 512u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfParam,
                         ::testing::Values(0.5, 0.75, 0.9, 1.0, 1.2));

} // namespace berti
