/** @file Small-surface tests: CSV table output, new prefetcher spec
 *  names, queued-generator helpers, machine safety bound. */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "harness/table.hh"
#include "trace/generators.hh"

namespace berti
{

TEST(Csv, SeparatorAndQuoting)
{
    TextTable t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nplain,\"with,comma\"\n");
}

TEST(Csv, HeaderOnlyTable)
{
    TextTable t({"x"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x\n");
}

TEST(Spec, RelatedWorkNamesResolve)
{
    for (const char *name : {"stream", "sms", "pythia"}) {
        PrefetcherSpec s = makeSpec(name);
        ASSERT_NE(s.l1d, nullptr) << name;
        EXPECT_EQ(s.l1d()->name(), name);
    }
    PrefetcherSpec combo = makeSpec("berti+pythia");
    ASSERT_NE(combo.l2, nullptr);
    EXPECT_EQ(combo.l2()->name(), "pythia");
}

TEST(Spec, StorageOrderingMatchesTableThree)
{
    // Berti is among the smallest; Bingo and MISB are the heavy ones.
    EXPECT_LT(makeSpec("berti").storageBits,
              makeSpec("none+bingo").storageBits);
    EXPECT_LT(makeSpec("berti").storageBits,
              makeSpec("none+misb").storageBits);
    EXPECT_LT(makeSpec("ip-stride").storageBits,
              makeSpec("berti").storageBits);
}

TEST(QueuedGen, NeverReturnsEmpty)
{
    // Every generator must always hand back an instruction.
    StreamGen gen({});
    for (int i = 0; i < 10000; ++i) {
        TraceInstr in = gen.next();
        (void)in;
    }
    SUCCEED();
}

TEST(Machine, SafetyBoundTerminatesPathologicalRuns)
{
    // A generator whose every instruction is a dependent DRAM miss:
    // progress is glacial but run() must still return (bounded).
    class WorstCaseGen : public TraceGenerator
    {
      public:
        TraceInstr
        next() override
        {
            TraceInstr in;
            in.ip = 0x400000;
            in.load0 = 0x10000000ull + 64 * (n++ % 100000);
            in.dependsOnPrevLoad = true;
            return in;
        }

      private:
        std::uint64_t n = 0;
    };
    WorstCaseGen gen;
    Machine m(MachineConfig::sunnyCove(1), {&gen});
    m.run(200);  // tiny target: returns promptly even at IPC << 1
    EXPECT_GE(m.liveStats(0).core.instructions, 200u);
}

TEST(EnergyBreakdown, DefaultIsZero)
{
    EnergyBreakdown e;
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Workload, AdHocWorkloadWrapsAnyGenerator)
{
    // The Workload struct is an open extension point (used by
    // examples/graph_analytics): wrap a custom generator and simulate.
    Workload w;
    w.name = "adhoc";
    w.suite = "custom";
    w.make = [] {
        StreamGen::Params p;
        p.streams = 1;
        return std::make_unique<StreamGen>(p);
    };
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 8000;
    SimResult r = simulate(w, makeSpec("none"), params);
    EXPECT_GE(r.roi.core.instructions, 8000u);
}

} // namespace berti
