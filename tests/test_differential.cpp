/**
 * @file
 * Differential-oracle suite: the untimed reference hierarchy against the
 * cycle simulator under serialized driving, the paper-transcription
 * RefBerti against the production BertiPrefetcher (event-fed and in a
 * live Machine via a tee), property-based micro-traces with greedy
 * shrinking of any counterexample, and metamorphic invariants across
 * every prefetcher spec.
 *
 * Every property derives its RNG seed through testSeed() so a failure
 * logged in CI reproduces locally with BERTI_TEST_SEED; failure messages
 * always carry the seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/berti.hh"
#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "oracle/diff_driver.hh"
#include "oracle/microtrace.hh"
#include "oracle/ref_berti.hh"
#include "oracle/shrink.hh"
#include "oracle/tee.hh"
#include "sim/rng.hh"
#include "trace/generators.hh"
#include "test_util.hh"

namespace berti
{

namespace
{

using oracle::DiffConfig;
using oracle::DiffResult;
using oracle::MicroOp;
using oracle::MicroOpKind;
using oracle::MicroTrace;
using oracle::MicroTraceClass;
using oracle::RefBerti;

/** Base property seed; overridable end-to-end via BERTI_TEST_SEED. */
std::uint64_t
baseSeed()
{
    return oracle::testSeed(0xB5971D1FFull);
}

std::string
describeSeed(const std::string &cls, std::uint64_t seed)
{
    std::ostringstream os;
    os << "class=" << cls << " seed=0x" << std::hex << seed
       << " (rerun with BERTI_TEST_SEED=0x" << seed << ")";
    return os.str();
}

} // namespace

// ===================================================================
// Micro-trace plumbing: round trips and the seeding conventions.
// ===================================================================

TEST(MicroTrace, InstrRoundTripAllClasses)
{
    for (const MicroTraceClass &cls : oracle::microTraceClasses()) {
        std::uint64_t seed = baseSeed() ^ std::hash<std::string>{}(cls.name);
        MicroTrace t = cls.generate(seed, 200);
        ASSERT_GT(t.size(), 0u) << describeSeed(cls.name, seed);
        MicroTrace back = oracle::fromInstrs(oracle::toInstrs(t));
        ASSERT_EQ(back.ops.size(), t.ops.size())
            << describeSeed(cls.name, seed);
        for (std::size_t i = 0; i < t.ops.size(); ++i) {
            EXPECT_TRUE(back.ops[i] == t.ops[i])
                << describeSeed(cls.name, seed) << " op " << i;
        }
    }
}

TEST(MicroTrace, ArtifactSaveLoadRoundTrip)
{
    MicroTrace t = oracle::findMicroTraceClass("writeback-races")
                       .generate(baseSeed(), 64);
    std::string path =
        ::testing::TempDir() + "/diff_artifact_roundtrip.trace";
    ASSERT_TRUE(oracle::saveArtifact(path, t));
    MicroTrace back = oracle::loadArtifact(path);
    ASSERT_EQ(back.ops.size(), t.ops.size());
    for (std::size_t i = 0; i < t.ops.size(); ++i)
        EXPECT_TRUE(back.ops[i] == t.ops[i]) << "op " << i;
    std::remove(path.c_str());
}

TEST(MicroTrace, SeedAndIterationEnvConventions)
{
    // Guard: these knobs must not already be pinned by the environment
    // (the nightly job sets them), or this test would fight the run.
    if (std::getenv("BERTI_TEST_SEED") ||
        std::getenv("BERTI_PROP_ITERS")) {
        GTEST_SKIP() << "seed/iteration env explicitly pinned";
    }
    setenv("BERTI_TEST_SEED", "0xabc123", 1);
    EXPECT_EQ(oracle::testSeed(7), 0xabc123ull);
    unsetenv("BERTI_TEST_SEED");
    EXPECT_EQ(oracle::testSeed(7), 7ull);

    setenv("BERTI_PROP_ITERS", "10", 1);
    EXPECT_EQ(oracle::propertyIterations(3), 30u);
    unsetenv("BERTI_PROP_ITERS");
    EXPECT_EQ(oracle::propertyIterations(3), 3u);
}

// ===================================================================
// Serialized differential: cycle simulator vs untimed oracle.
// ===================================================================

TEST(SerializedDiff, AllClassesAgreeWithOracle)
{
    const auto &classes = oracle::microTraceClasses();
    ASSERT_GE(classes.size(), 5u);  // acceptance floor: >= 5 classes
    unsigned iters = oracle::propertyIterations(2);
    for (std::size_t c = 0; c < classes.size(); ++c) {
        for (unsigned it = 0; it < iters; ++it) {
            std::uint64_t seed = baseSeed() + 1000 * c + it;
            MicroTrace t = classes[c].generate(seed, 384);
            DiffResult r = oracle::runSerializedDiff(t);
            if (r.diverged) {
                // Shrink the counterexample and keep it replayable.
                std::string path;
                MicroTrace shrunk = oracle::shrinkToArtifact(
                    t,
                    [](const MicroTrace &cand) {
                        return oracle::runSerializedDiff(cand).diverged;
                    },
                    "diff-" + classes[c].name, &path);
                FAIL() << describeSeed(classes[c].name, seed)
                       << "\nop " << r.opIndex << ": " << r.message
                       << "\nshrunk to " << shrunk.size()
                       << " ops, artifact: " << path;
            }
        }
    }
}

TEST(SerializedDiff, PinnedWritebackInteractionsAgree)
{
    // Deterministic documentation case: writeback of a clean resident
    // line, writeback of an absent line (write-allocate), RFO dirtying
    // the whole fill path, then aliasing evictions pushing dirty data
    // down to the backing store.
    const Addr a = 0x1000, b = a + 16 * 1;  // same L1 set (16 sets)
    MicroTrace t;
    t.ops = {
        {MicroOpKind::Load, a, 0x400000, 0},
        {MicroOpKind::Writeback, a, 0x400000, 0},   // hits dirty
        {MicroOpKind::Writeback, 0x9999, 0x400000, 0},  // allocates
        {MicroOpKind::Rfo, b, 0x400004, 0},
        {MicroOpKind::Load, a + 16 * 2, 0x400008, 0},
        {MicroOpKind::Load, a + 16 * 3, 0x40000c, 0},
        {MicroOpKind::Load, a + 16 * 4, 0x400010, 0},
        {MicroOpKind::Load, a + 16 * 5, 0x400014, 0},  // evicts in L1
        {MicroOpKind::Load, a, 0x400000, 0},
    };
    DiffResult r = oracle::runSerializedDiff(t);
    EXPECT_FALSE(r.diverged) << "op " << r.opIndex << ": " << r.message;
}

// ===================================================================
// Shrinker: an injected oracle defect must minimize to a tiny
// replayable artifact.
// ===================================================================

TEST(Shrinker, MinimizesInjectedLruDivergence)
{
    // Artifacts go to a temp dir unless the caller pinned one (nightly).
    if (!std::getenv("BERTI_ARTIFACT_DIR"))
        setenv("BERTI_ARTIFACT_DIR", ::testing::TempDir().c_str(), 1);

    DiffConfig broken;
    broken.perturbation.skipLruTouchEveryN = 3;  // oracle L1 LRU bug

    const MicroTraceClass &cls =
        oracle::findMicroTraceClass("aliasing-sets");
    MicroTrace failing;
    std::uint64_t seed = 0;
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
        std::uint64_t s = baseSeed() + 7777 + attempt;
        MicroTrace t = cls.generate(s, 512);
        if (oracle::runSerializedDiff(t, broken).diverged) {
            failing = t;
            seed = s;
            break;
        }
    }
    ASSERT_FALSE(failing.ops.empty())
        << "no seed exposed the injected LRU perturbation; base "
        << describeSeed(cls.name, baseSeed());

    auto still_fails = [&broken](const MicroTrace &cand) {
        return oracle::runSerializedDiff(cand, broken).diverged;
    };

    std::string path;
    oracle::ShrinkStats stats;
    MicroTrace shrunk = oracle::shrinkToArtifact(
        failing, still_fails, "lru-perturbation", &path, &stats);

    EXPECT_EQ(stats.originalOps, failing.ops.size());
    EXPECT_LE(shrunk.size(), 64u)
        << describeSeed(cls.name, seed) << " predicate runs "
        << stats.predicateRuns;
    EXPECT_TRUE(still_fails(shrunk)) << describeSeed(cls.name, seed);

    // The artifact must replay to the same divergence...
    MicroTrace reloaded = oracle::loadArtifact(path);
    ASSERT_EQ(reloaded.ops.size(), shrunk.ops.size());
    EXPECT_TRUE(still_fails(reloaded)) << "artifact " << path;

    // ...and the divergence is the injected defect, not a real one: the
    // unperturbed oracle agrees on the same shrunk trace.
    EXPECT_FALSE(oracle::runSerializedDiff(shrunk).diverged)
        << describeSeed(cls.name, seed);
}

// ===================================================================
// Concurrent (racing) replay: invariants only, at full audit
// resolution.
// ===================================================================

TEST(ConcurrentRaces, PropertyClassesAuditClean)
{
    const char *names[] = {"writeback-races", "random-mix",
                           "aliasing-sets"};
    unsigned iters = oracle::propertyIterations(3);
    for (const char *name : names) {
        const MicroTraceClass &cls = oracle::findMicroTraceClass(name);
        for (unsigned it = 0; it < iters; ++it) {
            std::uint64_t seed = baseSeed() + 50000 + it * 31;
            MicroTrace t = cls.generate(seed, 256);
            oracle::ConcurrentResult r = oracle::runConcurrent(t);
            EXPECT_FALSE(r.failed)
                << describeSeed(name, seed) << "\n"
                << r.message;
        }
    }
}

TEST(ConcurrentRaces, PinnedWritebackRacingInflightMissRegression)
{
    // The PR-1 duplicate-tag bug: a writeback to line V write-allocates
    // while V's demand miss is still in flight; the late fill must not
    // install a second copy of the tag. Cover several race offsets --
    // the memory round trip is 40 cycles, so every gap below that lands
    // the writeback inside the miss window.
    for (unsigned gap : {0u, 1u, 2u, 5u, 10u, 39u}) {
        MicroTrace t;
        const Addr v = 0x2000;
        t.ops = {
            {MicroOpKind::Load, v, 0x400000, 0},
            {MicroOpKind::Writeback, v, 0x400000, gap},
            {MicroOpKind::Load, v, 0x400000, 1},
            // Alias pressure evicts V afterwards, so the (single) dirty
            // copy must also write back exactly once.
            {MicroOpKind::Load, v + 16 * 1, 0x400004, 2},
            {MicroOpKind::Load, v + 16 * 2, 0x400008, 0},
            {MicroOpKind::Load, v + 16 * 3, 0x40000c, 0},
            {MicroOpKind::Load, v + 16 * 4, 0x400010, 0},
            {MicroOpKind::Load, v, 0x400000, 0},
        };
        oracle::ConcurrentResult r = oracle::runConcurrent(t);
        EXPECT_FALSE(r.failed) << "gap " << gap << "\n" << r.message;
        EXPECT_EQ(r.demandAccesses,
                  r.demandHits + r.demandMisses + r.demandMerged)
            << "gap " << gap;
    }
}

// ===================================================================
// Berti differential: production prefetcher vs the paper
// transcription, event-fed.
// ===================================================================

namespace
{

/** Compare learned delta tables for one IP; reports the first diff. */
void
expectSameDeltas(const BertiPrefetcher &prod, const RefBerti &ref,
                 Addr ip, const std::string &ctx)
{
    auto a = prod.deltasFor(ip);
    auto b = ref.deltasFor(ip);
    ASSERT_EQ(a.size(), b.size()) << ctx << " ip 0x" << std::hex << ip;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].delta, b[i].delta)
            << ctx << " ip 0x" << std::hex << ip << " slot " << i;
        EXPECT_EQ(a[i].coverage, b[i].coverage)
            << ctx << " ip 0x" << std::hex << ip << " slot " << i;
        EXPECT_EQ(static_cast<int>(a[i].status),
                  static_cast<int>(b[i].status))
            << ctx << " ip 0x" << std::hex << ip << " slot " << i;
    }
}

} // namespace

TEST(BertiDifferential, RandomEventStreamsMatchReference)
{
    unsigned iters = oracle::propertyIterations(3);
    for (unsigned it = 0; it < iters; ++it) {
        std::uint64_t seed = baseSeed() + 90000 + it;
        Rng rng(seed);
        std::string ctx = describeSeed("berti-events", seed);

        BertiPrefetcher prod;
        test::RecordingPort port;
        prod.bind(&port);
        RefBerti ref;

        const std::array<Addr, 6> ips = {0x400100, 0x400140, 0x400180,
                                         0x4001c0, 0x400200, 0x400240};
        std::array<Addr, 6> cursor{};
        const std::array<int, 6> strides = {1, 2, -1, 7, 3, -4};
        for (std::size_t i = 0; i < ips.size(); ++i)
            cursor[i] = 0x100000 + i * 0x2000;
        const double occs[] = {0.0, 0.3, 0.65, 0.9};

        Cycle clock = 1000;
        for (unsigned ev = 0; ev < 2000; ++ev) {
            clock += 1 + rng.nextBounded(60);
            double occ = occs[rng.nextBounded(4)];
            port.time = clock;
            port.occupancy = occ;

            std::size_t ipi = rng.nextBounded(ips.size());
            if (rng.nextBool(0.08))
                cursor[ipi] = 0x100000 + rng.nextBounded(0x4000);
            else
                cursor[ipi] = static_cast<Addr>(
                    static_cast<std::int64_t>(cursor[ipi]) +
                    strides[ipi]);
            Addr line = cursor[ipi];

            double roll = rng.nextDouble();
            if (roll < 0.20) {
                // Fill event; latencies reach past the 12-bit counter
                // so the overflow-skips-training rule is exercised.
                Prefetcher::FillInfo f;
                f.vLine = line;
                f.pLine = line;
                f.ip = ips[ipi];
                f.byPrefetch = rng.nextBool(0.3);
                f.hadDemandWaiter = rng.nextBool(0.7);
                f.latency = rng.nextBounded(6000);
                prod.onFill(f);
                ref.onFill(f, clock, occ);
            } else {
                Prefetcher::AccessInfo a;
                a.vLine = line;
                a.pLine = line;
                a.ip = ips[ipi];
                a.type = rng.nextBool(0.2) ? AccessType::Rfo
                                           : AccessType::Load;
                if (roll < 0.65) {
                    a.hit = false;
                } else if (roll < 0.88) {
                    a.hit = true;
                } else {
                    a.hit = true;
                    a.firstHitOnPrefetch = true;
                    a.prefetchLatency = rng.nextBool(0.2)
                        ? 0
                        : 1 + rng.nextBounded(6000);
                }
                prod.onAccess(a);
                ref.onAccess(a, clock, occ);
            }

            ASSERT_EQ(port.issues.size(), ref.issued.size())
                << ctx << " after event " << ev;
        }

        for (std::size_t i = 0; i < port.issues.size(); ++i) {
            ASSERT_EQ(port.issues[i].line, ref.issued[i].line)
                << ctx << " issue " << i;
            ASSERT_EQ(static_cast<int>(port.issues[i].level),
                      static_cast<int>(ref.issued[i].level))
                << ctx << " issue " << i;
        }
        for (Addr ip : ips)
            expectSameDeltas(prod, ref, ip, ctx);
    }
}

TEST(BertiDifferential, TeeInsideMachineMatchesReference)
{
    // Wrap the production Berti in a tee inside a full Machine, run a
    // multi-stream workload, then replay the recorded event stream into
    // the paper transcription: learned tables and the issued prefetch
    // sequence must match exactly.
    oracle::TeeLog log;
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = oracle::teeFactory(prefetch::make("berti"), &log);

    StreamGen::Params sp;
    sp.streams = 4;
    sp.strideLines = 2;
    sp.regionLines = 1u << 16;
    StreamGen gen(sp);
    Machine m(cfg, {&gen});
    m.run(25000);

    ASSERT_FALSE(log.events.empty());
    ASSERT_FALSE(log.issues.empty())
        << "stream workload should trigger prefetching";

    RefBerti ref;
    std::vector<Addr> ips;
    for (const oracle::TeeEvent &e : log.events) {
        if (e.isFill) {
            ref.onFill(e.fill, e.now, e.mshrOccupancy);
        } else {
            ref.onAccess(e.access, e.now, e.mshrOccupancy);
            if (std::find(ips.begin(), ips.end(), e.access.ip) ==
                ips.end()) {
                ips.push_back(e.access.ip);
            }
        }
    }

    ASSERT_EQ(log.issues.size(), ref.issued.size());
    for (std::size_t i = 0; i < log.issues.size(); ++i) {
        ASSERT_EQ(log.issues[i].line, ref.issued[i].line)
            << "issue " << i;
        ASSERT_EQ(static_cast<int>(log.issues[i].level),
                  static_cast<int>(ref.issued[i].level))
            << "issue " << i;
    }

    auto *tee = static_cast<oracle::TeePrefetcher *>(m.l1d(0).prefetcher());
    auto *prod = static_cast<BertiPrefetcher *>(tee->innerPrefetcher());
    ASSERT_NE(prod, nullptr);
    for (Addr ip : ips)
        expectSameDeltas(*prod, ref, ip, "machine-tee");
}

// ===================================================================
// Metamorphic invariants across every prefetcher spec.
// ===================================================================

TEST(Metamorphic, PrefetchingNeverChangesDemandSemantics)
{
    // Every spec the registry can build — including the representative
    // hybrid(...) composition specs — placed at the level it is
    // designed for. Driven off prefetch::allSpecs() so a newly
    // registered prefetcher is covered with zero edits here; the
    // registry keeps "none" first (the baseline below relies on it).
    const std::vector<std::string> specs = prefetch::allSpecs();
    ASSERT_GE(specs.size(), 17u);
    ASSERT_EQ(specs.front(), "none");

    std::uint64_t seed = baseSeed() + 424242;
    MicroTrace t = oracle::findMicroTraceClass("page-crossing-strides")
                       .generate(seed, 256);

    oracle::SerializedRunStats baseline;
    bool have_baseline = false;
    for (const std::string &name : specs) {
        const bool atL2 = prefetch::defaultLevelIsL2(name);
        PrefetcherFactory f = makeSpec(name).l1d;  // factory by name
        oracle::SerializedRunStats r = oracle::runSerializedWithPrefetchers(
            t, DiffConfig{}, atL2 || !f ? nullptr : f(),
            atL2 && f ? f() : nullptr);

        SCOPED_TRACE(std::string("spec ") + name + " " +
                     describeSeed("page-crossing-strides", seed));
        ASSERT_FALSE(r.wedged) << r.message;

        // Retired-op semantics: every demand op completes exactly once.
        EXPECT_EQ(r.completed, r.demandOps);
        // Demand accounting never counts prefetch traffic.
        EXPECT_EQ(r.l1.demandAccesses, r.demandOps);
        // Stats algebra at every level.
        for (const CacheStats *cs : {&r.l1, &r.l2, &r.llc}) {
            EXPECT_EQ(cs->demandAccesses,
                      cs->demandHits + cs->demandMisses +
                          cs->demandMshrMerged);
        }

        if (!have_baseline) {
            // First spec is "none": the baseline, and a strict no-op on
            // every prefetch stats field at every level.
            ASSERT_EQ(name, "none");
            baseline = r;
            have_baseline = true;
            for (const CacheStats *cs : {&r.l1, &r.l2, &r.llc}) {
                EXPECT_EQ(cs->prefetchIssued, 0u);
                EXPECT_EQ(cs->prefetchFills, 0u);
                EXPECT_EQ(cs->prefetchUseful, 0u);
                EXPECT_EQ(cs->prefetchUseless, 0u);
                EXPECT_EQ(cs->prefetchLate, 0u);
                EXPECT_EQ(cs->prefetchDroppedFull, 0u);
                EXPECT_EQ(cs->prefetchDroppedTlb, 0u);
                EXPECT_EQ(cs->prefetchDroppedPage, 0u);
                EXPECT_EQ(cs->prefetchCrossPage, 0u);
            }
        } else {
            // Demand totals are invariant under any prefetcher.
            EXPECT_EQ(r.demandOps, baseline.demandOps);
            EXPECT_EQ(r.l1.demandAccesses, baseline.l1.demandAccesses);
        }
    }
}

TEST(Metamorphic, PqGrowthNeverHurtsRegularStream)
{
    // On a perfectly regular stream a bigger prefetch queue can only
    // keep more (correct) prefetches alive: L1D demand misses must be
    // non-increasing in PQ size.
    std::vector<std::uint64_t> misses;
    for (unsigned pq : {2u, 8u, 32u}) {
        MachineConfig cfg = MachineConfig::sunnyCove(1);
        cfg.l1d.pqSize = pq;
        cfg.l1dPrefetcher = [] {
            return std::make_unique<BertiPrefetcher>();
        };
        StreamGen::Params sp;
        sp.streams = 2;
        sp.strideLines = 1;
        sp.regionLines = 1u << 16;
        StreamGen gen(sp);
        Machine m(cfg, {&gen});
        m.run(30000);
        misses.push_back(m.liveStats(0).l1d.demandMisses);
    }
    EXPECT_LE(misses[1], misses[0]) << "pq 8 vs 2";
    EXPECT_LE(misses[2], misses[1]) << "pq 32 vs 8";
}

} // namespace berti
