/**
 * @file
 * Simulator-speed overhaul tests: the hot-path containers (RingQueue /
 * IdSet), the MSHR arena (no live-entry recycling, audited), the
 * quiescence cycle-skip's bit-identical-results invariant (golden
 * matrix cells, adversarial micro-traces, a multi-core mix), and the
 * allocation-free steady-state demand path.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "obs/export.hh"
#include "oracle/microtrace.hh"
#include "sim/options.hh"
#include "sim/ring.hh"
#include "trace/instr.hh"
#include "trace/registry.hh"

// ------------------------------------------------------- allocation probe
// Global operator new/delete override counting every heap allocation in
// the process. The steady-state test asserts the count stays flat across
// a measurement run; everything else ignores it. GCC flags free() on
// new-tracked pointers when the replacement is visible — the pairing is
// consistent (new -> malloc, delete -> free), so the warning is noise.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::atomic<std::uint64_t> g_heapAllocs{0};

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace berti
{

namespace
{

/** Scoped environment override; restores the previous value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : key(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had = true;
            previous = old;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had)
            setenv(key, previous.c_str(), 1);
        else
            unsetenv(key);
    }

  private:
    const char *key;
    bool had = false;
    std::string previous;
};

// ================================================================ RingQueue

TEST(RingQueue, FifoOrderSurvivesGrowth)
{
    RingQueue<int> q;
    for (int i = 0; i < 100; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapAroundReusesStorage)
{
    RingQueue<int> q(8);
    std::size_t cap = q.capacity();
    // Interleave pushes and pops far past the capacity; the ring must
    // wrap in place without ever growing.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 1000; ++round) {
        q.push_back(next_in++);
        q.push_back(next_in++);
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(q.capacity(), cap);
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowthWhileWrappedRelinearises)
{
    RingQueue<int> q(4);
    // Advance head so the live span wraps the physical end.
    for (int i = 0; i < 3; ++i)
        q.push_back(i);
    q.pop_front();
    q.pop_front();
    for (int i = 3; i < 40; ++i)
        q.push_back(i);  // forces growth mid-wrap
    for (int expect = 2; expect < 40; ++expect) {
        EXPECT_EQ(q.front(), expect);
        q.pop_front();
    }
}

TEST(RingQueue, EraseKeepsRelativeOrder)
{
    RingQueue<int> q;
    for (int i = 0; i < 6; ++i)
        q.push_back(i);  // 0 1 2 3 4 5
    q.erase(2);          // 0 1 3 4 5
    q.erase(0);          // 1 3 4 5
    std::vector<int> got;
    for (int v : q)
        got.push_back(v);
    EXPECT_EQ(got, (std::vector<int>{1, 3, 4, 5}));
}

TEST(RingQueue, IndexingIsFrontRelative)
{
    RingQueue<int> q(4);
    q.push_back(10);
    q.push_back(11);
    q.pop_front();
    q.push_back(12);
    EXPECT_EQ(q[0], 11);
    EXPECT_EQ(q[1], 12);
}

TEST(IdSet, InsertEraseCount)
{
    IdSet s;
    s.insert(7);
    s.insert(9);
    s.insert(7);  // membership multiset-by-use: callers never double-add
    EXPECT_EQ(s.count(7), 1u);
    EXPECT_EQ(s.count(8), 0u);
    s.erase(7);
    s.erase(9);
    s.erase(42);  // erasing a missing id is a no-op
    EXPECT_EQ(s.count(9), 0u);
}

// ============================================================== SimOptions

TEST(SimOptionsSkip, DefaultsOnAndHonoursEnv)
{
    EXPECT_TRUE(sim::SimOptions::fromEnv().cycleSkip);
    {
        ScopedEnv off("BERTI_CYCLE_SKIP", "0");
        EXPECT_FALSE(sim::SimOptions::fromEnv().cycleSkip);
    }
    {
        ScopedEnv on("BERTI_CYCLE_SKIP", "1");
        EXPECT_TRUE(sim::SimOptions::fromEnv().cycleSkip);
    }
    EXPECT_TRUE(sim::SimOptions::fromEnv().cycleSkip);
}

TEST(SimOptionsSkip, MachineConfigPicksUpTheKnob)
{
    ScopedEnv off("BERTI_CYCLE_SKIP", "0");
    EXPECT_FALSE(MachineConfig::sunnyCove(1).cycleSkip);
}

// ==================================================== cycle-skip identity

/** One simulation cell exported as canonical JSON. */
std::string
cellJson(const Workload &w, const std::string &spec_name, bool skip,
         const SimParams &params)
{
    ScopedEnv env("BERTI_CYCLE_SKIP", skip ? "1" : "0");
    SimResult r = simulate(w, makeSpec(spec_name), params);
    return obs::toJson(resultSnapshot(r));
}

TEST(CycleSkip, GoldenMatrixCellsAreBitIdentical)
{
    SimParams params;
    params.warmupInstructions = 10000;
    params.measureInstructions = 40000;
    const char *cells[] = {"mcf-like.1536", "cactu-like.709"};
    const char *specs[] = {"berti", "none"};
    for (const char *cell : cells) {
        const Workload &w = findWorkload(cell);
        for (const char *spec : specs) {
            std::string off = cellJson(w, spec, false, params);
            std::string on = cellJson(w, spec, true, params);
            EXPECT_EQ(off, on) << cell << "/" << spec
                               << " diverged under cycle-skip";
        }
    }
}

TEST(CycleSkip, AdversarialMicroTracesAreBitIdentical)
{
    SimParams params;
    params.warmupInstructions = 2000;
    params.measureInstructions = 10000;
    std::uint64_t seed = oracle::testSeed(0x5eed5139);
    for (const auto &cls : oracle::microTraceClasses()) {
        oracle::MicroTrace trace = cls.generate(seed, 4000);
        auto instrs = oracle::toInstrs(trace);
        Workload w;
        w.name = "micro:" + cls.name;
        w.suite = "micro";
        w.make = [instrs] {
            return std::make_unique<ScriptedGen>(instrs);
        };
        std::string off = cellJson(w, "berti", false, params);
        std::string on = cellJson(w, "berti", true, params);
        EXPECT_EQ(off, on) << cls.name << " diverged under cycle-skip"
                           << " (seed 0x" << std::hex << seed << ")";
    }
}

TEST(CycleSkip, MultiCoreMixIsBitIdentical)
{
    SimParams params;
    params.warmupInstructions = 5000;
    params.measureInstructions = 20000;
    std::vector<Workload> mix = {findWorkload("mcf-like.1536"),
                                 findWorkload("bwaves-like.2609")};
    PrefetcherSpec spec = makeSpec("berti");

    std::vector<std::string> off, on;
    {
        ScopedEnv env("BERTI_CYCLE_SKIP", "0");
        for (const SimResult &r : simulateMix(mix, spec, params))
            off.push_back(obs::toJson(resultSnapshot(r)));
    }
    {
        ScopedEnv env("BERTI_CYCLE_SKIP", "1");
        for (const SimResult &r : simulateMix(mix, spec, params))
            on.push_back(obs::toJson(resultSnapshot(r)));
    }
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t c = 0; c < off.size(); ++c)
        EXPECT_EQ(off[c], on[c]) << "core " << c << " diverged";
}

// ============================================================== MSHR arena

// A tiny MSHR arena under heavy miss pressure with the invariant
// auditor checking every 256 cycles: entries must recycle through the
// free-list without a live entry ever appearing on it, and the
// unsent-retry counter must track reality exactly (the auditor fails
// the run otherwise).
TEST(MshrArena, ReuseUnderAuditWithTinyArena)
{
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1d.mshrs = 4;
    cfg.l2.mshrs = 4;
    cfg.audit.enabled = true;
    cfg.audit.interval = 256;
    cfg.l1dPrefetcher = makeSpec("berti").l1d;

    auto gen = findWorkload("mcf-like.1536").make();
    Machine machine(cfg, {gen.get()});
    EXPECT_NO_THROW(machine.run(30000));
    EXPECT_GT(machine.liveStats(0).l1d.demandMisses, 0u);
}

TEST(MshrArena, ReuseUnderAuditWithCycleSkipOff)
{
    ScopedEnv env("BERTI_CYCLE_SKIP", "0");
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1d.mshrs = 4;
    cfg.audit.enabled = true;
    cfg.audit.interval = 256;

    auto gen = findWorkload("mcf-like.1536").make();
    Machine machine(cfg, {gen.get()});
    EXPECT_NO_THROW(machine.run(30000));
}

// ====================================================== allocation freedom

// The acceptance criterion of the allocation-free request path: after
// warmup has grown every arena, ring and scratch buffer to steady
// state, a full measurement run on the L1D demand path performs zero
// heap allocations.
TEST(AllocationFree, SteadyStateDemandPathDoesNotAllocate)
{
    auto gen = findWorkload("mcf-like.1536").make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    Machine machine(cfg, {gen.get()});

    // Warmup: arenas fill, rings reach their high-water marks, waiter
    // vectors and prefetcher scratch grow to their retained capacity.
    machine.run(60000);

    std::uint64_t before = g_heapAllocs.load();
    machine.run(40000);
    std::uint64_t after = g_heapAllocs.load();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations on the steady-state "
        << "demand path";
}

// Same property with the cycle-skip disabled: the no-skip loop must be
// equally allocation-free (the skip only removes iterations).
TEST(AllocationFree, SteadyStateWithoutCycleSkip)
{
    ScopedEnv env("BERTI_CYCLE_SKIP", "0");
    auto gen = findWorkload("bwaves-like.2609").make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.l1dPrefetcher = makeSpec("berti").l1d;
    Machine machine(cfg, {gen.get()});

    machine.run(60000);

    std::uint64_t before = g_heapAllocs.load();
    machine.run(40000);
    std::uint64_t after = g_heapAllocs.load();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations on the steady-state "
        << "demand path (cycle-skip off)";
}

} // namespace
} // namespace berti
