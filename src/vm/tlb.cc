#include "vm/tlb.hh"

#include "obs/metrics.hh"
#include "sim/serialize.hh"

namespace berti
{

Tlb::Tlb(unsigned sets, unsigned ways, Cycle latency)
    : sets(sets), ways(ways), lat(latency),
      entries(static_cast<std::size_t>(sets) * ways)
{}

bool
Tlb::lookup(Addr vpage)
{
    ++stats.accesses;
    std::size_t base = static_cast<std::size_t>(index(vpage)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (entries[base + w].vpage == vpage) {
            entries[base + w].stamp = ++tick;
            return true;
        }
    }
    ++stats.misses;
    return false;
}

bool
Tlb::probe(Addr vpage) const
{
    std::size_t base = static_cast<std::size_t>(index(vpage)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (entries[base + w].vpage == vpage)
            return true;
    }
    return false;
}

void
Tlb::fill(Addr vpage)
{
    std::size_t base = static_cast<std::size_t>(index(vpage)) * ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < ways; ++w) {
        if (entries[base + w].vpage == vpage)
            return;  // already present
        if (entries[base + w].stamp < entries[victim].stamp)
            victim = base + w;
    }
    entries[victim].vpage = vpage;
    entries[victim].stamp = ++tick;
}

TranslationUnit::TranslationUnit(const Config &cfg)
    : l1(cfg.dtlbSets, cfg.dtlbWays, cfg.dtlbLatency),
      l2(cfg.stlbSets, cfg.stlbWays, cfg.stlbLatency),
      walkLatency(cfg.walkLatency), pt(cfg.pageSeed)
{}

TranslationUnit::Result
TranslationUnit::translate(Addr vaddr)
{
    Addr vpage = pageAddr(vaddr);
    Cycle latency = l1.latency();
    if (!l1.lookup(vpage)) {
        latency += l2.latency();
        if (!l2.lookup(vpage)) {
            latency += walkLatency;
            l2.fill(vpage);
        }
        l1.fill(vpage);
    }
    return {latency, pt.translate(vaddr)};
}

bool
TranslationUnit::prefetchTranslate(Addr vaddr, Addr &paddr)
{
    Addr vpage = pageAddr(vaddr);
    ++l2.stats.prefetchProbes;
    if (!l2.probe(vpage)) {
        ++l2.stats.prefetchProbeMisses;
        return false;
    }
    paddr = pt.translate(vaddr);
    return true;
}

void
Tlb::registerMetrics(obs::MetricsRegistry &registry,
                     const std::string &prefix)
{
    forEachStatField(stats,
                     [&](const char *name, std::uint64_t &cell) {
                         registry.counter(prefix + name, &cell);
                     });
}

void
TranslationUnit::registerMetrics(obs::MetricsRegistry &registry,
                                 const std::string &dtlb_prefix,
                                 const std::string &stlb_prefix)
{
    l1.registerMetrics(registry, dtlb_prefix);
    l2.registerMetrics(registry, stlb_prefix);
}

void
Tlb::saveState(sim::ByteWriter &w) const
{
    w.u64(tick);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const Entry &e : entries) {
        w.u64(e.vpage);
        w.u64(e.stamp);
    }
    sim::saveStatsFields(w, stats);
}

void
Tlb::loadState(sim::ByteReader &r)
{
    tick = r.u64();
    std::uint32_t n = r.u32();
    if (n != entries.size()) {
        r.fail("TLB entry count " + std::to_string(n) +
               " does not match the live TLB's " +
               std::to_string(entries.size()));
    }
    for (Entry &e : entries) {
        e.vpage = r.u64();
        e.stamp = r.u64();
    }
    sim::loadStatsFields(r, stats);
}

void
TranslationUnit::saveState(sim::ByteWriter &w) const
{
    l1.saveState(w);
    l2.saveState(w);
}

void
TranslationUnit::loadState(sim::ByteReader &r)
{
    l1.loadState(r);
    l2.loadState(r);
}

} // namespace berti
