#include "vm/page_table.hh"

namespace berti
{

PageTable::PageTable(std::uint64_t seed)
{
    // Derive three round keys with splitmix64.
    std::uint64_t x = seed;
    for (auto &k : keys) {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        k = z ^ (z >> 31);
    }
}

std::uint32_t
PageTable::round(std::uint32_t half, std::uint64_t key) const
{
    std::uint64_t v = (half ^ key) * 0x2545f4914f6cdd1dull;
    return static_cast<std::uint32_t>(v >> 24) & kHalfMask;
}

Addr
PageTable::translatePage(Addr vpage) const
{
    // 3-round balanced Feistel network over 2*kHalfBits bits: a bijection,
    // hence no two virtual pages alias the same physical page.
    std::uint32_t left =
        static_cast<std::uint32_t>(vpage >> kHalfBits) & kHalfMask;
    std::uint32_t right = static_cast<std::uint32_t>(vpage) & kHalfMask;
    for (const auto &k : keys) {
        std::uint32_t new_right = left ^ round(right, k);
        left = right;
        right = new_right;
    }
    return (static_cast<Addr>(left) << kHalfBits) | right;
}

} // namespace berti
