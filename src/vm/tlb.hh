/**
 * @file
 * TLB hierarchy: L1 dTLB + unified STLB with a fixed-cost page walker,
 * mirroring Table II of the paper. Demand translations update state;
 * prefetch translations only probe the STLB and are dropped on a miss
 * (paper section III-B).
 */

#ifndef BERTI_VM_TLB_HH
#define BERTI_VM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace berti
{

namespace sim
{
class ByteWriter;
class ByteReader;
} // namespace sim

namespace obs
{
class MetricsRegistry;
} // namespace obs

namespace verify
{
class SimAuditor;
} // namespace verify

/** One set-associative TLB level with true-LRU replacement. */
class Tlb
{
  public:
    Tlb(unsigned sets, unsigned ways, Cycle latency);

    /** Demand lookup: updates LRU. */
    bool lookup(Addr vpage);

    /** Non-mutating probe (prefetch path). */
    bool probe(Addr vpage) const;

    void fill(Addr vpage);

    Cycle latency() const { return lat; }

    /** Register this level's counters into the registry. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix);

    /** Checkpoint hooks: LRU tick, entry array and counters. */
    void saveState(sim::ByteWriter &w) const;
    void loadState(sim::ByteReader &r);

    TlbStats stats;

  private:
    friend class verify::SimAuditor;

    struct Entry
    {
        Addr vpage = kNoAddr;
        std::uint64_t stamp = 0;
    };

    unsigned index(Addr vpage) const { return vpage & (sets - 1); }

    unsigned sets;
    unsigned ways;
    Cycle lat;
    std::uint64_t tick = 0;
    std::vector<Entry> entries;
};

/**
 * Full translation path of one core: dTLB -> STLB -> page walk. The page
 * walk has a fixed cost approximating the paper's PSCL-accelerated MMU.
 */
class TranslationUnit
{
  public:
    struct Config
    {
        unsigned dtlbSets = 16, dtlbWays = 4;   //!< 64 entries
        Cycle dtlbLatency = 1;
        unsigned stlbSets = 128, stlbWays = 16; //!< 2048 entries
        Cycle stlbLatency = 8;
        Cycle walkLatency = 80;
        std::uint64_t pageSeed = 0xA5A5;
    };

    explicit TranslationUnit(const Config &cfg);

    /** Demand translation: returns total latency and physical address. */
    struct Result
    {
        Cycle latency;
        Addr paddr;
    };
    Result translate(Addr vaddr);

    /**
     * Prefetch translation: STLB probe only. Returns true and sets paddr
     * on an STLB hit; a miss means the prefetch must be dropped.
     */
    bool prefetchTranslate(Addr vaddr, Addr &paddr);

    const Tlb &dtlb() const { return l1; }
    const Tlb &stlb() const { return l2; }
    const PageTable &pageTable() const { return pt; }

    TlbStats dtlbStats() const { return l1.stats; }
    TlbStats stlbStats() const { return l2.stats; }

    /**
     * Register both TLB levels' counters (under the two prefixes, e.g.
     * "c0.dtlb." / "c0.stlb."). Called once at Machine construction.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &dtlb_prefix,
                         const std::string &stlb_prefix);

    /** Checkpoint hooks: both TLB levels. The page table is stateless
     *  (keyed permutation derived from the construction seed). */
    void saveState(sim::ByteWriter &w) const;
    void loadState(sim::ByteReader &r);

  private:
    Tlb l1;
    Tlb l2;
    Cycle walkLatency;
    PageTable pt;
};

} // namespace berti

#endif // BERTI_VM_TLB_HH
