/**
 * @file
 * Deterministic virtual-to-physical page mapping. A keyed Feistel
 * permutation over the page number gives a stateless, collision-free,
 * access-order-independent mapping, so different prefetcher runs see the
 * identical physical layout (important for fair cross-config comparison).
 */

#ifndef BERTI_VM_PAGE_TABLE_HH
#define BERTI_VM_PAGE_TABLE_HH

#include <cstdint>

#include "sim/types.hh"

namespace berti
{

class PageTable
{
  public:
    explicit PageTable(std::uint64_t seed = 0xA5A5u);

    /** Virtual page number -> physical page number (40-bit domain). */
    Addr translatePage(Addr vpage) const;

    /** Virtual byte address -> physical byte address. */
    Addr
    translate(Addr vaddr) const
    {
        return (translatePage(pageAddr(vaddr)) << kPageBits) |
               pageOffset(vaddr);
    }

  private:
    static constexpr unsigned kHalfBits = 20;  //!< 40-bit page domain
    static constexpr std::uint32_t kHalfMask = (1u << kHalfBits) - 1;

    std::uint32_t round(std::uint32_t half, std::uint64_t key) const;

    std::uint64_t keys[3];
};

} // namespace berti

#endif // BERTI_VM_PAGE_TABLE_HH
