/**
 * @file
 * GAP benchmark kernels (bfs, pagerank, cc, sssp, bc) executed over CSR
 * graphs, emitting the kernels' memory reference streams as traces. The
 * memory behaviour of the real GAP suite is a function of graph topology +
 * CSR layout + kernel access sites, all of which are reproduced here.
 */

#ifndef BERTI_TRACE_GAP_KERNELS_HH
#define BERTI_TRACE_GAP_KERNELS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/generators.hh"
#include "trace/graph.hh"

namespace berti
{

/** Which GAP kernel a GapGen instance runs. */
enum class GapKernel
{
    Bfs,       //!< breadth-first search, restart on exhaustion
    PageRank,  //!< pull-based PR iterations
    Cc,        //!< label-propagation connected components
    Sssp,      //!< Bellman-Ford-style relaxation rounds
    Bc         //!< betweenness centrality: forward BFS + backward gather
};

/**
 * Trace generator that actually executes a GAP kernel over a shared CSR
 * graph and emits one trace instruction per memory reference (plus ALU
 * padding and loop branches). Access sites have fixed IPs:
 *
 *   - frontier/queue reads and rowPtr reads are sequential (regular IPs);
 *   - col[] reads within a neighbour range are sequential;
 *   - property-array gathers (rank/dist/comp/visited) are irregular,
 *     topology-driven accesses — the "chaotic IPs" of the paper's bc-5
 *     analysis.
 */
class GapGen : public QueuedGen
{
  public:
    GapGen(GapKernel kernel, std::shared_ptr<const Csr> graph,
           std::uint64_t seed = 11, unsigned alu_per_mem = 2);

  protected:
    void refill() override;

  private:
    void stepBfs();
    void stepPageRank();
    void stepCc();
    void stepSssp();
    void stepBc();

    Addr rowPtrAddr(std::uint32_t node) const;
    Addr colAddr(std::uint64_t edge) const;
    Addr propAddr(unsigned array, std::uint32_t node) const;

    /** Emit the CSR row lookup for a node (two sequential 4 B reads). */
    void emitRow(unsigned site, std::uint32_t node);

    GapKernel kernel;
    std::shared_ptr<const Csr> g;
    Rng rng;
    unsigned aluPerMem;

    // Kernel cursors.
    std::uint32_t node = 0;       //!< current vertex
    std::uint64_t edge = 0;       //!< current edge within the vertex
    std::uint64_t edgeEnd = 0;

    // BFS/BC state.
    std::vector<std::uint32_t> visitedEpoch;
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> frontier;
    std::vector<std::uint32_t> nextFrontier;
    std::size_t frontierPos = 0;
    bool backward = false;        //!< BC backward phase
    std::uint32_t backNode = 0;
};

} // namespace berti

#endif // BERTI_TRACE_GAP_KERNELS_HH
