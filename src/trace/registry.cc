#include "trace/registry.hh"

#include <map>
#include <mutex>

#include "trace/champsim.hh"
#include "trace/gap_kernels.hh"
#include "trace/generators.hh"
#include "trace/graph.hh"
#include "trace/trace_io.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

/// Graphs are expensive to build and immutable; share them across all
/// kernel workloads and across repeated bench invocations. Workload
/// make() runs concurrently under the parallel runner, so the cache is
/// mutex-guarded; the Csr itself is immutable and safe to share.
std::shared_ptr<const Csr>
sharedGraph(const std::string &name)
{
    static std::mutex mutex;
    static std::map<std::string, std::shared_ptr<const Csr>> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;

    std::shared_ptr<const Csr> g;
    if (name == "kron") {
        g = std::make_shared<const Csr>(makeKronGraph(1u << 19, 8, 0xC0FFEE));
    } else if (name == "urand") {
        g = std::make_shared<const Csr>(
            makeUniformGraph(1u << 19, 8, 0xBEEF));
    } else if (name == "road") {
        g = std::make_shared<const Csr>(makeRoadGraph(768, 512, 0xF00D));
    } else if (name == "twitter") {
        // Denser power law: fewer nodes, heavier hubs (Twitter-like).
        g = std::make_shared<const Csr>(
            makeKronGraph(1u << 18, 16, 0x717717));
    } else if (name == "web") {
        // Sparser, larger crawl-like graph.
        g = std::make_shared<const Csr>(makeKronGraph(1u << 19, 6, 0x3EB));
    } else {
        throw verify::SimError(verify::ErrorKind::Config, "sharedGraph",
                               "unknown graph: '" + name + "'");
    }
    cache.emplace(name, g);
    return g;
}

std::vector<Workload>
buildRegistry()
{
    std::vector<Workload> w;

    // ----------------------------------------------- SPEC CPU2017-like
    w.push_back({"stream-like.1", "spec", [] {
        StreamGen::Params p;
        p.streams = 4;
        p.stepBytes = 16;
        p.aluPerMem = 4;
        p.seed = 101;
        return std::make_unique<StreamGen>(p);
    }});
    w.push_back({"roms-like.1070", "spec", [] {
        StreamGen::Params p;
        p.streams = 6;
        p.strideLines = 2;
        p.stepBytes = 64;
        p.aluPerMem = 5;
        p.seed = 102;
        return std::make_unique<StreamGen>(p);
    }});
    w.push_back({"bwaves-like.1740", "spec", [] {
        MultiStrideGen::Params p;
        p.nIps = 6;
        p.strides = {1, 2, 4, 8, 3, 5};
        p.aluPerMem = 4;
        p.seed = 103;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"lbm-like.2676", "spec", [] {
        LbmLikeGen::Params p;
        p.seed = 104;
        return std::make_unique<LbmLikeGen>(p);
    }});
    w.push_back({"mcf-like.1554", "spec", [] {
        McfLikeGen::Params p;
        p.seed = 105;
        return std::make_unique<McfLikeGen>(p);
    }});
    w.push_back({"mcf-like.782", "spec", [] {
        // Three stride IPs dominate, tightly interleaved: global-delta
        // prefetchers are confused by the interleaving (paper IV-C).
        MultiStrideGen::Params p;
        p.nIps = 3;
        p.strides = {1, 3, -2};
        p.aluPerMem = 7;
        p.randomInterleave = true;
        p.seed = 106;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"mcf-like.1536", "spec", [] {
        // Dominated by a serial pointer chase: nothing is timely.
        PointerChaseGen::Params p;
        p.seed = 107;
        return std::make_unique<PointerChaseGen>(p);
    }});
    w.push_back({"cactu-like.709", "spec", [] {
        // Hundreds of interleaved strided IPs overflow per-IP tables
        // (the CactuBSSN outlier of the paper).
        MultiStrideGen::Params p;
        p.nIps = 320;
        p.strides = {1};
        p.aluPerMem = 14;
        p.seed = 108;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"gcc-like.2226", "spec", [] {
        GccLikeGen::Params p;
        p.seed = 109;
        return std::make_unique<GccLikeGen>(p);
    }});
    w.push_back({"xz-like.3167", "spec", [] {
        GccLikeGen::Params p;
        p.hotLines = 3072;   // spills L1D into L2
        p.sweepEvery = 24;
        p.sweepLen = 96;
        p.seed = 110;
        return std::make_unique<GccLikeGen>(p);
    }});
    w.push_back({"omnetpp-like.874", "spec", [] {
        RandomGen::Params p;
        p.regionLines = 1u << 16;  // 4 MB: LLC-resident-ish, L1/L2 hostile
        p.seed = 111;
        return std::make_unique<RandomGen>(p);
    }});
    w.push_back({"fotonik-like.8225", "spec", [] {
        StreamGen::Params p;
        p.streams = 10;
        p.stepBytes = 32;
        p.aluPerMem = 4;
        p.seed = 112;
        return std::make_unique<StreamGen>(p);
    }});
    w.push_back({"wrf-like.1212", "spec", [] {
        MultiStrideGen::Params p;
        p.nIps = 12;
        p.strides = {1, 1, 2, 2, 3, 4, -1, 5};
        p.aluPerMem = 5;
        p.seed = 113;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"cam4-like.490", "spec", [] {
        StreamGen::Params p;
        p.streams = 8;
        p.stepBytes = 8;
        p.aluPerMem = 6;
        p.seed = 114;
        return std::make_unique<StreamGen>(p);
    }});
    w.push_back({"pop2-like.017", "spec", [] {
        // Irregularly interleaved strided IPs (global-delta hostile).
        MultiStrideGen::Params p;
        p.nIps = 16;
        p.strides = {2, 5, 7, -3};
        p.aluPerMem = 5;
        p.randomInterleave = true;
        p.seed = 115;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"nab-like.863", "spec", [] {
        GccLikeGen::Params p;
        p.hotLines = 512;
        p.sweepEvery = 40;
        p.seed = 116;
        return std::make_unique<GccLikeGen>(p);
    }});
    w.push_back({"x264-like.29", "spec", [] {
        GccLikeGen::Params p;
        p.hotLines = 1024;
        p.sweepEvery = 64;
        p.aluPerMem = 6;
        p.seed = 117;
        return std::make_unique<GccLikeGen>(p);
    }});
    w.push_back({"deepsjeng-like.1378", "spec", [] {
        // L2-resident random working set: hostile to every prefetcher
        // but cheap to miss.
        RandomGen::Params p;
        p.regionLines = 1u << 13;  // 512 KB
        p.aluPerMem = 5;
        p.seed = 118;
        return std::make_unique<RandomGen>(p);
    }});
    w.push_back({"parest-like.1094", "spec", [] {
        // 10 concurrent strided IPs: within reach of Berti's 16-entry
        // delta table (cactu-like.709 covers the table-overflow regime).
        MultiStrideGen::Params p;
        p.nIps = 10;
        p.strides = {1, 2};
        p.aluPerMem = 4;
        p.seed = 119;
        return std::make_unique<MultiStrideGen>(p);
    }});
    w.push_back({"bwaves-like.2609", "spec", [] {
        StreamGen::Params p;
        p.streams = 12;
        p.strideLines = 3;
        p.stepBytes = 64;
        p.aluPerMem = 3;
        p.seed = 120;
        return std::make_unique<StreamGen>(p);
    }});
    w.push_back({"mcf-like.472", "spec", [] {
        McfLikeGen::Params p;
        p.chaseEvery = 2;  // chase-heavier phase of mcf
        p.seed = 121;
        return std::make_unique<McfLikeGen>(p);
    }});
    w.push_back({"lbm-like.3766", "spec", [] {
        LbmLikeGen::Params p;
        p.streams = 12;
        p.aluPerMem = 8;
        p.seed = 122;
        return std::make_unique<LbmLikeGen>(p);
    }});

    // -------------------------------------------------------------- GAP
    struct KernelDef { const char *tag; GapKernel k; };
    const KernelDef kernels[] = {
        {"bfs", GapKernel::Bfs},       {"pr", GapKernel::PageRank},
        {"cc", GapKernel::Cc},         {"sssp", GapKernel::Sssp},
        {"bc", GapKernel::Bc},
    };
    // Larger-than-LLC graphs: property arrays of 4 MB+ and edge arrays
    // of 16 MB+ keep the gathers DRAM-resident, as with the paper's
    // graph inputs.
    const char *graphs[] = {"kron", "urand", "road", "twitter", "web"};
    std::uint64_t gap_seed = 200;
    for (const auto &k : kernels) {
        for (const char *gname : graphs) {
            std::string name = std::string(k.tag) + "-" + gname;
            GapKernel kern = k.k;
            std::string graph_name = gname;
            std::uint64_t seed = ++gap_seed;
            w.push_back({name, "gap", [kern, graph_name, seed] {
                return std::make_unique<GapGen>(kern,
                                                sharedGraph(graph_name),
                                                seed);
            }});
        }
    }

    // ------------------------------------------------------- CloudSuite
    struct CloudDef
    {
        const char *name;
        std::uint64_t code_lines;
        std::uint64_t hot_lines;
        double cold_fraction;
    };
    const CloudDef clouds[] = {
        {"cassandra-like", 6144, 512, 0.05},
        {"classification-like", 2048, 256, 0.12},
        {"cloud9-like", 8192, 768, 0.02},
        {"nutch-like", 7168, 640, 0.03},
        {"streaming-like", 3072, 384, 0.08},
    };
    std::uint64_t cloud_seed = 300;
    for (const auto &c : clouds) {
        CloudLikeGen::Params p;
        p.codeLines = c.code_lines;
        p.hotLines = c.hot_lines;
        p.coldFraction = c.cold_fraction;
        p.seed = ++cloud_seed;
        w.push_back({c.name, "cloud", [p] {
            return std::make_unique<CloudLikeGen>(p);
        }});
    }

    return w;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> registry = buildRegistry();
    return registry;
}

std::vector<Workload>
suiteWorkloads(const std::string &suite)
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

std::vector<Workload>
specGapWorkloads()
{
    std::vector<Workload> out = suiteWorkloads("spec");
    for (auto &w : suiteWorkloads("gap"))
        out.push_back(w);
    return out;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    throw verify::SimError(verify::ErrorKind::Config, "findWorkload",
                           "unknown workload: '" + name + "'");
}

Workload
resolveWorkload(const std::string &name)
{
    constexpr const char *kPrefix = "file:";
    constexpr std::size_t kPrefixLen = 5;
    if (name.compare(0, kPrefixLen, kPrefix) != 0)
        return findWorkload(name);

    std::string path = name.substr(kPrefixLen);
    if (path.empty()) {
        throw verify::SimError(verify::ErrorKind::Config,
                               "resolveWorkload",
                               "malformed file: workload '" + name +
                                   "' (empty path)");
    }

    bool champsim = isChampSimTracePath(path);
    bool native = path.size() >= 6 &&
                  path.compare(path.size() - 6, 6, ".trace") == 0;
    if (!champsim && !native) {
        throw verify::SimError(
            verify::ErrorKind::Config, "resolveWorkload",
            "unsupported trace extension in workload '" + name +
                "' (expected .champsim[.xz|.gz] or .trace)");
    }

    Workload w;
    w.name = name;
    w.suite = "file";
    // Hash now: a missing or unreadable file fails at resolve time with
    // a typed TraceIo error instead of inside a worker thread, and the
    // result-store key is pinned to this exact file content.
    w.contentHash = fileContentHash(path).value();
    if (champsim) {
        w.make = [path] {
            return std::make_unique<ChampSimReplayGen>(path);
        };
    } else {
        w.make = [path] { return std::make_unique<FileReplayGen>(path); };
    }
    return w;
}

} // namespace berti
