#include "trace/generators.hh"

namespace berti
{

namespace
{

/// Data regions of the synthetic virtual address space. Each generator
/// object places its structures at these page-aligned bases.
constexpr Addr kIpBase = 0x400000;
constexpr Addr kRegion0 = 0x10000000;
constexpr Addr kRegionStride = 0x40000000;  //!< 1 GB apart, never overlap

Addr
regionBase(unsigned idx)
{
    return kRegion0 + static_cast<Addr>(idx) * kRegionStride;
}

Addr
siteIp(unsigned site)
{
    return kIpBase + 4 * static_cast<Addr>(site);
}

/// Build a random Hamiltonian cycle over n nodes (pointer-chase chain).
std::vector<std::uint32_t>
buildChain(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> perm(n);
    for (std::uint64_t i = 0; i < n; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = n - 1; i > 0; --i) {
        std::uint64_t j = rng.nextBounded(i + 1);
        std::swap(perm[i], perm[j]);
    }
    std::vector<std::uint32_t> next(n);
    for (std::uint64_t i = 0; i < n; ++i)
        next[perm[i]] = perm[(i + 1) % n];
    return next;
}

} // namespace

TraceInstr
QueuedGen::next()
{
    if (queue.empty())
        refill();
    TraceInstr i = queue.front();
    queue.pop_front();
    return i;
}

void
QueuedGen::emitAlu(Addr ip, unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        TraceInstr in;
        in.ip = ip + 4 * i;
        queue.push_back(in);
    }
}

void
QueuedGen::emitLoad(Addr ip, Addr vaddr, bool depends_on_prev)
{
    TraceInstr in;
    in.ip = ip;
    in.load0 = vaddr;
    in.dependsOnPrevLoad = depends_on_prev;
    queue.push_back(in);
}

void
QueuedGen::emitStore(Addr ip, Addr vaddr)
{
    TraceInstr in;
    in.ip = ip;
    in.store = vaddr;
    queue.push_back(in);
}

void
QueuedGen::emitBranch(Addr ip, bool taken)
{
    TraceInstr in;
    in.ip = ip;
    in.isBranch = true;
    in.taken = taken;
    queue.push_back(in);
}

// ---------------------------------------------------------------- Stream

StreamGen::StreamGen(const Params &params) : p(params)
{
    for (unsigned s = 0; s < p.streams; ++s)
        cursor.push_back(regionBase(s));
}

void
StreamGen::refill()
{
    unsigned s = turn;
    turn = (turn + 1) % p.streams;

    emitLoad(siteIp(100 + s), cursor[s]);
    emitAlu(siteIp(200 + s), p.aluPerMem);

    cursor[s] += p.stepBytes;
    // Advance to the next line (honouring strideLines) once a line is
    // fully consumed at stepBytes granularity.
    if (pageOffset(cursor[s]) % kLineSize == 0 && p.strideLines > 1)
        cursor[s] += static_cast<Addr>(p.strideLines - 1) * kLineSize;
    if (cursor[s] >= regionBase(s) + lineToByte(p.regionLines))
        cursor[s] = regionBase(s);

    // Loop-back branch each 16 iterations: strongly biased taken.
    if (++iter % 16 == 0)
        emitBranch(siteIp(300), iter % 256 != 0);
}

// ----------------------------------------------------------- MultiStride

MultiStrideGen::MultiStrideGen(const Params &params)
    : p(params), rng(p.seed * 97 + 1)
{
    if (p.strides.empty())
        p.strides = {1, 2, 3, 4, -1, 6, 8, 5};
    Rng init(p.seed);
    for (unsigned i = 0; i < p.nIps; ++i) {
        stride.push_back(p.strides[i % p.strides.size()]);
        // Start each IP somewhere inside its region so negative strides
        // have room to run.
        cursor.push_back(regionBase(i % 48) +
                         lineToByte(p.regionLines / 2 +
                                    init.nextBounded(p.regionLines / 4)));
    }
}

void
MultiStrideGen::refill()
{
    unsigned i;
    if (p.randomInterleave) {
        i = static_cast<unsigned>(rng.nextBounded(p.nIps));
    } else {
        i = turn;
        turn = (turn + 1) % p.nIps;
    }

    emitLoad(siteIp(1000 + i), cursor[i]);
    emitAlu(siteIp(4000 + i), p.aluPerMem);

    std::int64_t delta = static_cast<std::int64_t>(stride[i]) *
                         static_cast<std::int64_t>(kLineSize);
    cursor[i] = static_cast<Addr>(static_cast<std::int64_t>(cursor[i]) +
                                  delta);
    Addr base = regionBase(i % 48);
    Addr top = base + lineToByte(p.regionLines);
    if (cursor[i] < base || cursor[i] >= top)
        cursor[i] = base + lineToByte(p.regionLines / 2);

    if (i == 0)
        emitBranch(siteIp(5000), true);
}

// ------------------------------------------------------------------ Lbm

LbmLikeGen::LbmLikeGen(const Params &params) : p(params)
{
    for (unsigned s = 0; s < p.streams; ++s) {
        cursor.push_back(regionBase(s));
        phase.push_back(false);
    }
}

void
LbmLikeGen::refill()
{
    unsigned s = turn;
    turn = (turn + 1) % p.streams;

    emitLoad(siteIp(10 + s), cursor[s]);
    emitAlu(siteIp(30 + s), p.aluPerMem);
    // Result lines are written back at a quarter of the read rate, as in
    // the real kernel's fused store stream.
    if (s == 0 && iter % 4 == 0) {
        emitStore(siteIp(25),
                  cursor[s] + regionBase(40) - regionBase(0));
    }

    // Alternate line deltas +1, +2: lines 0, 1, 3, 4, 6, 7, ...
    cursor[s] += phase[s] ? 2 * kLineSize : kLineSize;
    phase[s] = !phase[s];
    if (cursor[s] >= regionBase(s) + lineToByte(p.regionLines)) {
        cursor[s] = regionBase(s);
        phase[s] = false;
    }
    if (++iter % 8 == 0)
        emitBranch(siteIp(29), iter % 128 != 0);
}

// ------------------------------------------------------------------ Mcf

McfLikeGen::McfLikeGen(const Params &params)
    : p(params), rng(p.seed), chain(buildChain(p.chainNodes, p.seed * 31))
{
    // Per-IP repeating delta cycles; deliberately distinct per IP so a
    // single global delta cannot cover them (paper Figure 3).
    cycles = {
        {-1, -5, -2, -1, -4, -1},   // section II-B irregular example
        {62},                        // the BOP-friendly global stride
        {3, 3, 3, 3, 10},
        {-7},
        {17, 1},
        {2, 2, 2, 9},
    };
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        cursor.push_back(regionBase(4 + static_cast<unsigned>(i)) +
                         lineToByte(p.regionLines / 2));
        cyclePos.push_back(0);
    }
}

void
McfLikeGen::refill()
{
    if (turn % p.chaseEvery == 0) {
        // Pointer-chase IP: serial dependent loads over the chain.
        Addr node_addr = regionBase(3) +
                         static_cast<Addr>(chainPos) * kLineSize;
        emitLoad(siteIp(50), node_addr, true);
        chainPos = chain[chainPos];
        emitAlu(siteIp(60), p.aluPerMem);
    }
    unsigned i = turn % static_cast<unsigned>(cycles.size());
    ++turn;

    emitLoad(siteIp(70 + i), cursor[i]);
    emitAlu(siteIp(80 + i), p.aluPerMem);

    int d = cycles[i][cyclePos[i]];
    cyclePos[i] = (cyclePos[i] + 1) % static_cast<unsigned>(cycles[i].size());
    std::int64_t next_cursor = static_cast<std::int64_t>(cursor[i]) +
                               static_cast<std::int64_t>(d) * kLineSize;
    Addr base = regionBase(4 + i);
    Addr top = base + lineToByte(p.regionLines);
    if (next_cursor < static_cast<std::int64_t>(base) ||
        next_cursor >= static_cast<std::int64_t>(top)) {
        next_cursor = static_cast<std::int64_t>(base +
                                                lineToByte(p.regionLines / 2));
    }
    cursor[i] = static_cast<Addr>(next_cursor);

    if (turn % 12 == 0)
        emitBranch(siteIp(90), rng.nextBool(0.9));
}

// ------------------------------------------------------------------ Gcc

GccLikeGen::GccLikeGen(const Params &params)
    : p(params), rng(p.seed), sweepCursor(regionBase(1))
{}

void
GccLikeGen::refill()
{
    // The cold strided walk is interleaved with the hot-set work (as in
    // real integer code), one line every few accesses — not a tight
    // burst, so its per-IP miss interval is realistic.
    if (++sinceSweep >= p.sweepEvery / 3 + 1) {
        emitLoad(siteIp(110), sweepCursor);
        sweepCursor += kLineSize;
        emitAlu(siteIp(120), p.aluPerMem);
        if (sweepCursor >= regionBase(1) + lineToByte(1u << 20))
            sweepCursor = regionBase(1);
        sinceSweep = 0;
        return;
    }

    // Hot-set access with a Zipf bias: mostly L1-resident.
    Addr line = rng.nextZipf(p.hotLines, 0.9);
    emitLoad(siteIp(100), regionBase(0) + lineToByte(line) +
                          8 * rng.nextBounded(8));
    emitAlu(siteIp(130), p.aluPerMem);
    if (++iter % 4 == 0)
        emitBranch(siteIp(140), rng.nextBool(0.75));
}

// --------------------------------------------------------------- Random

RandomGen::RandomGen(const Params &params) : p(params), rng(p.seed)
{}

void
RandomGen::refill()
{
    emitLoad(siteIp(150), regionBase(0) +
                          lineToByte(rng.nextBounded(p.regionLines)));
    emitAlu(siteIp(160), p.aluPerMem);
}

// --------------------------------------------------------- PointerChase

PointerChaseGen::PointerChaseGen(const Params &params)
    : p(params), chain(buildChain(p.chainNodes, p.seed * 17))
{}

void
PointerChaseGen::refill()
{
    emitLoad(siteIp(170), regionBase(0) +
                          static_cast<Addr>(pos) * kLineSize, true);
    pos = chain[pos];
    emitAlu(siteIp(180), p.aluPerMem);
}

// ---------------------------------------------------------------- Cloud

CloudLikeGen::CloudLikeGen(const Params &params) : p(params), rng(p.seed)
{}

void
CloudLikeGen::refill()
{
    // Walk a large code footprint: each group of instructions comes from
    // a new instruction line, defeating the 32 KB L1I.
    Addr ip = kIpBase + lineToByte(codePos % p.codeLines);
    codePos += 1 + rng.nextBounded(3);

    bool cold = rng.nextBool(p.coldFraction);
    Addr line = cold ? p.hotLines + rng.nextBounded(p.coldLines)
                     : rng.nextZipf(p.hotLines, 0.8);
    emitLoad(ip, regionBase(0) + lineToByte(line) + 8 * rng.nextBounded(8));
    emitAlu(ip + 8, p.aluPerMem);
    if (rng.nextBool(1.0 / p.branchEvery))
        emitBranch(ip + 8 + 4 * p.aluPerMem, rng.nextBool(p.takenBias));
}

} // namespace berti
