/**
 * @file
 * Trace instruction format consumed by the out-of-order core model and the
 * abstract generator interface every synthetic workload implements.
 */

#ifndef BERTI_TRACE_INSTR_HH
#define BERTI_TRACE_INSTR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace berti
{

/**
 * One dynamic instruction of a trace. Mirrors the information content of a
 * ChampSim trace record: instruction pointer, up to two data sources, one
 * data destination and branch outcome. The extra dependsOnPrevLoad flag
 * expresses an address dependence on the most recent earlier load (pointer
 * chasing), which ChampSim encodes through register numbers.
 */
struct TraceInstr
{
    Addr ip = 0;                 //!< virtual instruction pointer
    Addr load0 = kNoAddr;        //!< first data-read byte address
    Addr load1 = kNoAddr;        //!< second data-read byte address
    Addr store = kNoAddr;        //!< data-write byte address
    bool isBranch = false;
    bool taken = false;          //!< actual outcome, used for training
    bool dependsOnPrevLoad = false;  //!< load0 address depends on prior load

    bool isLoad() const { return load0 != kNoAddr; }
    bool isStore() const { return store != kNoAddr; }
    bool isMem() const { return isLoad() || isStore(); }
};

/**
 * Abstract infinite instruction stream. Generators are deterministic: two
 * instances constructed with the same parameters yield identical streams.
 */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Produce the next dynamic instruction. Streams never terminate. */
    virtual TraceInstr next() = 0;
};

/**
 * Replays a fixed instruction vector cyclically. Used by unit tests and
 * the didactic Figure 2/4 bench, where an exactly scripted address
 * sequence is required.
 */
class ScriptedGen : public TraceGenerator
{
  public:
    explicit ScriptedGen(std::vector<TraceInstr> instrs)
        : script(std::move(instrs))
    {}

    TraceInstr
    next() override
    {
        TraceInstr i = script[pos];
        pos = (pos + 1) % script.size();
        return i;
    }

  private:
    std::vector<TraceInstr> script;
    std::size_t pos = 0;
};

} // namespace berti

#endif // BERTI_TRACE_INSTR_HH
