/**
 * @file
 * Synthetic workload generators. Each generator reproduces an access
 * pattern *class* that the paper analyses so the prefetchers exercise the
 * same code paths they would on the corresponding SPEC CPU2017 / CloudSuite
 * traces (see DESIGN.md section 1 for the substitution rationale).
 */

#ifndef BERTI_TRACE_GENERATORS_HH
#define BERTI_TRACE_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "sim/ring.hh"
#include "sim/rng.hh"
#include "trace/instr.hh"

namespace berti
{

/**
 * Convenience base: generators enqueue small instruction groups (memory
 * access + ALU padding + loop branches) and next() drains the queue.
 */
class QueuedGen : public TraceGenerator
{
  public:
    TraceInstr next() override;

  protected:
    /** Refill hook: must enqueue at least one instruction. */
    virtual void refill() = 0;

    void emitAlu(Addr ip, unsigned count);
    void emitLoad(Addr ip, Addr vaddr, bool depends_on_prev = false);
    void emitStore(Addr ip, Addr vaddr);
    void emitBranch(Addr ip, bool taken);

    RingQueue<TraceInstr> queue;
};

/**
 * Sequential streaming over large arrays with several concurrent streams,
 * akin to STREAM/bwaves/fotonik-class SPEC behaviour. Loads walk each
 * stream by a fixed byte step; every stream has a distinct IP.
 */
class StreamGen : public QueuedGen
{
  public:
    struct Params
    {
        unsigned streams = 4;          //!< concurrent stream count
        unsigned strideLines = 1;      //!< line delta between touched lines
        unsigned stepBytes = 8;        //!< per-load walk within a line
        unsigned aluPerMem = 5;        //!< padding instructions per load
        std::uint64_t regionLines = 1u << 20;  //!< wrap region per stream
        std::uint64_t seed = 1;
    };

    explicit StreamGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    std::vector<Addr> cursor;
    unsigned turn = 0;
    unsigned iter = 0;
};

/**
 * N instruction pointers, each with its own constant line stride over its
 * own region, interleaved round-robin. With nIps in the hundreds this is
 * the CactuBSSN regime where per-IP tables thrash and global-delta
 * prefetchers win; with a handful of IPs it is classic multi-stride code.
 */
class MultiStrideGen : public QueuedGen
{
  public:
    struct Params
    {
        unsigned nIps = 8;
        std::vector<int> strides;     //!< line strides, cycled over IPs
        unsigned aluPerMem = 6;
        std::uint64_t regionLines = 1u << 18;
        std::uint64_t seed = 2;
        /**
         * Pick the next IP at random instead of round-robin. Per-IP
         * strides stay perfectly regular, but the *global* access
         * stream becomes aperiodic — the mcf_s-782 situation where
         * global-delta prefetchers lose confidence while local-delta
         * prefetchers are unaffected (paper section IV-C).
         */
        bool randomInterleave = false;
    };

    explicit MultiStrideGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    Rng rng;
    std::vector<Addr> cursor;
    std::vector<int> stride;
    unsigned turn = 0;
};

/**
 * lbm-like kernel: several load IPs (the real kernel reads ~19
 * distributions per cell) whose successive accesses each alternate line
 * deltas +1, +2 (paper section II-B). IP-stride gains no confidence on
 * them; Berti learns timely multiples of +3 with full coverage. A
 * slower store stream writes results back.
 */
class LbmLikeGen : public QueuedGen
{
  public:
    struct Params
    {
        unsigned streams = 8;      //!< alternating-stride load IPs
        unsigned aluPerMem = 10;
        std::uint64_t regionLines = 1u << 20;
        std::uint64_t seed = 3;
    };

    explicit LbmLikeGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    std::vector<Addr> cursor;
    std::vector<bool> phase;
    unsigned turn = 0;
    unsigned iter = 0;
};

/**
 * mcf-like kernel: a pointer-chasing IP over a large chain plus several
 * IPs with *different* per-IP repeating delta cycles (paper Figure 3:
 * the best delta differs per IP; one irregular cycle is the -1,-5,-2,-1,
 * -4,-1 example of section II-B).
 */
class McfLikeGen : public QueuedGen
{
  public:
    struct Params
    {
        unsigned chaseEvery = 4;       //!< pointer-chase frequency
        unsigned aluPerMem = 6;
        std::uint64_t chainNodes = 1u << 16;
        std::uint64_t regionLines = 1u << 19;
        std::uint64_t seed = 4;
    };

    explicit McfLikeGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    Rng rng;
    std::vector<std::uint32_t> chain;  //!< precomputed random cycle
    std::uint32_t chainPos = 0;
    /// per-IP repeating delta cycles (line deltas)
    std::vector<std::vector<int>> cycles;
    std::vector<Addr> cursor;
    std::vector<unsigned> cyclePos;
    unsigned turn = 0;
};

/**
 * gcc-like mixed integer code: a hot, cache-resident working set with
 * occasional strided sweeps and pattern-heavy branches. Low-to-moderate
 * MPKI, exercises the everything-hits fast path of the prefetchers.
 */
class GccLikeGen : public QueuedGen
{
  public:
    struct Params
    {
        std::uint64_t hotLines = 256;    //!< fits in L1D
        unsigned sweepLen = 64;          //!< (kept for compatibility)
        unsigned sweepEvery = 48;        //!< /8+1 hot accesses per line
        unsigned aluPerMem = 3;
        std::uint64_t seed = 5;
    };

    explicit GccLikeGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    Rng rng;
    Addr sweepCursor;
    unsigned sinceSweep = 0;
    unsigned iter = 0;
};

/** Uniform random lines over a big region: prefetch-hostile control. */
class RandomGen : public QueuedGen
{
  public:
    struct Params
    {
        std::uint64_t regionLines = 1u << 22;
        unsigned aluPerMem = 8;
        std::uint64_t seed = 6;
    };

    explicit RandomGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    Rng rng;
};

/** Pure serial pointer chase: latency-bound, nothing to prefetch early. */
class PointerChaseGen : public QueuedGen
{
  public:
    struct Params
    {
        std::uint64_t chainNodes = 1u << 18;
        unsigned aluPerMem = 10;
        std::uint64_t seed = 7;
    };

    explicit PointerChaseGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    std::vector<std::uint32_t> chain;
    std::uint32_t pos = 0;
};

/**
 * CloudSuite-like server workload: huge instruction footprint (front-end
 * bound, high L1I MPKI), shallow data reuse with a hot set plus sparse
 * random records, and poorly predictable branches. Data MPKI is low by
 * construction, matching the paper's CloudSuite analysis.
 */
class CloudLikeGen : public QueuedGen
{
  public:
    struct Params
    {
        std::uint64_t codeLines = 4096;    //!< distinct instruction lines
        std::uint64_t hotLines = 512;
        std::uint64_t coldLines = 1u << 21;
        double coldFraction = 0.06;
        double branchEvery = 6.0;
        double takenBias = 0.6;
        unsigned aluPerMem = 4;
        std::uint64_t seed = 8;
    };

    explicit CloudLikeGen(const Params &params);

  protected:
    void refill() override;

  private:
    Params p;
    Rng rng;
    std::uint64_t codePos = 0;
};

} // namespace berti

#endif // BERTI_TRACE_GENERATORS_HH
