/**
 * @file
 * ChampSim-compatible real-trace ingestion: a decoder for the ChampSim
 * `input_instr` fixed-record format layered over a zero-copy streaming
 * input stack, so the SPEC/GAP sim-point traces the paper evaluates on
 * drop straight into the workload registry next to the synthetic
 * generators (`file:/path/to/foo.champsim.xz` works anywhere a
 * workload name does).
 *
 * The on-disk record is the 64-byte little-endian struct documented by
 * ChampSim's `read_trace.py`:
 *
 *   offset  0  u64    ip
 *   offset  8  u8     is_branch
 *   offset  9  u8     branch_taken
 *   offset 10  u8[2]  destination_registers
 *   offset 12  u8[4]  source_registers
 *   offset 16  u64[2] destination_memory
 *   offset 32  u64[4] source_memory
 *
 * There is no file header: a ChampSim trace is a bare record stream,
 * usually xz- or gzip-compressed. Decode failures (a stream that ends
 * mid-record, an unreadable file, a missing or failing decompressor)
 * surface as verify::SimError (kind TraceIo) carrying the path and the
 * byte offset of the failure — never a crash or a silently short
 * stream.
 *
 * Input stack layering (each independently testable):
 *   TraceSource        borrow-bytes interface (view/consume/rewind)
 *   MmapTraceSource    mmap-backed, zero-copy: decode reads the page
 *                      cache directly, no intermediate buffer
 *   StreamTraceSource  bounded-buffer streaming through an external
 *                      `xz -dc` / `gzip -dc` process (or plain stdio
 *                      for raw files); the buffer is allocated once
 *   PreloadedTraceSource  whole stream resident in memory (tests,
 *                      differential runs, fuzz corpora)
 *   ChampSimDecoder    record decode + TraceInstr mapping + fault hook
 *   ChampSimReplayGen  TraceGenerator adapter (cyclic replay)
 */

#ifndef BERTI_TRACE_CHAMPSIM_HH
#define BERTI_TRACE_CHAMPSIM_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace verify
{
class FaultInjector;
} // namespace verify

/** Size of one ChampSim input_instr record on disk. */
constexpr std::size_t kChampSimRecordBytes = 64;
constexpr unsigned kChampSimNumDestinations = 2;
constexpr unsigned kChampSimNumSources = 4;

/** One decoded input_instr record, field for field. */
struct ChampSimRecord
{
    std::uint64_t ip = 0;
    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;
    std::uint8_t destRegisters[kChampSimNumDestinations] = {};
    std::uint8_t srcRegisters[kChampSimNumSources] = {};
    std::uint64_t destMemory[kChampSimNumDestinations] = {};
    std::uint64_t srcMemory[kChampSimNumSources] = {};
};

/**
 * Borrow-bytes input interface the decoder reads from. view() exposes
 * up to `want` contiguous bytes at the cursor without copying them out
 * (the pointer stays valid until the next consume()/rewind() call);
 * consume() advances the cursor. A short view (< want) means the
 * stream ended. offset() is the cursor position in decompressed bytes,
 * which is what every decode error reports.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Borrow up to want bytes; got <= want, got < want only at end of
     *  stream. Returns nullptr only when got == 0. */
    virtual const unsigned char *view(std::size_t want,
                                      std::size_t &got) = 0;

    /** Advance the cursor past n previously viewed bytes. */
    virtual void consume(std::size_t n) = 0;

    /** Restart the stream from byte 0. */
    virtual void rewind() = 0;

    /** Bytes consumed since the last rewind (decode error offsets). */
    virtual std::uint64_t offset() const = 0;

    /** The file this source reads (error reporting). */
    virtual const std::string &path() const = 0;
};

/**
 * mmap-backed zero-copy source: the decoder reads record fields
 * straight out of the mapping. Construction throws
 * verify::SimError(TraceIo) when the file cannot be opened, sized or
 * mapped.
 */
class MmapTraceSource : public TraceSource
{
  public:
    explicit MmapTraceSource(const std::string &file);
    ~MmapTraceSource() override;

    MmapTraceSource(const MmapTraceSource &) = delete;
    MmapTraceSource &operator=(const MmapTraceSource &) = delete;

    const unsigned char *view(std::size_t want, std::size_t &got) override;
    void consume(std::size_t n) override;
    void rewind() override { pos = 0; }
    std::uint64_t offset() const override { return pos; }
    const std::string &path() const override { return file; }

    std::uint64_t size() const { return mapBytes; }

  private:
    std::string file;
    const unsigned char *map = nullptr;
    std::uint64_t mapBytes = 0;
    std::uint64_t pos = 0;
};

/**
 * Whole stream resident in memory: either read eagerly from a file or
 * handed in as raw bytes (fuzz corpora, differential runs).
 */
class PreloadedTraceSource : public TraceSource
{
  public:
    explicit PreloadedTraceSource(const std::string &file);
    PreloadedTraceSource(std::vector<unsigned char> data,
                         std::string label);

    const unsigned char *view(std::size_t want, std::size_t &got) override;
    void consume(std::size_t n) override;
    void rewind() override { pos = 0; }
    std::uint64_t offset() const override { return pos; }
    const std::string &path() const override { return file; }

  private:
    std::string file;
    std::vector<unsigned char> bytes;
    std::uint64_t pos = 0;
};

/** External decompressor a StreamTraceSource pipes through. */
enum class TraceCompression : std::uint8_t
{
    None,  //!< plain stdio read, no subprocess
    Xz,    //!< `xz -dc` pipe
    Gzip   //!< `gzip -dc` pipe
};

/** Compression implied by a path's extension (.xz / .gz / raw). */
TraceCompression compressionForPath(const std::string &path);

/**
 * Bounded-buffer streaming source. Raw files are read through stdio;
 * .xz/.gz files are piped through the external `xz -dc` / `gzip -dc`
 * tool. The refill buffer is allocated once at construction, so
 * steady-state decode does not touch the heap. A missing file, a
 * missing decompressor tool, or a decompressor that exits non-zero all
 * surface as verify::SimError(TraceIo) naming the path and offset —
 * the graceful typed fallback for hosts without xz/gzip.
 */
class StreamTraceSource : public TraceSource
{
  public:
    explicit StreamTraceSource(const std::string &file);
    StreamTraceSource(const std::string &file, TraceCompression comp,
                      std::size_t bufferBytes = 1u << 18);
    ~StreamTraceSource() override;

    StreamTraceSource(const StreamTraceSource &) = delete;
    StreamTraceSource &operator=(const StreamTraceSource &) = delete;

    const unsigned char *view(std::size_t want, std::size_t &got) override;
    void consume(std::size_t n) override;
    void rewind() override;
    std::uint64_t offset() const override { return consumed; }
    const std::string &path() const override { return file; }

  private:
    void open();
    void close();
    void refill();

    std::string file;
    TraceCompression comp;
    std::vector<unsigned char> buf;
    std::size_t head = 0;       //!< first unconsumed byte in buf
    std::size_t tail = 0;       //!< one past the last valid byte in buf
    std::uint64_t consumed = 0; //!< total bytes consumed this pass
    std::FILE *in = nullptr;
    bool isPipe = false;
    bool eof = false;
};

/**
 * Streaming decoder: pulls 64-byte input_instr records off a
 * TraceSource and maps them onto TraceInstr. The mapping:
 *
 *   ip                   <- ip
 *   isBranch / taken     <- is_branch / branch_taken
 *   load0, load1         <- first two non-zero source_memory slots
 *   store                <- first non-zero destination_memory slot
 *   dependsOnPrevLoad    <- a source register of this memory
 *                           instruction matches a destination
 *                           register of the most recent earlier load
 *                           (how ChampSim encodes pointer chasing)
 *
 * ChampSim uses address 0 / register 0 as "no operand"; both map to
 * our kNoAddr / absent conventions. An optional FaultInjector mutates
 * raw records before decode exactly as the native loader does: bit
 * flips and garbage pass through as hostile-but-parseable payloads,
 * injected truncation surfaces as the same typed error a real
 * truncated file would produce.
 */
class ChampSimDecoder
{
  public:
    explicit ChampSimDecoder(TraceSource &source,
                             verify::FaultInjector *faults = nullptr);

    /**
     * Decode the next instruction. Returns false at a clean end of
     * stream (the stream ended exactly on a record boundary); throws
     * verify::SimError(TraceIo) with the byte offset of the record
     * start when the stream ends mid-record.
     */
    bool next(TraceInstr &out);

    /** Raw-record variant (round-trip tests and trace tooling). */
    bool nextRecord(ChampSimRecord &out);

    /** Restart the stream and the register-dependence tracking. */
    void rewind();

    /** Records decoded since the last rewind. */
    std::uint64_t recordsDecoded() const { return decoded; }

  private:
    const unsigned char *fetch();

    TraceSource &src;
    verify::FaultInjector *faults;
    std::uint64_t decoded = 0;
    /** Destination registers of the most recent load instruction
     *  (0 = none), for dependsOnPrevLoad inference. */
    std::uint8_t prevLoadDest[kChampSimNumDestinations] = {};
    /** Scratch record when fault injection needs mutable bytes. */
    unsigned char scratch[kChampSimRecordBytes] = {};
};

/** Decode one 64-byte record image (no source, no fault hook). */
ChampSimRecord decodeChampSimRecord(const unsigned char *bytes);

/**
 * TraceGenerator adapter: replays a ChampSim trace file cyclically
 * through any of the three source layers. Construction throws
 * verify::SimError(TraceIo) when the file cannot be opened, is empty,
 * or ends mid-record within the first record.
 */
class ChampSimReplayGen : public TraceGenerator
{
  public:
    /** Which source layer to decode through. Auto picks mmap for raw
     *  files and the streaming pipe for compressed ones. */
    enum class SourceKind : std::uint8_t
    {
        Auto,
        Mmap,
        Stream,
        Preload
    };

    explicit ChampSimReplayGen(const std::string &path,
                               SourceKind kind = SourceKind::Auto,
                               verify::FaultInjector *faults = nullptr);

    TraceInstr next() override;

    /** Records per replay pass; exact once the first pass completed,
     *  before that the count seen so far. */
    std::uint64_t traceLength() const { return length; }

  private:
    std::unique_ptr<TraceSource> source;
    ChampSimDecoder decoder;
    std::uint64_t length = 0;
    bool firstPassDone = false;
};

/** True when the path names a ChampSim trace
 *  (.champsim / .champsim.xz / .champsim.gz). */
bool isChampSimTracePath(const std::string &path);

/**
 * FNV-1a-64 over a file's raw on-disk bytes (compressed form for
 * compressed traces), streamed chunk-wise. The result-store folds this
 * into every file-workload key so two different files that ever lived
 * at the same path can never collide in the cache. Typed
 * SimError(TraceIo) when the file cannot be read.
 */
verify::Result<std::uint64_t> fileContentHash(const std::string &path);

} // namespace berti

#endif // BERTI_TRACE_CHAMPSIM_HH
