/**
 * @file
 * Compressed-sparse-row graphs and deterministic synthetic topology
 * builders used as inputs for the GAP benchmark kernels (paper uses
 * Twitter/Web/Road real graphs and Kron/Urand synthetic graphs; we build
 * the synthetic classes: power-law, uniform random and road-like grid).
 */

#ifndef BERTI_TRACE_GRAPH_HH
#define BERTI_TRACE_GRAPH_HH

#include <cstdint>
#include <vector>

namespace berti
{

/** Immutable CSR adjacency structure. */
struct Csr
{
    std::uint32_t numNodes = 0;
    std::vector<std::uint32_t> rowPtr;  //!< numNodes + 1 offsets
    std::vector<std::uint32_t> col;     //!< edge targets

    std::uint64_t numEdges() const { return col.size(); }

    std::uint32_t
    degree(std::uint32_t node) const
    {
        return rowPtr[node + 1] - rowPtr[node];
    }

    /** Structural sanity: monotone rowPtr, in-range targets. */
    bool valid() const;
};

/** Erdős–Rényi-style uniform random graph (Urand in GAP). */
Csr makeUniformGraph(std::uint32_t nodes, std::uint32_t avg_degree,
                     std::uint64_t seed);

/**
 * Power-law graph approximating a Kronecker/RMAT topology (Kron in GAP):
 * edge targets drawn from a Zipf distribution so a few hubs accumulate
 * most edges.
 */
Csr makeKronGraph(std::uint32_t nodes, std::uint32_t avg_degree,
                  std::uint64_t seed);

/**
 * Road-network-like graph: a 2-D grid with 4-neighbour connectivity and
 * a sprinkle of shortcut edges. High diameter, tiny degree, like Road.
 */
Csr makeRoadGraph(std::uint32_t width, std::uint32_t height,
                  std::uint64_t seed);

} // namespace berti

#endif // BERTI_TRACE_GRAPH_HH
