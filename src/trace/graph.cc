#include "trace/graph.hh"

#include <algorithm>

#include "sim/rng.hh"

namespace berti
{

namespace
{

/// Assemble a CSR from an unsorted (src, dst) edge list.
Csr
fromEdges(std::uint32_t nodes,
          std::vector<std::pair<std::uint32_t, std::uint32_t>> &edges)
{
    Csr g;
    g.numNodes = nodes;
    g.rowPtr.assign(nodes + 1, 0);
    for (const auto &e : edges)
        ++g.rowPtr[e.first + 1];
    for (std::uint32_t i = 0; i < nodes; ++i)
        g.rowPtr[i + 1] += g.rowPtr[i];
    g.col.resize(edges.size());
    std::vector<std::uint32_t> fill(g.rowPtr.begin(), g.rowPtr.end() - 1);
    for (const auto &e : edges)
        g.col[fill[e.first]++] = e.second;
    return g;
}

} // namespace

bool
Csr::valid() const
{
    if (rowPtr.size() != static_cast<std::size_t>(numNodes) + 1)
        return false;
    if (rowPtr.front() != 0 || rowPtr.back() != col.size())
        return false;
    for (std::size_t i = 0; i + 1 < rowPtr.size(); ++i) {
        if (rowPtr[i] > rowPtr[i + 1])
            return false;
    }
    return std::all_of(col.begin(), col.end(),
                       [this](std::uint32_t v) { return v < numNodes; });
}

Csr
makeUniformGraph(std::uint32_t nodes, std::uint32_t avg_degree,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(static_cast<std::size_t>(nodes) * avg_degree);
    for (std::uint32_t u = 0; u < nodes; ++u) {
        for (std::uint32_t d = 0; d < avg_degree; ++d) {
            edges.emplace_back(
                u, static_cast<std::uint32_t>(rng.nextBounded(nodes)));
        }
    }
    return fromEdges(nodes, edges);
}

Csr
makeKronGraph(std::uint32_t nodes, std::uint32_t avg_degree,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(static_cast<std::size_t>(nodes) * avg_degree);
    for (std::uint32_t u = 0; u < nodes; ++u) {
        // Per-node degree itself follows a power law.
        std::uint32_t deg = 1 + static_cast<std::uint32_t>(
                                    rng.nextZipf(4ull * avg_degree, 0.8));
        for (std::uint32_t d = 0; d < deg; ++d) {
            std::uint32_t v = static_cast<std::uint32_t>(
                rng.nextZipf(nodes, 0.75));
            // Scatter hub IDs across the range so locality is realistic.
            v = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(v) * 2654435761ull) % nodes);
            edges.emplace_back(u, v);
        }
    }
    return fromEdges(nodes, edges);
}

Csr
makeRoadGraph(std::uint32_t width, std::uint32_t height, std::uint64_t seed)
{
    Rng rng(seed);
    std::uint32_t nodes = width * height;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(static_cast<std::size_t>(nodes) * 4);
    auto id = [width](std::uint32_t x, std::uint32_t y) {
        return y * width + x;
    };
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            std::uint32_t u = id(x, y);
            if (x + 1 < width) {
                edges.emplace_back(u, id(x + 1, y));
                edges.emplace_back(id(x + 1, y), u);
            }
            if (y + 1 < height) {
                edges.emplace_back(u, id(x, y + 1));
                edges.emplace_back(id(x, y + 1), u);
            }
            // Rare shortcut (bridge/highway) edges.
            if (rng.nextBool(0.01)) {
                edges.emplace_back(
                    u, static_cast<std::uint32_t>(rng.nextBounded(nodes)));
            }
        }
    }
    return fromEdges(nodes, edges);
}

} // namespace berti
