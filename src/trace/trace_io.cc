#include "trace/trace_io.hh"

#include <cstring>
#include <stdexcept>

namespace berti
{

namespace
{

constexpr char kMagic[8] = {'B', 'E', 'R', 'T', 'I', 'T', 'R', '1'};

/** On-disk record: fixed 35-byte layout, little-endian. */
struct Record
{
    std::uint64_t ip;
    std::uint64_t load0;
    std::uint64_t load1;
    std::uint64_t store;
    std::uint8_t flags;  //!< bit0 branch, bit1 taken, bit2 dep-load
};

Record
pack(const TraceInstr &in)
{
    Record r;
    r.ip = in.ip;
    r.load0 = in.load0;
    r.load1 = in.load1;
    r.store = in.store;
    r.flags = static_cast<std::uint8_t>(
        (in.isBranch ? 1 : 0) | (in.taken ? 2 : 0) |
        (in.dependsOnPrevLoad ? 4 : 0));
    return r;
}

TraceInstr
unpack(const Record &r)
{
    TraceInstr in;
    in.ip = r.ip;
    in.load0 = r.load0;
    in.load1 = r.load1;
    in.store = r.store;
    in.isBranch = r.flags & 1;
    in.taken = r.flags & 2;
    in.dependsOnPrevLoad = r.flags & 4;
    return in;
}

bool
writeRecord(std::FILE *f, const Record &r)
{
    return std::fwrite(&r.ip, 8, 1, f) == 1 &&
           std::fwrite(&r.load0, 8, 1, f) == 1 &&
           std::fwrite(&r.load1, 8, 1, f) == 1 &&
           std::fwrite(&r.store, 8, 1, f) == 1 &&
           std::fwrite(&r.flags, 1, 1, f) == 1;
}

bool
readRecord(std::FILE *f, Record &r)
{
    return std::fread(&r.ip, 8, 1, f) == 1 &&
           std::fread(&r.load0, 8, 1, f) == 1 &&
           std::fread(&r.load1, 8, 1, f) == 1 &&
           std::fread(&r.store, 8, 1, f) == 1 &&
           std::fread(&r.flags, 1, 1, f) == 1;
}

} // namespace

bool
saveTrace(const std::string &path, TraceGenerator &gen,
          std::uint64_t count)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1 &&
              std::fwrite(&count, 8, 1, f) == 1;
    for (std::uint64_t i = 0; ok && i < count; ++i)
        ok = writeRecord(f, pack(gen.next()));
    return std::fclose(f) == 0 && ok;
}

bool
saveTrace(const std::string &path, const std::vector<TraceInstr> &instrs)
{
    ScriptedGen gen(instrs.empty()
                        ? std::vector<TraceInstr>{TraceInstr{}}
                        : instrs);
    return saveTrace(path, gen, instrs.size());
}

std::vector<TraceInstr>
loadTrace(const std::string &path)
{
    std::vector<TraceInstr> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
        std::fread(&count, 8, 1, f) != 1) {
        std::fclose(f);
        return out;
    }
    out.reserve(count);
    Record r;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!readRecord(f, r)) {
            out.clear();  // truncated: reject the whole file
            break;
        }
        out.push_back(unpack(r));
    }
    std::fclose(f);
    return out;
}

FileReplayGen::FileReplayGen(const std::string &path)
    : instrs(loadTrace(path))
{
    if (instrs.empty())
        throw std::runtime_error("cannot load trace: " + path);
}

TraceInstr
FileReplayGen::next()
{
    TraceInstr in = instrs[pos];
    pos = (pos + 1) % instrs.size();
    return in;
}

} // namespace berti
