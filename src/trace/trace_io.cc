#include "trace/trace_io.hh"

#include <cerrno>
#include <cstring>

#include "verify/fault_injector.hh"

namespace berti
{

namespace
{

constexpr char kMagic[8] = {'B', 'E', 'R', 'T', 'I', 'T', 'R', '1'};

/** On-disk record: fixed 33-byte layout, little-endian. */
struct Record
{
    std::uint64_t ip;
    std::uint64_t load0;
    std::uint64_t load1;
    std::uint64_t store;
    std::uint8_t flags;  //!< bit0 branch, bit1 taken, bit2 dep-load
};

Record
pack(const TraceInstr &in)
{
    Record r;
    r.ip = in.ip;
    r.load0 = in.load0;
    r.load1 = in.load1;
    r.store = in.store;
    r.flags = static_cast<std::uint8_t>(
        (in.isBranch ? 1 : 0) | (in.taken ? 2 : 0) |
        (in.dependsOnPrevLoad ? 4 : 0));
    return r;
}

TraceInstr
unpack(const Record &r)
{
    TraceInstr in;
    in.ip = r.ip;
    in.load0 = r.load0;
    in.load1 = r.load1;
    in.store = r.store;
    in.isBranch = r.flags & 1;
    in.taken = r.flags & 2;
    in.dependsOnPrevLoad = r.flags & 4;
    return in;
}

bool
writeRecord(std::FILE *f, const Record &r)
{
    unsigned char buf[kRecordBytes];
    std::memcpy(buf, &r.ip, 8);
    std::memcpy(buf + 8, &r.load0, 8);
    std::memcpy(buf + 16, &r.load1, 8);
    std::memcpy(buf + 24, &r.store, 8);
    buf[32] = r.flags;
    return std::fwrite(buf, kRecordBytes, 1, f) == 1;
}

Record
decodeRecord(const unsigned char *buf)
{
    Record r;
    std::memcpy(&r.ip, buf, 8);
    std::memcpy(&r.load0, buf + 8, 8);
    std::memcpy(&r.load1, buf + 16, 8);
    std::memcpy(&r.store, buf + 24, 8);
    r.flags = buf[32];
    return r;
}

verify::SimError
ioError(const std::string &path, std::uint64_t offset,
        const std::string &reason)
{
    return verify::SimError(verify::ErrorKind::TraceIo, "loadTrace",
                            reason, path, offset);
}

/** File size via seek, or -1 on failure. */
long
fileSize(std::FILE *f)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return -1;
    long size = std::ftell(f);
    if (std::fseek(f, 0, SEEK_SET) != 0)
        return -1;
    return size;
}

} // namespace

verify::Result<std::uint64_t>
saveTrace(const std::string &path, TraceGenerator &gen,
          std::uint64_t count)
{
    auto saveError = [&path](std::uint64_t offset,
                             const std::string &what) {
        return verify::SimError(verify::ErrorKind::TraceIo, "saveTrace",
                                what + ": " + std::strerror(errno), path,
                                offset);
    };

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return saveError(0, "cannot open file for writing");

    if (std::fwrite(kMagic, sizeof(kMagic), 1, f) != 1 ||
        std::fwrite(&count, 8, 1, f) != 1) {
        std::fclose(f);
        return saveError(0, "cannot write header");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!writeRecord(f, pack(gen.next()))) {
            std::uint64_t offset = kHeaderBytes + i * kRecordBytes;
            std::fclose(f);
            return saveError(offset, "cannot write record " +
                                         std::to_string(i));
        }
    }
    std::uint64_t bytes = kHeaderBytes + count * kRecordBytes;
    if (std::fclose(f) != 0)
        return saveError(bytes, "cannot flush file");
    return bytes;
}

verify::Result<std::uint64_t>
saveTrace(const std::string &path, const std::vector<TraceInstr> &instrs)
{
    ScriptedGen gen(instrs.empty()
                        ? std::vector<TraceInstr>{TraceInstr{}}
                        : instrs);
    return saveTrace(path, gen, instrs.size());
}

verify::Result<std::vector<TraceInstr>>
loadTrace(const std::string &path, verify::FaultInjector *faults)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return ioError(path, 0, "cannot open file");

    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{f};

    long size = fileSize(f);
    if (size < 0)
        return ioError(path, 0, "cannot determine file size");

    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f) != 1)
        return ioError(path, 0, "truncated header (missing magic)");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return ioError(path, 0, "bad magic (not a Berti trace file)");
    if (std::fread(&count, 8, 1, f) != 1)
        return ioError(path, 8, "truncated header (missing record count)");

    // Hostile-length defence: the declared count must fit in the file.
    // This rejects absurd counts before any allocation is attempted.
    // Diagnosis splits on the tail shape: a file that ends mid-record
    // was chopped — report the exact byte offset where the partial
    // record starts; a clean record boundary with an oversized count is
    // a hostile or stale header — blame the count field at offset 8.
    std::uint64_t payload = static_cast<std::uint64_t>(size) - kHeaderBytes;
    std::uint64_t fullRecords = payload / kRecordBytes;
    if (count > fullRecords) {
        if (payload % kRecordBytes != 0) {
            std::uint64_t cut = kHeaderBytes + fullRecords * kRecordBytes;
            return ioError(path, cut,
                           "truncated record (file ends " +
                               std::to_string(payload % kRecordBytes) +
                               " bytes into record " +
                               std::to_string(fullRecords) + " of " +
                               std::to_string(count) + ")");
        }
        return ioError(path, 8,
                       "record count " + std::to_string(count) +
                           " exceeds file capacity of " +
                           std::to_string(fullRecords) + " records");
    }

    std::vector<TraceInstr> out;
    out.reserve(count);
    unsigned char buf[kRecordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t offset = kHeaderBytes + i * kRecordBytes;
        if (std::fread(buf, kRecordBytes, 1, f) != 1)
            return ioError(path, offset, "truncated record");
        if (faults) {
            verify::TraceFault fault =
                faults->mutateTraceRecord(buf, kRecordBytes);
            if (fault == verify::TraceFault::Truncated)
                return ioError(path, offset, "injected truncation");
            // Corrupted records decode as hostile-but-parseable input:
            // downstream consumers must cope with arbitrary addresses.
        }
        out.push_back(unpack(decodeRecord(buf)));
    }
    return out;
}

FileReplayGen::FileReplayGen(const std::string &path)
    : instrs(loadTrace(path).value())  // value() rethrows the SimError
{
    if (instrs.empty()) {
        throw verify::SimError(verify::ErrorKind::TraceIo,
                               "FileReplayGen",
                               "trace holds no instructions", path,
                               kHeaderBytes);
    }
}

TraceInstr
FileReplayGen::next()
{
    TraceInstr in = instrs[pos];
    pos = (pos + 1) % instrs.size();
    return in;
}

} // namespace berti
