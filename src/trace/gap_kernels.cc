#include "trace/gap_kernels.hh"

namespace berti
{

namespace
{

// Virtual layout of the kernel's data structures, page aligned and far
// apart. Element sizes match the GAP suite (4 B indices, 8 B properties).
constexpr Addr kRowPtrBase = 0x100000000ull;
constexpr Addr kColBase = 0x140000000ull;
constexpr Addr kProp0Base = 0x180000000ull;
constexpr Addr kPropStride = 0x40000000ull;
constexpr Addr kFrontierBase = 0x300000000ull;
constexpr Addr kGapIp = 0x500000;

Addr
gapIp(unsigned site)
{
    return kGapIp + 4 * site;
}

} // namespace

GapGen::GapGen(GapKernel kernel, std::shared_ptr<const Csr> graph,
               std::uint64_t seed, unsigned alu_per_mem)
    : kernel(kernel), g(std::move(graph)), rng(seed), aluPerMem(alu_per_mem)
{
    visitedEpoch.assign(g->numNodes, 0);
    if (kernel == GapKernel::Bfs || kernel == GapKernel::Bc) {
        epoch = 1;
        frontier.push_back(0);
        visitedEpoch[0] = epoch;
    }
    edgeEnd = 0;
}

Addr
GapGen::rowPtrAddr(std::uint32_t n) const
{
    return kRowPtrBase + 4ull * n;
}

Addr
GapGen::colAddr(std::uint64_t e) const
{
    return kColBase + 4ull * e;
}

Addr
GapGen::propAddr(unsigned array, std::uint32_t n) const
{
    return kProp0Base + array * kPropStride + 8ull * n;
}

void
GapGen::emitRow(unsigned site, std::uint32_t n)
{
    emitLoad(gapIp(site), rowPtrAddr(n));
    emitLoad(gapIp(site + 1), rowPtrAddr(n + 1));
}

void
GapGen::refill()
{
    switch (kernel) {
      case GapKernel::Bfs:
        stepBfs();
        break;
      case GapKernel::PageRank:
        stepPageRank();
        break;
      case GapKernel::Cc:
        stepCc();
        break;
      case GapKernel::Sssp:
        stepSssp();
        break;
      case GapKernel::Bc:
        stepBc();
        break;
    }
    if (queue.empty())
        emitAlu(gapIp(99), 1);  // never hand back an empty queue
}

void
GapGen::stepBfs()
{
    if (edge >= edgeEnd) {
        // Advance to the next frontier vertex (sequential queue read).
        if (frontierPos >= frontier.size()) {
            frontier.swap(nextFrontier);
            nextFrontier.clear();
            frontierPos = 0;
            emitBranch(gapIp(9), !frontier.empty());
            if (frontier.empty()) {
                // BFS exhausted: restart from a new source.
                ++epoch;
                std::uint32_t src = static_cast<std::uint32_t>(
                    rng.nextBounded(g->numNodes));
                visitedEpoch[src] = epoch;
                frontier.push_back(src);
            }
            return;
        }
        node = frontier[frontierPos];
        emitLoad(gapIp(0), kFrontierBase + 4ull * frontierPos);
        ++frontierPos;
        emitRow(1, node);
        emitAlu(gapIp(3), aluPerMem);
        edge = g->rowPtr[node];
        edgeEnd = g->rowPtr[node + 1];
        return;
    }
    // Neighbour scan: sequential col read, irregular visited gather.
    std::uint32_t v = g->col[edge];
    emitLoad(gapIp(4), colAddr(edge));
    emitLoad(gapIp(5), propAddr(0, v));  // visited/parent check
    bool unseen = visitedEpoch[v] != epoch;
    emitBranch(gapIp(6), unseen);
    if (unseen) {
        visitedEpoch[v] = epoch;
        emitStore(gapIp(7), propAddr(0, v));
        nextFrontier.push_back(v);
        emitStore(gapIp(8), kFrontierBase + 4ull * nextFrontier.size());
    }
    emitAlu(gapIp(10), aluPerMem);
    ++edge;
}

void
GapGen::stepPageRank()
{
    if (edge >= edgeEnd) {
        // Finish the previous vertex: write its new rank (sequential).
        emitStore(gapIp(25), propAddr(1, node));
        node = (node + 1) % g->numNodes;
        emitRow(20, node);
        emitAlu(gapIp(22), aluPerMem);
        edge = g->rowPtr[node];
        edgeEnd = g->rowPtr[node + 1];
        emitBranch(gapIp(26), node != 0);
        return;
    }
    // Pull phase: sequential col read + irregular rank gather. The col
    // stream is the "one very regular IP" of the paper's bc-5 analysis.
    std::uint32_t v = g->col[edge];
    emitLoad(gapIp(23), colAddr(edge));
    emitLoad(gapIp(24), propAddr(0, v));
    emitAlu(gapIp(27), aluPerMem);
    ++edge;
}

void
GapGen::stepCc()
{
    if (edge >= edgeEnd) {
        node = (node + 1) % g->numNodes;
        emitLoad(gapIp(30), propAddr(0, node));  // comp[u], sequential-ish
        emitRow(31, node);
        edge = g->rowPtr[node];
        edgeEnd = g->rowPtr[node + 1];
        emitAlu(gapIp(33), aluPerMem);
        return;
    }
    std::uint32_t v = g->col[edge];
    emitLoad(gapIp(34), colAddr(edge));
    emitLoad(gapIp(35), propAddr(0, v));  // comp[v] gather
    // Label update with a data-dependent branch.
    bool update = rng.nextBool(0.2);
    emitBranch(gapIp(36), update);
    if (update)
        emitStore(gapIp(37), propAddr(0, node));
    emitAlu(gapIp(38), aluPerMem);
    ++edge;
}

void
GapGen::stepSssp()
{
    if (edge >= edgeEnd) {
        node = (node + 1) % g->numNodes;
        emitLoad(gapIp(40), propAddr(0, node));  // dist[u]
        emitRow(41, node);
        edge = g->rowPtr[node];
        edgeEnd = g->rowPtr[node + 1];
        emitAlu(gapIp(43), aluPerMem);
        return;
    }
    std::uint32_t v = g->col[edge];
    emitLoad(gapIp(44), colAddr(edge));
    emitLoad(gapIp(45), kColBase + 0x20000000ull + 4ull * edge);  // weight
    emitLoad(gapIp(46), propAddr(0, v));  // dist[v]
    bool relax = rng.nextBool(0.15);
    emitBranch(gapIp(47), relax);
    if (relax)
        emitStore(gapIp(48), propAddr(0, v));
    emitAlu(gapIp(49), aluPerMem);
    ++edge;
}

void
GapGen::stepBc()
{
    if (backward) {
        // Dependency accumulation: reverse vertex order, sigma/delta
        // gathers over neighbours (chaotic IPs per the paper).
        if (edge >= edgeEnd) {
            if (backNode == 0) {
                backward = false;
                return;
            }
            --backNode;
            emitRow(60, backNode);
            emitLoad(gapIp(62), propAddr(1, backNode));  // sigma[u]
            edge = g->rowPtr[backNode];
            edgeEnd = g->rowPtr[backNode + 1];
            emitAlu(gapIp(63), aluPerMem);
            return;
        }
        std::uint32_t v = g->col[edge];
        emitLoad(gapIp(64), colAddr(edge));
        emitLoad(gapIp(65), propAddr(1, v));  // sigma[v]
        emitLoad(gapIp(66), propAddr(2, v));  // delta[v]
        emitStore(gapIp(67), propAddr(2, backNode));
        emitAlu(gapIp(68), aluPerMem);
        ++edge;
        return;
    }
    // Forward phase reuses BFS, with sigma updates on discovery. When the
    // BFS exhausts (epoch bump on restart) switch to the backward pass.
    std::uint32_t epoch_before = epoch;
    stepBfs();
    if (epoch != epoch_before) {
        backward = true;
        backNode = g->numNodes;
        edge = edgeEnd = 0;
    }
}

} // namespace berti
