#include "trace/champsim.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/serialize.hh"
#include "verify/fault_injector.hh"

namespace berti
{

namespace
{

verify::SimError
ioError(const std::string &component, const std::string &path,
        std::uint64_t offset, const std::string &reason)
{
    return verify::SimError(verify::ErrorKind::TraceIo, component, reason,
                            path, offset);
}

std::string
errnoReason(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

std::uint64_t
loadLe64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);  // little-endian hosts only, like ChampSim
    return v;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Single-quote a path for /bin/sh so hostile names cannot inject. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out.push_back(c);
    }
    out.push_back('\'');
    return out;
}

} // namespace

// ================================================================== mmap

MmapTraceSource::MmapTraceSource(const std::string &path) : file(path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw ioError("MmapTraceSource", path, 0,
                      errnoReason("cannot open file"));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw ioError("MmapTraceSource", path, 0,
                      errnoReason("cannot stat file"));
    }
    mapBytes = static_cast<std::uint64_t>(st.st_size);
    if (mapBytes > 0) {
        void *m = ::mmap(nullptr, mapBytes, PROT_READ, MAP_PRIVATE, fd, 0);
        if (m == MAP_FAILED) {
            int e = errno;
            ::close(fd);
            errno = e;
            throw ioError("MmapTraceSource", path, 0,
                          errnoReason("cannot mmap file"));
        }
        map = static_cast<const unsigned char *>(m);
#ifdef MADV_SEQUENTIAL
        ::madvise(const_cast<unsigned char *>(map), mapBytes,
                  MADV_SEQUENTIAL);
#endif
    }
    ::close(fd);
}

MmapTraceSource::~MmapTraceSource()
{
    if (map)
        ::munmap(const_cast<unsigned char *>(map), mapBytes);
}

const unsigned char *
MmapTraceSource::view(std::size_t want, std::size_t &got)
{
    std::uint64_t left = mapBytes - pos;
    got = static_cast<std::size_t>(
        left < static_cast<std::uint64_t>(want) ? left : want);
    return got ? map + pos : nullptr;
}

void
MmapTraceSource::consume(std::size_t n)
{
    pos += n;
}

// ============================================================= preloaded

PreloadedTraceSource::PreloadedTraceSource(const std::string &path)
    : file(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw ioError("PreloadedTraceSource", path, 0,
                      errnoReason("cannot open file"));
    unsigned char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        throw ioError("PreloadedTraceSource", path, bytes.size(),
                      "read error while preloading");
    }
}

PreloadedTraceSource::PreloadedTraceSource(std::vector<unsigned char> data,
                                           std::string label)
    : file(std::move(label)), bytes(std::move(data))
{}

const unsigned char *
PreloadedTraceSource::view(std::size_t want, std::size_t &got)
{
    std::uint64_t left = bytes.size() - pos;
    got = static_cast<std::size_t>(
        left < static_cast<std::uint64_t>(want) ? left : want);
    return got ? bytes.data() + pos : nullptr;
}

void
PreloadedTraceSource::consume(std::size_t n)
{
    pos += n;
}

// ================================================================ stream

TraceCompression
compressionForPath(const std::string &path)
{
    if (endsWith(path, ".xz"))
        return TraceCompression::Xz;
    if (endsWith(path, ".gz"))
        return TraceCompression::Gzip;
    return TraceCompression::None;
}

StreamTraceSource::StreamTraceSource(const std::string &path)
    : StreamTraceSource(path, compressionForPath(path))
{}

StreamTraceSource::StreamTraceSource(const std::string &path,
                                     TraceCompression compression,
                                     std::size_t bufferBytes)
    : file(path), comp(compression),
      buf(bufferBytes < kChampSimRecordBytes ? kChampSimRecordBytes
                                             : bufferBytes)
{
    open();
    // Eager first refill: a missing decompressor tool or an immediately
    // failing pipe surfaces as a typed error at construction, not
    // thousands of decoded records later.
    refill();
}

StreamTraceSource::~StreamTraceSource()
{
    if (in) {
        if (isPipe)
            ::pclose(in);
        else
            std::fclose(in);
    }
}

void
StreamTraceSource::open()
{
    // The file must exist and be readable regardless of the pipe: a
    // decompressor's shell-level "No such file" must not masquerade as
    // a decode problem.
    if (::access(file.c_str(), R_OK) != 0)
        throw ioError("StreamTraceSource", file, 0,
                      errnoReason("cannot open file"));

    if (comp == TraceCompression::None) {
        in = std::fopen(file.c_str(), "rb");
        if (!in)
            throw ioError("StreamTraceSource", file, 0,
                          errnoReason("cannot open file"));
        isPipe = false;
        return;
    }

    const char *tool = comp == TraceCompression::Xz ? "xz" : "gzip";
    std::string cmd =
        std::string(tool) + " -dc -- " + shellQuote(file) + " 2>/dev/null";
    in = ::popen(cmd.c_str(), "r");
    if (!in) {
        throw ioError("StreamTraceSource", file, 0,
                      errnoReason(std::string("cannot spawn ") + tool +
                                  " decompressor"));
    }
    isPipe = true;
}

void
StreamTraceSource::close()
{
    if (!in)
        return;
    if (isPipe)
        ::pclose(in);
    else
        std::fclose(in);
    in = nullptr;
}

void
StreamTraceSource::refill()
{
    if (eof || !in)
        return;
    // Compact the unconsumed tail to the front so view() can always
    // return one contiguous record from a fixed buffer.
    if (head > 0) {
        std::size_t live = tail - head;
        if (live > 0)
            std::memmove(buf.data(), buf.data() + head, live);
        head = 0;
        tail = live;
    }
    std::size_t n =
        std::fread(buf.data() + tail, 1, buf.size() - tail, in);
    tail += n;
    if (n == 0 || std::feof(in)) {
        if (std::ferror(in)) {
            std::uint64_t at = consumed + (tail - head);
            close();
            throw ioError("StreamTraceSource", file, at,
                          "read error on the decompression pipe");
        }
        if (tail == head || std::feof(in)) {
            eof = true;
            bool pipe = isPipe;
            int status = 0;
            if (in) {
                status = pipe ? ::pclose(in) : std::fclose(in);
                in = nullptr;
            }
            if (pipe && status != 0) {
                // Exit 127 = the shell could not find the tool: the
                // graceful typed fallback for hosts without xz/gzip.
                const char *tool =
                    comp == TraceCompression::Xz ? "xz" : "gzip";
                throw ioError(
                    "StreamTraceSource", file, consumed + (tail - head),
                    std::string(tool) +
                        " decompressor failed or is unavailable "
                        "(exit status " +
                        std::to_string(status) + ")");
            }
        }
    }
}

const unsigned char *
StreamTraceSource::view(std::size_t want, std::size_t &got)
{
    if (tail - head < want && !eof)
        refill();
    std::size_t avail = tail - head;
    got = avail < want ? avail : want;
    return got ? buf.data() + head : nullptr;
}

void
StreamTraceSource::consume(std::size_t n)
{
    head += n;
    consumed += n;
}

void
StreamTraceSource::rewind()
{
    close();
    head = tail = 0;
    consumed = 0;
    eof = false;
    open();
    refill();
}

// =============================================================== decoder

ChampSimRecord
decodeChampSimRecord(const unsigned char *bytes)
{
    ChampSimRecord r;
    r.ip = loadLe64(bytes);
    r.isBranch = bytes[8];
    r.branchTaken = bytes[9];
    for (unsigned i = 0; i < kChampSimNumDestinations; ++i)
        r.destRegisters[i] = bytes[10 + i];
    for (unsigned i = 0; i < kChampSimNumSources; ++i)
        r.srcRegisters[i] = bytes[12 + i];
    for (unsigned i = 0; i < kChampSimNumDestinations; ++i)
        r.destMemory[i] = loadLe64(bytes + 16 + 8 * i);
    for (unsigned i = 0; i < kChampSimNumSources; ++i)
        r.srcMemory[i] = loadLe64(bytes + 32 + 8 * i);
    return r;
}

ChampSimDecoder::ChampSimDecoder(TraceSource &source,
                                 verify::FaultInjector *injector)
    : src(source), faults(injector)
{}

const unsigned char *
ChampSimDecoder::fetch()
{
    std::size_t got = 0;
    const unsigned char *p = src.view(kChampSimRecordBytes, got);
    if (got == 0)
        return nullptr;
    if (got < kChampSimRecordBytes) {
        throw ioError("ChampSimDecoder", src.path(), src.offset(),
                      "truncated record (stream ends " +
                          std::to_string(got) + " bytes into a " +
                          std::to_string(kChampSimRecordBytes) +
                          "-byte record)");
    }
    if (faults) {
        std::memcpy(scratch, p, kChampSimRecordBytes);
        verify::TraceFault fault =
            faults->mutateTraceRecord(scratch, kChampSimRecordBytes);
        if (fault == verify::TraceFault::Truncated) {
            throw ioError("ChampSimDecoder", src.path(), src.offset(),
                          "injected truncation");
        }
        return scratch;
    }
    return p;
}

bool
ChampSimDecoder::nextRecord(ChampSimRecord &out)
{
    const unsigned char *p = fetch();
    if (!p)
        return false;
    out = decodeChampSimRecord(p);
    src.consume(kChampSimRecordBytes);
    ++decoded;
    return true;
}

bool
ChampSimDecoder::next(TraceInstr &out)
{
    const unsigned char *p = fetch();
    if (!p)
        return false;

    out = TraceInstr{};
    out.ip = loadLe64(p);
    out.isBranch = p[8] != 0;
    out.taken = p[9] != 0;

    // First two populated source-memory slots -> load0/load1, first
    // populated destination-memory slot -> store (0 = no operand).
    unsigned loads = 0;
    for (unsigned i = 0; i < kChampSimNumSources && loads < 2; ++i) {
        std::uint64_t a = loadLe64(p + 32 + 8 * i);
        if (a == 0)
            continue;
        (loads == 0 ? out.load0 : out.load1) = a;
        ++loads;
    }
    for (unsigned i = 0; i < kChampSimNumDestinations; ++i) {
        std::uint64_t a = loadLe64(p + 16 + 8 * i);
        if (a != 0) {
            out.store = a;
            break;
        }
    }

    // Pointer chasing: ChampSim encodes it through register numbers —
    // a load whose source register is the destination register of the
    // most recent earlier load is address-dependent on it.
    if (out.isLoad()) {
        for (unsigned s = 0; s < kChampSimNumSources &&
                             !out.dependsOnPrevLoad; ++s) {
            std::uint8_t reg = p[12 + s];
            if (reg == 0)
                continue;
            for (unsigned d = 0; d < kChampSimNumDestinations; ++d) {
                if (prevLoadDest[d] != 0 && prevLoadDest[d] == reg) {
                    out.dependsOnPrevLoad = true;
                    break;
                }
            }
        }
        for (unsigned d = 0; d < kChampSimNumDestinations; ++d)
            prevLoadDest[d] = p[10 + d];
    }

    src.consume(kChampSimRecordBytes);
    ++decoded;
    return true;
}

void
ChampSimDecoder::rewind()
{
    src.rewind();
    decoded = 0;
    for (unsigned d = 0; d < kChampSimNumDestinations; ++d)
        prevLoadDest[d] = 0;
}

// ================================================================ replay

namespace
{

std::unique_ptr<TraceSource>
makeSource(const std::string &path, ChampSimReplayGen::SourceKind kind)
{
    using SourceKind = ChampSimReplayGen::SourceKind;
    if (kind == SourceKind::Auto) {
        kind = compressionForPath(path) == TraceCompression::None
                   ? SourceKind::Mmap
                   : SourceKind::Stream;
    }
    switch (kind) {
      case SourceKind::Mmap:
        return std::make_unique<MmapTraceSource>(path);
      case SourceKind::Preload:
        return std::make_unique<PreloadedTraceSource>(path);
      case SourceKind::Stream:
      default:
        return std::make_unique<StreamTraceSource>(path);
    }
}

} // namespace

ChampSimReplayGen::ChampSimReplayGen(const std::string &path,
                                     SourceKind kind,
                                     verify::FaultInjector *faults)
    : source(makeSource(path, kind)), decoder(*source, faults)
{
    // Refuse an empty or sub-record stream now, with a typed error,
    // instead of a confusing failure mid-simulation.
    std::size_t got = 0;
    source->view(kChampSimRecordBytes, got);
    if (got == 0) {
        throw ioError("ChampSimReplayGen", path, 0,
                      "trace holds no instructions");
    }
    if (got < kChampSimRecordBytes) {
        throw ioError("ChampSimReplayGen", path, 0,
                      "truncated record (file is " + std::to_string(got) +
                          " bytes, one record needs " +
                          std::to_string(kChampSimRecordBytes) + ")");
    }
}

TraceInstr
ChampSimReplayGen::next()
{
    TraceInstr out;
    if (decoder.next(out)) {
        if (!firstPassDone)
            length = decoder.recordsDecoded();
        return out;
    }
    firstPassDone = true;
    decoder.rewind();
    if (!decoder.next(out)) {
        throw ioError("ChampSimReplayGen", source->path(), 0,
                      "trace stream became empty on rewind");
    }
    return out;
}

// ================================================================= misc

bool
isChampSimTracePath(const std::string &path)
{
    return endsWith(path, ".champsim") || endsWith(path, ".champsim.xz") ||
           endsWith(path, ".champsim.gz");
}

verify::Result<std::uint64_t>
fileContentHash(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return ioError("fileContentHash", path, 0,
                       errnoReason("cannot open file"));
    }
    sim::Fnv64 h;
    unsigned char chunk[1 << 16];
    std::size_t n;
    std::uint64_t total = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        h.addBytes(chunk, n);
        total += n;
    }
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        return ioError("fileContentHash", path, total,
                       "read error while hashing");
    }
    return h.value();
}

} // namespace berti
