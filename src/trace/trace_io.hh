/**
 * @file
 * Binary trace files: record any generator's output to disk and replay
 * it later, so experiments can be pinned to an exact instruction stream
 * (the role ChampSim's .trace.xz files play for the paper's artifact).
 *
 * Format: 16-byte magic+header, then fixed-size little-endian records.
 *
 * All decode failures surface as verify::SimError (kind TraceIo) with
 * the path, the byte offset of the failure and a reason — loadTrace
 * through its Result, FileReplayGen by throwing. No silent empty
 * vectors, no untyped std::runtime_error.
 */

#ifndef BERTI_TRACE_TRACE_IO_HH
#define BERTI_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace verify
{
class FaultInjector;
} // namespace verify

/** Native trace file header size: 8-byte magic + u64 record count. */
inline constexpr std::size_t kHeaderBytes = 16;
/** Native trace record size: 4 x u64 addresses + 1 flag byte. */
inline constexpr std::size_t kRecordBytes = 33;

/**
 * Write count instructions pulled from gen to path. Returns the number
 * of bytes written, or — matching the load-side contract — a typed
 * SimError (kind TraceIo) carrying the path, the byte offset of the
 * failed write and the errno reason.
 */
verify::Result<std::uint64_t> saveTrace(const std::string &path,
                                        TraceGenerator &gen,
                                        std::uint64_t count);

/** Write an explicit instruction vector to path. */
verify::Result<std::uint64_t> saveTrace(
    const std::string &path, const std::vector<TraceInstr> &instrs);

/**
 * Load a whole trace file into memory. Every format error — missing
 * file, truncated header, bad magic, a record count larger than the
 * file can hold, or a truncated record — returns a typed
 * SimError carrying the path, byte offset and reason.
 *
 * An optional FaultInjector perturbs records as they are decoded
 * (bit flips pass through as hostile payloads; injected truncation
 * surfaces as the same typed error a real truncation would).
 */
verify::Result<std::vector<TraceInstr>>
loadTrace(const std::string &path,
          verify::FaultInjector *faults = nullptr);

/**
 * Replays a trace file cyclically, streaming from memory after a single
 * load. Throws verify::SimError (kind TraceIo) if the file cannot be
 * parsed or holds no instructions.
 */
class FileReplayGen : public TraceGenerator
{
  public:
    explicit FileReplayGen(const std::string &path);

    TraceInstr next() override;

    std::size_t traceLength() const { return instrs.size(); }

  private:
    std::vector<TraceInstr> instrs;
    std::size_t pos = 0;
};

} // namespace berti

#endif // BERTI_TRACE_TRACE_IO_HH
