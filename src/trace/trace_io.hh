/**
 * @file
 * Binary trace files: record any generator's output to disk and replay
 * it later, so experiments can be pinned to an exact instruction stream
 * (the role ChampSim's .trace.xz files play for the paper's artifact).
 *
 * Format: 16-byte magic+header, then fixed-size little-endian records.
 */

#ifndef BERTI_TRACE_TRACE_IO_HH
#define BERTI_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"

namespace berti
{

/** Write count instructions pulled from gen to path. @return success. */
bool saveTrace(const std::string &path, TraceGenerator &gen,
               std::uint64_t count);

/** Write an explicit instruction vector to path. */
bool saveTrace(const std::string &path,
               const std::vector<TraceInstr> &instrs);

/**
 * Load a whole trace file into memory. Returns an empty vector on any
 * format error (missing file, bad magic, truncated record).
 */
std::vector<TraceInstr> loadTrace(const std::string &path);

/**
 * Replays a trace file cyclically, streaming from memory after a single
 * load. Throws std::runtime_error if the file cannot be parsed.
 */
class FileReplayGen : public TraceGenerator
{
  public:
    explicit FileReplayGen(const std::string &path);

    TraceInstr next() override;

    std::size_t traceLength() const { return instrs.size(); }

  private:
    std::vector<TraceInstr> instrs;
    std::size_t pos = 0;
};

} // namespace berti

#endif // BERTI_TRACE_TRACE_IO_HH
