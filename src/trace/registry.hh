/**
 * @file
 * Named workload registry. Workloads are grouped into the three suites of
 * the paper's evaluation (memory-intensive SPEC CPU2017-like, GAP, and
 * CloudSuite-like); every bench and example addresses workloads by name.
 */

#ifndef BERTI_TRACE_REGISTRY_HH
#define BERTI_TRACE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"

namespace berti
{

/** A named, reproducible workload. */
struct Workload
{
    std::string name;   //!< e.g. "mcf-like.1554" or "file:/t/x.champsim"
    std::string suite;  //!< "spec", "gap", "cloud" or "file"
    std::function<std::unique_ptr<TraceGenerator>()> make;

    /**
     * For file-backed workloads: FNV-1a-64 of the trace file's raw
     * bytes, folded into every result-store key so two different files
     * that ever lived at the same path can never collide in the cache.
     * 0 for synthetic workloads (their name + code version pin them).
     */
    std::uint64_t contentHash = 0;
};

/** Every registered workload, in a stable order. */
const std::vector<Workload> &allWorkloads();

/** Workloads of one suite ("spec", "gap", "cloud"). */
std::vector<Workload> suiteWorkloads(const std::string &suite);

/** Workloads of the spec+gap union the paper averages over. */
std::vector<Workload> specGapWorkloads();

/** Look up one registered workload by name; throws
 *  verify::SimError(ErrorKind::Config) naming the string if unknown. */
const Workload &findWorkload(const std::string &name);

/**
 * Resolve a workload by registry name or `file:` URI. A name of the
 * form `file:/path/to/foo.champsim[.xz|.gz]` yields a ChampSim-trace
 * replay workload (suite "file") and `file:/path/to/foo.trace` a
 * native-format one; the file's content hash is computed here so the
 * result store can key on it. Errors are typed: an unknown registry
 * name, an empty or extension-less `file:` path throws
 * verify::SimError(ErrorKind::Config) naming the offending workload
 * string; an unreadable trace file throws
 * verify::SimError(ErrorKind::TraceIo) with the path.
 */
Workload resolveWorkload(const std::string &name);

} // namespace berti

#endif // BERTI_TRACE_REGISTRY_HH
