/**
 * @file
 * Named workload registry. Workloads are grouped into the three suites of
 * the paper's evaluation (memory-intensive SPEC CPU2017-like, GAP, and
 * CloudSuite-like); every bench and example addresses workloads by name.
 */

#ifndef BERTI_TRACE_REGISTRY_HH
#define BERTI_TRACE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"

namespace berti
{

/** A named, reproducible workload. */
struct Workload
{
    std::string name;   //!< e.g. "mcf-like.1554"
    std::string suite;  //!< "spec", "gap" or "cloud"
    std::function<std::unique_ptr<TraceGenerator>()> make;
};

/** Every registered workload, in a stable order. */
const std::vector<Workload> &allWorkloads();

/** Workloads of one suite ("spec", "gap", "cloud"). */
std::vector<Workload> suiteWorkloads(const std::string &suite);

/** Workloads of the spec+gap union the paper averages over. */
std::vector<Workload> specGapWorkloads();

/** Look up one workload by name; throws std::out_of_range if unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace berti

#endif // BERTI_TRACE_REGISTRY_HH
