/**
 * @file
 * SimOptions: the single typed configuration surface of the simulator
 * harness. Every runtime knob that used to be a scattered
 * getenv("BERTI_*") call site is parsed here, once, with validation
 * (malformed values throw verify::SimError(ErrorKind::Config)), and
 * threaded through Machine / Experiment / the bench harness as a value.
 *
 * The environment variable names are the stable public interface —
 * fromEnv() keeps every historical BERTI_* name working so existing
 * scripts and CI recipes do not break — and applyFlag() layers optional
 * command-line overrides on top for the bench binaries.
 *
 * Consumers that need subsystem config structs derive them from an
 * options value: obs::SamplerConfig::fromOptions(opt),
 * obs::TraceConfig::fromOptions(opt), verify::AuditConfig::fromOptions
 * (each declared next to its struct so this header stays dependency-
 * free).
 */

#ifndef BERTI_SIM_OPTIONS_HH
#define BERTI_SIM_OPTIONS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace berti::sim
{

struct SimOptions
{
    // ------------------------------------------------ parallel runner
    /** Worker pool size (BERTI_JOBS); 0 = all hardware threads. */
    unsigned jobs = 0;

    // ------------------------------------------------ simulator speed
    /**
     * Quiescence cycle-skip (BERTI_CYCLE_SKIP; "0" disables): when
     * every queue, MSHR and core in the machine is provably idle until
     * a known future cycle, Machine::run fast-forwards the clock there
     * instead of ticking empty structures. Simulated results are
     * bit-identical either way (see ARCHITECTURE.md, "Performance");
     * the toggle exists for differential tests and debugging.
     */
    bool cycleSkip = true;

    // ---------------------------------------------- interval sampling
    /**
     * Measurement windows per simulation (BERTI_SAMPLE_WINDOWS); 0
     * keeps the historical full-run behaviour. When > 0, simulate()
     * measures windowed samples of the stream instead of one long
     * region of interest — see ARCHITECTURE.md, "Sampled simulation
     * intervals".
     */
    unsigned sampleWindows = 0;
    /** Per-window warm (unmeasured) instructions (BERTI_SAMPLE_WARMUP). */
    std::uint64_t sampleWarmup = 1000;
    /** Measured instructions per window (BERTI_SAMPLE_MEASURE). */
    std::uint64_t sampleMeasure = 8000;
    /** Window-start-to-window-start stride in instructions
     *  (BERTI_SAMPLE_STRIDE); 0 = back-to-back windows. */
    std::uint64_t sampleStride = 0;

    // ------------------------------------------------- observability
    /** Interval time-series: instructions/sample (BERTI_OBS_INTERVAL);
     *  0 disables sampling. */
    std::uint64_t obsInterval = 0;
    /** Interval time-series ring capacity (BERTI_OBS_RING). */
    std::size_t obsRing = 1024;
    /** Prefetch event trace ring capacity (BERTI_OBS_PFTRACE);
     *  0 disables tracing. */
    std::size_t pfTraceCapacity = 0;
    /** Record every Nth prefetch event (BERTI_OBS_PFTRACE_PERIOD). */
    std::uint64_t pfTracePeriod = 1;
    /** Bench stats sidecar directory (BERTI_STATS_DIR); empty = off. */
    std::string statsDir;

    // --------------------------------------------- real-trace ingestion
    /**
     * Extra file-backed workloads appended to bench workload lists
     * (BERTI_TRACE_WORKLOADS): a comma-separated list of `file:` URIs
     * or bare trace paths (`/t/x.champsim.xz,file:/t/y.trace`), each
     * resolved through trace::resolveWorkload next to the synthetic
     * suites. Empty = none.
     */
    std::string traceWorkloads;

    // ----------------------------------------------------- hardening
    /** Invariant auditing on every Machine (BERTI_VERIFY). */
    bool verify = false;
    /** Cycles between full invariant checks (BERTI_VERIFY_INTERVAL). */
    Cycle verifyInterval = 4096;

    // --------------------------------------- hybrid prefetcher geometry
    /**
     * Selector geometry for hybrid(...) prefetcher specs (see
     * prefetch/compose.hh). These reshape simulated behaviour, so any
     * value differing from the defaults is folded into the canonical
     * spec name — result-store keys can never collide across geometry.
     */
    /** Per-hook-call forward cap (BERTI_HYBRID_DEGREE); 0 = the
     *  greediest-child governor. */
    unsigned hybridDegree = 0;
    /** Per-IP credit table rows (BERTI_HYBRID_CREDITS). */
    unsigned hybridCreditEntries = 256;
    /** Saturating credit ceiling (BERTI_HYBRID_CREDIT_MAX). */
    unsigned hybridCreditMax = 15;
    /** Set-dueling leader buckets per child (BERTI_HYBRID_DUEL_SETS). */
    unsigned hybridDuelSets = 64;
    /** PSEL counter width in bits (BERTI_HYBRID_PSEL_BITS). */
    unsigned hybridPselBits = 10;

    // ----------------------------------------------- memory backend
    /**
     * Memory-backend spec (BERTI_MEM_BACKEND / --mem-backend=), e.g.
     * "dram:ddr5" or "dram:hbm;sched=fcfs"; empty keeps the default
     * (dram:ddr4, the historical timings). Stored raw here — options
     * parsing stays layering-clean below src/mem — and validated with
     * typed errors where it is resolved
     * (mem::parseBackendSpec via MachineConfig::applyOptions /
     * machineConfigFor; see mem/backend_registry.hh for the grammar).
     */
    std::string memBackend;

    // ------------------------------------------------- bench harness
    /** Smoke-size bench regions of interest (BERTI_BENCH_QUICK=1). */
    bool benchQuick = false;

    // -------------------------------------------------- test harness
    /** Rewrite golden stats instead of comparing
     *  (BERTI_UPDATE_GOLDENS=1). */
    bool updateGoldens = false;
    /** Property-test seed override (BERTI_TEST_SEED); valid only when
     *  hasTestSeed. */
    std::uint64_t testSeed = 0;
    bool hasTestSeed = false;
    /** Property-test iteration multiplier (BERTI_PROP_ITERS). */
    unsigned propIterMultiplier = 1;
    /** Shrunk-artifact output directory (BERTI_ARTIFACT_DIR). */
    std::string artifactDir = ".";

    /**
     * Parse every knob from the environment. Malformed values throw
     * verify::SimError(ErrorKind::Config) naming the offending
     * variable. Unset variables keep the documented defaults above.
     */
    static SimOptions fromEnv();

    /**
     * Environment plus command-line overrides: any argv entry that
     * applyFlag() recognises is consumed; everything else is left for
     * the caller (argc/argv are compacted in place).
     */
    static SimOptions fromEnvAndArgs(int &argc, char **argv);

    /**
     * Apply one "--key[=value]" override on top of the current values.
     * Recognised: --jobs=N, --quick, --no-cycle-skip, --cycle-skip,
     * --stats-dir=DIR, --trace-workloads=LIST, --mem-backend=SPEC,
     * --verify,
     * --sample-windows=N, --sample-warmup=N,
     * --sample-measure=N, --sample-stride=N, --hybrid-degree=N,
     * --hybrid-credits=N, --hybrid-credit-max=N, --hybrid-duel-sets=N,
     * --hybrid-psel-bits=N. @return false when the
     * flag is not a SimOptions flag (caller keeps it); malformed values
     * throw verify::SimError(ErrorKind::Config).
     */
    bool applyFlag(const std::string &arg);
};

} // namespace berti::sim

#endif // BERTI_SIM_OPTIONS_HH
