#include "sim/spec_parse.hh"

#include <cstdlib>

#include "verify/sim_error.hh"

namespace berti::sim
{

std::vector<std::string>
splitTopLevel(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : text) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == sep && depth == 0) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            continue;
        }
        cur.push_back(c);
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::size_t
findTopLevel(const std::string &text, char sep)
{
    int depth = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '(')
            ++depth;
        else if (text[i] == ')')
            --depth;
        else if (text[i] == sep && depth == 0)
            return i;
    }
    return std::string::npos;
}

std::vector<SpecOption>
parseSpecOptions(const std::string &text, const std::string &component)
{
    std::vector<SpecOption> out;
    for (const std::string &clause : splitTopLevel(text, ';')) {
        std::size_t eq = findTopLevel(clause, '=');
        if (eq == std::string::npos || eq == 0) {
            throw verify::SimError(
                verify::ErrorKind::Config, component,
                "malformed option \"" + clause +
                    "\" (expected key=value)");
        }
        out.push_back({clause.substr(0, eq), clause.substr(eq + 1)});
    }
    return out;
}

std::uint64_t
parseSpecUnsigned(const std::string &key, const std::string &value,
                  const std::string &component, bool zero_ok)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    bool ok = !value.empty() && end && *end == '\0';
    if (ok && !zero_ok && v == 0)
        ok = false;
    if (!ok) {
        throw verify::SimError(
            verify::ErrorKind::Config, component,
            key + "=\"" + value + "\" is not a " +
                (zero_ok ? "non-negative" : "positive") + " integer");
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace berti::sim
