#include "sim/options.hh"

#include <cctype>
#include <cstdlib>

#include "verify/sim_error.hh"

namespace berti::sim
{

namespace
{

[[noreturn]] void
fail(const std::string &component, const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, component, reason);
}

/**
 * Strict positive-integer parse shared by the BERTI_OBS_* family; an
 * unset or empty variable keeps the fallback (historical envU64
 * semantics from src/obs).
 */
std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (!end || *end != '\0' || v == 0) {
        fail("obs", std::string(name) + "=\"" + raw +
                        "\" is not a positive integer");
    }
    return static_cast<std::uint64_t>(v);
}

/**
 * Non-negative integer parse for the sampling-geometry family, where 0
 * is meaningful ("sampling off" / "no per-window warmup" / "back-to-back
 * windows") rather than malformed.
 */
std::uint64_t
envU64Zero(const char *name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (!end || *end != '\0') {
        fail("sampling", std::string(name) + "=\"" + raw +
                             "\" is not a non-negative integer");
    }
    return static_cast<std::uint64_t>(v);
}

/** BERTI_VERIFY-style switch: on iff set, non-empty and not "0". */
bool
envSwitch(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v && std::string(v) != "0";
}

/** BERTI_BENCH_QUICK-style switch: on iff the value starts with '1'. */
bool
envOne(const char *name)
{
    const char *v = std::getenv(name);
    return v && v[0] == '1';
}

unsigned
parseJobs(const std::string &text)
{
    bool digits = !text.empty();
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            digits = false;
    }
    unsigned long value = digits ? std::strtoul(text.c_str(), nullptr, 10)
                                 : 0;
    if (!digits || value == 0 || value > 4096) {
        fail("parallel", "BERTI_JOBS must be a positive integer (got \"" +
                             text + "\")");
    }
    return static_cast<unsigned>(value);
}

} // namespace

SimOptions
SimOptions::fromEnv()
{
    SimOptions opt;

    // Parallel runner. A set-but-empty BERTI_JOBS is an error (unlike
    // the obs family): it always meant a typo'd job count.
    if (const char *jobs = std::getenv("BERTI_JOBS"))
        opt.jobs = parseJobs(jobs);

    // Cycle-skip is on by default; any value starting with '0' turns it
    // off. (There is no "force on" spelling — on is the default.)
    if (const char *skip = std::getenv("BERTI_CYCLE_SKIP"))
        opt.cycleSkip = skip[0] != '0';

    // Interval sampling. Windows/warmup/stride accept 0 (off / no
    // per-window warmup / back-to-back); the measured length must stay
    // positive or a "sampled" run would measure nothing.
    opt.sampleWindows = static_cast<unsigned>(
        envU64Zero("BERTI_SAMPLE_WINDOWS", opt.sampleWindows));
    opt.sampleWarmup = envU64Zero("BERTI_SAMPLE_WARMUP", opt.sampleWarmup);
    opt.sampleMeasure =
        envU64Zero("BERTI_SAMPLE_MEASURE", opt.sampleMeasure);
    if (opt.sampleMeasure == 0) {
        fail("sampling",
             "BERTI_SAMPLE_MEASURE must be a positive instruction count");
    }
    opt.sampleStride = envU64Zero("BERTI_SAMPLE_STRIDE", opt.sampleStride);

    // Observability: strict positive-integer parses.
    if (std::getenv("BERTI_OBS_INTERVAL"))
        opt.obsInterval = envU64("BERTI_OBS_INTERVAL", 0);
    opt.obsRing =
        static_cast<std::size_t>(envU64("BERTI_OBS_RING", opt.obsRing));
    if (std::getenv("BERTI_OBS_PFTRACE"))
        opt.pfTraceCapacity =
            static_cast<std::size_t>(envU64("BERTI_OBS_PFTRACE", 0));
    opt.pfTracePeriod =
        envU64("BERTI_OBS_PFTRACE_PERIOD", opt.pfTracePeriod);
    if (const char *dir = std::getenv("BERTI_STATS_DIR"); dir && *dir)
        opt.statsDir = dir;
    if (const char *tw = std::getenv("BERTI_TRACE_WORKLOADS"); tw && *tw)
        opt.traceWorkloads = tw;

    // Memory backend: stored raw, validated by mem::parseBackendSpec
    // where the machine is configured (typed Config error there).
    if (const char *mb = std::getenv("BERTI_MEM_BACKEND"); mb && *mb)
        opt.memBackend = mb;

    // Hardening. A malformed BERTI_VERIFY_INTERVAL is silently ignored
    // (historical auditor behavior: auditing must never be knocked out
    // by a bad interval in CI).
    opt.verify = envSwitch("BERTI_VERIFY");
    if (const char *interval = std::getenv("BERTI_VERIFY_INTERVAL")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(interval, &end, 10);
        if (end && *end == '\0' && v > 0)
            opt.verifyInterval = static_cast<Cycle>(v);
    }

    // Hybrid prefetcher geometry. Degree accepts 0 (greediest-child
    // governor); the table/counter shapes must stay positive. Range
    // validation (e.g. duel-sets vs the bucket count) happens where the
    // values meet a spec, in the hybrid parser, so env and in-spec
    // options fail identically.
    opt.hybridDegree = static_cast<unsigned>(
        envU64Zero("BERTI_HYBRID_DEGREE", opt.hybridDegree));
    opt.hybridCreditEntries = static_cast<unsigned>(
        envU64("BERTI_HYBRID_CREDITS", opt.hybridCreditEntries));
    opt.hybridCreditMax = static_cast<unsigned>(
        envU64("BERTI_HYBRID_CREDIT_MAX", opt.hybridCreditMax));
    opt.hybridDuelSets = static_cast<unsigned>(
        envU64("BERTI_HYBRID_DUEL_SETS", opt.hybridDuelSets));
    opt.hybridPselBits = static_cast<unsigned>(
        envU64("BERTI_HYBRID_PSEL_BITS", opt.hybridPselBits));

    // Bench + test harness.
    opt.benchQuick = envOne("BERTI_BENCH_QUICK");
    opt.updateGoldens = envOne("BERTI_UPDATE_GOLDENS");
    if (const char *seed = std::getenv("BERTI_TEST_SEED");
        seed && *seed) {
        opt.testSeed = std::strtoull(seed, nullptr, 0);
        opt.hasTestSeed = true;
    }
    if (const char *iters = std::getenv("BERTI_PROP_ITERS");
        iters && *iters) {
        unsigned long mult = std::strtoul(iters, nullptr, 10);
        opt.propIterMultiplier = static_cast<unsigned>(mult < 1 ? 1
                                                                : mult);
    }
    if (const char *dir = std::getenv("BERTI_ARTIFACT_DIR"); dir && *dir)
        opt.artifactDir = dir;

    return opt;
}

bool
SimOptions::applyFlag(const std::string &arg)
{
    auto value = [&](const char *prefix) -> const char * {
        std::size_t n = std::string(prefix).size();
        if (arg.compare(0, n, prefix) == 0)
            return arg.c_str() + n;
        return nullptr;
    };

    if (arg == "--quick") {
        benchQuick = true;
        return true;
    }
    if (arg == "--no-cycle-skip") {
        cycleSkip = false;
        return true;
    }
    if (arg == "--cycle-skip") {
        cycleSkip = true;
        return true;
    }
    if (arg == "--verify") {
        verify = true;
        return true;
    }
    if (const char *v = value("--jobs=")) {
        jobs = parseJobs(v);
        return true;
    }
    if (const char *v = value("--stats-dir=")) {
        statsDir = v;
        return true;
    }
    if (const char *v = value("--trace-workloads=")) {
        traceWorkloads = v;
        return true;
    }
    if (const char *v = value("--mem-backend=")) {
        memBackend = v;
        return true;
    }

    // Sampling geometry mirrors the BERTI_SAMPLE_* family, including
    // which knobs accept zero.
    auto u64Flag = [&](const char *text, const char *flag,
                       bool zero_ok) -> std::uint64_t {
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(text, &end, 10);
        if (!end || *end != '\0' || *text == '\0' ||
            (!zero_ok && parsed == 0)) {
            fail("sampling", std::string(flag) + "=\"" + text + "\" is " +
                                 (zero_ok ? "not a non-negative integer"
                                          : "not a positive integer"));
        }
        return static_cast<std::uint64_t>(parsed);
    };
    if (const char *v = value("--sample-windows=")) {
        sampleWindows = static_cast<unsigned>(
            u64Flag(v, "--sample-windows", /*zero_ok=*/true));
        return true;
    }
    if (const char *v = value("--sample-warmup=")) {
        sampleWarmup = u64Flag(v, "--sample-warmup", /*zero_ok=*/true);
        return true;
    }
    if (const char *v = value("--sample-measure=")) {
        sampleMeasure = u64Flag(v, "--sample-measure", /*zero_ok=*/false);
        return true;
    }
    if (const char *v = value("--sample-stride=")) {
        sampleStride = u64Flag(v, "--sample-stride", /*zero_ok=*/true);
        return true;
    }

    // Hybrid selector geometry mirrors the BERTI_HYBRID_* family.
    if (const char *v = value("--hybrid-degree=")) {
        hybridDegree = static_cast<unsigned>(
            u64Flag(v, "--hybrid-degree", /*zero_ok=*/true));
        return true;
    }
    if (const char *v = value("--hybrid-credits=")) {
        hybridCreditEntries = static_cast<unsigned>(
            u64Flag(v, "--hybrid-credits", /*zero_ok=*/false));
        return true;
    }
    if (const char *v = value("--hybrid-credit-max=")) {
        hybridCreditMax = static_cast<unsigned>(
            u64Flag(v, "--hybrid-credit-max", /*zero_ok=*/false));
        return true;
    }
    if (const char *v = value("--hybrid-duel-sets=")) {
        hybridDuelSets = static_cast<unsigned>(
            u64Flag(v, "--hybrid-duel-sets", /*zero_ok=*/false));
        return true;
    }
    if (const char *v = value("--hybrid-psel-bits=")) {
        hybridPselBits = static_cast<unsigned>(
            u64Flag(v, "--hybrid-psel-bits", /*zero_ok=*/false));
        return true;
    }
    return false;
}

SimOptions
SimOptions::fromEnvAndArgs(int &argc, char **argv)
{
    SimOptions opt = fromEnv();
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (!opt.applyFlag(argv[i]))
            argv[kept++] = argv[i];
    }
    argc = kept;
    return opt;
}

} // namespace berti::sim
