#include "sim/stats.hh"

#include <cmath>
#include <sstream>

namespace berti
{

namespace
{

constexpr StatField<CacheStats> kCacheFields[] = {
    {"data_reads", &CacheStats::dataReads},
    {"data_writes", &CacheStats::dataWrites},
    {"demand_accesses", &CacheStats::demandAccesses},
    {"demand_hits", &CacheStats::demandHits},
    {"demand_misses", &CacheStats::demandMisses},
    {"demand_mshr_merged", &CacheStats::demandMshrMerged},
    {"fill_latency_count", &CacheStats::fillLatencyCount},
    {"fill_latency_sum", &CacheStats::fillLatencySum},
    {"fills", &CacheStats::fills},
    {"prefetch_cross_page", &CacheStats::prefetchCrossPage},
    {"prefetch_dropped_full", &CacheStats::prefetchDroppedFull},
    {"prefetch_dropped_page", &CacheStats::prefetchDroppedPage},
    {"prefetch_dropped_tlb", &CacheStats::prefetchDroppedTlb},
    {"prefetch_fills", &CacheStats::prefetchFills},
    {"prefetch_issued", &CacheStats::prefetchIssued},
    {"prefetch_late", &CacheStats::prefetchLate},
    {"prefetch_useful", &CacheStats::prefetchUseful},
    {"prefetch_useless", &CacheStats::prefetchUseless},
    {"requests_below", &CacheStats::requestsBelow},
    {"tag_reads", &CacheStats::tagReads},
    {"tag_writes", &CacheStats::tagWrites},
    {"writebacks", &CacheStats::writebacks},
};

constexpr StatField<DramStats> kDramFields[] = {
    {"bus_busy_cycles", &DramStats::busBusyCycles},
    {"read_latency_count", &DramStats::readLatencyCount},
    {"read_latency_sum", &DramStats::readLatencySum},
    {"reads", &DramStats::reads},
    {"row_conflicts", &DramStats::rowConflicts},
    {"row_hits", &DramStats::rowHits},
    {"row_misses", &DramStats::rowMisses},
    {"writes", &DramStats::writes},
};

constexpr StatField<CoreStats> kCoreFields[] = {
    {"branches", &CoreStats::branches},
    {"cycles", &CoreStats::cycles},
    {"instructions", &CoreStats::instructions},
    {"loads", &CoreStats::loads},
    {"mispredicts", &CoreStats::mispredicts},
    {"stores", &CoreStats::stores},
};

constexpr StatField<TlbStats> kTlbFields[] = {
    {"accesses", &TlbStats::accesses},
    {"misses", &TlbStats::misses},
    {"prefetch_probe_misses", &TlbStats::prefetchProbeMisses},
    {"prefetch_probes", &TlbStats::prefetchProbes},
};

} // namespace

std::span<const StatField<CacheStats>>
CacheStats::fields()
{
    return kCacheFields;
}

std::span<const StatField<DramStats>>
DramStats::fields()
{
    return kDramFields;
}

std::span<const StatField<CoreStats>>
CoreStats::fields()
{
    return kCoreFields;
}

std::span<const StatField<TlbStats>>
TlbStats::fields()
{
    return kTlbFields;
}

double
CacheStats::accuracy() const
{
    if (!prefetchFills)
        return 0.0;
    double useful = static_cast<double>(prefetchUseful);
    double acc = useful / static_cast<double>(prefetchFills);
    return acc > 1.0 ? 1.0 : acc;
}

double
CacheStats::mpki(std::uint64_t instructions) const
{
    if (!instructions)
        return 0.0;
    return 1000.0 * static_cast<double>(demandMisses) /
           static_cast<double>(instructions);
}

void
CacheStats::add(const CacheStats &o)
{
    addStatFields(*this, o);
}

void
DramStats::add(const DramStats &o)
{
    addStatFields(*this, o);
}

void
CoreStats::add(const CoreStats &o)
{
    addStatFields(*this, o);
}

void
TlbStats::add(const TlbStats &o)
{
    addStatFields(*this, o);
}

RunStats
RunStats::diff(const RunStats &e) const
{
    RunStats r;
    r.core = diffStatFields(core, e.core);
    r.l1i = diffStatFields(l1i, e.l1i);
    r.l1d = diffStatFields(l1d, e.l1d);
    r.l2 = diffStatFields(l2, e.l2);
    r.llc = diffStatFields(llc, e.llc);
    r.dtlb = diffStatFields(dtlb, e.dtlb);
    r.stlb = diffStatFields(stlb, e.stlb);
    r.dram = diffStatFields(dram, e.dram);
    return r;
}

void
RunStats::add(const RunStats &o)
{
    core.add(o.core);
    l1i.add(o.l1i);
    l1d.add(o.l1d);
    l2.add(o.l2);
    llc.add(o.llc);
    dtlb.add(o.dtlb);
    stlb.add(o.stlb);
    dram.add(o.dram);
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << "instr=" << core.instructions << " cycles=" << core.cycles
       << " IPC=" << core.ipc()
       << " L1D-MPKI=" << l1d.mpki(core.instructions)
       << " L2-MPKI=" << l2.mpki(core.instructions)
       << " LLC-MPKI=" << llc.mpki(core.instructions)
       << " L1D-pf-acc=" << l1d.accuracy();
    return os.str();
}

double
geomean(const double *values, std::size_t count)
{
    if (!count)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        acc += std::log(values[i]);
    return std::exp(acc / static_cast<double>(count));
}

} // namespace berti
