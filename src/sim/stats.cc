#include "sim/stats.hh"

#include <cmath>
#include <sstream>

namespace berti
{

namespace
{

std::uint64_t
sub(std::uint64_t a, std::uint64_t b)
{
    return a >= b ? a - b : 0;
}

} // namespace

double
CacheStats::accuracy() const
{
    if (!prefetchFills)
        return 0.0;
    double useful = static_cast<double>(prefetchUseful);
    double acc = useful / static_cast<double>(prefetchFills);
    return acc > 1.0 ? 1.0 : acc;
}

double
CacheStats::mpki(std::uint64_t instructions) const
{
    if (!instructions)
        return 0.0;
    return 1000.0 * static_cast<double>(demandMisses) /
           static_cast<double>(instructions);
}

void
CacheStats::add(const CacheStats &o)
{
    demandAccesses += o.demandAccesses;
    demandHits += o.demandHits;
    demandMisses += o.demandMisses;
    demandMshrMerged += o.demandMshrMerged;
    prefetchIssued += o.prefetchIssued;
    prefetchFills += o.prefetchFills;
    prefetchUseful += o.prefetchUseful;
    prefetchUseless += o.prefetchUseless;
    prefetchLate += o.prefetchLate;
    prefetchDroppedFull += o.prefetchDroppedFull;
    prefetchDroppedTlb += o.prefetchDroppedTlb;
    prefetchDroppedPage += o.prefetchDroppedPage;
    fillLatencySum += o.fillLatencySum;
    fillLatencyCount += o.fillLatencyCount;
    writebacks += o.writebacks;
    fills += o.fills;
    requestsBelow += o.requestsBelow;
    tagReads += o.tagReads;
    tagWrites += o.tagWrites;
    dataReads += o.dataReads;
    dataWrites += o.dataWrites;
}

void
DramStats::add(const DramStats &o)
{
    reads += o.reads;
    writes += o.writes;
    rowHits += o.rowHits;
    rowMisses += o.rowMisses;
    rowConflicts += o.rowConflicts;
}

void
CoreStats::add(const CoreStats &o)
{
    instructions += o.instructions;
    cycles += o.cycles;
    loads += o.loads;
    stores += o.stores;
    branches += o.branches;
    mispredicts += o.mispredicts;
}

void
TlbStats::add(const TlbStats &o)
{
    accesses += o.accesses;
    misses += o.misses;
    prefetchProbes += o.prefetchProbes;
    prefetchProbeMisses += o.prefetchProbeMisses;
}

namespace
{

CacheStats
diffCache(const CacheStats &a, const CacheStats &b)
{
    CacheStats r;
    r.demandAccesses = sub(a.demandAccesses, b.demandAccesses);
    r.demandHits = sub(a.demandHits, b.demandHits);
    r.demandMisses = sub(a.demandMisses, b.demandMisses);
    r.demandMshrMerged = sub(a.demandMshrMerged, b.demandMshrMerged);
    r.prefetchIssued = sub(a.prefetchIssued, b.prefetchIssued);
    r.prefetchFills = sub(a.prefetchFills, b.prefetchFills);
    r.prefetchUseful = sub(a.prefetchUseful, b.prefetchUseful);
    r.prefetchUseless = sub(a.prefetchUseless, b.prefetchUseless);
    r.prefetchLate = sub(a.prefetchLate, b.prefetchLate);
    r.prefetchDroppedFull = sub(a.prefetchDroppedFull, b.prefetchDroppedFull);
    r.prefetchDroppedTlb = sub(a.prefetchDroppedTlb, b.prefetchDroppedTlb);
    r.prefetchDroppedPage = sub(a.prefetchDroppedPage, b.prefetchDroppedPage);
    r.fillLatencySum = sub(a.fillLatencySum, b.fillLatencySum);
    r.fillLatencyCount = sub(a.fillLatencyCount, b.fillLatencyCount);
    r.writebacks = sub(a.writebacks, b.writebacks);
    r.fills = sub(a.fills, b.fills);
    r.requestsBelow = sub(a.requestsBelow, b.requestsBelow);
    r.tagReads = sub(a.tagReads, b.tagReads);
    r.tagWrites = sub(a.tagWrites, b.tagWrites);
    r.dataReads = sub(a.dataReads, b.dataReads);
    r.dataWrites = sub(a.dataWrites, b.dataWrites);
    return r;
}

} // namespace

RunStats
RunStats::diff(const RunStats &e) const
{
    RunStats r;
    r.core.instructions = sub(core.instructions, e.core.instructions);
    r.core.cycles = sub(core.cycles, e.core.cycles);
    r.core.loads = sub(core.loads, e.core.loads);
    r.core.stores = sub(core.stores, e.core.stores);
    r.core.branches = sub(core.branches, e.core.branches);
    r.core.mispredicts = sub(core.mispredicts, e.core.mispredicts);
    r.l1i = diffCache(l1i, e.l1i);
    r.l1d = diffCache(l1d, e.l1d);
    r.l2 = diffCache(l2, e.l2);
    r.llc = diffCache(llc, e.llc);
    r.dtlb.accesses = sub(dtlb.accesses, e.dtlb.accesses);
    r.dtlb.misses = sub(dtlb.misses, e.dtlb.misses);
    r.stlb.accesses = sub(stlb.accesses, e.stlb.accesses);
    r.stlb.misses = sub(stlb.misses, e.stlb.misses);
    r.stlb.prefetchProbes = sub(stlb.prefetchProbes, e.stlb.prefetchProbes);
    r.stlb.prefetchProbeMisses =
        sub(stlb.prefetchProbeMisses, e.stlb.prefetchProbeMisses);
    r.dram.reads = sub(dram.reads, e.dram.reads);
    r.dram.writes = sub(dram.writes, e.dram.writes);
    r.dram.rowHits = sub(dram.rowHits, e.dram.rowHits);
    r.dram.rowMisses = sub(dram.rowMisses, e.dram.rowMisses);
    r.dram.rowConflicts = sub(dram.rowConflicts, e.dram.rowConflicts);
    return r;
}

void
RunStats::add(const RunStats &o)
{
    core.add(o.core);
    l1i.add(o.l1i);
    l1d.add(o.l1d);
    l2.add(o.l2);
    llc.add(o.llc);
    dtlb.add(o.dtlb);
    stlb.add(o.stlb);
    dram.add(o.dram);
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << "instr=" << core.instructions << " cycles=" << core.cycles
       << " IPC=" << core.ipc()
       << " L1D-MPKI=" << l1d.mpki(core.instructions)
       << " L2-MPKI=" << l2.mpki(core.instructions)
       << " LLC-MPKI=" << llc.mpki(core.instructions)
       << " L1D-pf-acc=" << l1d.accuracy();
    return os.str();
}

double
geomean(const double *values, std::size_t count)
{
    if (!count)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        acc += std::log(values[i]);
    return std::exp(acc / static_cast<double>(count));
}

} // namespace berti
