/**
 * @file
 * Allocation-free containers for the simulator hot path.
 *
 * RingQueue is a circular FIFO over a power-of-two vector: push_back /
 * pop_front never allocate once the ring has reached its steady-state
 * capacity (reserve up front when the bound is known, e.g. a cache's
 * rqSize). It replaces the std::deque queues that used to churn one
 * chunk allocation every few requests. Growth relinearises into a
 * larger buffer, so FIFO order is always preserved bit-identically.
 *
 * IdSet is a small unordered id membership set backed by a flat vector
 * (linear scan, swap-remove): it replaces the per-insert node
 * allocations of std::unordered_set for the core's outstanding-load
 * tracking, where the population is bounded by the ROB size.
 */

#ifndef BERTI_SIM_RING_HH
#define BERTI_SIM_RING_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

namespace berti
{

template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;
    explicit RingQueue(std::size_t capacity) { reserve(capacity); }

    /** Grow storage to hold at least n elements without reallocating. */
    void
    reserve(std::size_t n)
    {
        if (n > buf.size())
            grow(n);
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return buf.size(); }

    T &front() { return buf[head]; }
    const T &front() const { return buf[head]; }

    /** i-th element from the front (0 = front). */
    T &operator[](std::size_t i) { return buf[wrap(head + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf[wrap(head + i)];
    }

    void
    push_back(const T &v)
    {
        if (count == buf.size())
            grow(count ? count * 2 : 8);
        buf[wrap(head + count)] = v;
        ++count;
    }

    void
    pop_front()
    {
        head = wrap(head + 1);
        --count;
    }

    /**
     * Remove the i-th element, preserving the order of the rest
     * (shifts the tail forward by one). Used by the DRAM FR-FCFS pick.
     */
    void
    erase(std::size_t i)
    {
        for (std::size_t k = i; k + 1 < count; ++k)
            (*this)[k] = (*this)[k + 1];
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    template <bool Const>
    class Iter
    {
        using Owner =
            std::conditional_t<Const, const RingQueue, RingQueue>;

      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using reference = std::conditional_t<Const, const T &, T &>;
        using pointer = std::conditional_t<Const, const T *, T *>;

        Iter(Owner *owner, std::size_t index) : q(owner), i(index) {}

        reference operator*() const { return (*q)[i]; }
        pointer operator->() const { return &(*q)[i]; }
        Iter &operator++()
        {
            ++i;
            return *this;
        }
        bool operator==(const Iter &o) const { return i == o.i; }
        bool operator!=(const Iter &o) const { return i != o.i; }

      private:
        Owner *q;
        std::size_t i;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    std::size_t wrap(std::size_t i) const { return i & (buf.size() - 1); }

    void
    grow(std::size_t at_least)
    {
        std::size_t cap = 8;
        while (cap < at_least)
            cap *= 2;
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < count; ++i)
            bigger[i] = (*this)[i];
        buf.swap(bigger);
        head = 0;
    }

    std::vector<T> buf;       //!< power-of-two capacity (or empty)
    std::size_t head = 0;
    std::size_t count = 0;
};

/** Flat unordered id set with allocation-free steady-state churn. */
class IdSet
{
  public:
    void reserve(std::size_t n) { ids.reserve(n); }

    void insert(std::uint64_t id) { ids.push_back(id); }

    void
    erase(std::uint64_t id)
    {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == id) {
                ids[i] = ids.back();
                ids.pop_back();
                return;
            }
        }
    }

    std::size_t
    count(std::uint64_t id) const
    {
        for (std::uint64_t v : ids) {
            if (v == id)
                return 1;
        }
        return 0;
    }

    std::size_t size() const { return ids.size(); }
    bool empty() const { return ids.empty(); }

    /**
     * Raw backing vector, exposed for checkpoint serialization.
     * Membership is order-independent, but the checkpoint layer
     * preserves the order anyway so a restored machine re-serializes
     * to a byte-identical blob.
     */
    const std::vector<std::uint64_t> &raw() const { return ids; }
    void assign(std::vector<std::uint64_t> v) { ids = std::move(v); }

  private:
    std::vector<std::uint64_t> ids;
};

} // namespace berti

#endif // BERTI_SIM_RING_HH
