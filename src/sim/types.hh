/**
 * @file
 * Fundamental address/cycle types and address arithmetic helpers shared by
 * every subsystem of the simulator.
 */

#ifndef BERTI_SIM_TYPES_HH
#define BERTI_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace berti
{

/** A byte address, virtual or physical depending on context. */
using Addr = std::uint64_t;

/** A core-clock cycle count. */
using Cycle = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no scheduled event" (quiescence cycle-skip). */
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

/** Cache line geometry: 64-byte lines. */
constexpr unsigned kLineBits = 6;
constexpr unsigned kLineSize = 1u << kLineBits;

/** Page geometry: 4 KB pages. */
constexpr unsigned kPageBits = 12;
constexpr Addr kPageSize = Addr{1} << kPageBits;

/** Cache lines per page. */
constexpr unsigned kLinesPerPage = 1u << (kPageBits - kLineBits);

/** Byte address -> cache-line address (line number). */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLineBits;
}

/** Cache-line address -> byte address of the line base. */
constexpr Addr
lineToByte(Addr line_addr)
{
    return line_addr << kLineBits;
}

/** Byte address -> page number. */
constexpr Addr
pageAddr(Addr byte_addr)
{
    return byte_addr >> kPageBits;
}

/** Byte offset within the page. */
constexpr Addr
pageOffset(Addr byte_addr)
{
    return byte_addr & (kPageSize - 1);
}

/** True when two byte addresses fall on the same cache line. */
constexpr bool
sameLine(Addr a, Addr b)
{
    return lineAddr(a) == lineAddr(b);
}

/** True when two byte addresses fall on the same 4 KB page. */
constexpr bool
samePage(Addr a, Addr b)
{
    return pageAddr(a) == pageAddr(b);
}

/**
 * Kind of a memory-hierarchy request. Mirrors ChampSim's access types.
 */
enum class AccessType : std::uint8_t
{
    Load,        //!< demand data read
    Rfo,         //!< demand store (read-for-ownership)
    Prefetch,    //!< prefetcher-generated read
    Writeback,   //!< dirty eviction from an upper level
    InstrFetch,  //!< instruction-cache read
    Translation  //!< page-walk read
};

/**
 * Deepest-to-shallowest fill target of a prefetch request. A prefetch
 * with level L2 installs the line at L2 and LLC but not at L1D, exactly
 * like ChampSim's fill_this_level semantics used by the paper.
 */
enum class FillLevel : std::uint8_t
{
    L1 = 1,  //!< fill L1D, L2 and LLC
    L2 = 2,  //!< fill L2 and LLC
    LLC = 3  //!< fill LLC only
};

} // namespace berti

#endif // BERTI_SIM_TYPES_HH
