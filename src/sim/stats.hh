/**
 * @file
 * Plain counter structs gathered by each component during simulation plus
 * the derived metrics (IPC, MPKI, accuracy, coverage, traffic) the paper
 * reports. Counters are POD so copying a snapshot is trivial.
 *
 * Every struct publishes a static field table (stable snake_case metric
 * name -> member pointer). The table is the single source of truth: it
 * drives add()/diff() here, and the obs layer walks it to register live
 * counters into a MetricsRegistry and to build exportable snapshots, so
 * the exported schema can never drift from the structs.
 */

#ifndef BERTI_SIM_STATS_HH
#define BERTI_SIM_STATS_HH

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

#include "sim/types.hh"

namespace berti
{

/** One named counter of a stats struct S. */
template <typename S>
struct StatField
{
    const char *name;            //!< stable snake_case schema name
    std::uint64_t S::*member;
};

/** Counters maintained by one cache level. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;  //!< load + RFO + instr tag lookups
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;    //!< misses that allocated an MSHR
    std::uint64_t demandMshrMerged = 0;

    std::uint64_t prefetchIssued = 0;    //!< prefetches sent below
    std::uint64_t prefetchFills = 0;     //!< lines installed by prefetch
    std::uint64_t prefetchUseful = 0;    //!< prefetched lines later demanded
    std::uint64_t prefetchUseless = 0;   //!< evicted without use
    std::uint64_t prefetchLate = 0;      //!< demand merged into pf MSHR
    std::uint64_t prefetchDroppedFull = 0;  //!< PQ/MSHR full
    std::uint64_t prefetchDroppedTlb = 0;   //!< STLB miss on translation
    std::uint64_t prefetchDroppedPage = 0;  //!< cross-page at phys level
    std::uint64_t prefetchCrossPage = 0;    //!< issued into another page
                                            //!< than the triggering access

    std::uint64_t writebacks = 0;      //!< dirty evictions sent below
    std::uint64_t fills = 0;           //!< all line installs
    std::uint64_t requestsBelow = 0;   //!< total reads forwarded below

    std::uint64_t fillLatencySum = 0;  //!< cycles, all MSHR fills
    std::uint64_t fillLatencyCount = 0;

    std::uint64_t tagReads = 0;        //!< energy accounting
    std::uint64_t tagWrites = 0;
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;

    static std::span<const StatField<CacheStats>> fields();

    /** Timely useful prefetches (hit a prefetched, already filled line). */
    std::uint64_t
    prefetchTimely() const
    {
        return prefetchUseful >= prefetchLate ?
            prefetchUseful - prefetchLate : 0;
    }

    /**
     * Prefetch accuracy as defined by the paper's artifact:
     * (late + timely) / prefetch fills, i.e. 1 - unnecessary traffic.
     */
    double accuracy() const;

    /** Demand misses per kilo-instruction given an instruction count. */
    double mpki(std::uint64_t instructions) const;

    /** Average fill (miss) latency in cycles. */
    double
    avgFillLatency() const
    {
        return fillLatencyCount
            ? static_cast<double>(fillLatencySum) / fillLatencyCount
            : 0.0;
    }

    void add(const CacheStats &other);
};

/** Counters maintained by the DRAM controller. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    /** Cycles the channel data bus spent transferring bursts. */
    std::uint64_t busBusyCycles = 0;
    /** Sum/count of enqueue-to-data read latencies (lost injected reads
     *  excluded); avg = readLatencySum / readLatencyCount. */
    std::uint64_t readLatencySum = 0;
    std::uint64_t readLatencyCount = 0;

    static std::span<const StatField<DramStats>> fields();

    void add(const DramStats &other);
};

/** Counters maintained by one core. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    static std::span<const StatField<CoreStats>> fields();

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    void add(const CoreStats &other);
};

/** Counters maintained by one TLB level. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t prefetchProbes = 0;
    std::uint64_t prefetchProbeMisses = 0;

    static std::span<const StatField<TlbStats>> fields();

    void add(const TlbStats &other);
};

/** Invoke fn(name, counter_ref) for every field of a stats struct. */
template <typename S, typename Fn>
void
forEachStatField(S &s, Fn &&fn)
{
    for (const auto &f : std::remove_const_t<S>::fields())
        fn(f.name, s.*(f.member));
}

/** dst += src, field table driven. */
template <typename S>
void
addStatFields(S &dst, const S &src)
{
    for (const auto &f : S::fields())
        dst.*(f.member) += src.*(f.member);
}

/** Saturating component-wise a - b, field table driven. */
template <typename S>
S
diffStatFields(const S &a, const S &b)
{
    S r;
    for (const auto &f : S::fields()) {
        std::uint64_t lhs = a.*(f.member);
        std::uint64_t rhs = b.*(f.member);
        r.*(f.member) = lhs >= rhs ? lhs - rhs : 0;
    }
    return r;
}

/**
 * Full snapshot of one simulated run of one core (plus the shared levels
 * it touched). The harness subtracts a warm-up snapshot from the final
 * snapshot to get region-of-interest statistics.
 */
struct RunStats
{
    CoreStats core;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;
    TlbStats dtlb;
    TlbStats stlb;
    DramStats dram;

    /** Component-wise difference (this - earlier), used for ROI stats. */
    RunStats diff(const RunStats &earlier) const;

    /** Component-wise accumulate. */
    void add(const RunStats &other);

    /** Render a compact human-readable summary. */
    std::string summary() const;
};

/**
 * Invoke fn(component_prefix, component_stats) for each component of a
 * RunStats, using the canonical schema prefixes ("core.", "l1i.",
 * "l1d.", "l2.", "llc.", "dtlb.", "stlb.", "dram."). Self may be const
 * or mutable.
 */
template <typename Self, typename Fn>
void
visitRunStatsComponents(Self &s, Fn &&fn)
{
    fn("core.", s.core);
    fn("dram.", s.dram);
    fn("dtlb.", s.dtlb);
    fn("l1d.", s.l1d);
    fn("l1i.", s.l1i);
    fn("l2.", s.l2);
    fn("llc.", s.llc);
    fn("stlb.", s.stlb);
}

/**
 * Invoke fn(full_name, counter_ref) for every counter of a RunStats,
 * names prefixed per component ("l1d.demand_misses", ...).
 */
template <typename Self, typename Fn>
void
visitRunStatsCounters(Self &s, Fn &&fn)
{
    visitRunStatsComponents(s, [&fn](const char *prefix, auto &component) {
        forEachStatField(component,
                         [&fn, prefix](const char *name, auto &value) {
                             fn(std::string(prefix) + name, value);
                         });
    });
}

/** Geometric mean of a range of positive speedups. */
double geomean(const double *values, std::size_t count);

} // namespace berti

#endif // BERTI_SIM_STATS_HH
