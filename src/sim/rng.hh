/**
 * @file
 * Small deterministic xorshift-based pseudo-random generator. Every source
 * of randomness in the simulator (graph topology, page mapping, workload
 * mixes) flows through this class so runs are bit-reproducible.
 */

#ifndef BERTI_SIM_RNG_HH
#define BERTI_SIM_RNG_HH

#include <cstdint>

namespace berti
{

/**
 * xorshift64* generator. Deliberately not std::mt19937: we want a tiny,
 * header-visible, implementation-pinned generator whose sequences never
 * change across standard-library versions.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Zipf-distributed integer in [0, n) with exponent s. Used for
     * power-law graph degrees and hot-set accesses.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Full generator state, for checkpoint export. */
    std::uint64_t serializeState() const { return state; }

    /** Restore a state previously captured with serializeState(). */
    void restoreState(std::uint64_t s) { state = s; }

  private:
    std::uint64_t state;
};

} // namespace berti

#endif // BERTI_SIM_RNG_HH
