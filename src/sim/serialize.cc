#include "sim/serialize.hh"

#include "verify/sim_error.hh"

namespace berti::sim
{

std::uint64_t
fnv1a64(std::string_view data)
{
    Fnv64 h;
    h.add(data);
    return h.value();
}

void
ByteReader::expectTag(std::uint32_t t, const char *what)
{
    std::size_t at = pos;
    std::uint32_t got = u32();
    if (got != t) {
        pos = at;
        fail(std::string("bad section marker for ") + what +
             " — checkpoint layout mismatch");
    }
}

void
ByteReader::fail(const std::string &reason) const
{
    throw verify::SimError(verify::ErrorKind::Checkpoint, comp, reason,
                           origin, pos);
}

std::uint32_t
PtrMap::idOf(const void *p) const
{
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
        if (ptrs[i] == p)
            return static_cast<std::uint32_t>(i);
    }
    throw verify::SimError(
        verify::ErrorKind::Checkpoint, "PtrMap",
        "in-flight request references a component outside the machine "
        "topology — cannot serialize its client pointer");
}

void *
PtrMap::at(std::uint32_t id) const
{
    if (id >= ptrs.size()) {
        throw verify::SimError(
            verify::ErrorKind::Checkpoint, "PtrMap",
            "checkpoint references client id " + std::to_string(id) +
                " but the machine topology has only " +
                std::to_string(ptrs.size()) + " registered components");
    }
    return ptrs[id];
}

} // namespace berti::sim
