#include "sim/rng.hh"

#include <cmath>

namespace berti
{

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Multiply-shift reduction; bias is negligible for simulator use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    // Rejection-free approximate inverse-CDF sampling for the bounded
    // Zipf distribution, accurate enough for synthetic workloads.
    if (n <= 1)
        return 0;
    double u = nextDouble();
    if (s == 1.0) {
        double h = std::log(static_cast<double>(n));
        return static_cast<std::uint64_t>(std::exp(u * h)) - 1;
    }
    double one_minus_s = 1.0 - s;
    double h = (std::pow(static_cast<double>(n), one_minus_s) - 1.0) /
               one_minus_s;
    double x = std::pow(u * h * one_minus_s + 1.0, 1.0 / one_minus_s);
    std::uint64_t v = static_cast<std::uint64_t>(x);
    return v >= n ? n - 1 : v;
}

} // namespace berti
