/**
 * @file
 * Checkpoint serialization primitives: a typed little-endian byte
 * writer/reader pair, an incremental FNV-1a-64 hasher (also the
 * result-store content hash), and a pointer<->id registry for
 * serializing the ReadClient pointers inside in-flight MemRequests.
 *
 * Every multi-byte field is written little-endian at a fixed width, so
 * a checkpoint blob is byte-identical across hosts and across
 * re-serialization of a restored machine (the round-trip property the
 * checkpoint fuzz suite pins). The reader is bounds-checked: running
 * past the end of a (truncated) blob throws
 * verify::SimError(ErrorKind::Checkpoint) carrying the byte offset,
 * never reads junk.
 */

#ifndef BERTI_SIM_SERIALIZE_HH
#define BERTI_SIM_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"

namespace berti::sim
{

/** Incremental FNV-1a-64 hash. */
class Fnv64
{
  public:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    void
    addBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state ^= p[i];
            state *= kPrime;
        }
    }

    void add(std::string_view s) { addBytes(s.data(), s.size()); }

    void
    add(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        addBytes(b, 8);
    }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = kOffset;
};

/** One-shot FNV-1a-64 of a byte string. */
std::uint64_t fnv1a64(std::string_view data);

/** Typed little-endian serializer into a growable byte string. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed (u32) byte string. */
    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s.data(), s.size());
    }

    void
    bytes(const void *data, std::size_t len)
    {
        buf.append(static_cast<const char *>(data), len);
    }

    /** Section marker; the reader cross-checks it so a save/load
     *  asymmetry fails at the drifting component, not megabytes later. */
    void tag(std::uint32_t t) { u32(t); }

    std::size_t size() const { return buf.size(); }
    const std::string &data() const { return buf; }
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/**
 * Bounds-checked little-endian reader over a checkpoint blob. All
 * failure modes (overrun, bad section tag) throw
 * verify::SimError(ErrorKind::Checkpoint) naming the component and the
 * byte offset within `path`.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data, std::string component,
                        std::string path = {})
        : buf(data), comp(std::move(component)), origin(std::move(path))
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (static_cast<std::uint16_t>(u8())
                                           << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16();
        return lo | (static_cast<std::uint32_t>(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }

    std::string
    str()
    {
        std::uint32_t len = u32();
        need(len);
        std::string s(buf.substr(pos, len));
        pos += len;
        return s;
    }

    void
    bytes(void *out, std::size_t len)
    {
        need(len);
        buf.copy(static_cast<char *>(out), len, pos);
        pos += len;
    }

    /** Verify a section marker written by ByteWriter::tag. */
    void expectTag(std::uint32_t t, const char *what);

    std::size_t offset() const { return pos; }
    std::size_t remaining() const { return buf.size() - pos; }
    bool atEnd() const { return pos == buf.size(); }

    /** Throw the typed checkpoint error for this reader's context. */
    [[noreturn]] void fail(const std::string &reason) const;

  private:
    void
    need(std::size_t n)
    {
        if (buf.size() - pos < n)
            fail("truncated checkpoint data (need " + std::to_string(n) +
                 " more bytes, " + std::to_string(buf.size() - pos) +
                 " left)");
    }

    std::string_view buf;
    std::size_t pos = 0;
    std::string comp;
    std::string origin;
};

/**
 * Bidirectional pointer<->small-id registry. Id 0 is always the null
 * pointer; both sides of a checkpoint build the map by walking the
 * machine topology in the same deterministic order, so an id written
 * on save resolves to the equivalent component on load.
 */
class PtrMap
{
  public:
    PtrMap() : ptrs{nullptr} {}

    /** Register the next pointer; ids are dense and order-assigned. */
    std::uint32_t
    add(void *p)
    {
        ptrs.push_back(p);
        return static_cast<std::uint32_t>(ptrs.size() - 1);
    }

    /** Id of a registered pointer (0 for null); throws on unknown. */
    std::uint32_t idOf(const void *p) const;

    /** Pointer for an id read from a checkpoint; throws on bad id. */
    void *at(std::uint32_t id) const;

  private:
    std::vector<void *> ptrs;
};

/** Serialize every counter of a stats struct, field-table order. */
template <typename S>
void
saveStatsFields(ByteWriter &w, const S &s)
{
    forEachStatField(const_cast<S &>(s),
                     [&w](const char *, std::uint64_t &v) { w.u64(v); });
}

template <typename S>
void
loadStatsFields(ByteReader &r, S &s)
{
    forEachStatField(s,
                     [&r](const char *, std::uint64_t &v) { v = r.u64(); });
}

} // namespace berti::sim

#endif // BERTI_SIM_SERIALIZE_HH
