/**
 * @file
 * Shared paren-aware spec-string parsing. Every grammar in the harness
 * that splits composite names — prefetcher combos ("mlop+bingo",
 * "hybrid(berti,cmc;select=ip)"), workload lists with `file:` URIs,
 * memory-backend specs ("dram:ddr5;sched=fcfs") — splits at paren
 * depth 0 so nested argument lists stay intact. This header is that
 * one splitter, plus the `;key=value` option-list parser the backend
 * and hybrid grammars share, so makeSpec-style resolution and
 * MachineConfig::applyOptions can never drift apart.
 */

#ifndef BERTI_SIM_SPEC_PARSE_HH
#define BERTI_SIM_SPEC_PARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace berti::sim
{

/**
 * Split `text` on `sep` at paren depth 0. Separators inside (...) are
 * part of the element, so "hybrid(berti,cmc),none" splits into two.
 * Empty elements are dropped (",a,," yields {"a"}), matching the
 * historical behaviour of every list this replaces.
 */
std::vector<std::string> splitTopLevel(const std::string &text, char sep);

/**
 * Index of the first `sep` at paren depth 0, or std::string::npos.
 * The level separator of "mlop+bingo" and the option separator of
 * backend specs both resolve through this.
 */
std::size_t findTopLevel(const std::string &text, char sep);

/** One `key=value` option from a `;`-separated option list. */
struct SpecOption
{
    std::string key;
    std::string value;
};

/**
 * Parse a `;`-separated `key=value` option list (the text after the
 * first `;` of a spec like "dram:ddr5;sched=fcfs;cap=8"). A clause
 * without '=' or with an empty key throws
 * verify::SimError(ErrorKind::Config) naming `component` and the
 * offending clause; empty clauses (";;") are dropped.
 */
std::vector<SpecOption> parseSpecOptions(const std::string &text,
                                         const std::string &component);

/**
 * Strict non-negative integer parse for a spec option value. Throws
 * verify::SimError(ErrorKind::Config) naming `component` and `key`
 * when `value` is not a plain decimal integer (or is zero while
 * `zero_ok` is false).
 */
std::uint64_t parseSpecUnsigned(const std::string &key,
                                const std::string &value,
                                const std::string &component,
                                bool zero_ok = false);

} // namespace berti::sim

#endif // BERTI_SIM_SPEC_PARSE_HH
