/**
 * @file
 * Fault-injection harness. One FaultInjector instance is threaded
 * through trace I/O and the memory hierarchy (MachineConfig::faults);
 * each component asks it whether to perturb the event at hand. All
 * draws flow through the simulator's deterministic Rng, so a fault
 * campaign is reproducible from its seed.
 *
 * Supported faults:
 *   - trace records: random bit flips (hostile payloads the decoder and
 *     machine must survive) and injected stream truncation (must surface
 *     as a typed SimError, never a crash or silent empty trace);
 *   - DRAM: latency spikes on reads, to stress Berti's measured-latency
 *     timeliness learning;
 *   - prefetch fills: dropped (line never installed) or delayed;
 *   - DRAM read responses: swallowed entirely ("lost"), which wedges the
 *     requesting MSHR — the scenario the forward-progress watchdog and
 *     the SimAuditor's leak check exist to catch.
 */

#ifndef BERTI_VERIFY_FAULT_INJECTOR_HH
#define BERTI_VERIFY_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace berti
{
struct MemRequest;
} // namespace berti

namespace berti::verify
{

struct FaultConfig
{
    std::uint64_t seed = 0x5eedull;

    // ------------------------------------------------------ trace I/O
    double traceBitFlipRate = 0.0;   //!< P(flip one bit) per record
    double traceTruncateRate = 0.0;  //!< P(cut the stream) per record
    double traceGarbageRate = 0.0;   //!< P(record rewritten wholesale)

    // ----------------------------------------------------------- DRAM
    double dramSpikeRate = 0.0;      //!< P(latency spike) per read
    Cycle dramSpikeCycles = 0;       //!< extra cycles on a spike
    double dramLoseReadRate = 0.0;   //!< P(response swallowed) per read

    // ------------------------------------------------- prefetch fills
    double dropPrefetchFillRate = 0.0;   //!< P(fill discarded) per fill
    double delayPrefetchFillRate = 0.0;  //!< P(fill delayed) per read
    Cycle prefetchDelayCycles = 0;       //!< extra cycles when delayed
};

/** What mutateTraceRecord did to the record at hand. */
enum class TraceFault : std::uint8_t
{
    None,
    Corrupted,  //!< payload bits flipped; record still parses
    Truncated   //!< stream ends here; loader must report a typed error
};

class FaultInjector
{
  public:
    /** Counts of every fault actually injected (not just configured). */
    struct Stats
    {
        std::uint64_t traceBitFlips = 0;
        std::uint64_t traceTruncations = 0;
        std::uint64_t traceGarbageRecords = 0;
        std::uint64_t dramSpikes = 0;
        std::uint64_t dramLostReads = 0;
        std::uint64_t droppedPrefetchFills = 0;
        std::uint64_t delayedPrefetchFills = 0;
    };

    explicit FaultInjector(const FaultConfig &cfg = {});

    /**
     * Possibly corrupt or truncate one on-disk trace record (raw bytes,
     * before decoding). Bit flips touch at most one bit per draw so
     * corrupt corpora stay close to realistic single-event upsets; the
     * garbage mode (used to harden the header-less ChampSim decode
     * path, where *any* byte pattern must parse) rewrites the whole
     * record with deterministic pseudorandom bytes.
     */
    TraceFault mutateTraceRecord(unsigned char *bytes, std::size_t len);

    /** Extra service latency for one DRAM read (0 = no fault). */
    Cycle extraDramLatency(const MemRequest &req);

    /** True when this DRAM read's response must be swallowed. */
    bool loseDramRead();

    /** True when a completed pure-prefetch fill must be discarded. */
    bool dropPrefetchFill();

    const Stats &stats() const { return counters; }
    const FaultConfig &config() const { return cfg; }

  private:
    FaultConfig cfg;
    Rng rng;
    Stats counters;
};

} // namespace berti::verify

#endif // BERTI_VERIFY_FAULT_INJECTOR_HH
