#include "verify/sim_error.hh"

namespace berti::verify
{

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config:
        return "config";
      case ErrorKind::TraceIo:
        return "trace-io";
      case ErrorKind::Invariant:
        return "invariant";
      case ErrorKind::Watchdog:
        return "watchdog";
      case ErrorKind::Fault:
        return "fault";
      case ErrorKind::Checkpoint:
        return "checkpoint";
      case ErrorKind::Timeout:
        return "timeout";
      case ErrorKind::Worker:
        return "worker";
    }
    return "unknown";
}

std::string
SimError::format(ErrorKind kind, const std::string &component,
                 const std::string &reason, const std::string &path,
                 std::uint64_t offset)
{
    std::string msg = "[";
    msg += errorKindName(kind);
    msg += "] ";
    msg += component;
    msg += ": ";
    msg += reason;
    if (!path.empty()) {
        msg += " (";
        msg += path;
        msg += " @ byte ";
        msg += std::to_string(offset);
        msg += ")";
    }
    return msg;
}

SimError::SimError(ErrorKind kind, std::string component,
                   std::string reason, std::string path,
                   std::uint64_t offset, std::string diagnostic)
    : std::runtime_error(format(kind, component, reason, path, offset)),
      errKind(kind), errComponent(std::move(component)),
      errReason(std::move(reason)), errPath(std::move(path)),
      errOffset(offset), errDiagnostic(std::move(diagnostic))
{}

} // namespace berti::verify
