/**
 * @file
 * Typed simulator errors and a small Result<T> carrier, so every failure
 * path in trace I/O, machine construction and the hardening layer is
 * explicit: callers either get a value or a structured, inspectable
 * error — never a silent empty result or a release-stripped assert.
 */

#ifndef BERTI_VERIFY_SIM_ERROR_HH
#define BERTI_VERIFY_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace berti::verify
{

/** Broad failure class; coarser than the message, stable for tests. */
enum class ErrorKind : std::uint8_t
{
    Config,     //!< invalid machine/cache/workload configuration
    TraceIo,    //!< trace file missing, corrupt or truncated
    Invariant,  //!< SimAuditor found corrupted simulator state
    Watchdog,   //!< forward progress stopped (stuck ROB head / no retire)
    Fault,      //!< an injected fault escalated to a hard failure
    Checkpoint, //!< checkpoint missing, corrupt, incompatible, unsupported
    Timeout,    //!< wall-clock budget exceeded (supervised execution)
    Worker      //!< a supervised cell failed for an unclassified reason
};

/** Human-readable name of an ErrorKind ("config", "trace-io", ...). */
const char *errorKindName(ErrorKind kind);

/**
 * The one exception type the simulator throws. Carries the failure
 * class, the component that detected it, a reason, and — where it
 * applies — a file path + byte offset (trace I/O) and a multi-line
 * diagnostic dump (watchdog / auditor).
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, std::string component, std::string reason,
             std::string path = {}, std::uint64_t offset = 0,
             std::string diagnostic = {});

    ErrorKind kind() const { return errKind; }
    const std::string &component() const { return errComponent; }
    const std::string &reason() const { return errReason; }

    /** File the error refers to (trace I/O); empty otherwise. */
    const std::string &path() const { return errPath; }

    /** Byte offset within path() where decoding failed. */
    std::uint64_t offset() const { return errOffset; }

    /** Structured state dump (watchdog / invariant failures). */
    const std::string &diagnostic() const { return errDiagnostic; }

  private:
    static std::string format(ErrorKind kind, const std::string &component,
                              const std::string &reason,
                              const std::string &path,
                              std::uint64_t offset);

    ErrorKind errKind;
    std::string errComponent;
    std::string errReason;
    std::string errPath;
    std::uint64_t errOffset;
    std::string errDiagnostic;
};

/**
 * Value-or-SimError. Deliberately tiny: ok()/value()/error() plus a
 * throwing value() accessor so call sites that cannot handle the error
 * locally surface the *typed* error instead of inventing their own.
 */
template <typename T>
class Result
{
  public:
    Result(T v) : store(std::move(v)) {}                  // NOLINT
    Result(SimError e) : store(std::move(e)) {}           // NOLINT

    bool ok() const { return std::holds_alternative<T>(store); }
    explicit operator bool() const { return ok(); }

    /** The value; throws the stored SimError when !ok(). */
    T &
    value()
    {
        if (!ok())
            throw std::get<SimError>(store);
        return std::get<T>(store);
    }

    const T &
    value() const
    {
        if (!ok())
            throw std::get<SimError>(store);
        return std::get<T>(store);
    }

    /** The error; only valid when !ok(). */
    const SimError &error() const { return std::get<SimError>(store); }

    /** The value, or a fallback when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(store) : std::move(fallback);
    }

  private:
    std::variant<T, SimError> store;
};

} // namespace berti::verify

#endif // BERTI_VERIFY_SIM_ERROR_HH
