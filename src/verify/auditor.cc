#include "verify/auditor.hh"

#include <cstdlib>

#include "cpu/core.hh"
#include "mem/backend.hh"
#include "mem/cache.hh"
#include "sim/options.hh"
#include "vm/tlb.hh"

namespace berti::verify
{

AuditConfig
AuditConfig::fromEnv()
{
    return fromOptions(sim::SimOptions::fromEnv());
}

AuditConfig
AuditConfig::fromOptions(const sim::SimOptions &opt)
{
    AuditConfig cfg;
    cfg.enabled = opt.verify;
    cfg.interval = opt.verifyInterval;
    return cfg;
}

SimAuditor::SimAuditor(const AuditConfig &config, const Cycle *clock_ptr)
    : cfg(config), clock(clock_ptr)
{}

void
SimAuditor::attach(const Cache *cache)
{
    caches.push_back(cache);
}

void
SimAuditor::attach(const mem::MemBackend *backend)
{
    backends.push_back(backend);
}

void
SimAuditor::attach(const Core *core)
{
    cores.push_back(core);
}

void
SimAuditor::attach(const TranslationUnit *tu)
{
    tus.push_back(tu);
}

void
SimAuditor::tick()
{
    if (*clock - lastCheck < cfg.interval)
        return;
    lastCheck = *clock;
    checkNow();
}

void
SimAuditor::checkNow() const
{
    ++checks;
    for (const Cache *c : caches)
        checkCache(*c);
    for (const mem::MemBackend *b : backends)
        checkMemBackend(*b);
    for (const Core *c : cores)
        checkCore(*c);
    for (const TranslationUnit *t : tus)
        checkTranslation(*t);
}

void
SimAuditor::fail(const std::string &component,
                 const std::string &reason) const
{
    throw SimError(ErrorKind::Invariant, component, reason, {}, 0,
                   "cycle " + std::to_string(*clock));
}

void
SimAuditor::checkCache(const Cache &cache) const
{
    const CacheConfig &ccfg = cache.cfg;
    const std::string &name = ccfg.name;

    // ------------------------------------------------ MSHR bookkeeping
    unsigned valid = 0;
    unsigned unsent = 0;
    for (const auto &e : cache.mshr) {
        if (!e.valid)
            continue;
        ++valid;
        if (!e.sentBelow)
            ++unsent;
        if (e.pLine == kNoAddr)
            fail(name, "valid MSHR entry with no line address");
        Cycle age = *clock >= e.ts ? *clock - e.ts : 0;
        if (age > cfg.mshrLeakCycles) {
            fail(name,
                 "leaked MSHR entry: line " + std::to_string(e.pLine) +
                     (e.isPrefetch ? " (prefetch)" : " (demand)") +
                     " outstanding for " + std::to_string(age) +
                     " cycles (timestamp bookkeeping would corrupt "
                     "Berti's latency measurement)");
        }
    }
    if (valid != cache.mshrUsed) {
        fail(name, "MSHR in-use count " +
                       std::to_string(cache.mshrUsed) + " != " +
                       std::to_string(valid) + " valid entries");
    }

    // -------------------------------------------- MSHR arena free-list
    // The free-list and the valid bits must partition the arena: a live
    // entry on the free-list would be recycled while a response is
    // still in flight.
    if (cache.mshrFree.size() != ccfg.mshrs - cache.mshrUsed) {
        fail(name, "MSHR free-list holds " +
                       std::to_string(cache.mshrFree.size()) +
                       " entries; expected " +
                       std::to_string(ccfg.mshrs - cache.mshrUsed));
    }
    for (unsigned idx : cache.mshrFree) {
        if (idx >= ccfg.mshrs)
            fail(name, "MSHR free-list index " + std::to_string(idx) +
                           " out of range");
        if (cache.mshr[idx].valid)
            fail(name, "live MSHR entry " + std::to_string(idx) +
                           " present on the free-list (would be "
                           "recycled under an in-flight response)");
    }
    if (cache.unsentMshrs != unsent)
        fail(name, "unsent-MSHR count " +
                       std::to_string(cache.unsentMshrs) + " != " +
                       std::to_string(unsent) +
                       " valid entries awaiting a lower-level slot "
                       "(retry scheduling would stall or spin)");

    // ------------------------------------------------- queue occupancy
    if (cache.rq.size() > ccfg.rqSize)
        fail(name, "RQ occupancy " + std::to_string(cache.rq.size()) +
                       " exceeds declared bound " +
                       std::to_string(ccfg.rqSize));
    if (cache.pq.size() > ccfg.pqSize)
        fail(name, "PQ occupancy " + std::to_string(cache.pq.size()) +
                       " exceeds declared bound " +
                       std::to_string(ccfg.pqSize));
    // The WQ is soft-capacity by design (fills must never deadlock), so
    // its declared bound is a burst multiple of the configured size.
    std::size_t wq_bound = 16ull * ccfg.wqSize + 256;
    if (cache.wq.size() > wq_bound)
        fail(name, "WQ occupancy " + std::to_string(cache.wq.size()) +
                       " exceeds soft bound " + std::to_string(wq_bound));

    // ------------------------------------------- tag-array consistency
    for (unsigned set = 0; set < ccfg.sets; ++set) {
        std::size_t base = static_cast<std::size_t>(set) * ccfg.ways;
        for (unsigned w = 0; w < ccfg.ways; ++w) {
            const auto &line = cache.lines[base + w];
            if (!line.valid)
                continue;
            if (line.pLine == kNoAddr)
                fail(name, "valid line with no address in set " +
                               std::to_string(set));
            if (cache.setIndex(line.pLine) != set)
                fail(name, "line " + std::to_string(line.pLine) +
                               " stored in foreign set " +
                               std::to_string(set));
            for (unsigned w2 = w + 1; w2 < ccfg.ways; ++w2) {
                const auto &other = cache.lines[base + w2];
                if (other.valid && other.pLine == line.pLine)
                    fail(name, "duplicate tag " +
                                   std::to_string(line.pLine) +
                                   " in set " + std::to_string(set));
            }
        }
    }

    // ----------------------------------------------------- stats algebra
    const CacheStats &s = cache.stats;
    if (s.demandAccesses !=
        s.demandHits + s.demandMisses + s.demandMshrMerged) {
        fail(name, "stats algebra broken: accesses " +
                       std::to_string(s.demandAccesses) +
                       " != hits + misses + merges");
    }
}

void
SimAuditor::checkMemBackend(const mem::MemBackend &backend) const
{
    // The backend owns its invariants (queue bounds, geometry
    // consistency); the hook returns "" while they hold.
    std::string violation = backend.auditViolation();
    if (!violation.empty())
        fail(backend.name(), violation);
}

void
SimAuditor::checkCore(const Core &core) const
{
    std::string name = "core" + std::to_string(core.coreId);
    if (core.rob.size() > core.cfg.robSize)
        fail(name, "ROB occupancy " + std::to_string(core.rob.size()) +
                       " exceeds declared bound " +
                       std::to_string(core.cfg.robSize));
    if (core.fetchBuffer.size() > core.cfg.fetchBufferSize)
        fail(name, "fetch buffer occupancy " +
                       std::to_string(core.fetchBuffer.size()) +
                       " exceeds declared bound " +
                       std::to_string(core.cfg.fetchBufferSize));

    std::uint64_t last_id = 0;
    std::uint64_t pending_entries = 0;
    for (const auto &e : core.rob) {
        if (e.id <= last_id)
            fail(name, "ROB ids not strictly increasing");
        last_id = e.id;
        if (!e.done && e.pendingLoads == 0)
            fail(name, "ROB entry " + std::to_string(e.id) +
                           " incomplete with no pending loads");
        if (e.pendingLoads > 0) {
            ++pending_entries;
            if (!core.outstandingLoads.count(e.id))
                fail(name, "ROB entry " + std::to_string(e.id) +
                               " has pending loads but is missing from "
                               "the outstanding-load set");
        }
    }
    if (core.outstandingLoads.size() != pending_entries)
        fail(name, "outstanding-load set holds " +
                       std::to_string(core.outstandingLoads.size()) +
                       " ids but the ROB has " +
                       std::to_string(pending_entries) +
                       " load-pending entries (leaked id)");
}

void
SimAuditor::checkTlb(const Tlb &tlb, const TranslationUnit &tu,
                     const std::string &label) const
{
    for (unsigned set = 0; set < tlb.sets; ++set) {
        std::size_t base = static_cast<std::size_t>(set) * tlb.ways;
        for (unsigned w = 0; w < tlb.ways; ++w) {
            Addr vpage = tlb.entries[base + w].vpage;
            if (vpage == kNoAddr)
                continue;
            if (tlb.index(vpage) != set)
                fail(label, "page " + std::to_string(vpage) +
                                " cached in foreign set " +
                                std::to_string(set));
            for (unsigned w2 = w + 1; w2 < tlb.ways; ++w2) {
                if (tlb.entries[base + w2].vpage == vpage)
                    fail(label, "duplicate page " +
                                    std::to_string(vpage) + " in set " +
                                    std::to_string(set));
            }
            // Agree with the page table: the mapping must be stable and
            // inside the 40-bit physical page domain.
            Addr ppage = tu.pageTable().translatePage(vpage);
            if (ppage != tu.pageTable().translatePage(vpage))
                fail(label, "page table translation unstable for page " +
                                std::to_string(vpage));
            if (ppage >> 40 != 0)
                fail(label, "translation of page " +
                                std::to_string(vpage) +
                                " escapes the physical domain");
        }
    }
}

void
SimAuditor::checkTranslation(const TranslationUnit &tu) const
{
    checkTlb(tu.dtlb(), tu, "dTLB");
    checkTlb(tu.stlb(), tu, "STLB");
}

} // namespace berti::verify
