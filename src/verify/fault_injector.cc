#include "verify/fault_injector.hh"

#include "mem/request.hh"

namespace berti::verify
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg(config), rng(config.seed)
{}

TraceFault
FaultInjector::mutateTraceRecord(unsigned char *bytes, std::size_t len)
{
    if (cfg.traceTruncateRate > 0.0 && rng.nextBool(cfg.traceTruncateRate)) {
        ++counters.traceTruncations;
        return TraceFault::Truncated;
    }
    if (len > 0 && cfg.traceGarbageRate > 0.0 &&
        rng.nextBool(cfg.traceGarbageRate)) {
        for (std::size_t i = 0; i < len; ++i)
            bytes[i] = static_cast<unsigned char>(rng.nextBounded(256));
        ++counters.traceGarbageRecords;
        return TraceFault::Corrupted;
    }
    if (len > 0 && cfg.traceBitFlipRate > 0.0 &&
        rng.nextBool(cfg.traceBitFlipRate)) {
        std::uint64_t bit = rng.nextBounded(8 * len);
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        ++counters.traceBitFlips;
        return TraceFault::Corrupted;
    }
    return TraceFault::None;
}

Cycle
FaultInjector::extraDramLatency(const MemRequest &req)
{
    Cycle extra = 0;
    if (cfg.dramSpikeRate > 0.0 && rng.nextBool(cfg.dramSpikeRate)) {
        extra += cfg.dramSpikeCycles;
        ++counters.dramSpikes;
    }
    if (req.type == AccessType::Prefetch &&
        cfg.delayPrefetchFillRate > 0.0 &&
        rng.nextBool(cfg.delayPrefetchFillRate)) {
        extra += cfg.prefetchDelayCycles;
        ++counters.delayedPrefetchFills;
    }
    return extra;
}

bool
FaultInjector::loseDramRead()
{
    if (cfg.dramLoseReadRate > 0.0 && rng.nextBool(cfg.dramLoseReadRate)) {
        ++counters.dramLostReads;
        return true;
    }
    return false;
}

bool
FaultInjector::dropPrefetchFill()
{
    if (cfg.dropPrefetchFillRate > 0.0 &&
        rng.nextBool(cfg.dropPrefetchFillRate)) {
        ++counters.droppedPrefetchFills;
        return true;
    }
    return false;
}

} // namespace berti::verify
