/**
 * @file
 * Structural invariant checker. A SimAuditor attaches (read-only) to
 * every cache level, the DRAM controller, each core and each
 * translation unit, and re-validates the machine's structural
 * invariants at a configurable cycle interval:
 *
 *   - MSHR bookkeeping is leak-free: the in-use count matches the valid
 *     entries, and no entry is older than a leak threshold (a leaked
 *     entry would silently corrupt Berti's measured fill latency);
 *   - RQ / PQ / WQ occupancies stay within their declared bounds;
 *   - tag arrays never hold two copies of the same line, and every
 *     valid line maps to the set it sits in;
 *   - the cache-stats algebra holds (accesses = hits + misses + merges);
 *   - ROB / fetch-buffer occupancies respect the core configuration and
 *     the outstanding-load set matches the ROB's pending entries;
 *   - TLB sets hold no duplicate pages, every cached page sits in its
 *     home set, and each cached translation agrees with the page table.
 *
 * Checks are compiled in always (no NDEBUG dependence) and enabled via
 * MachineConfig::audit; AuditConfig::fromEnv() lets CI switch them on
 * for every existing test by exporting BERTI_VERIFY=1. A violation
 * throws SimError(ErrorKind::Invariant) with a diagnostic dump.
 */

#ifndef BERTI_VERIFY_AUDITOR_HH
#define BERTI_VERIFY_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "verify/sim_error.hh"

namespace berti
{
class Cache;
class Core;
class Tlb;
class TranslationUnit;

namespace mem
{
class MemBackend;
} // namespace mem
} // namespace berti

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::verify
{

struct AuditConfig
{
    bool enabled = false;
    Cycle interval = 4096;        //!< cycles between full checks
    Cycle mshrLeakCycles = 200000; //!< older MSHR entries count as leaked

    /**
     * Environment-driven default, so CI can audit every existing test
     * without touching them: BERTI_VERIFY=1 enables auditing, and
     * BERTI_VERIFY_INTERVAL overrides the check interval.
     */
    static AuditConfig fromEnv();

    /** The same knobs taken from an already-parsed options value. */
    static AuditConfig fromOptions(const sim::SimOptions &opt);
};

class SimAuditor
{
  public:
    SimAuditor(const AuditConfig &cfg, const Cycle *clock);

    // Registration (observation only; the auditor never mutates).
    void attach(const Cache *cache);
    /** Any memory backend: invariants come from its auditViolation()
     *  hook, so new backends are auditable without friend access. */
    void attach(const mem::MemBackend *backend);
    void attach(const Core *core);
    void attach(const TranslationUnit *tu);

    /** Run a full check when the interval has elapsed. */
    void tick();

    /** Run a full check immediately; throws SimError on violation. */
    void checkNow() const;

    /**
     * Cycle of the next interval check. Quiescence cycle-skip bound:
     * the auditor's clock-sensitive checks (MSHR-age leaks) must fire
     * at exactly the cycles they would without skipping.
     */
    Cycle nextCheckCycle() const { return lastCheck + cfg.interval; }

    std::uint64_t checksRun() const { return checks; }

  private:
    void checkCache(const Cache &cache) const;
    void checkMemBackend(const mem::MemBackend &backend) const;
    void checkCore(const Core &core) const;
    void checkTranslation(const TranslationUnit &tu) const;
    void checkTlb(const Tlb &tlb, const TranslationUnit &tu,
                  const std::string &label) const;

    [[noreturn]] void fail(const std::string &component,
                           const std::string &reason) const;

    AuditConfig cfg;
    const Cycle *clock;
    Cycle lastCheck = 0;
    mutable std::uint64_t checks = 0;

    std::vector<const Cache *> caches;
    std::vector<const mem::MemBackend *> backends;
    std::vector<const Core *> cores;
    std::vector<const TranslationUnit *> tus;
};

} // namespace berti::verify

#endif // BERTI_VERIFY_AUDITOR_HH
