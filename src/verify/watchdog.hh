/**
 * @file
 * Forward-progress watchdog. Machine::run() feeds it one observation
 * per core per cycle (retired-instruction count + ROB head identity);
 * when a core's ROB head has been stuck, and nothing has retired, for
 * longer than the configured threshold, the watchdog reports the core
 * as wedged. The machine then dumps a structured diagnostic (queue
 * occupancies, in-flight MSHRs with ages, prefetcher state) and throws
 * SimError(ErrorKind::Watchdog) instead of spinning until the hard
 * cycle bound: a deadlocked simulation fails loudly in bounded time.
 */

#ifndef BERTI_VERIFY_WATCHDOG_HH
#define BERTI_VERIFY_WATCHDOG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace berti::verify
{

struct WatchdogConfig
{
    bool enabled = true;

    /**
     * Cycles a ROB head may stay put with zero retirement before the
     * core counts as wedged. The deepest legitimate stall — a dependent
     * load chain serialised behind a DRAM-queue backlog — resolves in a
     * few thousand cycles on the Table II machine, so the default has
     * ample margin while still firing long before Machine::run()'s
     * hard cycle bound.
     */
    Cycle stallCycles = 100000;
};

class ProgressWatchdog
{
  public:
    ProgressWatchdog(const WatchdogConfig &cfg, const Cycle *clock);

    /** Forget all history and size the per-core trackers. */
    void reset(unsigned cores);

    /**
     * One per-cycle observation of a core. A core makes progress when
     * it retires an instruction or its ROB head changes. An ROB that
     * stays empty is NOT progress: a wedged front-end (a swallowed
     * instruction-fetch fill) drains the ROB and parks it empty, which
     * is precisely the hang this watchdog exists to catch.
     */
    void observe(unsigned core, std::uint64_t retired,
                 std::uint64_t rob_head_id);

    /** Index of the first wedged core, or -1 when all progress. */
    int stalledCore() const;

    /** Cycles since the given core last made progress. */
    Cycle stalledFor(unsigned core) const;

    /**
     * Earliest cycle at which any core could newly count as wedged if
     * nothing progresses. Quiescence cycle-skip bound: skipping past it
     * would delay (or even cycle-shift) a watchdog failure, changing
     * observable behavior. kNever when untracked or disabled.
     */
    Cycle nextDeadline() const;

    bool enabled() const { return cfg.enabled; }
    Cycle threshold() const { return cfg.stallCycles; }

  private:
    struct Track
    {
        std::uint64_t retired = 0;
        std::uint64_t headId = 0;
        Cycle lastProgress = 0;
    };

    WatchdogConfig cfg;
    const Cycle *clock;
    std::vector<Track> tracks;
};

} // namespace berti::verify

#endif // BERTI_VERIFY_WATCHDOG_HH
