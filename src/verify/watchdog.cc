#include "verify/watchdog.hh"

#include <algorithm>

namespace berti::verify
{

ProgressWatchdog::ProgressWatchdog(const WatchdogConfig &config,
                                   const Cycle *clock_ptr)
    : cfg(config), clock(clock_ptr)
{}

void
ProgressWatchdog::reset(unsigned cores)
{
    tracks.assign(cores, Track{});
    for (auto &t : tracks)
        t.lastProgress = *clock;
}

void
ProgressWatchdog::observe(unsigned core, std::uint64_t retired,
                          std::uint64_t rob_head_id)
{
    if (core >= tracks.size())
        return;
    Track &t = tracks[core];
    if (retired != t.retired || rob_head_id != t.headId) {
        t.retired = retired;
        t.headId = rob_head_id;
        t.lastProgress = *clock;
    }
}

int
ProgressWatchdog::stalledCore() const
{
    if (!cfg.enabled)
        return -1;
    for (std::size_t c = 0; c < tracks.size(); ++c) {
        if (*clock - tracks[c].lastProgress > cfg.stallCycles)
            return static_cast<int>(c);
    }
    return -1;
}

Cycle
ProgressWatchdog::stalledFor(unsigned core) const
{
    if (core >= tracks.size())
        return 0;
    return *clock - tracks[core].lastProgress;
}

Cycle
ProgressWatchdog::nextDeadline() const
{
    if (!cfg.enabled || tracks.empty())
        return kNever;
    Cycle oldest = kNever;
    for (const Track &t : tracks)
        oldest = std::min(oldest, t.lastProgress);
    // stalledCore fires when *clock - lastProgress > stallCycles, i.e.
    // first at lastProgress + stallCycles + 1.
    return oldest + cfg.stallCycles + 1;
}

} // namespace berti::verify
