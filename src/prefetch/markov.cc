#include "prefetch/markov.hh"

#include <sstream>

#include "sim/serialize.hh"

namespace berti
{

namespace
{

std::size_t
rowOf(int delta)
{
    return static_cast<std::size_t>(delta +
                                    static_cast<int>(kLinesPerPage) - 1);
}

} // namespace

MarkovPrefetcher::MarkovPrefetcher(const Config &config)
    : cfg(config), pages(cfg.pageEntries),
      rows(static_cast<std::size_t>(kDeltaRows) * cfg.successors)
{}

void
MarkovPrefetcher::train(int prev_delta, int next_delta)
{
    Transition *row = &rows[rowOf(prev_delta) * cfg.successors];

    Transition *slot = nullptr;
    Transition *weakest = &row[0];
    for (unsigned i = 0; i < cfg.successors; ++i) {
        if (row[i].delta == next_delta) {
            slot = &row[i];
            break;
        }
        if (row[i].count < weakest->count)
            weakest = &row[i];
    }
    if (!slot) {
        // Frequency replacement: evict the weakest only once it decays
        // to zero, so one noisy delta cannot flush a trained row.
        if (weakest->count > 0) {
            --weakest->count;
            return;
        }
        weakest->delta = next_delta;
        weakest->count = 1;
        return;
    }

    if (slot->count >= cfg.countMax) {
        // Pangloss ageing: halve the whole row, then bump. Relative
        // frequencies survive; stale history fades geometrically.
        for (unsigned i = 0; i < cfg.successors; ++i)
            row[i].count /= 2;
    }
    ++slot->count;
}

int
MarkovPrefetcher::predict(int delta) const
{
    const Transition *row = &rows[rowOf(delta) * cfg.successors];
    unsigned total = 0;
    for (unsigned i = 0; i < cfg.successors; ++i)
        total += row[i].count;
    if (total == 0)
        return 0;

    const Transition *best = nullptr;
    for (unsigned i = 0; i < cfg.successors; ++i) {
        if (row[i].delta == 0 || row[i].count == 0)
            continue;
        if (!best || row[i].count > best->count)
            best = &row[i];
    }
    if (!best || best->count * 16 < cfg.minShare16 * total)
        return 0;
    return best->delta;
}

void
MarkovPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;

    Addr page = line >> (kPageBits - kLineBits);
    unsigned offset =
        static_cast<unsigned>(line & (kLinesPerPage - 1));

    PageEntry &e = pages[static_cast<std::size_t>(
        (page ^ (page >> 9)) % cfg.pageEntries)];
    if (!e.valid || e.page != page) {
        e.valid = true;
        e.page = page;
        e.lastOffset = offset;
        e.lastDelta = 0;
        return;
    }

    int delta = static_cast<int>(offset) - static_cast<int>(e.lastOffset);
    if (delta == 0)
        return;
    if (e.lastDelta != 0)
        train(e.lastDelta, delta);
    e.lastOffset = offset;
    e.lastDelta = delta;

    // Prediction walk: chain the most likely next deltas, page-bounded.
    int cursor_off = static_cast<int>(offset);
    int cur_delta = delta;
    for (unsigned depth = 0; depth < cfg.chainDepth; ++depth) {
        int next = predict(cur_delta);
        if (next == 0)
            break;
        cursor_off += next;
        if (cursor_off < 0 ||
            cursor_off >= static_cast<int>(kLinesPerPage))
            break;
        Addr target = (page << (kPageBits - kLineBits)) +
                      static_cast<Addr>(cursor_off);
        port->issuePrefetch(target, FillLevel::L1);
        cur_delta = next;
    }
}

std::uint64_t
MarkovPrefetcher::storageBits() const
{
    // Page entry: 20-bit truncated page tag + 6-bit offset + 7-bit
    // delta + valid. Transition: 7-bit delta + count bits.
    std::uint64_t page_bits =
        static_cast<std::uint64_t>(cfg.pageEntries) * (20 + 6 + 7 + 1);
    unsigned count_bits = 1;
    while ((1u << count_bits) <= cfg.countMax)
        ++count_bits;
    std::uint64_t row_bits = static_cast<std::uint64_t>(kDeltaRows) *
                             cfg.successors * (7 + count_bits);
    return page_bits + row_bits;
}

std::string
MarkovPrefetcher::debugState() const
{
    std::size_t live_pages = 0;
    for (const PageEntry &e : pages)
        live_pages += e.valid ? 1 : 0;
    std::size_t live_rows = 0;
    for (std::size_t r = 0; r < kDeltaRows; ++r) {
        for (unsigned i = 0; i < cfg.successors; ++i) {
            if (rows[r * cfg.successors + i].count > 0) {
                ++live_rows;
                break;
            }
        }
    }
    std::ostringstream os;
    os << "markov: " << live_pages << "/" << pages.size() << " pages, "
       << live_rows << "/" << kDeltaRows << " delta rows trained";
    return os.str();
}

void
MarkovPrefetcher::saveState(sim::ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (const PageEntry &e : pages) {
        w.b(e.valid);
        w.u64(e.page);
        w.u32(e.lastOffset);
        w.i64(e.lastDelta);
    }
    w.u32(static_cast<std::uint32_t>(rows.size()));
    for (const Transition &t : rows) {
        w.i64(t.delta);
        w.u32(t.count);
    }
}

void
MarkovPrefetcher::loadState(sim::ByteReader &r)
{
    std::uint32_t np = r.u32();
    if (np != pages.size()) {
        r.fail("markov page table size " + std::to_string(np) +
               " does not match the live table's " +
               std::to_string(pages.size()));
    }
    for (PageEntry &e : pages) {
        e.valid = r.b();
        e.page = r.u64();
        e.lastOffset = r.u32();
        e.lastDelta = static_cast<int>(r.i64());
    }
    std::uint32_t nr = r.u32();
    if (nr != rows.size()) {
        r.fail("markov transition table size " + std::to_string(nr) +
               " does not match the live table's " +
               std::to_string(rows.size()));
    }
    for (Transition &t : rows) {
        t.delta = static_cast<int>(r.i64());
        t.count = r.u32();
    }
}

} // namespace berti
