/**
 * @file
 * Variable Length Delta Prefetching (Shevgoor et al., MICRO 2015): a
 * spatial L2 prefetcher keeping per-page delta histories and predicting
 * the next delta from multiple prediction tables of increasing history
 * length (longest matching history wins).
 */

#ifndef BERTI_PREFETCH_VLDP_HH
#define BERTI_PREFETCH_VLDP_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class VldpPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned pageEntries = 64;   //!< delta-history buffer entries
        unsigned tableEntries = 256; //!< per DPT
        unsigned degree = 4;
        unsigned confThreshold = 2;
    };

    VldpPrefetcher() : VldpPrefetcher(Config{}) {}
    explicit VldpPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "vldp"; }

  private:
    struct PageEntry
    {
        bool valid = false;
        bool touched = false;  //!< a first offset has been recorded
        Addr page = 0;
        unsigned lastOffset = 0;
        std::array<int, 3> deltas{};   //!< most recent first
        unsigned numDeltas = 0;
        std::uint64_t lruStamp = 0;
    };

    struct DptEntry
    {
        int prediction = 0;
        unsigned conf = 0;
    };

    PageEntry &pageEntry(Addr page);
    std::size_t dptIndex(const PageEntry &e, unsigned history) const;

    Config cfg;
    std::vector<PageEntry> pages;
    /** dpt[h] uses history length h+1. */
    std::array<std::vector<DptEntry>, 3> dpt;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_VLDP_HH
