#include "prefetch/ppf.hh"

namespace berti
{

SppPpfPrefetcher::SppPpfPrefetcher(const Config &spp_cfg,
                                   const PpfConfig &ppf_cfg)
    : SppPrefetcher(spp_cfg), pcfg(ppf_cfg),
      weights(static_cast<std::size_t>(kFeatures) * pcfg.tableEntries, 0),
      issued(pcfg.historyEntries), rejected(pcfg.historyEntries)
{}

std::array<std::uint16_t, SppPpfPrefetcher::kFeatures>
SppPpfPrefetcher::features(const SppCandidate &cand,
                           const AccessInfo &info) const
{
    auto hash = [this](std::uint64_t v) {
        v *= 0x9e3779b97f4a7c15ull;
        return static_cast<std::uint16_t>((v >> 48) %
                                          pcfg.tableEntries);
    };
    return {
        hash(cand.line),
        hash(cand.line & (kLinesPerPage - 1)),
        hash(cand.signature),
        hash(static_cast<std::uint64_t>(cand.delta + 4096)),
        hash(cand.depth),
        hash(static_cast<std::uint64_t>(cand.pathConfidence * 16) ^
             (info.ip << 8)),
    };
}

int
SppPpfPrefetcher::score(
    const std::array<std::uint16_t, kFeatures> &idx) const
{
    int s = 0;
    for (unsigned f = 0; f < kFeatures; ++f)
        s += weights[static_cast<std::size_t>(f) * pcfg.tableEntries +
                     idx[f]];
    return s;
}

void
SppPpfPrefetcher::train(const std::array<std::uint16_t, kFeatures> &idx,
                        bool up)
{
    for (unsigned f = 0; f < kFeatures; ++f) {
        std::int8_t &w =
            weights[static_cast<std::size_t>(f) * pcfg.tableEntries +
                    idx[f]];
        if (up && w < pcfg.weightMax)
            ++w;
        else if (!up && w > -pcfg.weightMax - 1)
            --w;
    }
}

void
SppPpfPrefetcher::remember(
    std::vector<HistoryEntry> &table, Addr line,
    const std::array<std::uint16_t, kFeatures> &idx)
{
    HistoryEntry &e = table[line % table.size()];
    e.valid = true;
    e.line = line;
    e.idx = idx;
}

SppPpfPrefetcher::HistoryEntry *
SppPpfPrefetcher::recall(std::vector<HistoryEntry> &table, Addr line)
{
    HistoryEntry &e = table[line % table.size()];
    return e.valid && e.line == line ? &e : nullptr;
}

void
SppPpfPrefetcher::emit(const SppCandidate &cand, const AccessInfo &info)
{
    auto idx = features(cand, info);
    int s = score(idx);
    if (s < pcfg.issueThreshold) {
        remember(rejected, cand.line, idx);
        return;
    }
    FillLevel level =
        s >= pcfg.fillL2Threshold ? FillLevel::L2 : FillLevel::LLC;
    if (port->issuePrefetch(cand.line, level))
        remember(issued, cand.line, idx);
}

void
SppPpfPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line != kNoAddr) {
        // A demand access to a rejected candidate: the filter was wrong
        // to reject. To an issued one: right to issue — trained on the
        // demand match itself (PPF's prefetch-table semantics), not on
        // the fill level the candidate happened to get, so LLC-only
        // fills still produce positive feedback.
        if (HistoryEntry *r = recall(rejected, line)) {
            train(r->idx, true);
            r->valid = false;
        }
        if (HistoryEntry *i = recall(issued, line)) {
            train(i->idx, true);
            i->valid = false;
        }
    }
    SppPrefetcher::onAccess(info);
}

void
SppPpfPrefetcher::onFill(const FillInfo &info)
{
    // An unused prefetched line evicted: the filter should have
    // rejected it.
    if (info.evictedUnusedPrefetch &&
        info.evictedPLine != kNoAddr) {
        if (HistoryEntry *i = recall(issued, info.evictedPLine)) {
            train(i->idx, false);
            i->valid = false;
        }
    }
    SppPrefetcher::onFill(info);
}

std::uint64_t
SppPpfPrefetcher::storageBits() const
{
    std::uint64_t ppf_bits =
        static_cast<std::uint64_t>(weights.size()) * 6 +
        static_cast<std::uint64_t>(issued.size() + rejected.size()) *
            (24 + kFeatures * 10);
    return SppPrefetcher::storageBits() + ppf_bits;
}

} // namespace berti
