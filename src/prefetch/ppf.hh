/**
 * @file
 * SPP-PPF: Perceptron-based Prefetch Filtering (Bhatia et al., ISCA
 * 2019) layered over SPP. Each SPP candidate is scored by a perceptron
 * over feature hashes (address, page offset, signature, delta, depth,
 * confidence); candidates below the reject threshold are dropped,
 * between thresholds they fill only the LLC. Issued and rejected
 * candidates are remembered so later demand (or the lack of it) trains
 * the weights.
 */

#ifndef BERTI_PREFETCH_PPF_HH
#define BERTI_PREFETCH_PPF_HH

#include <array>
#include <vector>

#include "prefetch/spp.hh"

namespace berti
{

class SppPpfPrefetcher : public SppPrefetcher
{
  public:
    struct PpfConfig
    {
        unsigned tableEntries = 1024;  //!< per feature weight table
        int weightMax = 31;
        int issueThreshold = -8;       //!< score >= : issue
        int fillL2Threshold = 8;       //!< score >= : fill into L2
        unsigned historyEntries = 1024;  //!< prefetch & reject tables
    };

    SppPpfPrefetcher() : SppPpfPrefetcher(Config{}, PpfConfig{}) {}
    SppPpfPrefetcher(const Config &spp_cfg, const PpfConfig &ppf_cfg);

    void onAccess(const AccessInfo &info) override;
    void onFill(const FillInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "spp-ppf"; }

  protected:
    void emit(const SppCandidate &cand, const AccessInfo &info) override;

  private:
    static constexpr unsigned kFeatures = 6;

    struct HistoryEntry
    {
        bool valid = false;
        Addr line = 0;
        std::array<std::uint16_t, kFeatures> idx{};
    };

    std::array<std::uint16_t, kFeatures>
    features(const SppCandidate &cand, const AccessInfo &info) const;

    int score(const std::array<std::uint16_t, kFeatures> &idx) const;
    void train(const std::array<std::uint16_t, kFeatures> &idx, bool up);

    void remember(std::vector<HistoryEntry> &table, Addr line,
                  const std::array<std::uint16_t, kFeatures> &idx);
    HistoryEntry *recall(std::vector<HistoryEntry> &table, Addr line);

    PpfConfig pcfg;
    std::vector<std::int8_t> weights;  //!< kFeatures * tableEntries
    std::vector<HistoryEntry> issued;  //!< prefetch table
    std::vector<HistoryEntry> rejected;  //!< reject table
};

} // namespace berti

#endif // BERTI_PREFETCH_PPF_HH
