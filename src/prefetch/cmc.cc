#include "prefetch/cmc.hh"

#include <sstream>

#include "sim/serialize.hh"

namespace berti
{

namespace
{

/** Set index: low line bits mixed with a page-granularity xor so
 *  strided aliasing does not pile one page onto one set. */
std::size_t
setOf(Addr line, unsigned sets)
{
    return static_cast<std::size_t>((line ^ (line >> 7)) & (sets - 1));
}

} // namespace

CmcPrefetcher::CmcPrefetcher(const Config &config)
    : cfg(config), table(static_cast<std::size_t>(cfg.sets) * cfg.ways)
{
    for (Entry &e : table)
        e.next.resize(cfg.successors);
}

CmcPrefetcher::Entry *
CmcPrefetcher::find(Addr trigger)
{
    std::size_t base = setOf(trigger, cfg.sets) * cfg.ways;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.trigger == trigger)
            return &e;
    }
    return nullptr;
}

CmcPrefetcher::Entry &
CmcPrefetcher::insert(Addr trigger)
{
    std::size_t base = setOf(trigger, cfg.sets) * cfg.ways;
    Entry *victim = &table[base];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->valid = true;
    victim->trigger = trigger;
    for (Successor &s : victim->next)
        s = Successor{};
    return *victim;
}

void
CmcPrefetcher::train(Addr prev, Addr cur)
{
    Entry *e = find(prev);
    if (!e)
        e = &insert(prev);
    e->lruStamp = ++stamp;

    // Recorded already: strengthen the match and age the others, so a
    // phase change dethrones a stale successor even when both sit at
    // the confidence cap. Otherwise replace the weakest slot
    // (decay-on-miss keeps a stale successor from squatting forever).
    Successor *match = nullptr;
    Successor *weakest = &e->next[0];
    for (Successor &s : e->next) {
        if (s.line == cur)
            match = &s;
        else if (s.conf < weakest->conf)
            weakest = &s;
    }
    if (match) {
        if (match->conf < cfg.confMax)
            ++match->conf;
        for (Successor &s : e->next) {
            if (&s != match && s.conf > 0)
                --s.conf;
        }
        return;
    }
    if (weakest->conf > 0) {
        --weakest->conf;
        return;
    }
    weakest->line = cur;
    weakest->conf = 1;
}

void
CmcPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;
    if (info.hit)
        return;  // temporal correlation is a miss-stream property

    if (lastMiss != kNoAddr && lastMiss != line)
        train(lastMiss, line);
    lastMiss = line;

    // Replay: follow the recorded chain, most-confident successor
    // first, re-keying each hop so A->B->C replays from a miss on A.
    Addr cursor = line;
    for (unsigned depth = 0; depth < cfg.chainDepth; ++depth) {
        Entry *e = find(cursor);
        if (!e)
            break;
        const Successor *best = nullptr;
        for (const Successor &s : e->next) {
            if (s.line == kNoAddr || s.conf < cfg.confThreshold)
                continue;
            if (!best || s.conf > best->conf)
                best = &s;
        }
        if (!best)
            break;
        port->issuePrefetch(best->line, FillLevel::L1);
        cursor = best->line;
    }
}

std::uint64_t
CmcPrefetcher::storageBits() const
{
    // Per entry: truncated 32-bit trigger tag, LRU (8), and per
    // successor a 32-bit compressed line plus the confidence bits.
    std::uint64_t per_succ = 32 + 2;
    std::uint64_t per_entry = 32 + 8 + cfg.successors * per_succ;
    return static_cast<std::uint64_t>(cfg.sets) * cfg.ways * per_entry +
           64;  // lastMiss register
}

std::string
CmcPrefetcher::debugState() const
{
    std::size_t live = 0;
    for (const Entry &e : table)
        live += e.valid ? 1 : 0;
    std::ostringstream os;
    os << "cmc: " << live << "/" << table.size() << " entries live";
    return os.str();
}

void
CmcPrefetcher::saveState(sim::ByteWriter &w) const
{
    w.u64(stamp);
    w.u64(lastMiss);
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const Entry &e : table) {
        w.b(e.valid);
        w.u64(e.trigger);
        w.u64(e.lruStamp);
        for (const Successor &s : e.next) {
            w.u64(s.line);
            w.u32(s.conf);
        }
    }
}

void
CmcPrefetcher::loadState(sim::ByteReader &r)
{
    stamp = r.u64();
    lastMiss = r.u64();
    std::uint32_t n = r.u32();
    if (n != table.size()) {
        r.fail("cmc table size " + std::to_string(n) +
               " does not match the live table's " +
               std::to_string(table.size()));
    }
    for (Entry &e : table) {
        e.valid = r.b();
        e.trigger = r.u64();
        e.lruStamp = r.u64();
        for (Successor &s : e.next) {
            s.line = r.u64();
            s.conf = r.u32();
        }
    }
}

} // namespace berti
