/**
 * @file
 * Multi-Lookahead Offset Prefetching (Shakerinava et al., DPC-3 third
 * place). Extends BOP by scoring every candidate offset at multiple
 * lookahead levels simultaneously over an access map, then issuing a
 * chain of prefetches — the best offset of each lookahead level — on
 * every access (the paper's configuration: 128-entry AMT, 500-access
 * update period, degree 16). Like BOP, its deltas are *global*.
 */

#ifndef BERTI_PREFETCH_MLOP_HH
#define BERTI_PREFETCH_MLOP_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class MlopPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        int maxOffset = 16;          //!< candidates in [-16, 16] \ {0}
        unsigned lookaheads = 16;    //!< lookahead levels == max degree
        unsigned updatePeriod = 500; //!< accesses per scoring round
        unsigned historyWindow = 2048;  //!< access-map span (accesses)
        double selectFraction = 0.20;   //!< min score / period to select
    };

    MlopPrefetcher() : MlopPrefetcher(Config{}) {}
    explicit MlopPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "mlop"; }

    /** Selected offset for a lookahead level (0 = none). For tests. */
    int offsetAt(unsigned lookahead) const;

  private:
    unsigned offsetSlot(int offset) const;

    Config cfg;
    std::vector<int> candidates;
    /** scores[slot * lookaheads + la] for the current round. */
    std::vector<unsigned> scores;
    /** Best offset per lookahead level from the previous round. */
    std::vector<int> selected;

    std::unordered_map<Addr, std::uint64_t> lastAccess;  //!< line -> idx
    std::deque<Addr> window;   //!< lines in insertion order for eviction
    std::uint64_t accessIndex = 0;
    unsigned sinceUpdate = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_MLOP_HH
