/**
 * @file
 * Next-line prefetcher: on every demand access, prefetch the following
 * cache line. The simplest useful baseline; also IPCP's fallback class.
 */

#ifndef BERTI_PREFETCH_NEXT_LINE_HH
#define BERTI_PREFETCH_NEXT_LINE_HH

#include "prefetch/prefetcher.hh"

namespace berti
{

class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1) : degree(degree) {}

    void
    onAccess(const AccessInfo &info) override
    {
        Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
        if (line == kNoAddr)
            return;
        for (unsigned k = 1; k <= degree; ++k)
            port->issuePrefetch(line + k, FillLevel::L1);
    }

    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "next-line"; }

    // Stateless (degree is configuration): checkpointable as a no-op.
    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &) const override {}
    void loadState(sim::ByteReader &) override {}

  private:
    unsigned degree;
};

} // namespace berti

#endif // BERTI_PREFETCH_NEXT_LINE_HH
