#include "prefetch/ip_stride.hh"

#include "sim/serialize.hh"

namespace berti
{

IpStridePrefetcher::IpStridePrefetcher(const Config &config)
    : cfg(config), table(cfg.entries)
{}

void
IpStridePrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;

    // Fully-associative lookup with LRU replacement.
    Entry *e = nullptr;
    Entry *victim = &table[0];
    for (auto &entry : table) {
        if (entry.valid && entry.ip == info.ip) {
            e = &entry;
            break;
        }
        if (!entry.valid || entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    if (!e) {
        e = victim;
        e->valid = true;
        e->ip = info.ip;
        e->lastLine = line;
        e->stride = 0;
        e->conf = 0;
        e->lruStamp = ++tick;
        return;
    }
    e->lruStamp = ++tick;

    int stride = static_cast<int>(static_cast<std::int64_t>(line) -
                                  static_cast<std::int64_t>(e->lastLine));
    if (stride == 0)
        return;  // same line: no stride information

    if (stride == e->stride) {
        if (e->conf < cfg.confMax)
            ++e->conf;
    } else {
        e->conf = e->conf > 0 ? e->conf - 1 : 0;
        if (e->conf == 0)
            e->stride = stride;
    }
    e->lastLine = line;

    if (e->conf >= cfg.confThreshold && e->stride != 0) {
        for (unsigned k = 1; k <= cfg.degree; ++k) {
            Addr target = static_cast<Addr>(
                static_cast<std::int64_t>(line) +
                static_cast<std::int64_t>(k) * e->stride);
            if (!cfg.crossPage &&
                (target >> (kPageBits - kLineBits)) !=
                    (line >> (kPageBits - kLineBits))) {
                break;
            }
            port->issuePrefetch(target, FillLevel::L1);
        }
    }
}

std::uint64_t
IpStridePrefetcher::storageBits() const
{
    // ip tag (16) + last line (24) + stride (13) + conf (2) + LRU (5).
    return static_cast<std::uint64_t>(cfg.entries) * (16 + 24 + 13 + 2 + 5);
}

void
IpStridePrefetcher::saveState(sim::ByteWriter &w) const
{
    w.u64(tick);
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const Entry &e : table) {
        w.b(e.valid);
        w.u64(e.ip);
        w.u64(e.lastLine);
        w.i64(e.stride);
        w.u32(e.conf);
        w.u64(e.lruStamp);
    }
}

void
IpStridePrefetcher::loadState(sim::ByteReader &r)
{
    tick = r.u64();
    std::uint32_t n = r.u32();
    if (n != table.size()) {
        r.fail("ip-stride table size " + std::to_string(n) +
               " does not match the live table's " +
               std::to_string(table.size()));
    }
    for (Entry &e : table) {
        e.valid = r.b();
        e.ip = r.u64();
        e.lastLine = r.u64();
        e.stride = static_cast<int>(r.i64());
        e.conf = r.u32();
        e.lruStamp = r.u64();
    }
}

} // namespace berti
