/**
 * @file
 * Prefetcher registry: the one place that maps stable spec names
 * ("berti", "ip-stride", "spp-ppf", …) to factories. Every consumer —
 * the experiment harness, benches, tests — resolves names here, so a
 * new prefetcher becomes available everywhere by adding one entry, and
 * an unknown name fails the same typed way everywhere
 * (verify::SimError(ErrorKind::Config), component "prefetch").
 *
 * decorate() composes wrappers over registered factories without the
 * call sites knowing the concrete types; the differential oracle's
 * TeePrefetcher wrap (oracle::teeFactory) is built on it.
 */

#ifndef BERTI_PREFETCH_REGISTRY_HH
#define BERTI_PREFETCH_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::prefetch
{

/** Same signature as harness PrefetcherFactory; null means "none". */
using Factory = std::function<std::unique_ptr<Prefetcher>()>;

/** Wrapper step for decorate(): consumes the inner, returns the outer. */
using Decorator =
    std::function<std::unique_ptr<Prefetcher>(std::unique_ptr<Prefetcher>)>;

/** Stable spec names in registration order, "none" first. */
const std::vector<std::string> &names();

/**
 * names() plus a fixed set of representative hybrid(...) specs, one per
 * selection policy. Suites that want "every spec the registry can
 * build" (metamorphic, differential, checkpoint batteries) iterate
 * this, so a newly registered prefetcher — or a new hybrid policy —
 * is covered with zero test edits. "none" stays first.
 */
std::vector<std::string> allSpecs();

/**
 * Whether a spec's prefetcher conventionally attaches at L2 (physical
 * addresses, e.g. spp, bingo, misb) rather than L1D. Hybrid specs
 * attach where their children do; the representative hybrids are
 * L1D-composed, so they report false.
 */
bool defaultLevelIsL2(const std::string &name);

/** True when make(name) would succeed (includes "none", "" and
 *  well-formed hybrid(...) specs). */
bool known(const std::string &name);

/**
 * Resolve a stable spec name to a factory. "none" (or an empty name)
 * returns a null factory, matching the harness convention that a null
 * PrefetcherFactory means no prefetcher at that level. Unknown names
 * throw verify::SimError(ErrorKind::Config, "prefetch", ...) listing
 * the valid names.
 */
Factory make(const std::string &name);

/**
 * Options-aware resolution: the registry is where per-prefetcher
 * tuning from SimOptions is applied. hybrid(...) specs pick up the
 * BERTI_HYBRID_* selector geometry from opt as their config baseline
 * (in-spec options still win); plain names are unaffected. Bench and
 * harness code should prefer this overload so knobs take effect
 * without call-site changes.
 */
Factory make(const std::string &name, const sim::SimOptions &opt);

/**
 * The name a spec should be recorded under (result-store keys, bench
 * labels): plain names map to themselves; hybrid specs map to their
 * canonical spelling with every effective config value that differs
 * from the compiled defaults folded in, so runs under different
 * BERTI_HYBRID_* geometry can never collide on one key.
 */
std::string canonicalName(const std::string &name,
                          const sim::SimOptions &opt);

/**
 * Wrap a factory: every prefetcher the returned factory builds is
 * passed through wrap. A null inner factory stays null (there is no
 * prefetcher to wrap at that level).
 */
Factory decorate(Factory inner, Decorator wrap);

} // namespace berti::prefetch

#endif // BERTI_PREFETCH_REGISTRY_HH
