/**
 * @file
 * Prefetcher registry: the one place that maps stable spec names
 * ("berti", "ip-stride", "spp-ppf", …) to factories. Every consumer —
 * the experiment harness, benches, tests — resolves names here, so a
 * new prefetcher becomes available everywhere by adding one entry, and
 * an unknown name fails the same typed way everywhere
 * (verify::SimError(ErrorKind::Config), component "prefetch").
 *
 * decorate() composes wrappers over registered factories without the
 * call sites knowing the concrete types; the differential oracle's
 * TeePrefetcher wrap (oracle::teeFactory) is built on it.
 */

#ifndef BERTI_PREFETCH_REGISTRY_HH
#define BERTI_PREFETCH_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::prefetch
{

/** Same signature as harness PrefetcherFactory; null means "none". */
using Factory = std::function<std::unique_ptr<Prefetcher>()>;

/** Wrapper step for decorate(): consumes the inner, returns the outer. */
using Decorator =
    std::function<std::unique_ptr<Prefetcher>(std::unique_ptr<Prefetcher>)>;

/** Stable spec names in registration order, "none" first. */
const std::vector<std::string> &names();

/** True when make(name) would succeed (includes "none" and ""). */
bool known(const std::string &name);

/**
 * Resolve a stable spec name to a factory. "none" (or an empty name)
 * returns a null factory, matching the harness convention that a null
 * PrefetcherFactory means no prefetcher at that level. Unknown names
 * throw verify::SimError(ErrorKind::Config, "prefetch", ...) listing
 * the valid names.
 */
Factory make(const std::string &name);

/**
 * Options-aware resolution: the registry is where per-prefetcher
 * tuning from SimOptions would be applied; today no knob reshapes a
 * prefetcher, so this forwards to make(name) after validation. Bench
 * and harness code should prefer this overload so future knobs take
 * effect without call-site changes.
 */
Factory make(const std::string &name, const sim::SimOptions &opt);

/**
 * Wrap a factory: every prefetcher the returned factory builds is
 * passed through wrap. A null inner factory stays null (there is no
 * prefetcher to wrap at that level).
 */
Factory decorate(Factory inner, Decorator wrap);

} // namespace berti::prefetch

#endif // BERTI_PREFETCH_REGISTRY_HH
