/**
 * @file
 * Prefetcher composition layer: HybridPrefetcher owns N child
 * prefetchers and arbitrates their issue streams through a pluggable
 * selection policy, under a shared issue-budget governor.
 *
 * Spec strings make composed prefetchers addressable everywhere a
 * plain registry name is:
 *
 *     hybrid(berti,cmc)                    union, budget-governed
 *     hybrid(berti,cmc;select=ip)          per-IP credit selector
 *     hybrid(berti,markov;select=duel)     set-dueling, 2 children
 *     hybrid(berti,hybrid(cmc,markov))     nesting (depth-capped)
 *
 * Grammar (strict, no whitespace):
 *     hybrid   := "hybrid(" spec ("," spec)+ (";" key "=" value)* ")"
 *     spec     := hybrid | <registered name>
 *     keys     := select (all|ip|duel) | degree | credits | credit-max
 *               | duel-sets | psel-bits
 * Malformed input throws verify::SimError(ErrorKind::Config) naming the
 * offending sub-spec; parsing never crashes (fuzzed in test_compose).
 *
 * Mechanics (all deterministic, bounded, checkpointable):
 *  - Every child observes every onAccess/onFill/tick, so each keeps
 *    training exactly as it would standalone; only *issue* is gated.
 *    Child issues are staged per hook call, deduplicated, filtered by
 *    the policy, capped by the budget and then forwarded round-robin.
 *  - Budget: at most `degree` forwards per hook call; degree 0 (the
 *    default) derives the cap from the greediest child's own proposal
 *    count in that call, so a hybrid never exerts more PQ pressure
 *    than its greediest child would alone.
 *  - select=ip: a direct-mapped credit table keyed by trigger IP.
 *    Useful prefetches (AccessInfo::firstHitOnPrefetch) raise the
 *    issuing child's credit; evicted-unused prefetches lower it; late
 *    fills lower it mildly. Suppressed children still train in a
 *    shadow table: a demand access to a line a suppressed child had
 *    proposed earns that child credit, so losers can win back an IP.
 *  - select=duel: classic set-dueling between exactly two children.
 *    Trigger-line buckets are split into child-0 leaders, child-1
 *    leaders and followers; leader-bucket feedback moves a saturating
 *    PSEL counter, follower buckets issue from the current winner.
 */

#ifndef BERTI_PREFETCH_COMPOSE_HH
#define BERTI_PREFETCH_COMPOSE_HH

#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "prefetch/registry.hh"

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::prefetch
{

enum class HybridSelect : std::uint8_t
{
    All,   //!< union of all children, budget-governed
    Ip,    //!< per-trigger-IP credit selector
    Duel   //!< set-dueling between exactly two children
};

struct HybridConfig
{
    HybridSelect select = HybridSelect::All;
    /** Per-hook-call forward cap; 0 = greediest-child governor. */
    unsigned degree = 0;
    unsigned creditEntries = 256;  //!< per-IP credit table rows
    unsigned creditMax = 15;       //!< saturating credit ceiling
    unsigned duelSets = 64;        //!< leader buckets per child
    unsigned pselBits = 10;        //!< PSEL width (counter in [0, 2^b))
    /** Issue-attribution map entries (line -> issuing child). */
    unsigned attributionEntries = 1024;

    /** Selector geometry from the BERTI_HYBRID_* SimOptions knobs. */
    static HybridConfig fromOptions(const sim::SimOptions &opt);
};

/** Hard ceiling on children per hybrid (and kMaxDepth on nesting). */
constexpr std::size_t kMaxHybridChildren = 4;
constexpr unsigned kMaxHybridDepth = 4;
/** Trigger-line bucket count for set-dueling. */
constexpr unsigned kDuelBuckets = 1024;

/** True when the name uses the hybrid(...) spec syntax. */
bool isHybridSpec(const std::string &name);

/**
 * Parse + validate a hybrid spec string against the registry (child
 * names must be resolvable) and return its canonical spelling: child
 * order preserved, options listed in fixed order, and every effective
 * config value that differs from the compiled defaults spelled out —
 * so two specs simulate identically iff their canonical names are
 * equal, and result-store keys can never collide across different
 * BERTI_HYBRID_* geometry. Throws verify::SimError(ErrorKind::Config)
 * naming the malformed sub-spec.
 */
std::string canonicalHybridSpec(const std::string &spec,
                                const HybridConfig &base);

/**
 * Build a factory for a hybrid spec. The factory captures the parsed
 * tree, so each call constructs a fresh, independent hybrid (children
 * built through the registry). Throws the same typed errors as
 * canonicalHybridSpec on a malformed spec.
 */
Factory makeHybridFactory(const std::string &spec,
                          const HybridConfig &base);

class HybridPrefetcher : public Prefetcher
{
  public:
    /** Arbitration counters, exported via registerMetrics. */
    struct Stats
    {
        std::uint64_t proposals = 0;      //!< child issue attempts
        std::uint64_t forwarded = 0;      //!< reached the real port
        std::uint64_t suppressed = 0;     //!< policy-filtered
        std::uint64_t deduplicated = 0;   //!< same line, same call
        std::uint64_t budgetDropped = 0;  //!< over the per-call cap
        std::uint64_t usefulFeedback = 0;
        std::uint64_t uselessFeedback = 0;
        std::uint64_t lateFeedback = 0;
        std::uint64_t shadowHits = 0;     //!< suppressed-child credit
    };

    HybridPrefetcher(std::string canonical_name, const HybridConfig &cfg,
                     std::vector<std::unique_ptr<Prefetcher>> children);
    ~HybridPrefetcher() override;

    void onAccess(const AccessInfo &info) override;
    void onFill(const FillInfo &info) override;
    void tick() override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return canonical; }
    std::string debugState() const override;
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) override;

    bool checkpointSupported() const override;
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

    // ------------------------------------------------- introspection
    const HybridConfig &config() const { return cfg; }
    std::size_t childCount() const { return children.size(); }
    Prefetcher &child(std::size_t i) { return *children[i]; }
    const Stats &hybridStats() const { return stats; }
    /** Current PSEL winner (duel policy): 0 or 1. */
    unsigned duelWinner() const;
    /** Raw PSEL counter value (duel policy). */
    unsigned pselValue() const { return psel; }
    /** Credit-table winner for one trigger IP (ip policy); returns
     *  children.size() when the IP is untracked / tied at zero (union
     *  forwarding applies). */
    std::size_t selectedChildFor(Addr ip) const;

  private:
    /** Leader/follower role of a trigger-line bucket (duel policy). */
    enum class DuelRole : std::uint8_t
    {
        Leader0,
        Leader1,
        Follower
    };

    struct Proposal
    {
        Addr line = kNoAddr;
        FillLevel level = FillLevel::L1;
        unsigned child = 0;
    };

    /** Issue attribution, direct-mapped by hash of the issued line. */
    struct IssueEntry
    {
        bool valid = false;
        Addr line = kNoAddr;   //!< as issued (virtual at L1D)
        Addr ip = 0;           //!< trigger IP at issue time
        std::uint8_t child = 0;
        std::uint8_t role = 0; //!< DuelRole at issue time
    };

    /** Per-IP credit row, direct-mapped by hash of the IP. */
    struct CreditRow
    {
        bool valid = false;
        Addr ip = 0;
        std::uint8_t credit[kMaxHybridChildren] = {0, 0, 0, 0};
    };

    class ChildPort;

    DuelRole duelRoleOf(Addr trigger_line) const;
    void propose(unsigned child, Addr line, FillLevel level);
    void arbitrate(const AccessInfo &info);
    void creditAdjust(Addr ip, unsigned child, int delta);
    void pselAdjust(DuelRole role, unsigned child, bool toward);
    IssueEntry *lookupIssued(Addr line);
    IssueEntry *lookupPhysical(Addr p_line);

    std::string canonical;
    HybridConfig cfg;
    std::vector<std::unique_ptr<Prefetcher>> children;
    std::vector<std::unique_ptr<ChildPort>> ports;

    std::vector<Proposal> staged;       //!< per-hook-call scratch
    std::vector<CreditRow> credits;     //!< ip policy
    std::vector<IssueEntry> issued;     //!< keyed by issued (v)line
    std::vector<IssueEntry> issuedPhys; //!< keyed by filled pline
    std::vector<IssueEntry> shadow;     //!< suppressed proposals
    unsigned psel = 0;                  //!< duel policy, starts mid
    Stats stats;
};

} // namespace berti::prefetch

#endif // BERTI_PREFETCH_COMPOSE_HH
