/**
 * @file
 * Bingo spatial data prefetcher (Bakhshalipour et al., HPCA 2019): an L2
 * region-footprint prefetcher. While a 2 KB region is live, the lines it
 * touches accumulate in an accumulation table; on region retirement the
 * footprint is stored in a pattern history table reachable through both
 * a long event (PC+offset) and a short event (PC). A region's first
 * access replays the best-matching footprint (long event preferred).
 */

#ifndef BERTI_PREFETCH_BINGO_HH
#define BERTI_PREFETCH_BINGO_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class BingoPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned regionLines = 32;    //!< 2 KB regions
        unsigned filterEntries = 64;  //!< accumulation-table regions
        unsigned phtEntries = 4096;
        unsigned maxRegionAge = 4096; //!< accesses before retirement
    };

    BingoPrefetcher() : BingoPrefetcher(Config{}) {}
    explicit BingoPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "bingo"; }

  private:
    struct LiveRegion
    {
        bool valid = false;
        Addr base = 0;              //!< region base line address
        Addr triggerIp = 0;
        unsigned triggerOffset = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lastTouch = 0;
        std::uint64_t lruStamp = 0;
    };

    struct PhtEntry
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t footprint = 0;
    };

    Addr regionBaseOf(Addr line) const;
    std::uint64_t longKey(Addr ip, unsigned offset) const;
    std::uint64_t shortKey(Addr ip) const;
    void retire(LiveRegion &region);
    const PhtEntry *lookupPht(std::uint64_t key) const;
    void storePht(std::uint64_t key, std::uint64_t footprint);

    Config cfg;
    std::vector<LiveRegion> live;
    std::vector<PhtEntry> pht;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_BINGO_HH
