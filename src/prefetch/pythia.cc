#include "prefetch/pythia.hh"

#include <algorithm>

namespace berti
{

PythiaPrefetcher::PythiaPrefetcher(const Config &config)
    : cfg(config), rng(0x9717A),
      q(static_cast<std::size_t>(cfg.stateBuckets) * cfg.actions.size(),
        0.0),
      pending(cfg.evalQueue)
{}

std::uint32_t
PythiaPrefetcher::stateOf(Addr line, int last_delta) const
{
    // Feature vector: offset within page + last observed delta on the
    // page, hashed into the bucketed state space (Pythia hashes richer
    // feature combinations; these two carry most of the signal).
    std::uint64_t offset = line & (kLinesPerPage - 1);
    std::uint64_t h = offset * 131 +
                      static_cast<std::uint64_t>(last_delta + 64) * 8191;
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint32_t>(h >> 40) % cfg.stateBuckets;
}

double
PythiaPrefetcher::qValue(std::uint32_t state, unsigned action) const
{
    return q[static_cast<std::size_t>(state) * cfg.actions.size() +
             action];
}

unsigned
PythiaPrefetcher::selectAction(std::uint32_t state)
{
    if (rng.nextBool(cfg.epsilon))
        return static_cast<unsigned>(rng.nextBounded(cfg.actions.size()));
    unsigned best = 0;
    for (unsigned a = 1; a < cfg.actions.size(); ++a) {
        if (qValue(state, a) > qValue(state, best))
            best = a;
    }
    return best;
}

void
PythiaPrefetcher::update(std::uint32_t state, unsigned action,
                         double value)
{
    double &cell =
        q[static_cast<std::size_t>(state) * cfg.actions.size() + action];
    cell += cfg.alpha * (value - cell);
}

void
PythiaPrefetcher::reward(Addr line, double value)
{
    Pending &p = pending[line % pending.size()];
    if (!p.valid || p.line != line)
        return;
    update(p.state, p.action, value);
    p.valid = false;
}

void
PythiaPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    // Delayed reward: a demand access to a line we prefetched.
    if (info.firstHitOnPrefetch)
        reward(line, cfg.rewardUseful);

    Addr page = line >> (kPageBits - kLineBits);
    unsigned offset = static_cast<unsigned>(line & (kLinesPerPage - 1));
    int last_delta = 0;
    if (auto it = lastOffsetPerPage.find(page);
        it != lastOffsetPerPage.end()) {
        last_delta = static_cast<int>(offset) -
                     static_cast<int>(it->second);
    }
    lastOffsetPerPage[page] = offset;
    if (lastOffsetPerPage.size() > 4096) {
        lastOffsetPerPage.clear();  // bounded metadata
        lastDeltaPerPage.clear();
    }
    lastDeltaPerPage[page] = last_delta;

    std::uint32_t state = stateOf(line, last_delta);
    unsigned action = selectAction(state);

    // SARSA chaining: bootstrap the previous decision with the value of
    // the current one.
    if (havePrev) {
        double bootstrap = cfg.gamma * qValue(state, action);
        double &cell = q[static_cast<std::size_t>(prevState) *
                             cfg.actions.size() + prevAction];
        cell += cfg.alpha * 0.5 * (bootstrap - cell);
    }
    havePrev = true;
    prevState = state;
    prevAction = action;

    int off = cfg.actions[action];
    if (off == 0) {
        // "No prefetch" carries a small opportunity cost so the agent
        // keeps probing patterns that might be coverable.
        update(state, action, cfg.rewardNoPrefetch);
        return;
    }
    int target_offset = static_cast<int>(offset) + off;
    if (target_offset < 0 ||
        target_offset >= static_cast<int>(kLinesPerPage)) {
        return;  // page-bounded (physical addresses at L2)
    }
    Addr target = (page << (kPageBits - kLineBits)) +
                  static_cast<Addr>(target_offset);
    if (port->issuePrefetch(target, FillLevel::L2)) {
        Pending &p = pending[target % pending.size()];
        p.valid = true;
        p.line = target;
        p.state = state;
        p.action = action;
    }
}

void
PythiaPrefetcher::onFill(const FillInfo &info)
{
    if (info.evictedUnusedPrefetch && info.evictedPLine != kNoAddr)
        reward(info.evictedPLine, cfg.rewardUseless);
}

std::uint64_t
PythiaPrefetcher::storageBits() const
{
    // Q-table (8-bit quantised in hardware) + EQ entries + page state;
    // Pythia's published budget is ~25.5 KB.
    return static_cast<std::uint64_t>(q.size()) * 8 +
           pending.size() * (24 + 10 + 4) + 4096 * (6 + 7);
}

} // namespace berti
