/**
 * @file
 * MISB: Managed Irregular Stream Buffer (Wu et al., ISCA 2019) — a
 * storage-efficient temporal prefetcher built on ISB's structural
 * address space. Physical lines that are accessed consecutively receive
 * consecutive *structural* addresses; prediction then reduces to
 * next-line prefetching in structural space, translated back through
 * the reverse map. Metadata lives behind an on-chip metadata cache in
 * the real design; here the maps are bounded to the equivalent reach
 * and managed FIFO, with the storage model reporting the paper's 98 KB
 * on-chip budget (32 KB metadata cache + 17 KB Bloom filter + tables).
 */

#ifndef BERTI_PREFETCH_MISB_HH
#define BERTI_PREFETCH_MISB_HH

#include <deque>
#include <unordered_map>

#include "prefetch/prefetcher.hh"

namespace berti
{

class MisbPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned degree = 2;
        std::size_t maxMappings = 1u << 20;  //!< off-chip metadata reach
        unsigned streamGap = 256;  //!< new stream if no structural slot
    };

    MisbPrefetcher() : MisbPrefetcher(Config{}) {}
    explicit MisbPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "misb"; }

  private:
    void trim();

    Config cfg;
    std::unordered_map<Addr, Addr> physToStruct;
    std::unordered_map<Addr, Addr> structToPhys;
    std::deque<Addr> insertionOrder;  //!< FIFO over physical lines
    Addr lastStruct = kNoAddr;
    Addr nextStreamBase = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_MISB_HH
