/**
 * @file
 * Conventional IP-stride prefetcher: the baseline L1D prefetcher of the
 * paper's evaluation (24-entry fully-associative, Table II), modelled on
 * Intel's smart-memory-access stride prefetcher. An IP gains confidence
 * when consecutive accesses repeat the same line stride; confident IPs
 * prefetch a few strides ahead within the page.
 */

#ifndef BERTI_PREFETCH_IP_STRIDE_HH
#define BERTI_PREFETCH_IP_STRIDE_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class IpStridePrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned entries = 24;
        unsigned confThreshold = 2;  //!< strides to repeat before issuing
        unsigned confMax = 3;
        unsigned degree = 3;
        bool crossPage = false;      //!< conventional: stop at the page
    };

    IpStridePrefetcher() : IpStridePrefetcher(Config{}) {}
    explicit IpStridePrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "ip-stride"; }

    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        Addr ip = 0;
        Addr lastLine = 0;
        int stride = 0;
        unsigned conf = 0;
        std::uint64_t lruStamp = 0;
    };

    Config cfg;
    std::vector<Entry> table;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_IP_STRIDE_HH
