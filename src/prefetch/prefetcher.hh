/**
 * @file
 * Prefetcher framework: the hook interface a cache level invokes on
 * demand accesses / fills, and the issue port through which a prefetcher
 * injects requests. L1D prefetchers operate on virtual addresses (paper
 * section III); L2 prefetchers operate on physical addresses and are
 * page-bounded.
 */

#ifndef BERTI_PREFETCH_PREFETCHER_HH
#define BERTI_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace berti
{

namespace sim
{
class ByteWriter;
class ByteReader;
} // namespace sim

namespace obs
{
class MetricsRegistry;
} // namespace obs

/**
 * Services a prefetcher offers from its host cache: issuing requests and
 * observing time / MSHR pressure. Implemented by Cache.
 */
class PrefetchPort
{
  public:
    virtual ~PrefetchPort() = default;

    /**
     * Issue a prefetch for the given *line* address with a fill target.
     * At L1D the address is virtual and is translated through the STLB
     * (dropped on STLB miss, as in the paper). At L2/LLC it is physical.
     *
     * @return true if the request entered the prefetch queue.
     */
    virtual bool issuePrefetch(Addr line_addr, FillLevel level) = 0;

    /** Fraction of MSHR entries currently in use, in [0, 1]. */
    virtual double mshrOccupancy() const = 0;

    /** Current core-clock cycle. */
    virtual Cycle now() const = 0;
};

/**
 * Base class of every prefetcher. Hooks receive line addresses. A
 * prefetcher attached to L1D gets virtual line addresses in vLine; one
 * attached to L2 gets kNoAddr there and must use pLine.
 */
class Prefetcher
{
  public:
    /** Demand access outcome, reported at tag-lookup time. */
    struct AccessInfo
    {
        Addr vLine = kNoAddr;
        Addr pLine = kNoAddr;
        Addr ip = 0;
        AccessType type = AccessType::Load;
        bool hit = false;
        /** First demand hit on a line brought in by a prefetch. */
        bool firstHitOnPrefetch = false;
        /** Stored fetch latency of that prefetched line (0 = unknown). */
        Cycle prefetchLatency = 0;
    };

    /** Line-install event. */
    struct FillInfo
    {
        Addr vLine = kNoAddr;
        Addr pLine = kNoAddr;
        Addr ip = 0;            //!< first demand requester's IP (if any)
        bool byPrefetch = false;
        bool hadDemandWaiter = false;
        Cycle latency = 0;      //!< fill - MSHR/PQ timestamp
        Addr evictedPLine = kNoAddr;
        /** The victim was a prefetched line that was never demanded. */
        bool evictedUnusedPrefetch = false;
    };

    virtual ~Prefetcher() = default;

    /** Called once when attached to a cache. */
    void bind(PrefetchPort *p) { port = p; }

    virtual void onAccess(const AccessInfo &info) = 0;
    virtual void onFill(const FillInfo &) {}

    /**
     * Advance one cycle; most prefetchers are purely reactive.
     *
     * Contract: tick() must not rely on being called every cycle. The
     * host cache only drives it for prefetchers it cannot identify
     * statically (Cache::PfDispatch::Virtual), and the machine's
     * quiescence cycle-skip elides provably idle cycles entirely. A
     * design that needs per-cycle work must derive its timing from the
     * port clock (now()) inside its hooks, not from tick() counts.
     */
    virtual void tick() {}

    /** Hardware budget in bits, for the Table I / Figure 7 axes. */
    virtual std::uint64_t storageBits() const = 0;

    virtual std::string name() const = 0;

    /**
     * Register this prefetcher's metrics under the given prefix (e.g.
     * "c0.l1d.pf."). The base implementation registers the storage
     * budget as a gauge; implementations with interesting internal
     * state may add their own counters/histograms on top. Called once
     * by the host cache during Machine construction; the registry must
     * outlive the prefetcher (both belong to the same Machine).
     */
    virtual void registerMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix);

    /**
     * One-line internal-state summary for watchdog/auditor diagnostic
     * dumps (table occupancies, counters). Empty by default.
     */
    virtual std::string debugState() const { return {}; }

    /**
     * Whether this prefetcher implements the checkpoint hooks below.
     * Defaults to false: Machine::saveCheckpoint refuses (typed,
     * ErrorKind::Checkpoint) rather than silently dropping learned
     * state. Stateless designs return true with no-op hooks.
     */
    virtual bool checkpointSupported() const { return false; }

    /** Serialize internal state. Only called when checkpointSupported();
     *  the base implementation throws the typed refusal. */
    virtual void saveState(sim::ByteWriter &w) const;
    virtual void loadState(sim::ByteReader &r);

  protected:
    PrefetchPort *port = nullptr;
};

/**
 * Null prefetcher: never issues anything. Used by the no-prefetching
 * baselines and as the default for caches without a prefetcher.
 */
class NoPrefetcher : public Prefetcher
{
  public:
    void onAccess(const AccessInfo &) override {}
    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "none"; }

    // Stateless: checkpointable with empty hooks.
    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &) const override {}
    void loadState(sim::ByteReader &) override {}
};

} // namespace berti

#endif // BERTI_PREFETCH_PREFETCHER_HH
