/**
 * @file
 * Signature Path Prefetching (Kim et al., MICRO 2016): an L2 delta
 * prefetcher. A signature table tracks per-page compressed delta
 * histories; a pattern table maps signatures to candidate next deltas
 * with confidence counters; a lookahead walk multiplies path confidence
 * and keeps prefetching until it drops below a threshold. SPP-PPF wraps
 * this class with the perceptron filter (see ppf.hh).
 */

#ifndef BERTI_PREFETCH_SPP_HH
#define BERTI_PREFETCH_SPP_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

/**
 * Candidate produced by the SPP lookahead walk; exposed so that PPF can
 * filter candidates instead of issuing them directly.
 */
struct SppCandidate
{
    Addr line = 0;            //!< physical line to prefetch
    double pathConfidence = 0.0;
    std::uint16_t signature = 0;
    int delta = 0;
    unsigned depth = 0;       //!< lookahead depth (1 = first hop)
};

class SppPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned stEntries = 256;    //!< signature table
        unsigned ptEntries = 512;    //!< pattern table rows
        unsigned ptWays = 4;         //!< delta slots per row
        double fillThreshold = 0.90; //!< fill into L2 above this
        double prefetchThreshold = 0.25;  //!< keep walking above this
        unsigned maxDepth = 8;
    };

    SppPrefetcher() : SppPrefetcher(Config{}) {}
    explicit SppPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "spp"; }

  protected:
    /**
     * Issue hook: the base class sends candidates straight to the port;
     * PPF overrides this to apply the perceptron filter.
     */
    virtual void emit(const SppCandidate &cand, const AccessInfo &info);

    struct StEntry
    {
        bool valid = false;
        Addr page = 0;
        unsigned lastOffset = 0;
        bool touched = false;
        std::uint16_t signature = 0;
        std::uint64_t lruStamp = 0;
    };

    struct PtSlot
    {
        int delta = 0;
        unsigned cDelta = 0;
    };

    struct PtRow
    {
        std::vector<PtSlot> slots;
        unsigned cSig = 0;
    };

    static std::uint16_t advance(std::uint16_t sig, int delta);

    StEntry &stEntry(Addr page);
    PtRow &ptRow(std::uint16_t sig);

    Config cfg;
    std::vector<StEntry> st;
    std::vector<PtRow> pt;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_SPP_HH
