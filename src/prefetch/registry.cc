#include "prefetch/registry.hh"

#include <utility>

#include "core/berti.hh"
#include "prefetch/bingo.hh"
#include "prefetch/bop.hh"
#include "prefetch/cmc.hh"
#include "prefetch/compose.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/markov.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/misb.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/ppf.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp.hh"
#include "prefetch/stream.hh"
#include "prefetch/vldp.hh"
#include "verify/sim_error.hh"

namespace berti::prefetch
{

namespace
{

struct Entry
{
    const char *name;
    Factory factory;
    bool atL2 = false;  //!< conventional attach level (physical addrs)
};

const std::vector<Entry> &
entries()
{
    static const std::vector<Entry> table = {
        {"none", nullptr},
        {"ip-stride", [] { return std::make_unique<IpStridePrefetcher>(); }},
        {"next-line", [] { return std::make_unique<NextLinePrefetcher>(); }},
        {"bop", [] { return std::make_unique<BopPrefetcher>(); }},
        {"mlop", [] { return std::make_unique<MlopPrefetcher>(); }},
        {"ipcp", [] { return std::make_unique<IpcpPrefetcher>(); }},
        {"berti", [] { return std::make_unique<BertiPrefetcher>(); }},
        {"spp", [] { return std::make_unique<SppPrefetcher>(); }, true},
        {"spp-ppf", [] { return std::make_unique<SppPpfPrefetcher>(); },
         true},
        {"bingo", [] { return std::make_unique<BingoPrefetcher>(); }, true},
        {"vldp", [] { return std::make_unique<VldpPrefetcher>(); }, true},
        {"misb", [] { return std::make_unique<MisbPrefetcher>(); }, true},
        {"pythia", [] { return std::make_unique<PythiaPrefetcher>(); }},
        {"sms", [] { return std::make_unique<SmsPrefetcher>(); }},
        {"stream", [] { return std::make_unique<StreamPrefetcher>(); }},
        {"cmc", [] { return std::make_unique<CmcPrefetcher>(); }},
        {"markov", [] { return std::make_unique<MarkovPrefetcher>(); }},
    };
    return table;
}

const Entry *
find(const std::string &name)
{
    const std::string &key = name.empty() ? std::string("none") : name;
    for (const Entry &e : entries()) {
        if (key == e.name)
            return &e;
    }
    return nullptr;
}

} // namespace

const std::vector<std::string> &
names()
{
    static const std::vector<std::string> all = [] {
        std::vector<std::string> out;
        for (const Entry &e : entries())
            out.push_back(e.name);
        return out;
    }();
    return all;
}

std::vector<std::string>
allSpecs()
{
    std::vector<std::string> out = names();
    out.push_back("hybrid(berti,cmc)");
    out.push_back("hybrid(berti,markov;select=ip)");
    out.push_back("hybrid(ip-stride,stream;select=duel)");
    return out;
}

bool
defaultLevelIsL2(const std::string &name)
{
    const Entry *e = find(name);
    return e != nullptr && e->atL2;
}

bool
known(const std::string &name)
{
    if (isHybridSpec(name)) {
        try {
            canonicalHybridSpec(name, HybridConfig{});
            return true;
        } catch (const verify::SimError &) {
            return false;
        }
    }
    return find(name) != nullptr;
}

Factory
make(const std::string &name)
{
    if (isHybridSpec(name))
        return makeHybridFactory(name, HybridConfig{});
    if (const Entry *e = find(name))
        return e->factory;
    std::string valid;
    for (const std::string &n : names())
        valid += (valid.empty() ? "" : ", ") + n;
    throw verify::SimError(verify::ErrorKind::Config, "prefetch",
                           "unknown prefetcher: \"" + name +
                               "\" (valid: " + valid +
                               ", or a hybrid(a,b;select=...) spec)");
}

Factory
make(const std::string &name, const sim::SimOptions &opt)
{
    if (isHybridSpec(name))
        return makeHybridFactory(name, HybridConfig::fromOptions(opt));
    return make(name);
}

std::string
canonicalName(const std::string &name, const sim::SimOptions &opt)
{
    if (isHybridSpec(name))
        return canonicalHybridSpec(name, HybridConfig::fromOptions(opt));
    return name;
}

Factory
decorate(Factory inner, Decorator wrap)
{
    if (!inner)
        return nullptr;
    return [inner = std::move(inner), wrap = std::move(wrap)] {
        return wrap(inner());
    };
}

} // namespace berti::prefetch
