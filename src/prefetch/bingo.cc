#include "prefetch/bingo.hh"

namespace berti
{

BingoPrefetcher::BingoPrefetcher(const Config &config)
    : cfg(config), live(cfg.filterEntries), pht(cfg.phtEntries)
{}

Addr
BingoPrefetcher::regionBaseOf(Addr line) const
{
    return line - (line % cfg.regionLines);
}

std::uint64_t
BingoPrefetcher::longKey(Addr ip, unsigned offset) const
{
    return ((ip >> 2) * 0x9e3779b97f4a7c15ull) ^ (offset * 0x517cc1b7ull) ^
           1ull;
}

std::uint64_t
BingoPrefetcher::shortKey(Addr ip) const
{
    return (ip >> 2) * 0xc2b2ae3d27d4eb4full;
}

const BingoPrefetcher::PhtEntry *
BingoPrefetcher::lookupPht(std::uint64_t key) const
{
    const PhtEntry &e = pht[key % cfg.phtEntries];
    return e.valid && e.key == key ? &e : nullptr;
}

void
BingoPrefetcher::storePht(std::uint64_t key, std::uint64_t footprint)
{
    PhtEntry &e = pht[key % cfg.phtEntries];
    e.valid = true;
    e.key = key;
    e.footprint = footprint;
}

void
BingoPrefetcher::retire(LiveRegion &region)
{
    if (!region.valid)
        return;
    // Store under both events; the long event captures the precise
    // pattern, the short event generalises across offsets.
    storePht(longKey(region.triggerIp, region.triggerOffset),
             region.footprint);
    storePht(shortKey(region.triggerIp), region.footprint);
    region.valid = false;
}

void
BingoPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    Addr base = regionBaseOf(line);
    unsigned offset = static_cast<unsigned>(line - base);
    ++tick;

    // Find or open the live region.
    LiveRegion *region = nullptr;
    LiveRegion *victim = &live[0];
    for (auto &r : live) {
        if (r.valid && r.base == base) {
            region = &r;
            break;
        }
        if (!r.valid || r.lruStamp < victim->lruStamp)
            victim = &r;
    }

    if (!region) {
        // Region trigger: retire the victim's accumulated footprint,
        // then replay the best-matching stored pattern.
        retire(*victim);
        region = victim;
        region->valid = true;
        region->base = base;
        region->triggerIp = info.ip;
        region->triggerOffset = offset;
        region->footprint = 0;

        const PhtEntry *match = lookupPht(longKey(info.ip, offset));
        if (!match)
            match = lookupPht(shortKey(info.ip));
        if (match) {
            for (unsigned b = 0; b < cfg.regionLines; ++b) {
                if (b != offset && (match->footprint & (1ull << b)))
                    port->issuePrefetch(base + b, FillLevel::L2);
            }
        }
    }

    region->footprint |= 1ull << offset;
    region->lastTouch = tick;
    region->lruStamp = tick;
}

std::uint64_t
BingoPrefetcher::storageBits() const
{
    // Bingo is deliberately storage-hungry (~46 KB in the paper's
    // Table III configuration).
    std::uint64_t live_bits = static_cast<std::uint64_t>(
        cfg.filterEntries) * (34 + 16 + 5 + cfg.regionLines);
    std::uint64_t pht_bits = static_cast<std::uint64_t>(cfg.phtEntries) *
                             (16 + cfg.regionLines + 1 + 32);
    return live_bits + pht_bits;
}

} // namespace berti
