/**
 * @file
 * Spatial Memory Streaming (Somogyi et al., ISCA 2006), discussed in
 * the paper's related work as the archetypal spatial-footprint
 * prefetcher ("similar to Bingo", single trigger event, no timeliness
 * awareness). Regions accumulate a footprint while live; on retirement
 * the footprint is stored in a pattern table keyed by (PC, trigger
 * offset); a new region's first access replays the stored footprint.
 */

#ifndef BERTI_PREFETCH_SMS_HH
#define BERTI_PREFETCH_SMS_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class SmsPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned regionLines = 32;       //!< 2 KB spatial regions
        unsigned accumulators = 32;      //!< live-region filter entries
        unsigned patternEntries = 2048;  //!< PHT entries
    };

    SmsPrefetcher() : SmsPrefetcher(Config{}) {}
    explicit SmsPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "sms"; }

  private:
    struct Accumulator
    {
        bool valid = false;
        Addr base = 0;
        std::uint64_t key = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lruStamp = 0;
    };

    struct Pattern
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t footprint = 0;
    };

    std::uint64_t keyOf(Addr ip, unsigned offset) const;
    void retire(Accumulator &acc);

    Config cfg;
    std::vector<Accumulator> live;
    std::vector<Pattern> pht;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_SMS_HH
