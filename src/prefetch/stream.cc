#include "prefetch/stream.hh"

#include <cstdlib>

namespace berti
{

StreamPrefetcher::StreamPrefetcher(const Config &config)
    : cfg(config), table(cfg.streams)
{}

void
StreamPrefetcher::onAccess(const AccessInfo &info)
{
    if (info.hit)
        return;  // classic stream engines train on misses
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;
    ++tick;

    // Match the miss to an existing stream within the window.
    Stream *s = nullptr;
    Stream *victim = &table[0];
    for (auto &st : table) {
        if (st.valid) {
            std::int64_t d = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(st.last);
            if (d != 0 && std::llabs(d) <= cfg.window &&
                (d > 0) == st.up) {
                s = &st;
                break;
            }
        }
        if (!st.valid || st.lruStamp < victim->lruStamp)
            victim = &st;
    }

    if (!s) {
        // Try the opposite direction before allocating fresh.
        for (auto &st : table) {
            if (!st.valid)
                continue;
            std::int64_t d = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(st.last);
            if (d != 0 && std::llabs(d) <= cfg.window) {
                st.up = d > 0;
                st.confidence = 1;
                st.armed = false;
                s = &st;
                break;
            }
        }
    }
    if (!s) {
        *victim = Stream{};
        victim->valid = true;
        victim->last = line;
        victim->lruStamp = tick;
        return;
    }

    s->last = line;
    s->lruStamp = tick;
    if (++s->confidence >= cfg.trainHits)
        s->armed = true;

    if (s->armed) {
        for (unsigned k = 1; k <= cfg.depth; ++k) {
            Addr target = s->up ? line + k : line - k;
            port->issuePrefetch(target, FillLevel::L1);
        }
    }
}

std::uint64_t
StreamPrefetcher::storageBits() const
{
    // last line (24) + direction + armed + confidence (3) + LRU (6).
    return static_cast<std::uint64_t>(cfg.streams) * (24 + 1 + 1 + 3 + 6);
}

} // namespace berti
