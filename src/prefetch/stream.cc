#include "prefetch/stream.hh"

#include <cstdlib>

#include "sim/serialize.hh"

namespace berti
{

StreamPrefetcher::StreamPrefetcher(const Config &config)
    : cfg(config), table(cfg.streams)
{}

void
StreamPrefetcher::onAccess(const AccessInfo &info)
{
    if (info.hit)
        return;  // classic stream engines train on misses
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;
    ++tick;

    // Match the miss to an existing stream within the window.
    Stream *s = nullptr;
    Stream *victim = &table[0];
    for (auto &st : table) {
        if (st.valid) {
            std::int64_t d = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(st.last);
            if (d != 0 && std::llabs(d) <= cfg.window &&
                (d > 0) == st.up) {
                s = &st;
                break;
            }
        }
        if (!st.valid || st.lruStamp < victim->lruStamp)
            victim = &st;
    }

    if (!s) {
        // Try the opposite direction before allocating fresh.
        for (auto &st : table) {
            if (!st.valid)
                continue;
            std::int64_t d = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(st.last);
            if (d != 0 && std::llabs(d) <= cfg.window) {
                st.up = d > 0;
                st.confidence = 1;
                st.armed = false;
                s = &st;
                break;
            }
        }
    }
    if (!s) {
        *victim = Stream{};
        victim->valid = true;
        victim->last = line;
        victim->lruStamp = tick;
        return;
    }

    s->last = line;
    s->lruStamp = tick;
    if (++s->confidence >= cfg.trainHits)
        s->armed = true;

    if (s->armed) {
        for (unsigned k = 1; k <= cfg.depth; ++k) {
            Addr target = s->up ? line + k : line - k;
            port->issuePrefetch(target, FillLevel::L1);
        }
    }
}

std::uint64_t
StreamPrefetcher::storageBits() const
{
    // last line (24) + direction + armed + confidence (3) + LRU (6).
    return static_cast<std::uint64_t>(cfg.streams) * (24 + 1 + 1 + 3 + 6);
}

void
StreamPrefetcher::saveState(sim::ByteWriter &w) const
{
    w.u64(tick);
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const Stream &s : table) {
        w.b(s.valid);
        w.b(s.armed);
        w.b(s.up);
        w.u64(s.last);
        w.u32(s.confidence);
        w.u64(s.lruStamp);
    }
}

void
StreamPrefetcher::loadState(sim::ByteReader &r)
{
    tick = r.u64();
    std::uint32_t n = r.u32();
    if (n != table.size()) {
        r.fail("stream table size " + std::to_string(n) +
               " does not match the live table's " +
               std::to_string(table.size()));
    }
    for (Stream &s : table) {
        s.valid = r.b();
        s.armed = r.b();
        s.up = r.b();
        s.last = r.u64();
        s.confidence = r.u32();
        s.lruStamp = r.u64();
    }
}

} // namespace berti
