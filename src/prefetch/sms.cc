#include "prefetch/sms.hh"

namespace berti
{

SmsPrefetcher::SmsPrefetcher(const Config &config)
    : cfg(config), live(cfg.accumulators), pht(cfg.patternEntries)
{}

std::uint64_t
SmsPrefetcher::keyOf(Addr ip, unsigned offset) const
{
    return ((ip >> 2) * 0x9e3779b97f4a7c15ull) ^
           (static_cast<std::uint64_t>(offset) * 0x517cc1b727220a95ull);
}

void
SmsPrefetcher::retire(Accumulator &acc)
{
    if (!acc.valid)
        return;
    Pattern &p = pht[acc.key % cfg.patternEntries];
    p.valid = true;
    p.key = acc.key;
    p.footprint = acc.footprint;
    acc.valid = false;
}

void
SmsPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    Addr base = line - (line % cfg.regionLines);
    unsigned offset = static_cast<unsigned>(line - base);
    ++tick;

    Accumulator *acc = nullptr;
    Accumulator *victim = &live[0];
    for (auto &a : live) {
        if (a.valid && a.base == base) {
            acc = &a;
            break;
        }
        if (!a.valid || a.lruStamp < victim->lruStamp)
            victim = &a;
    }

    if (!acc) {
        retire(*victim);
        acc = victim;
        acc->valid = true;
        acc->base = base;
        acc->key = keyOf(info.ip, offset);
        acc->footprint = 0;

        const Pattern &p = pht[acc->key % cfg.patternEntries];
        if (p.valid && p.key == acc->key) {
            for (unsigned b = 0; b < cfg.regionLines; ++b) {
                if (b != offset && (p.footprint & (1ull << b)))
                    port->issuePrefetch(base + b, FillLevel::L2);
            }
        }
    }
    acc->footprint |= 1ull << offset;
    acc->lruStamp = tick;
}

std::uint64_t
SmsPrefetcher::storageBits() const
{
    std::uint64_t acc_bits = static_cast<std::uint64_t>(
        cfg.accumulators) * (34 + 16 + cfg.regionLines);
    std::uint64_t pht_bits = static_cast<std::uint64_t>(
        cfg.patternEntries) * (16 + cfg.regionLines + 1);
    return acc_bits + pht_bits;
}

} // namespace berti
