/**
 * @file
 * CMC-style temporal correlation prefetcher (after the ChampSim "cmc"
 * module; see also Triangel, PAPERS.md). Irregular workloads repeat
 * *miss sequences* rather than address arithmetic: the line that missed
 * after X last time tends to miss after X again. CMC records, for each
 * miss, its successor misses in a bounded set-associative correlation
 * table and replays the recorded chain when the trigger recurs.
 *
 * Unlike classic Markov prefetchers that key on full addresses with
 * unbounded metadata, every structure here is fixed-size, LRU-managed
 * and checkpointable, so the spec is a first-class citizen of the
 * registry (golden cells, checkpoint/resume, differential suites).
 */

#ifndef BERTI_PREFETCH_CMC_HH
#define BERTI_PREFETCH_CMC_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class CmcPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned sets = 256;       //!< correlation-table sets
        unsigned ways = 4;         //!< associativity (LRU)
        unsigned successors = 2;   //!< recorded successors per trigger
        unsigned chainDepth = 3;   //!< chain-following issue depth
        unsigned confThreshold = 1; //!< hits before a successor replays
        unsigned confMax = 3;
    };

    CmcPrefetcher() : CmcPrefetcher(Config{}) {}
    explicit CmcPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "cmc"; }
    std::string debugState() const override;

    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    struct Successor
    {
        Addr line = kNoAddr;
        unsigned conf = 0;
    };

    struct Entry
    {
        bool valid = false;
        Addr trigger = kNoAddr;
        std::vector<Successor> next;
        std::uint64_t lruStamp = 0;
    };

    Entry *find(Addr trigger);
    Entry &insert(Addr trigger);
    void train(Addr prev, Addr cur);

    Config cfg;
    std::vector<Entry> table;  //!< sets * ways, set-major
    Addr lastMiss = kNoAddr;
    std::uint64_t stamp = 0;   //!< LRU clock
};

} // namespace berti

#endif // BERTI_PREFETCH_CMC_HH
