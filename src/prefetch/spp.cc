#include "prefetch/spp.hh"

namespace berti
{

SppPrefetcher::SppPrefetcher(const Config &config)
    : cfg(config), st(cfg.stEntries), pt(cfg.ptEntries)
{
    for (auto &row : pt)
        row.slots.resize(cfg.ptWays);
}

std::uint16_t
SppPrefetcher::advance(std::uint16_t sig, int delta)
{
    // ChampSim SPP signature update: shift and xor the 7-bit signed
    // delta into a 12-bit signature.
    std::uint16_t d = static_cast<std::uint16_t>(delta & 0x7F);
    return static_cast<std::uint16_t>(((sig << 3) ^ d) & 0xFFF);
}

SppPrefetcher::StEntry &
SppPrefetcher::stEntry(Addr page)
{
    StEntry *victim = &st[0];
    for (auto &e : st) {
        if (e.valid && e.page == page) {
            e.lruStamp = ++tick;
            return e;
        }
        if (!e.valid || e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    *victim = StEntry{};
    victim->valid = true;
    victim->page = page;
    victim->lruStamp = ++tick;
    return *victim;
}

SppPrefetcher::PtRow &
SppPrefetcher::ptRow(std::uint16_t sig)
{
    return pt[sig % cfg.ptEntries];
}

void
SppPrefetcher::emit(const SppCandidate &cand, const AccessInfo &)
{
    FillLevel level = cand.pathConfidence >= cfg.fillThreshold
        ? FillLevel::L2 : FillLevel::LLC;
    port->issuePrefetch(cand.line, level);
}

void
SppPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    Addr page = line >> (kPageBits - kLineBits);
    unsigned offset = static_cast<unsigned>(line & (kLinesPerPage - 1));

    StEntry &e = stEntry(page);
    int delta = static_cast<int>(offset) - static_cast<int>(e.lastOffset);

    // ------------------------------------------------------ training
    if (e.touched && delta != 0) {
        PtRow &row = ptRow(e.signature);
        ++row.cSig;
        PtSlot *slot = nullptr;
        PtSlot *weakest = &row.slots[0];
        for (auto &s : row.slots) {
            if (s.cDelta > 0 && s.delta == delta) {
                slot = &s;
                break;
            }
            if (s.cDelta < weakest->cDelta)
                weakest = &s;
        }
        if (!slot) {
            slot = weakest;
            slot->delta = delta;
            slot->cDelta = 0;
        }
        ++slot->cDelta;
        if (row.cSig >= 256) {
            // Periodic halving keeps counters adaptive.
            row.cSig /= 2;
            for (auto &s : row.slots)
                s.cDelta /= 2;
        }
        e.signature = advance(e.signature, delta);
    }
    e.lastOffset = offset;
    e.touched = true;

    // ---------------------------------------------- lookahead predict
    std::uint16_t sig = e.signature;
    double path_conf = 1.0;
    int cursor = static_cast<int>(offset);
    for (unsigned depth = 1; depth <= cfg.maxDepth; ++depth) {
        PtRow &row = ptRow(sig);
        if (row.cSig == 0)
            break;
        const PtSlot *best = nullptr;
        for (const auto &s : row.slots) {
            if (s.cDelta > 0 && (!best || s.cDelta > best->cDelta))
                best = &s;
        }
        if (!best || best->delta == 0)
            break;
        path_conf *= static_cast<double>(best->cDelta) /
                     static_cast<double>(row.cSig);
        if (path_conf < cfg.prefetchThreshold)
            break;
        cursor += best->delta;
        if (cursor < 0 || cursor >= static_cast<int>(kLinesPerPage))
            break;  // physical page boundary

        SppCandidate cand;
        cand.line = (page << (kPageBits - kLineBits)) +
                    static_cast<Addr>(cursor);
        cand.pathConfidence = path_conf;
        cand.signature = sig;
        cand.delta = best->delta;
        cand.depth = depth;
        emit(cand, info);

        sig = advance(sig, best->delta);
    }
}

std::uint64_t
SppPrefetcher::storageBits() const
{
    std::uint64_t st_bits =
        static_cast<std::uint64_t>(cfg.stEntries) * (16 + 6 + 12 + 8);
    std::uint64_t pt_bits = static_cast<std::uint64_t>(cfg.ptEntries) *
                            (8 + cfg.ptWays * (7 + 8));
    return st_bits + pt_bits;
}

} // namespace berti
