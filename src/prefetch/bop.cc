#include "prefetch/bop.hh"

#include <algorithm>

namespace berti
{

BopPrefetcher::BopPrefetcher(const Config &config)
    : cfg(config), rrTable(cfg.rrEntries, kNoAddr)
{
    // Michaud's candidate list: offsets whose prime factorisation uses
    // only 2, 3 and 5, up to 256 (positive offsets).
    for (int o = 1; o <= 256; ++o) {
        int n = o;
        for (int f : {2, 3, 5}) {
            while (n % f == 0)
                n /= f;
        }
        if (n == 1)
            offsets.push_back(o);
    }
    scores.assign(offsets.size(), 0);
}

void
BopPrefetcher::score(Addr line)
{
    // Test one candidate per access, round-robin: does the RR table hold
    // line - candidate (i.e. would that offset have been timely)?
    int candidate = offsets[testIndex];
    Addr base = line - static_cast<Addr>(candidate);
    if (rrTable[base % cfg.rrEntries] == base) {
        if (++scores[testIndex] >= cfg.scoreMax) {
            // Learning phase ends immediately with this winner.
            best = candidate;
            active = true;
            std::fill(scores.begin(), scores.end(), 0);
            rounds = 0;
            testIndex = 0;
            return;
        }
    }
    if (++testIndex == offsets.size()) {
        testIndex = 0;
        if (++rounds >= cfg.roundMax) {
            auto it = std::max_element(scores.begin(), scores.end());
            int best_score = *it;
            best = offsets[static_cast<std::size_t>(
                it - scores.begin())];
            active = best_score > cfg.badScore;
            std::fill(scores.begin(), scores.end(), 0);
            rounds = 0;
        }
    }
}

void
BopPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;

    score(line);

    if (active) {
        for (unsigned k = 1; k <= cfg.degree; ++k) {
            port->issuePrefetch(line + static_cast<Addr>(k * best),
                                FillLevel::L1);
        }
    }
}

void
BopPrefetcher::onFill(const FillInfo &info)
{
    // Record the *base* of the completed fetch: the demand address for
    // demand fills, fill - current offset for prefetched fills (the
    // trigger address). A later access to base + d then proves offset d
    // both useful and timely.
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;
    Addr base = info.byPrefetch ? line - static_cast<Addr>(best) : line;
    rrTable[base % cfg.rrEntries] = base;
}

std::uint64_t
BopPrefetcher::storageBits() const
{
    // RR table of 24-bit line addresses + one score (6 bits) per
    // candidate + cursors.
    return static_cast<std::uint64_t>(cfg.rrEntries) * 24 +
           offsets.size() * 6 + 32;
}

} // namespace berti
