/**
 * @file
 * Instruction Pointer Classifier-based Prefetching (Pakalapati & Panda,
 * ISCA 2020; DPC-3 winner). Classifies each IP into constant stride
 * (CS), complex stride (CPLX) or global stream (GS) and runs a small
 * dedicated prefetcher per class, falling back to next-line. CS is
 * accurate; CPLX chains low-confidence delta signatures; GS streams
 * aggressively through dense regions — the source of the useless
 * prefetches the paper measures on GAP.
 */

#ifndef BERTI_PREFETCH_IPCP_HH
#define BERTI_PREFETCH_IPCP_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class IpcpPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned ipEntries = 128;     //!< direct-mapped IP table
        unsigned csptEntries = 128;   //!< CPLX signature table
        unsigned regionEntries = 32;  //!< GS region tracker
        unsigned csDegree = 3;
        unsigned cplxDegree = 3;
        unsigned gsDegree = 4;
        unsigned denseThreshold = 24; //!< lines touched to call a region
                                      //!< dense (of 64)
    };

    IpcpPrefetcher() : IpcpPrefetcher(Config{}) {}
    explicit IpcpPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "ipcp"; }

    /** Classification of an IP right now (for tests): CS/CPLX/GS/NL. */
    std::string classOf(Addr ip) const;

  private:
    struct IpEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr lastLine = 0;
        int lastStride = 0;
        unsigned conf = 0;       //!< CS confidence, 0..3
        std::uint16_t signature = 0;  //!< CPLX delta signature
        bool streamHint = false; //!< last access was in a dense region
    };

    struct CsptEntry
    {
        int delta = 0;
        unsigned conf = 0;  //!< 0..3
    };

    struct Region
    {
        bool valid = false;
        Addr page = 0;
        std::uint64_t touched = 0;  //!< line bitmap within the page
        unsigned count = 0;
        bool directionUp = true;
        Addr lastLine = 0;
        std::uint64_t lruStamp = 0;
    };

    IpEntry &ipEntry(Addr ip);
    Region *regionFor(Addr line, bool allocate);
    static std::uint16_t nextSignature(std::uint16_t sig, int delta);

    Config cfg;
    std::vector<IpEntry> ipTable;
    std::vector<CsptEntry> cspt;
    std::vector<Region> regions;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_IPCP_HH
