#include "prefetch/misb.hh"

namespace berti
{

MisbPrefetcher::MisbPrefetcher(const Config &config) : cfg(config)
{}

void
MisbPrefetcher::trim()
{
    while (physToStruct.size() > cfg.maxMappings &&
           !insertionOrder.empty()) {
        Addr phys = insertionOrder.front();
        insertionOrder.pop_front();
        auto it = physToStruct.find(phys);
        if (it != physToStruct.end()) {
            structToPhys.erase(it->second);
            physToStruct.erase(it);
        }
    }
}

void
MisbPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    // ------------------------------------------------------ training
    auto it = physToStruct.find(line);
    Addr s;
    if (it != physToStruct.end()) {
        s = it->second;
    } else {
        // Assign a structural address: the successor of the previous
        // access when that slot is free, otherwise open a new stream.
        Addr candidate =
            lastStruct != kNoAddr ? lastStruct + 1 : nextStreamBase;
        if (lastStruct == kNoAddr || structToPhys.count(candidate)) {
            candidate = nextStreamBase;
            nextStreamBase += cfg.streamGap;
        }
        s = candidate;
        physToStruct.emplace(line, s);
        structToPhys.emplace(s, line);
        insertionOrder.push_back(line);
        trim();
    }
    lastStruct = s;

    // ---------------------------------------------------- prediction
    // Next lines in structural space, translated back to physical.
    for (unsigned k = 1; k <= cfg.degree; ++k) {
        auto next = structToPhys.find(s + k);
        if (next == structToPhys.end())
            break;
        port->issuePrefetch(next->second, FillLevel::L2);
    }
}

std::uint64_t
MisbPrefetcher::storageBits() const
{
    // On-chip budget of the paper's section IV-H configuration: 98 KB
    // (32 KB metadata cache, 17 KB Bloom filter, stream/TLB-sync
    // structures); the full mappings live off-chip.
    return 98ull * 1024 * 8;
}

} // namespace berti
