#include "prefetch/vldp.hh"

#include <algorithm>

namespace berti
{

VldpPrefetcher::VldpPrefetcher(const Config &config)
    : cfg(config), pages(cfg.pageEntries)
{
    for (auto &t : dpt)
        t.assign(cfg.tableEntries, DptEntry{});
}

VldpPrefetcher::PageEntry &
VldpPrefetcher::pageEntry(Addr page)
{
    PageEntry *victim = &pages[0];
    for (auto &p : pages) {
        if (p.valid && p.page == page) {
            p.lruStamp = ++tick;
            return p;
        }
        if (!p.valid || p.lruStamp < victim->lruStamp)
            victim = &p;
    }
    *victim = PageEntry{};
    victim->valid = true;
    victim->page = page;
    victim->lruStamp = ++tick;
    return *victim;
}

std::size_t
VldpPrefetcher::dptIndex(const PageEntry &e, unsigned history) const
{
    std::uint64_t h = 0;
    for (unsigned i = 0; i <= history; ++i)
        h = h * 0x1F1F1F1Full + static_cast<std::uint64_t>(
                                    e.deltas[i] + 64);
    return h % cfg.tableEntries;
}

void
VldpPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.pLine != kNoAddr ? info.pLine : info.vLine;
    if (line == kNoAddr)
        return;

    Addr page = line >> (kPageBits - kLineBits);
    unsigned offset = static_cast<unsigned>(line & (kLinesPerPage - 1));

    PageEntry &e = pageEntry(page);
    int delta = static_cast<int>(offset) - static_cast<int>(e.lastOffset);

    if (e.touched && delta != 0) {
        // Train every table whose history is long enough, longest first
        // (a correct long-history table reinforces, wrong ones decay).
        for (unsigned h = 0; h < 3; ++h) {
            if (e.numDeltas <= h)
                break;
            DptEntry &d = dpt[h][dptIndex(e, h)];
            if (d.prediction == delta) {
                if (d.conf < 3)
                    ++d.conf;
            } else if (d.conf > 0) {
                --d.conf;
            } else {
                d.prediction = delta;
                d.conf = 1;
            }
        }
        // Shift the delta history (most recent first).
        e.deltas[2] = e.deltas[1];
        e.deltas[1] = e.deltas[0];
        e.deltas[0] = delta;
        if (e.numDeltas < 3)
            ++e.numDeltas;
    }
    e.lastOffset = offset;
    e.touched = true;

    // Predict with the longest matching history; chain up to degree.
    if (e.numDeltas == 0)
        return;
    unsigned cursor = offset;
    PageEntry walk = e;  // local copy to roll the history forward
    for (unsigned k = 0; k < cfg.degree; ++k) {
        int predicted = 0;
        for (int h = static_cast<int>(
                 std::min(walk.numDeltas, 3u)) - 1; h >= 0; --h) {
            const DptEntry &d =
                dpt[h][dptIndex(walk, static_cast<unsigned>(h))];
            if (d.conf >= cfg.confThreshold && d.prediction != 0) {
                predicted = d.prediction;
                break;
            }
        }
        if (predicted == 0)
            break;
        int next = static_cast<int>(cursor) + predicted;
        if (next < 0 || next >= static_cast<int>(kLinesPerPage))
            break;  // VLDP predictions stay within the page
        cursor = static_cast<unsigned>(next);
        port->issuePrefetch((page << (kPageBits - kLineBits)) + cursor,
                            FillLevel::L2);
        walk.deltas[2] = walk.deltas[1];
        walk.deltas[1] = walk.deltas[0];
        walk.deltas[0] = predicted;
        if (walk.numDeltas < 3)
            ++walk.numDeltas;
    }
}

std::uint64_t
VldpPrefetcher::storageBits() const
{
    std::uint64_t page_bits =
        static_cast<std::uint64_t>(cfg.pageEntries) *
        (36 + 6 + 3 * 7 + 2 + 6);
    std::uint64_t dpt_bits =
        3ull * cfg.tableEntries * (7 + 2);
    return page_bits + dpt_bits;
}

} // namespace berti
