#include "prefetch/prefetcher.hh"

// The framework is header-only today; this translation unit anchors the
// vtable of Prefetcher so every user does not re-emit it.

namespace berti
{
} // namespace berti
