#include "prefetch/prefetcher.hh"

#include "obs/metrics.hh"

namespace berti
{

void
Prefetcher::registerMetrics(obs::MetricsRegistry &registry,
                            const std::string &prefix)
{
    registry.gauge(prefix + "storage_bits", [this] {
        return static_cast<double>(storageBits());
    });
}

} // namespace berti
