#include "prefetch/prefetcher.hh"

#include "obs/metrics.hh"
#include "sim/serialize.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

[[noreturn]] void
rejectCheckpoint(const std::string &name)
{
    throw verify::SimError(
        verify::ErrorKind::Checkpoint, name,
        "prefetcher '" + name + "' does not support checkpointing — "
        "its learned state cannot be saved or restored");
}

} // namespace

void
Prefetcher::saveState(sim::ByteWriter &) const
{
    rejectCheckpoint(name());
}

void
Prefetcher::loadState(sim::ByteReader &)
{
    rejectCheckpoint(name());
}

void
Prefetcher::registerMetrics(obs::MetricsRegistry &registry,
                            const std::string &prefix)
{
    registry.gauge(prefix + "storage_bits", [this] {
        return static_cast<double>(storageBits());
    });
}

} // namespace berti
