/**
 * @file
 * Pangloss-style Markov-chain delta prefetcher (Papaphilippou et al.,
 * PAPERS.md). Instead of correlating full addresses (huge state) it
 * approximates a Markov chain over *page-local deltas*: a transition
 * table counts how often delta d' followed delta d anywhere in the
 * address stream, and a small page table remembers each hot page's last
 * offset and last delta. Prediction walks the chain — from the current
 * delta take the most frequent successor, issue, and continue from the
 * predicted delta — staying inside the page like the paper's data
 * prefetcher.
 *
 * Transition counts use saturating frequency counters with halving
 * decay (Pangloss's ageing) so the chain adapts to phase changes;
 * every structure is fixed-size and checkpointable.
 */

#ifndef BERTI_PREFETCH_MARKOV_HH
#define BERTI_PREFETCH_MARKOV_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class MarkovPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned pageEntries = 256;  //!< tracked pages (direct-mapped)
        unsigned successors = 4;     //!< candidate next-deltas per row
        unsigned chainDepth = 4;     //!< prediction-walk issue depth
        unsigned countMax = 15;      //!< saturate, then halve the row
        /** Minimum share of the row total a successor needs before it
         *  is trusted, in 1/16ths (Pangloss prunes rare transitions). */
        unsigned minShare16 = 4;
    };

    MarkovPrefetcher() : MarkovPrefetcher(Config{}) {}
    explicit MarkovPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "markov"; }
    std::string debugState() const override;

    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    /** Deltas live in (-kLinesPerPage, kLinesPerPage) \ {0}; rows are
     *  indexed by delta + kLinesPerPage - 1 (zero row unused). */
    static constexpr unsigned kDeltaRows = 2 * kLinesPerPage - 1;

    struct PageEntry
    {
        bool valid = false;
        Addr page = 0;
        unsigned lastOffset = 0;
        int lastDelta = 0;  //!< 0 = no delta observed yet
    };

    struct Transition
    {
        int delta = 0;      //!< 0 = empty slot
        unsigned count = 0;
    };

    void train(int prev_delta, int next_delta);
    int predict(int delta) const;

    Config cfg;
    std::vector<PageEntry> pages;
    std::vector<Transition> rows;  //!< kDeltaRows * successors, row-major
};

} // namespace berti

#endif // BERTI_PREFETCH_MARKOV_HH
