/**
 * @file
 * Pythia-lite: a reinforcement-learning prefetcher in the spirit of
 * Pythia (Bera et al., MICRO 2021), which the paper's related-work
 * section evaluates qualitatively: "with Berti at the L1D, we find
 * negligible performance improvement with Pythia (less than 1%)".
 *
 * This implementation keeps Pythia's essence at a fraction of its
 * complexity: a Q-table over compact program/memory state features
 * (page-offset bucket + last delta), an action set of candidate
 * prefetch offsets (including "no prefetch"), epsilon-greedy action
 * selection with SARSA-style updates, and delayed rewards wired to the
 * host cache's usefulness feedback (demand hit on a prefetched line =
 * positive, unused eviction = negative).
 */

#ifndef BERTI_PREFETCH_PYTHIA_HH
#define BERTI_PREFETCH_PYTHIA_HH

#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "sim/rng.hh"

namespace berti
{

class PythiaPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        std::vector<int> actions = {0, 1, 2, 3, 4, 6, 8, -1, -2, -4};
        unsigned stateBuckets = 1024;  //!< hashed state space
        double alpha = 0.15;           //!< learning rate
        double gamma = 0.6;            //!< discount for SARSA chaining
        double epsilon = 0.03;         //!< exploration rate
        double rewardUseful = 1.0;
        double rewardUseless = -2.0;
        double rewardNoPrefetch = -0.1;  //!< opportunity cost
        unsigned evalQueue = 256;      //!< in-flight (state,action) slots
    };

    PythiaPrefetcher() : PythiaPrefetcher(Config{}) {}
    explicit PythiaPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;
    void onFill(const FillInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "pythia"; }

    /** Q-value lookup for tests. */
    double qValue(std::uint32_t state, unsigned action) const;

  private:
    struct Pending
    {
        bool valid = false;
        Addr line = 0;           //!< prefetched line (reward key)
        std::uint32_t state = 0;
        unsigned action = 0;
    };

    std::uint32_t stateOf(Addr line, int last_delta) const;
    unsigned selectAction(std::uint32_t state);
    void reward(Addr line, double value);
    void update(std::uint32_t state, unsigned action, double value);

    Config cfg;
    Rng rng;
    std::vector<double> q;            //!< stateBuckets * actions
    std::vector<Pending> pending;     //!< direct-mapped by line
    std::unordered_map<Addr, int> lastDeltaPerPage;
    std::unordered_map<Addr, unsigned> lastOffsetPerPage;

    // SARSA chaining of the previous decision.
    bool havePrev = false;
    std::uint32_t prevState = 0;
    unsigned prevAction = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_PYTHIA_HH
