/**
 * @file
 * Classic stream prefetcher (Iacobovici et al. / commercial "stream"
 * engines cited in the paper's related work). Monitors miss regions:
 * two or three same-direction misses in a region train a stream, which
 * then runs a configurable depth ahead of the demand pointer.
 */

#ifndef BERTI_PREFETCH_STREAM_HH
#define BERTI_PREFETCH_STREAM_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class StreamPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned streams = 16;     //!< concurrently tracked streams
        unsigned trainHits = 2;    //!< same-direction misses to arm
        unsigned depth = 6;        //!< lines kept ahead of the demand
        unsigned window = 16;      //!< lines within which a miss matches
    };

    StreamPrefetcher() : StreamPrefetcher(Config{}) {}
    explicit StreamPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "stream"; }

    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    struct Stream
    {
        bool valid = false;
        bool armed = false;
        bool up = true;
        Addr last = 0;
        unsigned confidence = 0;
        std::uint64_t lruStamp = 0;
    };

    Config cfg;
    std::vector<Stream> table;
    std::uint64_t tick = 0;
};

} // namespace berti

#endif // BERTI_PREFETCH_STREAM_HH
