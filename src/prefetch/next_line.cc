#include "prefetch/next_line.hh"

// Header-only; anchors the vtable.

namespace berti
{
} // namespace berti
