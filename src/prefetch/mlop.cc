#include "prefetch/mlop.hh"

#include <algorithm>

namespace berti
{

MlopPrefetcher::MlopPrefetcher(const Config &config) : cfg(config)
{
    for (int o = -cfg.maxOffset; o <= cfg.maxOffset; ++o) {
        if (o != 0)
            candidates.push_back(o);
    }
    scores.assign(candidates.size() * cfg.lookaheads, 0);
    selected.assign(cfg.lookaheads, 0);
}

unsigned
MlopPrefetcher::offsetSlot(int offset) const
{
    // [-max..-1] -> [0..max-1], [1..max] -> [max..2max-1].
    return offset < 0
        ? static_cast<unsigned>(offset + cfg.maxOffset)
        : static_cast<unsigned>(offset + cfg.maxOffset - 1);
}

int
MlopPrefetcher::offsetAt(unsigned lookahead) const
{
    return lookahead < selected.size() ? selected[lookahead] : 0;
}

void
MlopPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;

    // ------------------------------------------------------- training
    // For each candidate offset d: if line - d was accessed t accesses
    // ago, offset d would have covered this access at any lookahead
    // level <= t. Increment those scores.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        int d = candidates[i];
        Addr base = static_cast<Addr>(
            static_cast<std::int64_t>(line) - d);
        auto it = lastAccess.find(base);
        if (it == lastAccess.end())
            continue;
        std::uint64_t distance = accessIndex - it->second;
        unsigned max_la = static_cast<unsigned>(
            std::min<std::uint64_t>(distance, cfg.lookaheads));
        for (unsigned la = 0; la < max_la; ++la)
            ++scores[i * cfg.lookaheads + la];
    }

    // Record this access in the map; expire entries out of the window.
    lastAccess[line] = accessIndex;
    window.push_back(line);
    ++accessIndex;
    while (window.size() > cfg.historyWindow) {
        Addr old = window.front();
        window.pop_front();
        auto it = lastAccess.find(old);
        if (it != lastAccess.end() &&
            it->second + cfg.historyWindow < accessIndex) {
            lastAccess.erase(it);
        }
    }

    // --------------------------------------------------- round close
    if (++sinceUpdate >= cfg.updatePeriod) {
        sinceUpdate = 0;
        unsigned min_score = static_cast<unsigned>(
            cfg.selectFraction * cfg.updatePeriod);
        for (unsigned la = 0; la < cfg.lookaheads; ++la) {
            unsigned best_score = 0;
            int best_offset = 0;
            for (std::size_t i = 0; i < candidates.size(); ++i) {
                unsigned s = scores[i * cfg.lookaheads + la];
                if (s > best_score) {
                    best_score = s;
                    best_offset = candidates[i];
                }
            }
            selected[la] = best_score >= min_score ? best_offset : 0;
        }
        std::fill(scores.begin(), scores.end(), 0);
    }

    // ------------------------------------------------------ prediction
    // Issue the selected offset of every lookahead level (MLOP issues
    // for the best delta of each lookahead regardless of confidence —
    // the low-accuracy behaviour the paper contrasts Berti against).
    for (unsigned la = 0; la < cfg.lookaheads; ++la) {
        if (selected[la] == 0)
            continue;
        Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(line) + selected[la]);
        port->issuePrefetch(target, FillLevel::L1);
    }
}

std::uint64_t
MlopPrefetcher::storageBits() const
{
    // Access-map table modelled as 128 zone entries of 64-bit maps plus
    // 16-bit indices, plus the score matrix (10-bit counters).
    std::uint64_t amt_bits = 128ull * (64 + 16 + 16);
    std::uint64_t score_bits =
        static_cast<std::uint64_t>(scores.size()) * 10;
    return amt_bits + score_bits + selected.size() * 8;
}

} // namespace berti
