#include "prefetch/ipcp.hh"

namespace berti
{

IpcpPrefetcher::IpcpPrefetcher(const Config &config)
    : cfg(config), ipTable(cfg.ipEntries), cspt(cfg.csptEntries),
      regions(cfg.regionEntries)
{}

IpcpPrefetcher::IpEntry &
IpcpPrefetcher::ipEntry(Addr ip)
{
    std::size_t idx = (ip >> 2) % cfg.ipEntries;
    IpEntry &e = ipTable[idx];
    std::uint16_t tag = static_cast<std::uint16_t>(
        (ip >> 2) / cfg.ipEntries & 0x3FF);
    if (!e.valid || e.tag != tag) {
        e = IpEntry{};
        e.valid = true;
        e.tag = tag;
    }
    return e;
}

IpcpPrefetcher::Region *
IpcpPrefetcher::regionFor(Addr line, bool allocate)
{
    Addr page = line >> (kPageBits - kLineBits);
    Region *victim = &regions[0];
    for (auto &r : regions) {
        if (r.valid && r.page == page)
            return &r;
        if (!r.valid || r.lruStamp < victim->lruStamp)
            victim = &r;
    }
    if (!allocate)
        return nullptr;
    *victim = Region{};
    victim->valid = true;
    victim->page = page;
    victim->lruStamp = ++tick;
    return victim;
}

std::uint16_t
IpcpPrefetcher::nextSignature(std::uint16_t sig, int delta)
{
    return static_cast<std::uint16_t>(
        ((sig << 3) ^ static_cast<std::uint16_t>(delta & 0x3F)) & 0xFFF);
}

void
IpcpPrefetcher::onAccess(const AccessInfo &info)
{
    Addr line = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (line == kNoAddr)
        return;

    // --------------------------------------------- GS region tracking
    Region *region = regionFor(line, true);
    region->lruStamp = ++tick;
    unsigned bit = line & (kLinesPerPage - 1);
    if (!(region->touched & (1ull << bit))) {
        region->touched |= 1ull << bit;
        ++region->count;
    }
    region->directionUp = line >= region->lastLine;
    region->lastLine = line;
    bool dense = region->count >= cfg.denseThreshold;

    IpEntry &e = ipEntry(info.ip);
    bool had_history = e.lastLine != 0;
    int stride = had_history
        ? static_cast<int>(static_cast<std::int64_t>(line) -
                           static_cast<std::int64_t>(e.lastLine))
        : 0;

    // ----------------------------------------------------- training
    if (had_history && stride != 0) {
        if (stride == e.lastStride) {
            if (e.conf < 3)
                ++e.conf;
        } else {
            e.conf = e.conf > 0 ? e.conf - 1 : 0;
        }
        // CPLX: train the signature table with the observed delta.
        CsptEntry &c = cspt[e.signature % cfg.csptEntries];
        if (c.delta == stride) {
            if (c.conf < 3)
                ++c.conf;
        } else if (c.conf > 0) {
            --c.conf;
        } else {
            c.delta = stride;
            c.conf = 1;
        }
        e.signature = nextSignature(e.signature, stride);
    }
    e.streamHint = dense;

    // ---------------------------------------------------- prediction
    if (dense) {
        // GS class: stream through the region, aggressively.
        for (unsigned k = 1; k <= cfg.gsDegree; ++k) {
            Addr target = region->directionUp ? line + k : line - k;
            port->issuePrefetch(target, FillLevel::L1);
        }
    } else if (e.conf >= 2 && e.lastStride != 0 && stride == e.lastStride) {
        // CS class: confident constant stride.
        FillLevel level = e.conf == 3 ? FillLevel::L1 : FillLevel::L2;
        for (unsigned k = 1; k <= cfg.csDegree; ++k) {
            Addr target = static_cast<Addr>(
                static_cast<std::int64_t>(line) +
                static_cast<std::int64_t>(k) * e.lastStride);
            if ((target >> (kPageBits - kLineBits)) !=
                (line >> (kPageBits - kLineBits))) {
                break;
            }
            port->issuePrefetch(target, level);
        }
    } else if (had_history && stride != 0) {
        // CPLX class: walk the signature chain while confident.
        std::uint16_t sig = e.signature;
        Addr cursor = line;
        for (unsigned k = 0; k < cfg.cplxDegree; ++k) {
            const CsptEntry &c = cspt[sig % cfg.csptEntries];
            if (c.conf < 2 || c.delta == 0)
                break;
            cursor = static_cast<Addr>(
                static_cast<std::int64_t>(cursor) + c.delta);
            if ((cursor >> (kPageBits - kLineBits)) !=
                (line >> (kPageBits - kLineBits))) {
                break;
            }
            port->issuePrefetch(cursor, FillLevel::L2);
            sig = nextSignature(sig, c.delta);
        }
    } else if (!info.hit && !had_history) {
        // NL fallback for unclassified IPs.
        port->issuePrefetch(line + 1, FillLevel::L2);
    }

    if (had_history && stride != 0)
        e.lastStride = stride;
    e.lastLine = line;
}

std::uint64_t
IpcpPrefetcher::storageBits() const
{
    // IP table entry: tag 10 + line 24 + stride 7 + conf 2 + sig 12 + 1.
    std::uint64_t ip_bits =
        static_cast<std::uint64_t>(cfg.ipEntries) * (10 + 24 + 7 + 2 + 12 + 1);
    std::uint64_t cspt_bits =
        static_cast<std::uint64_t>(cfg.csptEntries) * (7 + 2);
    std::uint64_t region_bits =
        static_cast<std::uint64_t>(cfg.regionEntries) * (28 + 64 + 6 + 1 + 24);
    return ip_bits + cspt_bits + region_bits;
}

std::string
IpcpPrefetcher::classOf(Addr ip) const
{
    const IpEntry &e = ipTable[(ip >> 2) % cfg.ipEntries];
    std::uint16_t tag = static_cast<std::uint16_t>(
        (ip >> 2) / cfg.ipEntries & 0x3FF);
    if (!e.valid || e.tag != tag)
        return "NL";
    if (e.streamHint)
        return "GS";
    if (e.conf >= 2 && e.lastStride != 0)
        return "CS";
    if (e.signature != 0)
        return "CPLX";
    return "NL";
}

} // namespace berti
