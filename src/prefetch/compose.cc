#include "prefetch/compose.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.hh"
#include "sim/options.hh"
#include "sim/serialize.hh"
#include "verify/sim_error.hh"

namespace berti::prefetch
{

namespace
{

[[noreturn]] void
failSpec(const std::string &spec, const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "prefetch",
                           "malformed hybrid spec \"" + spec +
                               "\": " + reason);
}

std::size_t
hashLine(Addr line)
{
    return static_cast<std::size_t>(line ^ (line >> 11) ^ (line >> 23));
}

std::size_t
hashIp(Addr ip)
{
    return static_cast<std::size_t>(ip ^ (ip >> 13) ^ (ip >> 29));
}

void
validateConfig(const std::string &spec, const HybridConfig &cfg,
               std::size_t child_count)
{
    if (cfg.degree > 64)
        failSpec(spec, "degree must be <= 64");
    if (cfg.creditEntries == 0 || cfg.creditEntries > 65536)
        failSpec(spec, "credits must be in [1, 65536]");
    if (cfg.creditMax == 0 || cfg.creditMax > 255)
        failSpec(spec, "credit-max must be in [1, 255]");
    if (cfg.duelSets == 0 || cfg.duelSets > kDuelBuckets / 2)
        failSpec(spec, "duel-sets must be in [1, " +
                           std::to_string(kDuelBuckets / 2) + "]");
    if (cfg.pselBits == 0 || cfg.pselBits > 20)
        failSpec(spec, "psel-bits must be in [1, 20]");
    if (cfg.select == HybridSelect::Duel && child_count != 2) {
        failSpec(spec, "select=duel needs exactly 2 children, got " +
                           std::to_string(child_count));
    }
}

/** One parsed hybrid(...) node: canonical child spellings + config. */
struct HybridNode
{
    std::vector<std::string> children;
    HybridConfig cfg;
    std::string canonical;
};

/** Canonical option suffix: every field that differs from the compiled
 *  defaults, in fixed order, so spec strings that simulate differently
 *  never canonicalize to the same name. */
std::string
canonicalOpts(const HybridConfig &cfg)
{
    const HybridConfig def;
    std::string out;
    if (cfg.select == HybridSelect::Ip)
        out += ";select=ip";
    else if (cfg.select == HybridSelect::Duel)
        out += ";select=duel";
    if (cfg.degree != def.degree)
        out += ";degree=" + std::to_string(cfg.degree);
    if (cfg.creditEntries != def.creditEntries)
        out += ";credits=" + std::to_string(cfg.creditEntries);
    if (cfg.creditMax != def.creditMax)
        out += ";credit-max=" + std::to_string(cfg.creditMax);
    if (cfg.duelSets != def.duelSets)
        out += ";duel-sets=" + std::to_string(cfg.duelSets);
    if (cfg.pselBits != def.pselBits)
        out += ";psel-bits=" + std::to_string(cfg.pselBits);
    return out;
}

bool
plainNameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/** Recursive-descent parse of spec[pos..]; pos is left one past the
 *  closing ')'. `spec` is the full string, for error context. */
HybridNode
parseHybrid(const std::string &spec, std::size_t &pos,
            const HybridConfig &base, unsigned depth)
{
    if (depth > kMaxHybridDepth) {
        failSpec(spec, "nesting deeper than " +
                           std::to_string(kMaxHybridDepth) + " levels");
    }
    constexpr const char *kPrefix = "hybrid(";
    if (spec.compare(pos, 7, kPrefix) != 0)
        failSpec(spec, "expected \"hybrid(\" at offset " +
                           std::to_string(pos));
    pos += 7;

    HybridNode node;
    node.cfg = base;

    // Children: name | nested hybrid, comma-separated, >= 2 of them.
    while (true) {
        if (pos >= spec.size())
            failSpec(spec, "unterminated child list (missing ')')");
        if (spec.compare(pos, 7, kPrefix) == 0) {
            HybridNode sub = parseHybrid(spec, pos, base, depth + 1);
            node.children.push_back(sub.canonical);
        } else {
            std::size_t start = pos;
            while (pos < spec.size() && plainNameChar(spec[pos]))
                ++pos;
            std::string name = spec.substr(start, pos - start);
            if (name.empty()) {
                failSpec(spec, "empty child name at offset " +
                                   std::to_string(start));
            }
            if (!known(name)) {
                failSpec(spec, "unknown child prefetcher \"" + name +
                                   "\"");
            }
            node.children.push_back(name);
        }
        if (pos < spec.size() && spec[pos] == ',') {
            ++pos;
            continue;
        }
        break;
    }
    if (node.children.size() < 2)
        failSpec(spec, "a hybrid needs at least 2 children");
    if (node.children.size() > kMaxHybridChildren) {
        failSpec(spec, "at most " + std::to_string(kMaxHybridChildren) +
                           " children supported, got " +
                           std::to_string(node.children.size()));
    }

    // Options: ";key=value"*.
    while (pos < spec.size() && spec[pos] == ';') {
        ++pos;
        std::size_t eq = spec.find('=', pos);
        std::size_t end = spec.find_first_of(";)", pos);
        if (eq == std::string::npos || end == std::string::npos ||
            eq >= end) {
            failSpec(spec, "expected key=value at offset " +
                               std::to_string(pos));
        }
        std::string key = spec.substr(pos, eq - pos);
        std::string value = spec.substr(eq + 1, end - eq - 1);
        pos = end;

        auto numeric = [&](unsigned max_digits = 9) -> unsigned {
            if (value.empty() || value.size() > max_digits)
                failSpec(spec, "option " + key + "=\"" + value +
                                   "\" is not a valid number");
            unsigned long v = 0;
            for (char c : value) {
                if (c < '0' || c > '9') {
                    failSpec(spec, "option " + key + "=\"" + value +
                                       "\" is not a valid number");
                }
                v = v * 10 + static_cast<unsigned long>(c - '0');
            }
            return static_cast<unsigned>(v);
        };

        if (key == "select") {
            if (value == "all")
                node.cfg.select = HybridSelect::All;
            else if (value == "ip")
                node.cfg.select = HybridSelect::Ip;
            else if (value == "duel")
                node.cfg.select = HybridSelect::Duel;
            else
                failSpec(spec, "select must be all, ip or duel (got \"" +
                                   value + "\")");
        } else if (key == "degree") {
            node.cfg.degree = numeric();
        } else if (key == "credits") {
            node.cfg.creditEntries = numeric();
        } else if (key == "credit-max") {
            node.cfg.creditMax = numeric();
        } else if (key == "duel-sets") {
            node.cfg.duelSets = numeric();
        } else if (key == "psel-bits") {
            node.cfg.pselBits = numeric();
        } else {
            failSpec(spec, "unknown option \"" + key + "\"");
        }
    }

    if (pos >= spec.size() || spec[pos] != ')')
        failSpec(spec, "missing ')' at offset " + std::to_string(pos));
    ++pos;

    validateConfig(spec, node.cfg, node.children.size());

    node.canonical = "hybrid(";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0)
            node.canonical += ",";
        node.canonical += node.children[i];
    }
    node.canonical += canonicalOpts(node.cfg) + ")";
    return node;
}

/** Whole-string parse: trailing junk after the spec is malformed. */
HybridNode
parseWhole(const std::string &spec, const HybridConfig &base)
{
    std::size_t pos = 0;
    HybridNode node = parseHybrid(spec, pos, base, 1);
    if (pos != spec.size()) {
        failSpec(spec, "trailing characters after spec at offset " +
                           std::to_string(pos));
    }
    return node;
}

} // namespace

HybridConfig
HybridConfig::fromOptions(const sim::SimOptions &opt)
{
    HybridConfig cfg;
    cfg.degree = opt.hybridDegree;
    cfg.creditEntries = opt.hybridCreditEntries;
    cfg.creditMax = opt.hybridCreditMax;
    cfg.duelSets = opt.hybridDuelSets;
    cfg.pselBits = opt.hybridPselBits;
    return cfg;
}

bool
isHybridSpec(const std::string &name)
{
    return name.compare(0, 7, "hybrid(") == 0;
}

std::string
canonicalHybridSpec(const std::string &spec, const HybridConfig &base)
{
    return parseWhole(spec, base).canonical;
}

Factory
makeHybridFactory(const std::string &spec, const HybridConfig &base)
{
    HybridNode node = parseWhole(spec, base);

    // Resolve child factories eagerly so an unknown child fails at
    // spec-resolution time, not on first Machine construction. Nested
    // canonical specs are self-describing relative to the compiled
    // defaults, so they rebuild with a default base.
    std::vector<Factory> kids;
    kids.reserve(node.children.size());
    for (const std::string &child : node.children) {
        kids.push_back(isHybridSpec(child)
                           ? makeHybridFactory(child, HybridConfig{})
                           : make(child));
    }

    std::string canonical = node.canonical;
    HybridConfig cfg = node.cfg;
    return [canonical, cfg, kids] {
        std::vector<std::unique_ptr<Prefetcher>> built;
        built.reserve(kids.size());
        for (const Factory &f : kids) {
            built.push_back(f ? f()
                              : std::make_unique<NoPrefetcher>());
        }
        return std::make_unique<HybridPrefetcher>(canonical, cfg,
                                                  std::move(built));
    };
}

// ===================================================================
// HybridPrefetcher
// ===================================================================

/** The staging port each child issues through: proposals are queued
 *  for arbitration; clock and MSHR pressure pass through unchanged so
 *  a child observes exactly what it would standalone. */
class HybridPrefetcher::ChildPort : public PrefetchPort
{
  public:
    ChildPort(HybridPrefetcher *owner_pf, unsigned child_idx)
        : owner(owner_pf), idx(child_idx)
    {
    }

    bool
    issuePrefetch(Addr line_addr, FillLevel level) override
    {
        owner->propose(idx, line_addr, level);
        return true;
    }

    double mshrOccupancy() const override
    {
        return owner->port->mshrOccupancy();
    }

    Cycle now() const override { return owner->port->now(); }

  private:
    HybridPrefetcher *owner;
    unsigned idx;
};

HybridPrefetcher::HybridPrefetcher(
    std::string canonical_name, const HybridConfig &config,
    std::vector<std::unique_ptr<Prefetcher>> kids)
    : canonical(std::move(canonical_name)), cfg(config),
      children(std::move(kids))
{
    ports.reserve(children.size());
    for (unsigned i = 0; i < children.size(); ++i) {
        ports.push_back(std::make_unique<ChildPort>(this, i));
        children[i]->bind(ports.back().get());
    }
    issued.resize(cfg.attributionEntries);
    issuedPhys.resize(cfg.attributionEntries);
    if (cfg.select == HybridSelect::Ip) {
        credits.resize(cfg.creditEntries);
        shadow.resize(cfg.attributionEntries);
    }
    psel = 1u << (cfg.pselBits - 1);  // neutral: winner is child 0
}

HybridPrefetcher::~HybridPrefetcher() = default;

HybridPrefetcher::DuelRole
HybridPrefetcher::duelRoleOf(Addr trigger_line) const
{
    unsigned bucket = static_cast<unsigned>(
        (trigger_line ^ (trigger_line >> 10)) % kDuelBuckets);
    if (bucket < cfg.duelSets)
        return DuelRole::Leader0;
    if (bucket >= kDuelBuckets - cfg.duelSets)
        return DuelRole::Leader1;
    return DuelRole::Follower;
}

unsigned
HybridPrefetcher::duelWinner() const
{
    return psel <= (1u << (cfg.pselBits - 1)) ? 0 : 1;
}

std::size_t
HybridPrefetcher::selectedChildFor(Addr ip) const
{
    if (credits.empty())
        return children.size();
    const CreditRow &row = credits[hashIp(ip) % credits.size()];
    if (!row.valid || row.ip != ip)
        return children.size();
    std::uint8_t best = 0;
    bool uniform = true;
    for (std::size_t c = 0; c < children.size(); ++c) {
        if (row.credit[c] != row.credit[0])
            uniform = false;
        best = std::max(best, row.credit[c]);
    }
    if (uniform)
        return children.size();  // untrained / tied: union forwarding
    for (std::size_t c = 0; c < children.size(); ++c) {
        if (row.credit[c] == best)
            return c;
    }
    return children.size();
}

void
HybridPrefetcher::creditAdjust(Addr ip, unsigned child, int delta)
{
    if (credits.empty() || child >= children.size())
        return;
    CreditRow &row = credits[hashIp(ip) % credits.size()];
    if (!row.valid || row.ip != ip) {
        if (delta <= 0)
            return;  // never punish an unrelated IP's row
        row.valid = true;
        row.ip = ip;
        for (std::size_t c = 0; c < kMaxHybridChildren; ++c)
            row.credit[c] = 0;
    }
    int v = static_cast<int>(row.credit[child]) + delta;
    v = std::clamp(v, 0, static_cast<int>(cfg.creditMax));
    row.credit[child] = static_cast<std::uint8_t>(v);
}

void
HybridPrefetcher::pselAdjust(DuelRole role, unsigned child, bool toward)
{
    if (cfg.select != HybridSelect::Duel)
        return;
    // Only leader-bucket feedback trains PSEL, and only feedback about
    // the bucket's own leader (classic set-dueling).
    bool leader0 = role == DuelRole::Leader0 && child == 0;
    bool leader1 = role == DuelRole::Leader1 && child == 1;
    if (!leader0 && !leader1)
        return;
    const unsigned cap = (1u << cfg.pselBits) - 1;
    // "toward" child 0 decrements, "toward" child 1 increments.
    bool down = leader0 == toward;
    if (down) {
        if (psel > 0)
            --psel;
    } else {
        if (psel < cap)
            ++psel;
    }
}

HybridPrefetcher::IssueEntry *
HybridPrefetcher::lookupIssued(Addr line)
{
    IssueEntry &e = issued[hashLine(line) % issued.size()];
    return e.valid && e.line == line ? &e : nullptr;
}

HybridPrefetcher::IssueEntry *
HybridPrefetcher::lookupPhysical(Addr p_line)
{
    IssueEntry &e = issuedPhys[hashLine(p_line) % issuedPhys.size()];
    return e.valid && e.line == p_line ? &e : nullptr;
}

void
HybridPrefetcher::propose(unsigned child, Addr line, FillLevel level)
{
    staged.push_back({line, level, child});
}

void
HybridPrefetcher::onAccess(const AccessInfo &info)
{
    Addr key = info.vLine != kNoAddr ? info.vLine : info.pLine;

    // ---------------------------------------------- feedback, first
    if (info.firstHitOnPrefetch && key != kNoAddr) {
        if (IssueEntry *e = lookupIssued(key)) {
            ++stats.usefulFeedback;
            creditAdjust(e->ip, e->child, +2);
            pselAdjust(static_cast<DuelRole>(e->role), e->child,
                       /*toward=*/true);
            e->valid = false;
        }
    }
    if (!shadow.empty() && key != kNoAddr) {
        // A demand access to a line a *suppressed* child had proposed:
        // the loser would have been useful — earn it credit so it can
        // win the IP back.
        IssueEntry &s = shadow[hashLine(key) % shadow.size()];
        if (s.valid && s.line == key) {
            ++stats.shadowHits;
            creditAdjust(s.ip, s.child, +1);
            s.valid = false;
        }
    }

    // ------------------------------------- children always train
    staged.clear();
    for (auto &child : children)
        child->onAccess(info);

    arbitrate(info);
}

void
HybridPrefetcher::arbitrate(const AccessInfo &info)
{
    if (staged.empty())
        return;
    stats.proposals += staged.size();

    // Children ran sequentially, so `staged` is grouped child-major;
    // index the groups for round-robin interleaving.
    std::size_t group_start[kMaxHybridChildren + 1] = {};
    std::size_t counts[kMaxHybridChildren] = {};
    for (const Proposal &p : staged)
        ++counts[p.child];
    std::size_t max_count = 0;
    for (std::size_t c = 0; c < children.size(); ++c) {
        group_start[c + 1] = group_start[c] + counts[c];
        max_count = std::max(max_count, counts[c]);
    }

    // Budget: explicit degree, or the greediest child's own pressure.
    const std::size_t budget =
        cfg.degree > 0 ? cfg.degree : max_count;

    // Policy: which children may issue for this trigger?
    Addr trigger = info.vLine != kNoAddr ? info.vLine : info.pLine;
    bool allowed[kMaxHybridChildren];
    for (std::size_t c = 0; c < children.size(); ++c)
        allowed[c] = true;
    if (cfg.select == HybridSelect::Ip) {
        std::size_t sel = selectedChildFor(info.ip);
        if (sel < children.size()) {
            for (std::size_t c = 0; c < children.size(); ++c)
                allowed[c] = c == sel;
        }
    } else if (cfg.select == HybridSelect::Duel) {
        DuelRole role = duelRoleOf(trigger);
        unsigned sel = role == DuelRole::Leader0   ? 0u
                       : role == DuelRole::Leader1 ? 1u
                                                   : duelWinner();
        for (std::size_t c = 0; c < children.size(); ++c)
            allowed[c] = c == sel;
    }
    DuelRole role = cfg.select == HybridSelect::Duel
                        ? duelRoleOf(trigger)
                        : DuelRole::Follower;

    // Round-robin across children, dedup within the call, cap at the
    // budget. Deterministic: fixed iteration order, no RNG.
    std::size_t forwarded_lines[64];
    std::size_t n_forwarded = 0;
    for (std::size_t k = 0; k < max_count; ++k) {
        for (std::size_t c = 0; c < children.size(); ++c) {
            if (k >= counts[c])
                continue;
            const Proposal &p = staged[group_start[c] + k];
            bool dup = false;
            for (std::size_t i = 0; i < n_forwarded; ++i) {
                if (staged[forwarded_lines[i]].line == p.line) {
                    dup = true;
                    break;
                }
            }
            if (dup) {
                ++stats.deduplicated;
                continue;
            }
            if (!allowed[c]) {
                ++stats.suppressed;
                if (!shadow.empty()) {
                    IssueEntry &s =
                        shadow[hashLine(p.line) % shadow.size()];
                    s.valid = true;
                    s.line = p.line;
                    s.ip = info.ip;
                    s.child = static_cast<std::uint8_t>(c);
                    s.role = static_cast<std::uint8_t>(role);
                }
                continue;
            }
            if (n_forwarded >= budget) {
                ++stats.budgetDropped;
                continue;
            }
            port->issuePrefetch(p.line, p.level);
            ++stats.forwarded;
            if (n_forwarded <
                sizeof(forwarded_lines) / sizeof(forwarded_lines[0])) {
                forwarded_lines[n_forwarded] = group_start[c] + k;
            }
            ++n_forwarded;
            IssueEntry &e = issued[hashLine(p.line) % issued.size()];
            e.valid = true;
            e.line = p.line;
            e.ip = info.ip;
            e.child = static_cast<std::uint8_t>(c);
            e.role = static_cast<std::uint8_t>(role);
        }
    }
    staged.clear();
}

void
HybridPrefetcher::onFill(const FillInfo &info)
{
    Addr key = info.vLine != kNoAddr ? info.vLine : info.pLine;
    if (info.byPrefetch && key != kNoAddr) {
        if (IssueEntry *e = lookupIssued(key)) {
            if (info.pLine != kNoAddr) {
                // Re-key under the physical line so useless-eviction
                // feedback (physical-only) can find the issuer.
                IssueEntry &p =
                    issuedPhys[hashLine(info.pLine) % issuedPhys.size()];
                p = *e;
                p.line = info.pLine;
            }
            if (info.hadDemandWaiter) {
                // Late: the demand was already waiting. Mildly bad —
                // drain credit, but leave PSEL alone (a late prefetch
                // still cut the miss latency).
                ++stats.lateFeedback;
                creditAdjust(e->ip, e->child, -1);
            }
        }
    }
    if (info.evictedUnusedPrefetch && info.evictedPLine != kNoAddr) {
        if (IssueEntry *e = lookupPhysical(info.evictedPLine)) {
            ++stats.uselessFeedback;
            creditAdjust(e->ip, e->child, -1);
            pselAdjust(static_cast<DuelRole>(e->role), e->child,
                       /*toward=*/false);
            e->valid = false;
        }
    }

    for (auto &child : children)
        child->onFill(info);
}

void
HybridPrefetcher::tick()
{
    for (auto &child : children)
        child->tick();
}

std::uint64_t
HybridPrefetcher::storageBits() const
{
    std::uint64_t bits = 0;
    for (const auto &child : children)
        bits += child->storageBits();
    // Attribution maps: truncated 32-bit line tag + child (2) + role
    // (2) + 16-bit IP hash tag, per entry, both v- and p-keyed.
    bits += 2ull * cfg.attributionEntries * (32 + 2 + 2 + 16);
    if (cfg.select == HybridSelect::Ip) {
        unsigned credit_bits = 1;
        while ((1u << credit_bits) <= cfg.creditMax)
            ++credit_bits;
        bits += static_cast<std::uint64_t>(cfg.creditEntries) *
                (16 + kMaxHybridChildren * credit_bits);
        bits += static_cast<std::uint64_t>(cfg.attributionEntries) *
                (32 + 2 + 2 + 16);  // shadow table
    }
    if (cfg.select == HybridSelect::Duel)
        bits += cfg.pselBits;
    return bits;
}

std::string
HybridPrefetcher::debugState() const
{
    std::ostringstream os;
    os << canonical << ": forwarded " << stats.forwarded << "/"
       << stats.proposals << " proposals, suppressed "
       << stats.suppressed << ", budget-dropped " << stats.budgetDropped;
    if (cfg.select == HybridSelect::Duel)
        os << ", psel " << psel << " (winner child " << duelWinner()
           << ")";
    for (std::size_t c = 0; c < children.size(); ++c) {
        std::string child_state = children[c]->debugState();
        if (!child_state.empty())
            os << "\n  child" << c << " " << child_state;
    }
    return os.str();
}

void
HybridPrefetcher::registerMetrics(obs::MetricsRegistry &registry,
                                  const std::string &prefix)
{
    Prefetcher::registerMetrics(registry, prefix);
    registry.counter(prefix + "hybrid.proposals", &stats.proposals);
    registry.counter(prefix + "hybrid.forwarded", &stats.forwarded);
    registry.counter(prefix + "hybrid.suppressed", &stats.suppressed);
    registry.counter(prefix + "hybrid.deduplicated",
                     &stats.deduplicated);
    registry.counter(prefix + "hybrid.budget_dropped",
                     &stats.budgetDropped);
    registry.counter(prefix + "hybrid.useful_feedback",
                     &stats.usefulFeedback);
    registry.counter(prefix + "hybrid.useless_feedback",
                     &stats.uselessFeedback);
    registry.counter(prefix + "hybrid.late_feedback",
                     &stats.lateFeedback);
    registry.counter(prefix + "hybrid.shadow_hits", &stats.shadowHits);
    if (cfg.select == HybridSelect::Duel) {
        registry.gauge(prefix + "hybrid.psel",
                       [this] { return static_cast<double>(psel); });
    }
    for (std::size_t c = 0; c < children.size(); ++c) {
        children[c]->registerMetrics(
            registry, prefix + "child" + std::to_string(c) + ".");
    }
}

bool
HybridPrefetcher::checkpointSupported() const
{
    for (const auto &child : children) {
        if (!child->checkpointSupported())
            return false;
    }
    return true;
}

namespace
{

constexpr std::uint32_t kHybridTag = 0x48594252;  // "HYBR"

} // namespace

void
HybridPrefetcher::saveState(sim::ByteWriter &w) const
{
    w.tag(kHybridTag);
    w.u32(psel);

    w.u64(stats.proposals);
    w.u64(stats.forwarded);
    w.u64(stats.suppressed);
    w.u64(stats.deduplicated);
    w.u64(stats.budgetDropped);
    w.u64(stats.usefulFeedback);
    w.u64(stats.uselessFeedback);
    w.u64(stats.lateFeedback);
    w.u64(stats.shadowHits);

    auto save_issue = [&w](const std::vector<IssueEntry> &table) {
        w.u32(static_cast<std::uint32_t>(table.size()));
        for (const IssueEntry &e : table) {
            w.b(e.valid);
            w.u64(e.line);
            w.u64(e.ip);
            w.u8(e.child);
            w.u8(e.role);
        }
    };
    save_issue(issued);
    save_issue(issuedPhys);
    save_issue(shadow);

    w.u32(static_cast<std::uint32_t>(credits.size()));
    for (const CreditRow &row : credits) {
        w.b(row.valid);
        w.u64(row.ip);
        for (std::size_t c = 0; c < kMaxHybridChildren; ++c)
            w.u8(row.credit[c]);
    }

    for (std::size_t c = 0; c < children.size(); ++c) {
        w.tag(kHybridTag + 1 + static_cast<std::uint32_t>(c));
        children[c]->saveState(w);
    }
}

void
HybridPrefetcher::loadState(sim::ByteReader &r)
{
    r.expectTag(kHybridTag, "hybrid selector state");
    psel = r.u32();

    stats.proposals = r.u64();
    stats.forwarded = r.u64();
    stats.suppressed = r.u64();
    stats.deduplicated = r.u64();
    stats.budgetDropped = r.u64();
    stats.usefulFeedback = r.u64();
    stats.uselessFeedback = r.u64();
    stats.lateFeedback = r.u64();
    stats.shadowHits = r.u64();

    auto load_issue = [&r](std::vector<IssueEntry> &table,
                           const char *what) {
        std::uint32_t n = r.u32();
        if (n != table.size()) {
            r.fail(std::string("hybrid ") + what + " table size " +
                   std::to_string(n) + " does not match the live " +
                   std::to_string(table.size()));
        }
        for (IssueEntry &e : table) {
            e.valid = r.b();
            e.line = r.u64();
            e.ip = r.u64();
            e.child = r.u8();
            e.role = r.u8();
        }
    };
    load_issue(issued, "issue-attribution");
    load_issue(issuedPhys, "physical-attribution");
    load_issue(shadow, "shadow");

    std::uint32_t nc = r.u32();
    if (nc != credits.size()) {
        r.fail("hybrid credit table size " + std::to_string(nc) +
               " does not match the live " +
               std::to_string(credits.size()));
    }
    for (CreditRow &row : credits) {
        row.valid = r.b();
        row.ip = r.u64();
        for (std::size_t c = 0; c < kMaxHybridChildren; ++c)
            row.credit[c] = r.u8();
    }

    for (std::size_t c = 0; c < children.size(); ++c) {
        r.expectTag(kHybridTag + 1 + static_cast<std::uint32_t>(c),
                    "hybrid child state");
        children[c]->loadState(r);
    }
}

} // namespace berti::prefetch
