/**
 * @file
 * Best-Offset Prefetching (Michaud, HPCA 2016; DPC-2 winner). Learns a
 * single *global* best offset by scoring candidate offsets against a
 * recent-requests table that captures timeliness, then prefetches
 * line + best_offset on every demand access. This is the archetypal
 * global-delta prefetcher Berti's motivation section argues against.
 */

#ifndef BERTI_PREFETCH_BOP_HH
#define BERTI_PREFETCH_BOP_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace berti
{

class BopPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned rrEntries = 256;  //!< recent-requests table (direct map)
        int scoreMax = 31;         //!< learning ends when a score hits it
        unsigned roundMax = 100;   //!< or after this many full rounds
        int badScore = 10;         //!< below this, do not prefetch
        unsigned degree = 1;
    };

    BopPrefetcher() : BopPrefetcher(Config{}) {}
    explicit BopPrefetcher(const Config &cfg);

    void onAccess(const AccessInfo &info) override;
    void onFill(const FillInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "bop"; }

    /** Currently selected offset (0 = prefetch off). For tests/fig3. */
    int bestOffset() const { return best; }

  private:
    void score(Addr line);

    Config cfg;
    std::vector<int> offsets;      //!< candidate offset list
    std::vector<int> scores;
    std::vector<Addr> rrTable;     //!< recent base addresses
    unsigned testIndex = 0;        //!< round-robin candidate cursor
    unsigned rounds = 0;
    int best = 1;                  //!< offset in use (learning phase N-1)
    bool active = true;            //!< false when best score was bad
};

} // namespace berti

#endif // BERTI_PREFETCH_BOP_HH
