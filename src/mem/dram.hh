/**
 * @file
 * DRAM controller + device timing model: FR-FCFS (or FCFS) scheduling,
 * per-bank open-page row buffers, read priority with a write-drain
 * watermark, and a shared data bus whose burst time is derived from the
 * configured MTPS and bus width (so the DDR4/DDR5/LPDDR5/HBM presets of
 * mem/backend_registry.hh — and Figures 16-17's speed sweep — are
 * config knobs on one model). One Dram is one channel; the
 * MultiChannelDram backend (mem/multichannel.hh) composes several.
 */

#ifndef BERTI_MEM_DRAM_HH
#define BERTI_MEM_DRAM_HH

#include <queue>
#include <vector>

#include "mem/backend.hh"
#include "mem/cache.hh"
#include "mem/request.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace berti
{

namespace verify
{
class FaultInjector;
} // namespace verify

/** Controller scheduling policy. */
enum class DramSchedKind
{
    FrFcfs, //!< first-ready (open-row hit) first, else oldest
    Fcfs    //!< strictly oldest-first
};

struct DramConfig
{
    unsigned banks = 16;
    unsigned rqSize = 64;
    unsigned wqSize = 64;
    unsigned rowBytes = 4096;     //!< row-buffer size per bank
    Cycle tRp = 50;               //!< 12.5 ns at 4 GHz
    Cycle tRcd = 50;
    Cycle tCas = 50;
    unsigned mtps = 6400;         //!< mega-transfers/s on the data bus
    unsigned busBytes = 8;        //!< data bus width in bytes
    double writeDrainWatermark = 7.0 / 8.0;

    /** Scheduling policy; FR-FCFS is the historical default. */
    DramSchedKind sched = DramSchedKind::FrFcfs;

    /**
     * FR-FCFS starvation cap: after this many consecutive scheduling
     * decisions bypassed the oldest read in favour of a row hit, the
     * oldest read is forced. 0 (default) keeps the historical
     * unbounded row-hit preference. Applies to reads only — writes are
     * latency-insensitive and drain in watermark bursts.
     */
    unsigned starvationCap = 0;

    /**
     * Off-chip round-trip overhead (controller front-end, PHY, on-die
     * interconnect) added to the data-return path. Calibrated so the
     * average L1D fill latency lands near the paper's reported 278
     * cycles (section IV-A) — without it, a dependency-free trace's ROB
     * hides DRAM entirely and prefetching has nothing to gain.
     */
    Cycle linkLatency = 120;

    /** Core cycles the bus is busy transferring one 64 B line. */
    Cycle
    burstCycles() const
    {
        // bytes/s = mtps * 1e6 * busBytes; cycles = 64 B / rate * 4 GHz.
        return static_cast<Cycle>(
            64ull * 4000 /
            (static_cast<unsigned long long>(busBytes) * mtps));
    }

    /**
     * Reject degenerate geometry/timing at construction: throws
     * verify::SimError(ErrorKind::Config) naming the bad field (zero
     * banks/queues/mtps/busBytes, a row smaller than or not a multiple
     * of the line size, zero activate/CAS timings, an out-of-range
     * write-drain watermark, or a data rate so high the 64 B burst
     * rounds to zero cycles). Called by the Dram constructor, so no
     * backend can be built on silently-broken timings.
     */
    void validate() const;
};

/**
 * Single-channel DRAM: the concrete MemBackend every registry model
 * configures. Reads complete through ReadClient callbacks; writes are
 * fire-and-forget.
 */
class Dram : public mem::MemBackend
{
  public:
    Dram(const DramConfig &cfg, const Cycle *clock);

    bool submitRead(MemRequest req) override;
    void submitWriteback(Addr p_line) override;

    void tick() override;

    /**
     * Earliest future cycle at which tick() would do work (kNever when
     * fully drained). Quiescence cycle-skip input; the bound accounts
     * for the scheduler's bus lookahead gate so no scheduling decision
     * is reached late.
     */
    Cycle nextEventCycle() const override;

    bool readQueueEmpty() const { return rq.empty(); }
    std::size_t pendingReads() const override
    {
        return rq.size() + inflight.size();
    }
    std::size_t rqOccupancy() const override { return rq.size(); }
    std::size_t wqOccupancy() const override { return wq.size(); }

    /** Optional fault-injection hook (null = no faults). */
    void setFaultInjector(verify::FaultInjector *injector) override
    {
        faults = injector;
    }

    /**
     * Register the DRAM access counters, a derived row-hit-rate gauge,
     * the average read latency and the bus utilisation into the
     * registry. Called once at Machine construction.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) override;

    DramStats stats;

    DramStats statsSnapshot() const override { return stats; }

    /** Queue-bound / geometry invariants (the auditor hook). */
    std::string auditViolation() const override;

    std::string name() const override { return "dram"; }

    /**
     * Checkpoint hooks: banks, queues, the write-drain hysteresis flag,
     * bus state, the starvation-cap bypass counter and the in-flight
     * completion heap (drained in ascending order so the blob is
     * deterministic).
     */
    void saveState(sim::ByteWriter &w,
                   const sim::PtrMap &clients) const override;
    void loadState(sim::ByteReader &r,
                   const sim::PtrMap &clients) override;

  private:
    struct Bank
    {
        Addr openRow = kNoAddr;
        Cycle readyCycle = 0;
    };

    struct Completion
    {
        Cycle finish;
        /** Issue order, breaking same-cycle ties so the heap's pop
         *  order — and therefore a checkpoint's drained-heap layout —
         *  is a deterministic total order. */
        std::uint64_t seq;
        MemRequest req;

        bool
        operator>(const Completion &o) const
        {
            if (finish != o.finish)
                return finish > o.finish;
            return seq > o.seq;
        }
    };

    Addr rowOf(Addr p_line) const;
    unsigned bankOf(Addr p_line) const;

    /** Access latency at the bank (row hit/empty/conflict accounting). */
    Cycle accessBank(Addr p_line);

    void scheduleOne();

    DramConfig cfg;
    const Cycle *clock;
    verify::FaultInjector *faults = nullptr;
    std::vector<Bank> banks;
    RingQueue<MemRequest> rq;
    RingQueue<Addr> wq;
    bool drainingWrites = false;
    Cycle busFreeCycle = 0;
    std::uint64_t nextCompletionSeq = 0;
    /** Consecutive read picks that bypassed the queue head (FR-FCFS
     *  starvation accounting; forces the head at cfg.starvationCap). */
    std::uint64_t headBypassed = 0;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        inflight;
};

} // namespace berti

#endif // BERTI_MEM_DRAM_HH
