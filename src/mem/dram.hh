/**
 * @file
 * DRAM controller + device timing model: FR-FCFS scheduling, per-bank
 * open-page row buffers, read priority with a write-drain watermark, and
 * a shared data bus whose burst time is derived from the configured MTPS
 * (so DDR5-6400 / DDR4-3200 / DDR3-1600 of Figures 16-17 are one knob).
 */

#ifndef BERTI_MEM_DRAM_HH
#define BERTI_MEM_DRAM_HH

#include <queue>
#include <vector>

#include "mem/cache.hh"
#include "mem/request.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace berti
{

namespace verify
{
class FaultInjector;
class SimAuditor;
} // namespace verify

struct DramConfig
{
    unsigned banks = 16;
    unsigned rqSize = 64;
    unsigned wqSize = 64;
    unsigned rowBytes = 4096;     //!< row-buffer size per bank
    Cycle tRp = 50;               //!< 12.5 ns at 4 GHz
    Cycle tRcd = 50;
    Cycle tCas = 50;
    unsigned mtps = 6400;         //!< mega-transfers/s on an 8 B bus
    double writeDrainWatermark = 7.0 / 8.0;

    /**
     * Off-chip round-trip overhead (controller front-end, PHY, on-die
     * interconnect) added to the data-return path. Calibrated so the
     * average L1D fill latency lands near the paper's reported 278
     * cycles (section IV-A) — without it, a dependency-free trace's ROB
     * hides DRAM entirely and prefetching has nothing to gain.
     */
    Cycle linkLatency = 120;

    /** Core cycles the bus is busy transferring one 64 B line. */
    Cycle
    burstCycles() const
    {
        // bytes/s = mtps * 1e6 * 8; cycles = 64 B / rate * 4 GHz.
        return static_cast<Cycle>(64ull * 4000 / (8ull * mtps));
    }
};

/**
 * Single-channel DRAM. Reads complete through ReadClient callbacks;
 * writes are fire-and-forget.
 */
class Dram : public MemLevel
{
  public:
    Dram(const DramConfig &cfg, const Cycle *clock);

    bool submitRead(MemRequest req) override;
    void submitWriteback(Addr p_line) override;

    void tick();

    /**
     * Earliest future cycle at which tick() would do work (kNever when
     * fully drained). Quiescence cycle-skip input; the bound accounts
     * for the scheduler's bus lookahead gate so no scheduling decision
     * is reached late.
     */
    Cycle nextEventCycle() const;

    bool readQueueEmpty() const { return rq.empty(); }
    std::size_t pendingReads() const { return rq.size() + inflight.size(); }
    std::size_t rqOccupancy() const { return rq.size(); }
    std::size_t wqOccupancy() const { return wq.size(); }

    /** Optional fault-injection hook (null = no faults). */
    void setFaultInjector(verify::FaultInjector *injector)
    {
        faults = injector;
    }

    /**
     * Register the DRAM access counters and a derived row-hit-rate
     * gauge into the registry. Called once at Machine construction.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix);

    DramStats stats;

    /**
     * Checkpoint hooks: banks, queues, the write-drain hysteresis flag,
     * bus state and the in-flight completion heap (drained in ascending
     * order so the blob is deterministic).
     */
    void saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const;
    void loadState(sim::ByteReader &r, const sim::PtrMap &clients);

  private:
    friend class verify::SimAuditor;
    struct Bank
    {
        Addr openRow = kNoAddr;
        Cycle readyCycle = 0;
    };

    struct Completion
    {
        Cycle finish;
        /** Issue order, breaking same-cycle ties so the heap's pop
         *  order — and therefore a checkpoint's drained-heap layout —
         *  is a deterministic total order. */
        std::uint64_t seq;
        MemRequest req;

        bool
        operator>(const Completion &o) const
        {
            if (finish != o.finish)
                return finish > o.finish;
            return seq > o.seq;
        }
    };

    Addr rowOf(Addr p_line) const;
    unsigned bankOf(Addr p_line) const;

    /** Access latency at the bank (row hit/empty/conflict accounting). */
    Cycle accessBank(Addr p_line);

    void scheduleOne();

    DramConfig cfg;
    const Cycle *clock;
    verify::FaultInjector *faults = nullptr;
    std::vector<Bank> banks;
    RingQueue<MemRequest> rq;
    RingQueue<Addr> wq;
    bool drainingWrites = false;
    Cycle busFreeCycle = 0;
    std::uint64_t nextCompletionSeq = 0;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        inflight;
};

} // namespace berti

#endif // BERTI_MEM_DRAM_HH
