#include "mem/multichannel.hh"

#include "obs/metrics.hh"
#include "verify/sim_error.hh"

namespace berti::mem
{

MultiChannelDram::MultiChannelDram(const DramConfig &per_channel,
                                   unsigned channel_count,
                                   const Cycle *clock)
{
    if (channel_count == 0) {
        throw verify::SimError(verify::ErrorKind::Config,
                               "MultiChannelDram",
                               "channels must be > 0");
    }
    channels.reserve(channel_count);
    for (unsigned c = 0; c < channel_count; ++c)
        channels.push_back(std::make_unique<Dram>(per_channel, clock));
}

bool
MultiChannelDram::submitRead(MemRequest req)
{
    return channelOf(req.pLine).submitRead(req);
}

void
MultiChannelDram::submitWriteback(Addr p_line)
{
    channelOf(p_line).submitWriteback(p_line);
}

void
MultiChannelDram::tick()
{
    for (auto &ch : channels)
        ch->tick();
}

Cycle
MultiChannelDram::nextEventCycle() const
{
    Cycle next = kNever;
    for (const auto &ch : channels)
        next = std::min(next, ch->nextEventCycle());
    return next;
}

DramStats
MultiChannelDram::statsSnapshot() const
{
    DramStats sum;
    for (const auto &ch : channels)
        sum.add(ch->stats);
    return sum;
}

std::size_t
MultiChannelDram::pendingReads() const
{
    std::size_t n = 0;
    for (const auto &ch : channels)
        n += ch->pendingReads();
    return n;
}

std::size_t
MultiChannelDram::rqOccupancy() const
{
    std::size_t n = 0;
    for (const auto &ch : channels)
        n += ch->rqOccupancy();
    return n;
}

std::size_t
MultiChannelDram::wqOccupancy() const
{
    std::size_t n = 0;
    for (const auto &ch : channels)
        n += ch->wqOccupancy();
    return n;
}

void
MultiChannelDram::setFaultInjector(verify::FaultInjector *injector)
{
    for (auto &ch : channels)
        ch->setFaultInjector(injector);
}

void
MultiChannelDram::registerMetrics(obs::MetricsRegistry &registry,
                                  const std::string &prefix)
{
    for (std::size_t c = 0; c < channels.size(); ++c) {
        channels[c]->registerMetrics(
            registry, prefix + "ch" + std::to_string(c) + ".");
    }
    // Aggregates as gauges (the per-channel counters own the raw
    // cells); named like the single-channel counters so existing
    // dashboards resolve.
    registry.gauge(prefix + "reads", [this] {
        return static_cast<double>(statsSnapshot().reads);
    });
    registry.gauge(prefix + "writes", [this] {
        return static_cast<double>(statsSnapshot().writes);
    });
    registry.gauge(prefix + "row_hit_rate", [this] {
        DramStats s = statsSnapshot();
        std::uint64_t accesses = s.rowHits + s.rowMisses + s.rowConflicts;
        return accesses ? static_cast<double>(s.rowHits) / accesses : 0.0;
    });
    registry.gauge(prefix + "avg_read_latency", [this] {
        DramStats s = statsSnapshot();
        return s.readLatencyCount
                   ? static_cast<double>(s.readLatencySum) /
                         s.readLatencyCount
                   : 0.0;
    });
}

void
MultiChannelDram::saveState(sim::ByteWriter &w,
                            const sim::PtrMap &clients) const
{
    w.tag(0xD7A3C000u);
    w.u32(static_cast<std::uint32_t>(channels.size()));
    for (const auto &ch : channels)
        ch->saveState(w, clients);
    w.tag(0xD7A3C0FFu);
}

void
MultiChannelDram::loadState(sim::ByteReader &r, const sim::PtrMap &clients)
{
    r.expectTag(0xD7A3C000u, "multichannel dram");
    std::uint32_t n = r.u32();
    if (n != channels.size()) {
        throw verify::SimError(
            verify::ErrorKind::Checkpoint, "MultiChannelDram",
            "checkpoint has " + std::to_string(n) +
                " channels, machine has " +
                std::to_string(channels.size()));
    }
    for (auto &ch : channels)
        ch->loadState(r, clients);
    r.expectTag(0xD7A3C0FFu, "multichannel dram");
}

std::string
MultiChannelDram::auditViolation() const
{
    for (std::size_t c = 0; c < channels.size(); ++c) {
        std::string v = channels[c]->auditViolation();
        if (!v.empty())
            return "ch" + std::to_string(c) + ": " + v;
    }
    return {};
}

std::string
MultiChannelDram::name() const
{
    return "dram x" + std::to_string(channels.size());
}

} // namespace berti::mem
