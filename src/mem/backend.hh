/**
 * @file
 * MemBackend: the abstract memory-backend interface below the LLC.
 * Everything the rest of the simulator needs from "main memory" is
 * expressed here, so the concrete DRAM timing model is one pluggable
 * implementation among several (see mem/backend_registry.hh for the
 * model registry and spec grammar):
 *
 *   - the MemLevel enqueue surface (submitRead / submitWriteback) the
 *     LLC drives;
 *   - the tick() / nextEventCycle() drain contract the quiescence
 *     cycle-skip depends on: nextEventCycle() must never exceed the
 *     first future cycle at which tick() would do observable work, or
 *     a skip could jump past a pending completion (late bounds are
 *     correctness bugs; early bounds only cost speed);
 *   - checkpoint hooks (saveState / loadState) with a deterministic
 *     byte layout;
 *   - metrics registration and an aggregated statistics snapshot;
 *   - the auditor hook: auditViolation() replaces the auditor's
 *     historical friend-access into Dram internals, so new backends
 *     get invariant checking without widening any friendship.
 */

#ifndef BERTI_MEM_BACKEND_HH
#define BERTI_MEM_BACKEND_HH

#include <string>

#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace berti::mem
{

class MemBackend : public MemLevel
{
  public:
    /** Advance one cycle: retire due completions, make at most the
     *  backend's per-cycle scheduling decisions. */
    virtual void tick() = 0;

    /**
     * Earliest future cycle at which tick() would do work given no new
     * input (kNever when fully drained). The quiescence cycle-skip
     * bound: returning a cycle later than the true next event is a
     * correctness bug (results would depend on the skip setting);
     * returning one earlier is always safe.
     */
    virtual Cycle nextEventCycle() const = 0;

    /** Aggregated access counters over the whole backend (summed over
     *  channels for multi-channel models). */
    virtual DramStats statsSnapshot() const = 0;

    /** Queued + in-flight reads, for diagnostics and drain checks. */
    virtual std::size_t pendingReads() const = 0;
    virtual std::size_t rqOccupancy() const = 0;
    virtual std::size_t wqOccupancy() const = 0;

    /** Optional fault-injection hook (null = no faults). */
    virtual void setFaultInjector(verify::FaultInjector *injector) = 0;

    /** Register counters/gauges under `prefix` ("dram." on the
     *  Machine). Called once at Machine construction. */
    virtual void registerMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix) = 0;

    /**
     * Checkpoint hooks. The layout must be deterministic (the same
     * state always serializes to the same bytes) and self-delimiting;
     * any layout change bumps harness::kCheckpointVersion.
     */
    virtual void saveState(sim::ByteWriter &w,
                           const sim::PtrMap &clients) const = 0;
    virtual void loadState(sim::ByteReader &r,
                           const sim::PtrMap &clients) = 0;

    /** False blocks Machine checkpointing with a typed reason (test
     *  doubles that carry unserializable state return false). */
    virtual bool checkpointSupported() const { return true; }

    /**
     * Auditor hook: re-validate the backend's structural invariants
     * (queue bounds, geometry consistency) and return a description of
     * the first violation, or "" when all hold. Called read-only from
     * verify::SimAuditor at its check interval.
     */
    virtual std::string auditViolation() const = 0;

    /** Short model name for diagnostics and audit failures. */
    virtual std::string name() const = 0;
};

} // namespace berti::mem

#endif // BERTI_MEM_BACKEND_HH
