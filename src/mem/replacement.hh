/**
 * @file
 * Cache replacement policies: LRU, FIFO, SRRIP and DRRIP (paper Table II
 * uses SRRIP at L2 and DRRIP at the LLC; Berti's own tables use FIFO).
 */

#ifndef BERTI_MEM_REPLACEMENT_HH
#define BERTI_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/serialize.hh"

namespace berti
{

/** Which policy a cache uses. */
enum class ReplKind
{
    Lru,
    Fifo,
    Srrip,
    Drrip
};

/**
 * Per-cache replacement state. The cache asks for a victim way only when
 * no invalid way exists in the set.
 */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** Pick the victim way within set. All ways are valid. */
    virtual unsigned victim(unsigned set) = 0;

    /** A lookup hit way. */
    virtual void onHit(unsigned set, unsigned way) = 0;

    /** A line was installed into way. */
    virtual void onFill(unsigned set, unsigned way, bool prefetch) = 0;

    virtual std::string name() const = 0;

    /** Checkpoint hooks: serialize the full replacement state. The
     *  restoring policy must have identical geometry (same cache). */
    virtual void saveState(sim::ByteWriter &w) const = 0;
    virtual void loadState(sim::ByteReader &r) = 0;
};

/** Factory. */
std::unique_ptr<ReplPolicy> makeReplPolicy(ReplKind kind, unsigned sets,
                                           unsigned ways);

/** True-LRU with per-way age stamps. */
class LruPolicy : public ReplPolicy
{
  public:
    LruPolicy(unsigned sets, unsigned ways);
    unsigned victim(unsigned set) override;
    void onHit(unsigned set, unsigned way) override;
    void onFill(unsigned set, unsigned way, bool prefetch) override;
    std::string name() const override { return "lru"; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    void touch(unsigned set, unsigned way);

    unsigned ways;
    std::uint64_t tick = 0;
    std::vector<std::uint64_t> stamp;  //!< sets * ways
};

/** FIFO: evict the oldest fill regardless of hits. */
class FifoPolicy : public ReplPolicy
{
  public:
    FifoPolicy(unsigned sets, unsigned ways);
    unsigned victim(unsigned set) override;
    void onHit(unsigned set, unsigned way) override;
    void onFill(unsigned set, unsigned way, bool prefetch) override;
    std::string name() const override { return "fifo"; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    unsigned ways;
    std::uint64_t tick = 0;
    std::vector<std::uint64_t> stamp;
};

/** Static RRIP with 2-bit re-reference prediction values. */
class SrripPolicy : public ReplPolicy
{
  public:
    SrripPolicy(unsigned sets, unsigned ways);
    unsigned victim(unsigned set) override;
    void onHit(unsigned set, unsigned way) override;
    void onFill(unsigned set, unsigned way, bool prefetch) override;
    std::string name() const override { return "srrip"; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  protected:
    static constexpr std::uint8_t kMaxRrpv = 3;

    unsigned ways;
    std::vector<std::uint8_t> rrpv;
};

/**
 * Dynamic RRIP: set-dueling between SRRIP insertion and bimodal (mostly
 * distant) insertion, with follower sets obeying a PSEL counter.
 */
class DrripPolicy : public SrripPolicy
{
  public:
    DrripPolicy(unsigned sets, unsigned ways);
    void onFill(unsigned set, unsigned way, bool prefetch) override;
    std::string name() const override { return "drrip"; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

  private:
    enum class SetRole : std::uint8_t { SrripLeader, BrripLeader, Follower };

    SetRole role(unsigned set) const;

    unsigned sets;
    int psel = 0;               //!< >0 favours SRRIP
    std::uint32_t bipCounter = 0;
};

} // namespace berti

#endif // BERTI_MEM_REPLACEMENT_HH
