/**
 * @file
 * Memory request record passed between hierarchy levels, and the
 * read-completion client interface implemented by caches and cores.
 */

#ifndef BERTI_MEM_REQUEST_HH
#define BERTI_MEM_REQUEST_HH

#include <cstdint>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace berti
{

class ReadClient;

/**
 * A request travelling down the hierarchy. Line-granular: vLine/pLine are
 * *line* addresses (byte address >> 6). vLine may be kNoAddr for requests
 * that originate below the translation point (e.g. L2 prefetches).
 */
struct MemRequest
{
    Addr vLine = kNoAddr;      //!< virtual line address (L1-visible)
    Addr pLine = kNoAddr;      //!< physical line address
    Addr ip = 0;               //!< triggering instruction pointer
    AccessType type = AccessType::Load;
    FillLevel fillLevel = FillLevel::L1;  //!< prefetch fill target
    unsigned coreId = 0;
    std::uint64_t instrId = 0;  //!< ROB entry to wake (0 = none)
    Cycle enqueueCycle = 0;     //!< PQ/MSHR timestamp origin
    ReadClient *client = nullptr;  //!< who to notify on completion
};

/**
 * Receiver of read completions. A cache implements this for the requests
 * it forwards below; a core implements it for its L1 accesses.
 */
class ReadClient
{
  public:
    virtual ~ReadClient() = default;

    /** The read for req has completed at the level below. */
    virtual void readDone(const MemRequest &req) = 0;
};

/**
 * Checkpoint codec for in-flight requests. The client pointer is
 * serialized as its id in a PtrMap built from the machine topology
 * (ReadClient subobject pointers; id 0 = null).
 */
inline void
saveRequest(sim::ByteWriter &w, const sim::PtrMap &clients,
            const MemRequest &req)
{
    w.u64(req.vLine);
    w.u64(req.pLine);
    w.u64(req.ip);
    w.u8(static_cast<std::uint8_t>(req.type));
    w.u8(static_cast<std::uint8_t>(req.fillLevel));
    w.u32(req.coreId);
    w.u64(req.instrId);
    w.u64(req.enqueueCycle);
    w.u32(clients.idOf(static_cast<const void *>(req.client)));
}

inline MemRequest
loadRequest(sim::ByteReader &r, const sim::PtrMap &clients)
{
    MemRequest req;
    req.vLine = r.u64();
    req.pLine = r.u64();
    req.ip = r.u64();
    req.type = static_cast<AccessType>(r.u8());
    req.fillLevel = static_cast<FillLevel>(r.u8());
    req.coreId = r.u32();
    req.instrId = r.u64();
    req.enqueueCycle = r.u64();
    req.client = static_cast<ReadClient *>(clients.at(r.u32()));
    return req;
}

} // namespace berti

#endif // BERTI_MEM_REQUEST_HH
