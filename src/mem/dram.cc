#include "mem/dram.hh"

#include "obs/metrics.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

[[noreturn]] void
rejectField(const std::string &field, const std::string &detail)
{
    throw verify::SimError(verify::ErrorKind::Config, "DramConfig",
                           field + " " + detail);
}

} // namespace

void
DramConfig::validate() const
{
    if (banks == 0)
        rejectField("banks", "must be > 0");
    if (rqSize == 0)
        rejectField("rqSize", "must be > 0");
    if (wqSize == 0)
        rejectField("wqSize", "must be > 0");
    if (rowBytes < kLineSize || rowBytes % kLineSize != 0) {
        rejectField("rowBytes",
                    "= " + std::to_string(rowBytes) +
                        " must be a positive multiple of the " +
                        std::to_string(kLineSize) + " B line size");
    }
    if (mtps == 0)
        rejectField("mtps", "must be > 0");
    if (busBytes == 0)
        rejectField("busBytes", "must be > 0");
    if (tRp == 0)
        rejectField("tRp", "must be > 0");
    if (tRcd == 0)
        rejectField("tRcd", "must be > 0");
    if (tCas == 0)
        rejectField("tCas", "must be > 0");
    if (!(writeDrainWatermark > 0.0) || writeDrainWatermark > 1.0) {
        rejectField("writeDrainWatermark",
                    "= " + std::to_string(writeDrainWatermark) +
                        " must be in (0, 1]");
    }
    if (burstCycles() == 0) {
        rejectField("mtps/busBytes",
                    "data rate so high a 64 B burst rounds to 0 cycles "
                    "(mtps=" + std::to_string(mtps) +
                        ", busBytes=" + std::to_string(busBytes) + ")");
    }
}

Dram::Dram(const DramConfig &config, const Cycle *clock_ptr)
    : cfg(config), clock(clock_ptr), banks(cfg.banks)
{
    cfg.validate();
    // Allocation-free steady state: queue rings at their configured
    // bounds (wq is soft-capacity, so headroom), and the completion
    // heap's backing vector pre-reserved past the read-queue bound.
    rq.reserve(cfg.rqSize);
    wq.reserve(2 * static_cast<std::size_t>(cfg.wqSize) + 8);
    std::vector<Completion> backing;
    backing.reserve(cfg.rqSize + 8);
    inflight = decltype(inflight)(std::greater<Completion>(),
                                  std::move(backing));
}

Addr
Dram::rowOf(Addr p_line) const
{
    return p_line / (cfg.rowBytes / kLineSize);
}

unsigned
Dram::bankOf(Addr p_line) const
{
    // Row-interleaved banking: consecutive 4 KB rows land on different
    // banks so streams exploit bank-level parallelism.
    return static_cast<unsigned>(rowOf(p_line) % cfg.banks);
}

bool
Dram::submitRead(MemRequest req)
{
    if (rq.size() >= cfg.rqSize)
        return false;
    req.enqueueCycle = *clock;
    rq.push_back(req);
    return true;
}

void
Dram::submitWriteback(Addr p_line)
{
    // Soft capacity (see Cache::submitWriteback); drained with priority
    // once past the watermark.
    wq.push_back(p_line);
}

Cycle
Dram::accessBank(Addr p_line)
{
    Bank &bank = banks[bankOf(p_line)];
    Addr row = rowOf(p_line);

    Cycle start = std::max(*clock, bank.readyCycle);
    Cycle access;   //!< command-to-data latency
    Cycle occupy;   //!< bank busy time before the next command
    if (bank.openRow == row) {
        // Column accesses to an open row pipeline at burst rate.
        access = cfg.tCas;
        occupy = cfg.burstCycles();
        ++stats.rowHits;
    } else if (bank.openRow == kNoAddr) {
        access = cfg.tRcd + cfg.tCas;
        occupy = cfg.tRcd + cfg.burstCycles();
        ++stats.rowMisses;
    } else {
        access = cfg.tRp + cfg.tRcd + cfg.tCas;
        occupy = cfg.tRp + cfg.tRcd + cfg.burstCycles();
        ++stats.rowConflicts;
    }
    bank.openRow = row;

    Cycle data_ready = start + access;
    Cycle bus_start = std::max(data_ready, busFreeCycle);
    Cycle finish = bus_start + cfg.burstCycles();
    busFreeCycle = finish;
    bank.readyCycle = start + occupy;
    stats.busBusyCycles += cfg.burstCycles();
    return finish + cfg.linkLatency;
}

void
Dram::scheduleOne()
{
    // Hysteretic write drain: start at the high watermark, stop when
    // half-empty or a read arrives and pressure is off.
    std::size_t high =
        static_cast<std::size_t>(cfg.writeDrainWatermark * cfg.wqSize);
    if (wq.size() >= high)
        drainingWrites = true;
    if (wq.empty() || (drainingWrites && wq.size() < cfg.wqSize / 2))
        drainingWrites = false;

    bool do_write = drainingWrites || (rq.empty() && !wq.empty());
    if (do_write) {
        // FR-FCFS among writes: first row hit, else oldest. FCFS takes
        // strictly the oldest. No starvation cap on the write side —
        // writes are latency-insensitive and drain in bursts anyway.
        std::size_t pick = 0;
        if (cfg.sched == DramSchedKind::FrFcfs) {
            for (std::size_t i = 0; i < wq.size(); ++i) {
                if (banks[bankOf(wq[i])].openRow == rowOf(wq[i])) {
                    pick = i;
                    break;
                }
            }
        }
        Addr p_line = wq[pick];
        wq.erase(pick);
        accessBank(p_line);
        ++stats.writes;
        return;
    }

    if (rq.empty())
        return;

    // FR-FCFS among reads: the oldest request to an open row wins;
    // otherwise — and always under FCFS, or once the starvation cap is
    // spent — the oldest request overall.
    std::size_t pick = 0;
    bool found_hit = false;
    if (cfg.sched == DramSchedKind::FrFcfs &&
        (cfg.starvationCap == 0 || headBypassed < cfg.starvationCap)) {
        for (std::size_t i = 0; i < rq.size(); ++i) {
            if (banks[bankOf(rq[i].pLine)].openRow ==
                rowOf(rq[i].pLine)) {
                pick = i;
                found_hit = true;
                break;
            }
        }
    }
    if (!found_hit)
        pick = 0;
    headBypassed = pick == 0 ? 0 : headBypassed + 1;

    MemRequest req = rq[pick];
    rq.erase(pick);
    Cycle finish = accessBank(req.pLine);
    ++stats.reads;
    if (faults) {
        // Injected faults: a latency spike delays the response; a lost
        // read swallows it entirely (the requester's MSHR wedges — the
        // watchdog/auditor failure mode under test).
        if (faults->loseDramRead())
            return;
        finish += faults->extraDramLatency(req);
    }
    // Queue-to-data read latency, after any injected spike; lost reads
    // never complete, so they are deliberately not counted.
    stats.readLatencySum += finish - req.enqueueCycle;
    ++stats.readLatencyCount;
    inflight.push({finish, nextCompletionSeq++, req});
}

void
Dram::tick()
{
    while (!inflight.empty() && inflight.top().finish <= *clock) {
        MemRequest req = inflight.top().req;
        inflight.pop();
        if (req.client)
            req.client->readDone(req);
    }

    // One scheduling decision per cycle; the bus/bank timing inside
    // accessBank serialises actual service. The lookahead window lets
    // commands issue while earlier data is still in the CAS pipeline —
    // it covers a full precharge+activate+CAS plus a few bursts of bus
    // backlog, so row hits stream at burst rate.
    Cycle lookahead =
        cfg.tRp + cfg.tRcd + cfg.tCas + 4 * cfg.burstCycles();
    if (busFreeCycle <= *clock + lookahead)
        scheduleOne();
}

Cycle
Dram::nextEventCycle() const
{
    Cycle next = kNever;
    if (!inflight.empty())
        next = std::max(inflight.top().finish, *clock + 1);
    // A stale drainingWrites flag counts as pending work: scheduleOne
    // clears it even with empty queues, and skipping that tick would
    // let the hysteresis state diverge from an unskipped run.
    if (!rq.empty() || !wq.empty() || drainingWrites) {
        // The scheduler gate reopens once the bus backlog re-enters the
        // lookahead window.
        Cycle lookahead =
            cfg.tRp + cfg.tRcd + cfg.tCas + 4 * cfg.burstCycles();
        Cycle gate = busFreeCycle > lookahead ? busFreeCycle - lookahead
                                              : 0;
        next = std::min(next, std::max(gate, *clock + 1));
    }
    return next;
}

std::string
Dram::auditViolation() const
{
    if (rq.size() > cfg.rqSize) {
        return "read queue occupancy " + std::to_string(rq.size()) +
               " exceeds declared bound " + std::to_string(cfg.rqSize);
    }
    std::size_t wq_bound = 16ull * cfg.wqSize + 256;
    if (wq.size() > wq_bound) {
        return "write queue occupancy " + std::to_string(wq.size()) +
               " exceeds soft bound " + std::to_string(wq_bound);
    }
    if (banks.size() != cfg.banks)
        return "bank array size mismatch";
    return {};
}

void
Dram::saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const
{
    w.tag(0xD7A30000u);
    saveStatsFields(w, stats);
    for (const Bank &b : banks) {
        w.u64(b.openRow);
        w.u64(b.readyCycle);
    }
    w.u32(static_cast<std::uint32_t>(rq.size()));
    for (const MemRequest &req : rq)
        saveRequest(w, clients, req);
    w.u32(static_cast<std::uint32_t>(wq.size()));
    for (const Addr &a : wq)
        w.u64(a);
    w.b(drainingWrites);
    w.u64(busFreeCycle);
    w.u64(nextCompletionSeq);
    w.u64(headBypassed);

    // Drain a copy of the heap: pops come out in (finish, seq) order,
    // which is total, so the serialized layout is deterministic.
    auto heap = inflight;
    w.u32(static_cast<std::uint32_t>(heap.size()));
    while (!heap.empty()) {
        const Completion &c = heap.top();
        w.u64(c.finish);
        w.u64(c.seq);
        saveRequest(w, clients, c.req);
        heap.pop();
    }
    w.tag(0xD7A300FFu);
}

void
Dram::loadState(sim::ByteReader &r, const sim::PtrMap &clients)
{
    r.expectTag(0xD7A30000u, "dram");
    loadStatsFields(r, stats);
    for (Bank &b : banks) {
        b.openRow = r.u64();
        b.readyCycle = r.u64();
    }
    std::uint32_t nRq = r.u32();
    rq.clear();
    for (std::uint32_t i = 0; i < nRq; ++i)
        rq.push_back(loadRequest(r, clients));
    std::uint32_t nWq = r.u32();
    wq.clear();
    for (std::uint32_t i = 0; i < nWq; ++i)
        wq.push_back(r.u64());
    drainingWrites = r.b();
    busFreeCycle = r.u64();
    nextCompletionSeq = r.u64();
    headBypassed = r.u64();

    while (!inflight.empty())
        inflight.pop();
    std::uint32_t nInflight = r.u32();
    for (std::uint32_t i = 0; i < nInflight; ++i) {
        Completion c;
        c.finish = r.u64();
        c.seq = r.u64();
        c.req = loadRequest(r, clients);
        inflight.push(c);
    }
    r.expectTag(0xD7A300FFu, "dram");
}

void
Dram::registerMetrics(obs::MetricsRegistry &registry,
                      const std::string &prefix)
{
    forEachStatField(stats,
                     [&](const char *name, std::uint64_t &cell) {
                         registry.counter(prefix + name, &cell);
                     });
    registry.gauge(prefix + "row_hit_rate", [this] {
        std::uint64_t accesses =
            stats.rowHits + stats.rowMisses + stats.rowConflicts;
        return accesses ? static_cast<double>(stats.rowHits) / accesses
                        : 0.0;
    });
    registry.gauge(prefix + "avg_read_latency", [this] {
        return stats.readLatencyCount
                   ? static_cast<double>(stats.readLatencySum) /
                         stats.readLatencyCount
                   : 0.0;
    });
    registry.gauge(prefix + "bus_utilization", [this] {
        return *clock ? static_cast<double>(stats.busBusyCycles) / *clock
                      : 0.0;
    });
}

} // namespace berti
