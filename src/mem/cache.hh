/**
 * @file
 * Generic set-associative, non-inclusive cache level with MSHRs, read /
 * write / prefetch queues, bandwidth limits and prefetcher hook points.
 * Instances of this one class model L1I, L1D, L2 and the LLC.
 */

#ifndef BERTI_MEM_CACHE_HH
#define BERTI_MEM_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/replacement.hh"
#include "mem/request.hh"
#include "prefetch/prefetcher.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace berti
{

class TranslationUnit;

namespace obs
{
class Histogram;
class MetricsRegistry;
class PrefetchEventTrace;
} // namespace obs

namespace verify
{
class FaultInjector;
class SimAuditor;
} // namespace verify

/** Anything a cache can forward requests to (a lower cache or DRAM). */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /** Forward a read-type request. @return false if the queue is full. */
    virtual bool submitRead(MemRequest req) = 0;

    /** Forward a dirty line eviction. Always accepted (soft capacity). */
    virtual void submitWriteback(Addr p_line) = 0;
};

struct CacheConfig
{
    std::string name = "cache";
    unsigned level = 1;       //!< 1 = L1, 2 = L2, 3 = LLC
    unsigned sets = 64;
    unsigned ways = 8;
    Cycle latency = 5;        //!< tag+data lookup latency
    unsigned mshrs = 16;
    unsigned rqSize = 32;
    unsigned pqSize = 16;
    unsigned wqSize = 32;
    unsigned maxReadsPerCycle = 2;      //!< RQ lookups per cycle
    unsigned maxPrefetchesPerCycle = 1; //!< PQ lookups per cycle
    unsigned maxWritesPerCycle = 2;     //!< WQ drains per cycle
    ReplKind repl = ReplKind::Lru;
    bool isL1d = false;       //!< virtual-address prefetching + metadata
    /** Invoke the prefetcher on InstrFetch accesses (L1I prefetching). */
    bool trainOnInstrFetch = false;
};

/**
 * One cache level. Cycle-stepped: the owner calls tick() once per core
 * cycle, after ticking the level below it so responses propagate upward
 * within a cycle in the right order.
 */
class Cache : public MemLevel, public ReadClient, public PrefetchPort
{
  public:
    /**
     * Build the level. Throws verify::SimError(ErrorKind::Config) on a
     * structurally invalid configuration (zero sets/ways/MSHRs/queues)
     * — always-on validation, unlike an assert.
     */
    Cache(const CacheConfig &cfg, const Cycle *clock);
    ~Cache() override;

    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    void setLower(MemLevel *lower_level) { lower = lower_level; }

    /** L1D only: STLB used to translate virtual prefetch requests. */
    void setTranslation(TranslationUnit *tu) { translation = tu; }

    void setPrefetcher(std::unique_ptr<Prefetcher> pf);
    Prefetcher *prefetcher() { return pf.get(); }
    const Prefetcher *prefetcher() const { return pf.get(); }

    /** Optional fault-injection hook (null = no faults). */
    void setFaultInjector(verify::FaultInjector *injector)
    {
        faults = injector;
    }

    /**
     * Optional prefetch event trace (null = off, the default). The
     * trace must outlive the cache; the Machine owns one per traced
     * level when BERTI_OBS_PFTRACE is set.
     */
    void setEventTrace(obs::PrefetchEventTrace *trace) { ptrace = trace; }
    const obs::PrefetchEventTrace *eventTrace() const { return ptrace; }

    /**
     * Register this level's counters, derived gauges (accuracy, MSHR
     * occupancy), the fill-latency histogram and the attached
     * prefetcher's metrics (under prefix + "pf.") into the registry.
     * Called once at Machine construction; the registry must outlive
     * the cache.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix);

    /** Distribution of MSHR fill latencies (log2 buckets, cycles). */
    const obs::Histogram &fillLatencyHistogram() const
    {
        return *fillLatencyHist;
    }

    /**
     * Always-on wiring validation, called at machine construction:
     * an L1D with a prefetcher attached must have a TLB to translate
     * virtual prefetch addresses. Throws verify::SimError on violation
     * (this replaces a release-invisible assert in the prefetch path).
     */
    void validateWiring() const;

    // MemLevel: entry points used by cores and upper caches.
    bool submitRead(MemRequest req) override;
    void submitWriteback(Addr p_line) override;

    /** Advance one cycle: drain WQ, RQ, PQ, retry unsent MSHRs. */
    void tick();

    /**
     * Earliest future cycle at which tick() would do any work, given no
     * new input arrives (kNever if idle). Used by the Machine's
     * quiescence cycle-skip; see ARCHITECTURE.md, "Performance". The
     * bound must never be late: pending writes and unsent MSHR retries
     * are due next cycle, queued reads/prefetches mature when the head
     * finishes its lookup latency.
     */
    Cycle nextEventCycle() const;

    // ReadClient: response from the level below.
    void readDone(const MemRequest &req) override;

    // PrefetchPort.
    bool issuePrefetch(Addr line_addr, FillLevel level) override;
    double mshrOccupancy() const override;
    Cycle now() const override { return *clock; }

    /**
     * Zero-latency demand tag probe used by the instruction-fetch fast
     * path: on a hit it updates hit statistics and replacement state and
     * returns true; on a miss it changes nothing (the caller then
     * submits a regular read).
     */
    bool fastHit(Addr p_line);

    /** Non-mutating tag probe (tests and benches). */
    bool probe(Addr p_line) const;

    /** Dirty-bit probe for tests. */
    bool probeDirty(Addr p_line) const;

    const CacheConfig &config() const { return cfg; }
    std::size_t rqOccupancy() const { return rq.size(); }
    std::size_t pqOccupancy() const { return pq.size(); }
    std::size_t wqOccupancy() const { return wq.size(); }
    std::size_t mshrsInUse() const { return mshrUsed; }

    /** One in-flight miss, as exposed to diagnostics and tests. */
    struct MshrView
    {
        Addr pLine = kNoAddr;
        bool isPrefetch = false;
        bool hadDemand = false;
        bool sentBelow = false;
        Cycle age = 0;          //!< cycles outstanding
    };

    /** Snapshot of every valid MSHR entry (diagnostic dumps). */
    std::vector<MshrView> mshrSnapshot() const;

    /**
     * Checkpoint hooks: full level state — lines, MSHRs, the free-list
     * order, queues, statistics, replacement state, the fill-latency
     * histogram and the attached prefetcher. Request client pointers
     * travel through the PtrMap the Machine builds from its topology.
     * Throws verify::SimError(ErrorKind::Checkpoint) when the attached
     * prefetcher does not support checkpointing.
     */
    void saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const;
    void loadState(sim::ByteReader &r, const sim::PtrMap &clients);

    CacheStats stats;

  private:
    struct Line
    {
        Addr pLine = kNoAddr;
        Addr vLine = kNoAddr;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;  //!< brought in by a prefetch
        bool pfUsed = false;      //!< prefetched line already demanded
        Cycle pfLatency = 0;      //!< 12-bit stored latency (0 = none)
    };

    struct MshrEntry
    {
        bool valid = false;
        Addr pLine = kNoAddr;
        Addr vLine = kNoAddr;
        Addr ip = 0;              //!< first demand requester's IP
        bool isPrefetch = false;  //!< allocated by a prefetch request
        bool hadDemand = false;   //!< a demand access waits on this line
        bool wantsDirty = false;  //!< an RFO waits on this line
        FillLevel fillLevel = FillLevel::L1;
        Cycle ts = 0;             //!< PQ-insert or allocation timestamp
        bool sentBelow = false;
        MemRequest fwd;           //!< request to (re)send below
        std::vector<MemRequest> waiters;  //!< capacity retained on reuse
    };

    /**
     * How the per-access prefetcher hooks are dispatched. Resolved once
     * in setPrefetcher so the L1D demand path pays a switch on a local
     * enum instead of two virtual calls per access: the dominant
     * configuration (Berti at L1D, nothing elsewhere) becomes a direct
     * devirtualized call / no call at all.
     */
    enum class PfDispatch : std::uint8_t
    {
        None,    //!< NoPrefetcher: skip the hooks entirely
        Berti,   //!< BertiPrefetcher (final): direct static dispatch
        Virtual  //!< anything else: classic virtual dispatch
    };

    unsigned setIndex(Addr p_line) const { return p_line % cfg.sets; }
    Line *findLine(Addr p_line);
    const Line *findLine(Addr p_line) const;
    MshrEntry *findMshr(Addr p_line);
    MshrEntry *allocMshr();

    /** Return an MSHR entry to the free list (waiters must be empty or
     *  already swapped out; capacity is retained for reuse). */
    void releaseMshr(MshrEntry *e);

    /** Wake the entry's waiters after releasing it, allocation-free. */
    void releaseAndWake(MshrEntry *e);

    void notifyAccess(const Prefetcher::AccessInfo &info);
    void notifyFill(const Prefetcher::FillInfo &info);

    void processWrites();
    void processReads();
    void processPrefetches();
    void retryUnsentMshrs();

    /** Handle one RQ entry; returns false if it must stay queued. */
    bool handleRead(MemRequest &req);

    /** Handle one PQ entry; returns false if it must stay queued. */
    bool handlePrefetch(MemRequest &req);

    /** Install a line; returns the installed way's Line. */
    Line &fillLine(Addr p_line, Addr v_line, bool dirty, bool prefetched);

    bool isDemand(AccessType t) const
    {
        return t == AccessType::Load || t == AccessType::Rfo ||
               t == AccessType::InstrFetch || t == AccessType::Translation;
    }

    friend class verify::SimAuditor;

    CacheConfig cfg;
    const Cycle *clock;
    MemLevel *lower = nullptr;
    TranslationUnit *translation = nullptr;
    verify::FaultInjector *faults = nullptr;
    obs::PrefetchEventTrace *ptrace = nullptr;
    std::unique_ptr<obs::Histogram> fillLatencyHist;
    std::unique_ptr<Prefetcher> pf;
    std::unique_ptr<ReplPolicy> repl;

    // Triggering access of the prefetcher hook currently running, used
    // to classify synchronously issued prefetches (cross-page counting
    // and event-trace attribution).
    Addr trainVLine = kNoAddr;
    Addr trainIp = 0;

    // Victim info of the most recent fillLine, consumed by readDone to
    // populate the prefetcher's FillInfo.
    Addr lastEvictedPLine = kNoAddr;
    bool lastEvictedUnusedPf = false;

    std::vector<Line> lines;         //!< sets * ways
    std::vector<MshrEntry> mshr;
    std::vector<unsigned> mshrFree;  //!< free-list of mshr[] indices
    unsigned mshrUsed = 0;
    unsigned unsentMshrs = 0;        //!< valid entries with !sentBelow
    PfDispatch pfDispatch = PfDispatch::None;
    RingQueue<MemRequest> rq;
    RingQueue<MemRequest> pq;
    RingQueue<Addr> wq;
    std::vector<MemRequest> wakeScratch;  //!< readDone waiter staging
};

} // namespace berti

#endif // BERTI_MEM_CACHE_HH
