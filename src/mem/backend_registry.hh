/**
 * @file
 * Memory-backend registry: named timing models resolved from a spec
 * string, the way prefetchers resolve through prefetch/registry.hh.
 *
 * Grammar (parsed with the shared paren-aware splitter of
 * sim/spec_parse.hh, like every other spec in the harness):
 *
 *   dram:<model>[;key=value]...
 *
 * Models: ddr4 (the historical single-channel timings — the default,
 * bit-identical to the pre-refactor goldens), ddr5 (more banks, higher
 * data rate, slightly slower absolute timings), lpddr5 (half-width
 * bus, slow timings, long link — the mobile latency corner) and hbm
 * (8 line-interleaved channels of a narrow-per-channel, moderate-rate
 * stack — the bandwidth corner). Options: sched=frfcfs|fcfs,
 * cap=N (FR-FCFS starvation cap, 0 = unbounded), channels=N, mtps=N,
 * banks=N. Unknown models, families, option keys or malformed values
 * throw verify::SimError(ErrorKind::Config) naming the offending
 * string.
 *
 * Canonicalization: canonicalBackendSpec() renders the model name plus
 * only the non-default options in a fixed order, so equivalent spec
 * strings ("", "dram:ddr4", "dram:ddr4;sched=frfcfs") share one
 * canonical form — the form harness::paramsFingerprint folds into
 * result-store keys (only when it differs from the default, keeping
 * every historical key stable).
 */

#ifndef BERTI_MEM_BACKEND_REGISTRY_HH
#define BERTI_MEM_BACKEND_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/backend.hh"
#include "mem/dram.hh"

namespace berti::mem
{

/** The canonical default backend spec (and what "" resolves to). */
inline constexpr const char *kDefaultBackendSpec = "dram:ddr4";

/**
 * Which model built the backend and how many channels it has; the
 * per-channel timing/geometry lives in a DramConfig next to it
 * (MachineConfig keeps both so tests can still poke DramConfig fields
 * directly on single-channel machines).
 */
struct BackendSel
{
    std::string model = "ddr4";
    unsigned channels = 1;
};

/** A fully resolved backend spec. */
struct ParsedBackend
{
    BackendSel sel;
    DramConfig channel;     //!< validated per-channel config
    std::string canonical;  //!< e.g. "dram:ddr4", "dram:hbm;sched=fcfs"
};

/**
 * Parse and validate a backend spec string ("" means the default,
 * dram:ddr4). Throws verify::SimError(ErrorKind::Config) naming the
 * offending string on unknown models/options or malformed/degenerate
 * values (the resolved config is DramConfig::validate()d here, so a
 * bad spec fails at parse time, not mid-build).
 */
ParsedBackend parseBackendSpec(const std::string &spec);

/** parseBackendSpec(spec).canonical. */
std::string canonicalBackendSpec(const std::string &spec);

/** Registered model names, in presentation order. */
std::vector<std::string> knownBackendModels();

/**
 * Build the backend a parse selected: one Dram for a single channel,
 * a line-interleaved MultiChannelDram otherwise. Zero channels throws
 * verify::SimError(ErrorKind::Config).
 */
std::unique_ptr<MemBackend> makeMemBackend(const BackendSel &sel,
                                           const DramConfig &channel,
                                           const Cycle *clock);

} // namespace berti::mem

#endif // BERTI_MEM_BACKEND_REGISTRY_HH
