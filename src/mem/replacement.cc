#include "mem/replacement.hh"

namespace berti
{

namespace
{

// Checkpoint helpers: length-prefixed stamp/rrpv arrays, with the count
// cross-checked against the live geometry so a checkpoint taken on a
// differently shaped cache fails typed instead of corrupting state.
template <typename T>
void
saveArray(sim::ByteWriter &w, const std::vector<T> &v)
{
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const T &x : v)
        w.u64(static_cast<std::uint64_t>(x));
}

template <typename T>
void
loadArray(sim::ByteReader &r, std::vector<T> &v, const char *what)
{
    std::uint32_t n = r.u32();
    if (n != v.size()) {
        r.fail(std::string(what) + " size " + std::to_string(n) +
               " does not match the live policy's " +
               std::to_string(v.size()));
    }
    for (T &x : v)
        x = static_cast<T>(r.u64());
}

} // namespace

std::unique_ptr<ReplPolicy>
makeReplPolicy(ReplKind kind, unsigned sets, unsigned ways)
{
    switch (kind) {
      case ReplKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplKind::Srrip:
        return std::make_unique<SrripPolicy>(sets, ways);
      case ReplKind::Drrip:
        return std::make_unique<DrripPolicy>(sets, ways);
    }
    return nullptr;
}

// ------------------------------------------------------------------ LRU

LruPolicy::LruPolicy(unsigned sets, unsigned ways)
    : ways(ways), stamp(static_cast<std::size_t>(sets) * ways, 0)
{}

void
LruPolicy::touch(unsigned set, unsigned way)
{
    stamp[static_cast<std::size_t>(set) * ways + way] = ++tick;
}

unsigned
LruPolicy::victim(unsigned set)
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    unsigned best = 0;
    for (unsigned w = 1; w < ways; ++w) {
        if (stamp[base + w] < stamp[base + best])
            best = w;
    }
    return best;
}

void
LruPolicy::onHit(unsigned set, unsigned way)
{
    touch(set, way);
}

void
LruPolicy::onFill(unsigned set, unsigned way, bool)
{
    touch(set, way);
}

void
LruPolicy::saveState(sim::ByteWriter &w) const
{
    w.u64(tick);
    saveArray(w, stamp);
}

void
LruPolicy::loadState(sim::ByteReader &r)
{
    tick = r.u64();
    loadArray(r, stamp, "lru stamp array");
}

// ----------------------------------------------------------------- FIFO

FifoPolicy::FifoPolicy(unsigned sets, unsigned ways)
    : ways(ways), stamp(static_cast<std::size_t>(sets) * ways, 0)
{}

unsigned
FifoPolicy::victim(unsigned set)
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    unsigned best = 0;
    for (unsigned w = 1; w < ways; ++w) {
        if (stamp[base + w] < stamp[base + best])
            best = w;
    }
    return best;
}

void
FifoPolicy::onHit(unsigned, unsigned)
{
    // FIFO ignores reuse.
}

void
FifoPolicy::onFill(unsigned set, unsigned way, bool)
{
    stamp[static_cast<std::size_t>(set) * ways + way] = ++tick;
}

void
FifoPolicy::saveState(sim::ByteWriter &w) const
{
    w.u64(tick);
    saveArray(w, stamp);
}

void
FifoPolicy::loadState(sim::ByteReader &r)
{
    tick = r.u64();
    loadArray(r, stamp, "fifo stamp array");
}

// ---------------------------------------------------------------- SRRIP

SrripPolicy::SrripPolicy(unsigned sets, unsigned ways)
    : ways(ways),
      rrpv(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
{}

unsigned
SrripPolicy::victim(unsigned set)
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    for (;;) {
        for (unsigned w = 0; w < ways; ++w) {
            if (rrpv[base + w] == kMaxRrpv)
                return w;
        }
        for (unsigned w = 0; w < ways; ++w)
            ++rrpv[base + w];
    }
}

void
SrripPolicy::onHit(unsigned set, unsigned way)
{
    rrpv[static_cast<std::size_t>(set) * ways + way] = 0;
}

void
SrripPolicy::onFill(unsigned set, unsigned way, bool)
{
    rrpv[static_cast<std::size_t>(set) * ways + way] = kMaxRrpv - 1;
}

void
SrripPolicy::saveState(sim::ByteWriter &w) const
{
    saveArray(w, rrpv);
}

void
SrripPolicy::loadState(sim::ByteReader &r)
{
    loadArray(r, rrpv, "srrip rrpv array");
}

// ---------------------------------------------------------------- DRRIP

DrripPolicy::DrripPolicy(unsigned sets, unsigned ways)
    : SrripPolicy(sets, ways), sets(sets)
{}

DrripPolicy::SetRole
DrripPolicy::role(unsigned set) const
{
    // 32 leader sets of each flavour, spread through the index space.
    unsigned spacing = sets >= 64 ? sets / 64 : 1;
    if (set % spacing == 0) {
        unsigned leader = set / spacing;
        if (leader < 32)
            return leader % 2 == 0 ? SetRole::SrripLeader
                                   : SetRole::BrripLeader;
    }
    return SetRole::Follower;
}

void
DrripPolicy::onFill(unsigned set, unsigned way, bool prefetch)
{
    SetRole r = role(set);
    bool use_brrip;
    switch (r) {
      case SetRole::SrripLeader:
        // A fill here is a miss under SRRIP: evidence against SRRIP.
        use_brrip = false;
        psel = psel < 1023 ? psel + 1 : psel;
        break;
      case SetRole::BrripLeader:
        // A fill here is a miss under BRRIP: evidence against BRRIP.
        use_brrip = true;
        psel = psel > -1024 ? psel - 1 : psel;
        break;
      case SetRole::Follower:
      default:
        use_brrip = psel > 0;
        break;
    }
    std::size_t idx =
        static_cast<std::size_t>(set) * ways + way;
    if (use_brrip) {
        // Bimodal: distant insertion except 1-in-32 fills.
        rrpv[idx] = (++bipCounter % 32 == 0) ? kMaxRrpv - 1 : kMaxRrpv;
    } else {
        rrpv[idx] = kMaxRrpv - 1;
    }
    (void)prefetch;
}

void
DrripPolicy::saveState(sim::ByteWriter &w) const
{
    SrripPolicy::saveState(w);
    w.i64(psel);
    w.u32(bipCounter);
}

void
DrripPolicy::loadState(sim::ByteReader &r)
{
    SrripPolicy::loadState(r);
    psel = static_cast<int>(r.i64());
    bipCounter = r.u32();
}

} // namespace berti
