/**
 * @file
 * Line-interleaved multi-channel memory backend: N independent Dram
 * channels behind one MemBackend surface. Consecutive lines round-robin
 * across channels (pLine % N), so streams exploit channel-level
 * parallelism while a 4 KB row's lines still map to one row per
 * channel (row hits survive the interleave). This is the HBM-class
 * model's composition layer in mem/backend_registry.hh.
 */

#ifndef BERTI_MEM_MULTICHANNEL_HH
#define BERTI_MEM_MULTICHANNEL_HH

#include <memory>
#include <vector>

#include "mem/backend.hh"
#include "mem/dram.hh"

namespace berti::mem
{

class MultiChannelDram : public MemBackend
{
  public:
    /** `channels` identical per-channel configs; throws
     *  verify::SimError(ErrorKind::Config) when channels == 0 (each
     *  channel's config is validated by the Dram constructor). */
    MultiChannelDram(const DramConfig &per_channel, unsigned channels,
                     const Cycle *clock);

    bool submitRead(MemRequest req) override;
    void submitWriteback(Addr p_line) override;

    void tick() override;
    Cycle nextEventCycle() const override;

    DramStats statsSnapshot() const override;
    std::size_t pendingReads() const override;
    std::size_t rqOccupancy() const override;
    std::size_t wqOccupancy() const override;

    void setFaultInjector(verify::FaultInjector *injector) override;

    /** Per-channel counters under "<prefix>ch<N>." plus aggregate
     *  "<prefix>reads"/"writes"/"row_hit_rate"/"avg_read_latency"
     *  gauges, so dashboards keyed on the single-channel names keep
     *  working against multi-channel machines. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) override;

    void saveState(sim::ByteWriter &w,
                   const sim::PtrMap &clients) const override;
    void loadState(sim::ByteReader &r,
                   const sim::PtrMap &clients) override;

    std::string auditViolation() const override;
    std::string name() const override;

    unsigned channelCount() const
    {
        return static_cast<unsigned>(channels.size());
    }

  private:
    Dram &channelOf(Addr p_line)
    {
        return *channels[p_line % channels.size()];
    }

    std::vector<std::unique_ptr<Dram>> channels;
};

} // namespace berti::mem

#endif // BERTI_MEM_MULTICHANNEL_HH
