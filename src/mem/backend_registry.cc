#include "mem/backend_registry.hh"

#include "mem/multichannel.hh"
#include "sim/spec_parse.hh"
#include "verify/sim_error.hh"

namespace berti::mem
{

namespace
{

constexpr const char *kComponent = "mem-backend";

[[noreturn]] void
reject(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, kComponent, reason);
}

struct Preset
{
    const char *model;
    unsigned channels;
    DramConfig config;
};

/**
 * The model table. ddr4 is DramConfig's defaults verbatim — the
 * pre-refactor machine — so the default backend is bit-identical to
 * every historical golden. The others move along the two axes the
 * paper's timeliness argument cares about: absolute latency (lpddr5
 * up, hbm/ddr5 modestly) and bandwidth (ddr5 via data rate, hbm via
 * channel parallelism, lpddr5 down via a half-width bus).
 */
const std::vector<Preset> &
presets()
{
    static const std::vector<Preset> table = [] {
        std::vector<Preset> t;

        // ddr4: the historical timings, exactly.
        t.push_back({"ddr4", 1, DramConfig{}});

        // ddr5: twice the banks, a 50% higher data rate, slightly
        // higher absolute core-cycle timings (DDR5 CAS in ns barely
        // moved while the clock rose).
        {
            DramConfig c;
            c.banks = 32;
            c.tRp = 54;
            c.tRcd = 54;
            c.tCas = 54;
            c.mtps = 9600;
            t.push_back({"ddr5", 1, c});
        }

        // lpddr5: mobile corner — half-width bus, slow array timings,
        // longer off-chip link. Same nominal data rate per pin as
        // ddr4, half the bytes per transfer.
        {
            DramConfig c;
            c.tRp = 72;
            c.tRcd = 72;
            c.tCas = 72;
            c.mtps = 6400;
            c.busBytes = 4;
            c.linkLatency = 160;
            t.push_back({"lpddr5", 1, c});
        }

        // hbm: bandwidth corner — 8 line-interleaved channels, each a
        // wide, moderately clocked interface with small per-channel
        // queues and a short link (the stack sits on the interposer).
        {
            DramConfig c;
            c.banks = 32;
            c.rqSize = 32;
            c.wqSize = 32;
            c.tRp = 56;
            c.tRcd = 56;
            c.tCas = 56;
            c.mtps = 2000;
            c.busBytes = 16;
            c.linkLatency = 100;
            t.push_back({"hbm", 8, c});
        }
        return t;
    }();
    return table;
}

const Preset &
findPreset(const std::string &model, const std::string &spec)
{
    for (const Preset &p : presets()) {
        if (model == p.model)
            return p;
    }
    std::string known;
    for (const Preset &p : presets())
        known += std::string(known.empty() ? "" : ", ") + p.model;
    reject("unknown memory backend model \"" + model + "\" in spec \"" +
           spec + "\" (known models: " + known + ")");
}

/** Non-default options rendered in a fixed order after the model. */
std::string
canonicalOf(const ParsedBackend &b, const Preset &preset)
{
    std::string canon = "dram:" + b.sel.model;
    if (b.channel.sched == DramSchedKind::Fcfs)
        canon += ";sched=fcfs";
    if (b.channel.starvationCap != 0)
        canon += ";cap=" + std::to_string(b.channel.starvationCap);
    if (b.sel.channels != preset.channels)
        canon += ";channels=" + std::to_string(b.sel.channels);
    if (b.channel.mtps != preset.config.mtps)
        canon += ";mtps=" + std::to_string(b.channel.mtps);
    if (b.channel.banks != preset.config.banks)
        canon += ";banks=" + std::to_string(b.channel.banks);
    return canon;
}

} // namespace

ParsedBackend
parseBackendSpec(const std::string &spec_in)
{
    const std::string spec =
        spec_in.empty() ? std::string(kDefaultBackendSpec) : spec_in;

    std::size_t semi = sim::findTopLevel(spec, ';');
    std::string head =
        semi == std::string::npos ? spec : spec.substr(0, semi);
    std::string opts =
        semi == std::string::npos ? std::string() : spec.substr(semi + 1);

    std::size_t colon = head.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= head.size()) {
        reject("memory backend spec \"" + spec +
               "\" is malformed (expected dram:<model>[;key=value...])");
    }
    std::string family = head.substr(0, colon);
    std::string model = head.substr(colon + 1);
    if (family != "dram") {
        reject("unknown memory backend family \"" + family +
               "\" in spec \"" + spec + "\" (known families: dram)");
    }

    const Preset &preset = findPreset(model, spec);
    ParsedBackend out;
    out.sel.model = model;
    out.sel.channels = preset.channels;
    out.channel = preset.config;

    for (const sim::SpecOption &o :
         sim::parseSpecOptions(opts, kComponent)) {
        if (o.key == "sched") {
            if (o.value == "frfcfs") {
                out.channel.sched = DramSchedKind::FrFcfs;
            } else if (o.value == "fcfs") {
                out.channel.sched = DramSchedKind::Fcfs;
            } else {
                reject("sched=\"" + o.value + "\" in spec \"" + spec +
                       "\" is not a scheduler (frfcfs or fcfs)");
            }
        } else if (o.key == "cap") {
            out.channel.starvationCap = static_cast<unsigned>(
                sim::parseSpecUnsigned(o.key, o.value, kComponent,
                                       /*zero_ok=*/true));
        } else if (o.key == "channels") {
            out.sel.channels = static_cast<unsigned>(
                sim::parseSpecUnsigned(o.key, o.value, kComponent));
        } else if (o.key == "mtps") {
            out.channel.mtps = static_cast<unsigned>(
                sim::parseSpecUnsigned(o.key, o.value, kComponent));
        } else if (o.key == "banks") {
            out.channel.banks = static_cast<unsigned>(
                sim::parseSpecUnsigned(o.key, o.value, kComponent));
        } else {
            reject("unknown option \"" + o.key + "\" in spec \"" + spec +
                   "\" (known: sched, cap, channels, mtps, banks)");
        }
    }

    // Degenerate option combinations (e.g. an mtps so high the burst
    // rounds to zero) fail here, typed, at parse time.
    out.channel.validate();
    out.canonical = canonicalOf(out, preset);
    return out;
}

std::string
canonicalBackendSpec(const std::string &spec)
{
    return parseBackendSpec(spec).canonical;
}

std::vector<std::string>
knownBackendModels()
{
    std::vector<std::string> out;
    for (const Preset &p : presets())
        out.push_back(p.model);
    return out;
}

std::unique_ptr<MemBackend>
makeMemBackend(const BackendSel &sel, const DramConfig &channel,
               const Cycle *clock)
{
    if (sel.channels == 0)
        reject("backend \"" + sel.model + "\" has zero channels");
    if (sel.channels == 1)
        return std::make_unique<Dram>(channel, clock);
    return std::make_unique<MultiChannelDram>(channel, sel.channels,
                                              clock);
}

} // namespace berti::mem
