#include "mem/cache.hh"

#include <algorithm>

#include "core/berti.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"
#include "vm/tlb.hh"

namespace berti
{

namespace
{

/** Always-on structural validation; throws instead of asserting. */
void
validateCacheConfig(const CacheConfig &cfg)
{
    auto reject = [&cfg](const std::string &reason) {
        throw verify::SimError(verify::ErrorKind::Config, cfg.name,
                               reason);
    };
    if (cfg.sets == 0 || cfg.ways == 0)
        reject("cache geometry requires sets > 0 and ways > 0");
    if (cfg.mshrs == 0)
        reject("at least one MSHR is required");
    if (cfg.rqSize == 0)
        reject("read queue size must be positive");
    if (cfg.maxReadsPerCycle == 0 || cfg.maxWritesPerCycle == 0)
        reject("per-cycle read/write bandwidth must be positive");
}

} // namespace

Cache::Cache(const CacheConfig &config, const Cycle *clock_ptr)
    : cfg(config), clock(clock_ptr),
      fillLatencyHist(
          std::make_unique<obs::Histogram>(obs::Histogram::log2())),
      pf(std::make_unique<NoPrefetcher>()),
      repl(makeReplPolicy(cfg.repl, cfg.sets, cfg.ways)),
      lines(static_cast<std::size_t>(cfg.sets) * cfg.ways),
      mshr(cfg.mshrs)
{
    validateCacheConfig(cfg);
    pf->bind(this);

    // Steady-state allocation-free hot path: every queue, the MSHR
    // free-list and the waiter-wake scratch are sized up front. The
    // write queue is soft-capacity (submitWriteback never refuses), so
    // it reserves headroom and only reallocates under burst pressure.
    rq.reserve(cfg.rqSize);
    pq.reserve(cfg.pqSize ? cfg.pqSize : 1);
    wq.reserve(2 * static_cast<std::size_t>(cfg.wqSize) + 8);
    mshrFree.reserve(cfg.mshrs);
    for (unsigned i = cfg.mshrs; i-- > 0;)
        mshrFree.push_back(i);
    wakeScratch.reserve(8);
    for (auto &e : mshr)
        e.waiters.reserve(8);
}

Cache::~Cache() = default;

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> prefetcher)
{
    pf = prefetcher ? std::move(prefetcher)
                    : std::make_unique<NoPrefetcher>();
    pf->bind(this);

    // Resolve the dispatch mode once: the per-access hooks then either
    // skip the call (no prefetcher) or call BertiPrefetcher (a final
    // class) directly instead of through the vtable.
    if (dynamic_cast<NoPrefetcher *>(pf.get()))
        pfDispatch = PfDispatch::None;
    else if (dynamic_cast<BertiPrefetcher *>(pf.get()))
        pfDispatch = PfDispatch::Berti;
    else
        pfDispatch = PfDispatch::Virtual;
}

void
Cache::notifyAccess(const Prefetcher::AccessInfo &info)
{
    switch (pfDispatch) {
      case PfDispatch::None:
        break;
      case PfDispatch::Berti:
        static_cast<BertiPrefetcher &>(*pf).onAccess(info);
        break;
      case PfDispatch::Virtual:
        pf->onAccess(info);
        break;
    }
}

void
Cache::notifyFill(const Prefetcher::FillInfo &info)
{
    switch (pfDispatch) {
      case PfDispatch::None:
        break;
      case PfDispatch::Berti:
        static_cast<BertiPrefetcher &>(*pf).onFill(info);
        break;
      case PfDispatch::Virtual:
        pf->onFill(info);
        break;
    }
}

void
Cache::registerMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix)
{
    forEachStatField(stats, [&registry, &prefix](const char *name,
                                                 std::uint64_t &cell) {
        registry.counter(prefix + name, &cell);
    });
    registry.gauge(prefix + "accuracy",
                   [this] { return stats.accuracy(); });
    registry.gauge(prefix + "mshr_occupancy",
                   [this] { return mshrOccupancy(); });
    registry.histogram(prefix + "fill_latency", fillLatencyHist.get());
    pf->registerMetrics(registry, prefix + "pf.");
}

void
Cache::validateWiring() const
{
    if (cfg.isL1d && !translation &&
        dynamic_cast<const NoPrefetcher *>(pf.get()) == nullptr) {
        throw verify::SimError(
            verify::ErrorKind::Config, cfg.name,
            "an L1D with a prefetcher needs a TLB to translate virtual "
            "prefetch addresses (setTranslation was never called)");
    }
    if (!lower) {
        throw verify::SimError(verify::ErrorKind::Config, cfg.name,
                               "no lower level attached (setLower was "
                               "never called)");
    }
}

std::vector<Cache::MshrView>
Cache::mshrSnapshot() const
{
    std::vector<MshrView> out;
    out.reserve(mshrUsed);
    for (const auto &e : mshr) {
        if (!e.valid)
            continue;
        MshrView v;
        v.pLine = e.pLine;
        v.isPrefetch = e.isPrefetch;
        v.hadDemand = e.hadDemand;
        v.sentBelow = e.sentBelow;
        v.age = *clock >= e.ts ? *clock - e.ts : 0;
        out.push_back(v);
    }
    return out;
}

Cache::Line *
Cache::findLine(Addr p_line)
{
    std::size_t base = static_cast<std::size_t>(setIndex(p_line)) * cfg.ways;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (lines[base + w].valid && lines[base + w].pLine == p_line)
            return &lines[base + w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr p_line) const
{
    return const_cast<Cache *>(this)->findLine(p_line);
}

Cache::MshrEntry *
Cache::findMshr(Addr p_line)
{
    for (auto &e : mshr) {
        if (e.valid && e.pLine == p_line)
            return &e;
    }
    return nullptr;
}

Cache::MshrEntry *
Cache::allocMshr()
{
    if (mshrFree.empty())
        return nullptr;
    MshrEntry &e = mshr[mshrFree.back()];
    mshrFree.pop_back();
    // Field-wise reset instead of `e = MshrEntry{}` so the waiters
    // vector keeps its capacity across reuse (allocation-free arena).
    e.pLine = kNoAddr;
    e.vLine = kNoAddr;
    e.ip = 0;
    e.isPrefetch = false;
    e.hadDemand = false;
    e.wantsDirty = false;
    e.fillLevel = FillLevel::L1;
    e.ts = 0;
    e.sentBelow = false;
    e.fwd = MemRequest{};
    e.waiters.clear();
    e.valid = true;
    ++mshrUsed;
    return &e;
}

void
Cache::releaseMshr(MshrEntry *e)
{
    if (!e->sentBelow)
        --unsentMshrs;
    e->valid = false;
    --mshrUsed;
    mshrFree.push_back(static_cast<unsigned>(e - mshr.data()));
}

void
Cache::releaseAndWake(MshrEntry *e)
{
    // Stage the waiters in the member scratch so waking them does not
    // allocate. Wakes never re-enter this cache's readDone (clients are
    // strictly upper levels / cores), so one scratch suffices.
    wakeScratch.swap(e->waiters);
    releaseMshr(e);
    for (auto &w : wakeScratch) {
        if (w.client)
            w.client->readDone(w);
    }
    wakeScratch.clear();
}

bool
Cache::submitRead(MemRequest req)
{
    if (rq.size() >= cfg.rqSize)
        return false;
    req.enqueueCycle = *clock;
    rq.push_back(req);
    return true;
}

void
Cache::submitWriteback(Addr p_line)
{
    // Soft capacity: writebacks are never refused to keep the fill path
    // deadlock-free; sizes beyond wqSize only happen in short bursts.
    wq.push_back(p_line);
}

bool
Cache::issuePrefetch(Addr line_addr, FillLevel level)
{
    MemRequest req;
    req.type = AccessType::Prefetch;
    req.fillLevel = level;
    req.enqueueCycle = *clock;

    // Deduplicate against in-flight prefetch-queue entries before even
    // translating (ChampSim merges same-address PQ inserts the same way).
    for (const auto &queued : pq) {
        if ((cfg.isL1d ? queued.vLine : queued.pLine) == line_addr)
            return true;
    }

    if (cfg.isL1d) {
        // Virtual request: translate through the STLB; drop on miss.
        req.vLine = line_addr;
        Addr paddr = 0;
        if (!translation) {
            // Mis-wired configuration: validated at machine construction
            // (validateWiring), but a hand-built Cache can still reach
            // here — fail with a typed error, never UB.
            throw verify::SimError(
                verify::ErrorKind::Config, cfg.name,
                "L1D prefetching requires a TLB (setTranslation was "
                "never called)");
        }
        if (!translation->prefetchTranslate(lineToByte(line_addr), paddr)) {
            ++stats.prefetchDroppedTlb;
            if (ptrace) {
                ptrace->record(*clock, obs::PfEvent::DropTlb, line_addr,
                               trainIp);
            }
            return false;
        }
        req.pLine = lineAddr(paddr);
    } else {
        req.pLine = line_addr;
    }

    if (pq.size() >= cfg.pqSize) {
        ++stats.prefetchDroppedFull;
        if (ptrace) {
            ptrace->record(*clock, obs::PfEvent::DropFull, line_addr,
                           trainIp);
        }
        return false;
    }
    pq.push_back(req);
    ++stats.prefetchIssued;

    // Classify against the access that (synchronously) triggered this
    // prefetch: a target on another 4 KB page is the cross-page regime
    // Berti's section IV-J ablates. Prefetchers that issue from tick()
    // have no live trigger and are left unclassified.
    if (trainVLine != kNoAddr &&
        (line_addr >> (kPageBits - kLineBits)) !=
            (trainVLine >> (kPageBits - kLineBits))) {
        ++stats.prefetchCrossPage;
        if (ptrace) {
            ptrace->record(*clock, obs::PfEvent::CrossPage, line_addr,
                           trainIp);
        }
    }
    if (ptrace)
        ptrace->record(*clock, obs::PfEvent::Issue, line_addr, trainIp);
    return true;
}

double
Cache::mshrOccupancy() const
{
    return static_cast<double>(mshrUsed) / static_cast<double>(cfg.mshrs);
}

bool
Cache::fastHit(Addr p_line)
{
    Line *l = findLine(p_line);
    if (!l)
        return false;
    ++stats.demandAccesses;
    ++stats.demandHits;
    ++stats.tagReads;
    ++stats.dataReads;
    Prefetcher::AccessInfo info;
    info.pLine = p_line;
    info.vLine = l->vLine;
    info.type = AccessType::InstrFetch;
    info.hit = true;
    if (l->prefetched && !l->pfUsed) {
        l->pfUsed = true;
        ++stats.prefetchUseful;
        info.firstHitOnPrefetch = true;
        if (ptrace)
            ptrace->record(*clock, obs::PfEvent::Useful, p_line, 0);
    }
    repl->onHit(setIndex(p_line),
                static_cast<unsigned>((l - lines.data()) % cfg.ways));
    if (cfg.trainOnInstrFetch) {
        trainVLine = cfg.isL1d ? info.vLine : info.pLine;
        trainIp = info.ip;
        notifyAccess(info);
        trainVLine = kNoAddr;
        trainIp = 0;
    }
    return true;
}

bool
Cache::probe(Addr p_line) const
{
    return findLine(p_line) != nullptr;
}

bool
Cache::probeDirty(Addr p_line) const
{
    const Line *l = findLine(p_line);
    return l && l->dirty;
}

void
Cache::tick()
{
    processWrites();
    processReads();
    processPrefetches();
    retryUnsentMshrs();
    // Prefetcher tick, devirtualized like the hooks. Prefetcher::tick
    // is contractually event-driven-safe (no timed work while the cache
    // is idle — see prefetcher.hh), which is what lets nextEventCycle()
    // ignore it.
    if (pfDispatch == PfDispatch::Virtual)
        pf->tick();
}

Cycle
Cache::nextEventCycle() const
{
    // Pending writes and unsent MSHR retries are attempted every cycle.
    if (!wq.empty() || unsentMshrs > 0)
        return *clock + 1;
    Cycle next = kNever;
    // Reads/prefetches are head-of-line: only the head's maturity
    // (enqueue + lookup latency) gates progress.
    if (!rq.empty()) {
        Cycle due = rq.front().enqueueCycle + cfg.latency;
        next = std::min(next, std::max(due, *clock + 1));
    }
    if (!pq.empty()) {
        Cycle due = pq.front().enqueueCycle + cfg.latency;
        next = std::min(next, std::max(due, *clock + 1));
    }
    return next;
}

void
Cache::processWrites()
{
    for (unsigned n = 0; n < cfg.maxWritesPerCycle && !wq.empty(); ++n) {
        Addr p_line = wq.front();
        wq.pop_front();
        ++stats.tagReads;
        if (Line *l = findLine(p_line)) {
            l->dirty = true;
            ++stats.dataWrites;
            repl->onHit(setIndex(p_line),
                        static_cast<unsigned>(
                            (l - lines.data()) % cfg.ways));
        } else {
            // Non-inclusive write-allocate: the upper level evicted a
            // full dirty line, install it here without fetching below.
            fillLine(p_line, kNoAddr, true, false);
        }
    }
}

void
Cache::processReads()
{
    unsigned done = 0;
    while (done < cfg.maxReadsPerCycle && !rq.empty()) {
        MemRequest &req = rq.front();
        if (req.enqueueCycle + cfg.latency > *clock)
            break;  // models the tag/data lookup latency
        if (!handleRead(req))
            break;  // head-of-line blocking on MSHR/lower pressure
        rq.pop_front();
        ++done;
    }
}

void
Cache::processPrefetches()
{
    unsigned done = 0;
    while (done < cfg.maxPrefetchesPerCycle && !pq.empty()) {
        MemRequest &req = pq.front();
        if (req.enqueueCycle + cfg.latency > *clock)
            break;
        if (!handlePrefetch(req))
            break;
        pq.pop_front();
        ++done;
    }
}

bool
Cache::handleRead(MemRequest &req)
{
    // NOTE: statistics are counted only on success exits; a false
    // return re-presents the same request next cycle (head-of-line
    // blocking) and must be side-effect free.
    bool demand = isDemand(req.type);

    if (Line *l = findLine(req.pLine)) {
        // ------------------------------------------------------- hit
        ++stats.tagReads;
        unsigned way = static_cast<unsigned>((l - lines.data()) % cfg.ways);
        repl->onHit(setIndex(req.pLine), way);
        if (demand) {
            ++stats.demandAccesses;
            ++stats.demandHits;
            if (req.type == AccessType::Rfo) {
                l->dirty = true;
                ++stats.dataWrites;
            } else {
                ++stats.dataReads;
            }

            Prefetcher::AccessInfo info;
            info.vLine = l->vLine != kNoAddr ? l->vLine : req.vLine;
            info.pLine = req.pLine;
            info.ip = req.ip;
            info.type = req.type;
            info.hit = true;
            if (l->prefetched && !l->pfUsed) {
                l->pfUsed = true;
                ++stats.prefetchUseful;
                info.firstHitOnPrefetch = true;
                info.prefetchLatency = l->pfLatency;
                l->pfLatency = 0;  // reset after the training search
                if (ptrace) {
                    ptrace->record(*clock, obs::PfEvent::Useful,
                                   req.pLine, req.ip);
                }
            }
            if (req.type == AccessType::Load ||
                req.type == AccessType::Rfo ||
                (cfg.trainOnInstrFetch &&
                 req.type == AccessType::InstrFetch)) {
                trainVLine = cfg.isL1d ? info.vLine : info.pLine;
                trainIp = info.ip;
                notifyAccess(info);
                trainVLine = kNoAddr;
                trainIp = 0;
            }
        } else {
            // An in-flight prefetch from above found the line here.
            ++stats.dataReads;
        }
        if (req.client)
            req.client->readDone(req);
        return true;
    }

    // ----------------------------------------------------------- miss
    if (req.type == AccessType::Prefetch &&
        static_cast<unsigned>(req.fillLevel) > cfg.level) {
        // Fill target is below this level: pass through without MSHR.
        MemRequest fwd = req;
        fwd.client = nullptr;
        if (!lower->submitRead(fwd))
            return false;
        ++stats.tagReads;
        ++stats.requestsBelow;
        return true;
    }

    if (MshrEntry *e = findMshr(req.pLine)) {
        // Merge into the outstanding miss.
        // Merges count as accesses but not as extra misses: the miss is
        // attributed once, to the MSHR-allocating access (ChampSim
        // merges same-line requests in the queues the same way).
        ++stats.tagReads;
        if (demand) {
            ++stats.demandAccesses;
            ++stats.demandMshrMerged;
            if (e->isPrefetch && !e->hadDemand) {
                ++stats.prefetchLate;
                e->ip = req.ip;
                e->vLine = req.vLine;
                if (ptrace) {
                    ptrace->record(*clock, obs::PfEvent::Late,
                                   req.pLine, req.ip);
                }
            }
            e->hadDemand = true;
            if (req.type == AccessType::Rfo)
                e->wantsDirty = true;
        }
        if (req.client || req.instrId)
            e->waiters.push_back(req);
        // No prefetcher hook for merges: ChampSim coalesces same-line
        // demands in the read queue, so the prefetcher observes one
        // training event per missing line, not one per load.
        return true;
    }

    MshrEntry *e = allocMshr();
    if (!e) {
        // Ownerless in-flight prefetches (nobody above waits on them)
        // are demoted below instead of head-of-line blocking the RQ.
        if (req.type == AccessType::Prefetch && !req.client &&
            cfg.level < 3) {
            MemRequest fwd = req;
            fwd.fillLevel = static_cast<FillLevel>(cfg.level + 1);
            if (!lower->submitRead(fwd))
                return false;
            ++stats.tagReads;
            ++stats.requestsBelow;
            return true;
        }
        return false;  // retried next cycle
    }

    ++stats.tagReads;
    if (demand) {
        ++stats.demandAccesses;
        ++stats.demandMisses;
    }
    e->pLine = req.pLine;
    e->vLine = req.vLine;
    e->ip = req.ip;
    e->isPrefetch = req.type == AccessType::Prefetch;
    e->hadDemand = demand;
    e->wantsDirty = req.type == AccessType::Rfo;
    e->fillLevel = req.fillLevel;
    e->ts = e->isPrefetch ? req.enqueueCycle : *clock;
    if (req.client || req.instrId)
        e->waiters.push_back(req);

    MemRequest fwd = req;
    fwd.client = this;
    e->fwd = fwd;
    e->sentBelow = lower->submitRead(fwd);
    if (e->sentBelow)
        ++stats.requestsBelow;
    else
        ++unsentMshrs;

    if (demand && (req.type == AccessType::Load ||
                   req.type == AccessType::Rfo ||
                   (cfg.trainOnInstrFetch &&
                    req.type == AccessType::InstrFetch))) {
        Prefetcher::AccessInfo info;
        info.vLine = req.vLine;
        info.pLine = req.pLine;
        info.ip = req.ip;
        info.type = req.type;
        info.hit = false;
        trainVLine = cfg.isL1d ? info.vLine : info.pLine;
        trainIp = info.ip;
        notifyAccess(info);
        trainVLine = kNoAddr;
        trainIp = 0;
    }
    return true;
}

bool
Cache::handlePrefetch(MemRequest &req)
{
    if (findLine(req.pLine)) {
        ++stats.tagReads;
        return true;  // already present: drop silently
    }
    if (findMshr(req.pLine) && static_cast<unsigned>(req.fillLevel) <=
                                   cfg.level) {
        ++stats.tagReads;
        return true;  // already being fetched
    }

    if (static_cast<unsigned>(req.fillLevel) > cfg.level) {
        // e.g. Berti L2-fill prefetch issued from the L1D PQ: hand it to
        // the level below; it allocates its own MSHR there.
        MemRequest fwd = req;
        fwd.client = nullptr;
        if (!lower->submitRead(fwd))
            return false;
        ++stats.tagReads;
        ++stats.requestsBelow;
        return true;
    }

    MshrEntry *e = allocMshr();
    if (!e) {
        // MSHRs exhausted by demand misses. Rather than head-of-line
        // blocking the PQ behind demand pressure, demote the prefetch
        // one level (fill below instead) — the same orchestration idea
        // as Berti's MSHR-occupancy watermark.
        if (cfg.level >= 3)
            return false;
        MemRequest fwd = req;
        fwd.client = nullptr;
        fwd.fillLevel = static_cast<FillLevel>(cfg.level + 1);
        if (!lower->submitRead(fwd))
            return false;
        ++stats.tagReads;
        ++stats.requestsBelow;
        return true;
    }

    ++stats.tagReads;
    e->pLine = req.pLine;
    e->vLine = req.vLine;
    e->ip = req.ip;
    e->isPrefetch = true;
    e->fillLevel = req.fillLevel;
    e->ts = req.enqueueCycle;  // PQ-insert timestamp (paper section III-C)

    MemRequest fwd = req;
    fwd.client = this;
    e->fwd = fwd;
    e->sentBelow = lower->submitRead(fwd);
    if (e->sentBelow)
        ++stats.requestsBelow;
    else
        ++unsentMshrs;
    return true;
}

void
Cache::retryUnsentMshrs()
{
    if (unsentMshrs == 0)
        return;
    for (auto &e : mshr) {
        if (e.valid && !e.sentBelow) {
            e.sentBelow = lower->submitRead(e.fwd);
            if (e.sentBelow) {
                ++stats.requestsBelow;
                --unsentMshrs;
            }
        }
    }
}

Cache::Line &
Cache::fillLine(Addr p_line, Addr v_line, bool dirty, bool prefetched)
{
    unsigned set = setIndex(p_line);
    std::size_t base = static_cast<std::size_t>(set) * cfg.ways;

    // Prefer an invalid way.
    lastEvictedPLine = kNoAddr;
    lastEvictedUnusedPf = false;
    unsigned way = cfg.ways;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (!lines[base + w].valid) {
            way = w;
            break;
        }
    }
    if (way == cfg.ways) {
        way = repl->victim(set);
        Line &victim = lines[base + way];
        if (victim.dirty) {
            lower->submitWriteback(victim.pLine);
            ++stats.writebacks;
        }
        lastEvictedPLine = victim.pLine;
        if (victim.prefetched && !victim.pfUsed) {
            ++stats.prefetchUseless;
            lastEvictedUnusedPf = true;
        }
    }

    Line &l = lines[base + way];
    l.pLine = p_line;
    l.vLine = v_line;
    l.valid = true;
    l.dirty = dirty;
    l.prefetched = prefetched;
    l.pfUsed = false;
    l.pfLatency = 0;
    repl->onFill(set, way, prefetched);
    ++stats.fills;
    ++stats.tagWrites;
    ++stats.dataWrites;
    return l;
}

void
Cache::readDone(const MemRequest &req)
{
    MshrEntry *e = findMshr(req.pLine);
    if (!e)
        return;  // pass-through request; nothing waits here

    bool fill_prefetched = e->isPrefetch && !e->hadDemand;

    // Fault injection: a dropped pure-prefetch fill frees the MSHR and
    // wakes any upper-level prefetch clients without installing the
    // line — the prefetch is simply wasted. Demand fills never drop.
    if (fill_prefetched && faults && faults->dropPrefetchFill()) {
        releaseAndWake(e);
        return;
    }

    // Raw fetch latency; the consumer (e.g. Berti) applies its own
    // latency-counter width and overflow-to-zero semantics.
    Cycle latency = *clock - e->ts;
    stats.fillLatencySum += latency;
    ++stats.fillLatencyCount;
    fillLatencyHist->record(latency);

    if (Line *present = findLine(e->pLine)) {
        // The line was installed while the miss was in flight (a dirty
        // writeback from above write-allocated it). Filling again would
        // put a duplicate tag in the set — update the existing copy and
        // wake the waiters instead. The SimAuditor's duplicate-tag
        // invariant guards this path.
        present->dirty |= e->wantsDirty;
        releaseAndWake(e);
        return;
    }

    Line &l = fillLine(e->pLine, e->vLine, e->wantsDirty, fill_prefetched);
    if (e->isPrefetch) {
        ++stats.prefetchFills;
        if (e->hadDemand)
            ++stats.prefetchUseful;  // late but useful
        else
            l.pfLatency = latency;   // kept for hit-time training
        if (ptrace) {
            ptrace->record(*clock, obs::PfEvent::Fill, e->pLine, e->ip);
        }
    }

    Prefetcher::FillInfo info;
    info.vLine = e->vLine;
    info.pLine = e->pLine;
    info.ip = e->ip;
    info.byPrefetch = e->isPrefetch;
    info.hadDemandWaiter = e->hadDemand;
    info.latency = latency;
    info.evictedPLine = lastEvictedPLine;
    info.evictedUnusedPrefetch = lastEvictedUnusedPf;
    notifyFill(info);

    // Wake every waiter (cores and upper caches).
    releaseAndWake(e);
}

// ---------------------------------------------------------------------
// Checkpointing. Transient per-call scratch (trainVLine/trainIp, the
// lastEvicted* pair, wakeScratch) is dead between ticks and deliberately
// not serialized. Freed MSHR entries keep stale field junk at runtime,
// so only valid entries are written and the rest are reset to defaults
// on load — that keeps save -> load -> save byte-identical.

void
Cache::saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const
{
    if (!pf->checkpointSupported()) {
        throw verify::SimError(
            verify::ErrorKind::Checkpoint, cfg.name,
            "prefetcher '" + pf->name() +
                "' attached to this level does not support checkpointing");
    }

    w.tag(0xCAC4E000u);
    saveStatsFields(w, stats);

    for (const Line &l : lines) {
        w.u64(l.pLine);
        w.u64(l.vLine);
        w.b(l.valid);
        w.b(l.dirty);
        w.b(l.prefetched);
        w.b(l.pfUsed);
        w.u64(l.pfLatency);
    }

    w.u32(static_cast<std::uint32_t>(mshr.size()));
    for (const MshrEntry &e : mshr) {
        w.b(e.valid);
        if (!e.valid)
            continue;
        w.u64(e.pLine);
        w.u64(e.vLine);
        w.u64(e.ip);
        w.b(e.isPrefetch);
        w.b(e.hadDemand);
        w.b(e.wantsDirty);
        w.u8(static_cast<std::uint8_t>(e.fillLevel));
        w.u64(e.ts);
        w.b(e.sentBelow);
        saveRequest(w, clients, e.fwd);
        w.u32(static_cast<std::uint32_t>(e.waiters.size()));
        for (const MemRequest &req : e.waiters)
            saveRequest(w, clients, req);
    }
    w.u32(static_cast<std::uint32_t>(mshrFree.size()));
    for (unsigned idx : mshrFree)
        w.u32(idx);
    w.u32(mshrUsed);
    w.u32(unsentMshrs);

    w.u32(static_cast<std::uint32_t>(rq.size()));
    for (const MemRequest &req : rq)
        saveRequest(w, clients, req);
    w.u32(static_cast<std::uint32_t>(pq.size()));
    for (const MemRequest &req : pq)
        saveRequest(w, clients, req);
    w.u32(static_cast<std::uint32_t>(wq.size()));
    for (const Addr &a : wq)
        w.u64(a);

    repl->saveState(w);
    fillLatencyHist->saveState(w);
    w.tag(0xCAC4EBF0u);
    pf->saveState(w);
    w.tag(0xCAC4E0FFu);
}

void
Cache::loadState(sim::ByteReader &r, const sim::PtrMap &clients)
{
    if (!pf->checkpointSupported()) {
        throw verify::SimError(
            verify::ErrorKind::Checkpoint, cfg.name,
            "prefetcher '" + pf->name() +
                "' attached to this level does not support checkpointing");
    }

    r.expectTag(0xCAC4E000u, cfg.name.c_str());
    loadStatsFields(r, stats);

    for (Line &l : lines) {
        l.pLine = r.u64();
        l.vLine = r.u64();
        l.valid = r.b();
        l.dirty = r.b();
        l.prefetched = r.b();
        l.pfUsed = r.b();
        l.pfLatency = r.u64();
    }

    std::uint32_t nMshr = r.u32();
    if (nMshr != mshr.size()) {
        r.fail("MSHR count " + std::to_string(nMshr) +
               " does not match the configured " +
               std::to_string(mshr.size()) + " of " + cfg.name);
    }
    for (MshrEntry &e : mshr) {
        bool valid = r.b();
        if (!valid) {
            e = MshrEntry{};
            continue;
        }
        e.valid = true;
        e.pLine = r.u64();
        e.vLine = r.u64();
        e.ip = r.u64();
        e.isPrefetch = r.b();
        e.hadDemand = r.b();
        e.wantsDirty = r.b();
        e.fillLevel = static_cast<FillLevel>(r.u8());
        e.ts = r.u64();
        e.sentBelow = r.b();
        e.fwd = loadRequest(r, clients);
        std::uint32_t nWaiters = r.u32();
        e.waiters.clear();
        for (std::uint32_t i = 0; i < nWaiters; ++i)
            e.waiters.push_back(loadRequest(r, clients));
    }
    std::uint32_t nFree = r.u32();
    if (nFree > mshr.size())
        r.fail("MSHR free-list longer than the MSHR file");
    mshrFree.clear();
    for (std::uint32_t i = 0; i < nFree; ++i) {
        std::uint32_t idx = r.u32();
        if (idx >= mshr.size())
            r.fail("MSHR free-list index out of range");
        mshrFree.push_back(idx);
    }
    mshrUsed = r.u32();
    unsentMshrs = r.u32();

    std::uint32_t nRq = r.u32();
    rq.clear();
    for (std::uint32_t i = 0; i < nRq; ++i)
        rq.push_back(loadRequest(r, clients));
    std::uint32_t nPq = r.u32();
    pq.clear();
    for (std::uint32_t i = 0; i < nPq; ++i)
        pq.push_back(loadRequest(r, clients));
    std::uint32_t nWq = r.u32();
    wq.clear();
    for (std::uint32_t i = 0; i < nWq; ++i)
        wq.push_back(r.u64());

    repl->loadState(r);
    fillLatencyHist->loadState(r);
    r.expectTag(0xCAC4EBF0u, cfg.name.c_str());
    pf->loadState(r);
    r.expectTag(0xCAC4E0FFu, cfg.name.c_str());
}

} // namespace berti
