/**
 * @file
 * Berti: the accurate local-delta L1D data prefetcher of the paper
 * (MICRO 2022). Berti learns, per instruction pointer, the *timely*
 * local deltas — differences between cache-line addresses of demand
 * accesses by the same IP that are far enough apart in time to hide the
 * measured fetch latency — estimates the coverage of each delta over
 * 16-search phases, and only prefetches with high-coverage deltas:
 * above the 65% watermark into L1D (when MSHR occupancy is below 70%),
 * between 35% and 65% into L2.
 *
 * The hardware structures mirror section III-C / Table I:
 *   - History table: 8-set x 16-way, FIFO; entries of {7-bit IP tag,
 *     24-bit line address, 16-bit timestamp}.
 *   - Table of deltas: 16-entry fully-associative, FIFO; entries of
 *     {10-bit IP tag, 4-bit phase counter, 16 x (13-bit delta, 4-bit
 *     coverage, 2-bit status)}.
 *   - Fetch-latency measurement piggybacks on MSHR/PQ timestamps and a
 *     12-bit per-L1D-line latency field (provided by the host cache).
 *
 * Every parameter is exposed in BertiConfig so the paper's sensitivity
 * studies (Figures 21/22, latency-counter width, cross-page ablation)
 * are plain parameter sweeps.
 */

#ifndef BERTI_CORE_BERTI_HH
#define BERTI_CORE_BERTI_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "sim/types.hh"

namespace berti
{

struct BertiConfig
{
    // History table geometry (8 x 16 = 128 entries in the paper).
    unsigned historySets = 8;
    unsigned historyWays = 16;

    // Table of deltas geometry.
    unsigned deltaTableEntries = 16;
    unsigned deltasPerEntry = 16;

    /** Youngest timely deltas collected per history search. */
    unsigned maxTimelyPerSearch = 8;

    /** Searches per coverage phase (the 4-bit counter "overflow"). */
    unsigned phaseLength = 16;

    // Coverage watermarks (fractions of phaseLength).
    double l1Watermark = 0.65;
    double l2Watermark = 0.35;
    double replWatermark = 0.50;    //!< below this, L2 deltas evictable

    // Warm-up issuing before the first phase completes: requires at
    // least this many gathered deltas and the stricter 80% watermark.
    unsigned warmupMinDeltas = 8;
    double warmupWatermark = 0.80;

    /** Max deltas allowed prefetch status per IP entry. */
    unsigned maxSelectedDeltas = 12;

    /** L1D MSHR occupancy above which L1-class deltas fill only to L2. */
    double mshrWatermark = 0.70;

    /** 13-bit signed delta range. */
    int maxDeltaMagnitude = (1 << 12) - 1;

    /** Latency counter width; overflow stores zero and skips training. */
    unsigned latencyBits = 12;

    /** Issue prefetches that cross a 4 KB page (section IV-J ablation). */
    bool crossPage = true;

    // ------------------------------------------------------------------
    // Mechanism ablations (not part of the hardware proposal; they
    // disable the two pillars the paper credits for Berti's accuracy).

    /**
     * When false, the history search ignores the measured fetch latency
     * and treats *every* older same-IP access as a delta source — i.e.
     * local deltas without timeliness (ablates section III-A).
     */
    bool requireTimely = true;

    /**
     * When true, every gathered delta is issued as if it had L1 status,
     * ignoring the coverage watermarks — MLOP-style unselective issuing
     * (ablates the high-confidence mechanism of section III-C).
     */
    bool issueAllDeltas = false;

    /**
     * Track local deltas per *page* instead of per IP: the DPC-3
     * precursor design the paper cites ("Berti: a per-page
     * best-request-time delta prefetcher"). The MICRO 2022 paper's
     * per-IP context is the default.
     */
    bool perPage = false;
};

/** Final so the L1D's resolved dispatch (Cache::PfDispatch::Berti)
 *  devirtualizes the per-access hook calls. */
class BertiPrefetcher final : public Prefetcher
{
  public:
    /** Per-delta prefetch decision, from most to least aggressive. */
    enum class DeltaStatus : std::uint8_t
    {
        NoPref,
        L2PrefRepl,  //!< L2-class with < 50% coverage: eviction candidate
        L2Pref,
        L1Pref
    };

    /** Introspection record used by tests and the Figure 3/4 benches. */
    struct DeltaInfo
    {
        int delta = 0;
        unsigned coverage = 0;      //!< hits within the current phase
        DeltaStatus status = DeltaStatus::NoPref;
    };

    explicit BertiPrefetcher(const BertiConfig &cfg = {});

    void onAccess(const AccessInfo &info) override;
    void onFill(const FillInfo &info) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "berti"; }
    std::string debugState() const override;

    bool checkpointSupported() const override { return true; }
    void saveState(sim::ByteWriter &w) const override;
    void loadState(sim::ByteReader &r) override;

    /** Learned deltas of an IP (empty when the IP is untracked). */
    std::vector<DeltaInfo> deltasFor(Addr ip) const;

    const BertiConfig &config() const { return cfg; }

    // Observability counters for tests/benches.
    std::uint64_t historySearches = 0;
    std::uint64_t timelyDeltasFound = 0;
    std::uint64_t phaseCompletions = 0;

  private:
    struct HistoryEntry
    {
        bool valid = false;
        std::uint16_t ipTag = 0;
        Addr line = 0;         //!< 24-bit virtual line address
        Cycle ts = 0;          //!< 16-bit timestamp (masked on compare)
        std::uint64_t order = 0;  //!< FIFO insertion order
    };

    struct DeltaSlot
    {
        bool valid = false;
        int delta = 0;
        std::uint8_t coverage = 0;       //!< current-phase hit counter
        DeltaStatus status = DeltaStatus::NoPref;
    };

    struct DeltaEntry
    {
        bool valid = false;
        std::uint16_t ipTag = 0;
        std::uint8_t counter = 0;        //!< searches this phase
        bool warm = false;               //!< completed at least one phase
        std::uint16_t gathered = 0;      //!< timely-delta occurrences
                                         //!< since allocation (warm-up)
        std::uint64_t order = 0;         //!< FIFO insertion order
        std::vector<DeltaSlot> slots;
    };

    /** Context key: the IP, or the page when cfg.perPage is set. */
    Addr contextOf(Addr ip, Addr v_line) const;

    unsigned historyIndex(Addr ip) const;
    std::uint16_t historyTag(Addr ip) const;
    std::uint16_t deltaTag(Addr ip) const;

    /** Record a demand access in the history table (FIFO within set). */
    void insertHistory(Addr ip, Addr v_line);

    /**
     * Search the history for accesses of this IP old enough that a
     * prefetch issued from them would have completed by demand_time,
     * and accumulate the resulting deltas for the IP.
     */
    void searchHistory(Addr ip, Addr v_line, Cycle demand_time,
                       Cycle latency);

    DeltaEntry *findDeltaEntry(Addr ip);
    const DeltaEntry *findDeltaEntry(Addr ip) const;
    DeltaEntry &allocDeltaEntry(Addr ip);

    /** Record one timely delta occurrence within the current phase. */
    void recordDelta(DeltaEntry &entry, int delta);

    /** Phase end: assign statuses from coverages and reset the phase. */
    void closePhase(DeltaEntry &entry);

    /** Issue prefetches for the IP's selected deltas from v_line. */
    void predict(Addr ip, Addr v_line);

    /** Latency-counter semantics: overflow -> 0 (skip training). */
    Cycle clampLatency(Cycle latency) const;

    BertiConfig cfg;
    std::vector<HistoryEntry> history;   //!< sets * ways
    std::vector<DeltaEntry> table;
    std::uint64_t orderTick = 0;

    /** One history-search candidate (searchHistory scratch). */
    struct Cand
    {
        std::uint64_t order;
        Addr line;
    };
    // Per-call scratch for searchHistory/closePhase, preallocated in the
    // constructor so the per-access training path never heap-allocates.
    std::vector<Cand> candScratch;
    std::vector<DeltaSlot *> orderScratch;
};

} // namespace berti

#endif // BERTI_CORE_BERTI_HH
