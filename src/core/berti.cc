#include "core/berti.hh"

#include <algorithm>
#include <cassert>

#include "sim/serialize.hh"

namespace berti
{

namespace
{

constexpr Cycle kTimestampMask = 0xFFFF;  //!< 16-bit history timestamps

} // namespace

BertiPrefetcher::BertiPrefetcher(const BertiConfig &config)
    : cfg(config),
      history(static_cast<std::size_t>(cfg.historySets) * cfg.historyWays),
      table(cfg.deltaTableEntries)
{
    for (auto &e : table)
        e.slots.resize(cfg.deltasPerEntry);
    candScratch.reserve(cfg.historyWays);
    orderScratch.reserve(cfg.deltasPerEntry);
}

unsigned
BertiPrefetcher::historyIndex(Addr ip) const
{
    return static_cast<unsigned>((ip >> 2) % cfg.historySets);
}

std::uint16_t
BertiPrefetcher::historyTag(Addr ip) const
{
    // Seven bits above the index bits (section III-C / Figure 6).
    return static_cast<std::uint16_t>(
        (ip >> 2) / cfg.historySets & 0x7F);
}

std::uint16_t
BertiPrefetcher::deltaTag(Addr ip) const
{
    // 10-bit hash of the IP.
    std::uint64_t h = (ip >> 2) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint16_t>(h >> 54);
}

Addr
BertiPrefetcher::contextOf(Addr ip, Addr v_line) const
{
    // The local-delta context: the IP (this paper) or the 4 KB page
    // (the DPC-3 precursor). Shifted so the >>2 in the index/tag
    // hashes keeps mixing well.
    return cfg.perPage ? (v_line >> (kPageBits - kLineBits)) << 2 : ip;
}

Cycle
BertiPrefetcher::clampLatency(Cycle latency) const
{
    Cycle max = (Cycle{1} << cfg.latencyBits) - 1;
    return latency > max ? 0 : latency;
}

void
BertiPrefetcher::insertHistory(Addr ip, Addr v_line)
{
    std::size_t base =
        static_cast<std::size_t>(historyIndex(ip)) * cfg.historyWays;
    // FIFO within the set: replace the oldest insertion.
    std::size_t victim = base;
    for (unsigned w = 0; w < cfg.historyWays; ++w) {
        if (!history[base + w].valid) {
            victim = base + w;
            break;
        }
        if (history[base + w].order < history[victim].order)
            victim = base + w;
    }
    HistoryEntry &e = history[victim];
    e.valid = true;
    e.ipTag = historyTag(ip);
    e.line = v_line & 0xFFFFFF;  // 24-bit stored line address
    e.ts = port->now() & kTimestampMask;
    e.order = ++orderTick;
}

void
BertiPrefetcher::searchHistory(Addr ip, Addr v_line, Cycle demand_time,
                               Cycle latency)
{
    latency = clampLatency(latency);
    if (latency == 0)
        return;  // overflowed counter or unknown: skip training

    ++historySearches;

    std::size_t base =
        static_cast<std::size_t>(historyIndex(ip)) * cfg.historyWays;
    std::uint16_t tag = historyTag(ip);

    // Collect matching entries whose access time is early enough that a
    // prefetch triggered then would have completed by demand_time:
    //   entry.ts + latency <= demand_time.
    std::vector<Cand> &cands = candScratch;
    cands.clear();
    Cycle demand_masked = demand_time & kTimestampMask;
    for (unsigned w = 0; w < cfg.historyWays; ++w) {
        const HistoryEntry &e = history[base + w];
        if (!e.valid || e.ipTag != tag)
            continue;
        // 16-bit wrap-safe age of the entry relative to the demand.
        Cycle age = (demand_masked - e.ts) & kTimestampMask;
        Cycle min_age = cfg.requireTimely ? latency : 1;
        if (age >= min_age && age < (kTimestampMask >> 1))
            cands.push_back({e.order, e.line});
    }

    // Keep the youngest maxTimelyPerSearch candidates.
    std::sort(cands.begin(), cands.end(),
              [](const Cand &a, const Cand &b) { return a.order > b.order; });
    if (cands.size() > cfg.maxTimelyPerSearch)
        cands.resize(cfg.maxTimelyPerSearch);

    DeltaEntry *entry = findDeltaEntry(ip);
    if (!entry)
        entry = &allocDeltaEntry(ip);

    for (const Cand &c : cands) {
        // Deltas computed over 24-bit stored line addresses.
        int delta = static_cast<int>(
            static_cast<std::int64_t>(v_line & 0xFFFFFF) -
            static_cast<std::int64_t>(c.line));
        if (delta == 0 || delta > cfg.maxDeltaMagnitude ||
            delta < -cfg.maxDeltaMagnitude) {
            continue;
        }
        ++timelyDeltasFound;
        recordDelta(*entry, delta);
    }

    if (++entry->counter >= cfg.phaseLength)
        closePhase(*entry);
}

BertiPrefetcher::DeltaEntry *
BertiPrefetcher::findDeltaEntry(Addr ip)
{
    std::uint16_t tag = deltaTag(ip);
    for (auto &e : table) {
        if (e.valid && e.ipTag == tag)
            return &e;
    }
    return nullptr;
}

const BertiPrefetcher::DeltaEntry *
BertiPrefetcher::findDeltaEntry(Addr ip) const
{
    return const_cast<BertiPrefetcher *>(this)->findDeltaEntry(ip);
}

BertiPrefetcher::DeltaEntry &
BertiPrefetcher::allocDeltaEntry(Addr ip)
{
    // FIFO over the fully-associative table.
    std::size_t victim = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (!table[i].valid) {
            victim = i;
            break;
        }
        if (table[i].order < table[victim].order)
            victim = i;
    }
    DeltaEntry &e = table[victim];
    e.valid = true;
    e.ipTag = deltaTag(ip);
    e.counter = 0;
    e.warm = false;
    e.gathered = 0;
    e.order = ++orderTick;
    for (auto &s : e.slots)
        s = DeltaSlot{};
    return e;
}

void
BertiPrefetcher::recordDelta(DeltaEntry &entry, int delta)
{
    if (entry.gathered < 0xFFFF)
        ++entry.gathered;
    DeltaSlot *free_slot = nullptr;
    for (auto &s : entry.slots) {
        if (s.valid && s.delta == delta) {
            if (s.coverage < 15)
                ++s.coverage;
            return;
        }
        if (!s.valid && !free_slot)
            free_slot = &s;
    }
    if (free_slot) {
        free_slot->valid = true;
        free_slot->delta = delta;
        free_slot->coverage = 1;
        free_slot->status = DeltaStatus::NoPref;
        return;
    }

    // Eviction: lowest-coverage slot whose previous-phase status marked
    // it replaceable (L2PrefRepl or NoPref). Otherwise discard.
    DeltaSlot *victim = nullptr;
    for (auto &s : entry.slots) {
        if (s.status != DeltaStatus::L2PrefRepl &&
            s.status != DeltaStatus::NoPref) {
            continue;
        }
        if (!victim || s.coverage < victim->coverage)
            victim = &s;
    }
    if (victim) {
        victim->delta = delta;
        victim->coverage = 1;
        victim->status = DeltaStatus::NoPref;
    }
}

void
BertiPrefetcher::closePhase(DeltaEntry &entry)
{
    ++phaseCompletions;

    // Coverage fraction per delta over the phase, most covered first so
    // the maxSelectedDeltas bound keeps the best ones. Stable so equal
    // coverages rank in slot order, like a hardware priority encoder —
    // an unstable tie-break would make the selected set depend on the
    // standard library.
    std::vector<DeltaSlot *> &order = orderScratch;
    order.clear();
    for (auto &s : entry.slots) {
        if (s.valid)
            order.push_back(&s);
    }
    // In-place stable insertion sort: slots per entry are few (16 in
    // the paper's configuration) and std::stable_sort heap-allocates a
    // temporary buffer, which would break the allocation-free hot-path
    // guarantee. Strict comparison keeps ties in slot order, producing
    // exactly the std::stable_sort ordering.
    for (std::size_t i = 1; i < order.size(); ++i) {
        DeltaSlot *key = order[i];
        std::size_t j = i;
        while (j > 0 && order[j - 1]->coverage < key->coverage) {
            order[j] = order[j - 1];
            --j;
        }
        order[j] = key;
    }

    unsigned selected = 0;
    double phase = static_cast<double>(cfg.phaseLength);
    for (DeltaSlot *s : order) {
        double cov = static_cast<double>(s->coverage) / phase;
        if (cov > cfg.l1Watermark && selected < cfg.maxSelectedDeltas) {
            s->status = DeltaStatus::L1Pref;
            ++selected;
        } else if (cov > cfg.l2Watermark &&
                   selected < cfg.maxSelectedDeltas) {
            s->status = cov < cfg.replWatermark ? DeltaStatus::L2PrefRepl
                                                : DeltaStatus::L2Pref;
            ++selected;
        } else {
            s->status = DeltaStatus::NoPref;
        }
        s->coverage = 0;
    }
    entry.counter = 0;
    entry.warm = true;
}

void
BertiPrefetcher::predict(Addr ip, Addr v_line)
{
    const DeltaEntry *entry = findDeltaEntry(ip);
    if (!entry)
        return;

    bool mshr_free = port->mshrOccupancy() < cfg.mshrWatermark;

    auto issue = [&](int delta, bool l1_class) {
        Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(v_line) + delta);
        if (!cfg.crossPage &&
            (target >> (kPageBits - kLineBits)) !=
                (v_line >> (kPageBits - kLineBits))) {
            return;
        }
        FillLevel level = (l1_class && mshr_free) ? FillLevel::L1
                                                  : FillLevel::L2;
        port->issuePrefetch(target, level);
    };

    if (cfg.issueAllDeltas) {
        // Selectivity ablation: fire every gathered delta.
        for (const auto &s : entry->slots) {
            if (s.valid)
                issue(s.delta, true);
        }
        return;
    }

    if (!entry->warm) {
        // Warm-up: before the first phase closes, issue only once at
        // least eight timely deltas have been gathered, and with the
        // stricter 80% coverage watermark (paper section III-C). The
        // occurrence count (not distinct slots) is what matters: an IP
        // whose delta table entry churns under FIFO pressure can still
        // prefetch its high-coverage deltas.
        if (entry->gathered < cfg.warmupMinDeltas ||
            entry->counter == 0) {
            return;
        }
        double searches = static_cast<double>(entry->counter);
        for (const auto &s : entry->slots) {
            if (s.valid &&
                static_cast<double>(s.coverage) / searches >=
                    cfg.warmupWatermark) {
                issue(s.delta, true);
            }
        }
        return;
    }

    for (const auto &s : entry->slots) {
        if (!s.valid)
            continue;
        if (s.status == DeltaStatus::L1Pref) {
            issue(s.delta, true);
        } else if (s.status == DeltaStatus::L2Pref ||
                   s.status == DeltaStatus::L2PrefRepl) {
            issue(s.delta, false);
        }
    }
}

void
BertiPrefetcher::onAccess(const AccessInfo &info)
{
    assert(port && "Berti must be bound to a cache");
    if (info.vLine == kNoAddr)
        return;

    Addr ctx = contextOf(info.ip, info.vLine);
    if (!info.hit) {
        // Demand miss: record in the history at demand time. The
        // matching search happens on the fill (with measured latency).
        insertHistory(ctx, info.vLine);
    } else if (info.firstHitOnPrefetch) {
        // First demand hit on a prefetched line: a miss the baseline
        // would have had. Record it and search with the stored latency.
        insertHistory(ctx, info.vLine);
        if (info.prefetchLatency != 0) {
            searchHistory(ctx, info.vLine, port->now(),
                          info.prefetchLatency);
        }
    }

    // Prediction runs on every L1D access (section III-C).
    predict(ctx, info.vLine);
}

void
BertiPrefetcher::onFill(const FillInfo &info)
{
    // Learn only on fills the baseline would have missed: demand misses
    // (including late prefetches a demand merged into). Pure prefetch
    // fills train later, at first-use time (see onAccess).
    if (!info.hadDemandWaiter || info.vLine == kNoAddr)
        return;
    Cycle demand_time = port->now() >= info.latency
        ? port->now() - info.latency : 0;
    searchHistory(contextOf(info.ip, info.vLine), info.vLine,
                  demand_time, info.latency);
}

std::uint64_t
BertiPrefetcher::storageBits() const
{
    // History table: per entry 7-bit tag + 24-bit line + 16-bit ts,
    // plus 4 FIFO bits per set.
    std::uint64_t history_bits =
        static_cast<std::uint64_t>(cfg.historySets) * cfg.historyWays *
            (7 + 24 + 16) +
        cfg.historySets * 4;
    // Table of deltas: 10-bit tag + 4-bit counter + FIFO 4 bits, and
    // per delta 13-bit delta + 4-bit coverage + 2-bit status.
    std::uint64_t table_bits =
        static_cast<std::uint64_t>(cfg.deltaTableEntries) *
        (10 + 4 + 4 + static_cast<std::uint64_t>(cfg.deltasPerEntry) *
                          (13 + 4 + 2));
    // PQ + MSHR timestamps (16 + 16 entries, 16 bits each).
    std::uint64_t queue_bits = (16 + 16) * 16;
    // Per-L1D-line latency counters (768 lines).
    std::uint64_t line_bits = 768ull * cfg.latencyBits;
    return history_bits + table_bits + queue_bits + line_bits;
}

std::string
BertiPrefetcher::debugState() const
{
    unsigned history_valid = 0;
    for (const auto &h : history)
        history_valid += h.valid ? 1 : 0;
    unsigned table_valid = 0;
    unsigned selected = 0;
    for (const auto &e : table) {
        if (!e.valid)
            continue;
        ++table_valid;
        for (const auto &s : e.slots) {
            if (s.valid && s.status != DeltaStatus::NoPref)
                ++selected;
        }
    }
    return "berti: history " + std::to_string(history_valid) + "/" +
           std::to_string(history.size()) + ", delta entries " +
           std::to_string(table_valid) + "/" +
           std::to_string(table.size()) + ", selected deltas " +
           std::to_string(selected) + ", searches " +
           std::to_string(historySearches) + ", timely " +
           std::to_string(timelyDeltasFound) + ", phases " +
           std::to_string(phaseCompletions);
}

std::vector<BertiPrefetcher::DeltaInfo>
BertiPrefetcher::deltasFor(Addr ip) const
{
    std::vector<DeltaInfo> out;
    const DeltaEntry *e = findDeltaEntry(ip);
    if (!e)
        return out;
    for (const auto &s : e->slots) {
        if (s.valid)
            out.push_back({s.delta, s.coverage, s.status});
    }
    return out;
}

void
BertiPrefetcher::saveState(sim::ByteWriter &w) const
{
    w.u64(orderTick);
    w.u64(historySearches);
    w.u64(timelyDeltasFound);
    w.u64(phaseCompletions);
    w.u32(static_cast<std::uint32_t>(history.size()));
    for (const HistoryEntry &h : history) {
        w.b(h.valid);
        w.u16(h.ipTag);
        w.u64(h.line);
        w.u64(h.ts);
        w.u64(h.order);
    }
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const DeltaEntry &e : table) {
        w.b(e.valid);
        w.u16(e.ipTag);
        w.u8(e.counter);
        w.b(e.warm);
        w.u16(e.gathered);
        w.u64(e.order);
        w.u32(static_cast<std::uint32_t>(e.slots.size()));
        for (const DeltaSlot &s : e.slots) {
            w.b(s.valid);
            w.i64(s.delta);
            w.u8(s.coverage);
            w.u8(static_cast<std::uint8_t>(s.status));
        }
    }
}

void
BertiPrefetcher::loadState(sim::ByteReader &r)
{
    orderTick = r.u64();
    historySearches = r.u64();
    timelyDeltasFound = r.u64();
    phaseCompletions = r.u64();
    std::uint32_t nh = r.u32();
    if (nh != history.size()) {
        r.fail("Berti history size " + std::to_string(nh) +
               " does not match the live table's " +
               std::to_string(history.size()));
    }
    for (HistoryEntry &h : history) {
        h.valid = r.b();
        h.ipTag = r.u16();
        h.line = r.u64();
        h.ts = r.u64();
        h.order = r.u64();
    }
    std::uint32_t nt = r.u32();
    if (nt != table.size()) {
        r.fail("Berti delta table size " + std::to_string(nt) +
               " does not match the live table's " +
               std::to_string(table.size()));
    }
    for (DeltaEntry &e : table) {
        e.valid = r.b();
        e.ipTag = r.u16();
        e.counter = r.u8();
        e.warm = r.b();
        e.gathered = r.u16();
        e.order = r.u64();
        std::uint32_t ns = r.u32();
        if (ns != e.slots.size()) {
            r.fail("Berti delta slot count " + std::to_string(ns) +
                   " does not match the live entry's " +
                   std::to_string(e.slots.size()));
        }
        for (DeltaSlot &s : e.slots) {
            s.valid = r.b();
            s.delta = static_cast<int>(r.i64());
            s.coverage = r.u8();
            s.status = static_cast<DeltaStatus>(r.u8());
        }
    }
}

} // namespace berti
