#include "cpu/core.hh"

#include "obs/metrics.hh"

namespace berti
{

Core::Core(const CoreConfig &config, const Cycle *clock_ptr,
           unsigned core_id, TraceGenerator *generator, Cache *l1i_cache,
           Cache *l1d_cache, TranslationUnit *tu)
    : cfg(config), clock(clock_ptr), coreId(core_id), gen(generator),
      l1i(l1i_cache), l1d(l1d_cache), translation(tu), branch(cfg.branch),
      itlb(16, 4, 1)
{
    // Allocation-free steady state: structural bounds are known up
    // front. pendingAccesses can transiently exceed the ROB (stores
    // survive retirement until issued), so it gets headroom and the
    // ring only grows under extreme store backpressure.
    rob.reserve(cfg.robSize);
    fetchBuffer.reserve(cfg.fetchBufferSize);
    pendingAccesses.reserve(2 * static_cast<std::size_t>(cfg.robSize));
    outstandingLoads.reserve(cfg.robSize);
}

void
Core::tick()
{
    ++stats.cycles;
    retire();
    issueMemory();
    dispatch();
    fetch();
}

void
Core::retire()
{
    for (unsigned n = 0; n < cfg.retireWidth && !rob.empty(); ++n) {
        if (!rob.front().done)
            break;
        rob.pop_front();
        ++stats.instructions;
    }
}

void
Core::dispatch()
{
    for (unsigned n = 0; n < cfg.dispatchWidth; ++n) {
        if (fetchBuffer.empty() || robFull())
            return;
        FetchedInstr &fi = fetchBuffer.front();
        const TraceInstr &in = fi.instr;

        // Address dependence: a pointer-chasing load cannot compute its
        // address until the producing load completes.
        if (fi.depLoadId && outstandingLoads.count(fi.depLoadId))
            return;

        RobEntry entry;
        entry.id = fi.id;
        entry.done = true;

        if (in.isLoad()) {
            ++stats.loads;
            auto queueLoad = [&](Addr vaddr) {
                auto tr = translation->translate(vaddr);
                MemRequest req;
                req.vLine = lineAddr(vaddr);
                req.pLine = lineAddr(tr.paddr);
                req.ip = in.ip;
                req.type = AccessType::Load;
                req.coreId = coreId;
                req.instrId = fi.id;
                req.client = this;
                pendingAccesses.push_back({req, *clock + tr.latency,
                                           false});
                ++entry.pendingLoads;
            };
            queueLoad(in.load0);
            if (in.load1 != kNoAddr)
                queueLoad(in.load1);
            entry.done = false;
            outstandingLoads.insert(fi.id);
        }
        if (in.isStore()) {
            ++stats.stores;
            auto tr = translation->translate(in.store);
            MemRequest req;
            req.vLine = lineAddr(in.store);
            req.pLine = lineAddr(tr.paddr);
            req.ip = in.ip;
            req.type = AccessType::Rfo;
            req.coreId = coreId;
            req.client = nullptr;  // stores complete post-retirement
            pendingAccesses.push_back({req, *clock + tr.latency, true});
        }

        rob.push_back(entry);
        fetchBuffer.pop_front();
    }
}

void
Core::issueMemory()
{
    unsigned loads = 0;
    unsigned stores = 0;
    for (std::size_t i = 0; i < pendingAccesses.size();) {
        if (loads >= cfg.maxLoadsPerCycle && stores >= cfg.maxStoresPerCycle)
            break;
        PendingAccess &a = pendingAccesses[i];
        if (a.readyCycle > *clock) {
            ++i;
            continue;
        }
        unsigned &count = a.isStore ? stores : loads;
        unsigned limit =
            a.isStore ? cfg.maxStoresPerCycle : cfg.maxLoadsPerCycle;
        if (count >= limit) {
            ++i;
            continue;
        }
        if (!l1d->submitRead(a.req))
            break;  // L1D read queue full: try again next cycle
        ++count;
        pendingAccesses.erase(i);
    }
}

void
Core::fetch()
{
    if (fetchStallUntil > *clock || fetchLinePending)
        return;

    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        if (fetchBuffer.size() >= cfg.fetchBufferSize)
            return;

        TraceInstr in = gen->next();

        // Instruction-cache gate: a new instruction line must be present
        // in the L1I before the instruction can enter the fetch buffer.
        Addr v_line = lineAddr(in.ip);
        if (v_line != fetchLine) {
            Addr paddr = translation->pageTable().translate(in.ip);
            if (!itlb.lookup(pageAddr(in.ip))) {
                itlb.fill(pageAddr(in.ip));
                fetchStallUntil = *clock + cfg.itlbMissLatency;
            }
            Addr p_line = lineAddr(paddr);
            fetchLine = v_line;
            if (!l1i->fastHit(p_line)) {
                MemRequest req;
                req.vLine = v_line;
                req.pLine = p_line;
                req.ip = in.ip;
                req.type = AccessType::InstrFetch;
                req.coreId = coreId;
                req.client = this;
                if (l1i->submitRead(req))
                    fetchLinePending = true;
                else
                    fetchLine = kNoAddr;  // retry next cycle
                // The instruction itself still enters the buffer below;
                // subsequent fetches wait for the fill.
            }
        }

        FetchedInstr fi;
        fi.instr = in;
        fi.id = nextInstrId++;
        if (in.dependsOnPrevLoad)
            fi.depLoadId = lastLoadId;
        if (in.isLoad())
            lastLoadId = fi.id;
        fetchBuffer.push_back(fi);

        if (in.isBranch) {
            ++stats.branches;
            bool predicted = branch.predict(in.ip);
            branch.update(in.ip, in.taken);
            if (predicted != in.taken) {
                ++stats.mispredicts;
                // Redirect after resolve: stall the front-end.
                fetchStallUntil = *clock + cfg.mispredictPenalty;
                return;
            }
        }
        if (fetchLinePending)
            return;
    }
}

Cycle
Core::nextEventCycle() const
{
    Cycle next = kNever;

    // Retirement: the head completing is an external event (readDone);
    // an already-done head retires next tick.
    if (robHeadDone())
        return *clock + 1;

    // Memory issue: any translated access that is (or becomes) ready.
    for (const PendingAccess &a : pendingAccesses)
        next = std::min(next, std::max(a.readyCycle, *clock + 1));

    // Dispatch: possible next tick unless the ROB is full (unblocked by
    // retirement, handled above) or the head waits on an outstanding
    // load (unblocked by readDone, an external event).
    if (!fetchBuffer.empty() && !robFull()) {
        const FetchedInstr &fi = fetchBuffer.front();
        if (!(fi.depLoadId && outstandingLoads.count(fi.depLoadId)))
            next = std::min(next, *clock + 1);
    }

    // Fetch: generators never run dry, so an unblocked front-end with
    // buffer space always has work — at the stall horizon if redirect /
    // iTLB penalties are pending, next tick otherwise. An L1I miss in
    // flight (fetchLinePending) is an external event.
    if (!fetchLinePending && fetchBuffer.size() < cfg.fetchBufferSize)
        next = std::min(next, std::max(fetchStallUntil, *clock + 1));

    return next;
}

void
Core::readDone(const MemRequest &req)
{
    if (req.type == AccessType::InstrFetch) {
        fetchLinePending = false;
        return;
    }

    // Load completion: find the ROB entry (loads complete roughly in
    // order, so the scan terminates quickly in practice).
    for (auto &e : rob) {
        if (e.id == req.instrId) {
            if (e.pendingLoads > 0)
                --e.pendingLoads;
            if (e.pendingLoads == 0) {
                e.done = true;
                outstandingLoads.erase(e.id);
            }
            return;
        }
    }
}

void
Core::registerMetrics(obs::MetricsRegistry &registry,
                      const std::string &prefix)
{
    forEachStatField(stats,
                     [&](const char *name, std::uint64_t &cell) {
                         registry.counter(prefix + name, &cell);
                     });
    registry.gauge(prefix + "ipc", [this] { return stats.ipc(); });
    itlb.registerMetrics(registry, prefix + "itlb.");
}

namespace
{

void
saveTraceInstr(sim::ByteWriter &w, const TraceInstr &i)
{
    w.u64(i.ip);
    w.u64(i.load0);
    w.u64(i.load1);
    w.u64(i.store);
    w.b(i.isBranch);
    w.b(i.taken);
    w.b(i.dependsOnPrevLoad);
}

TraceInstr
loadTraceInstr(sim::ByteReader &r)
{
    TraceInstr i;
    i.ip = r.u64();
    i.load0 = r.u64();
    i.load1 = r.u64();
    i.store = r.u64();
    i.isBranch = r.b();
    i.taken = r.b();
    i.dependsOnPrevLoad = r.b();
    return i;
}

} // namespace

void
Core::saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const
{
    w.tag(0xC03E0000u + coreId);
    saveStatsFields(w, stats);
    branch.saveState(w);
    itlb.saveState(w);

    w.u32(static_cast<std::uint32_t>(rob.size()));
    for (const RobEntry &e : rob) {
        w.u64(e.id);
        w.b(e.done);
        w.u8(e.pendingLoads);
    }
    w.u32(static_cast<std::uint32_t>(fetchBuffer.size()));
    for (const FetchedInstr &f : fetchBuffer) {
        saveTraceInstr(w, f.instr);
        w.u64(f.id);
        w.u64(f.depLoadId);
    }
    w.u32(static_cast<std::uint32_t>(pendingAccesses.size()));
    for (const PendingAccess &p : pendingAccesses) {
        saveRequest(w, clients, p.req);
        w.u64(p.readyCycle);
        w.b(p.isStore);
    }
    const std::vector<std::uint64_t> &loads = outstandingLoads.raw();
    w.u32(static_cast<std::uint32_t>(loads.size()));
    for (std::uint64_t id : loads)
        w.u64(id);

    w.u64(nextInstrId);
    w.u64(lastLoadId);
    w.u64(fetchStallUntil);
    w.u64(fetchLine);
    w.b(fetchLinePending);
    w.tag(0xC03E00FFu);
}

void
Core::loadState(sim::ByteReader &r, const sim::PtrMap &clients)
{
    r.expectTag(0xC03E0000u + coreId, "core");
    loadStatsFields(r, stats);
    branch.loadState(r);
    itlb.loadState(r);

    std::uint32_t nRob = r.u32();
    rob.clear();
    for (std::uint32_t i = 0; i < nRob; ++i) {
        RobEntry e;
        e.id = r.u64();
        e.done = r.b();
        e.pendingLoads = r.u8();
        rob.push_back(e);
    }
    std::uint32_t nFetch = r.u32();
    fetchBuffer.clear();
    for (std::uint32_t i = 0; i < nFetch; ++i) {
        FetchedInstr f;
        f.instr = loadTraceInstr(r);
        f.id = r.u64();
        f.depLoadId = r.u64();
        fetchBuffer.push_back(f);
    }
    std::uint32_t nPending = r.u32();
    pendingAccesses.clear();
    for (std::uint32_t i = 0; i < nPending; ++i) {
        PendingAccess p;
        p.req = loadRequest(r, clients);
        p.readyCycle = r.u64();
        p.isStore = r.b();
        pendingAccesses.push_back(p);
    }
    std::uint32_t nLoads = r.u32();
    std::vector<std::uint64_t> loads;
    loads.reserve(nLoads);
    for (std::uint32_t i = 0; i < nLoads; ++i)
        loads.push_back(r.u64());
    outstandingLoads.assign(std::move(loads));

    nextInstrId = r.u64();
    lastLoadId = r.u64();
    fetchStallUntil = r.u64();
    fetchLine = r.u64();
    fetchLinePending = r.b();
    r.expectTag(0xC03E00FFu, "core");
}

} // namespace berti
