#include "cpu/branch_predictor.hh"

#include "sim/serialize.hh"

namespace berti
{

BranchPredictor::BranchPredictor(const Config &config)
    : cfg(config),
      weights(static_cast<std::size_t>(cfg.tables) * cfg.entriesPerTable, 0)
{}

std::size_t
BranchPredictor::index(Addr ip, unsigned table) const
{
    // Each table sees a different history slice folded onto the IP.
    std::uint64_t slice = table == 0
        ? 0
        : history & ((1ull << (2 * table)) - 1);
    std::uint64_t h = (ip >> 2) ^ (slice * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(table) << 40);
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(table) * cfg.entriesPerTable +
           (h & (cfg.entriesPerTable - 1));
}

int
BranchPredictor::sum(Addr ip) const
{
    int s = 0;
    for (unsigned t = 0; t < cfg.tables; ++t)
        s += weights[index(ip, t)];
    return s;
}

bool
BranchPredictor::predict(Addr ip) const
{
    return sum(ip) >= 0;
}

void
BranchPredictor::update(Addr ip, bool taken)
{
    int s = sum(ip);
    bool predicted = s >= 0;
    if (predicted != taken || (s < cfg.theta && s > -cfg.theta)) {
        for (unsigned t = 0; t < cfg.tables; ++t) {
            std::int8_t &w = weights[index(ip, t)];
            if (taken && w < cfg.weightMax)
                ++w;
            else if (!taken && w > -cfg.weightMax - 1)
                --w;
        }
    }
    history = (history << 1) | (taken ? 1 : 0);
}

void
BranchPredictor::saveState(sim::ByteWriter &w) const
{
    w.u64(history);
    w.u32(static_cast<std::uint32_t>(weights.size()));
    w.bytes(weights.data(), weights.size());
}

void
BranchPredictor::loadState(sim::ByteReader &r)
{
    history = r.u64();
    std::uint32_t n = r.u32();
    if (n != weights.size()) {
        r.fail("branch predictor weight count " + std::to_string(n) +
               " does not match the live predictor's " +
               std::to_string(weights.size()));
    }
    r.bytes(weights.data(), weights.size());
}

} // namespace berti
