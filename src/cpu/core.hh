/**
 * @file
 * Trace-driven out-of-order core model in the ChampSim mould: a decoupled
 * front-end (L1I-gated fetch with branch prediction), in-order dispatch
 * into a ROB, loads issued to the L1D with address-translation latency,
 * out-of-order completion and in-order retirement.
 */

#ifndef BERTI_CPU_CORE_HH
#define BERTI_CPU_CORE_HH

#include <cstdint>

#include "cpu/branch_predictor.hh"
#include "mem/cache.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"
#include "trace/instr.hh"
#include "vm/tlb.hh"

namespace berti
{

namespace verify
{
class SimAuditor;
} // namespace verify

struct CoreConfig
{
    unsigned robSize = 352;
    unsigned fetchWidth = 6;
    unsigned dispatchWidth = 6;
    unsigned retireWidth = 4;
    unsigned maxLoadsPerCycle = 2;   //!< L1D read ports
    unsigned maxStoresPerCycle = 1;  //!< L1D write port
    unsigned fetchBufferSize = 64;
    Cycle mispredictPenalty = 15;
    Cycle itlbMissLatency = 9;       //!< STLB latency + 1
    BranchPredictor::Config branch;
};

/**
 * One core. The owner ticks it once per cycle after ticking the memory
 * hierarchy below it.
 */
class Core : public ReadClient
{
  public:
    Core(const CoreConfig &cfg, const Cycle *clock, unsigned core_id,
         TraceGenerator *gen, Cache *l1i, Cache *l1d,
         TranslationUnit *translation);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Advance one cycle: retire, issue, dispatch, fetch. */
    void tick();

    /**
     * Earliest future cycle at which tick() would make progress, given
     * no readDone arrives in between (kNever if the core is blocked
     * purely on memory responses). Quiescence cycle-skip input; the
     * bound must never be late.
     */
    Cycle nextEventCycle() const;

    // ReadClient: load and instruction-fetch completions from the L1s.
    void readDone(const MemRequest &req) override;

    /**
     * Register this core's retirement counters, the derived IPC gauge
     * and the private iTLB counters (under prefix + "itlb.") into the
     * registry. Called once at Machine construction.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix);

    // Introspection for the forward-progress watchdog and diagnostics.
    std::size_t robOccupancy() const { return rob.size(); }
    bool robEmpty() const { return rob.empty(); }
    std::uint64_t robHeadId() const
    {
        return rob.empty() ? 0 : rob.front().id;
    }
    bool robHeadDone() const
    {
        return !rob.empty() && rob.front().done;
    }
    std::size_t fetchBufferOccupancy() const { return fetchBuffer.size(); }
    std::size_t pendingAccessCount() const
    {
        return pendingAccesses.size();
    }
    std::size_t outstandingLoadCount() const
    {
        return outstandingLoads.size();
    }

    /**
     * Dynamic instructions pulled from the trace generator so far.
     * Resume replays the (deterministic) generator exactly this many
     * times to re-synchronise its position: fetch() draws one
     * instruction per allocated id, so the count is nextInstrId - 1.
     */
    std::uint64_t fetchedInstructions() const { return nextInstrId - 1; }

    /**
     * Checkpoint hooks: stats, branch predictor, iTLB, ROB, fetch
     * buffer, pending accesses and the in-flight bookkeeping. The trace
     * generator itself is NOT serialized — see fetchedInstructions().
     */
    void saveState(sim::ByteWriter &w, const sim::PtrMap &clients) const;
    void loadState(sim::ByteReader &r, const sim::PtrMap &clients);

    CoreStats stats;

  private:
    friend class verify::SimAuditor;
    struct RobEntry
    {
        std::uint64_t id = 0;
        bool done = false;
        std::uint8_t pendingLoads = 0;
    };

    struct FetchedInstr
    {
        TraceInstr instr;
        std::uint64_t id = 0;
        std::uint64_t depLoadId = 0;  //!< 0 = no load dependence
    };

    struct PendingAccess
    {
        MemRequest req;
        Cycle readyCycle;  //!< after address translation
        bool isStore;
    };

    void retire();
    void dispatch();
    void issueMemory();
    void fetch();

    bool robFull() const { return rob.size() >= cfg.robSize; }

    CoreConfig cfg;
    const Cycle *clock;
    unsigned coreId;
    TraceGenerator *gen;
    Cache *l1i;
    Cache *l1d;
    TranslationUnit *translation;
    BranchPredictor branch;
    Tlb itlb;

    RingQueue<RobEntry> rob;
    RingQueue<FetchedInstr> fetchBuffer;
    RingQueue<PendingAccess> pendingAccesses;
    IdSet outstandingLoads;

    std::uint64_t nextInstrId = 1;
    std::uint64_t lastLoadId = 0;      //!< program-order last load
    Cycle fetchStallUntil = 0;
    Addr fetchLine = kNoAddr;          //!< instruction line in flight/ready
    bool fetchLinePending = false;     //!< waiting on an L1I fill
};

} // namespace berti

#endif // BERTI_CPU_CORE_HH
