/**
 * @file
 * Hashed-perceptron branch predictor (Table II of the paper uses the
 * hashed-perceptron predictor of Jiménez & Lin). Several weight tables
 * are indexed by hashes of the IP with different global-history slices;
 * the prediction is the sign of the summed weights.
 */

#ifndef BERTI_CPU_BRANCH_PREDICTOR_HH
#define BERTI_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace berti
{

namespace sim
{
class ByteWriter;
class ByteReader;
} // namespace sim

class BranchPredictor
{
  public:
    struct Config
    {
        unsigned tables = 8;
        unsigned entriesPerTable = 1024;  //!< power of two
        int weightMax = 31;               //!< 6-bit signed weights
        int theta = 24;                   //!< training threshold
    };

    BranchPredictor() : BranchPredictor(Config{}) {}
    explicit BranchPredictor(const Config &cfg);

    /** Predict the direction of the branch at ip. */
    bool predict(Addr ip) const;

    /** Train with the actual outcome and shift the global history. */
    void update(Addr ip, bool taken);

    /** Checkpoint hooks: global history + all weight tables. */
    void saveState(sim::ByteWriter &w) const;
    void loadState(sim::ByteReader &r);

  private:
    int sum(Addr ip) const;
    std::size_t index(Addr ip, unsigned table) const;

    Config cfg;
    std::uint64_t history = 0;
    std::vector<std::int8_t> weights;  //!< tables * entriesPerTable
};

} // namespace berti

#endif // BERTI_CPU_BRANCH_PREDICTOR_HH
