/**
 * @file
 * Typed metrics registry: named counters, gauges and histograms that
 * every component of a Machine registers at construction time. The
 * registry never owns the hot-path counters — components keep bumping
 * their plain uint64_t fields and the registry holds stable-named
 * pointers to them — so registration costs nothing on the simulation
 * path and a snapshot is a single pass over live memory.
 *
 * Thread-safety model: one registry per Machine, touched only by the
 * thread simulating that Machine (the PR-2 parallel runner gives every
 * (workload, spec) cell its own Machine). Snapshots from different
 * Machines are merged after the pool joins, so there is no shared
 * mutable state and no locking anywhere in this layer.
 */

#ifndef BERTI_OBS_METRICS_HH
#define BERTI_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace berti::sim
{
class ByteWriter;
class ByteReader;
} // namespace berti::sim

namespace berti::obs
{

/** Kind of a registered metric / snapshot value. */
enum class MetricKind : std::uint8_t
{
    Counter,   //!< monotonically increasing uint64
    Gauge,     //!< derived double, evaluated at snapshot time
    Histogram  //!< bucketed value distribution
};

const char *metricKindName(MetricKind kind);

/**
 * Fixed-shape histogram with log2 or linear bucketing. All storage is
 * allocated at construction; record() is a couple of integer ops and an
 * array increment, so it is safe on simulation hot paths.
 */
class Histogram
{
  public:
    enum class Scale : std::uint8_t { Log2, Linear };

    /**
     * Log2 buckets: bucket i holds values v with bit_width(v) == i,
     * i.e. [2^(i-1), 2^i); bucket 0 holds v == 0. 33 buckets cover the
     * full Cycle range of this simulator.
     */
    static Histogram log2(unsigned buckets = 33);

    /**
     * Linear buckets of the given width: bucket i holds
     * [i*width, (i+1)*width). The last bucket absorbs the overflow.
     */
    static Histogram linear(std::uint64_t bucket_width, unsigned buckets);

    void record(std::uint64_t value, std::uint64_t weight = 1);

    /**
     * Accumulate another histogram of the same shape. Merging is
     * associative and commutative; a shape mismatch throws
     * verify::SimError(ErrorKind::Config).
     */
    void merge(const Histogram &other);

    void reset();

    std::uint64_t count() const { return total; }
    std::uint64_t sum() const { return valueSum; }
    std::uint64_t min() const { return total ? lo : 0; }
    std::uint64_t max() const { return hi; }
    double mean() const
    {
        return total ? static_cast<double>(valueSum) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /**
     * Upper bound of the bucket holding the p-quantile (p in [0, 1]):
     * the smallest bucket upper edge B such that at least p * count()
     * recorded values are <= B. Monotonically non-decreasing in p;
     * 0 when the histogram is empty.
     */
    std::uint64_t percentile(double p) const;

    unsigned bucketCount() const
    {
        return static_cast<unsigned>(buckets.size());
    }
    std::uint64_t bucketWeight(unsigned i) const { return buckets[i]; }

    /** Inclusive lower edge of bucket i. */
    std::uint64_t bucketLow(unsigned i) const;

    /** Inclusive upper edge of bucket i. */
    std::uint64_t bucketHigh(unsigned i) const;

    bool sameShape(const Histogram &other) const
    {
        return scale == other.scale && width == other.width &&
               buckets.size() == other.buckets.size();
    }

    /** Checkpoint hooks: contents only — the shape is construction
     *  state and is cross-checked, not restored. A bucket-count
     *  mismatch throws verify::SimError(ErrorKind::Checkpoint). */
    void saveState(sim::ByteWriter &w) const;
    void loadState(sim::ByteReader &r);

  private:
    Histogram(Scale s, std::uint64_t w, unsigned n);

    unsigned bucketOf(std::uint64_t value) const;

    Scale scale;
    std::uint64_t width;             //!< linear bucket width (1 for log2)
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    std::uint64_t valueSum = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

/**
 * One exported value set: sorted (name -> typed value), the unit of
 * JSON/CSV export and of golden comparisons. Histograms are flattened
 * into <name>.count/.sum/.min/.max/.p50/.p99 counter entries so a
 * snapshot is always a flat, diffable document.
 */
class MetricsSnapshot
{
  public:
    /** Bump when the exported key set or layout changes meaning. */
    static constexpr unsigned kSchemaVersion = 1;

    struct Value
    {
        MetricKind kind = MetricKind::Counter;
        std::uint64_t u = 0;   //!< Counter payload
        double d = 0.0;        //!< Gauge payload
    };

    void setCounter(const std::string &name, std::uint64_t value);
    void setGauge(const std::string &name, double value);
    void appendHistogram(const std::string &name, const Histogram &h);

    bool contains(const std::string &name) const;

    /** Typed accessors; a missing name or a kind mismatch throws
     *  verify::SimError(ErrorKind::Config) naming the metric. */
    std::uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Sorted name -> value view (std::map iterates in key order). */
    const std::map<std::string, Value> &values() const { return entries; }

    bool operator==(const MetricsSnapshot &other) const;

  private:
    const Value &at(const std::string &name, MetricKind kind) const;

    std::map<std::string, Value> entries;
};

/**
 * The per-Machine registry. Components register their live counters,
 * derived gauges and histograms under stable names at construction;
 * snapshot() walks everything and materialises a MetricsSnapshot.
 * Registering a duplicate name throws
 * verify::SimError(ErrorKind::Config).
 */
class MetricsRegistry
{
  public:
    /** Register a live counter cell owned by a component. The cell must
     *  outlive the registry (both live inside the same Machine). */
    void counter(const std::string &name, const std::uint64_t *cell);

    /** Register a derived metric, evaluated lazily at snapshot time. */
    void gauge(const std::string &name, std::function<double()> fn);

    /** Register a component-owned histogram (must outlive the registry). */
    void histogram(const std::string &name, const Histogram *hist);

    /** Create and own a histogram registered under the given name. */
    Histogram &ownHistogram(const std::string &name, Histogram shape);

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries.size(); }

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Registered counter names, sorted — the interval sampler's
     *  column set. */
    std::vector<std::string> counterNames() const;

    /** Live counter values in counterNames() order, appended to out
     *  (cleared first). Allocation-free once out has capacity. */
    void sampleCounters(std::vector<std::uint64_t> &out) const;

    MetricsSnapshot snapshot() const;

  private:
    struct Entry
    {
        MetricKind kind = MetricKind::Counter;
        const std::uint64_t *cell = nullptr;
        std::function<double()> fn;
        const Histogram *hist = nullptr;
        std::shared_ptr<Histogram> owned;
    };

    void insert(const std::string &name, Entry entry);

    std::map<std::string, Entry> entries;
};

} // namespace berti::obs

#endif // BERTI_OBS_METRICS_HH
