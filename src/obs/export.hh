/**
 * @file
 * Stable, machine-diffable exporters for metrics snapshots, interval
 * time series and prefetch event traces. The JSON schema is versioned
 * (MetricsSnapshot::kSchemaVersion), keys are always sorted, and
 * doubles are printed with a fixed round-trippable format, so two runs
 * producing the same statistics produce byte-identical documents — the
 * property the golden-stats harness and the BERTI_JOBS determinism
 * checks rely on.
 */

#ifndef BERTI_OBS_EXPORT_HH
#define BERTI_OBS_EXPORT_HH

#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "sim/stats.hh"

namespace berti::obs
{

/** Round-trippable, locale-independent double rendering (%.17g). */
std::string formatDouble(double v);

/**
 * JSON export of a snapshot:
 * {"schema_version":1,"counters":{...},"gauges":{...}} with keys
 * sorted. Deterministic for identical snapshots.
 */
std::string toJson(const MetricsSnapshot &snap);

/** CSV export of a snapshot: "name,kind,value" rows, sorted by name. */
std::string toCsv(const MetricsSnapshot &snap);

/** CSV export of an interval series: instructions,cycle,<columns...>. */
std::string toCsv(const IntervalSeries &series);

/** JSON export of an event trace: totals per kind + retained events. */
std::string toJson(const PrefetchEventTrace &trace);

/**
 * Parse a document produced by toJson(const MetricsSnapshot&). Only
 * this exporter's flat schema is understood — it is a golden-file
 * reader, not a general JSON parser. Throws
 * verify::SimError(ErrorKind::TraceIo) on malformed input or a
 * schema_version mismatch.
 */
MetricsSnapshot snapshotFromJson(const std::string &json,
                                 const std::string &origin = "<string>");

/** One differing field between two snapshots. */
struct FieldDiff
{
    std::string name;
    std::string expected;  //!< "<missing>" when only in actual
    std::string actual;    //!< "<missing>" when only in expected
};

/**
 * Field-level comparison, for readable golden mismatches: every metric
 * whose value, kind or presence differs. Empty result == equal.
 */
std::vector<FieldDiff> diffSnapshots(const MetricsSnapshot &expected,
                                     const MetricsSnapshot &actual);

/** Render a field diff as an aligned, human-readable report. */
std::string formatDiff(const std::vector<FieldDiff> &diffs);

/**
 * Canonical snapshot of a RunStats: every counter of every component
 * under its schema prefix, plus the derived gauges the paper's figures
 * are built from (core.ipc, <cache>.mpki/.accuracy/.avg_fill_latency,
 * <cache>.prefetch_timely).
 */
MetricsSnapshot snapshotOf(const RunStats &stats);

/** Add the energy-model breakdown under energy.* gauges. */
void appendEnergy(MetricsSnapshot &snap, const EnergyBreakdown &energy);

/**
 * Write a file atomically-enough for the bench sidecar path (temp file
 * + rename). Throws verify::SimError(ErrorKind::TraceIo) on failure.
 */
void writeFile(const std::string &path, const std::string &content);

/** Read a whole file; throws verify::SimError(ErrorKind::TraceIo). */
std::string readFile(const std::string &path);

/**
 * Delete leftover "*.tmp" staging files in a directory (non-recursive):
 * the debris of writeFile calls killed between open and rename. Renames
 * are atomic, so a surviving .tmp can only be an abandoned partial
 * write — never a live result. Returns the number removed; a missing
 * directory removes nothing.
 */
std::size_t removeStaleTempFiles(const std::string &dir);

} // namespace berti::obs

#endif // BERTI_OBS_EXPORT_HH
