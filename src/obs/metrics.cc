#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "sim/serialize.hh"
#include "verify/sim_error.hh"

namespace berti::obs
{

namespace
{

[[noreturn]] void
fail(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "obs", reason);
}

} // namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

// --------------------------------------------------------------- Histogram

Histogram::Histogram(Scale s, std::uint64_t w, unsigned n)
    : scale(s), width(w), buckets(n, 0)
{
    if (n == 0)
        fail("histogram needs at least one bucket");
    if (s == Scale::Linear && w == 0)
        fail("linear histogram needs a positive bucket width");
}

Histogram
Histogram::log2(unsigned buckets)
{
    return Histogram(Scale::Log2, 1, buckets);
}

Histogram
Histogram::linear(std::uint64_t bucket_width, unsigned buckets)
{
    return Histogram(Scale::Linear, bucket_width, buckets);
}

unsigned
Histogram::bucketOf(std::uint64_t value) const
{
    unsigned idx;
    if (scale == Scale::Log2)
        idx = static_cast<unsigned>(std::bit_width(value));
    else
        idx = static_cast<unsigned>(value / width);
    unsigned last = static_cast<unsigned>(buckets.size()) - 1;
    return idx > last ? last : idx;
}

void
Histogram::record(std::uint64_t value, std::uint64_t weight)
{
    if (!weight)
        return;
    buckets[bucketOf(value)] += weight;
    if (!total || value < lo)
        lo = value;
    if (value > hi)
        hi = value;
    total += weight;
    valueSum += value * weight;
}

void
Histogram::merge(const Histogram &other)
{
    if (!sameShape(other))
        fail("histogram merge shape mismatch (scale/width/buckets)");
    if (!other.total)
        return;
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    if (!total || other.lo < lo)
        lo = other.lo;
    if (other.hi > hi)
        hi = other.hi;
    total += other.total;
    valueSum += other.valueSum;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = valueSum = lo = hi = 0;
}

void
Histogram::saveState(sim::ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(buckets.size()));
    for (std::uint64_t b : buckets)
        w.u64(b);
    w.u64(total);
    w.u64(valueSum);
    w.u64(lo);
    w.u64(hi);
}

void
Histogram::loadState(sim::ByteReader &r)
{
    std::uint32_t n = r.u32();
    if (n != buckets.size()) {
        r.fail("histogram bucket count " + std::to_string(n) +
               " does not match the live histogram's " +
               std::to_string(buckets.size()));
    }
    for (std::uint64_t &b : buckets)
        b = r.u64();
    total = r.u64();
    valueSum = r.u64();
    lo = r.u64();
    hi = r.u64();
}

std::uint64_t
Histogram::bucketLow(unsigned i) const
{
    if (scale == Scale::Log2)
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    return width * i;
}

std::uint64_t
Histogram::bucketHigh(unsigned i) const
{
    unsigned last = static_cast<unsigned>(buckets.size()) - 1;
    if (i >= last)
        return std::numeric_limits<std::uint64_t>::max();
    if (scale == Scale::Log2)
        return (std::uint64_t{1} << i) - 1;
    return width * (i + 1) - 1;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (!total)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Smallest bucket whose cumulative weight reaches ceil(p * total),
    // with a floor of one recorded value so p == 0 returns the first
    // non-empty bucket.
    double scaled = p * static_cast<double>(total);
    std::uint64_t need = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(need) < scaled)
        ++need;
    if (need == 0)
        need = 1;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum >= need) {
            // Clamp the open-ended report to the observed extremes so
            // percentiles never exceed max() or undercut min().
            std::uint64_t high = bucketHigh(i);
            if (high > hi)
                high = hi;
            if (high < lo)
                high = lo;
            return high;
        }
    }
    return hi;
}

// --------------------------------------------------------- MetricsSnapshot

void
MetricsSnapshot::setCounter(const std::string &name, std::uint64_t value)
{
    Value v;
    v.kind = MetricKind::Counter;
    v.u = value;
    entries[name] = v;
}

void
MetricsSnapshot::setGauge(const std::string &name, double value)
{
    Value v;
    v.kind = MetricKind::Gauge;
    v.d = value;
    entries[name] = v;
}

void
MetricsSnapshot::appendHistogram(const std::string &name,
                                 const Histogram &h)
{
    setCounter(name + ".count", h.count());
    setCounter(name + ".max", h.max());
    setCounter(name + ".min", h.min());
    setCounter(name + ".p50", h.percentile(0.50));
    setCounter(name + ".p99", h.percentile(0.99));
    setCounter(name + ".sum", h.sum());
}

bool
MetricsSnapshot::contains(const std::string &name) const
{
    return entries.find(name) != entries.end();
}

const MetricsSnapshot::Value &
MetricsSnapshot::at(const std::string &name, MetricKind kind) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        fail("snapshot has no metric named \"" + name + "\"");
    if (it->second.kind != kind) {
        fail("metric \"" + name + "\" is a " +
             metricKindName(it->second.kind) + ", not a " +
             metricKindName(kind));
    }
    return it->second;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    return at(name, MetricKind::Counter).u;
}

double
MetricsSnapshot::gauge(const std::string &name) const
{
    return at(name, MetricKind::Gauge).d;
}

bool
MetricsSnapshot::operator==(const MetricsSnapshot &other) const
{
    if (entries.size() != other.entries.size())
        return false;
    auto a = entries.begin();
    auto b = other.entries.begin();
    for (; a != entries.end(); ++a, ++b) {
        if (a->first != b->first || a->second.kind != b->second.kind)
            return false;
        if (a->second.kind == MetricKind::Counter) {
            if (a->second.u != b->second.u)
                return false;
        } else if (a->second.d != b->second.d) {
            return false;
        }
    }
    return true;
}

// --------------------------------------------------------- MetricsRegistry

void
MetricsRegistry::insert(const std::string &name, Entry entry)
{
    if (name.empty())
        fail("metric names must be non-empty");
    if (!entries.emplace(name, std::move(entry)).second)
        fail("duplicate metric registration: \"" + name + "\"");
}

void
MetricsRegistry::counter(const std::string &name,
                         const std::uint64_t *cell)
{
    if (!cell)
        fail("null counter cell for \"" + name + "\"");
    Entry e;
    e.kind = MetricKind::Counter;
    e.cell = cell;
    insert(name, std::move(e));
}

void
MetricsRegistry::gauge(const std::string &name, std::function<double()> fn)
{
    if (!fn)
        fail("null gauge function for \"" + name + "\"");
    Entry e;
    e.kind = MetricKind::Gauge;
    e.fn = std::move(fn);
    insert(name, std::move(e));
}

void
MetricsRegistry::histogram(const std::string &name, const Histogram *hist)
{
    if (!hist)
        fail("null histogram for \"" + name + "\"");
    Entry e;
    e.kind = MetricKind::Histogram;
    e.hist = hist;
    insert(name, std::move(e));
}

Histogram &
MetricsRegistry::ownHistogram(const std::string &name, Histogram shape)
{
    Entry e;
    e.kind = MetricKind::Histogram;
    e.owned = std::make_shared<Histogram>(std::move(shape));
    e.hist = e.owned.get();
    Histogram &ref = *e.owned;
    insert(name, std::move(e));
    return ref;
}

bool
MetricsRegistry::contains(const std::string &name) const
{
    return entries.find(name) != entries.end();
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[name, entry] : entries)
        out.push_back(name);
    return out;
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, entry] : entries) {
        if (entry.kind == MetricKind::Counter)
            out.push_back(name);
    }
    return out;
}

void
MetricsRegistry::sampleCounters(std::vector<std::uint64_t> &out) const
{
    out.clear();
    for (const auto &[name, entry] : entries) {
        if (entry.kind == MetricKind::Counter)
            out.push_back(*entry.cell);
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[name, entry] : entries) {
        switch (entry.kind) {
          case MetricKind::Counter:
            snap.setCounter(name, *entry.cell);
            break;
          case MetricKind::Gauge:
            snap.setGauge(name, entry.fn());
            break;
          case MetricKind::Histogram:
            snap.appendHistogram(name, *entry.hist);
            break;
        }
    }
    return snap;
}

} // namespace berti::obs
