#include "obs/timeseries.hh"

#include "sim/options.hh"
#include "verify/sim_error.hh"

namespace berti::obs
{

namespace
{

[[noreturn]] void
fail(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "obs", reason);
}

} // namespace

SamplerConfig
SamplerConfig::fromEnv()
{
    return fromOptions(sim::SimOptions::fromEnv());
}

SamplerConfig
SamplerConfig::fromOptions(const sim::SimOptions &opt)
{
    SamplerConfig cfg;
    cfg.interval = opt.obsInterval;
    cfg.capacity = opt.obsRing;
    return cfg;
}

IntervalSeries::IntervalSeries(std::vector<std::string> column_names,
                               std::size_t capacity)
    : names(std::move(column_names)), cap(capacity)
{
    if (cap == 0)
        fail("interval series capacity must be positive");
    instrs.resize(cap, 0);
    cycles.resize(cap, 0);
    data.resize(cap * names.size(), 0);
}

void
IntervalSeries::append(std::uint64_t instructions, std::uint64_t cycle,
                       const std::vector<std::uint64_t> &values)
{
    if (values.size() != names.size()) {
        fail("interval sample width " + std::to_string(values.size()) +
             " does not match column count " +
             std::to_string(names.size()));
    }
    instrs[next] = instructions;
    cycles[next] = cycle;
    std::uint64_t *row = data.data() + next * names.size();
    for (std::size_t i = 0; i < values.size(); ++i)
        row[i] = values[i];
    next = (next + 1) % cap;
    if (held < cap)
        ++held;
    else
        ++overwritten;
}

IntervalSeries::Sample
IntervalSeries::sample(std::size_t i) const
{
    if (i >= held)
        fail("interval sample index " + std::to_string(i) +
             " out of range (size " + std::to_string(held) + ")");
    // Oldest sample sits at `next` once the ring has wrapped.
    std::size_t slot = held < cap ? i : (next + i) % cap;
    Sample s;
    s.instructions = instrs[slot];
    s.cycle = cycles[slot];
    s.values = data.data() + slot * names.size();
    return s;
}

IntervalSampler::IntervalSampler(const MetricsRegistry *registry,
                                 const SamplerConfig &cfg)
    : reg(registry), step(cfg.interval), nextAt(cfg.interval),
      ring(registry ? registry->counterNames()
                    : std::vector<std::string>{},
           cfg.capacity)
{
    if (!reg)
        fail("interval sampler needs a registry");
    if (step == 0)
        fail("interval sampler needs a positive interval");
    scratch.reserve(ring.columns().size());
}

void
IntervalSampler::takeSample(std::uint64_t retired, std::uint64_t cycle)
{
    reg->sampleCounters(scratch);
    ring.append(retired, cycle, scratch);
    // One sample per boundary crossing even when several boundaries
    // passed since the last call (e.g. a multi-retire cycle).
    nextAt = (retired / step + 1) * step;
}

} // namespace berti::obs
