/**
 * @file
 * Interval-resolved time series: a ring-buffered table of counter
 * samples taken every N retired instructions, so phase behaviour
 * (Berti paper section IV, Bueno et al.'s representativeness critique)
 * can be inspected instead of only end-to-end aggregates.
 *
 * The sampler is off by default and costs one pointer test per machine
 * tick when disabled. When enabled (BERTI_OBS_INTERVAL=N), each sample
 * is one pass over the registry's counter cells into preallocated ring
 * storage — no allocation on the simulation path after construction.
 */

#ifndef BERTI_OBS_TIMESERIES_HH
#define BERTI_OBS_TIMESERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::obs
{

/** Interval sampling configuration, resolved once per MachineConfig. */
struct SamplerConfig
{
    /** Instructions between samples; 0 disables sampling entirely. */
    std::uint64_t interval = 0;

    /** Ring capacity in samples; the ring keeps the most recent ones. */
    std::size_t capacity = 1024;

    /**
     * Environment defaults: BERTI_OBS_INTERVAL=N enables sampling every
     * N retired instructions; BERTI_OBS_RING=K overrides the ring
     * capacity. A malformed (non-positive-integer) value throws
     * verify::SimError(ErrorKind::Config), like BERTI_JOBS.
     */
    static SamplerConfig fromEnv();

    /** The same knobs taken from an already-parsed options value. */
    static SamplerConfig fromOptions(const sim::SimOptions &opt);
};

/**
 * Fixed-capacity ring of counter-row samples. Column names are fixed at
 * construction; every append stores one value per column plus the
 * (instructions, cycle) position of the sample. When the ring is full
 * the oldest sample is overwritten and dropped() grows.
 */
class IntervalSeries
{
  public:
    IntervalSeries(std::vector<std::string> column_names,
                   std::size_t capacity);

    /** values.size() must equal columns().size(); throws
     *  verify::SimError(ErrorKind::Config) otherwise. Zero-alloc. */
    void append(std::uint64_t instructions, std::uint64_t cycle,
                const std::vector<std::uint64_t> &values);

    const std::vector<std::string> &columns() const { return names; }

    /** Samples currently held (<= capacity). */
    std::size_t size() const { return held; }
    std::size_t capacity() const { return cap; }

    /** Samples overwritten because the ring wrapped. */
    std::uint64_t dropped() const { return overwritten; }

    /** Total appends ever (size() + dropped()). */
    std::uint64_t totalAppends() const { return held + overwritten; }

    struct Sample
    {
        std::uint64_t instructions = 0;
        std::uint64_t cycle = 0;
        const std::uint64_t *values = nullptr;  //!< columns().size() wide
    };

    /** i = 0 is the oldest retained sample, i = size()-1 the newest. */
    Sample sample(std::size_t i) const;

  private:
    std::vector<std::string> names;
    std::size_t cap;
    std::size_t held = 0;
    std::size_t next = 0;          //!< ring write index
    std::uint64_t overwritten = 0;
    std::vector<std::uint64_t> instrs;   //!< cap entries
    std::vector<std::uint64_t> cycles;   //!< cap entries
    std::vector<std::uint64_t> data;     //!< cap * names.size() entries
};

/**
 * Drives an IntervalSeries from a MetricsRegistry: call
 * maybeSample(retired, cycle) on the machine tick path; a sample is
 * taken each time the retired-instruction count crosses the next
 * interval boundary.
 */
class IntervalSampler
{
  public:
    /** The registry must outlive the sampler; its counter set is frozen
     *  at sampler construction. cfg.interval must be positive. */
    IntervalSampler(const MetricsRegistry *registry,
                    const SamplerConfig &cfg);

    void
    maybeSample(std::uint64_t retired_instructions, std::uint64_t cycle)
    {
        if (retired_instructions >= nextAt)
            takeSample(retired_instructions, cycle);
    }

    const IntervalSeries &series() const { return ring; }
    std::uint64_t interval() const { return step; }

  private:
    void takeSample(std::uint64_t retired, std::uint64_t cycle);

    const MetricsRegistry *reg;
    std::uint64_t step;
    std::uint64_t nextAt;
    IntervalSeries ring;
    std::vector<std::uint64_t> scratch;  //!< reused sample row
};

} // namespace berti::obs

#endif // BERTI_OBS_TIMESERIES_HH
