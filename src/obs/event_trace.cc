#include "obs/event_trace.hh"

#include <string>

#include "sim/options.hh"
#include "verify/sim_error.hh"

namespace berti::obs
{

namespace
{

[[noreturn]] void
fail(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "obs", reason);
}

} // namespace

const char *
pfEventName(PfEvent e)
{
    switch (e) {
      case PfEvent::Issue: return "issue";
      case PfEvent::Fill: return "fill";
      case PfEvent::Useful: return "useful";
      case PfEvent::Late: return "late";
      case PfEvent::CrossPage: return "cross_page";
      case PfEvent::DropTlb: return "drop_tlb";
      case PfEvent::DropFull: return "drop_full";
    }
    return "unknown";
}

TraceConfig
TraceConfig::fromEnv()
{
    return fromOptions(sim::SimOptions::fromEnv());
}

TraceConfig
TraceConfig::fromOptions(const sim::SimOptions &opt)
{
    TraceConfig cfg;
    cfg.capacity = opt.pfTraceCapacity;
    cfg.samplePeriod = opt.pfTracePeriod;
    return cfg;
}

PrefetchEventTrace::PrefetchEventTrace(const TraceConfig &cfg)
    : ring(cfg.capacity), period(cfg.samplePeriod)
{
    if (cfg.capacity == 0)
        fail("prefetch event trace capacity must be positive");
    if (period == 0)
        fail("prefetch event trace sample period must be positive");
}

const PfEventRecord &
PrefetchEventTrace::event(std::size_t i) const
{
    if (i >= held)
        fail("event index " + std::to_string(i) +
             " out of range (size " + std::to_string(held) + ")");
    std::size_t slot = held < ring.size() ? i : (next + i) % ring.size();
    return ring[slot];
}

} // namespace berti::obs
