#include "obs/event_trace.hh"

#include <cstdlib>

#include "verify/sim_error.hh"

namespace berti::obs
{

namespace
{

[[noreturn]] void
fail(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "obs", reason);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (!end || *end != '\0' || v == 0) {
        fail(std::string(name) + "=\"" + raw +
             "\" is not a positive integer");
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

const char *
pfEventName(PfEvent e)
{
    switch (e) {
      case PfEvent::Issue: return "issue";
      case PfEvent::Fill: return "fill";
      case PfEvent::Useful: return "useful";
      case PfEvent::Late: return "late";
      case PfEvent::CrossPage: return "cross_page";
      case PfEvent::DropTlb: return "drop_tlb";
      case PfEvent::DropFull: return "drop_full";
    }
    return "unknown";
}

TraceConfig
TraceConfig::fromEnv()
{
    TraceConfig cfg;
    if (std::getenv("BERTI_OBS_PFTRACE"))
        cfg.capacity =
            static_cast<std::size_t>(envU64("BERTI_OBS_PFTRACE", 0));
    cfg.samplePeriod =
        envU64("BERTI_OBS_PFTRACE_PERIOD", cfg.samplePeriod);
    return cfg;
}

PrefetchEventTrace::PrefetchEventTrace(const TraceConfig &cfg)
    : ring(cfg.capacity), period(cfg.samplePeriod)
{
    if (cfg.capacity == 0)
        fail("prefetch event trace capacity must be positive");
    if (period == 0)
        fail("prefetch event trace sample period must be positive");
}

const PfEventRecord &
PrefetchEventTrace::event(std::size_t i) const
{
    if (i >= held)
        fail("event index " + std::to_string(i) +
             " out of range (size " + std::to_string(held) + ")");
    std::size_t slot = held < ring.size() ? i : (next + i) % ring.size();
    return ring[slot];
}

} // namespace berti::obs
