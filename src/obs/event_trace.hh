/**
 * @file
 * Prefetch event trace: a capped, optionally sampled ring of the
 * individual prefetch lifecycle events (issue, fill, first useful hit,
 * late merge, cross-page issue, drops) at one cache level, so Berti's
 * timeliness claims can be inspected event by event instead of only
 * through aggregate counters. Off by default; a disabled trace is a
 * null pointer in the cache and costs one branch per event site.
 */

#ifndef BERTI_OBS_EVENT_TRACE_HH
#define BERTI_OBS_EVENT_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace berti::sim
{
struct SimOptions;
} // namespace berti::sim

namespace berti::obs
{

/** Lifecycle stage of a traced prefetch event. */
enum class PfEvent : std::uint8_t
{
    Issue,      //!< accepted into the prefetch queue
    Fill,       //!< line installed by a prefetch
    Useful,     //!< first demand hit on a prefetched line (timely)
    Late,       //!< demand merged into an in-flight prefetch MSHR
    CrossPage,  //!< issued into a different page than its trigger
    DropTlb,    //!< dropped: STLB miss on translation
    DropFull    //!< dropped: prefetch queue full
};

constexpr std::size_t kPfEventKinds = 7;

const char *pfEventName(PfEvent e);

/** Event trace configuration, resolved once per MachineConfig. */
struct TraceConfig
{
    /** Ring capacity in events; 0 disables tracing entirely. */
    std::size_t capacity = 0;

    /** Record every Nth event (per kind-independent arrival order). */
    std::uint64_t samplePeriod = 1;

    /**
     * Environment defaults: BERTI_OBS_PFTRACE=N enables an N-event ring
     * (N >= 1); BERTI_OBS_PFTRACE_PERIOD=K keeps every Kth event. A
     * malformed value throws verify::SimError(ErrorKind::Config).
     */
    static TraceConfig fromEnv();

    /** The same knobs taken from an already-parsed options value. */
    static TraceConfig fromOptions(const sim::SimOptions &opt);
};

/** One recorded prefetch event. */
struct PfEventRecord
{
    Cycle cycle = 0;
    Addr line = kNoAddr;   //!< virtual line at L1D, physical below
    Addr ip = 0;           //!< triggering/allocating IP when known
    PfEvent kind = PfEvent::Issue;
};

/**
 * Capped + sampled ring of PfEventRecords. Per-kind totals are always
 * exact regardless of sampling, so the trace doubles as a cheap event
 * census; the ring holds the most recent sampled events.
 */
class PrefetchEventTrace
{
  public:
    explicit PrefetchEventTrace(const TraceConfig &cfg);

    void
    record(Cycle cycle, PfEvent kind, Addr line, Addr ip)
    {
        ++totals[static_cast<std::size_t>(kind)];
        if (++arrivals % period != 0)
            return;
        PfEventRecord &r = ring[next];
        r.cycle = cycle;
        r.line = line;
        r.ip = ip;
        r.kind = kind;
        next = (next + 1) % ring.size();
        if (held < ring.size())
            ++held;
    }

    /** Events retained in the ring (<= capacity). */
    std::size_t size() const { return held; }
    std::size_t capacity() const { return ring.size(); }
    std::uint64_t samplePeriod() const { return period; }

    /** Exact per-kind event count, independent of sampling/capping. */
    std::uint64_t total(PfEvent kind) const
    {
        return totals[static_cast<std::size_t>(kind)];
    }

    /** All events ever seen (sampled or not). */
    std::uint64_t totalSeen() const { return arrivals; }

    /** i = 0 is the oldest retained event, i = size()-1 the newest. */
    const PfEventRecord &event(std::size_t i) const;

  private:
    std::vector<PfEventRecord> ring;
    std::uint64_t period;
    std::size_t held = 0;
    std::size_t next = 0;
    std::uint64_t arrivals = 0;
    std::array<std::uint64_t, kPfEventKinds> totals{};
};

} // namespace berti::obs

#endif // BERTI_OBS_EVENT_TRACE_HH
