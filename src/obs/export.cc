#include "obs/export.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "verify/sim_error.hh"

namespace berti::obs
{

namespace
{

[[noreturn]] void
failIo(const std::string &reason, const std::string &path = {},
       std::uint64_t offset = 0)
{
    throw verify::SimError(verify::ErrorKind::TraceIo, "obs", reason,
                           path, offset);
}

std::string
escapeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
valueString(const MetricsSnapshot::Value &v)
{
    if (v.kind == MetricKind::Counter)
        return std::to_string(v.u);
    return formatDouble(v.d);
}

std::string
describeValue(const MetricsSnapshot::Value &v)
{
    return std::string(metricKindName(v.kind)) + " " + valueString(v);
}

} // namespace

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
toJson(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    os << "{\n  \"schema_version\": " << MetricsSnapshot::kSchemaVersion
       << ",\n";

    auto section = [&os, &snap](const char *title, MetricKind kind,
                                bool last) {
        os << "  \"" << title << "\": {";
        bool first = true;
        for (const auto &[name, value] : snap.values()) {
            if (value.kind != kind)
                continue;
            os << (first ? "\n" : ",\n") << "    \"" << escapeName(name)
               << "\": " << valueString(value);
            first = false;
        }
        os << (first ? "}" : "\n  }") << (last ? "\n" : ",\n");
    };
    section("counters", MetricKind::Counter, false);
    section("gauges", MetricKind::Gauge, true);
    os << "}\n";
    return os.str();
}

std::string
toCsv(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    os << "name,kind,value\n";
    for (const auto &[name, value] : snap.values()) {
        os << name << ',' << metricKindName(value.kind) << ','
           << valueString(value) << '\n';
    }
    return os.str();
}

std::string
toCsv(const IntervalSeries &series)
{
    std::ostringstream os;
    os << "instructions,cycle";
    for (const auto &name : series.columns())
        os << ',' << name;
    os << '\n';
    for (std::size_t i = 0; i < series.size(); ++i) {
        IntervalSeries::Sample s = series.sample(i);
        os << s.instructions << ',' << s.cycle;
        for (std::size_t c = 0; c < series.columns().size(); ++c)
            os << ',' << s.values[c];
        os << '\n';
    }
    return os.str();
}

std::string
toJson(const PrefetchEventTrace &trace)
{
    // Kinds listed by sorted name so the document is stable.
    static constexpr PfEvent kSorted[] = {
        PfEvent::CrossPage, PfEvent::DropFull, PfEvent::DropTlb,
        PfEvent::Fill,      PfEvent::Issue,    PfEvent::Late,
        PfEvent::Useful,
    };
    std::ostringstream os;
    os << "{\n  \"schema_version\": " << MetricsSnapshot::kSchemaVersion
       << ",\n  \"sample_period\": " << trace.samplePeriod()
       << ",\n  \"totals\": {";
    for (std::size_t i = 0; i < std::size(kSorted); ++i) {
        os << (i ? ",\n" : "\n") << "    \"" << pfEventName(kSorted[i])
           << "\": " << trace.total(kSorted[i]);
    }
    os << "\n  },\n  \"events\": [";
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const PfEventRecord &e = trace.event(i);
        os << (i ? ",\n" : "\n") << "    {\"cycle\": " << e.cycle
           << ", \"ip\": " << e.ip << ", \"kind\": \""
           << pfEventName(e.kind) << "\", \"line\": " << e.line << "}";
    }
    os << (trace.size() ? "\n  ]\n" : "]\n") << "}\n";
    return os.str();
}

// ------------------------------------------------------------ JSON reader

namespace
{

/** Minimal reader for the flat snapshot schema toJson() emits. */
class SnapshotReader
{
  public:
    SnapshotReader(const std::string &text, const std::string &origin)
        : s(text), path(origin)
    {}

    MetricsSnapshot
    parse()
    {
        MetricsSnapshot snap;
        bool saw_version = false;
        expect('{');
        while (true) {
            std::string key = readString();
            expect(':');
            if (key == "schema_version") {
                std::uint64_t v = readU64();
                if (v != MetricsSnapshot::kSchemaVersion) {
                    failIo("schema_version " + std::to_string(v) +
                               " != supported version " +
                               std::to_string(
                                   MetricsSnapshot::kSchemaVersion),
                           path, pos);
                }
                saw_version = true;
            } else if (key == "counters") {
                readSection(snap, MetricKind::Counter);
            } else if (key == "gauges") {
                readSection(snap, MetricKind::Gauge);
            } else {
                failIo("unknown top-level key \"" + key + "\"", path,
                       pos);
            }
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            break;
        }
        expect('}');
        if (!saw_version)
            failIo("document has no schema_version", path, pos);
        return snap;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            failIo("unexpected end of document", path, pos);
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            failIo(std::string("expected '") + c + "', found '" +
                       s[pos] + "'",
                   path, pos);
        ++pos;
    }

    std::string
    readString()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\' && pos + 1 < s.size())
                ++pos;
            out.push_back(s[pos++]);
        }
        if (pos >= s.size())
            failIo("unterminated string", path, pos);
        ++pos;  // closing quote
        return out;
    }

    std::uint64_t
    readU64()
    {
        skipWs();
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s.c_str() + pos, &end, 10);
        if (end == s.c_str() + pos || errno == ERANGE)
            failIo("expected an unsigned integer", path, pos);
        pos = static_cast<std::size_t>(end - s.c_str());
        return static_cast<std::uint64_t>(v);
    }

    double
    readDouble()
    {
        skipWs();
        char *end = nullptr;
        errno = 0;
        double v = std::strtod(s.c_str() + pos, &end);
        if (end == s.c_str() + pos)
            failIo("expected a number", path, pos);
        pos = static_cast<std::size_t>(end - s.c_str());
        return v;
    }

    void
    readSection(MetricsSnapshot &snap, MetricKind kind)
    {
        expect('{');
        if (peek() == '}') {
            ++pos;
            return;
        }
        while (true) {
            std::string name = readString();
            expect(':');
            if (snap.contains(name))
                failIo("duplicate metric \"" + name + "\"", path, pos);
            if (kind == MetricKind::Counter)
                snap.setCounter(name, readU64());
            else
                snap.setGauge(name, readDouble());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            break;
        }
        expect('}');
    }

    const std::string &s;
    std::string path;
    std::size_t pos = 0;
};

} // namespace

MetricsSnapshot
snapshotFromJson(const std::string &json, const std::string &origin)
{
    return SnapshotReader(json, origin).parse();
}

std::vector<FieldDiff>
diffSnapshots(const MetricsSnapshot &expected,
              const MetricsSnapshot &actual)
{
    std::vector<FieldDiff> out;
    auto e = expected.values().begin();
    auto a = actual.values().begin();
    while (e != expected.values().end() || a != actual.values().end()) {
        if (a == actual.values().end() ||
            (e != expected.values().end() && e->first < a->first)) {
            out.push_back({e->first, describeValue(e->second),
                           "<missing>"});
            ++e;
        } else if (e == expected.values().end() || a->first < e->first) {
            out.push_back({a->first, "<missing>",
                           describeValue(a->second)});
            ++a;
        } else {
            std::string ev = describeValue(e->second);
            std::string av = describeValue(a->second);
            if (ev != av)
                out.push_back({e->first, ev, av});
            ++e;
            ++a;
        }
    }
    return out;
}

std::string
formatDiff(const std::vector<FieldDiff> &diffs)
{
    std::size_t w = 0;
    for (const auto &d : diffs)
        w = std::max(w, d.name.size());
    std::ostringstream os;
    for (const auto &d : diffs) {
        os << "  " << d.name << std::string(w - d.name.size() + 2, ' ')
           << "expected: " << d.expected << "  actual: " << d.actual
           << '\n';
    }
    return os.str();
}

MetricsSnapshot
snapshotOf(const RunStats &stats)
{
    MetricsSnapshot snap;
    visitRunStatsCounters(
        stats, [&snap](const std::string &name, const std::uint64_t &v) {
            snap.setCounter(name, v);
        });
    snap.setGauge("core.ipc", stats.core.ipc());
    auto derived = [&snap, &stats](const char *p, const CacheStats &c) {
        std::string prefix(p);
        snap.setGauge(prefix + "accuracy", c.accuracy());
        snap.setGauge(prefix + "avg_fill_latency", c.avgFillLatency());
        snap.setGauge(prefix + "mpki", c.mpki(stats.core.instructions));
        snap.setCounter(prefix + "prefetch_timely", c.prefetchTimely());
    };
    derived("l1d.", stats.l1d);
    derived("l1i.", stats.l1i);
    derived("l2.", stats.l2);
    derived("llc.", stats.llc);
    return snap;
}

void
appendEnergy(MetricsSnapshot &snap, const EnergyBreakdown &energy)
{
    snap.setGauge("energy.dram", energy.dram);
    snap.setGauge("energy.l1", energy.l1);
    snap.setGauge("energy.l2", energy.l2);
    snap.setGauge("energy.llc", energy.llc);
    snap.setGauge("energy.total", energy.total());
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);

    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            failIo("cannot open for writing", tmp);
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        if (!os)
            failIo("short write", tmp);
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        failIo("rename failed: " + ec.message(), path);
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        failIo("cannot open for reading", path);
    std::ostringstream os;
    os << is.rdbuf();
    if (!is)
        failIo("read failed", path);
    return os.str();
}

std::size_t
removeStaleTempFiles(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    std::size_t removed = 0;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        if (entry.path().extension() == ".tmp" &&
            std::filesystem::remove(entry.path(), ec) && !ec) {
            ++removed;
        }
    }
    return removed;
}

} // namespace berti::obs
