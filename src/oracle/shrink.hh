/**
 * @file
 * Greedy micro-trace shrinker (ddmin-style). Given a failing trace and a
 * predicate that re-runs the failure, it repeatedly deletes chunks —
 * halves, quarters, down to single ops — keeping any deletion that still
 * fails, then zeroes the gaps it can. The result is a near-minimal
 * counterexample dumped as a replayable .trace artifact.
 */

#ifndef BERTI_ORACLE_SHRINK_HH
#define BERTI_ORACLE_SHRINK_HH

#include <cstdint>
#include <functional>
#include <string>

#include "oracle/microtrace.hh"

namespace berti::oracle
{

/** Re-runs the failing property: true = this trace still fails. */
using StillFails = std::function<bool(const MicroTrace &)>;

struct ShrinkStats
{
    std::size_t originalOps = 0;
    std::size_t shrunkOps = 0;
    std::uint64_t predicateRuns = 0;
};

/**
 * Minimize a failing trace. The predicate must return true for the
 * input trace (the caller established the failure); the returned trace
 * is guaranteed to still satisfy it.
 */
MicroTrace shrinkTrace(const MicroTrace &failing, const StillFails &fails,
                       ShrinkStats *stats = nullptr);

/**
 * Shrink and persist: minimizes, writes the artifact to
 * artifactDir()/<label>.trace, and returns the minimized trace. The
 * path written is reported through *artifact_path when non-null.
 */
MicroTrace shrinkToArtifact(const MicroTrace &failing,
                            const StillFails &fails,
                            const std::string &label,
                            std::string *artifact_path = nullptr,
                            ShrinkStats *stats = nullptr);

} // namespace berti::oracle

#endif // BERTI_ORACLE_SHRINK_HH
