/**
 * @file
 * TeePrefetcher: transparent recorder wrapped around a real prefetcher
 * inside a running Machine. It interposes on both directions — the
 * cache's onAccess/onFill hooks and the prefetcher's issue port — and
 * logs every event together with the clock and MSHR occupancy the inner
 * prefetcher observed. The log replays into an event-fed reference
 * model (RefBerti) for end-to-end differential comparison without
 * perturbing the simulation.
 */

#ifndef BERTI_ORACLE_TEE_HH
#define BERTI_ORACLE_TEE_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "prefetch/registry.hh"
#include "sim/types.hh"

namespace berti::oracle
{

/** Everything a prefetcher could have observed at one hook call. */
struct TeeEvent
{
    bool isFill = false;
    Prefetcher::AccessInfo access;
    Prefetcher::FillInfo fill;
    Cycle now = 0;
    double mshrOccupancy = 0.0;
};

/** Recorded log; owned by the test, outliving the Machine's tee. */
struct TeeLog
{
    std::vector<TeeEvent> events;

    struct Issue
    {
        Addr line = kNoAddr;
        FillLevel level = FillLevel::L1;
    };
    std::vector<Issue> issues;
};

class TeePrefetcher : public Prefetcher, public PrefetchPort
{
  public:
    TeePrefetcher(std::unique_ptr<Prefetcher> inner_pf, TeeLog *log_out)
        : inner(std::move(inner_pf)), log(log_out)
    {
    }

    void
    onAccess(const AccessInfo &info) override
    {
        bindInner();
        TeeEvent e;
        e.access = info;
        e.now = port->now();
        e.mshrOccupancy = port->mshrOccupancy();
        log->events.push_back(e);
        inner->onAccess(info);
    }

    void
    onFill(const FillInfo &info) override
    {
        bindInner();
        TeeEvent e;
        e.isFill = true;
        e.fill = info;
        e.now = port->now();
        e.mshrOccupancy = port->mshrOccupancy();
        log->events.push_back(e);
        inner->onFill(info);
    }

    void
    tick() override
    {
        bindInner();
        inner->tick();
    }

    std::uint64_t storageBits() const override
    {
        return inner->storageBits();
    }

    std::string name() const override { return "tee:" + inner->name(); }

    std::string debugState() const override
    {
        return inner->debugState();
    }

    Prefetcher *innerPrefetcher() { return inner.get(); }

    // PrefetchPort: the inner prefetcher issues through us.
    bool
    issuePrefetch(Addr line_addr, FillLevel level) override
    {
        log->issues.push_back({line_addr, level});
        return port->issuePrefetch(line_addr, level);
    }

    double mshrOccupancy() const override
    {
        return port->mshrOccupancy();
    }

    Cycle now() const override { return port->now(); }

  private:
    /**
     * Prefetcher::bind is non-virtual and runs before events flow, so
     * the inner prefetcher is pointed at us lazily, on the first hook
     * call (by which time the host cache has bound this tee).
     */
    void
    bindInner()
    {
        if (!innerBound) {
            inner->bind(this);
            innerBound = true;
        }
    }

    std::unique_ptr<Prefetcher> inner;
    TeeLog *log;
    bool innerBound = false;
};

/**
 * Registry decorator: wrap any prefetcher factory so every instance it
 * builds records into *log. The usual wiring is one line:
 *
 *     cfg.l1dPrefetcher = oracle::teeFactory(prefetch::make("berti"),
 *                                            &log);
 *
 * The log must outlive every Machine built from the factory.
 */
inline prefetch::Factory
teeFactory(prefetch::Factory inner, TeeLog *log)
{
    return prefetch::decorate(
        std::move(inner), [log](std::unique_ptr<Prefetcher> pf) {
            return std::make_unique<TeePrefetcher>(std::move(pf), log);
        });
}

} // namespace berti::oracle

#endif // BERTI_ORACLE_TEE_HH
