#include "oracle/microtrace.hh"

#include <cstdlib>

#include "sim/options.hh"
#include "trace/trace_io.hh"
#include "verify/sim_error.hh"

namespace berti::oracle
{

namespace
{

// All generators place data in a small region so the deliberately tiny
// differential caches (16x4 L1) see real capacity and conflict pressure.
constexpr Addr kBaseLine = lineAddr(0x10000000ull);

MicroOp
load(Addr line, Addr ip, unsigned gap = 0)
{
    return {MicroOpKind::Load, line, ip, gap};
}

/**
 * Interleaved strides whose deltas keep crossing 4 KB page boundaries:
 * several IPs with large positive/negative line strides, the cactu-like
 * regime that exercises Berti's cross-page issuing and the hierarchy's
 * page-spanning fills.
 */
MicroTrace
genPageCrossingStrides(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    struct Stream
    {
        Addr ip;
        Addr pos;
        std::int64_t stride;
    };
    std::vector<Stream> streams;
    unsigned n_streams = 2 + static_cast<unsigned>(rng.nextBounded(4));
    for (unsigned s = 0; s < n_streams; ++s) {
        // Strides around the 64-lines-per-page boundary, signed.
        std::int64_t stride =
            static_cast<std::int64_t>(rng.nextBounded(2 * kLinesPerPage)) -
            static_cast<std::int64_t>(kLinesPerPage);
        if (stride == 0)
            stride = kLinesPerPage;  // always page-crossing
        streams.push_back({0x400000 + 4 * s,
                           kBaseLine + rng.nextBounded(512), stride});
    }
    while (t.ops.size() < n_ops) {
        Stream &s = streams[rng.nextBounded(streams.size())];
        bool rfo = rng.nextBool(0.2);
        t.ops.push_back({rfo ? MicroOpKind::Rfo : MicroOpKind::Load,
                         s.pos, s.ip, 0});
        s.pos = static_cast<Addr>(
            static_cast<std::int64_t>(s.pos) + s.stride);
        // Keep inside an 8 MB window so the pattern stays plausible.
        if (s.pos < kBaseLine || s.pos > kBaseLine + (1u << 17))
            s.pos = kBaseLine + rng.nextBounded(512);
    }
    return t;
}

/**
 * Set-aliasing storm: every address maps to a handful of cache sets
 * (strides that are multiples of the L1 set count), forcing constant
 * evictions, dirty-victim writebacks and LRU decisions — the regime
 * where a recency or victim-choice bug shows immediately.
 */
MicroTrace
genAliasingSets(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    unsigned n_sets = 1 + static_cast<unsigned>(rng.nextBounded(3));
    unsigned depth = 6 + static_cast<unsigned>(rng.nextBounded(6));
    while (t.ops.size() < n_ops) {
        unsigned set = static_cast<unsigned>(rng.nextBounded(n_sets));
        unsigned way = static_cast<unsigned>(rng.nextBounded(depth));
        // Multiples of 64 lines alias in a 16-set L1 and a 32-set L2.
        Addr line = kBaseLine + set + 64ull * way;
        bool rfo = rng.nextBool(0.4);
        t.ops.push_back({rfo ? MicroOpKind::Rfo : MicroOpKind::Load,
                         line, 0x400000 + 4 * set, 0});
    }
    return t;
}

/**
 * TLB-thrashing sweep: one access per page over far more pages than any
 * TLB holds, revisited in a rotating pattern. At the hierarchy level
 * this is a worst-case reuse-distance workload.
 */
MicroTrace
genTlbThrash(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    unsigned n_pages = 128 + static_cast<unsigned>(rng.nextBounded(128));
    Addr page = rng.nextBounded(n_pages);
    while (t.ops.size() < n_ops) {
        Addr line = kBaseLine + page * kLinesPerPage +
                    rng.nextBounded(kLinesPerPage);
        bool rfo = rng.nextBool(0.25);
        t.ops.push_back({rfo ? MicroOpKind::Rfo : MicroOpKind::Load,
                         line, 0x400100, 0});
        page = (page + 1 + rng.nextBounded(7)) % n_pages;
    }
    return t;
}

/**
 * Writeback races: RFOs dirty a small aliasing working set, interleaved
 * with explicit writebacks of recently missed lines at zero gap — in
 * the concurrent driver this is exactly the duplicate-tag regime of the
 * writeback-racing-inflight-miss bug.
 */
MicroTrace
genWritebackRaces(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    std::vector<Addr> recent;
    while (t.ops.size() < n_ops) {
        Addr line = kBaseLine + 64ull * rng.nextBounded(16) +
                    rng.nextBounded(2);
        double roll = rng.nextDouble();
        if (roll < 0.45 || recent.empty()) {
            t.ops.push_back(load(line, 0x400200,
                                 static_cast<unsigned>(
                                     rng.nextBounded(3))));
            recent.push_back(line);
        } else if (roll < 0.7) {
            t.ops.push_back({MicroOpKind::Rfo, line, 0x400204,
                             static_cast<unsigned>(rng.nextBounded(3))});
            recent.push_back(line);
        } else {
            // Write back a line whose miss may still be in flight.
            Addr victim = recent[rng.nextBounded(recent.size())];
            t.ops.push_back({MicroOpKind::Writeback, victim,
                             kWritebackSentinelIp, 0});
        }
        if (recent.size() > 8)
            recent.erase(recent.begin());
    }
    return t;
}

/**
 * Pointer-chase-like permutation walk: a hash-scrambled cycle over a
 * region larger than the L1, with no learnable stride.
 */
MicroTrace
genPointerChase(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    unsigned region = 256 + static_cast<unsigned>(rng.nextBounded(256));
    std::uint64_t mult = rng.next() | 1;  // odd => bijective mod 2^64
    Addr idx = rng.nextBounded(region);
    while (t.ops.size() < n_ops) {
        Addr line = kBaseLine + (idx * mult + 12345) % region;
        t.ops.push_back(load(line, 0x400300 + 4 * (idx % 4)));
        idx = (idx * mult + 12345) % region;
    }
    return t;
}

/** Uniform chaos: random kind, line and gap over a small region. */
MicroTrace
genRandomMix(std::uint64_t seed, std::size_t n_ops)
{
    Rng rng(seed);
    MicroTrace t;
    while (t.ops.size() < n_ops) {
        MicroOp op;
        double roll = rng.nextDouble();
        op.kind = roll < 0.6 ? MicroOpKind::Load
                  : roll < 0.85 ? MicroOpKind::Rfo
                                : MicroOpKind::Writeback;
        op.line = kBaseLine + rng.nextBounded(1024);
        op.ip = op.kind == MicroOpKind::Writeback
                    ? kWritebackSentinelIp
                    : 0x400400 + 4 * rng.nextBounded(8);
        op.gap = static_cast<unsigned>(rng.nextBounded(4));
        t.ops.push_back(op);
    }
    return t;
}

} // namespace

const std::vector<MicroTraceClass> &
microTraceClasses()
{
    static const std::vector<MicroTraceClass> classes = {
        {"page-crossing-strides", genPageCrossingStrides},
        {"aliasing-sets", genAliasingSets},
        {"tlb-thrash", genTlbThrash},
        {"writeback-races", genWritebackRaces},
        {"pointer-chase", genPointerChase},
        {"random-mix", genRandomMix},
    };
    return classes;
}

const MicroTraceClass &
findMicroTraceClass(const std::string &name)
{
    for (const auto &c : microTraceClasses()) {
        if (c.name == name)
            return c;
    }
    throw verify::SimError(verify::ErrorKind::Config, "microtrace",
                           "unknown micro-trace class: " + name);
}

std::vector<TraceInstr>
toInstrs(const MicroTrace &trace)
{
    std::vector<TraceInstr> out;
    out.reserve(trace.ops.size());
    for (const MicroOp &op : trace.ops) {
        for (unsigned g = 0; g < op.gap; ++g) {
            TraceInstr filler;
            filler.ip = kGapSentinelIp;
            out.push_back(filler);
        }
        TraceInstr in;
        Addr byte = lineToByte(op.line);
        switch (op.kind) {
          case MicroOpKind::Load:
            in.ip = op.ip;
            in.load0 = byte;
            break;
          case MicroOpKind::Rfo:
            in.ip = op.ip;
            in.load0 = byte;
            in.store = byte;
            break;
          case MicroOpKind::Writeback:
            in.ip = kWritebackSentinelIp;
            in.store = byte;
            break;
        }
        out.push_back(in);
    }
    return out;
}

MicroTrace
fromInstrs(const std::vector<TraceInstr> &instrs)
{
    MicroTrace t;
    unsigned gap = 0;
    for (const TraceInstr &in : instrs) {
        if (!in.isMem()) {
            ++gap;
            continue;
        }
        MicroOp op;
        op.gap = gap;
        gap = 0;
        if (in.ip == kWritebackSentinelIp && in.load0 == kNoAddr) {
            op.kind = MicroOpKind::Writeback;
            op.ip = kWritebackSentinelIp;
            op.line = lineAddr(in.store);
        } else if (in.store != kNoAddr) {
            op.kind = MicroOpKind::Rfo;
            op.ip = in.ip;
            op.line = lineAddr(in.store);
        } else {
            op.kind = MicroOpKind::Load;
            op.ip = in.ip;
            op.line = lineAddr(in.load0);
        }
        t.ops.push_back(op);
    }
    return t;
}

bool
saveArtifact(const std::string &path, const MicroTrace &trace)
{
    return saveTrace(path, toInstrs(trace)).ok();
}

MicroTrace
loadArtifact(const std::string &path)
{
    auto result = loadTrace(path);
    return fromInstrs(result.value());  // throws the typed error on failure
}

std::uint64_t
testSeed(std::uint64_t fallback)
{
    sim::SimOptions opt = sim::SimOptions::fromEnv();
    return opt.hasTestSeed ? opt.testSeed : fallback;
}

unsigned
propertyIterations(unsigned base)
{
    return base * sim::SimOptions::fromEnv().propIterMultiplier;
}

std::string
artifactDir()
{
    return sim::SimOptions::fromEnv().artifactDir;
}

} // namespace berti::oracle
