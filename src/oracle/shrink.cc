#include "oracle/shrink.hh"

namespace berti::oracle
{

namespace
{

/** Copy of trace with ops[from, from+len) removed. */
MicroTrace
without(const MicroTrace &t, std::size_t from, std::size_t len)
{
    MicroTrace out;
    out.ops.reserve(t.ops.size() - len);
    for (std::size_t i = 0; i < t.ops.size(); ++i) {
        if (i < from || i >= from + len)
            out.ops.push_back(t.ops[i]);
    }
    return out;
}

} // namespace

MicroTrace
shrinkTrace(const MicroTrace &failing, const StillFails &fails,
            ShrinkStats *stats)
{
    MicroTrace current = failing;
    std::uint64_t runs = 0;

    // Chunked deletion, halving the chunk until single ops. Restart at
    // the largest useful chunk after any successful deletion — a
    // smaller trace often admits big deletions again.
    bool progressed = true;
    while (progressed && current.ops.size() > 1) {
        progressed = false;
        for (std::size_t chunk = current.ops.size() / 2; chunk >= 1;
             chunk /= 2) {
            std::size_t i = 0;
            while (i + chunk <= current.ops.size() &&
                   current.ops.size() > 1) {
                MicroTrace candidate = without(current, i, chunk);
                ++runs;
                if (fails(candidate)) {
                    current = std::move(candidate);
                    progressed = true;
                    // Same index now holds the next chunk; retry there.
                } else {
                    i += chunk;
                }
            }
            if (progressed)
                break;  // restart from the biggest chunk
        }
    }

    // Gap normalization: zero every gap the failure does not need.
    for (std::size_t i = 0; i < current.ops.size(); ++i) {
        if (current.ops[i].gap == 0)
            continue;
        MicroTrace candidate = current;
        candidate.ops[i].gap = 0;
        ++runs;
        if (fails(candidate))
            current = std::move(candidate);
    }

    if (stats) {
        stats->originalOps = failing.ops.size();
        stats->shrunkOps = current.ops.size();
        stats->predicateRuns = runs;
    }
    return current;
}

MicroTrace
shrinkToArtifact(const MicroTrace &failing, const StillFails &fails,
                 const std::string &label, std::string *artifact_path,
                 ShrinkStats *stats)
{
    MicroTrace shrunk = shrinkTrace(failing, fails, stats);
    std::string path = artifactDir() + "/" + label + ".trace";
    saveArtifact(path, shrunk);
    if (artifact_path)
        *artifact_path = path;
    return shrunk;
}

} // namespace berti::oracle
