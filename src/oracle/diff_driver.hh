/**
 * @file
 * Differential drivers replaying one MicroTrace through the cycle
 * simulator and the untimed reference hierarchy.
 *
 * Serialized mode is the exact-agreement vehicle: each demand op is
 * submitted alone and the machine is ticked until every queue and MSHR
 * drains before the next op, which removes the only sources of
 * functional timing dependence (MSHR merges and fill-time LRU ordering).
 * In that regime the cycle model must agree with the oracle op-by-op on
 * per-level demand hit/miss/writeback/fill counters, and at the end on
 * exact cache contents, dirty bits and the backing-store writeback
 * sequence. Any mismatch is reported with the first diverging op index
 * so the shrinker can minimize the trace.
 *
 * Concurrent mode keeps ops racing (gaps between submissions, no
 * drains) against a single cache level with a SimAuditor attached at
 * interval 1: the oracle cannot predict racy interleavings, but every
 * structural invariant (duplicate tags, MSHR bookkeeping, stats
 * algebra) must still hold. This is the harness the PR-1
 * writeback-racing-inflight-miss regression is pinned under.
 */

#ifndef BERTI_ORACLE_DIFF_DRIVER_HH
#define BERTI_ORACLE_DIFF_DRIVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "prefetch/prefetcher.hh"
#include "oracle/microtrace.hh"
#include "oracle/ref_cache.hh"
#include "oracle/ref_hierarchy.hh"
#include "sim/types.hh"

namespace berti::oracle
{

/**
 * Fixed-latency backing store below the LLC that records the order of
 * arriving writebacks (compared against the oracle's).
 */
class BackingMemory : public MemLevel
{
  public:
    explicit BackingMemory(const Cycle *clock, Cycle latency = 40)
        : clock(clock), latency(latency)
    {
    }

    bool submitRead(MemRequest req) override
    {
        ++reads;
        pending.push_back({*clock + latency, req});
        return true;
    }

    void submitWriteback(Addr p_line) override
    {
        writebacks.push_back(p_line);
    }

    void tick()
    {
        while (!pending.empty() && pending.front().first <= *clock) {
            MemRequest req = pending.front().second;
            pending.pop_front();
            if (req.client)
                req.client->readDone(req);
        }
    }

    bool idle() const { return pending.empty(); }

    const Cycle *clock;
    Cycle latency;
    std::deque<std::pair<Cycle, MemRequest>> pending;
    std::uint64_t reads = 0;
    std::vector<Addr> writebacks;
};

/**
 * Geometry of the differential hierarchy. Small on purpose — eviction
 * and writeback pressure is where divergences live — and LRU at every
 * level (the oracle models exact LRU only).
 */
struct DiffConfig
{
    unsigned l1Sets = 16, l1Ways = 4;
    unsigned l2Sets = 32, l2Ways = 8;
    unsigned llcSets = 64, llcWays = 16;
    Cycle memLatency = 40;

    /** Injected into the *oracle's* L1 to demonstrate detection. */
    RefPerturbation perturbation;

    RefHierarchyConfig refConfig() const;
};

/** Outcome of one differential replay. */
struct DiffResult
{
    bool diverged = false;
    /** Index of the first diverging op (ops.size() for end-state). */
    std::size_t opIndex = 0;
    std::string message;
};

/** Replay the trace through both models; see file comment. */
DiffResult runSerializedDiff(const MicroTrace &trace,
                             const DiffConfig &cfg = {});

/** Outcome of a concurrent (racing) replay. */
struct ConcurrentResult
{
    bool failed = false;
    std::string message;
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t demandMerged = 0;
};

/**
 * Race the trace against one L1-geometry cache over a backing store,
 * auditing every cycle. Fails on any SimError (invariant violation,
 * wedge) or on a stats-algebra mismatch after the final drain.
 */
ConcurrentResult runConcurrent(const MicroTrace &trace,
                               const DiffConfig &cfg = {});

/** Counters of one serialized replay with prefetchers attached. */
struct SerializedRunStats
{
    CacheStats l1;
    CacheStats l2;
    CacheStats llc;
    std::uint64_t demandOps = 0;   //!< Load/RFO ops submitted
    std::uint64_t completed = 0;   //!< demand completions observed
    bool wedged = false;
    std::string message;
};

/**
 * Serialized replay of the same trace with arbitrary prefetchers on the
 * L1/L2 (either may be null). Demand ops still run one at a time to
 * completion; prefetch traffic is allowed a settle window after each op
 * instead of a strict drain (a prefetcher may legally keep its queues
 * busy). Used by the metamorphic invariants: whatever the prefetcher
 * does, demand semantics must not change.
 */
SerializedRunStats
runSerializedWithPrefetchers(const MicroTrace &trace,
                             const DiffConfig &cfg,
                             std::unique_ptr<Prefetcher> l1_pf,
                             std::unique_ptr<Prefetcher> l2_pf);

} // namespace berti::oracle

#endif // BERTI_ORACLE_DIFF_DRIVER_HH
