#include "oracle/ref_hierarchy.hh"

namespace berti::oracle
{

const char *
refHitLevelName(RefHitLevel l)
{
    switch (l) {
      case RefHitLevel::L1:
        return "l1";
      case RefHitLevel::L2:
        return "l2";
      case RefHitLevel::Llc:
        return "llc";
      case RefHitLevel::Memory:
        return "memory";
    }
    return "?";
}

RefHierarchy::RefHierarchy(const RefHierarchyConfig &cfg)
    : l1Cache(cfg.l1), l2Cache(cfg.l2), llcCache(cfg.llc)
{
}

void
RefHierarchy::fillInto(RefCache &level, Addr p_line, bool dirty)
{
    Addr victim = kNoAddr;
    bool victim_dirty = false;
    if (!level.fill(p_line, dirty, &victim, &victim_dirty))
        return;
    if (!victim_dirty)
        return;
    if (&level == &l1Cache)
        toL2.push_back(victim);
    else if (&level == &l2Cache)
        toLlc.push_back(victim);
    else
        memWritebacks.push_back(victim);
}

void
RefHierarchy::drainWritebacks()
{
    // The machine ticks the LLC before each L2, so an LLC-queue entry is
    // always consumed before the next L2-queue entry: LLC-first priority
    // reproduces the cycle model's drain order.
    while (!toLlc.empty() || !toL2.empty()) {
        if (!toLlc.empty()) {
            Addr line = toLlc.front();
            toLlc.pop_front();
            Addr victim = kNoAddr;
            bool victim_dirty = false;
            if (llcCache.writeback(line, &victim, &victim_dirty) &&
                victim_dirty) {
                memWritebacks.push_back(victim);
            }
            continue;
        }
        Addr line = toL2.front();
        toL2.pop_front();
        Addr victim = kNoAddr;
        bool victim_dirty = false;
        if (l2Cache.writeback(line, &victim, &victim_dirty) &&
            victim_dirty) {
            toLlc.push_back(victim);
        }
    }
}

RefHitLevel
RefHierarchy::demandAccess(Addr p_line, bool is_rfo)
{
    RefHitLevel level = RefHitLevel::Memory;
    if (l1Cache.access(p_line, is_rfo) == RefOutcome::Hit) {
        level = RefHitLevel::L1;
    } else if (l2Cache.access(p_line, is_rfo) == RefOutcome::Hit) {
        level = RefHitLevel::L2;
        fillInto(l1Cache, p_line, is_rfo);
    } else if (llcCache.access(p_line, is_rfo) == RefOutcome::Hit) {
        level = RefHitLevel::Llc;
        fillInto(l2Cache, p_line, is_rfo);
        fillInto(l1Cache, p_line, is_rfo);
    } else {
        ++memoryReads;
        fillInto(llcCache, p_line, is_rfo);
        fillInto(l2Cache, p_line, is_rfo);
        fillInto(l1Cache, p_line, is_rfo);
    }
    drainWritebacks();
    return level;
}

void
RefHierarchy::demandWriteback(Addr p_line)
{
    Addr victim = kNoAddr;
    bool victim_dirty = false;
    if (l1Cache.writeback(p_line, &victim, &victim_dirty) && victim_dirty)
        toL2.push_back(victim);
    drainWritebacks();
}

} // namespace berti::oracle
