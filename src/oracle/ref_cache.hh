/**
 * @file
 * Untimed functional reference model of one set-associative cache level:
 * set-indexed maps, exact LRU recency, dirty bits and demand hit/miss
 * counting — no cycles, queues, MSHRs or bandwidth. It is the executable
 * specification the cycle-accurate Cache is differentially tested
 * against (tests/test_differential.cpp): when the cycle model is driven
 * with fully serialized demand traffic, every functional decision it
 * makes (classification, victim choice, dirty propagation, writeback
 * write-allocation) must be reproducible here from first principles.
 *
 * Deliberately implemented with different data structures than
 * mem/cache.cc (per-set address maps + recency stamps instead of a flat
 * way array + ReplPolicy) so a shared bug is unlikely to hide in shared
 * code.
 */

#ifndef BERTI_ORACLE_REF_CACHE_HH
#define BERTI_ORACLE_REF_CACHE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace berti::oracle
{

/** Geometry of one reference level. Replacement is always exact LRU. */
struct RefCacheConfig
{
    std::string name = "ref";
    unsigned sets = 64;
    unsigned ways = 8;
};

/** Outcome of one demand access at one level. */
enum class RefOutcome : std::uint8_t
{
    Hit,
    Miss
};

const char *refOutcomeName(RefOutcome o);

/** One resident line, as the reference model tracks it. */
struct RefLine
{
    bool dirty = false;
    std::uint64_t lastTouch = 0;  //!< exact-LRU recency stamp
};

/**
 * Test-only fault injection into the reference model itself, used to
 * demonstrate that the differential harness detects (and the shrinker
 * minimizes) a planted divergence. Production comparisons leave this
 * defaulted.
 */
struct RefPerturbation
{
    /** Skip the LRU recency update on every Nth hit (0 = never). */
    unsigned skipLruTouchEveryN = 0;
};

class RefCache
{
  public:
    explicit RefCache(const RefCacheConfig &cfg);

    /**
     * Demand lookup without side effects beyond LRU/dirty bookkeeping:
     * returns Hit and touches the line if present, else Miss (the
     * caller models the fetch and then calls fill()).
     */
    RefOutcome access(Addr p_line, bool is_rfo);

    /**
     * Install a line (demand fill or writeback write-allocate). If the
     * set is full the exact-LRU victim is evicted first; when that
     * victim is dirty its address is reported through evicted_dirty.
     * @return true when a victim was evicted, with *evicted set.
     */
    bool fill(Addr p_line, bool dirty, Addr *evicted,
              bool *evicted_dirty);

    /**
     * Writeback arriving from the level above: dirty-upgrade + LRU
     * touch when present (mirroring the cycle model's processWrites
     * hit path), full-line write-allocate install when absent.
     * @return true when the install evicted a victim.
     */
    bool writeback(Addr p_line, Addr *evicted, bool *evicted_dirty);

    bool contains(Addr p_line) const;
    bool isDirty(Addr p_line) const;

    /** Every resident line with its dirty bit, sorted by address. */
    std::vector<std::pair<Addr, bool>> contents() const;

    std::size_t residentLines() const;

    const RefCacheConfig &config() const { return cfg; }

    void setPerturbation(const RefPerturbation &p) { perturb = p; }

    // Functional counters compared against CacheStats.
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t fills = 0;        //!< all installs, incl. wb-allocate
    std::uint64_t writebacksOut = 0; //!< dirty victims pushed below

  private:
    using Set = std::map<Addr, RefLine>;

    unsigned setIndex(Addr p_line) const { return p_line % cfg.sets; }
    void touch(RefLine &line) { line.lastTouch = ++recencyTick; }

    RefCacheConfig cfg;
    RefPerturbation perturb;
    std::uint64_t recencyTick = 0;
    std::uint64_t hitTick = 0;      //!< perturbation counter
    std::vector<Set> sets;
};

} // namespace berti::oracle

#endif // BERTI_ORACLE_REF_CACHE_HH
