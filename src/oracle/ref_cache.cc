#include "oracle/ref_cache.hh"

#include <algorithm>

namespace berti::oracle
{

const char *
refOutcomeName(RefOutcome o)
{
    return o == RefOutcome::Hit ? "hit" : "miss";
}

RefCache::RefCache(const RefCacheConfig &config)
    : cfg(config), sets(config.sets)
{
}

RefOutcome
RefCache::access(Addr p_line, bool is_rfo)
{
    ++demandAccesses;
    Set &set = sets[setIndex(p_line)];
    auto it = set.find(p_line);
    if (it == set.end()) {
        ++demandMisses;
        return RefOutcome::Miss;
    }
    ++demandHits;
    ++hitTick;
    bool skip_touch = perturb.skipLruTouchEveryN != 0 &&
                      hitTick % perturb.skipLruTouchEveryN == 0;
    if (!skip_touch)
        touch(it->second);
    if (is_rfo)
        it->second.dirty = true;
    return RefOutcome::Hit;
}

bool
RefCache::fill(Addr p_line, bool dirty, Addr *evicted, bool *evicted_dirty)
{
    Set &set = sets[setIndex(p_line)];
    bool victimised = false;
    if (set.size() >= cfg.ways) {
        // Exact LRU: evict the entry with the lowest recency stamp.
        auto victim = set.begin();
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->second.lastTouch < victim->second.lastTouch)
                victim = it;
        }
        if (evicted)
            *evicted = victim->first;
        if (evicted_dirty)
            *evicted_dirty = victim->second.dirty;
        if (victim->second.dirty)
            ++writebacksOut;
        set.erase(victim);
        victimised = true;
    }
    RefLine line;
    line.dirty = dirty;
    set[p_line] = line;
    touch(set[p_line]);
    ++fills;
    return victimised;
}

bool
RefCache::writeback(Addr p_line, Addr *evicted, bool *evicted_dirty)
{
    Set &set = sets[setIndex(p_line)];
    auto it = set.find(p_line);
    if (it != set.end()) {
        it->second.dirty = true;
        touch(it->second);
        return false;
    }
    // Non-inclusive write-allocate of the full evicted line.
    return fill(p_line, true, evicted, evicted_dirty);
}

bool
RefCache::contains(Addr p_line) const
{
    const Set &set = sets[setIndex(p_line)];
    return set.find(p_line) != set.end();
}

bool
RefCache::isDirty(Addr p_line) const
{
    const Set &set = sets[setIndex(p_line)];
    auto it = set.find(p_line);
    return it != set.end() && it->second.dirty;
}

std::vector<std::pair<Addr, bool>>
RefCache::contents() const
{
    std::vector<std::pair<Addr, bool>> out;
    for (const Set &set : sets) {
        for (const auto &[addr, line] : set)
            out.emplace_back(addr, line.dirty);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
RefCache::residentLines() const
{
    std::size_t n = 0;
    for (const Set &set : sets)
        n += set.size();
    return n;
}

} // namespace berti::oracle
