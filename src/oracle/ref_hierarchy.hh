/**
 * @file
 * Untimed three-level reference hierarchy (L1D, L2, LLC over an infinite
 * backing memory) composed from RefCache levels. It models exactly the
 * functional behaviour the cycle simulator exhibits when demand traffic
 * is fully serialized (one access in flight, all queues drained between
 * accesses, no prefetcher):
 *
 *   - demand lookup walks L1 -> L2 -> LLC -> memory; the first hit level
 *     wins and every traversed level counts the access;
 *   - an RFO dirties the line at the hit level and every level it is
 *     subsequently filled into (the cycle model forwards the miss with
 *     its AccessType intact and fills with wantsDirty);
 *   - fills happen bottom-up (LLC first, L1 last), each preferring free
 *     capacity and otherwise evicting the exact-LRU victim;
 *   - a dirty victim is written back to the next level down through a
 *     FIFO queue; queues drain lower-level-first (the machine ticks the
 *     LLC before the L2), a writeback hitting below dirty-upgrades and
 *     touches LRU, a miss write-allocates the full line;
 *   - dirty LLC victims leave the hierarchy into the backing memory,
 *     recorded in arrival order.
 */

#ifndef BERTI_ORACLE_REF_HIERARCHY_HH
#define BERTI_ORACLE_REF_HIERARCHY_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "oracle/ref_cache.hh"
#include "sim/types.hh"

namespace berti::oracle
{

/** Which level serviced a demand access. */
enum class RefHitLevel : std::uint8_t
{
    L1,
    L2,
    Llc,
    Memory
};

const char *refHitLevelName(RefHitLevel l);

struct RefHierarchyConfig
{
    RefCacheConfig l1{"ref-l1d", 16, 4};
    RefCacheConfig l2{"ref-l2", 32, 8};
    RefCacheConfig llc{"ref-llc", 64, 16};
};

class RefHierarchy
{
  public:
    explicit RefHierarchy(const RefHierarchyConfig &cfg);

    /** One serialized demand access (Load or RFO). */
    RefHitLevel demandAccess(Addr p_line, bool is_rfo);

    /** One serialized dirty eviction arriving at the L1D from above. */
    void demandWriteback(Addr p_line);

    RefCache &l1() { return l1Cache; }
    RefCache &l2() { return l2Cache; }
    RefCache &llc() { return llcCache; }
    const RefCache &l1() const { return l1Cache; }
    const RefCache &l2() const { return l2Cache; }
    const RefCache &llc() const { return llcCache; }

    /** Dirty lines that left the LLC, in writeback order. */
    const std::vector<Addr> &memoryWritebacks() const
    {
        return memWritebacks;
    }

    /** Reads that reached the backing memory (LLC demand misses). */
    std::uint64_t memoryReads = 0;

  private:
    /** Fill one level, routing any dirty victim to the right queue. */
    void fillInto(RefCache &level, Addr p_line, bool dirty);

    /** Drain both inter-level queues to empty, LLC-queue first. */
    void drainWritebacks();

    RefCache l1Cache;
    RefCache l2Cache;
    RefCache llcCache;
    std::deque<Addr> toL2;   //!< dirty L1 victims awaiting the L2
    std::deque<Addr> toLlc;  //!< dirty L2 victims awaiting the LLC
    std::vector<Addr> memWritebacks;
};

} // namespace berti::oracle

#endif // BERTI_ORACLE_REF_HIERARCHY_HH
