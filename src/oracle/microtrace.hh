/**
 * @file
 * Property-based micro-traces for the differential oracle: a tiny
 * line-granular operation model (Load / RFO / Writeback with an optional
 * idle gap), deterministic seeded generators producing adversarial
 * interleavings, and a lossless mapping to the standard .trace file
 * format so any failing trace is a replayable artifact.
 *
 * Seeding convention: every test derives its RNG seed through
 * testSeed(), which honours BERTI_TEST_SEED so a divergence reported in
 * a CI log is reproducible locally from the seed alone. Iteration
 * counts scale with BERTI_PROP_ITERS (the nightly job sets 10).
 */

#ifndef BERTI_ORACLE_MICROTRACE_HH
#define BERTI_ORACLE_MICROTRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "trace/instr.hh"

namespace berti::oracle
{

enum class MicroOpKind : std::uint8_t
{
    Load,
    Rfo,
    Writeback
};

/**
 * One hierarchy-level operation. Addresses are *line* addresses. The gap
 * is idle cycles before the op in the concurrent driver (the serialized
 * driver ignores it — every op runs to completion there).
 */
struct MicroOp
{
    MicroOpKind kind = MicroOpKind::Load;
    Addr line = 0;
    Addr ip = 0x400000;
    unsigned gap = 0;

    bool operator==(const MicroOp &o) const
    {
        return kind == o.kind && line == o.line && ip == o.ip &&
               gap == o.gap;
    }
};

struct MicroTrace
{
    std::vector<MicroOp> ops;

    std::size_t size() const { return ops.size(); }
};

/** A named seeded generator of one adversarial workload class. */
struct MicroTraceClass
{
    std::string name;
    MicroTrace (*generate)(std::uint64_t seed, std::size_t n_ops);
};

/**
 * All registered workload classes: page-crossing strides, aliasing sets,
 * TLB-thrashing page walks, writeback races, pointer-chase permutations
 * and a uniform random mix.
 */
const std::vector<MicroTraceClass> &microTraceClasses();

/** Lookup by name; throws verify::SimError(Config) when unknown. */
const MicroTraceClass &findMicroTraceClass(const std::string &name);

// ---------------------------------------------------------------- trace
// round-trip: one TraceInstr per op (Load -> load, RFO -> load+store,
// Writeback -> store at a sentinel IP), gaps encoded as preceding
// non-memory filler instructions so artifacts stay plain .trace files a
// Machine can also replay.

/** IP marking a store record as an explicit writeback op. */
constexpr Addr kWritebackSentinelIp = 0xFFFF0000ull;

/** IP of the non-memory filler instructions that encode gaps. */
constexpr Addr kGapSentinelIp = 0xFFFF0040ull;

std::vector<TraceInstr> toInstrs(const MicroTrace &trace);
MicroTrace fromInstrs(const std::vector<TraceInstr> &instrs);

/** Save/load a micro trace as a .trace artifact. */
bool saveArtifact(const std::string &path, const MicroTrace &trace);
MicroTrace loadArtifact(const std::string &path);

/**
 * The base RNG seed for property tests: BERTI_TEST_SEED when set
 * (decimal or 0x-prefixed hex), otherwise fallback. Failing tests must
 * log the seed they used.
 */
std::uint64_t testSeed(std::uint64_t fallback);

/** base * BERTI_PROP_ITERS (>= 1); the nightly depth job exports 10. */
unsigned propertyIterations(unsigned base);

/** Directory for shrunk counterexample artifacts: BERTI_ARTIFACT_DIR
 *  when set, else the current directory. */
std::string artifactDir();

} // namespace berti::oracle

#endif // BERTI_ORACLE_MICROTRACE_HH
