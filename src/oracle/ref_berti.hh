/**
 * @file
 * Reference Berti: a straight transcription of the MICRO 2022 paper's
 * table algorithms (section III-C, Figure 6, Table I) used as an
 * executable specification for the production BertiPrefetcher.
 *
 * Unlike the production prefetcher it is not wired to a cache: it is an
 * event-fed model. The differential harness feeds it the exact
 * AccessInfo / FillInfo stream (plus the clock and MSHR occupancy the
 * production code would have read through its PrefetchPort) and then
 * compares learned (delta, coverage, status) sets per IP and the issued
 * prefetch sequence. No latency machinery is modelled — the measured
 * latency arrives as an event field, as in the paper's description of
 * the history search.
 */

#ifndef BERTI_ORACLE_REF_BERTI_HH
#define BERTI_ORACLE_REF_BERTI_HH

#include <cstdint>
#include <vector>

#include "core/berti.hh"
#include "prefetch/prefetcher.hh"
#include "sim/types.hh"

namespace berti::oracle
{

class RefBerti
{
  public:
    using DeltaStatus = BertiPrefetcher::DeltaStatus;
    using DeltaInfo = BertiPrefetcher::DeltaInfo;

    /** One prefetch the model decided to issue. */
    struct Issue
    {
        Addr line = kNoAddr;
        FillLevel level = FillLevel::L1;

        bool operator==(const Issue &o) const
        {
            return line == o.line && level == o.level;
        }
    };

    explicit RefBerti(const BertiConfig &cfg = {});

    /**
     * A demand access observed at the L1D, with the clock and MSHR
     * occupancy the production prefetcher would read from its port at
     * that moment.
     */
    void onAccess(const Prefetcher::AccessInfo &info, Cycle now,
                  double mshr_occupancy);

    /** A fill observed at the L1D. */
    void onFill(const Prefetcher::FillInfo &info, Cycle now,
                double mshr_occupancy);

    /** Learned deltas of an IP, in table slot order. */
    std::vector<DeltaInfo> deltasFor(Addr ip) const;

    /** Every prefetch issued so far, in issue order. */
    std::vector<Issue> issued;

  private:
    // Paper Figure 6: a history entry holds a short IP tag, the 24-bit
    // accessed line and a 16-bit timestamp; sets are FIFO-replaced.
    struct HistoryEntry
    {
        bool valid = false;
        std::uint16_t ipTag = 0;
        Addr line = 0;
        Cycle ts = 0;
        std::uint64_t insertedAt = 0;
    };

    struct DeltaSlot
    {
        bool valid = false;
        int delta = 0;
        unsigned coverage = 0;
        DeltaStatus status = DeltaStatus::NoPref;
    };

    // Table-of-deltas entry: fully-associative, FIFO-replaced.
    struct TableEntry
    {
        bool valid = false;
        std::uint16_t ipTag = 0;
        unsigned searchesThisPhase = 0;
        bool completedOnePhase = false;
        unsigned timelyOccurrences = 0;  //!< gathered since allocation
        std::uint64_t insertedAt = 0;
        std::vector<DeltaSlot> slots;
    };

    Addr contextOf(Addr ip, Addr v_line) const;
    unsigned historySet(Addr ip) const;
    std::uint16_t historyTag(Addr ip) const;
    std::uint16_t tableTag(Addr ip) const;

    void insertHistory(Addr ip, Addr v_line, Cycle now);
    void searchHistory(Addr ip, Addr v_line, Cycle demand_time,
                       Cycle latency);
    TableEntry *findEntry(Addr ip);
    const TableEntry *findEntry(Addr ip) const;
    TableEntry &allocEntry(Addr ip);
    void recordDelta(TableEntry &entry, int delta);
    void closePhase(TableEntry &entry);
    void predict(Addr ip, Addr v_line, double mshr_occupancy);

    BertiConfig cfg;
    std::vector<std::vector<HistoryEntry>> historySets;
    std::vector<TableEntry> table;
    std::uint64_t insertionCounter = 0;
};

} // namespace berti::oracle

#endif // BERTI_ORACLE_REF_BERTI_HH
